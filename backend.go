package abadetect

import (
	"sync"

	"abadetect/internal/shmem"
)

// Backend selects the shared-memory substrate every constructor in this
// package allocates its base objects from.  The algorithms are written
// against abstract bounded base objects, so the same construction runs on
// plain atomic words, on cache-line padded words, or under instrumentation
// that measures exactly the quantities the paper reasons about (steps taken,
// domain used).
//
// A Backend hands each constructed object a fresh factory, so per-object
// footprints stay exact while instrumenting backends aggregate their
// measurements across every object built through them.
type Backend interface {
	// newFactory returns the factory one constructor call allocates from.
	// Unexported: backends are provided by this package.
	newFactory() shmem.Factory
}

// WithBackend makes a constructor build its base objects through b
// (default: NativeBackend).
func WithBackend(b Backend) Option {
	return func(o *options) { o.backend = b }
}

// nativeBackend allocates plain sync/atomic words.
type nativeBackend struct{}

func (nativeBackend) newFactory() shmem.Factory { return shmem.NewNativeFactory() }

// NativeBackend returns the default substrate: each base object is one
// 64-bit atomic word, every step one hardware atomic operation.
func NativeBackend() Backend { return nativeBackend{} }

// slabBackend allocates contiguous slab words.
type slabBackend struct{}

func (slabBackend) newFactory() shmem.Factory { return shmem.NewSlabFactory(1) }

// SlabBackend returns a substrate that lays all of an object's base objects
// out in one contiguous slab of atomic words — register X and the announce
// array A side by side, eight objects per cache line — so the shared steps
// of one operation walk one or two cache lines instead of chasing scattered
// heap pointers.  Like NativeBackend it devirtualizes the hot paths: every
// shared step is one inlined atomic instruction.
//
// Prefer SlabBackend for sequential and read-mostly traffic; under heavy
// multi-core write traffic on *unrelated* objects, PaddedBackend's striped
// slab (one object per cache line) avoids false sharing instead.
func SlabBackend() Backend { return slabBackend{} }

// paddedBackend allocates cache-line striped slab words.
type paddedBackend struct{}

func (paddedBackend) newFactory() shmem.Factory { return shmem.NewPaddedFactory() }

// PaddedBackend returns a substrate whose base objects each occupy a full
// cache line, so operations on distinct objects never contend for a line.
// It is the striped preset of the slab substrate — contiguous, allocation-
// free, devirtualized — and the layout ShardedDetectingArray uses by
// default; the paper's space measure counts objects, not bytes, so padding
// costs nothing in the model.
func PaddedBackend() Backend { return paddedBackend{} }

// CountingBackend counts every shared-memory step — the paper's time
// measure — per process, aggregated across all objects built through it.
type CountingBackend struct {
	maxProcs int

	mu        sync.Mutex
	factories []*shmem.Counting
}

var _ Backend = (*CountingBackend)(nil)

// NewCountingBackend returns a step-counting backend for process IDs in
// [0, maxProcs).  Steps by out-of-range pids are not counted.
func NewCountingBackend(maxProcs int) *CountingBackend {
	return &CountingBackend{maxProcs: maxProcs}
}

func (b *CountingBackend) newFactory() shmem.Factory {
	c := shmem.NewCounting(shmem.NewNativeFactory(), b.maxProcs)
	b.mu.Lock()
	b.factories = append(b.factories, c)
	b.mu.Unlock()
	return c
}

// Steps returns the number of shared-memory steps process pid has taken
// across every object built through this backend.
func (b *CountingBackend) Steps(pid int) int64 {
	if pid < 0 || pid >= b.maxProcs {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, c := range b.factories {
		total += c.Steps(pid)
	}
	return total
}

// TotalSteps returns the steps taken by all processes together.
func (b *CountingBackend) TotalSteps() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, c := range b.factories {
		total += c.TotalSteps()
	}
	return total
}

// Reset zeroes every step counter.
func (b *CountingBackend) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, c := range b.factories {
		c.Reset()
	}
}

// AuditBackend records, per base object, the largest word ever stored — the
// used value domain.  It makes the paper's bounded/unbounded separation
// observable: bounded implementations stay inside their declared domain
// forever, the unbounded baselines keep growing (experiment E7).
type AuditBackend struct {
	mu     sync.Mutex
	audits []*shmem.Audited
}

var _ Backend = (*AuditBackend)(nil)

// NewAuditBackend returns a domain-auditing backend.
func NewAuditBackend() *AuditBackend { return &AuditBackend{} }

func (b *AuditBackend) newFactory() shmem.Factory {
	a := shmem.NewAudited(shmem.NewNativeFactory())
	b.mu.Lock()
	b.audits = append(b.audits, a)
	b.mu.Unlock()
	return a
}

// MaxBitsUsed returns the bit-length of the largest word any object built
// through this backend ever held: its used domain is a subset of
// [0, 2^MaxBitsUsed).
func (b *AuditBackend) MaxBitsUsed() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	maxBits := 0
	for _, a := range b.audits {
		if bits := a.MaxBitsUsed(); bits > maxBits {
			maxBits = bits
		}
	}
	return maxBits
}
