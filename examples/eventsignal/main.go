// Command eventsignal reproduces the paper's §1 busy-wait motivation: a
// signaler raises a flag and later resets it for reuse; a waiter polling a
// plain register can miss the whole pulse, while a waiter on an
// ABA-detecting register cannot.
//
// Run with: go run ./examples/eventsignal
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	abadetect "abadetect"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("scenario: waiter polls; signaler pulses (set, then reset); waiter polls again")
	fmt.Println()

	// --- Plain register: the pulse is missed. ---
	var plain atomic.Uint64
	plainPoll := func() (set bool) { return plain.Load() == 1 }

	_ = plainPoll() // waiter's first poll: flag down
	plain.Store(1)  // signal
	plain.Store(0)  // reset for reuse
	if plainPoll() {
		return fmt.Errorf("unexpected: plain register saw the pulse")
	}
	fmt.Println("plain register:       waiter polls -> flag down, no trace of the pulse (EVENT MISSED)")

	// --- ABA-detecting register: the pulse is detected. ---
	reg, err := abadetect.NewDetectingRegister(2, abadetect.WithValueBits(1))
	if err != nil {
		return err
	}
	signaler, err := reg.Handle(0)
	if err != nil {
		return err
	}
	waiter, err := reg.Handle(1)
	if err != nil {
		return err
	}

	waiter.DRead()     // waiter's first poll: flag down
	signaler.DWrite(1) // signal
	signaler.DWrite(0) // reset for reuse
	v, dirty := waiter.DRead()
	fmt.Printf("detecting register:   waiter polls -> value=%d dirty=%v (the pulse left a trace)\n", v, dirty)

	if !dirty {
		return fmt.Errorf("detecting register missed the pulse — this should be impossible")
	}

	fmt.Println()
	fmt.Println("with signal-then-reset discipline, dirty=true tells the waiter an event fired")
	fmt.Println("even though the flag value is back to 0 — no event is ever lost.")
	return nil
}
