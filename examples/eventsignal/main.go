// Command eventsignal reproduces the paper's §1 busy-wait motivation with
// the public EventFlag across the protection ladder: a signaler raises a
// flag and later resets it for reuse; a waiter polling a raw flag can miss
// the whole pulse, a 1-bit tag wraps and misses it too, and an
// ABA-detecting flag cannot miss it.
//
// Run with: go run ./examples/eventsignal
package main

import (
	"fmt"
	"log"

	abadetect "abadetect"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// pulse plays the scenario — poll, signal, reset, poll — against a flag
// built with opts and reports whether the second poll noticed the pulse.
func pulse(opts ...abadetect.Option) (fired bool, err error) {
	e, err := abadetect.NewEventFlag(2, opts...)
	if err != nil {
		return false, err
	}
	signaler, err := e.Handle(0)
	if err != nil {
		return false, err
	}
	waiter, err := e.Handle(1)
	if err != nil {
		return false, err
	}
	waiter.Poll()     // waiter's first poll: flag down
	signaler.Signal() // signal
	signaler.Reset()  // reset for reuse
	_, fired = waiter.Poll()
	return fired, nil
}

func run() error {
	fmt.Println("scenario: waiter polls; signaler pulses (set, then reset); waiter polls again")
	fmt.Println()

	ladder := []struct {
		name      string
		opts      []abadetect.Option
		wantFired bool
		note      string
	}{
		{"raw register", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionRaw)},
			false, "no trace of the pulse (EVENT MISSED)"},
		{"1-bit tag", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionTagged), abadetect.WithTagBits(1)},
			false, "2 writes wrap the tag: word repeats (EVENT MISSED)"},
		{"16-bit tag", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionTagged)},
			true, "tag still distinguishes the restored value"},
		{"detector (Figure 4, n+1 registers)", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionDetector), abadetect.WithGuardImpl("fig4")},
			true, "the pulse left a trace: dirty=true"},
		{"detector (Figure 5 over one CAS)", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionDetector)},
			true, "the pulse left a trace: dirty=true"},
	}
	for _, l := range ladder {
		fired, err := pulse(l.opts...)
		if err != nil {
			return err
		}
		fmt.Printf("%-36s fired=%-5v %s\n", l.name+":", fired, l.note)
		if fired != l.wantFired {
			return fmt.Errorf("%s: fired=%v, expected %v", l.name, fired, l.wantFired)
		}
	}

	fmt.Println()
	fmt.Println("with signal-then-reset discipline, fired=true tells the waiter an event")
	fmt.Println("happened even though the flag value is back to 0 — and the paper's lower")
	fmt.Println("bounds say the bounded regimes that never miss cannot be smaller.")
	return nil
}
