// Command counter races several goroutines against the library at both
// layers of its API:
//
//   - a wait-free-retry shared counter over the base LL/SC objects, at both
//     ends of the paper's time-space trade-off (Figure 3's one bounded CAS
//     word at O(n) steps vs the constant-time construction at m = n+1), and
//   - a token ring over the public guarded Queue: every token that enters
//     the ring must come out exactly as many times, which a raw-CAS queue
//     cannot promise under recycling but the guarded ones do.
//
// Run with: go run ./examples/counter
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	abadetect "abadetect"
)

const (
	procs       = 8
	incsPerProc = 20000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	type build struct {
		name string
		fn   func(n int, opts ...abadetect.Option) (abadetect.LLSC, error)
	}
	for _, b := range []build{
		{"Figure 3   (m=1, t=O(n))", abadetect.NewLLSC},
		{"ConstTime  (m=n+1, t=O(1))", abadetect.NewLLSCConstantTime},
	} {
		obj, err := b.fn(procs, abadetect.WithValueBits(32))
		if err != nil {
			return err
		}
		elapsed, err := race(obj)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		fmt.Printf("%-28s footprint %-28s  %d increments in %v — none lost\n",
			b.name, obj.Footprint().String(), procs*incsPerProc, elapsed.Round(time.Millisecond))
	}

	fmt.Println()
	for _, p := range []abadetect.Protection{abadetect.ProtectionLLSC, abadetect.ProtectionDetector} {
		circulated, elapsed, err := tokenRing(p)
		if err != nil {
			return fmt.Errorf("token ring (%s): %w", p, err)
		}
		fmt.Printf("token ring over Queue(%-8s)  %d circulations in %v — every token conserved\n",
			p, circulated, elapsed.Round(time.Millisecond))
	}
	return nil
}

// race hammers the object with LL;SC(v+1) retry loops and verifies the total.
func race(obj abadetect.LLSC) (time.Duration, error) {
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < procs; pid++ {
		h, err := obj.Handle(pid)
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(h abadetect.LLSCHandle) {
			defer wg.Done()
			for i := 0; i < incsPerProc; i++ {
				for {
					v := h.LL()
					if h.SC(v + 1) {
						break
					}
				}
			}
		}(h)
	}
	wg.Wait()
	elapsed := time.Since(start)

	h, err := obj.Handle(0)
	if err != nil {
		return 0, err
	}
	if got, want := h.LL(), uint64(procs*incsPerProc); got != want {
		return 0, fmt.Errorf("counter = %d, want %d (lost updates!)", got, want)
	}
	return elapsed, nil
}

// tokenRing circulates `procs` tokens through one guarded queue: every
// worker dequeues a token and immediately re-enqueues it, `rounds` times.
// At the end exactly the original tokens must remain — a raw queue's
// recycling ABA would duplicate or lose some.
func tokenRing(p abadetect.Protection) (circulations int, elapsed time.Duration, err error) {
	const rounds = 5000
	q, err := abadetect.NewQueue(procs, procs*2,
		abadetect.WithProtection(p), abadetect.WithGuardedPool())
	if err != nil {
		return 0, 0, err
	}
	seed, err := q.Handle(0)
	if err != nil {
		return 0, 0, err
	}
	for tok := 1; tok <= procs; tok++ {
		if !seed.Enq(uint64(tok)) {
			return 0, 0, fmt.Errorf("seeding token %d failed", tok)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < procs; pid++ {
		h, err := q.Handle(pid)
		if err != nil {
			return 0, 0, err
		}
		wg.Add(1)
		go func(h *abadetect.QueueHandle) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if v, ok := h.Deq(); ok {
					for !h.Enq(v) {
					}
				}
			}
		}(h)
	}
	wg.Wait()
	elapsed = time.Since(start)

	// Drain: exactly the original token multiset must come back.
	counts := map[uint64]int{}
	for {
		v, ok := seed.Deq()
		if !ok {
			break
		}
		counts[v]++
	}
	for tok := 1; tok <= procs; tok++ {
		if counts[uint64(tok)] != 1 {
			return 0, 0, fmt.Errorf("token %d seen %d times, want exactly 1", tok, counts[uint64(tok)])
		}
	}
	if len(counts) != procs {
		return 0, 0, fmt.Errorf("%d distinct tokens drained, want %d", len(counts), procs)
	}
	if a := q.Audit(); a.Corrupt {
		return 0, 0, fmt.Errorf("audit: %s", a.Detail)
	}
	return procs * rounds, elapsed, nil
}
