// Command counter builds a wait-free-retry shared counter on top of the
// library's LL/SC objects and races several goroutines against it — the
// standard "no lost updates" exercise, shown at both ends of the paper's
// time-space trade-off:
//
//   - Figure 3 (one bounded CAS word, O(n) steps per operation), and
//   - the constant-time construction (one CAS word + n registers, O(1)).
//
// Run with: go run ./examples/counter
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	abadetect "abadetect"
)

const (
	procs       = 8
	incsPerProc = 20000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	type build struct {
		name string
		fn   func(n int, opts ...abadetect.Option) (abadetect.LLSC, error)
	}
	for _, b := range []build{
		{"Figure 3   (m=1, t=O(n))", abadetect.NewLLSC},
		{"ConstTime  (m=n+1, t=O(1))", abadetect.NewLLSCConstantTime},
	} {
		obj, err := b.fn(procs, abadetect.WithValueBits(32))
		if err != nil {
			return err
		}
		elapsed, err := race(obj)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		fmt.Printf("%-28s footprint %-28s  %d increments in %v — none lost\n",
			b.name, obj.Footprint().String(), procs*incsPerProc, elapsed.Round(time.Millisecond))
	}
	return nil
}

// race hammers the object with LL;SC(v+1) retry loops and verifies the total.
func race(obj abadetect.LLSC) (time.Duration, error) {
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < procs; pid++ {
		h, err := obj.Handle(pid)
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(h abadetect.LLSCHandle) {
			defer wg.Done()
			for i := 0; i < incsPerProc; i++ {
				for {
					v := h.LL()
					if h.SC(v + 1) {
						break
					}
				}
			}
		}(h)
	}
	wg.Wait()
	elapsed := time.Since(start)

	h, err := obj.Handle(0)
	if err != nil {
		return 0, err
	}
	if got, want := h.LL(), uint64(procs*incsPerProc); got != want {
		return 0, fmt.Errorf("counter = %d, want %d (lost updates!)", got, want)
	}
	return elapsed, nil
}
