// Command quickstart shows the headline capability of the library: an
// ABA-detecting register notices writes that restored the old value — the
// exact situation a plain read cannot distinguish from "nothing happened".
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	abadetect "abadetect"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 2 // one writer, one reader

	// The paper's Figure 4: n+1 bounded registers, O(1) steps per op.
	reg, err := abadetect.NewDetectingRegister(n, abadetect.WithValueBits(16))
	if err != nil {
		return err
	}
	fmt.Printf("ABA-detecting register for %d processes, footprint %s\n\n",
		n, reg.Footprint())

	writer, err := reg.Handle(0)
	if err != nil {
		return err
	}
	reader, err := reg.Handle(1)
	if err != nil {
		return err
	}

	// The reader observes value 42.
	writer.DWrite(42)
	v, dirty := reader.DRead()
	fmt.Printf("reader: value=%d dirty=%v   (first observation)\n", v, dirty)

	// A quiet re-read is clean: nothing happened.
	v, dirty = reader.DRead()
	fmt.Printf("reader: value=%d dirty=%v   (no writes in between)\n", v, dirty)

	// The ABA: the value changes to 7 and back to 42.
	writer.DWrite(7)
	writer.DWrite(42)

	// A plain register would show 42 == 42: "nothing happened".
	// The detecting register reports the truth.
	v, dirty = reader.DRead()
	fmt.Printf("reader: value=%d dirty=%v   (value went 42 -> 7 -> 42: detected!)\n", v, dirty)

	if !dirty {
		return fmt.Errorf("ABA went undetected — this should be impossible")
	}
	return nil
}
