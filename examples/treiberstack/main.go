// Command treiberstack demonstrates the classic ABA corruption of a Treiber
// stack with recycled nodes — and how the library's guarded structures make
// the whole §1 protection ladder a constructor argument.
//
// The script is the textbook interleaving, driven through the public
// Stack's experiment hooks (PopBegin / PopCommit): a victim reads the head
// node and its successor, stalls, and meanwhile an adversary pops several
// nodes and pushes a recycled one so the head *index* is restored.  A
// raw-CAS stack accepts the victim's stale commit and corrupts; the tagged,
// LL/SC, and detector stacks reject it, and the detector stack additionally
// counts the prevented ABA in its guard metrics.
//
// Run with: go run ./examples/treiberstack
package main

import (
	"fmt"
	"log"

	abadetect "abadetect"
)

// scenario plays the §1 interleaving against a stack built with p and
// reports whether the victim's stale commit was accepted.
func scenario(p abadetect.Protection) (fooled bool, audit abadetect.StructureAudit, metrics abadetect.GuardMetrics, err error) {
	s, err := abadetect.NewStack(2, 3, abadetect.WithProtection(p))
	if err != nil {
		return false, abadetect.StructureAudit{}, abadetect.GuardMetrics{}, err
	}
	adversary, err := s.Handle(0)
	if err != nil {
		return false, abadetect.StructureAudit{}, abadetect.GuardMetrics{}, err
	}
	victim, err := s.Handle(1)
	if err != nil {
		return false, abadetect.StructureAudit{}, abadetect.GuardMetrics{}, err
	}

	// Setup: chain 3(103) -> 2(102) -> 1(101).
	for i := 1; i <= 3; i++ {
		adversary.Push(uint64(100 + i))
	}

	// Victim: reads head (node 3) and its successor (node 2)... and stalls.
	victim.PopBegin()

	// Adversary: pops everything and pushes one value.  The FIFO allocator
	// hands node 3 back, so the head index is 3 again — but node 2 is free.
	for i := 0; i < 3; i++ {
		adversary.Pop()
	}
	adversary.Push(104)

	// Victim resumes and tries to swing the head to the freed node 2.
	_, fooled = victim.PopCommit()
	return fooled, s.Audit(), s.GuardMetrics(), nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Treiber stack ABA scenario: victim stalls mid-pop while nodes recycle")
	fmt.Println()

	ladder := []struct {
		name       string
		prot       abadetect.Protection
		wantFooled bool
	}{
		{"raw CAS", abadetect.ProtectionRaw, true},
		{"LL/SC (Figure 3, one bounded CAS word)", abadetect.ProtectionLLSC, false},
		{"detector (Figure 5 over Figure 3)", abadetect.ProtectionDetector, false},
	}
	for _, l := range ladder {
		fooled, audit, metrics, err := scenario(l.prot)
		if err != nil {
			return err
		}
		switch {
		case fooled:
			fmt.Printf("%-42s fooled=%-5v head swung onto a FREED node — audit: %s\n", l.name+":", fooled, audit.Detail)
		default:
			fmt.Printf("%-42s fooled=%-5v victim's commit rejected (prevented ABAs counted: %d), it retries safely\n",
				l.name+":", fooled, metrics.NearMisses)
		}
		if fooled != l.wantFooled {
			return fmt.Errorf("%s: fooled=%v, expected %v", l.name, fooled, l.wantFooled)
		}
		if fooled != audit.Corrupt {
			return fmt.Errorf("%s: commit acceptance and audit disagree", l.name)
		}
	}

	fmt.Println()
	fmt.Println("(same structure, same schedule — only the Guard regime changed.)")
	return nil
}
