// Command treiberstack demonstrates the classic ABA corruption of a Treiber
// stack with recycled nodes, and how guarding the head with an LL/SC object
// (built from a single bounded CAS word, the paper's Figure 3) eliminates
// it.
//
// The script is the textbook interleaving: a victim reads the head node and
// its successor, stalls, and meanwhile an adversary pops several nodes and
// pushes a recycled one so the head *index* is restored.  A raw CAS is
// fooled and swings the head onto a freed node; the LL/SC-guarded commit
// fails and the victim simply retries.
//
// Run with: go run ./examples/treiberstack
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	abadetect "abadetect"
)

const capacity = 3

// stack is a minimal index-based Treiber stack: head names a node in a
// small pool, next links the chain, and freed nodes go back to a FIFO free
// queue (the "allocator").  The head guard is pluggable.
type stack struct {
	next  [capacity + 1]uint64
	value [capacity + 1]uint64
	free  []int
}

func newStack() *stack {
	s := &stack{}
	for i := 1; i <= capacity; i++ {
		s.free = append(s.free, i)
	}
	return s
}

func (s *stack) alloc() int {
	idx := s.free[0]
	s.free = s.free[1:]
	return idx
}

func (s *stack) release(idx int) { s.free = append(s.free, idx) }

// guard abstracts the head reference: raw CAS vs LL/SC.
type guard interface {
	load() int
	commit(newIdx int) bool
	name() string
}

type rawGuard struct {
	head *atomic.Uint64 // shared by all guards of one stack
	last uint64         // this process's snapshot
}

func (g *rawGuard) load() int { g.last = g.head.Load(); return int(g.last) }
func (g *rawGuard) commit(newIdx int) bool {
	return g.head.CompareAndSwap(g.last, uint64(newIdx))
}
func (g *rawGuard) name() string { return "raw CAS" }

type llscGuard struct {
	h abadetect.LLSCHandle
}

func (g *llscGuard) load() int              { return int(g.h.LL()) }
func (g *llscGuard) commit(newIdx int) bool { return g.h.SC(uint64(newIdx)) }
func (g *llscGuard) name() string           { return "LL/SC (Figure 3, one bounded CAS word)" }

func push(s *stack, g guard, v uint64) {
	idx := s.alloc()
	s.value[idx] = v
	for {
		top := g.load()
		s.next[idx] = uint64(top)
		if g.commit(idx) {
			return
		}
	}
}

func pop(s *stack, g guard) uint64 {
	for {
		top := g.load()
		next := s.next[top]
		if g.commit(int(next)) {
			v := s.value[top]
			s.release(top)
			return v
		}
	}
}

// scenario plays the interleaving against one guard and reports whether the
// victim's stale commit was accepted.
func scenario(victimGuard, adversaryGuard guard) (fooled bool, headAfter int) {
	s := newStack()
	// Setup: chain 3(103) -> 2(102) -> 1(101).
	for i := 1; i <= 3; i++ {
		push(s, adversaryGuard, uint64(100+i))
	}

	// Victim: reads head (node 3) and its successor (node 2)... and stalls.
	victimTop := victimGuard.load()
	victimNext := s.next[victimTop]

	// Adversary: pops everything and pushes one value.  The FIFO allocator
	// hands node 3 back, so the head index is 3 again — but node 2 is free.
	pop(s, adversaryGuard)
	pop(s, adversaryGuard)
	pop(s, adversaryGuard)
	push(s, adversaryGuard, 104)

	// Victim resumes and tries to swing head from node 3 to node 2.
	fooled = victimGuard.commit(int(victimNext))
	return fooled, victimGuard.load()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Treiber stack ABA scenario: victim stalls mid-pop while nodes recycle")
	fmt.Println()

	// Raw CAS: fooled.  Victim and adversary get separate per-process
	// guards over one shared head word.
	var rawHead atomic.Uint64
	rawVictim := &rawGuard{head: &rawHead}
	rawAdversary := &rawGuard{head: &rawHead}
	fooled, head := scenario(rawVictim, rawAdversary)
	fmt.Printf("%-45s fooled=%-5v head now points at node %d — a FREED node (corrupt!)\n",
		rawVictim.name()+":", fooled, head)
	if !fooled {
		return fmt.Errorf("raw CAS unexpectedly survived")
	}

	// LL/SC: immune.  Both victim and adversary use handles of one object.
	obj, err := abadetect.NewLLSC(2, abadetect.WithValueBits(8))
	if err != nil {
		return err
	}
	vh, err := obj.Handle(0)
	if err != nil {
		return err
	}
	ah, err := obj.Handle(1)
	if err != nil {
		return err
	}
	victim := &llscGuard{h: vh}
	adversary := &llscGuard{h: ah}
	fooled, head = scenario(victim, adversary)
	fmt.Printf("%-45s fooled=%-5v head still at node %d — victim's SC failed, it retries safely\n",
		victim.name()+":", fooled, head)
	if fooled {
		return fmt.Errorf("LL/SC guard was fooled — this should be impossible")
	}

	fmt.Println()
	fmt.Printf("footprint of the LL/SC guard: %s\n", obj.Footprint())
	fmt.Println("(Theorem 2: one bounded CAS word suffices, at O(n) steps per operation.)")
	return nil
}
