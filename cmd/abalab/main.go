// Command abalab runs the full experiment suite of the reproduction — one
// experiment per paper artifact (see DESIGN.md's index, E1-E9) — and prints
// the resulting tables.
//
// Usage:
//
//	abalab            # run everything
//	abalab -run E2    # run one experiment
//	abalab -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abadetect/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abalab:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("abalab", flag.ContinueOnError)
	var (
		only = fs.String("run", "", "run a single experiment (E1..E9)")
		list = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	experiments := map[string]func() (*bench.Table, error){
		"E1": bench.E1ModelCheck,
		"E2": func() (*bench.Table, error) { return bench.E2TimeSpace([]int{2, 4, 8, 16, 32}) },
		"E3": bench.E3Fig3,
		"E4": bench.E4Fig4,
		"E5": bench.E5Fig5,
		"E6": bench.E6Stack,
		"E7": bench.E7Separation,
		"E8": bench.E8Ablations,
		"E9": bench.E9ConstantTime,
	}

	if *list {
		fmt.Fprintln(out, "E1  space lower bound via model checking (Thm 1(a), Lemma 1)")
		fmt.Fprintln(out, "E2  time-space trade-off under the hiding adversary (Thm 1(b,c), Cor 1)")
		fmt.Fprintln(out, "E3  LL/SC/VL from one bounded CAS (Thm 2, Fig 3)")
		fmt.Fprintln(out, "E4  detecting register from n+1 registers (Thm 3, Fig 4)")
		fmt.Fprintln(out, "E5  detecting register from one LL/SC/VL (Thm 4, Fig 5)")
		fmt.Fprintln(out, "E6  Treiber-stack corruption & tag wraparound (§1)")
		fmt.Fprintln(out, "E7  bounded vs unbounded domain growth (§1)")
		fmt.Fprintln(out, "E8  Figure 4 ablations refuted (App. C)")
		fmt.Fprintln(out, "E9  constant-time LL/SC from one CAS + n registers ([2,15])")
		return nil
	}

	if *only != "" {
		runner, ok := experiments[*only]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *only)
		}
		tbl, err := runner()
		if err != nil {
			return err
		}
		return tbl.Fprint(out)
	}

	tables, err := bench.Suite()
	if err != nil {
		// Print what we have; the error explains the rest.
		_ = bench.FprintAll(out, tables)
		return err
	}
	return bench.FprintAll(out, tables)
}
