// Command abalab runs the experiment suite of the reproduction — one
// experiment per paper artifact (E1-E17) — and reports on the registered
// implementations.  Experiments and implementations are both enumerated
// from their registries (internal/bench.Experiments, internal/registry), so
// this command never needs editing when either grows.
//
// Usage:
//
//	abalab                  # run every experiment
//	abalab -run E2          # run one experiment
//	abalab -run E14         # read-scaling matrix: wait-free reads × workers
//	abalab -list            # list experiments and implementations
//	abalab -impl fig4 -n 8  # inspect one implementation at n processes
//	abalab -impl all -n 8   # ... or every implementation
//	abalab -app all         # application matrix: every structure × guard
//	abalab -app queue       # ... or one structure across every guard
//	abalab -reclaim all     # reclamation matrix: structure × regime × SMR
//	abalab -reclaim hp -app stack   # ... filtered to one scheme/structure
//	abalab -load all        # traffic matrix (E13): map × regime × SMR × profile
//	abalab -load zipf-hot -reclaim hp   # ... filtered to one profile/scheme
//	abalab -load poisson -app stack -elim 2 -cache 16   # pin the fast-path knobs
//	abalab -load poisson-shed -seed 42  # replay a profile on a different RNG seed
//	abalab -scale map       # read-scaling matrix (E14) for one structure
//	abalab -grow            # growth matrix (E15): map growth 10k→1M keys under live traffic
//	abalab -grow -grow-keys 10000   # ... capped to the 10k-key tier (CI smoke)
//	abalab -pressure full   # reclamation-pressure matrix (E16): limbo occupancy and alloc-miss lag
//	abalab -pressure smoke  # ... trimmed per-cell ops (CI smoke)
//	abalab -run E17         # observability matrix: flight-recorder overhead, trace off/on
//	abalab -serve :8080     # live metrics over a traced structure: /metrics, /debug/vars, /trace, /debug/pprof
//	abalab -trace-dump map  # run a deterministic ABA scenario and print its incident flight record
//	abalab -json ...        # any of the above, as machine-readable JSON
//
// Benchmark regression check: re-run the throughput experiments (E10 base
// objects, E11 application matrix, E12 reclamation matrix, E13 traffic
// matrix, E14 read-scaling matrix, E15 growth matrix, E16 pressure matrix,
// E17 observability matrix) and diff them against a committed snapshot
// (BENCH_baseline.json is the seed, BENCH_pr2.json the slab/devirtualized
// substrate, BENCH_pr3.json adds the application matrix, BENCH_pr4.json the
// reclamation matrix, BENCH_pr5.json the map and traffic matrices,
// BENCH_pr6.json the fast-path variants and backpressure profiles,
// BENCH_pr7.json the wait-free read paths and the read-scaling matrix,
// BENCH_pr8.json the growth matrix, BENCH_pr9.json the reclamation-pressure
// matrix, BENCH_pr10.json the observability matrix — and, from pr10 on, a
// Machine header identifying the recording host, echoed by -bench-compare):
//
//	abalab -bench-compare BENCH_pr10.json
//	abalab -json > BENCH_pr11.json   # record a new snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"abadetect/internal/bench"
	"abadetect/internal/load"
	"abadetect/internal/registry"
	"abadetect/internal/shmem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abalab:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("abalab", flag.ContinueOnError)
	var (
		only     = fs.String("run", "", "run a single experiment (E1..E15)")
		list     = fs.Bool("list", false, "list experiments and implementations, then exit")
		impl     = fs.String("impl", "", "inspect a registered implementation by ID (or 'all')")
		app      = fs.String("app", "", "run the application matrix: a structure ID (stack, queue, event) or 'all'")
		reclaim  = fs.String("reclaim", "", "run the reclamation matrix (E12): a scheme ID (hp, epoch, none) or 'all'; combine with -app to filter the structure")
		loadP    = fs.String("load", "", "run the traffic matrix (E13): a load-profile ID (see -list) or 'all'; combine with -app and -reclaim to filter")
		scale    = fs.String("scale", "", "run the read-scaling matrix (E14): a structure ID or 'all'; combine with -reclaim to filter the scheme")
		grow     = fs.Bool("grow", false, "run the growth matrix (E15): split-ordered map growth + geometric pool expansion under live traffic")
		growKeys = fs.Int("grow-keys", 0, "for -grow: cap the key-space sweep at this many keys (0 = the full 10k→1M sweep)")
		pressure = fs.String("pressure", "", "run the reclamation-pressure matrix (E16): 'full' or 'smoke' (trimmed per-cell ops for CI)")
		n        = fs.Int("n", 8, "process count for -impl")
		asJSON   = fs.Bool("json", false, "emit machine-readable JSON instead of tables")
		compare  = fs.String("bench-compare", "", "diff fresh throughput runs (E10/E11/E12/E13) against a benchmark snapshot (e.g. BENCH_pr6.json)")
		serveAt  = fs.String("serve", "", "serve live metrics over a traced structure under background churn at this address (e.g. :8080): /metrics, /debug/vars, /trace, /debug/pprof")
		dump     = fs.String("trace-dump", "", "run a deterministic ABA scenario (stack, queue, map, map-grow, or 'all') under raw+none and pretty-print its incident flight record")
		seed     = fs.Uint64("seed", 0, "override the load profiles' RNG seed for -load runs (0 = each profile's committed default)")
		elim     = fs.Int("elim", 0, "for -load: pin every cell to an elimination array of this many slots (stack)")
		cache    = fs.Int("cache", 0, "for -load: pin every cell to per-worker node caches of this capacity")
		combine  = fs.Bool("combine", false, "for -load: pin every cell to flat-combining hot buckets (map)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	emit := func(tables []*bench.Table) error {
		if *asJSON {
			return bench.WriteJSON(out, tables)
		}
		return bench.FprintAll(out, tables)
	}

	if *list {
		if *asJSON {
			return printIndexJSON(out)
		}
		return printIndex(out)
	}

	if *serveAt != "" {
		return serveMain(*serveAt, out)
	}

	if *dump != "" {
		return runTraceDump(out, *dump)
	}

	if *compare != "" {
		snap, err := bench.LoadSnapshot(*compare)
		if err != nil {
			return err
		}
		tables, _, err := bench.CompareThroughput(snap.Tables)
		if err != nil {
			return err
		}
		if !*asJSON {
			// A cross-machine or cross-toolchain diff is context every
			// verdict below depends on — print both headers first.
			if snap.Machine == (bench.Machine{}) {
				fmt.Fprintln(out, "snapshot machine: unrecorded (pre-envelope snapshot)")
			} else {
				fmt.Fprintf(out, "snapshot machine: %s\n", snap.Machine)
			}
			fmt.Fprintf(out, "current machine:  %s\n\n", bench.CurrentMachine())
		}
		return emit(tables)
	}

	if *grow {
		tbl, err := bench.E15GrowthMatrix(*growKeys)
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	if *pressure != "" {
		if *pressure != "full" && *pressure != "smoke" {
			return fmt.Errorf("-pressure wants 'full' or 'smoke', got %q", *pressure)
		}
		tbl, err := bench.E16PressureMatrix(*pressure == "smoke")
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	if *scale != "" {
		schemeFilter := *reclaim
		if schemeFilter == "" {
			schemeFilter = "all"
		}
		tbl, err := bench.E14ReadScaling(*scale, schemeFilter)
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	if *loadP != "" {
		structFilter := *app
		if structFilter == "" {
			structFilter = "map"
		}
		schemeFilter := *reclaim
		if schemeFilter == "" {
			schemeFilter = "all"
		}
		opts := bench.E13Options{Seed: *seed}
		if *elim != 0 || *cache != 0 || *combine {
			opts.Tuning = &bench.Tuning{Elimination: *elim, LocalCache: *cache, Combining: *combine}
		}
		tbl, err := bench.E13LoadMatrixOpts(structFilter, schemeFilter, *loadP, opts)
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	if *reclaim != "" {
		structFilter := *app
		if structFilter == "" {
			structFilter = "all"
		}
		tbl, err := bench.E12Reclaim(structFilter, *reclaim)
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	if *app != "" {
		tbl, err := bench.E11Apps(*app)
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	if *impl != "" {
		tables, err := implTables(*impl, *n)
		if err != nil {
			return err
		}
		return emit(tables)
	}

	if *only != "" {
		e, ok := bench.Lookup(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *only)
		}
		tbl, err := e.Run()
		if err != nil {
			return err
		}
		return emit([]*bench.Table{tbl})
	}

	tables, err := bench.Suite()
	if err != nil {
		// Print what we have; the error explains the rest.
		_ = emit(tables)
		return err
	}
	return emit(tables)
}

// printIndex lists the experiment index and the implementation registry.
func printIndex(out io.Writer) error {
	fmt.Fprintln(out, "experiments:")
	for _, e := range bench.Experiments() {
		fmt.Fprintf(out, "  %-4s %s\n", e.ID, e.Title)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "implementations (use with -impl; structures also run the guard matrix with -app):")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  id\tkind\tm(n)\tt(n)\tbounded\tcorrect\ttheorem")
	for _, im := range registry.All() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%v\t%v\t%s\n",
			im.ID, im.Kind, im.Space, im.Steps, im.Bounded, im.Correct, im.Theorem)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "guard regimes (structure protection, -app matrix):")
	for _, spec := range registry.GuardSpecs(false) {
		kind := "conditional"
		if !spec.Conditional() {
			kind = "detection-only (event flag)"
		}
		fmt.Fprintf(out, "  %-22s %s\n", spec, kind)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "reclamation schemes (node-pool SMR, -reclaim matrix):")
	for _, im := range registry.Reclaimers() {
		fmt.Fprintf(out, "  %-22s %s\n", im.ID, im.Summary)
	}
	fmt.Fprintf(out, "  %-22s %s\n", "epoch:<k>",
		"epoch with a fixed advance cadence of k retires (e.g. epoch:64); the default cadence is min(2n, cap/n)")
	fmt.Fprintln(out)
	fmt.Fprintln(out, "load profiles (traffic generator, -load / E13):")
	for _, p := range load.Profiles() {
		fmt.Fprintf(out, "  %-22s %s\n", p.ID, p.Summary)
	}
	return nil
}

// printIndexJSON emits the same index machine-readably.
func printIndexJSON(out io.Writer) error {
	type experiment struct {
		ID    string
		Title string
	}
	type implementation struct {
		ID      string
		Kind    string
		Summary string
		Theorem string
		Space   string
		Steps   string
		Bounded bool
		Correct bool
	}
	index := struct {
		Experiments     []experiment
		Implementations []implementation
	}{}
	for _, e := range bench.Experiments() {
		index.Experiments = append(index.Experiments, experiment{e.ID, e.Title})
	}
	for _, im := range registry.All() {
		index.Implementations = append(index.Implementations, implementation{
			ID: im.ID, Kind: string(im.Kind), Summary: im.Summary, Theorem: im.Theorem,
			Space: im.Space, Steps: im.Steps, Bounded: im.Bounded, Correct: im.Correct,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(index)
}

// implTables reports one (or every) registered implementation at n
// processes: metadata, measured footprint, and a quick throughput probe.
func implTables(id string, n int) ([]*bench.Table, error) {
	var impls []registry.Impl
	if id == "all" {
		impls = registry.All()
	} else {
		im, ok := registry.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown implementation %q (try -list)", id)
		}
		impls = []registry.Impl{im}
	}
	var tables []*bench.Table
	for _, im := range impls {
		tbl, err := implTable(im, n)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

func implTable(im registry.Impl, n int) (*bench.Table, error) {
	t := &bench.Table{
		ID:     im.ID,
		Title:  im.Summary,
		Header: []string{"property", "value"},
	}
	t.AddRow("kind", string(im.Kind))
	t.AddRow("theorem", im.Theorem)
	if im.Kind == registry.KindStructure {
		t.AddRow("space", im.Space+" (capacity-dependent)")
	} else {
		t.AddRow("space m(n)", fmt.Sprintf("%s (= %d at n=%d)", im.Space, im.SpaceFn(n), n))
	}
	t.AddRow("steps t(n)", im.Steps)
	t.AddRow("bounded", fmt.Sprintf("%v", im.Bounded))
	t.AddRow("correct", fmt.Sprintf("%v", im.Correct))

	const valueBits = 16
	const pairs = 100_000
	f := shmem.NewNativeFactory()
	workload, elapsed, err := bench.SequentialProbe(im, f, n, valueBits, pairs)
	if err != nil {
		return nil, fmt.Errorf("%s at n=%d: %w", im.ID, n, err)
	}
	t.AddRow("measured footprint", f.Footprint().String())
	t.AddRow("throughput probe",
		fmt.Sprintf("%s: %d ops in %v (%.1f ns/op)",
			workload, pairs, elapsed.Round(time.Microsecond),
			float64(elapsed.Nanoseconds())/float64(pairs)))
	if !im.Correct {
		t.AddNote("deliberate foil: its word repeats after 2^%d writes and a poised reader misses them.", im.TagBits)
	}
	return t, nil
}
