package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing lacks %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "time-space trade-off") {
		t.Errorf("E2 output missing title:\n%s", out)
	}
	if !strings.Contains(out, "Figure 3 (1 CAS)") {
		t.Errorf("E2 output missing rows:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E42"}, &buf); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nonsense"}, &buf); err == nil {
		t.Error("want error for unknown flag")
	}
}
