package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"abadetect/internal/bench"
	"abadetect/internal/load"
	"abadetect/internal/registry"
)

// unmarshalTables decodes the Tables array out of the machine-header
// envelope every -json table output now carries (bench.WriteJSON).
func unmarshalTables(t *testing.T, data []byte, into any) {
	t.Helper()
	var snap struct{ Tables json.RawMessage }
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-json output is not a snapshot envelope: %v", err)
	}
	if snap.Tables == nil {
		t.Fatalf("-json envelope has no Tables: %s", data)
	}
	if err := json.Unmarshal(snap.Tables, into); err != nil {
		t.Fatalf("snapshot Tables do not decode: %v", err)
	}
}

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing lacks experiment %s", id)
		}
	}
	if !strings.Contains(out, "reclamation schemes") {
		t.Error("listing lacks the reclamation-scheme section")
	}
	if !strings.Contains(out, "load profiles") {
		t.Error("listing lacks the load-profile section")
	}
	for _, p := range load.Profiles() {
		if !strings.Contains(out, p.ID) {
			t.Errorf("listing lacks load profile %s", p.ID)
		}
	}
	// Every registered implementation appears in the listing.
	for _, id := range registry.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("listing lacks implementation %s", id)
		}
	}
	// The guard matrix is listed too.
	for _, spec := range registry.GuardSpecs(false) {
		if !strings.Contains(out, spec.String()) {
			t.Errorf("listing lacks guard spec %s", spec)
		}
	}
}

func TestListJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var index struct {
		Experiments     []struct{ ID string }
		Implementations []struct{ ID string }
	}
	if err := json.Unmarshal(buf.Bytes(), &index); err != nil {
		t.Fatalf("-list -json is not valid JSON: %v", err)
	}
	if len(index.Experiments) != len(bench.Experiments()) || len(index.Implementations) != len(registry.IDs()) {
		t.Errorf("index has %d experiments and %d implementations",
			len(index.Experiments), len(index.Implementations))
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "time-space trade-off") {
		t.Errorf("E2 output missing title:\n%s", out)
	}
	if !strings.Contains(out, "fig3 (1 CAS)") {
		t.Errorf("E2 output missing rows:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E42"}, &buf); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nonsense"}, &buf); err == nil {
		t.Error("want error for unknown flag")
	}
}

func TestImplFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-impl", "fig4", "-n", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Theorem 3 (Figure 4)", "n+1 registers (= 5 at n=4)", "m=5 (5 registers + 0 CAS)", "throughput probe"} {
		if !strings.Contains(out, want) {
			t.Errorf("-impl fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestImplAllCoversRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-impl", "all", "-n", "4", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct{ ID string }
	unmarshalTables(t, buf.Bytes(), &tables)
	seen := map[string]bool{}
	for _, tbl := range tables {
		seen[tbl.ID] = true
	}
	for _, id := range registry.IDs() {
		if !seen[id] {
			t.Errorf("-impl all lacks %s", id)
		}
	}
}

func TestImplUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-impl", "no-such-impl"}, &buf); err == nil {
		t.Error("want error for unknown implementation")
	}
}

func TestBenchCompare(t *testing.T) {
	// The committed PR2 snapshot must be loadable and comparable: every E10
	// row of the snapshot reappears in a fresh run with a parsed speedup.
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "../../BENCH_pr2.json", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E10-compare" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	if len(tables[0].Rows) == 0 {
		t.Error("comparison has no rows")
	}
	for _, row := range tables[0].Rows {
		if len(row) != 5 {
			t.Errorf("comparison row %v has %d cells, want 5", row, len(row))
		}
		if row[4] == "new" {
			t.Errorf("row %v missing from the committed snapshot", row)
		}
		if row[4] == "removed" {
			t.Errorf("snapshot row %v no longer produced by a fresh run", row)
		}
	}
}

func TestBenchCompareMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "no-such-snapshot.json"}, &buf); err == nil {
		t.Error("want error for missing snapshot file")
	}
}

func TestJSONExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E2" || len(tables[0].Rows) == 0 {
		t.Errorf("unexpected JSON shape: %+v", tables)
	}
}

func TestAppMatrix(t *testing.T) {
	// The acceptance criterion of the guard refactor: -app runs every
	// structure over every protection regime in the registry matrix.
	var buf bytes.Buffer
	if err := run([]string{"-app", "all", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E11" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	rowFor := map[string]bool{}
	for _, row := range tables[0].Rows {
		rowFor[row[0]] = true
	}
	for _, im := range registry.Structures() {
		for _, spec := range registry.GuardSpecs(im.ID != "event") {
			key := im.ID + "/" + spec.String()
			if !rowFor[key] {
				t.Errorf("matrix lacks %s", key)
			}
		}
	}
}

func TestAppSingleStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "queue"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "queue/llsc:fig3") || strings.Contains(out, "stack/raw") {
		t.Errorf("-app queue output wrong:\n%s", out)
	}
}

func TestAppUnknownStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "no-such-structure"}, &buf); err == nil {
		t.Error("want error for unknown structure")
	}
}

func TestBenchComparePR3CoversApps(t *testing.T) {
	// The PR3 snapshot carries both throughput tables, so the comparison
	// must too — E10 for base objects and E11 for the application matrix.
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "../../BENCH_pr3.json", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 2 || tables[0].ID != "E10-compare" || tables[1].ID != "E11-compare" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			// The map structure postdates the PR3 snapshot, so its rows are
			// legitimately "new"; anything else must line up.
			if row[4] == "new" && !strings.HasPrefix(row[0], "map/") && !pr9Row(row[0]) {
				t.Errorf("%s row %v missing from the committed snapshot", tbl.ID, row)
			}
			if row[4] == "removed" {
				t.Errorf("%s snapshot row %v no longer produced by a fresh run", tbl.ID, row)
			}
		}
	}
}

// pr6Row reports whether an E13 row key names a cell that postdates the PR5
// snapshot: a tuned fast-path variant (+elim/+fc/+cache label suffixes), one
// of the backpressure profiles, or a stack traffic cell.
func pr6Row(key string) bool {
	for _, marker := range []string{"+elim", "+fc", "+cache", "/poisson-shed", "/burst-block"} {
		if strings.Contains(key, marker) {
			return true
		}
	}
	return strings.HasPrefix(key, "stack/")
}

// pr9Row reports whether a row key names a cell that postdates the pre-PR9
// snapshots: registering the epoch:auto reclaimer expanded every
// registry-driven matrix with new scheme cells.
func pr9Row(key string) bool { return strings.Contains(key, "epoch:auto") }

func TestBenchComparePR5CoversTraffic(t *testing.T) {
	// The PR5 snapshot carries all four throughput tables — E10 base
	// objects, E11 applications (map included), E12 reclamation, and the
	// E13 traffic matrix — and every pre-existing row key must line up with
	// a fresh run.  E13 rows that postdate the snapshot (fast-path
	// variants, backpressure profiles, stack cells) are legitimately "new";
	// nothing may be "removed".
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "../../BENCH_pr5.json", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	wantIDs := []string{"E10-compare", "E11-compare", "E12-compare", "E13-compare"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("comparison has %d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tbl := range tables {
		if tbl.ID != wantIDs[i] {
			t.Fatalf("table %d is %q, want %q", i, tbl.ID, wantIDs[i])
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if row[4] == "new" && !pr9Row(row[0]) && !(tbl.ID == "E13-compare" && pr6Row(row[0])) {
				t.Errorf("%s row %v did not match the committed snapshot", tbl.ID, row)
			}
			if row[4] == "removed" {
				t.Errorf("%s snapshot row %v no longer produced by a fresh run", tbl.ID, row)
			}
		}
	}
}

func TestBenchComparePR6CoversTraffic(t *testing.T) {
	// The PR6 snapshot was taken after the tuned variants, backpressure
	// profiles, and stack cells landed, so a fresh run must line up with it
	// exactly: no "new" rows, no "removed" rows, anywhere.  It also carries
	// the p999 column, so the E13 comparison must grow the tail-gain
	// columns.
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "../../BENCH_pr6.json", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	wantIDs := []string{"E10-compare", "E11-compare", "E12-compare", "E13-compare"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("comparison has %d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tbl := range tables {
		if tbl.ID != wantIDs[i] {
			t.Fatalf("table %d is %q, want %q", i, tbl.ID, wantIDs[i])
		}
		for _, row := range tbl.Rows {
			if (row[4] == "new" && !pr9Row(row[0])) || row[4] == "removed" {
				t.Errorf("%s row %v does not line up with the PR6 snapshot", tbl.ID, row)
			}
		}
		if tbl.ID == "E13-compare" {
			want := []string{"snapshot p999", "current p999", "tail gain"}
			if len(tbl.Header) != 8 {
				t.Fatalf("E13-compare header %v lacks the tail columns", tbl.Header)
			}
			for j, name := range want {
				if tbl.Header[5+j] != name {
					t.Errorf("E13-compare header[%d] = %q, want %q", 5+j, tbl.Header[5+j], name)
				}
			}
		}
	}
}

func TestScaleMatrixFlag(t *testing.T) {
	// -scale runs E14; -reclaim narrows the scheme.  One structure and one
	// scheme keep the smoke test cheap: 4 regimes × 4 worker counts.
	var buf bytes.Buffer
	if err := run([]string{"-scale", "stack", "-reclaim", "none", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E14" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	if len(tables[0].Rows) != 16 { // stack × 4 regimes × 1 scheme × 4 worker counts
		t.Fatalf("stack/none matrix has %d rows, want 16", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if !strings.HasPrefix(row[0], "stack/") || !strings.HasSuffix(row[0], "+none") {
			t.Errorf("unexpected row key %q", row[0])
		}
		if !strings.HasSuffix(row[6], "x") {
			t.Errorf("row %q scale column %q is not a ratio", row[0], row[6])
		}
	}
	if err := run([]string{"-scale", "no-such-structure"}, &buf); err == nil {
		t.Error("want error for unknown structure filter")
	}
	if err := run([]string{"-scale", "stack", "-reclaim", "no-such-scheme"}, &buf); err == nil {
		t.Error("want error for unknown scheme filter")
	}
}

func TestBenchComparePR7CoversReadScaling(t *testing.T) {
	// The PR7 snapshot was taken after the wait-free read paths and the E14
	// read-scaling matrix landed, so a fresh run must produce all five
	// comparison tables and line up with the snapshot exactly — and the
	// E14 diff must carry the scale columns alongside the throughput diff.
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "../../BENCH_pr7.json", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	wantIDs := []string{"E10-compare", "E11-compare", "E12-compare", "E13-compare", "E14-compare"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("comparison has %d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tbl := range tables {
		if tbl.ID != wantIDs[i] {
			t.Fatalf("table %d is %q, want %q", i, tbl.ID, wantIDs[i])
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if (row[4] == "new" && !pr9Row(row[0])) || row[4] == "removed" {
				t.Errorf("%s row %v does not line up with the PR7 snapshot", tbl.ID, row)
			}
		}
		if tbl.ID == "E14-compare" {
			want := []string{"snapshot scale", "current scale"}
			if len(tbl.Header) < 7 {
				t.Fatalf("E14-compare header %v lacks the scale columns", tbl.Header)
			}
			for j, name := range want {
				if got := tbl.Header[len(tbl.Header)-2+j]; got != name {
					t.Errorf("E14-compare header tail[%d] = %q, want %q", j, got, name)
				}
			}
		}
	}
}

func TestImplAllAtNOne(t *testing.T) {
	// n=1 is a supported registry point; the structure probes must degrade
	// (the event probe clamps to a signaler + poller) instead of failing
	// the whole report.
	var buf bytes.Buffer
	if err := run([]string{"-impl", "all", "-n", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"stack", "queue", "event", "map"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("-impl all -n 1 report lacks %s", id)
		}
	}
}

func TestLoadMatrixFlag(t *testing.T) {
	// -load runs E13; -reclaim and -app narrow the matrix.  One profile and
	// one scheme keep the smoke test cheap: 4 regimes worth of rows, each
	// carrying latency percentiles.
	var buf bytes.Buffer
	if err := run([]string{"-load", "steady", "-reclaim", "none", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E13" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	if len(tables[0].Rows) != 8 { // map × 4 regimes × 1 scheme × 1 profile × 2 variants
		t.Fatalf("steady/none matrix has %d rows, want 8", len(tables[0].Rows))
	}
	wantCols := []string{"p50", "p99", "p999", "shed", "fast-path"}
	for _, col := range wantCols {
		found := false
		for _, h := range tables[0].Header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Errorf("E13 header lacks the %s column", col)
		}
	}
	for _, row := range tables[0].Rows {
		if !strings.HasPrefix(row[0], "map/") ||
			!(strings.HasSuffix(row[0], "+none/steady") || strings.HasSuffix(row[0], "+none/steady+fc+cache16")) {
			t.Errorf("unexpected row key %q", row[0])
		}
	}
	if err := run([]string{"-load", "no-such-profile"}, &buf); err == nil {
		t.Error("want error for unknown load profile")
	}
	if err := run([]string{"-load", "steady", "-app", "no-such-structure"}, &buf); err == nil {
		t.Error("want error for unknown structure filter")
	}
}

func TestLoadMatrixTuningFlags(t *testing.T) {
	// -elim/-cache/-combine pin every cell to one explicit tuning, and
	// -seed replays the profile on a different RNG stream.
	var buf bytes.Buffer
	if err := run([]string{"-load", "steady", "-reclaim", "none", "-app", "stack",
		"-elim", "2", "-cache", "8", "-seed", "42", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("pinned matrix has %d tables / %d rows, want 1 / 4", len(tables), len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if !strings.HasPrefix(row[0], "stack/") || !strings.HasSuffix(row[0], "+elim2+cache8") {
			t.Errorf("unexpected row key %q", row[0])
		}
	}
}

func TestReclaimMatrixFlag(t *testing.T) {
	// -reclaim runs E12; -app narrows the structure.  The event flag keeps
	// the smoke test cheap (no node pool, no contention).
	var buf bytes.Buffer
	if err := run([]string{"-reclaim", "none", "-app", "event", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E12" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	if len(tables[0].Rows) != 4 { // event × 4 regimes × 1 scheme
		t.Fatalf("event/none matrix has %d rows, want 4", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if !strings.HasPrefix(row[0], "event/") || !strings.HasSuffix(row[0], "+none") {
			t.Errorf("unexpected row key %q", row[0])
		}
	}
	if err := run([]string{"-reclaim", "no-such-scheme"}, &buf); err == nil {
		t.Error("want error for unknown reclamation scheme")
	}
	if err := run([]string{"-reclaim", "hp", "-app", "no-such-structure"}, &buf); err == nil {
		t.Error("want error for unknown structure filter")
	}
}

func TestBenchComparePR4CoversReclaim(t *testing.T) {
	// The PR4 snapshot carries all three throughput tables; the comparison
	// must diff E10, E11, and the new E12 reclamation matrix, and every row
	// key must line up with a fresh run (no renames, no lost cells).
	var buf bytes.Buffer
	if err := run([]string{"-bench-compare", "../../BENCH_pr4.json", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID   string
		Rows [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 3 || tables[0].ID != "E10-compare" || tables[1].ID != "E11-compare" || tables[2].ID != "E12-compare" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			// Map rows postdate the PR4 snapshot (see the PR3 test); every
			// pre-existing cell must still line up.
			if row[4] == "new" && !strings.HasPrefix(row[0], "map/") && !pr9Row(row[0]) {
				t.Errorf("%s row %v missing from the committed snapshot", tbl.ID, row)
			}
			if row[4] == "removed" {
				t.Errorf("%s snapshot row %v no longer produced by a fresh run", tbl.ID, row)
			}
		}
	}
}

func TestBenchPR8SnapshotCarriesGrowthMatrix(t *testing.T) {
	// The PR8 snapshot is the first to carry E15.  A full -bench-compare
	// against it re-runs every throughput experiment including the
	// multi-minute 1M-key growth tier, so CI does that report-only; here we
	// pin the committed snapshot's shape instead — all six throughput tables
	// present, and the E15 table carrying the growth columns the comparison
	// keys on — so a regenerated snapshot can't silently drop the matrix.
	snapshot, err := bench.LoadTables("../../BENCH_pr8.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E10", "E11", "E12", "E13", "E14", "E15"} {
		if _, ok := bench.FindTable(snapshot, id); !ok {
			t.Errorf("BENCH_pr8.json lacks the %s table", id)
		}
	}
	e15, _ := bench.FindTable(snapshot, "E15")
	if e15 == nil {
		return
	}
	for _, col := range []string{"ns/op", "p999", "splits", "appends", "resize-stalls", "outcome"} {
		found := false
		for _, h := range e15.Header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Errorf("E15 snapshot lacks the %s column", col)
		}
	}
	// 10k tier: 4 regimes × 3 schemes; 100k tier: 2 × 2; 1M tier: 1 × 2.
	if len(e15.Rows) != 18 {
		t.Errorf("E15 snapshot has %d rows, want 18", len(e15.Rows))
	}
	for _, row := range e15.Rows {
		outcome := row[len(row)-1]
		if !strings.HasPrefix(row[0], "map/raw") && strings.Contains(outcome, "corrupt=true") {
			t.Errorf("snapshot sound cell %s corrupted: %s", row[0], outcome)
		}
	}
}

func TestBenchPR9SnapshotCarriesPressureMatrix(t *testing.T) {
	// The PR9 snapshot is the first to carry E16.  As with PR8, the full
	// -bench-compare re-run happens report-only in CI; here we pin the
	// committed snapshot's shape — all seven throughput tables present, the
	// E16 table carrying the pressure columns the comparison keys on, and
	// the headline contrast recorded: the lazy fixed cadence starves
	// allocations on the write-leaning cells while epoch:auto does not.
	snapshot, err := bench.LoadTables("../../BENCH_pr9.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E10", "E11", "E12", "E13", "E14", "E15", "E16"} {
		if _, ok := bench.FindTable(snapshot, id); !ok {
			t.Errorf("BENCH_pr9.json lacks the %s table", id)
		}
	}
	e16, _ := bench.FindTable(snapshot, "E16")
	if e16 == nil {
		return
	}
	cols := map[string]int{}
	for i, h := range e16.Header {
		cols[h] = i
	}
	for _, col := range []string{"ns/op", "p999", "limbo", "alloc-miss", "scans", "skips", "batches", "tune", "outcome"} {
		if _, ok := cols[col]; !ok {
			t.Errorf("E16 snapshot lacks the %s column", col)
		}
	}
	// stack runs write-lean only (5 schemes); the map runs both profiles.
	if len(e16.Rows) != 15 {
		t.Errorf("E16 snapshot has %d rows, want 15", len(e16.Rows))
	}
	miss := map[string]string{}
	for _, row := range e16.Rows {
		if strings.Contains(row[cols["outcome"]], "corrupt=true") {
			t.Errorf("snapshot cell %s corrupted under sound guards: %s", row[0], row[cols["outcome"]])
		}
		miss[row[0]] = row[cols["alloc-miss"]]
	}
	for _, structID := range []string{"stack", "map"} {
		if miss[structID+"/epoch:64/write-lean"] == "0" {
			t.Errorf("%s: snapshot's lazy-cadence foil recorded no alloc-misses", structID)
		}
		if got := miss[structID+"/epoch:auto/write-lean"]; got != "0" {
			t.Errorf("%s: snapshot records %s epoch:auto alloc-misses, want 0", structID, got)
		}
	}
}

func TestGrowMatrixFlag(t *testing.T) {
	// -grow runs E15; -grow-keys caps the sweep to its smallest tier so the
	// smoke stays cheap.  A cap below the smallest tier must error rather
	// than silently produce an empty table.
	var buf bytes.Buffer
	if err := run([]string{"-grow", "-grow-keys", "10000", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E15" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	if len(tables[0].Rows) != 12 { // 4 regimes × 3 schemes, 10k tier only
		t.Fatalf("capped growth matrix has %d rows, want 12", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if !strings.HasPrefix(row[0], "map/") {
			t.Errorf("unexpected row key %q", row[0])
		}
	}
	if err := run([]string{"-grow", "-grow-keys", "5"}, &buf); err == nil {
		t.Error("want error for a cap below the smallest tier")
	}
}

func TestPressureMatrixFlag(t *testing.T) {
	// -pressure smoke runs E16 with trimmed per-cell ops; an unknown tier
	// must error rather than silently run the full matrix.
	var buf bytes.Buffer
	if err := run([]string{"-pressure", "smoke", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID     string
		Header []string
		Rows   [][]string
	}
	unmarshalTables(t, buf.Bytes(), &tables)
	if len(tables) != 1 || tables[0].ID != "E16" {
		t.Fatalf("unexpected JSON shape: %+v", tables)
	}
	for _, col := range []string{"limbo", "alloc-miss", "scans", "skips", "batches", "tune"} {
		if !strings.Contains(strings.Join(tables[0].Header, ","), col) {
			t.Errorf("pressure matrix lacks the %s column", col)
		}
	}
	schemes := map[string]bool{}
	for _, row := range tables[0].Rows {
		schemes[strings.SplitN(row[0], "/", 3)[1]] = true
	}
	for _, s := range []string{"none", "hp", "epoch", "epoch:64", "epoch:auto"} {
		if !schemes[s] {
			t.Errorf("pressure matrix lacks scheme %q", s)
		}
	}
	if err := run([]string{"-pressure", "medium-rare"}, &buf); err == nil {
		t.Error("want error for an unknown pressure tier")
	}
}
