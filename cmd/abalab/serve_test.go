package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startTestServer builds a live server with its churn running and an
// httptest frontend; the cleanup stops both.
func startTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := newLiveServer()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.run(); err != nil {
		s.shutdown()
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown()
	})
	// Let the churn generate some traffic so every endpoint has data.
	deadline := time.Now().Add(2 * time.Second)
	for s.ops.Load() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.ops.Load() == 0 {
		t.Fatal("background churn performed no operations")
	}
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints smoke-tests every serve-mode endpoint against a live
// churning instance: the Prometheus text, the expvar JSON, the merged trace
// dump, and the index.
func TestServeEndpoints(t *testing.T) {
	ts := startTestServer(t)

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE abalab_ops_total counter",
		"abalab_guard_commits_total",
		"abalab_reclaim_retired_total",
		"abalab_trace_events",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, ts.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars struct {
		Abalab map[string]int64 `json:"abalab"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars.Abalab["abalab_ops_total"] == 0 {
		t.Errorf("/debug/vars reports zero ops: %v", vars.Abalab)
	}

	code, body = get(t, ts.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/trace dump is empty under live churn")
	}
	if _, ok := events[0]["Kind"].(string); !ok {
		t.Errorf("/trace events lack a symbolic Kind: %v", events[0])
	}

	code, body = get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}

	if code, _ = get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestTraceDumpCommand smoke-tests the -trace-dump flag through the real
// flag parser: every scenario prints a non-empty incident record.
func TestTraceDumpCommand(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trace-dump", "all"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stack (raw+none)", "queue (raw+none)", "map (raw+none)", "map-grow (raw+none)", "guard-commit", "release", "alloc"} {
		if !strings.Contains(out, want) {
			t.Errorf("-trace-dump all output missing %q", want)
		}
	}
	if err := run([]string{"-trace-dump", "bogus"}, io.Discard); err == nil {
		t.Error("-trace-dump bogus should fail")
	}
}
