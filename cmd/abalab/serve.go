package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"abadetect/internal/apps"
	"abadetect/internal/bench"
	"abadetect/internal/guard"
	"abadetect/internal/registry"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// This file is abalab's serve mode: a live observability endpoint over a
// traced structure under continuous background churn.  It exists so the
// flight recorder and the registry's audit counters are inspectable while
// the structure runs, not just at quiescence:
//
//	/metrics     Prometheus text: guard, allocator, and reclaimer counters
//	/debug/vars  the same snapshot as expvar JSON
//	/trace       the merged flight-recorder dump as JSON
//	/debug/pprof the standard profiling endpoints
//	/            a short index

const (
	// serveWorkers is the background churn's process count — modest, since
	// serve mode shares the host with whatever is scraping it.
	serveWorkers = 4
	// serveCapacity and serveRingCap size the structure and its recorder.
	serveCapacity = 256
	serveRingCap  = 1024
	// servePause is inserted every serveBatch background ops so the churn
	// exercises every seam without pegging the host.
	serveBatch = 4096
	servePause = time.Millisecond
)

// liveServer owns the traced structure, its background workers, and the
// counters the endpoints render.
type liveServer struct {
	inst  apps.Instance
	rec   *trace.Recorder
	ops   atomic.Int64
	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
}

// newLiveServer builds the traced instance: the map (the richest seam set —
// guards, allocator, reclaimer, op hooks all fire) under the default LL/SC
// regime with the self-tuning epoch reclaimer.
func newLiveServer() (*liveServer, error) {
	f := shmem.NewNativeFactory()
	mk, err := registry.NewGuardMaker(f, serveWorkers, registry.GuardSpec{Regime: guard.LLSC})
	if err != nil {
		return nil, err
	}
	mkr, err := registry.NewReclaimMaker("epoch:auto")
	if err != nil {
		return nil, err
	}
	rec := trace.New(serveWorkers, serveRingCap)
	inst, err := registry.MustLookup("map").NewStructure(f, serveWorkers, serveCapacity, mk,
		apps.InstanceOptions{Reclaim: mkr, Trace: rec})
	if err != nil {
		return nil, err
	}
	return &liveServer{inst: inst, rec: rec, start: time.Now(), stop: make(chan struct{})}, nil
}

// run starts the background churn: one goroutine per pid driving the
// instance's own workload step.
func (s *liveServer) run() error {
	for pid := 0; pid < serveWorkers; pid++ {
		step, err := s.inst.Worker(pid)
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func(step func(int)) {
			defer s.wg.Done()
			for i := 0; ; i++ {
				select {
				case <-s.stop:
					return
				default:
				}
				step(i)
				s.ops.Add(1)
				if i%serveBatch == serveBatch-1 {
					time.Sleep(servePause)
				}
			}
		}(step)
	}
	return nil
}

// shutdown stops the churn and waits for the workers.
func (s *liveServer) shutdown() {
	close(s.stop)
	s.wg.Wait()
}

// snapshot renders the live counters as one flat map — the payload behind
// both /debug/vars and /metrics.
func (s *liveServer) snapshot() map[string]int64 {
	gm := s.inst.GuardMetrics()
	ps := s.inst.PoolStats()
	return map[string]int64{
		"abalab_ops_total":               s.ops.Load(),
		"abalab_uptime_seconds":          int64(time.Since(s.start).Seconds()),
		"abalab_workers":                 serveWorkers,
		"abalab_guard_commits_total":     gm.Commits,
		"abalab_guard_rejects_total":     gm.Rejected,
		"abalab_guard_near_misses_total": gm.NearMisses,
		"abalab_guard_dirty_loads_total": gm.DirtyLoads,
		"abalab_pool_exhaustions_total":  ps.Exhaustions,
		"abalab_reclaim_retired_total":   ps.Reclaim.Retired,
		"abalab_reclaim_freed_total":     ps.Reclaim.Freed,
		"abalab_reclaim_limbo":           ps.Reclaim.Deferred(),
		"abalab_reclaim_scans_total":     ps.Reclaim.Scans,
		"abalab_reclaim_stalls_total":    ps.Reclaim.Stalls,
		"abalab_trace_events":            int64(len(s.rec.Merge())),
	}
}

// activeServer backs the process-global expvar registration: expvar.Publish
// panics on re-registration, so the published Func indirects through the
// current server (tests build several).
var activeServer atomic.Pointer[liveServer]

var publishExpvarOnce sync.Once

func (s *liveServer) publishExpvar() {
	activeServer.Store(s)
	publishExpvarOnce.Do(func() {
		expvar.Publish("abalab", expvar.Func(func() any {
			if cur := activeServer.Load(); cur != nil {
				return cur.snapshot()
			}
			return nil
		}))
	})
}

// handler builds the serve-mode mux.
func (s *liveServer) handler() http.Handler {
	s.publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/trace", s.traceHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.indexHandler)
	return mux
}

// metricsHandler renders the snapshot in the Prometheus text exposition
// format (untyped-free: counters are counters, point-in-time values gauges).
func (s *liveServer) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.snapshot()
	for _, m := range metricOrder {
		v, ok := snap[m.name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", m.name, m.help, m.name, m.kind, m.name, v)
	}
}

// metricOrder fixes the exposition order and metadata of /metrics.
var metricOrder = []struct{ name, kind, help string }{
	{"abalab_ops_total", "counter", "background churn operations completed"},
	{"abalab_uptime_seconds", "gauge", "seconds since the server started"},
	{"abalab_workers", "gauge", "background churn worker count"},
	{"abalab_guard_commits_total", "counter", "successful guarded conditional swings"},
	{"abalab_guard_rejects_total", "counter", "rejected guarded conditional swings"},
	{"abalab_guard_near_misses_total", "counter", "rejected swings whose value compared equal: detected-and-prevented ABAs"},
	{"abalab_guard_dirty_loads_total", "counter", "loads that observed detectable interference"},
	{"abalab_pool_exhaustions_total", "counter", "allocations that found no free node"},
	{"abalab_reclaim_retired_total", "counter", "nodes handed to the reclaimer"},
	{"abalab_reclaim_freed_total", "counter", "nodes the reclaimer returned to the allocator"},
	{"abalab_reclaim_limbo", "gauge", "retired-but-not-freed nodes right now"},
	{"abalab_reclaim_scans_total", "counter", "reclamation scan passes"},
	{"abalab_reclaim_stalls_total", "counter", "scan passes that freed nothing while nodes were pending"},
	{"abalab_trace_events", "gauge", "events currently retained across the flight recorder's rings"},
}

// traceHandler dumps the merged flight record as JSON.
func (s *liveServer) traceHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(s.rec.Merge())
}

// indexHandler lists the endpoints.
func (s *liveServer) indexHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "abalab live observability (%s, %s)\n\n", bench.CurrentMachine(), runtime.Version())
	fmt.Fprintln(w, "endpoints:")
	fmt.Fprintln(w, "  /metrics      Prometheus text: guard, allocator, reclaimer counters")
	fmt.Fprintln(w, "  /debug/vars   the same snapshot as expvar JSON")
	fmt.Fprintln(w, "  /trace        merged flight-recorder dump (JSON)")
	fmt.Fprintln(w, "  /debug/pprof  profiling")
}

// serveMain is the -serve entry point: build the traced instance, start the
// churn, and serve until the process is killed.
func serveMain(addr string, out io.Writer) error {
	s, err := newLiveServer()
	if err != nil {
		return err
	}
	if err := s.run(); err != nil {
		s.shutdown()
		return err
	}
	defer s.shutdown()
	fmt.Fprintf(out, "abalab: serving live metrics on %s (endpoints: /metrics /debug/vars /trace /debug/pprof)\n", addr)
	return http.ListenAndServe(addr, s.handler())
}

// traceEventVocabulary is referenced by the README's observability section;
// keeping it here (rather than prose-only) pins the names the docs promise
// to the names the recorder emits.
var _ = []trace.Kind{
	trace.KindGuardLoad, trace.KindGuardDirtyLoad, trace.KindGuardCommit,
	trace.KindGuardReject, trace.KindGuardNearMiss,
	trace.KindAlloc, trace.KindRelease, trace.KindRetire, trace.KindExhaust, trace.KindGrow,
	trace.KindProtect, trace.KindDrain, trace.KindScan, trace.KindEpochAdvance, trace.KindTighten,
	trace.KindOpBegin, trace.KindOpCommit,
}
