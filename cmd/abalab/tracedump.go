package main

import (
	"fmt"
	"io"

	"abadetect/internal/apps"
	"abadetect/internal/kv"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// This file is abalab's -trace-dump mode: run a deterministic §1 corruption
// scenario under the vulnerable raw+none configuration and pretty-print the
// incident flight record — the armed load, the recycle, and the corrupting
// commit, one event per line in happens-before order.

// traceDumpScenarios indexes the deterministic scripts by the -trace-dump
// argument.
var traceDumpScenarios = []struct {
	id, summary string
	run         func() (apps.ScenarioResult, error)
}{
	{"stack", "Treiber stack: pop armed, 3 pops + 1 push recycle the head node", func() (apps.ScenarioResult, error) {
		return apps.StackABAScenario(shmem.NewNativeFactory(), apps.Raw, 0)
	}},
	{"queue", "Michael–Scott queue: deq armed, drain + re-enqueue restores the head index", func() (apps.ScenarioResult, error) {
		return apps.QueueABAScenario(shmem.NewNativeFactory(), apps.Raw, 0)
	}},
	{"map", "split-list map: delete armed, help-unlink + recycle restores the bucket head", func() (apps.ScenarioResult, error) {
		return kv.MapABAScenario(shmem.NewNativeFactory(), apps.Raw, 0)
	}},
	{"map-grow", "growing map: delete armed, directory split recycles the armed link as a dummy", func() (apps.ScenarioResult, error) {
		return kv.MapGrowABAScenario(shmem.NewNativeFactory(), apps.Raw, 0)
	}},
}

// runTraceDump runs the selected scenario(s) and prints each incident dump.
func runTraceDump(out io.Writer, which string) error {
	matched := false
	for _, sc := range traceDumpScenarios {
		if which != "all" && which != sc.id {
			continue
		}
		matched = true
		r, err := sc.run()
		if err != nil {
			return fmt.Errorf("%s scenario: %w", sc.id, err)
		}
		fmt.Fprintf(out, "%s (raw+none) — %s\n", sc.id, sc.summary)
		fmt.Fprintf(out, "  fooled=%v corrupt=%v starved=%v near-misses=%d\n", r.Fooled, r.Corrupt, r.Starved, r.Guard.NearMisses)
		if r.Corrupt {
			fmt.Fprintf(out, "  audit: %s\n", r.Detail)
		}
		fmt.Fprintln(out, "  incident flight record (pid 0 = adversary, pid 1 = victim):")
		fmt.Fprint(out, indent(trace.Format(r.Incident), "    "))
		fmt.Fprintln(out)
	}
	if !matched {
		return fmt.Errorf("unknown scenario %q (want stack, queue, map, map-grow, or all)", which)
	}
	return nil
}

// indent prefixes every non-empty line.
func indent(s, prefix string) string {
	var b []byte
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				b = append(b, prefix...)
				b = append(b, s[start:i]...)
			}
			if i < len(s) {
				b = append(b, '\n')
			}
			start = i + 1
		}
	}
	return string(b)
}
