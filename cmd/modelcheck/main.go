// Command modelcheck searches a candidate ABA-detecting-register
// implementation's configuration space for the paper's Observation-1
// witness: a target-clean and a target-dirty configuration the target
// process cannot distinguish.  Finding one proves the implementation wrong
// and prints the two replayable schedules; exhausting the space (or the node
// budget) without one is evidence of correctness.
//
// Usage:
//
//	modelcheck -system tag -tagvals 2 -n 2
//	modelcheck -system fig4 -n 2
//	modelcheck -system fig4 -n 2 -usedlen 1 -picksmallest     # ablation
//	modelcheck -system fig4 -n 2 -seqvals 3 -picksmallest     # ablation
//	modelcheck -system fig4 -n 2 -nodoubleread                # ablation
//	modelcheck -system unbounded -n 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abadetect/internal/lowerbound"
	"abadetect/internal/machine"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	var (
		system       = fs.String("system", "tag", "system to check: tag | fig4 | unbounded")
		n            = fs.Int("n", 2, "number of processes (writer + readers)")
		tagVals      = fs.Int("tagvals", 2, "tag domain size for -system tag")
		seqVals      = fs.Int("seqvals", 0, "fig4: sequence domain (default 2n+2)")
		usedLen      = fs.Int("usedlen", 0, "fig4: usedQ length (default n+1)")
		noDoubleRead = fs.Bool("nodoubleread", false, "fig4: skip the second read of X")
		pickSmallest = fs.Bool("picksmallest", false, "fig4: GetSeq picks the smallest free seq (eager reuse)")
		maxNodes     = fs.Int("maxnodes", 400000, "search budget (augmented states)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("need -n >= 2 (one writer, at least one reader)")
	}

	var cfg *machine.Config
	var err error
	switch *system {
	case "tag":
		cfg = machine.TagSystem{TagVals: uint64(*tagVals)}.NewConfig(*n)
		fmt.Fprintf(out, "system: bounded-tag register, %d tag values, n=%d (m=1 bounded register)\n", *tagVals, *n)
	case "unbounded":
		cfg = machine.UnboundedSystem{}.NewConfig(*n)
		fmt.Fprintf(out, "system: unbounded-stamp register, n=%d (m=1 UNbounded register)\n", *n)
	case "fig4":
		sys := machine.PaperFig4(*n)
		if *seqVals > 0 {
			sys.SeqVals = *seqVals
		}
		if *usedLen > 0 {
			sys.UsedLen = *usedLen
		}
		sys.DoubleRead = !*noDoubleRead
		sys.PickSmallest = *pickSmallest
		cfg, err = sys.NewConfig()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "system: Figure 4, n=%d, seqVals=%d, usedLen=%d, doubleRead=%v, pickSmallest=%v\n",
			*n, sys.SeqVals, sys.UsedLen, sys.DoubleRead, sys.PickSmallest)
	default:
		return fmt.Errorf("unknown -system %q", *system)
	}

	res, err := lowerbound.FindObservation1Violation(
		lowerbound.Game{Init: cfg, Writer: 0, Target: *n - 1},
		lowerbound.Options{MaxNodes: *maxNodes})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "explored %d augmented configurations\n", res.Nodes)
	switch {
	case res.Witness != nil:
		fmt.Fprintln(out, "\nVERDICT: REFUTED — the implementation is not a correct ABA-detecting register.")
		fmt.Fprintln(out, res.Witness)
	case res.Exhausted:
		fmt.Fprintln(out, "\nVERDICT: no witness exists — the reachable configuration space was searched exhaustively.")
	default:
		fmt.Fprintln(out, "\nVERDICT: no witness found within the node budget (increase -maxnodes to search further).")
	}
	return nil
}
