package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRefutesBoundedTag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "tag", "-tagvals", "2", "-n", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REFUTED") {
		t.Errorf("expected refutation:\n%s", out)
	}
	if !strings.Contains(out, "clean schedule") || !strings.Contains(out, "dirty schedule") {
		t.Errorf("witness schedules missing:\n%s", out)
	}
}

func TestVerifiesFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "fig4", "-n", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "searched exhaustively") {
		t.Errorf("expected exhaustive verification:\n%s", out)
	}
}

func TestRefutesAblation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-system", "fig4", "-n", "2", "-usedlen", "1", "-picksmallest"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REFUTED") {
		t.Errorf("expected ablation refutation:\n%s", buf.String())
	}
}

func TestUnboundedWithinBudget(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "unbounded", "-n", "2", "-maxnodes", "5000"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no witness found within the node budget") {
		t.Errorf("expected budget exhaustion:\n%s", buf.String())
	}
}

func TestValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "nope"}, &buf); err == nil {
		t.Error("want error for unknown system")
	}
	if err := run([]string{"-n", "1"}, &buf); err == nil {
		t.Error("want error for n < 2")
	}
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Error("want error for unknown flag")
	}
}
