package abadetect

// Hot-path micro-benchmarks and zero-allocation guards for every registered
// implementation on the direct substrates (native and slab).  These are the
// per-operation costs behind the paper's t(n): BenchmarkHotPath isolates
// each operation, TestHotPathAllocs pins every one of them to 0 allocs/op
// so an accidental interface boxing or slice growth on a hot path fails CI
// instead of quietly eating throughput.
//
// Run with: go test -bench HotPath -benchmem

import (
	"fmt"
	"testing"
	"time"

	"abadetect/internal/load"
)

// hotBackends are the direct substrates the devirtualized fast paths bind
// on; the instrumented backends intentionally stay on the interface path
// and are exempt from these guards.
func hotBackends() map[string]Backend {
	return map[string]Backend{
		"native": NativeBackend(),
		"slab":   SlabBackend(),
		"padded": PaddedBackend(),
	}
}

const hotProcs = 8

// TestHotPathAllocs asserts that every hot operation of every registered
// implementation — DWrite and DRead for detectors, LL, SC, and VL for
// LL/SC/VL objects — performs zero heap allocations per call on both direct
// substrates.
func TestHotPathAllocs(t *testing.T) {
	for beName, be := range hotBackends() {
		for _, info := range Implementations() {
			t.Run(beName+"/"+info.ID, func(t *testing.T) {
				switch info.Kind {
				case "detector":
					reg, err := NewDetectingRegisterByID(info.ID, hotProcs, WithValueBits(16), WithBackend(be))
					if err != nil {
						t.Fatal(err)
					}
					w, err := reg.Handle(0)
					if err != nil {
						t.Fatal(err)
					}
					r, err := reg.Handle(1)
					if err != nil {
						t.Fatal(err)
					}
					var i Word
					if got := testing.AllocsPerRun(200, func() {
						w.DWrite(i & 0xffff)
						i++
					}); got != 0 {
						t.Errorf("DWrite allocates %.1f/op, want 0", got)
					}
					if got := testing.AllocsPerRun(200, func() {
						r.DRead()
					}); got != 0 {
						t.Errorf("DRead allocates %.1f/op, want 0", got)
					}
				case "llsc":
					obj, err := NewLLSCByID(info.ID, hotProcs, WithValueBits(16), WithBackend(be))
					if err != nil {
						t.Fatal(err)
					}
					h, err := obj.Handle(0)
					if err != nil {
						t.Fatal(err)
					}
					if got := testing.AllocsPerRun(200, func() {
						v := h.LL()
						if !h.SC((v + 1) & 0xffff) {
							t.Fatal("uncontended SC failed")
						}
					}); got != 0 {
						t.Errorf("LL+SC allocates %.1f/op, want 0", got)
					}
					if got := testing.AllocsPerRun(200, func() {
						h.VL()
					}); got != 0 {
						t.Errorf("VL allocates %.1f/op, want 0", got)
					}
				case "structure":
					structureAllocs(t, info.ID, be)
				case "reclaimer":
					reclaimerAllocs(t, info.ID, be)
				default:
					t.Fatalf("unknown kind %q", info.Kind)
				}
			})
		}
	}
}

// structureAllocs pins the guarded structures' steady-state operations to
// zero allocations: push/pop and enq/deq pairs over the guarded (lock-free)
// pool, signal/reset/poll for the event flag.  The mutex FIFO pool is
// exempt — its free queue reslices — which is why the guarded pool is used
// here.
func structureAllocs(t *testing.T, id string, be Backend) {
	t.Helper()
	opts := []Option{WithBackend(be), WithGuardedPool()}
	switch id {
	case "stack":
		s, err := NewStack(hotProcs, 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Push(i)
			h.Pop()
			i++
		}); got != 0 {
			t.Errorf("Push+Pop allocates %.1f/op, want 0", got)
		}
	case "queue":
		q, err := NewQueue(hotProcs, 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Enq(i)
			h.Deq()
			i++
		}); got != 0 {
			t.Errorf("Enq+Deq allocates %.1f/op, want 0", got)
		}
	case "map":
		m, err := NewMap(hotProcs, 16, opts...)
		if err != nil {
			t.Fatal(err)
		}
		h, err := m.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Put(i&7, i)
			h.Get(i & 7)
			h.Delete(i & 7)
			i++
		}); got != 0 {
			t.Errorf("Put+Get+Delete allocates %.1f/op, want 0", got)
		}
	case "event":
		e, err := NewEventFlag(hotProcs, WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		sig, err := e.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		poll, err := e.Handle(1)
		if err != nil {
			t.Fatal(err)
		}
		if got := testing.AllocsPerRun(200, func() {
			sig.Signal()
			poll.Poll()
			sig.Reset()
			poll.Poll()
		}); got != 0 {
			t.Errorf("pulse+poll allocates %.1f/op, want 0", got)
		}
	default:
		t.Fatalf("unknown structure %q", id)
	}
}

// reclaimerAllocs pins the reclamation-wrapped hot path to zero
// allocations: a raw-guarded stack over the lock-free pool whose every pop
// publishes a protection (hp slot write / epoch pin), validates, retires,
// and amortizes a scan — all on preallocated state.  This is the
// whole-stack version of the reclaim package's own Protect/Clear guard.
func reclaimerAllocs(t *testing.T, scheme string, be Backend) {
	t.Helper()
	s, err := NewStack(hotProcs, 16,
		WithBackend(be), WithGuardedPool(),
		WithProtection(ProtectionRaw), WithReclamation(scheme))
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	var i Word
	if got := testing.AllocsPerRun(200, func() {
		h.Push(i)
		h.Pop()
		i++
	}); got != 0 {
		t.Errorf("Push+Pop under %s reclamation allocates %.1f/op, want 0", scheme, got)
	}
}

// TestHotPathAllocsMapRegimes pins the map's Get/Put/Delete cycle at zero
// allocations on the slab backend under every sound protection regime, both
// with immediate reuse and through the reclaimers — the traffic layer's hot
// path must not pay the heap for its guards, its marks, or its hazards.
func TestHotPathAllocsMapRegimes(t *testing.T) {
	regimes := []struct {
		name string
		opts []Option
	}{
		{"tag16", []Option{WithProtection(ProtectionTagged), WithTagBits(16)}},
		{"llsc", []Option{WithProtection(ProtectionLLSC)}},
		{"detector", []Option{WithProtection(ProtectionDetector)}},
	}
	for _, re := range regimes {
		// epoch:auto rides along to pin the adaptive cadence bookkeeping and
		// the kv batched-retire flush (RetireBatch) to the same zero.
		for _, scheme := range []string{"none", "hp", "epoch", "epoch:auto"} {
			t.Run(re.name+"+"+scheme, func(t *testing.T) {
				opts := append([]Option{WithBackend(SlabBackend()), WithGuardedPool(),
					WithReclamation(scheme)}, re.opts...)
				m, err := NewMap(hotProcs, 16, opts...)
				if err != nil {
					t.Fatal(err)
				}
				h, err := m.Handle(0)
				if err != nil {
					t.Fatal(err)
				}
				var i Word
				if got := testing.AllocsPerRun(200, func() {
					h.Put(i&7, i)
					h.Get(i & 7)
					h.Delete(i & 7)
					i++
				}); got != 0 {
					t.Errorf("map cycle allocates %.1f/op, want 0", got)
				}
			})
		}
	}
}

// TestHotPathAllocsTuned pins the PR-6 fast paths at zero allocations: a
// stack with the elimination exchanger and a per-process node cache, and a
// map with flat-combining on — the tuning knobs buy tail latency with
// preallocated state, never with the heap.
func TestHotPathAllocsTuned(t *testing.T) {
	t.Run("stack+elim+cache", func(t *testing.T) {
		s, err := NewStack(hotProcs, 8,
			WithBackend(SlabBackend()), WithGuardedPool(),
			WithProtection(ProtectionLLSC), WithElimination(2), WithLocalCache(4))
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Push(i)
			h.Pop()
			i++
		}); got != 0 {
			t.Errorf("cached Push+Pop allocates %.1f/op, want 0", got)
		}
		if a := s.Audit(); a.LocalCacheHits == 0 {
			t.Error("the cycle never hit the local cache")
		}
	})
	t.Run("map+combining", func(t *testing.T) {
		m, err := NewMap(hotProcs, 16,
			WithBackend(SlabBackend()), WithGuardedPool(),
			WithProtection(ProtectionLLSC), WithCombining())
		if err != nil {
			t.Fatal(err)
		}
		h, err := m.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Put(i&7, i)
			h.Get(i & 7)
			h.Delete(i & 7)
			i++
		}); got != 0 {
			t.Errorf("combined map cycle allocates %.1f/op, want 0", got)
		}
		if a := m.Audit(); a.CombinedOps == 0 {
			t.Error("no op went through the combiner")
		}
	})
	t.Run("option-validation", func(t *testing.T) {
		// Invalid knob values must surface as constructor errors through the
		// public facade, not be silently dropped.
		if _, err := NewStack(2, 4, WithElimination(-1)); err == nil {
			t.Error("negative elimination accepted")
		}
		if _, err := NewStack(2, 4, WithLocalCache(-1)); err == nil {
			t.Error("negative local cache accepted")
		}
		if _, err := NewMap(2, 8, WithReclamation("epoch:0")); err == nil {
			t.Error("epoch:0 accepted")
		}
	})
	t.Run("stack+cache+reclaim", func(t *testing.T) {
		// The cache sits below retirement: the retire → limbo → cache → alloc
		// round trip must also stay off the heap.
		s, err := NewStack(hotProcs, 16,
			WithBackend(SlabBackend()), WithGuardedPool(),
			WithProtection(ProtectionLLSC), WithLocalCache(4), WithReclamation("hp"))
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Push(i)
			h.Pop()
			i++
		}); got != 0 {
			t.Errorf("cached+reclaimed Push+Pop allocates %.1f/op, want 0", got)
		}
	})
}

// TestHotPathAllocsTracing pins the flight recorder's two promises: with
// tracing OFF the structures are byte-identical to the untraced builds
// (every other test in this file is that pin — no recorder is attached
// anywhere above), and with tracing ON every recorded event is written into
// the preallocated ring without touching the heap.  Event recording that
// allocates would perturb exactly the interleavings it exists to capture.
func TestHotPathAllocsTracing(t *testing.T) {
	t.Run("stack+trace", func(t *testing.T) {
		s, err := NewStack(hotProcs, 8,
			WithBackend(SlabBackend()), WithGuardedPool(), WithTracing(64))
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Push(i)
			h.Pop()
			i++
		}); got != 0 {
			t.Errorf("traced Push+Pop allocates %.1f/op, want 0", got)
		}
		if len(s.StructureTrace()) == 0 {
			t.Error("the traced cycle recorded nothing")
		}
	})
	t.Run("map+trace+reclaim", func(t *testing.T) {
		// The deepest instrumented path: guard events, op hooks, retire/alloc
		// events, and the epoch reclaimer's scan/advance events all fire.
		m, err := NewMap(hotProcs, 16,
			WithBackend(SlabBackend()), WithGuardedPool(),
			WithProtection(ProtectionLLSC), WithReclamation("epoch:auto"), WithTracing(64))
		if err != nil {
			t.Fatal(err)
		}
		h, err := m.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		var i Word
		if got := testing.AllocsPerRun(200, func() {
			h.Put(i&7, i)
			h.Get(i & 7)
			h.Delete(i & 7)
			i++
		}); got != 0 {
			t.Errorf("traced map cycle allocates %.1f/op, want 0", got)
		}
	})
}

// TestHotPathAllocsLoadRecord pins the load generator's measurement path:
// recording a latency sample and drawing the next keyed op must stay off
// the heap, or the generator would perturb the workload it measures.
func TestHotPathAllocsLoadRecord(t *testing.T) {
	var h load.Hist
	if got := testing.AllocsPerRun(500, func() {
		h.Record(time.Microsecond)
	}); got != 0 {
		t.Errorf("Hist.Record allocates %.1f/op, want 0", got)
	}
	if got := testing.AllocsPerRun(500, func() {
		h.Quantile(0.99)
	}); got != 0 {
		t.Errorf("Hist.Quantile allocates %.1f/op, want 0", got)
	}
}

// TestHotPathAllocsSharded extends the zero-allocation guard to the sharded
// array's per-shard operations.
func TestHotPathAllocsSharded(t *testing.T) {
	for beName, be := range hotBackends() {
		t.Run(beName, func(t *testing.T) {
			arr, err := NewShardedDetectingArray(hotProcs, 4, WithValueBits(16), WithBackend(be))
			if err != nil {
				t.Fatal(err)
			}
			h, err := arr.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			var i Word
			if got := testing.AllocsPerRun(200, func() {
				h.DWrite(int(i)%4, i&0xffff)
				h.DRead(int(i) % 4)
				i++
			}); got != 0 {
				t.Errorf("sharded DWrite+DRead allocates %.1f/op, want 0", got)
			}
		})
	}
}

// BenchmarkHotPath measures each hot operation of each registered
// implementation in isolation, plus the interleaved write+read pair the E10
// throughput experiment times, on both direct substrates.
func BenchmarkHotPath(b *testing.B) {
	for _, beName := range []string{"native", "slab"} {
		be := hotBackends()[beName]
		for _, info := range Implementations() {
			switch info.Kind {
			case "detector":
				benchDetectorOps(b, beName, info.ID, be)
			case "llsc":
				benchLLSCOps(b, beName, info.ID, be)
			}
		}
	}
}

func benchDetectorOps(b *testing.B, beName, id string, be Backend) {
	newReg := func(b *testing.B) (DetectHandle, DetectHandle) {
		reg, err := NewDetectingRegisterByID(id, hotProcs, WithValueBits(16), WithBackend(be))
		if err != nil {
			b.Fatal(err)
		}
		w, err := reg.Handle(0)
		if err != nil {
			b.Fatal(err)
		}
		r, err := reg.Handle(1)
		if err != nil {
			b.Fatal(err)
		}
		return w, r
	}
	b.Run(fmt.Sprintf("%s/%s/DWrite", beName, id), func(b *testing.B) {
		w, _ := newReg(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.DWrite(Word(i & 0xffff))
		}
	})
	b.Run(fmt.Sprintf("%s/%s/DRead", beName, id), func(b *testing.B) {
		_, r := newReg(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.DRead()
		}
	})
	b.Run(fmt.Sprintf("%s/%s/pair", beName, id), func(b *testing.B) {
		w, r := newReg(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.DWrite(Word(i & 0xffff))
			r.DRead()
		}
	})
}

func benchLLSCOps(b *testing.B, beName, id string, be Backend) {
	newObj := func(b *testing.B) LLSCHandle {
		obj, err := NewLLSCByID(id, hotProcs, WithValueBits(16), WithBackend(be))
		if err != nil {
			b.Fatal(err)
		}
		h, err := obj.Handle(0)
		if err != nil {
			b.Fatal(err)
		}
		return h
	}
	b.Run(fmt.Sprintf("%s/%s/LL+SC", beName, id), func(b *testing.B) {
		h := newObj(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := h.LL()
			if !h.SC((v + 1) & 0xffff) {
				b.Fatal("uncontended SC failed")
			}
		}
	})
	b.Run(fmt.Sprintf("%s/%s/VL", beName, id), func(b *testing.B) {
		h := newObj(b)
		h.LL()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.VL()
		}
	})
}
