package abadetect

import (
	"strings"
	"testing"
)

// TestStructureTrace checks the public flight-recorder surface: a structure
// built WithTracing exposes a merged, GSeq-ascending dump containing the
// allocator and guard vocabulary; one built without returns nil.
func TestStructureTrace(t *testing.T) {
	s, err := NewStack(2, 8, WithTracing(64))
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !h.Push(Word(100 + i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if _, ok := h.Pop(); !ok {
		t.Fatal("pop failed")
	}
	ev := s.StructureTrace()
	if len(ev) == 0 {
		t.Fatal("traced stack produced no events")
	}
	kinds := map[string]bool{}
	for i, e := range ev {
		kinds[e.Kind] = true
		if i > 0 && e.GSeq <= ev[i-1].GSeq {
			t.Fatalf("dump not GSeq-ordered at %d", i)
		}
	}
	for _, want := range []string{"alloc", "release", "guard-commit", "op-begin", "op-commit"} {
		if !kinds[want] {
			t.Errorf("dump missing kind %q (got %v)", want, kinds)
		}
	}
	if got := ev[0].String(); !strings.Contains(got, ev[0].Kind) {
		t.Errorf("TraceEvent.String() = %q does not name its kind", got)
	}

	plain, err := NewStack(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr := plain.StructureTrace(); tr != nil {
		t.Fatalf("untraced stack returned a dump of %d events", len(tr))
	}
}

// TestStructureTraceMap exercises the map and queue variants of the same
// surface — each structure family wires the recorder through its own seams.
func TestStructureTraceMap(t *testing.T) {
	m, err := NewMap(2, 8, WithTracing(64))
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Put(1, 11) || !h.Put(2, 22) {
		t.Fatal("puts failed")
	}
	// The split delete is the instrumented seam: its begin/commit halves
	// record op events (the inline Delete records only its guard traffic).
	if _, _, found := h.DeleteBegin(1); !found {
		t.Fatal("DeleteBegin found nothing")
	}
	if !h.DeleteCommit() {
		t.Fatal("DeleteCommit failed")
	}
	ev := m.StructureTrace()
	if len(ev) == 0 {
		t.Fatal("traced map produced no events")
	}
	var sawBegin, sawCommit bool
	for _, e := range ev {
		if e.Obj == "delete" && e.Kind == "op-begin" {
			sawBegin = true
		}
		if e.Obj == "delete" && e.Kind == "op-commit" && e.A == 1 {
			sawCommit = true
		}
	}
	if !sawBegin || !sawCommit {
		t.Errorf("dump missing delete op events: begin=%v commit=%v", sawBegin, sawCommit)
	}

	q, err := NewQueue(2, 8, WithTracing(64))
	if err != nil {
		t.Fatal(err)
	}
	qh, err := q.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if !qh.Enq(7) {
		t.Fatal("enq failed")
	}
	if v, ok := qh.Deq(); !ok || v != 7 {
		t.Fatalf("deq = (%d,%v), want (7,true)", v, ok)
	}
	if ev := q.StructureTrace(); len(ev) == 0 {
		t.Fatal("traced queue produced no events")
	}
}
