package abadetect

import (
	"fmt"

	"abadetect/internal/core"
	"abadetect/internal/llsc"
	"abadetect/internal/registry"
	"abadetect/internal/shmem"
)

// Word is the value type of all objects in this package.
type Word = uint64

// Footprint reports how many base objects (64-bit atomic words) an
// implementation uses — the paper's space measure m.
type Footprint struct {
	// Registers is the number of read/write register words.
	Registers int
	// CASObjects is the number of CAS words.
	CASObjects int
}

// Objects returns the total number of base objects.
func (f Footprint) Objects() int { return f.Registers + f.CASObjects }

// String renders the footprint.
func (f Footprint) String() string {
	return fmt.Sprintf("m=%d (%d registers + %d CAS)", f.Objects(), f.Registers, f.CASObjects)
}

// DetectHandle is a process's endpoint to an ABA-detecting register.
// A handle must be used by at most one goroutine at a time.
type DetectHandle interface {
	// DWrite writes v to the register.
	DWrite(v Word)
	// DRead returns the register's value and whether any process performed
	// a DWrite since this handle's previous DRead.
	DRead() (v Word, dirty bool)
}

// DetectingRegister is a multi-writer ABA-detecting register shared by n
// processes (paper §1).
type DetectingRegister interface {
	// Handle returns the endpoint for process pid in [0, n).
	Handle(pid int) (DetectHandle, error)
	// NumProcs returns n.
	NumProcs() int
	// Footprint returns the base objects used.
	Footprint() Footprint
}

// LLSCHandle is a process's endpoint to an LL/SC/VL object.
// A handle must be used by at most one goroutine at a time.
type LLSCHandle interface {
	// LL returns the object's value and links it for this process.
	LL() Word
	// SC writes v and reports success; it succeeds iff no successful SC
	// linearized since this handle's last LL.
	SC(v Word) bool
	// VL reports whether no successful SC linearized since this handle's
	// last LL.
	VL() bool
}

// LLSC is a load-linked/store-conditional/validate object shared by n
// processes (paper §1).
type LLSC interface {
	// Handle returns the endpoint for process pid in [0, n).
	Handle(pid int) (LLSCHandle, error)
	// NumProcs returns n.
	NumProcs() int
	// Footprint returns the base objects used.
	Footprint() Footprint
}

// options collects the functional options shared by all constructors.
type options struct {
	valueBits uint
	initial   Word
	backend   Backend
	shardImpl string

	// Structure options (structures.go); base-object constructors ignore
	// them.
	protection  Protection
	tagBits     uint
	tagBitsSet  bool
	guardImpl   string
	guardedPool bool
	reclaim     string
	elimination int
	localCache  int
	combining   bool
	growTo      int
	traceCap    int
}

// Option configures a constructor.
type Option func(*options)

// WithValueBits sets the width of the object's value domain (default 32).
// Bounded implementations must pack the value together with metadata into a
// 64-bit word, so wide values reduce the maximum n (constructors return an
// error when the combination does not fit).
func WithValueBits(bits uint) Option {
	return func(o *options) { o.valueBits = bits }
}

// WithInitialValue sets the value reads observe before the first write
// (default 0).
func WithInitialValue(v Word) Option {
	return func(o *options) { o.initial = v }
}

func buildOptions(opts []Option) options {
	o := options{valueBits: 32}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// factory returns the fresh per-object factory the selected backend
// provides (default: NativeBackend).
func (o options) factory() shmem.Factory {
	b := o.backend
	if b == nil {
		b = NativeBackend()
	}
	return b.newFactory()
}

// detReg adapts an internal detector to the public interface.
type detReg struct {
	inner core.Detector
	fp    Footprint
}

var _ DetectingRegister = (*detReg)(nil)

func (r *detReg) Handle(pid int) (DetectHandle, error) {
	h, err := r.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (r *detReg) NumProcs() int        { return r.inner.NumProcs() }
func (r *detReg) Footprint() Footprint { return r.fp }

// llscObj adapts an internal LL/SC object to the public interface.
type llscObj struct {
	inner llsc.Object
	fp    Footprint
}

var _ LLSC = (*llscObj)(nil)

func (o *llscObj) Handle(pid int) (LLSCHandle, error) {
	h, err := o.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (o *llscObj) NumProcs() int        { return o.inner.NumProcs() }
func (o *llscObj) Footprint() Footprint { return o.fp }

func footprintOf(f shmem.Factory) Footprint {
	fp := f.Footprint()
	return Footprint{Registers: fp.Registers, CASObjects: fp.CASObjects}
}

// newDetectorByImpl builds a registered detector implementation over the
// options' backend; every public detector constructor funnels through it.
func newDetectorByImpl(im registry.Impl, n int, o options) (DetectingRegister, error) {
	f := o.factory()
	inner, err := im.NewDetector(f, n, o.valueBits, o.initial)
	if err != nil {
		return nil, err
	}
	return &detReg{inner: inner, fp: footprintOf(f)}, nil
}

// newLLSCByImpl builds a registered LL/SC/VL implementation over the
// options' backend; every public LL/SC constructor funnels through it.
func newLLSCByImpl(im registry.Impl, n int, o options) (LLSC, error) {
	f := o.factory()
	inner, err := im.NewLLSC(f, n, o.valueBits, o.initial)
	if err != nil {
		return nil, err
	}
	return &llscObj{inner: inner, fp: footprintOf(f)}, nil
}

// NewDetectingRegister builds the paper's Figure 4 register for n processes:
// a linearizable wait-free multi-writer ABA-detecting register from n+1
// bounded registers with constant step complexity (two shared steps per
// DWrite, four per DRead) — Theorem 3.
func NewDetectingRegister(n int, opts ...Option) (DetectingRegister, error) {
	return newDetectorByImpl(registry.MustLookup("fig4"), n, buildOptions(opts))
}

// NewDetectingRegisterSingleCAS builds Theorem 2's multi-writer
// ABA-detecting register from a single bounded CAS word with O(n) step
// complexity: the paper's Figure 5 over its Figure 3.  valueBits + n must be
// at most 64.
func NewDetectingRegisterSingleCAS(n int, opts ...Option) (DetectingRegister, error) {
	return newDetectorByImpl(registry.MustLookup("fig5-fig3"), n, buildOptions(opts))
}

// NewDetectingRegisterUnboundedTag builds the trivial baseline of §1: one
// register whose stored word carries a never-repeating stamp.  O(1) steps,
// exact detection — but the register's value domain grows without bound,
// which is exactly what the paper's lower bounds show to be unavoidable.
// (Modeled with a 64-bit word whose stamp field cannot realistically wrap;
// valueBits is capped at 32.)
func NewDetectingRegisterUnboundedTag(n int, opts ...Option) (DetectingRegister, error) {
	return newDetectorByImpl(registry.MustLookup("unbounded"), n, buildOptions(opts))
}

// NewDetectingRegisterBoundedTag builds the folklore k-bit tag scheme
// (tagBits = k).  It is NOT a correct ABA-detecting register: after exactly
// 2^k writes the stored word repeats and a poised reader misses every one of
// them.  It exists as the experimental foil for the paper's lower bounds;
// see the internal/lowerbound model checker, which derives the failure
// automatically.
func NewDetectingRegisterBoundedTag(n int, tagBits uint, opts ...Option) (DetectingRegister, error) {
	o := buildOptions(opts)
	f := o.factory()
	inner, err := core.NewBoundedTag(f, n, o.valueBits, tagBits, o.initial)
	if err != nil {
		return nil, err
	}
	return &detReg{inner: inner, fp: footprintOf(f)}, nil
}

// NewDetectingRegisterFromLLSC wraps any LLSC object from this package as an
// ABA-detecting register at two shared-memory steps per operation — the
// paper's Figure 5 (Theorem 4).
func NewDetectingRegisterFromLLSC(obj LLSC) (DetectingRegister, error) {
	wrapper, ok := obj.(*llscObj)
	if !ok {
		return nil, fmt.Errorf("abadetect: foreign LLSC implementation %T", obj)
	}
	inner, err := core.NewLLSCBased(wrapper.inner)
	if err != nil {
		return nil, err
	}
	return &detReg{inner: inner, fp: wrapper.fp}, nil
}

// NewLLSC builds the paper's Figure 3 LL/SC/VL object for n processes: one
// bounded CAS word, O(n) step complexity (Theorem 2), which Corollary 1
// proves optimal — any implementation from m bounded objects needs
// m·t ≥ (n-1)/2.  valueBits + n must be at most 64.
func NewLLSC(n int, opts ...Option) (LLSC, error) {
	return newLLSCByImpl(registry.MustLookup("fig3"), n, buildOptions(opts))
}

// NewLLSCConstantTime builds the O(1)-step LL/SC/VL object from one bounded
// CAS word and n bounded registers — the announcement and sequence-number
// recycling construction in the style of Anderson–Moir and
// Jayanti–Petrovic, the other optimal point of the paper's time–space
// trade-off (m·t = Θ(n) at m = n+1, t = O(1)).
func NewLLSCConstantTime(n int, opts ...Option) (LLSC, error) {
	return newLLSCByImpl(registry.MustLookup("constant"), n, buildOptions(opts))
}

// NewLLSCUnboundedTag builds Moir's classic LL/SC from a single CAS word
// with an (effectively) unbounded tag: O(1) steps, one object — possible
// only because the object is unbounded (§1, [26]).
func NewLLSCUnboundedTag(n int, opts ...Option) (LLSC, error) {
	return newLLSCByImpl(registry.MustLookup("moir"), n, buildOptions(opts))
}
