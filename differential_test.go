package abadetect

import (
	"fmt"
	"testing"
)

// Differential testing across the registry: every registered implementation
// of the same object kind must produce identical observable behavior on the
// same (sequential, hence deterministically linearized) operation schedule.
// The schedules are long pseudo-random mixes, so the bounded machinery —
// sequence recycling, announcement discipline, mask clearing — cycles
// through its whole domain many times.  The bounded-tag foil is exempt from
// agreement and instead *asserted* to disagree: past 2^k writes its word
// wraps and it must miss a detection the correct implementations report.

// xorshift is the deterministic schedule generator.
type xorshift uint32

func (x *xorshift) next() uint32 {
	v := *x
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = v
	return uint32(v)
}

// detOp is one step of a detector schedule.
type detOp struct {
	pid   int
	write bool
	value Word
}

func randomDetectorSchedule(seed xorshift, n, ops int) []detOp {
	sched := make([]detOp, ops)
	for i := range sched {
		r := seed.next()
		sched[i] = detOp{
			pid:   int(r % uint32(n)),
			write: r&(1<<8) != 0,
			value: Word((r >> 9) & 0xf),
		}
	}
	return sched
}

// runDetectorSchedule replays sched and returns the trace of every DRead's
// (value, dirty) observation.
func runDetectorSchedule(reg DetectingRegister, n int, sched []detOp) ([]string, error) {
	handles := make([]DetectHandle, n)
	for pid := range handles {
		h, err := reg.Handle(pid)
		if err != nil {
			return nil, err
		}
		handles[pid] = h
	}
	var trace []string
	for i, op := range sched {
		if op.write {
			handles[op.pid].DWrite(op.value)
		} else {
			v, dirty := handles[op.pid].DRead()
			trace = append(trace, fmt.Sprintf("op%d p%d.DRead=(%d,%v)", i, op.pid, v, dirty))
		}
	}
	return trace, nil
}

func TestDifferentialDetectors(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			sched := randomDetectorSchedule(xorshift(0x9e3779b9+uint32(n)), n, 3000)
			var refID string
			var ref []string
			for _, info := range Implementations() {
				if info.Kind != "detector" || !info.Correct {
					continue
				}
				reg, err := NewDetectingRegisterByID(info.ID, n, WithValueBits(4))
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
				trace, err := runDetectorSchedule(reg, n, sched)
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
				if ref == nil {
					refID, ref = info.ID, trace
					continue
				}
				if len(trace) != len(ref) {
					t.Fatalf("%s returned %d reads, %s returned %d", info.ID, len(trace), refID, len(ref))
				}
				for i := range trace {
					if trace[i] != ref[i] {
						t.Fatalf("%s diverges from %s at read %d:\n  %s: %s\n  %s: %s",
							info.ID, refID, i, refID, ref[i], info.ID, trace[i])
					}
				}
			}
			if ref == nil {
				t.Fatal("no correct detector implementations registered")
			}
		})
	}
}

func TestDifferentialSlabBackend(t *testing.T) {
	// The slab substrate changes only the layout, never the semantics:
	// every correct detector must produce, over SlabBackend, exactly the
	// read trace it produces over NativeBackend on the same schedule.
	for _, n := range []int{1, 2, 5} {
		sched := randomDetectorSchedule(xorshift(0x51ab51ab+uint32(n)), n, 3000)
		for _, info := range Implementations() {
			if info.Kind != "detector" || !info.Correct {
				continue
			}
			var traces [2][]string
			for i, be := range []Backend{NativeBackend(), SlabBackend()} {
				reg, err := NewDetectingRegisterByID(info.ID, n, WithValueBits(4), WithBackend(be))
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
				traces[i], err = runDetectorSchedule(reg, n, sched)
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
			}
			for i := range traces[0] {
				if traces[0][i] != traces[1][i] {
					t.Fatalf("n=%d %s: slab diverges from native at read %d:\n  native: %s\n  slab:   %s",
						n, info.ID, i, traces[0][i], traces[1][i])
				}
			}
		}
		// Same layout-independence requirement for the LL/SC objects, whose
		// hot paths were devirtualized the same way.
		llSched := randomLLSCSchedule(xorshift(0x51abcc+uint32(n)), n, 3000)
		for _, info := range Implementations() {
			if info.Kind != "llsc" || !info.Correct {
				continue
			}
			var traces [2][]string
			for i, be := range []Backend{NativeBackend(), SlabBackend()} {
				obj, err := NewLLSCByID(info.ID, n, WithValueBits(4), WithBackend(be))
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
				traces[i], err = runLLSCSchedule(obj, n, llSched)
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
			}
			for i := range traces[0] {
				if traces[0][i] != traces[1][i] {
					t.Fatalf("n=%d %s: slab diverges from native at op %d:\n  native: %s\n  slab:   %s",
						n, info.ID, i, traces[0][i], traces[1][i])
				}
			}
		}
	}
}

// llOp is one step of an LL/SC/VL schedule.
type llOp struct {
	pid   int
	kind  byte // 0 = LL, 1 = SC, 2 = VL
	value Word
}

func randomLLSCSchedule(seed xorshift, n, ops int) []llOp {
	sched := make([]llOp, ops)
	for i := range sched {
		r := seed.next()
		sched[i] = llOp{
			pid:   int(r % uint32(n)),
			kind:  byte((r >> 8) % 3),
			value: Word((r >> 10) & 0xf),
		}
	}
	return sched
}

func runLLSCSchedule(obj LLSC, n int, sched []llOp) ([]string, error) {
	handles := make([]LLSCHandle, n)
	for pid := range handles {
		h, err := obj.Handle(pid)
		if err != nil {
			return nil, err
		}
		handles[pid] = h
	}
	var trace []string
	for i, op := range sched {
		switch op.kind {
		case 0:
			trace = append(trace, fmt.Sprintf("op%d p%d.LL=%d", i, op.pid, handles[op.pid].LL()))
		case 1:
			trace = append(trace, fmt.Sprintf("op%d p%d.SC(%d)=%v", i, op.pid, op.value, handles[op.pid].SC(op.value)))
		case 2:
			trace = append(trace, fmt.Sprintf("op%d p%d.VL=%v", i, op.pid, handles[op.pid].VL()))
		}
	}
	return trace, nil
}

func TestDifferentialLLSC(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			sched := randomLLSCSchedule(xorshift(0x7f4a7c15+uint32(n)), n, 3000)
			var refID string
			var ref []string
			for _, info := range Implementations() {
				if info.Kind != "llsc" || !info.Correct {
					continue
				}
				obj, err := NewLLSCByID(info.ID, n, WithValueBits(4))
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
				trace, err := runLLSCSchedule(obj, n, sched)
				if err != nil {
					t.Fatalf("%s: %v", info.ID, err)
				}
				if ref == nil {
					refID, ref = info.ID, trace
					continue
				}
				for i := range trace {
					if trace[i] != ref[i] {
						t.Fatalf("%s diverges from %s at op %d:\n  %s: %s\n  %s: %s",
							info.ID, refID, i, refID, ref[i], info.ID, trace[i])
					}
				}
			}
			if ref == nil {
				t.Fatal("no correct LL/SC implementations registered")
			}
		})
	}
}

func TestDifferentialBoundedTagFoilFails(t *testing.T) {
	// The foil must construct through the same public path...
	var foil ImplInfo
	for _, info := range Implementations() {
		if info.Kind == "detector" && !info.Correct {
			foil = info
		}
	}
	if foil.ID == "" {
		t.Fatal("no detector foil registered")
	}

	// ...and must DISAGREE with a correct implementation on the wraparound
	// schedule: a poised reader, exactly 2^k same-value writes, a read.
	// boundedtag1 has k=1, so 2 writes wrap the tag.
	const wrapWrites = 2
	schedule := func(reg DetectingRegister) (bool, error) {
		w, err := reg.Handle(0)
		if err != nil {
			return false, err
		}
		r, err := reg.Handle(1)
		if err != nil {
			return false, err
		}
		w.DWrite(1)
		r.DRead() // the reader is now poised on the pre-wrap word
		for i := 0; i < wrapWrites; i++ {
			w.DWrite(1)
		}
		_, dirty := r.DRead()
		return dirty, nil
	}

	correct, err := NewDetectingRegisterByID("fig4", 2, WithValueBits(4))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := schedule(correct)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("fig4 missed real writes — the reference itself is broken")
	}

	foilReg, err := NewDetectingRegisterByID(foil.ID, 2, WithValueBits(4))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err = schedule(foilReg)
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Errorf("%s detected the wraparound burst; the foil is supposed to miss it past 2^k writes", foil.ID)
	}
}

// replayRawStackScript runs the deterministic §1 recycling script through
// the public hooks and reports whether the stale commit was accepted.
func replayRawStackScript(t *testing.T, opts ...Option) (bool, StructureAudit) {
	t.Helper()
	s, err := NewStack(2, 3, append([]Option{WithProtection(ProtectionRaw)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	adversary, _ := s.Handle(0)
	victim, _ := s.Handle(1)
	for i := 1; i <= 3; i++ {
		adversary.Push(uint64(100 + i))
	}
	if _, _, empty := victim.PopBegin(); empty {
		t.Fatal("stack unexpectedly empty")
	}
	for i := 0; i < 3; i++ {
		adversary.Pop()
	}
	adversary.Push(104) // may starve under a reclaimer: prevention either way
	_, fooled := victim.PopCommit()
	return fooled, s.Audit()
}

// TestDifferentialReclaimers mirrors the bounded-tag foil pattern on the
// reclamation axis: enumerating the registered reclaimers from the
// catalog, the "none" pass-through must reproduce the deterministic
// raw-stack corruption while "hp", "epoch", and "epoch:auto" must prevent
// it — the same schedule, four allocator disciplines, opposite outcomes.
func TestDifferentialReclaimers(t *testing.T) {
	schemes := 0
	for _, info := range Implementations() {
		if info.Kind != "reclaimer" {
			continue
		}
		schemes++
		t.Run(info.ID, func(t *testing.T) {
			fooled, audit := replayRawStackScript(t, WithReclamation(info.ID))
			wantFooled := info.ID == "none"
			if fooled != wantFooled || audit.Corrupt != wantFooled {
				t.Fatalf("fooled=%v corrupt=%v (%s), want both %v", fooled, audit.Corrupt, audit.Detail, wantFooled)
			}
			if audit.Reclaimer != info.ID {
				t.Errorf("audit names reclaimer %q, want %q", audit.Reclaimer, info.ID)
			}
			if audit.Retired == 0 {
				t.Errorf("no retire counted through scheme %q: %+v", info.ID, audit)
			}
		})
	}
	if schemes != 4 {
		t.Errorf("catalog lists %d reclaimers, want 4 (hp, epoch, epoch:auto, none)", schemes)
	}
}
