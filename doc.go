// Package abadetect is a Go implementation of the algorithms and results of
//
//	Zahra Aghazadeh and Philipp Woelfel.
//	"On the Time and Space Complexity of ABA Prevention and Detection."
//	PODC 2015 (arXiv:1507.02722).
//
// The ABA problem: a process reads the same value twice from a shared
// object and concludes nothing happened in between — although the value may
// have changed and changed back.  The paper defines ABA-detecting registers
// (reads additionally report whether *any* write occurred since the reader's
// previous read), proves tight bounds on what detection costs when base
// objects are bounded, and gives matching wait-free algorithms.  This
// package exports those algorithms over 64-bit atomic words:
//
//   - NewDetectingRegister: the paper's Figure 4 — a linearizable wait-free
//     multi-writer ABA-detecting register from n+1 bounded registers with
//     O(1) step complexity (Theorem 3; space-optimal within two registers by
//     Theorem 1(a)).
//   - NewLLSC: the paper's Figure 3 — a linearizable wait-free LL/SC/VL
//     object from a single bounded CAS word with O(n) step complexity
//     (Theorem 2; time-optimal at this space by Corollary 1).
//   - NewLLSCConstantTime: the other end of the trade-off — O(1) steps from
//     one CAS word plus n registers (the Anderson–Moir / Jayanti–Petrovic
//     style announcement construction).
//   - NewDetectingRegisterFromLLSC: the paper's Figure 5 — an ABA-detecting
//     register from any LL/SC/VL object at two steps per operation
//     (Theorem 4); over NewLLSC this is Theorem 2's detecting register from
//     a single bounded CAS.
//   - NewDetectingRegisterSingleCAS: that composition, prebuilt.
//   - Baselines: NewDetectingRegisterUnboundedTag (the trivial solution
//     whose tag domain grows forever) and NewDetectingRegisterBoundedTag
//     (the folklore k-bit tag scheme, deliberately unsound at wraparound).
//
// # Implementation registry
//
// Every implementation is registered under a stable ID; Implementations
// lists the catalog (ID, theorem, footprint formula m(n), step bound t(n),
// bounded/unbounded, correct/foil) and NewDetectingRegisterByID /
// NewLLSCByID construct by ID.  The same registry drives the experiment
// harness, the verification tests, and the abalab CLI, so the catalog and
// the coverage cannot drift apart.
//
// # Backends
//
// Constructors allocate their base objects from a Backend, selected with
// WithBackend: NativeBackend (plain atomic words, the default), SlabBackend
// (all of an object's base objects contiguous in one slab of atomic words —
// best cache behavior for sequential and read-mostly traffic), PaddedBackend
// (one cache line per object — no false sharing under concurrent writes),
// NewCountingBackend (per-process shared-memory step counts, the paper's
// time measure), and NewAuditBackend (the used value domain per object, the
// paper's bounded/unbounded separation).  The algorithms are identical on
// every backend; only the substrate changes.
//
// The direct substrates (native, slab, padded) devirtualize the hot paths:
// algorithms bind raw atomic-word accessors at construction and Handle()
// time, so every shared step is one inlined atomic instruction and every
// operation runs allocation-free.  The instrumented backends keep the
// dynamic-call path so their measurements stay exact.
//
// # Application structures and guards
//
// The paper's §1 motivation ships as a public application layer: NewStack
// (Treiber stack), NewQueue (Michael–Scott queue), NewEventFlag (the
// resettable busy-wait flag), and NewMap (a sharded lock-free hash map).
// Each structure's mutable references — stack head, queue head/tail and
// per-node next pointers, the flag itself, the map's bucket heads and
// marked next links — are Guards (internal/guard): a unified Load /
// conditional-Commit / Validate abstraction whose regime is a constructor
// option.  WithProtection selects
// the §1 ladder (ProtectionRaw, the ABA victim; ProtectionTagged with
// WithTagBits; ProtectionLLSC, the immune default; ProtectionDetector, the
// Figure 5 detecting view that also counts every prevented ABA),
// WithGuardImpl puts any registered implementation behind the guard, and
// WithGuardedPool routes the node allocator's free list through a guard of
// the same regime, making free-list ABA observable.  GuardMetrics exposes
// commits, rejections, near-misses (detected-and-prevented ABAs), and dirty
// loads; Audit checks structural integrity at quiescence; the StackHandle's
// PopBegin/PopCommit and MapHandle's DeleteBegin/DeleteCommit hooks replay
// the deterministic corruption scripts.  The abalab -app command runs the
// whole structure × guard × implementation matrix (experiment E11).
//
// The map (internal/kv) is the keyed cache shape: chained buckets of
// recycled pool nodes under the Michael-style marked-link protocol.  A link
// word packs (successor index, mark bit); inserts land only at bucket heads
// (insert-at-head is ABA-immune), a delete marks its victim's next link
// with a conditional commit — freezing the link — before unlinking it past
// the predecessor, and traversals help finish unlinks.  Keys and values are
// immutable per node (an overwrite inserts a shadowing node and kills the
// duplicate), so reads never race updates.  In m(n)/t(n) vocabulary the map
// spends one guard per bucket head plus one per node next-link (B + cap
// guards over 2·cap value registers) and walks O(chain) guard hops per
// operation — each hop paying the selected regime's t(n) — which is exactly
// the per-reference cost model the paper prices, multiplied by a traversal.
//
// # Traffic layer
//
// internal/load is the measurement half of the production story: an open-
// and closed-loop traffic generator that drives any registered structure
// through the benchmark driver seam.  Closed-loop profiles measure service
// time under saturation; open-loop profiles schedule arrivals (Poisson or
// bursty) at a fixed rate and measure latency from the scheduled arrival,
// so queueing delay is charged to the operation (no coordinated omission).
// Keyed structures receive Zipf-skewed key popularity and a configurable
// get/put/delete mix.  Latencies land in allocation-free log2-bucket
// histograms — the record path is pinned at 0 allocs/op — and report
// p50/p99/p999.  Experiment E13 (abalab -load) sweeps map × regime ×
// reclaimer × profile: the table where a tag's extra word, a detector's
// extra steps, and a reclaimer's deferred frees stop being asymptotics and
// become tail latency.
//
// # Read path
//
// Read-mostly traffic gets its own protocol.  A guarded read normally pays
// the write-side machinery — a protection publish per node visited, a
// shared counter bump per op — which serializes exactly the workload that
// should scale.  The wait-free observers (the map's Get, the stack's and
// queue's Peek and IsEmpty) instead run a seqlock read: traverse with no
// hazard slot, no epoch pin, and no allocation, then accept the dependent
// reads only if the links they hung off still Validate.  Soundness is the
// regime's detection power restated: an ABA-detecting register answers
// "did any write intervene?" in one read — t(n) = O(1) over the m(n) = n+2
// registers of Figure 5 — so the detector's dirty bit is the seqlock
// check; tags and LL/SC validate at their usual t(n); raw validates
// value-blind, which is the §1 caveat, so raw under a reclaimer keeps the
// protected path.  The folklore alternative — an unbounded sequence number
// bumped per write, the scheme §1 ascribes to practice — costs O(1) steps
// but unbounded space, the corner of the paper's trade-off the bounded
// constructions exist to avoid.  A torn read retries a bounded number of
// times, then falls back to the guarded lock-free mainline, so readers are
// wait-free and progress never regresses; the retry and fallback counts
// land in the structure audits.  Experiment E14 (abalab -scale) sweeps a
// 90/5/5 read-mostly profile across structure × regime × reclaimer ×
// worker count and reports per-worker scaling.
//
// # Growth
//
// WithGrowth(maxCapacity) makes the map resizable: it starts at its
// constructed capacity and expands live — under concurrent gets, puts, and
// deletes — up to the ceiling, with no stop-the-world phase and no rehash.
// The protocol is split-ordered (Shalev–Shachnai) over the existing marked
// links: every node lives in one list sorted by bit-reversed hash, so a
// bucket-directory doubling moves no node — a new bucket is one dummy node
// inserted at its bit-reversed sort position and published in a directory
// slot, initialized lazily by recursively splitting its parent.  Node
// storage grows in geometric segments through the pool seam (nodes are
// array indices, so growth mints fresh indices and never relocates one),
// and the hp/epoch reclaimers are sized for the ceiling up front, so
// retirement accounting is untouched mid-resize.
//
// In m(n)/t(n) vocabulary: space is B + 2·cap guards plus 3·cap registers
// where B and cap now grow geometrically to the ceiling — the map only ever
// pays for the capacity tier it has reached, at ≤2x the live requirement —
// and the resize work is O(1) amortized guard operations per insert (each
// split inserts one dummy; each segment append is one publication), each
// paying the selected regime's t(n) like any other guarded step.  A
// directory split commits through the same Guards as normal traffic, which
// makes resizing a new ABA surface rather than a trusted phase: a split's
// dummy insert can restore a victim's armed link word bit-for-bit.  The
// deterministic scenario runs the §1 ladder over exactly that interleaving
// (raw+none corrupts; tagged/llsc/detector reject it as a counted
// near-miss; hp/epoch prevent the recycle outright), and StructureAudit
// reports Splits, SegmentAppends, and ResizeRetries alongside the
// structural checks.  Experiment E15 (abalab -grow) sweeps the growth
// matrix to 1M keys / 10M ops under live traffic.
//
// # Tail-latency knobs
//
// Three contention-diffusion options trade m(n) space for t(n) steps on the
// tail, all registry-wired and all off by default:
//
//   - WithElimination(slots) adds an elimination-backoff exchanger to
//     push/pop-shaped structures: a push that loses its head commit parks
//     its node in one of `slots` extra guards and a concurrent pop takes it
//     there, so the colliding pair completes in O(1) without ever touching
//     the hot head word.  The handoff is ABA-immune by construction — the
//     parked node is never linked into the structure and its value is read
//     only after the take commit — so it is sound under every regime,
//     including ProtectionRaw.  Cost: slots extra guards.
//   - WithCombining() adds flat combining to keyed structures: one lock
//     word and n publication slots per bucket; a writer that wins the lock
//     applies every pending op in one cache-hot sweep while losers publish
//     and wait.  Uncontended reads bypass the protocol entirely.  Cost:
//     n+1 words per bucket, none on the read path.
//   - WithLocalCache(capacity) puts a per-process LIFO free stack in front
//     of the shared node pool; an alloc/release pair that stays on one
//     process is two private operations with no shared steps at all.  The
//     cache sits below retirement, so hp/epoch accounting is exact.  Cost:
//     n·capacity node slots parked out of the shared pool.
//
// The load tier adds the other half of tail control: admission.  An
// open-loop profile with a Queue bound sheds (or blocks) arrivals that are
// more than Queue·interarrival behind schedule, so the latency table
// reports the p50/p99/p999 of *admitted* operations plus an explicit shed
// count — goodput (admitted ops per second) and shed are reported
// separately rather than letting overload masquerade as throughput.
// StructureAudit exposes the fast-path ledger: elimination hits and misses,
// combined ops and batches, local-cache hits and spills.
//
// # Safe memory reclamation
//
// WithReclamation selects the defense the guards never see: "hp" (hazard
// pointers), "epoch" (epoch-based reclamation), "epoch:k" (a pinned epoch
// advance cadence), "epoch:auto" (a self-tuning cadence), or "none" (the
// explicit immediate-reuse pass-through, also the default).  Under hp or epoch a
// removed node retires into limbo and re-enters the allocator only once no
// process protection can cover it, so the §1 recycle-inside-the-window ABA
// never forms — a ProtectionRaw structure passes the deterministic
// corruption scripts with zero near-misses, because prevention happens by
// allocation discipline rather than detection.
//
// The trade-off is the paper's m(n)/t(n) vocabulary applied to SMR.  A
// k-bit tag spends k bits of every guarded word and fails after 2^k
// in-window writes (Theorem 1(a) prices that failure); LL/SC and detecting
// registers spend m(n) base objects and t(n) steps per access to detect
// every repeat.  Hazard pointers instead spend m(n) = n·H single-writer
// registers (H = 2 published slots per process) plus deferred-node lists,
// at O(1) expected amortized steps with an O(n·H) scan every threshold
// retires, and a stalled process defers only the ≤H nodes it protects.
// Epoch reclamation is cheaper — m(n) = n+1 objects, O(1) amortized — but
// its epoch counter is unbounded (the same axis that separates the paper's
// bounded and unbounded constructions) and one stalled pinned process
// blocks every reuse in the system.  Audit surfaces the whole ledger:
// retired/reclaimed/deferred counts, reclamation stalls, and pool
// exhaustions.  The abalab -reclaim command runs the structure × regime ×
// reclaimer matrix (experiment E12).
//
// Limbo — the retired-but-not-freed residue — is itself m(n) spent to buy
// t(n): every deferred node is pool capacity rented so that Retire can be
// O(1) instead of paying the sweep inline.  The rent compounds with the
// epoch advance cadence: a handle that accumulates k retires per advance
// amortizes the O(n) announcement sweep k-fold but parks up to n·k nodes,
// and on a tight pool that lag surfaces as allocation misses no local
// drain can recover, because the stranded nodes sit in other handles'
// pending lists.  "epoch:auto" closes the loop — allocator backpressure
// and limbo pressure snap the cadence to 1, empty drains relax it
// geometrically toward the min(2n, capacity/n) ceiling — keeping epoch's
// n+1-register m(n) while tracking hp's alloc-miss behavior under
// write-leaning churn.  Retirement is batched (RetireBatch through the
// pool seam: the map flushes each operation's kill set at guard release),
// and hp's threshold sweeps reuse a sorted hazard snapshot versioned by a
// striped publication counter when no Protect or Clear intervened.  The
// abalab -pressure command prices all of this as the reclamation-pressure
// matrix (experiment E16).
//
// # Observability
//
// WithTracing(capacity) attaches a flight recorder (internal/trace) to a
// structure: one single-writer event ring per process, each cache-line
// padded and capacity (rounded up to a power of two) events deep, recording
// the guard, allocator, reclaimer, and operation transitions as they happen.
// In the paper's vocabulary the recorder costs m(n) = n rings × capacity
// fixed words — allocated once at construction, never grown — and
// t(n) = O(1) steps per event: a record is one ring-local slot write plus
// one fetch-add on a global sequence ticket drawn after the traced
// transition completes, so sorting a merged dump by that ticket yields a
// happens-before-consistent interleaving without stopping any writer.
// Untraced structures carry a nil recorder and every hook compiles to a nil
// check — the hot paths stay allocation-free and within noise of the
// untraced build (pinned by the hot-path tests and experiment E17).
// StructureTrace returns the merged dump; the deterministic ABA scenarios
// arm a Watch that freezes the rings at the first near-miss (or attaches
// the full dump when a raw guard is silently fooled), so every scenario
// verdict ships with the incident flight record that explains it.  The
// abalab -trace-dump command pretty-prints those records, and abalab -serve
// exports live metrics (expvar, Prometheus text, pprof, and the current
// trace as JSON) from a structure under churn.
//
// # Scaling out
//
// NewShardedDetectingArray builds an array of independent detecting
// registers — per key, per queue head, per session slot — with per-shard
// detection state, cache-line striped layout by default, an aggregate
// Footprint, and any registered implementation as the shard type
// (WithShardImpl).
//
// # Process model
//
// Every object is created for a fixed number of processes n; each process
// (goroutine) obtains its own handle via Handle(pid) with a distinct pid in
// [0, n).  Handles carry the paper's process-local state and must not be
// shared between goroutines; distinct handles of one object may be used
// concurrently.
//
// # Repository layout
//
// The exported API is a thin facade over internal packages that also power
// the paper's experiments: a deterministic shared-memory simulator with
// adversarial schedules (internal/sim), a linearizability checker
// (internal/check), a configuration-space model checker reproducing the
// lower-bound proofs as searches (internal/machine, internal/lowerbound),
// and application workloads (internal/apps).  See DESIGN.md and
// EXPERIMENTS.md.
package abadetect
