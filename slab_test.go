package abadetect

// Race-enabled coverage for the slab backend, mirroring sharded_test.go:
// the slab substrate changes the memory layout of every base object, so the
// same concurrent traffic that exercises the padded sharded array must run
// against packed slabs under -race.

import (
	"sync"
	"testing"
)

func TestSlabBackendBasics(t *testing.T) {
	reg, err := NewDetectingRegister(4, WithBackend(SlabBackend()))
	if err != nil {
		t.Fatal(err)
	}
	// The slab layout must not change the model's footprint.
	if fp := reg.Footprint(); fp.Registers != 5 || fp.CASObjects != 0 {
		t.Errorf("slab changed the footprint: %v", fp)
	}
	w, _ := reg.Handle(0)
	r, _ := reg.Handle(1)
	r.DRead()
	w.DWrite(3)
	w.DWrite(7)
	w.DWrite(3)
	if v, dirty := r.DRead(); v != 3 || !dirty {
		t.Errorf("DRead over slab backend = (%d,%v), want (3,true)", v, dirty)
	}
	if _, dirty := r.DRead(); dirty {
		t.Error("spurious dirty on quiet slab register")
	}
}

func TestSlabBackendEveryImplementation(t *testing.T) {
	// Every registered implementation must construct and behave over the
	// slab substrate: correct detectors detect, LL/SC objects link.
	for _, info := range Implementations() {
		switch info.Kind {
		case "detector":
			reg, err := NewDetectingRegisterByID(info.ID, 3, WithValueBits(8), WithBackend(SlabBackend()))
			if err != nil {
				t.Fatalf("%s: %v", info.ID, err)
			}
			if got, want := reg.Footprint().Objects(), info.Objects(3); got != want {
				t.Errorf("%s: slab footprint %d objects, want m(3) = %d", info.ID, got, want)
			}
			if !info.Correct {
				continue
			}
			w, _ := reg.Handle(0)
			r, _ := reg.Handle(1)
			w.DWrite(5)
			w.DWrite(5)
			if v, dirty := r.DRead(); v != 5 || !dirty {
				t.Errorf("%s over slab: DRead = (%d,%v), want (5,true)", info.ID, v, dirty)
			}
		case "llsc":
			obj, err := NewLLSCByID(info.ID, 3, WithValueBits(8), WithBackend(SlabBackend()))
			if err != nil {
				t.Fatalf("%s: %v", info.ID, err)
			}
			h, _ := obj.Handle(0)
			if v := h.LL(); v != 0 {
				t.Errorf("%s over slab: initial LL = %d", info.ID, v)
			}
			if !h.SC(9) {
				t.Errorf("%s over slab: uncontended SC failed", info.ID)
			}
			if got := h.LL(); got != 9 {
				t.Errorf("%s over slab: LL after SC = %d, want 9", info.ID, got)
			}
		}
	}
}

func TestSlabShardedArrayConcurrent(t *testing.T) {
	// TestShardedArrayConcurrent over packed slabs instead of padded lines.
	const n, shards = 4, 4
	a, err := NewShardedDetectingArray(n, shards, WithValueBits(16), WithBackend(SlabBackend()))
	if err != nil {
		t.Fatal(err)
	}
	if fp := a.Footprint(); fp.Registers != shards*(n+1) {
		t.Errorf("slab sharded footprint = %v, want %d registers", fp, shards*(n+1))
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		h, err := a.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pid int, h *ShardedArrayHandle) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s := (pid + i) % shards
				if pid%2 == 0 {
					h.DWrite(s, Word(i&0xffff))
				} else if _, dirty := h.DRead(s); dirty {
					_ = dirty
				}
			}
		}(pid, h)
	}
	wg.Wait()
}

func TestSlabRegisterConcurrent(t *testing.T) {
	// All processes on ONE slab register: writers and readers share the
	// packed slab's cache lines, the hardest case for the devirtualized
	// paths under -race.
	const n = 8
	reg, err := NewDetectingRegister(n, WithValueBits(16), WithBackend(SlabBackend()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		h, err := reg.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pid int, h DetectHandle) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if pid%2 == 0 {
					h.DWrite(Word(i & 0xffff))
				} else {
					h.DRead()
				}
			}
		}(pid, h)
	}
	wg.Wait()
}

func TestSlabLLSCConcurrent(t *testing.T) {
	// Counter increments through LL/SC retry loops over the slab substrate:
	// every successful SC is one increment, so the final value is exact.
	const n, perProc = 4, 200
	obj, err := NewLLSCConstantTime(n, WithValueBits(16), WithBackend(SlabBackend()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		h, err := obj.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h LLSCHandle) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				for {
					v := h.LL()
					if h.SC(v + 1) {
						break
					}
				}
			}
		}(h)
	}
	wg.Wait()
	h, _ := obj.Handle(0)
	if got := h.LL(); got != n*perProc {
		t.Errorf("counter over slab = %d, want %d", got, n*perProc)
	}
}
