package abadetect

import (
	"runtime"
	"sync"
	"testing"
)

// TestNewMapAcrossRegimesAndReclaimers is the public acceptance grid: the
// map constructs and runs under every protection regime × every reclamation
// scheme, the sound cells audit clean under concurrent churn, and the
// metrics plumbing (guards, free list, reclaimer ledger) is visible through
// the public API.  raw+none is the deliberate §1 victim: it must run, and
// its audit is reported, not asserted clean.
func TestNewMapAcrossRegimesAndReclaimers(t *testing.T) {
	regimes := []struct {
		name string
		prot Protection
	}{
		{"raw", ProtectionRaw},
		{"tagged", ProtectionTagged},
		{"llsc", ProtectionLLSC},
		{"detector", ProtectionDetector},
	}
	for _, re := range regimes {
		for _, scheme := range []string{"none", "hp", "epoch"} {
			t.Run(re.name+"+"+scheme, func(t *testing.T) {
				const n = 4
				m, err := NewMap(n, 32, WithProtection(re.prot), WithReclamation(scheme))
				if err != nil {
					t.Fatal(err)
				}
				if m.Protection() != re.prot {
					t.Fatalf("protection = %v, want %v", m.Protection(), re.prot)
				}
				sound := re.prot != ProtectionRaw || scheme != "none"
				var wg sync.WaitGroup
				fail := make(chan string, n)
				for pid := 0; pid < n; pid++ {
					h, err := m.Handle(pid)
					if err != nil {
						t.Fatal(err)
					}
					wg.Add(1)
					go func(pid int, h *MapHandle) {
						defer wg.Done()
						for i := 0; i < 800; i++ {
							k := Word(pid)<<16 | Word(i%4)
							v := Word(i)
							for !h.Put(k, v) {
								runtime.Gosched()
							}
							if sound {
								if got, ok := h.Get(k); !ok || got != v {
									fail <- "lost own binding"
									return
								}
								if !h.Delete(k) {
									fail <- "lost own delete"
									return
								}
							} else {
								h.Get(k)
								h.Delete(k)
							}
						}
					}(pid, h)
				}
				wg.Wait()
				close(fail)
				for msg := range fail {
					t.Fatal(msg)
				}
				a := m.Audit()
				if a.Reclaimer != scheme {
					t.Errorf("audit reclaimer = %q, want %q", a.Reclaimer, scheme)
				}
				if sound && a.Corrupt {
					t.Errorf("sound cell corrupted: %s", a.Detail)
				}
				if scheme != "none" && a.Retired == 0 {
					t.Error("reclaimer ledger empty after churn")
				}
				if gm := m.GuardMetrics(); gm.Commits == 0 {
					t.Error("guards recorded no commits")
				}
			})
		}
	}
}

// TestNewMapOptionPlumbing checks the option surface the other structures
// share: backends, guard implementations, the guarded pool, and the
// tag-width validation.
func TestNewMapOptionPlumbing(t *testing.T) {
	m, err := NewMap(2, 8,
		WithBackend(SlabBackend()),
		WithProtection(ProtectionLLSC), WithGuardImpl("constant"),
		WithGuardedPool())
	if err != nil {
		t.Fatal(err)
	}
	if m.Footprint().Objects() == 0 {
		t.Error("empty footprint")
	}
	if m.Buckets() < 1 {
		t.Error("no buckets")
	}
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Put(1, 2) {
		t.Fatal("put failed")
	}
	if fm := m.FreelistMetrics(); fm.Commits == 0 {
		t.Error("guarded free list recorded no commits")
	}
	if _, err := NewMap(2, 8, WithTagBits(0)); err == nil {
		t.Error("want error for a zero-width tag")
	}
	if _, err := NewMap(2, 8, WithProtection(ProtectionTagged), WithTagBits(64)); err == nil {
		t.Error("want error for a tag that cannot pack beside the link word")
	}
	if _, err := NewMap(2, 8, WithProtection(ProtectionDetector), WithGuardImpl("fig4")); err == nil {
		t.Error("want error for a detection-only guard behind a committing structure")
	}
}

// TestMapDeleteHooksPublic drives the experiment hooks through the public
// API: DeleteBegin logically deletes, a helping traversal may finish the
// unlink, and a stale DeleteCommit can never double-fire.
func TestMapDeleteHooksPublic(t *testing.T) {
	m, err := NewMap(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Put(5, 50) {
		t.Fatal("put failed")
	}
	// Uncontended: the begun delete commits.
	if _, _, found := a.DeleteBegin(5); !found {
		t.Fatal("DeleteBegin missed the binding")
	}
	if !a.DeleteCommit() {
		t.Error("uncontended DeleteCommit failed")
	}
	if a.DeleteCommit() {
		t.Error("a second DeleteCommit replayed a consumed snapshot")
	}
	// Helped: readers are wait-free and never write, so a read that passes
	// the marked node reports the miss without touching the chain; a
	// *writer's* traversal finishes the unlink, and the stalled deleter's
	// own commit must then fail instead of double-firing.
	if !a.Put(6, 60) {
		t.Fatal("put failed")
	}
	if _, _, found := a.DeleteBegin(6); !found {
		t.Fatal("DeleteBegin missed the binding")
	}
	// The logical delete already hides the binding from readers.
	if _, ok := b.Get(6); ok {
		t.Error("marked binding still visible")
	}
	if b.Delete(6) {
		t.Error("helping Delete claimed the kill it only helped unlink")
	}
	if a.DeleteCommit() {
		t.Error("DeleteCommit succeeded after a helper already unlinked the node")
	}
	if audit := m.Audit(); audit.Corrupt {
		t.Errorf("audit: %s", audit.Detail)
	}
}
