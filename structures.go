package abadetect

import (
	"fmt"

	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/kv"
	"abadetect/internal/registry"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// This file is the public application layer: the lock-free data structures
// of the paper's §1 motivation — Treiber stack, Michael–Scott queue, and
// the resettable busy-wait event flag — each runnable under every
// protection regime × registered implementation × backend this package
// knows about.  It mirrors the Option plumbing of the base-object
// constructors: WithBackend selects the substrate, WithProtection the guard
// regime, WithGuardImpl the registered implementation behind an LL/SC or
// detector guard, WithTagBits the tag width, and WithGuardedPool routes the
// node allocator's free list through a guard of the same regime.

// Protection selects how a structure's mutable references are guarded — the
// paper's §1 ladder, weakest to strongest.
type Protection int

// Protection regimes.
const (
	// ProtectionRaw uses bare CAS on references: the ABA victim.  It exists
	// for head-to-head comparison and the corruption experiments.
	ProtectionRaw Protection = iota + 1
	// ProtectionTagged packs a wrap-around tag beside each reference
	// (WithTagBits, default 16): sound until 2^k writes land inside one
	// operation's window.
	ProtectionTagged
	// ProtectionLLSC keeps references in LL/SC objects: immune by
	// specification.  The default.
	ProtectionLLSC
	// ProtectionDetector keeps references behind an ABA-detecting view
	// (Figure 5 over LL/SC): immune, and every prevented ABA is counted in
	// the structure's GuardMetrics.
	ProtectionDetector
)

// String names the regime.
func (p Protection) String() string { return guard.Regime(p).String() }

// GuardMetrics are a structure's aggregated guard audit counters.
type GuardMetrics struct {
	// Commits and Rejected count successful and failed conditional swings.
	Commits, Rejected int64
	// NearMisses counts rejected swings whose reference value compared
	// equal: ABAs the regime detected and prevented.  Raw guards record
	// none by construction — that structural zero is the vulnerability.
	NearMisses int64
	// DirtyLoads counts loads that observed detectable interference.
	DirtyLoads int64
}

func publicMetrics(m guard.Metrics) GuardMetrics {
	return GuardMetrics{Commits: m.Commits, Rejected: m.Rejected, NearMisses: m.NearMisses, DirtyLoads: m.DirtyLoads}
}

// StructureAudit is a quiescent-state structural check of a stack or queue,
// together with the allocator's observability counters.
//
// Snapshot semantics, made explicit: GuardMetrics and FreelistMetrics are
// assembled from independent atomic loads of cache-line-striped lanes, so
// they are safe to read under live traffic but deliberately relaxed — no
// individual counter is ever torn, yet related counters can be caught
// between the bumps of one in-flight operation.  The full Audit additionally
// walks the reclaimer's pending lists and the structure's links, which is
// why it (unchanged from its contract) requires quiescence.  At quiescence
// every snapshot is exact and repeatable: two back-to-back audits are deeply
// equal, a contract pinned by a race-mode test at the repository root.
type StructureAudit struct {
	// Corrupt reports structural damage: nodes simultaneously reachable and
	// free, lost nodes, cycles, or a dangling tail.  Nodes deferred by a
	// reclaimer count as allocator-owned, not lost.
	Corrupt bool
	// Detail renders the underlying counts.
	Detail string
	// PoolExhaustions counts allocations that found no free node (after
	// draining the reclaimer, when one is active): the signal that
	// distinguishes a saturated pool from a livelock.
	PoolExhaustions int64
	// Reclaimer names the active reclamation scheme ("none" = immediate
	// reuse, the default).
	Reclaimer string
	// Retired, Reclaimed, and Deferred are the reclaimer's counters: nodes
	// handed to it, nodes returned to the allocator, and nodes currently in
	// limbo.  Under "none" every retired node is reclaimed immediately.
	Retired, Reclaimed, Deferred int64
	// ReclaimStalls counts reclamation passes that could free nothing while
	// nodes were pending — hazards covering every candidate, or an epoch
	// advance blocked by a stalled process.
	ReclaimStalls int64
	// RetireBatches counts multi-node retirements handed to the reclaimer
	// in one call (the structures' commit paths and the map's per-operation
	// kill sets), whose bookkeeping was amortized over the batch.
	RetireBatches int64
	// SkippedScans counts hazard sweeps served from the cached sorted
	// snapshot because no hazard slot changed since the last sweep (hp
	// only).
	SkippedScans int64
	// AllocPressure counts allocator backpressure signals: failed
	// allocations reported to the reclaimer before the exhaustion drain.
	AllocPressure int64
	// CadenceTightens and CadenceRelaxes count the self-tuning moves of the
	// epoch:auto scheme: advance-cadence reductions under limbo pressure or
	// stalled drains, and increases after drains that emptied the pending
	// list.  Zero for the fixed-cadence schemes.
	CadenceTightens, CadenceRelaxes int64
	// LocalCacheHits and LocalCacheSpills are the per-worker node-cache
	// counters (zero unless built WithLocalCache): allocations served from a
	// worker's private free stack, and nodes spilled back to the shared pool
	// when a cache overflowed.
	LocalCacheHits, LocalCacheSpills int64
	// ElimHits and ElimMisses are the elimination-array counters (zero
	// unless a stack is built WithElimination): push/pop pairs that
	// exchanged through a collision slot without touching the top-of-stack
	// guard, and offers or takes that failed to pair.
	ElimHits, ElimMisses int64
	// CombinedOps and CombineBatches are the flat-combining counters (zero
	// unless a map is built WithCombining): operations a combiner applied
	// on behalf of other processes, and combiner passes that ran.
	CombinedOps, CombineBatches int64
	// ReadRetries and ReadFallbacks are the map's wait-free read-path
	// counters: torn fast-path Get attempts that were detected and retried,
	// and Gets that exhausted the retry budget and fell back to the guarded
	// lock-free traversal.  Both zero on clean read-mostly traffic.
	ReadRetries, ReadFallbacks int64
	// Splits, SegmentAppends, and ResizeRetries are the map's resize
	// counters (zero unless built WithGrowth): bucket-directory doublings,
	// geometric node-segment appends, and directory doublings lost to a
	// concurrent winner.
	Splits, SegmentAppends, ResizeRetries int64
}

// poolAudit merges the allocator counters into a structure audit.
func poolAudit(corrupt bool, detail string, ps apps.PoolStats) StructureAudit {
	return StructureAudit{
		Corrupt:          corrupt,
		Detail:           detail,
		PoolExhaustions:  ps.Exhaustions,
		Reclaimer:        ps.Scheme,
		Retired:          ps.Reclaim.Retired,
		Reclaimed:        ps.Reclaim.Freed,
		Deferred:         ps.Reclaim.Deferred(),
		ReclaimStalls:    ps.Reclaim.Stalls,
		RetireBatches:    ps.Reclaim.Batches,
		SkippedScans:     ps.Reclaim.SkippedScans,
		AllocPressure:    ps.Reclaim.Pressure,
		CadenceTightens:  ps.Reclaim.Tightens,
		CadenceRelaxes:   ps.Reclaim.Relaxes,
		LocalCacheHits:   ps.Local.Hits,
		LocalCacheSpills: ps.Local.Spills,
	}
}

// WithProtection selects the guard regime of a structure constructor
// (default ProtectionLLSC).  Base-object constructors ignore it.
func WithProtection(p Protection) Option {
	return func(o *options) { o.protection = p }
}

// WithTagBits sets the wrap-around tag width of ProtectionTagged (default
// 16).  An explicitly supplied width is validated regardless of regime:
// zero is rejected at construction (it would silently degrade a tagged
// guard to raw) and so is a width no 64-bit packed word can hold; under
// ProtectionTagged the width must additionally leave room for the
// structure's reference bits.  Regimes other than Tagged otherwise ignore
// the value.
func WithTagBits(bits uint) Option {
	return func(o *options) { o.tagBits, o.tagBitsSet = bits, true }
}

// WithReclamation routes a structure's node releases through a safe-memory-
// reclamation scheme: "hp" (hazard pointers), "epoch" (epoch-based
// reclamation), "epoch:k" (epoch with a fixed advance cadence of k retires),
// "epoch:auto" (epoch whose cadence self-tunes to allocator backpressure),
// or "none" (the explicit immediate-reuse pass-through; also the default
// when the option is absent).  Under every scheme but "none" a removed node
// cannot re-enter the allocator while any process may still hold its index,
// so the §1 recycle-inside-the-window ABA never forms — even under
// ProtectionRaw.  That is the trade the paper's m(n)/t(n) vocabulary prices:
// hp spends n·H published slots and an amortized scan, epoch spends n+1
// words and an unbounded counter (and stalls all reuse behind one stalled
// process), where tagging spends k bits of every guarded word.  The
// reclaimer's counters surface through Audit().  The event flag has no node
// pool; it accepts the option and ignores it.
func WithReclamation(scheme string) Option {
	return func(o *options) { o.reclaim = scheme }
}

// WithGuardImpl selects the registered implementation behind a
// ProtectionLLSC or ProtectionDetector guard (defaults: "fig3" and
// "fig5-fig3"; see Implementations for the catalog).  For
// ProtectionDetector, implementations with an LL/SC core (the fig5-*
// family) support all structures; register-only detectors such as "fig4"
// are detection-only and can guard only the event flag.
func WithGuardImpl(id string) Option {
	return func(o *options) { o.guardImpl = id }
}

// WithGuardedPool routes a structure's node free list through a guard of
// the same regime, instead of the default mutex FIFO allocator model.  The
// free list then becomes exactly as ABA-(in)vulnerable as the structure
// above it, and FreelistMetrics exposes its counters.
func WithGuardedPool() Option {
	return func(o *options) { o.guardedPool = true }
}

// WithElimination gives a stack an elimination array of the given number of
// collision slots: a contending push hands its node directly to a colliding
// pop, and the pair linearizes without touching the top-of-stack guard.
// The exchange is ABA-free by construction (the taker reads the value only
// after winning a conditional take), so it tightens the contended tail
// without weakening any regime's guarantee.  The cost in the paper's
// vocabulary is explicit: `slots` extra guards of m(n) space buy the
// removal of the head guard from the t(n) of every eliminated pair.  The
// counters surface in Audit().  Structures without a push/pop shape accept
// the option and ignore it.
func WithElimination(slots int) Option {
	return func(o *options) { o.elimination = slots }
}

// WithLocalCache puts a bounded private free stack of the given capacity in
// front of each worker's node allocator: release feeds the local stack,
// alloc drains it, and only overflow or underflow touches the shared pool.
// Under a reclaimer the cache sits *below* retirement — a retired node
// clears limbo before it can land in any cache — so the Audit() reclaim
// accounting stays exact.  The trade is n·capacity nodes of m(n) space for
// the removal of the shared free-list round trip from the common-case t(n).
func WithLocalCache(capacity int) Option {
	return func(o *options) { o.localCache = capacity }
}

// WithGrowth lets a map grow its node pool and bucket directory up to
// maxCapacity keys, with no stop-the-world: the node space extends by
// geometric segment appends (existing nodes never move — new segments extend
// the slab addressing), and the bucket directory doubles by split-ordered
// recursive splitting (a new bucket is a lazily initialized shortcut into the
// one global sorted list; no node is ever rehashed or migrated).  Both the
// split path and the append path run through guards of the selected
// Protection, so resizing is exactly as ABA-(in)vulnerable as the traffic
// around it — the deterministic resize corruption script provably fools
// ProtectionRaw and is rejected by every sounder regime.  Guards and tag
// widths are sized for maxCapacity up front, so the m(n) ledger prices the
// ceiling, not the current occupancy.  Structures without a growable shape
// accept the option and ignore it.
func WithGrowth(maxCapacity int) Option {
	return func(o *options) { o.growTo = maxCapacity }
}

// WithCombining turns on flat combining for a map's hot buckets: one lock
// word plus n publication slots per bucket; a writer that wins the lock
// applies the other contenders' published operations back-to-back on a
// cache-warm chain, and uncontended reads keep the plain lock-free path.
// Combining is layered over the already-guarded structure, so it changes
// the contended t(n), never the soundness story.  Structures without keyed
// buckets accept the option and ignore it.
func WithCombining() Option {
	return func(o *options) { o.combining = true }
}

// WithTracing attaches a flight recorder to a structure: one fixed ring of
// `capacity` events per process (rounded up to a power of two, minimum 8),
// recording guard loads/commits/rejects/near-misses, allocator
// alloc/release/retire/exhaustion, reclaimer scans/epoch advances, and the
// begin/commit halves of the split operations.  Recording is allocation-free
// and single-writer per ring; StructureTrace() merges the rings into one
// happens-before-consistent dump.  Without this option tracing costs nothing:
// the hooks are nil and the hot paths are byte-identical to the untraced
// build.  The m(n) price is explicit: n rings × capacity events of fixed
// space, O(1) steps per event.
func WithTracing(capacity int) Option {
	return func(o *options) { o.traceCap = capacity }
}

// TraceEvent is one flight-recorder event in a StructureTrace dump.
type TraceEvent struct {
	// GSeq is the global merge ticket: the dump is strictly ascending in
	// GSeq, and GSeq order is consistent with happens-before (an event's
	// ticket is drawn after the recorded transition completed).
	GSeq uint64
	// Seq is the per-process event number, and Pid the recording process.
	Seq uint64
	Pid int32
	// TS is a coarse wall-clock sample (nanoseconds; refreshed every few
	// events, 0 in between — ordering lives in GSeq, not here).
	TS int64
	// Kind names the transition ("guard-load", "guard-near-miss", "alloc",
	// "retire", "scan", "op-begin", ...) and Obj the object it happened on
	// ("head", "mhead[0]", "map", "pop", ...).
	Kind string
	Obj  string
	// A and B are the kind-specific operands (values, node indices, counts).
	A, B uint64
}

// String renders the event one-per-line, matching the -trace-dump format.
func (e TraceEvent) String() string {
	return fmt.Sprintf("#%d p%d/%d %s %s a=%d b=%d", e.GSeq, e.Pid, e.Seq, e.Kind, e.Obj, e.A, e.B)
}

func publicTrace(events []trace.Event) []TraceEvent {
	if events == nil {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, e := range events {
		out[i] = TraceEvent{GSeq: e.GSeq, Seq: e.Seq, Pid: e.Pid, TS: e.TS, Kind: e.Kind.String(), Obj: e.Obj, A: e.A, B: e.B}
	}
	return out
}

// guardSpec resolves the options into the registry's guard matrix cell.
func (o options) guardSpec() registry.GuardSpec {
	p := o.protection
	if p == 0 {
		p = ProtectionLLSC
	}
	tagBits := o.tagBits
	if tagBits == 0 {
		tagBits = 16
	}
	return registry.GuardSpec{Regime: guard.Regime(p), ImplID: o.guardImpl, TagBits: tagBits}
}

// structOpts renders the apps-layer options for a constructor, resolving
// the reclamation scheme through the registry and building the flight
// recorder (nil unless WithTracing) — n is the process count the recorder's
// per-process rings are sized for.
func (o options) structOpts(n int, mk guard.Maker) ([]apps.StructOption, *trace.Recorder, error) {
	opts := []apps.StructOption{apps.WithMaker(mk)}
	var rec *trace.Recorder
	if o.traceCap > 0 {
		rec = trace.New(n, o.traceCap)
		opts = append(opts, apps.WithTrace(rec))
	}
	if o.guardedPool {
		opts = append(opts, apps.WithGuardedPool())
	}
	if o.elimination != 0 {
		opts = append(opts, apps.WithElimination(o.elimination))
	}
	if o.localCache != 0 {
		opts = append(opts, apps.WithLocalCache(o.localCache))
	}
	if o.combining {
		opts = append(opts, apps.WithCombining())
	}
	if o.growTo != 0 {
		opts = append(opts, apps.WithGrowth(o.growTo))
	}
	if o.reclaim != "" {
		// An explicit "none" still goes through the registry, so the
		// pass-through's retire/free counters stay comparable with hp and
		// epoch; only the absent option skips the wrapper entirely.
		rmk, err := registry.NewReclaimMaker(o.reclaim)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, apps.WithReclaimer(rmk))
	}
	return opts, rec, nil
}

// checkTagBits validates an explicit WithTagBits width against the
// structure's reference width (refBits).  An unset option keeps the
// 16-bit default.
func (o options) checkTagBits(refBits uint) error {
	if !o.tagBitsSet {
		return nil
	}
	if o.tagBits == 0 {
		return fmt.Errorf("abadetect: WithTagBits(0): a zero-width tag cannot distinguish any write (it silently degrades ProtectionTagged to raw); use WithProtection(ProtectionRaw) if unprotected references are intended")
	}
	if o.tagBits > 63 {
		return fmt.Errorf("abadetect: WithTagBits(%d): the tag and the reference value must pack into one 64-bit word", o.tagBits)
	}
	if Protection(o.guardSpec().Regime) == ProtectionTagged && refBits+o.tagBits > 64 {
		return fmt.Errorf("abadetect: WithTagBits(%d): %d tag bits + %d reference bits exceed the 64-bit word; use at most %d tag bits for this capacity",
			o.tagBits, o.tagBits, refBits, 64-refBits)
	}
	return nil
}

// Stack is a Treiber stack over a fixed pool of recycled index-based nodes,
// shared by n processes — the canonical ABA victim of §1, guarded by the
// selected Protection.
type Stack struct {
	inner *apps.Stack
	fp    Footprint
	tr    *trace.Recorder
}

// NewStack builds a stack for n processes with the given node capacity.
func NewStack(n, capacity int, opts ...Option) (*Stack, error) {
	o := buildOptions(opts)
	if err := o.checkTagBits(shmem.BitsFor(capacity + 1)); err != nil {
		return nil, err
	}
	f := o.factory()
	mk, err := registry.NewGuardMaker(f, n, o.guardSpec())
	if err != nil {
		return nil, fmt.Errorf("abadetect: stack: %w", err)
	}
	sopts, rec, err := o.structOpts(n, mk)
	if err != nil {
		return nil, fmt.Errorf("abadetect: stack: %w", err)
	}
	inner, err := apps.NewStack(f, n, capacity, 0, 0, sopts...)
	if err != nil {
		return nil, fmt.Errorf("abadetect: %w", err)
	}
	return &Stack{inner: inner, fp: footprintOf(f), tr: rec}, nil
}

// StructureTrace merges the flight recorder's per-process rings into one
// happens-before-consistent dump (nil unless built WithTracing).
func (s *Stack) StructureTrace() []TraceEvent { return publicTrace(s.tr.Merge()) }

// NumProcs returns n.
func (s *Stack) NumProcs() int { return s.inner.NumProcs() }

// Capacity returns the node-pool capacity.
func (s *Stack) Capacity() int { return s.inner.Capacity() }

// Protection returns the guard regime.
func (s *Stack) Protection() Protection { return Protection(s.inner.Protection()) }

// Footprint returns the base objects used (nodes, guards, and free list).
func (s *Stack) Footprint() Footprint { return s.fp }

// GuardMetrics returns the head guard's audit counters.
func (s *Stack) GuardMetrics() GuardMetrics { return publicMetrics(s.inner.GuardMetrics()) }

// FreelistMetrics returns the node pool's guard counters (zero unless built
// WithGuardedPool).
func (s *Stack) FreelistMetrics() GuardMetrics { return publicMetrics(s.inner.FreelistMetrics()) }

// Audit checks the structure at quiescence (no handle mid-operation).
func (s *Stack) Audit() StructureAudit {
	a := s.inner.Audit()
	out := poolAudit(a.Corrupt(), a.String(), s.inner.PoolStats())
	out.ElimHits, out.ElimMisses = s.inner.ElimStats()
	return out
}

// Handle returns the endpoint for process pid in [0, n).  A handle must be
// used by at most one goroutine at a time.
func (s *Stack) Handle(pid int) (*StackHandle, error) {
	h, err := s.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &StackHandle{inner: h}, nil
}

// StackHandle is a process's stack endpoint.
type StackHandle struct {
	inner *apps.StackHandle
}

// Push pushes v.  It returns false when the node pool is exhausted.
func (h *StackHandle) Push(v Word) bool { return h.inner.Push(v) }

// Pop pops the top value.  It returns false when the stack is empty.
func (h *StackHandle) Pop() (Word, bool) { return h.inner.Pop() }

// Peek returns the top value without popping it.  It is wait-free and
// allocation-free: a seqlock read that accepts the value only if the head
// guard still validates, retrying a bounded number of times before falling
// back to the protected traversal.  ok=false means empty.
func (h *StackHandle) Peek() (Word, bool) { return h.inner.Peek() }

// IsEmpty reports whether the stack is empty, on the same wait-free read
// path as Peek.
func (h *StackHandle) IsEmpty() bool { return h.inner.IsEmpty() }

// PopBegin is an experiment hook: it performs the vulnerable first half of
// a pop — load the head node and its successor — and stops right before the
// conditional swing, exposing the ABA window the §1 scripts exploit.
func (h *StackHandle) PopBegin() (top, next int, empty bool) { return h.inner.PopBegin() }

// PopCommit completes the pop begun by PopBegin.  Under ProtectionRaw a
// stale commit can succeed and corrupt the structure — the demonstration;
// the other regimes reject it and the caller retries with a fresh PopBegin.
func (h *StackHandle) PopCommit() (Word, bool) { return h.inner.PopCommit() }

// Queue is a Michael–Scott FIFO queue with recycled index-based nodes,
// shared by n processes; head, tail, and every next pointer are guarded by
// the selected Protection.
type Queue struct {
	inner *apps.Queue
	fp    Footprint
	tr    *trace.Recorder
}

// NewQueue builds a queue for n processes with the given capacity (usable
// nodes beyond the internal dummy).
func NewQueue(n, capacity int, opts ...Option) (*Queue, error) {
	o := buildOptions(opts)
	if err := o.checkTagBits(shmem.BitsFor(capacity + 2)); err != nil {
		return nil, err
	}
	f := o.factory()
	mk, err := registry.NewGuardMaker(f, n, o.guardSpec())
	if err != nil {
		return nil, fmt.Errorf("abadetect: queue: %w", err)
	}
	sopts, rec, err := o.structOpts(n, mk)
	if err != nil {
		return nil, fmt.Errorf("abadetect: queue: %w", err)
	}
	inner, err := apps.NewQueue(f, n, capacity, 0, 0, sopts...)
	if err != nil {
		return nil, fmt.Errorf("abadetect: %w", err)
	}
	return &Queue{inner: inner, fp: footprintOf(f), tr: rec}, nil
}

// StructureTrace merges the flight recorder's per-process rings into one
// happens-before-consistent dump (nil unless built WithTracing).
func (q *Queue) StructureTrace() []TraceEvent { return publicTrace(q.tr.Merge()) }

// Capacity returns the number of usable nodes.
func (q *Queue) Capacity() int { return q.inner.Capacity() }

// Protection returns the guard regime.
func (q *Queue) Protection() Protection { return Protection(q.inner.Protection()) }

// Footprint returns the base objects used.
func (q *Queue) Footprint() Footprint { return q.fp }

// GuardMetrics returns the aggregated counters of every reference guard.
func (q *Queue) GuardMetrics() GuardMetrics { return publicMetrics(q.inner.GuardMetrics()) }

// FreelistMetrics returns the node pool's guard counters (zero unless built
// WithGuardedPool).
func (q *Queue) FreelistMetrics() GuardMetrics { return publicMetrics(q.inner.FreelistMetrics()) }

// Audit checks the structure at quiescence.
func (q *Queue) Audit() StructureAudit {
	a := q.inner.Audit()
	return poolAudit(a.Corrupt(), a.String(), q.inner.PoolStats())
}

// Handle returns the endpoint for process pid in [0, n).
func (q *Queue) Handle(pid int) (*QueueHandle, error) {
	h, err := q.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &QueueHandle{inner: h}, nil
}

// QueueHandle is a process's queue endpoint.
type QueueHandle struct {
	inner *apps.QueueHandle
}

// Enq appends v.  It returns false when the node pool is exhausted.
func (h *QueueHandle) Enq(v Word) bool { return h.inner.Enq(v) }

// Deq removes the oldest value.  It returns false when the queue is empty.
func (h *QueueHandle) Deq() (Word, bool) { return h.inner.Deq() }

// Peek returns the oldest value without dequeuing it, on the wait-free
// seqlock read path (bounded torn-read retries, then the protected
// traversal).  ok=false means empty.
func (h *QueueHandle) Peek() (Word, bool) { return h.inner.Peek() }

// IsEmpty reports whether the queue is empty, on the same wait-free read
// path as Peek.
func (h *QueueHandle) IsEmpty() bool { return h.inner.IsEmpty() }

// Map is a sharded lock-free hash map over a fixed pool of recycled
// index-based nodes, shared by n processes — the canonical cache-shaped
// workload of the traffic layer.  Every bucket head and every node's next
// link is guarded by the selected Protection, and node recycling routes
// through the allocator (and, with WithReclamation, a safe-memory-
// reclamation scheme), so the remove–recycle–reinsert ABA of §1 is
// reproducible and preventable on a keyed structure exactly as on the
// stack and queue.
type Map struct {
	inner *kv.Map
	fp    Footprint
	tr    *trace.Recorder
}

// NewMap builds a map for n processes with the given node capacity.  The
// bucket count defaults to the capacity rounded up to a power of two.
func NewMap(n, capacity int, opts ...Option) (*Map, error) {
	o := buildOptions(opts)
	// A link word carries the node index plus the mark bit — and with
	// WithGrowth the index must address the ceiling, not the initial
	// capacity, so the tag-width check prices the largest map this one can
	// become.
	refCap := capacity
	if o.growTo > refCap {
		refCap = o.growTo
	}
	if err := o.checkTagBits(shmem.BitsFor(refCap+1) + 1); err != nil {
		return nil, err
	}
	f := o.factory()
	mk, err := registry.NewGuardMaker(f, n, o.guardSpec())
	if err != nil {
		return nil, fmt.Errorf("abadetect: map: %w", err)
	}
	sopts, rec, err := o.structOpts(n, mk)
	if err != nil {
		return nil, fmt.Errorf("abadetect: map: %w", err)
	}
	inner, err := kv.NewMap(f, n, capacity, capacity, 0, 0, sopts...)
	if err != nil {
		return nil, fmt.Errorf("abadetect: %w", err)
	}
	return &Map{inner: inner, fp: footprintOf(f), tr: rec}, nil
}

// StructureTrace merges the flight recorder's per-process rings into one
// happens-before-consistent dump (nil unless built WithTracing).
func (m *Map) StructureTrace() []TraceEvent { return publicTrace(m.tr.Merge()) }

// NumProcs returns n.
func (m *Map) NumProcs() int { return m.inner.NumProcs() }

// Capacity returns the node-pool capacity — the current one, when the map
// was built WithGrowth and has appended segments.
func (m *Map) Capacity() int { return m.inner.Capacity() }

// MaxCapacity returns the growth ceiling (equal to Capacity unless built
// WithGrowth).
func (m *Map) MaxCapacity() int { return m.inner.MaxCapacity() }

// Growing reports whether the map was built WithGrowth.
func (m *Map) Growing() bool { return m.inner.Growing() }

// Buckets returns the bucket count — the current directory size, when the
// map was built WithGrowth and has split.
func (m *Map) Buckets() int { return m.inner.Buckets() }

// Protection returns the guard regime.
func (m *Map) Protection() Protection { return Protection(m.inner.Protection()) }

// Footprint returns the base objects used.
func (m *Map) Footprint() Footprint { return m.fp }

// GuardMetrics returns the aggregated counters of every reference guard
// (bucket heads and next links).
func (m *Map) GuardMetrics() GuardMetrics { return publicMetrics(m.inner.GuardMetrics()) }

// FreelistMetrics returns the node pool's guard counters (zero unless built
// WithGuardedPool).
func (m *Map) FreelistMetrics() GuardMetrics { return publicMetrics(m.inner.FreelistMetrics()) }

// Audit checks the structure at quiescence.
func (m *Map) Audit() StructureAudit {
	a := m.inner.Audit()
	out := poolAudit(a.Corrupt(), a.String(), m.inner.PoolStats())
	out.CombineBatches, out.CombinedOps = m.inner.CombineStats()
	out.ReadRetries, out.ReadFallbacks = a.ReadRetries, a.ReadFallbacks
	out.Splits, out.SegmentAppends, out.ResizeRetries = a.Splits, a.SegmentAppends, a.ResizeRetries
	return out
}

// Handle returns the endpoint for process pid in [0, n).
func (m *Map) Handle(pid int) (*MapHandle, error) {
	h, err := m.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &MapHandle{inner: h}, nil
}

// MapHandle is a process's map endpoint.
type MapHandle struct {
	inner *kv.Handle
}

// Get returns the value bound to k.
func (h *MapHandle) Get(k Word) (Word, bool) { return h.inner.Get(k) }

// Put binds k to v.  It returns false when the node pool is exhausted — a
// fresh node is needed even to overwrite, since keys and values are
// immutable per node.
func (h *MapHandle) Put(k, v Word) bool { return h.inner.Put(k, v) }

// Delete removes k's binding and reports whether one existed.
func (h *MapHandle) Delete(k Word) bool { return h.inner.Delete(k) }

// DeleteBegin is an experiment hook: it logically deletes the first live
// k-node (marks its next link) and stops right before the physical unlink,
// exposing the ABA window the deterministic map corruption script exploits.
func (h *MapHandle) DeleteBegin(k Word) (cur, succ int, found bool) { return h.inner.DeleteBegin(k) }

// DeleteCommit completes the delete begun by DeleteBegin.  Under
// ProtectionRaw a stale commit can succeed after a recycle restored the
// link word — the demonstration; the other regimes reject it (the marked
// node is then unlinked by later traversals).
func (h *MapHandle) DeleteCommit() bool { return h.inner.DeleteCommit() }

// EventFlag is the §1 busy-wait scenario: a signaler pulses (Signal, then
// Reset) and waiters Poll.  Whether an in-window pulse is observable is
// exactly the Protection ladder: raw misses it, a k-bit tag misses it at
// wraparound, LL/SC and detector guards never do.
//
// The event flag never conditionally swings its reference, so it also
// accepts detection-only guard implementations (WithGuardImpl "fig4",
// "unbounded", "boundedtag1") under ProtectionDetector.
type EventFlag struct {
	inner *apps.EventFlag
	fp    Footprint
}

// NewEventFlag builds an event flag for n processes.
func NewEventFlag(n int, opts ...Option) (*EventFlag, error) {
	o := buildOptions(opts)
	if err := o.checkTagBits(1); err != nil { // the flag guard holds 1 value bit
		return nil, err
	}
	f := o.factory()
	mk, err := registry.NewGuardMaker(f, n, o.guardSpec())
	if err != nil {
		return nil, fmt.Errorf("abadetect: event flag: %w", err)
	}
	inner, err := apps.NewProtectedEventFlag(f, n, 0, 0, apps.WithMaker(mk))
	if err != nil {
		return nil, fmt.Errorf("abadetect: %w", err)
	}
	return &EventFlag{inner: inner, fp: footprintOf(f)}, nil
}

// Protection returns the guard regime.
func (e *EventFlag) Protection() Protection { return Protection(e.inner.Protection()) }

// Footprint returns the base objects used.
func (e *EventFlag) Footprint() Footprint { return e.fp }

// GuardMetrics returns the flag guard's audit counters.
func (e *EventFlag) GuardMetrics() GuardMetrics { return publicMetrics(e.inner.GuardMetrics()) }

// Handle returns the endpoint for process pid in [0, n).
func (e *EventFlag) Handle(pid int) (*EventHandle, error) {
	h, err := e.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &EventHandle{inner: h}, nil
}

// EventHandle is a process's event-flag endpoint.
type EventHandle struct {
	inner *apps.EventHandle
}

// Signal raises the flag.
func (h *EventHandle) Signal() { h.inner.Signal() }

// Reset lowers the flag for reuse.
func (h *EventHandle) Reset() { h.inner.Reset() }

// Poll returns the flag's value and whether an event fired since this
// handle's previous Poll (set now, or any write the guard could detect).
func (h *EventHandle) Poll() (set, fired bool) { return h.inner.Poll() }
