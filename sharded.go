package abadetect

import (
	"fmt"

	"abadetect/internal/core"
	"abadetect/internal/registry"
)

// ShardedDetectingArray is an array of independent ABA-detecting registers
// ("shards") — the scale-out form of the paper's register for systems that
// guard many hot references at once (per key, per queue head, per session
// slot).
//
// Shards are fully independent: a DWrite to shard i never dirties a DRead
// of shard j, and detection state is per (process, shard) pair.  By default
// shards are the paper's Figure 4 registers (O(1) steps each) allocated
// through PaddedBackend, which stripes every base object onto its own cache
// line so concurrent traffic on different shards does not false-share.
// Both choices are options: WithShardImpl selects any registered detector
// implementation and WithBackend any substrate.
//
// Footprint reports the aggregate: shards × m(n) base objects, the paper's
// per-register space bound applied shard-wise.
type ShardedDetectingArray struct {
	inner *core.ShardedArray
	fp    Footprint
}

// WithShardImpl selects the registered detector implementation backing each
// shard of a ShardedDetectingArray (default "fig4"; see Implementations for
// the catalog).  Other constructors ignore it.
func WithShardImpl(id string) Option {
	return func(o *options) { o.shardImpl = id }
}

// NewShardedDetectingArray builds an array of shards independent
// ABA-detecting registers shared by n processes.
func NewShardedDetectingArray(n, shards int, opts ...Option) (*ShardedDetectingArray, error) {
	o := buildOptions(opts)
	id := o.shardImpl
	if id == "" {
		id = "fig4"
	}
	im, ok := registry.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("abadetect: unknown shard implementation %q (see Implementations)", id)
	}
	if im.Kind != registry.KindDetector {
		return nil, fmt.Errorf("abadetect: shard implementation %q is %s, not a detecting register", id, im.Kind)
	}
	if o.backend == nil {
		o.backend = PaddedBackend()
	}
	// One factory for the whole array: Footprint aggregates across shards.
	f := o.factory()
	inner, err := core.NewShardedArray(n, shards, func(int) (core.Detector, error) {
		return im.NewDetector(f, n, o.valueBits, o.initial)
	})
	if err != nil {
		return nil, err
	}
	return &ShardedDetectingArray{inner: inner, fp: footprintOf(f)}, nil
}

// NumProcs returns n.
func (a *ShardedDetectingArray) NumProcs() int { return a.inner.NumProcs() }

// Shards returns the number of shards.
func (a *ShardedDetectingArray) Shards() int { return a.inner.Shards() }

// Footprint returns the base objects used by all shards together.
func (a *ShardedDetectingArray) Footprint() Footprint { return a.fp }

// Handle returns the endpoint for process pid in [0, n).  A handle must be
// used by at most one goroutine at a time; distinct handles may operate on
// all shards concurrently.
func (a *ShardedDetectingArray) Handle(pid int) (*ShardedArrayHandle, error) {
	h, err := a.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &ShardedArrayHandle{inner: h}, nil
}

// ShardedArrayHandle is a process's endpoint to every shard of a
// ShardedDetectingArray.
type ShardedArrayHandle struct {
	inner *core.ShardedHandle
}

// Shards returns the number of shards.
func (h *ShardedArrayHandle) Shards() int { return h.inner.Shards() }

// DWrite writes v to shard i.  It panics if i is out of [0, Shards()).
func (h *ShardedArrayHandle) DWrite(i int, v Word) { h.inner.DWrite(i, v) }

// DRead returns shard i's value and whether any process performed a DWrite
// on shard i since this handle's previous DRead of shard i.  It panics if i
// is out of [0, Shards()).
func (h *ShardedArrayHandle) DRead(i int) (Word, bool) { return h.inner.DRead(i) }
