package abadetect

import (
	"sync"
	"testing"
)

func TestShardedArrayBasics(t *testing.T) {
	const n, shards = 4, 8
	a, err := NewShardedDetectingArray(n, shards, WithValueBits(16))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumProcs() != n || a.Shards() != shards {
		t.Fatalf("NumProcs=%d Shards=%d", a.NumProcs(), a.Shards())
	}
	// Aggregate footprint: shards x (n+1) Figure 4 registers.
	if fp := a.Footprint(); fp.Registers != shards*(n+1) || fp.CASObjects != 0 {
		t.Errorf("footprint = %v, want %d registers", fp, shards*(n+1))
	}

	w, err := a.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Shards() != shards {
		t.Errorf("handle Shards = %d", w.Shards())
	}
	// Independence: traffic on shard 3 is invisible on every other shard,
	// and the shard-local ABA is still detected.
	for s := 0; s < shards; s++ {
		r.DRead(s)
	}
	w.DWrite(3, 9)
	w.DWrite(3, 5)
	w.DWrite(3, 9)
	for s := 0; s < shards; s++ {
		v, dirty := r.DRead(s)
		if s == 3 && (v != 9 || !dirty) {
			t.Errorf("shard 3: DRead = (%d,%v), want (9,true)", v, dirty)
		}
		if s != 3 && dirty {
			t.Errorf("shard %d dirtied by shard 3 traffic", s)
		}
	}
}

func TestShardedArrayValidation(t *testing.T) {
	if _, err := NewShardedDetectingArray(0, 4); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewShardedDetectingArray(2, 0); err == nil {
		t.Error("want error for shards=0")
	}
	if _, err := NewShardedDetectingArray(2, 4, WithShardImpl("no-such-impl")); err == nil {
		t.Error("want error for unknown shard implementation")
	}
	if _, err := NewShardedDetectingArray(2, 4, WithShardImpl("fig3")); err == nil {
		t.Error("want error for an llsc-kind shard implementation")
	}
	a, err := NewShardedDetectingArray(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Handle(5); err == nil {
		t.Error("want error for pid out of range")
	}
}

func TestShardedArrayShardImplOption(t *testing.T) {
	// Every registered correct detector must work as the shard type.
	for _, info := range Implementations() {
		if info.Kind != "detector" || !info.Correct {
			continue
		}
		a, err := NewShardedDetectingArray(2, 3, WithShardImpl(info.ID), WithValueBits(8))
		if err != nil {
			t.Fatalf("%s: %v", info.ID, err)
		}
		if got, want := a.Footprint().Objects(), 3*info.Objects(2); got != want {
			t.Errorf("%s: footprint %d objects, want 3 x m(2) = %d", info.ID, got, want)
		}
		w, err := a.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.Handle(1)
		if err != nil {
			t.Fatal(err)
		}
		w.DWrite(2, 5)
		w.DWrite(2, 5) // same value: only metadata reveals the second write
		if v, dirty := r.DRead(2); v != 5 || !dirty {
			t.Errorf("%s: DRead = (%d,%v), want (5,true)", info.ID, v, dirty)
		}
		if _, dirty := r.DRead(2); dirty {
			t.Errorf("%s: spurious dirty on quiet shard", info.ID)
		}
	}
}

func TestShardedArrayConcurrent(t *testing.T) {
	const n, shards = 4, 4
	a, err := NewShardedDetectingArray(n, shards, WithValueBits(16))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		h, err := a.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pid int, h *ShardedArrayHandle) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s := (pid + i) % shards
				if pid%2 == 0 {
					h.DWrite(s, Word(i&0xffff))
				} else if _, dirty := h.DRead(s); dirty {
					_ = dirty
				}
			}
		}(pid, h)
	}
	wg.Wait()
}

func TestCountingBackend(t *testing.T) {
	be := NewCountingBackend(4)
	reg, err := NewDetectingRegister(4, WithBackend(be))
	if err != nil {
		t.Fatal(err)
	}
	h, err := reg.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	h.DWrite(1)
	if got := be.Steps(0); got != 2 {
		t.Errorf("DWrite took %d counted steps, claimed 2 (Fig 4)", got)
	}
	h.DRead()
	if got := be.Steps(0); got != 6 {
		t.Errorf("DWrite+DRead took %d counted steps, claimed 2+4 (Fig 4)", got)
	}
	// Aggregation across objects built through the same backend.
	obj, err := NewLLSC(4, WithBackend(be), WithValueBits(16))
	if err != nil {
		t.Fatal(err)
	}
	lh, err := obj.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	lh.LL()
	if be.Steps(1) == 0 {
		t.Error("steps on a second object not aggregated")
	}
	if be.TotalSteps() != be.Steps(0)+be.Steps(1) {
		t.Error("TotalSteps does not sum per-pid counts")
	}
	be.Reset()
	if be.TotalSteps() != 0 {
		t.Error("Reset did not zero the counters")
	}
	if be.Steps(-1) != 0 || be.Steps(99) != 0 {
		t.Error("out-of-range pids must read zero")
	}
}

func TestAuditBackend(t *testing.T) {
	be := NewAuditBackend()
	unbounded, err := NewDetectingRegisterUnboundedTag(2, WithBackend(be), WithValueBits(8))
	if err != nil {
		t.Fatal(err)
	}
	w, err := unbounded.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w.DWrite(Word(i % 5))
	}
	grown := be.MaxBitsUsed()
	if grown <= 8 {
		t.Errorf("unbounded baseline used only %d bits after 1000 writes", grown)
	}

	// Figure 4 through a fresh audit backend stays within its declared
	// bounded domain no matter how many writes happen.
	be2 := NewAuditBackend()
	fig4, err := NewDetectingRegister(2, WithBackend(be2), WithValueBits(8))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := fig4.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w2.DWrite(Word(i % 5))
	}
	if be2.MaxBitsUsed() >= grown {
		t.Errorf("Fig 4 used %d bits, not separated from unbounded's %d", be2.MaxBitsUsed(), grown)
	}
}

func TestPaddedBackend(t *testing.T) {
	reg, err := NewDetectingRegister(4, WithBackend(PaddedBackend()))
	if err != nil {
		t.Fatal(err)
	}
	if fp := reg.Footprint(); fp.Registers != 5 {
		t.Errorf("padding changed the footprint: %v", fp)
	}
	w, _ := reg.Handle(0)
	r, _ := reg.Handle(1)
	w.DWrite(3)
	if v, dirty := r.DRead(); v != 3 || !dirty {
		t.Errorf("DRead over padded backend = (%d,%v)", v, dirty)
	}
}

func TestImplementationsCatalog(t *testing.T) {
	infos := Implementations()
	if len(infos) == 0 {
		t.Fatal("empty catalog")
	}
	byID := map[string]ImplInfo{}
	for _, info := range infos {
		byID[info.ID] = info
	}
	for _, id := range []string{"fig4", "fig5-fig3", "fig5-constant", "unbounded", "fig3", "constant", "moir", "boundedtag1", "hp", "epoch", "none"} {
		if _, ok := byID[id]; !ok {
			t.Errorf("catalog lacks %q", id)
		}
	}
	if byID["fig4"].Objects(8) != 9 {
		t.Errorf("fig4 m(8) = %d, want 9", byID["fig4"].Objects(8))
	}
	if byID["boundedtag1"].Correct {
		t.Error("the foil is marked correct")
	}

	// Every catalog entry is constructible through its ByID constructor.
	for _, info := range infos {
		switch info.Kind {
		case "detector":
			if _, err := NewDetectingRegisterByID(info.ID, 3, WithValueBits(8)); err != nil {
				t.Errorf("NewDetectingRegisterByID(%q): %v", info.ID, err)
			}
			if _, err := NewLLSCByID(info.ID, 3); err == nil {
				t.Errorf("NewLLSCByID(%q) accepted a detector ID", info.ID)
			}
		case "llsc":
			if _, err := NewLLSCByID(info.ID, 3, WithValueBits(8)); err != nil {
				t.Errorf("NewLLSCByID(%q): %v", info.ID, err)
			}
			if _, err := NewDetectingRegisterByID(info.ID, 3); err == nil {
				t.Errorf("NewDetectingRegisterByID(%q) accepted an llsc ID", info.ID)
			}
		case "structure":
			// Structures construct through their own public constructors
			// (structures.go); the ByID paths must reject them.
			if _, err := NewDetectingRegisterByID(info.ID, 3); err == nil {
				t.Errorf("NewDetectingRegisterByID(%q) accepted a structure ID", info.ID)
			}
			if _, err := NewLLSCByID(info.ID, 3); err == nil {
				t.Errorf("NewLLSCByID(%q) accepted a structure ID", info.ID)
			}
		case "reclaimer":
			// Reclaimers attach to structures (WithReclamation); the ByID
			// paths must reject them.
			if _, err := NewDetectingRegisterByID(info.ID, 3); err == nil {
				t.Errorf("NewDetectingRegisterByID(%q) accepted a reclaimer ID", info.ID)
			}
			if _, err := NewLLSCByID(info.ID, 3); err == nil {
				t.Errorf("NewLLSCByID(%q) accepted a reclaimer ID", info.ID)
			}
		default:
			t.Errorf("%s: unknown kind %q", info.ID, info.Kind)
		}
	}
	if _, err := NewDetectingRegisterByID("no-such-impl", 2); err == nil {
		t.Error("want error for unknown detector ID")
	}
	if _, err := NewLLSCByID("no-such-impl", 2); err == nil {
		t.Error("want error for unknown llsc ID")
	}
}
