package abadetect_test

import (
	"sync"
	"testing"

	abadetect "abadetect"
)

// publicProtections is the sound half of the public matrix: the regimes a
// concurrent workload must never corrupt.
func publicProtections() []struct {
	name string
	prot abadetect.Protection
} {
	return []struct {
		name string
		prot abadetect.Protection
	}{
		{"tagged", abadetect.ProtectionTagged},
		{"llsc", abadetect.ProtectionLLSC},
		{"detector", abadetect.ProtectionDetector},
	}
}

func TestStructureStackMPMC(t *testing.T) {
	for _, tc := range publicProtections() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			s, err := abadetect.NewStack(n, 16,
				abadetect.WithProtection(tc.prot), abadetect.WithGuardedPool())
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := s.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *abadetect.StackHandle) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						h.Push(uint64(pid)<<32 | uint64(i))
						h.Pop()
					}
				}(pid, h)
			}
			wg.Wait()
			if a := s.Audit(); a.Corrupt {
				t.Errorf("audit: %s", a.Detail)
			}
			if m := s.GuardMetrics(); m.Commits == 0 {
				t.Errorf("no head commits recorded: %+v", m)
			}
			if m := s.FreelistMetrics(); m.Commits == 0 {
				t.Errorf("no free-list commits recorded: %+v", m)
			}
		})
	}
}

func TestStructureQueueMPMC(t *testing.T) {
	for _, tc := range publicProtections() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			q, err := abadetect.NewQueue(n, 16, abadetect.WithProtection(tc.prot))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := q.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *abadetect.QueueHandle) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						h.Enq(uint64(pid)<<32 | uint64(i))
						h.Deq()
					}
				}(pid, h)
			}
			wg.Wait()
			if a := q.Audit(); a.Corrupt {
				t.Errorf("audit: %s", a.Detail)
			}
		})
	}
}

func TestStructureEventFlagPulse(t *testing.T) {
	// The §1 pulse across the public ladder, including a detection-only
	// Figure 4 guard.
	cases := []struct {
		name      string
		opts      []abadetect.Option
		wantFired bool
	}{
		{"raw", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionRaw)}, false},
		{"tag1", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionTagged), abadetect.WithTagBits(1)}, false},
		{"llsc", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionLLSC)}, true},
		{"detector-fig5", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionDetector)}, true},
		{"detector-fig4", []abadetect.Option{abadetect.WithProtection(abadetect.ProtectionDetector), abadetect.WithGuardImpl("fig4")}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := abadetect.NewEventFlag(2, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			signaler, err := e.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			waiter, err := e.Handle(1)
			if err != nil {
				t.Fatal(err)
			}
			if set, fired := waiter.Poll(); set || fired {
				t.Fatal("initial poll should be quiet")
			}
			signaler.Signal()
			signaler.Reset()
			_, fired := waiter.Poll()
			if fired != tc.wantFired {
				t.Errorf("fired = %v, want %v", fired, tc.wantFired)
			}
		})
	}
}

func TestStructureRawStackCorruptsDeterministically(t *testing.T) {
	// The §1 script through the public experiment hooks: under ProtectionRaw
	// the victim's stale PopCommit is accepted and the audit shows damage;
	// under the default LL/SC protection the same script is rejected.
	run := func(prot abadetect.Protection) (bool, abadetect.StructureAudit) {
		s, err := abadetect.NewStack(2, 3, abadetect.WithProtection(prot))
		if err != nil {
			t.Fatal(err)
		}
		adversary, _ := s.Handle(0)
		victim, _ := s.Handle(1)
		for i := 1; i <= 3; i++ {
			adversary.Push(uint64(100 + i))
		}
		if _, _, empty := victim.PopBegin(); empty {
			t.Fatal("stack unexpectedly empty")
		}
		for i := 0; i < 3; i++ {
			adversary.Pop()
		}
		adversary.Push(104)
		_, fooled := victim.PopCommit()
		return fooled, s.Audit()
	}
	if fooled, audit := run(abadetect.ProtectionRaw); !fooled || !audit.Corrupt {
		t.Errorf("raw: fooled=%v corrupt=%v (%s), want corruption", fooled, audit.Corrupt, audit.Detail)
	}
	if fooled, audit := run(abadetect.ProtectionLLSC); fooled || audit.Corrupt {
		t.Errorf("llsc: fooled=%v corrupt=%v (%s), want rejection", fooled, audit.Corrupt, audit.Detail)
	}
	if fooled, audit := run(abadetect.ProtectionDetector); fooled || audit.Corrupt {
		t.Errorf("detector: fooled=%v corrupt=%v (%s), want rejection", fooled, audit.Corrupt, audit.Detail)
	}
}

func TestStructureBackendsAndImpls(t *testing.T) {
	// The matrix's third axis: structures over every direct backend and a
	// non-default guard implementation.
	for _, be := range []struct {
		name    string
		backend abadetect.Backend
	}{
		{"native", abadetect.NativeBackend()},
		{"slab", abadetect.SlabBackend()},
		{"padded", abadetect.PaddedBackend()},
	} {
		t.Run(be.name, func(t *testing.T) {
			q, err := abadetect.NewQueue(2, 8,
				abadetect.WithBackend(be.backend),
				abadetect.WithProtection(abadetect.ProtectionDetector),
				abadetect.WithGuardImpl("fig5-constant"),
				abadetect.WithGuardedPool())
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if !h.Enq(uint64(i)) {
					t.Fatalf("enq %d failed", i)
				}
				if v, ok := h.Deq(); !ok || v != uint64(i) {
					t.Fatalf("deq = (%d,%v)", v, ok)
				}
			}
			if a := q.Audit(); a.Corrupt {
				t.Errorf("audit: %s", a.Detail)
			}
			if q.Footprint().Objects() == 0 {
				t.Error("empty footprint")
			}
		})
	}
}

func TestStructureOptionValidation(t *testing.T) {
	if _, err := abadetect.NewStack(0, 4); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := abadetect.NewStack(2, 0); err == nil {
		t.Error("want error for capacity=0")
	}
	if _, err := abadetect.NewQueue(2, 4, abadetect.WithGuardImpl("no-such-impl")); err == nil {
		t.Error("want error for unknown guard impl")
	}
	// A register-only detector cannot guard a structure that commits.
	if _, err := abadetect.NewStack(2, 4,
		abadetect.WithProtection(abadetect.ProtectionDetector),
		abadetect.WithGuardImpl("fig4")); err == nil {
		t.Error("want error for a detection-only guard behind a stack")
	}
	// ... but it can guard the event flag.
	if _, err := abadetect.NewEventFlag(2,
		abadetect.WithProtection(abadetect.ProtectionDetector),
		abadetect.WithGuardImpl("fig4")); err != nil {
		t.Errorf("fig4-guarded event flag: %v", err)
	}
	if got := abadetect.ProtectionRaw.String(); got != "raw-cas" {
		t.Errorf("ProtectionRaw = %q", got)
	}
	if got := abadetect.ProtectionDetector.String(); got != "detector" {
		t.Errorf("ProtectionDetector = %q", got)
	}
}

func TestStructureNearMissVisible(t *testing.T) {
	// A prevented ABA surfaces in the public metrics: replay the §1 script
	// under LL/SC and check the near-miss counter.
	s, err := abadetect.NewStack(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	adversary, _ := s.Handle(0)
	victim, _ := s.Handle(1)
	for i := 1; i <= 3; i++ {
		adversary.Push(uint64(100 + i))
	}
	victim.PopBegin()
	for i := 0; i < 3; i++ {
		adversary.Pop()
	}
	adversary.Push(104)
	if _, ok := victim.PopCommit(); ok {
		t.Fatal("stale commit accepted under LL/SC")
	}
	if m := s.GuardMetrics(); m.NearMisses == 0 {
		t.Errorf("prevented ABA not counted: %+v", m)
	}
}

// --- Reclamation (PR 4) ------------------------------------------------------

// TestStructureReclamationMPMC: the public stack and queue stay clean under
// concurrent load with each reclaimer, and the audit surfaces the
// reclamation counters.
func TestStructureReclamationMPMC(t *testing.T) {
	for _, scheme := range []string{"hp", "epoch"} {
		t.Run("stack/"+scheme, func(t *testing.T) {
			const n = 4
			s, err := abadetect.NewStack(n, 16, abadetect.WithReclamation(scheme))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := s.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *abadetect.StackHandle) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						h.Push(uint64(pid)<<32 | uint64(i))
						h.Pop()
					}
				}(pid, h)
			}
			wg.Wait()
			a := s.Audit()
			if a.Corrupt {
				t.Errorf("audit: %s", a.Detail)
			}
			if a.Retired == 0 || a.Reclaimed == 0 {
				t.Errorf("reclamation counters empty: %+v", a)
			}
			if a.Deferred != a.Retired-a.Reclaimed {
				t.Errorf("deferred %d != retired %d - reclaimed %d", a.Deferred, a.Retired, a.Reclaimed)
			}
		})
		t.Run("queue/"+scheme, func(t *testing.T) {
			q, err := abadetect.NewQueue(2, 8, abadetect.WithReclamation(scheme))
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				if !h.Enq(uint64(i)) {
					t.Fatalf("enq %d failed", i)
				}
				if v, ok := h.Deq(); !ok || v != uint64(i) {
					t.Fatalf("deq = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if a := q.Audit(); a.Corrupt || a.Retired == 0 {
				t.Errorf("audit: %+v", a)
			}
		})
	}
	// Unknown schemes are rejected with the registered IDs in the error.
	if _, err := abadetect.NewStack(2, 4, abadetect.WithReclamation("no-such-scheme")); err == nil {
		t.Error("want error for unknown reclamation scheme")
	}
	// The event flag has no pool; the option is accepted and ignored.
	if _, err := abadetect.NewEventFlag(2, abadetect.WithReclamation("hp")); err != nil {
		t.Errorf("event flag with reclamation: %v", err)
	}
}

// TestStructureExhaustionSurfaced: a saturated pool is visible through the
// audit instead of indistinguishable from livelock — the alloc that finds
// no free node is counted, with and without a reclaimer.
func TestStructureExhaustionSurfaced(t *testing.T) {
	for _, opts := range [][]abadetect.Option{
		nil,
		{abadetect.WithReclamation("hp")},
		{abadetect.WithGuardedPool()},
	} {
		s, err := abadetect.NewStack(1, 2, opts...)
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		if !h.Push(1) || !h.Push(2) {
			t.Fatal("setup pushes failed")
		}
		if h.Push(3) {
			t.Fatal("push beyond capacity succeeded")
		}
		if a := s.Audit(); a.PoolExhaustions == 0 {
			t.Errorf("exhausted alloc not counted: %+v", a)
		}
	}
}

// TestStructureTagBitsValidation covers the WithTagBits edges: an explicit
// zero width and a width that overflows the packed word are rejected with
// descriptive errors; the widest fitting tag still constructs.
func TestStructureTagBitsValidation(t *testing.T) {
	tagged := abadetect.WithProtection(abadetect.ProtectionTagged)
	if _, err := abadetect.NewStack(2, 4, tagged, abadetect.WithTagBits(0)); err == nil {
		t.Error("want error for WithTagBits(0)")
	}
	if _, err := abadetect.NewQueue(2, 4, tagged, abadetect.WithTagBits(0)); err == nil {
		t.Error("want error for WithTagBits(0) on the queue")
	}
	// capacity 4 -> 3 index bits: 61 tag bits fit exactly, 62 overflow.
	if _, err := abadetect.NewStack(2, 4, tagged, abadetect.WithTagBits(61)); err != nil {
		t.Errorf("widest fitting tag rejected: %v", err)
	}
	if _, err := abadetect.NewStack(2, 4, tagged, abadetect.WithTagBits(62)); err == nil {
		t.Error("want error for a tag width that overflows the packed word")
	}
	if _, err := abadetect.NewStack(2, 4, tagged, abadetect.WithTagBits(64)); err == nil {
		t.Error("want error for a 64-bit tag")
	}
	// The default (option absent) still selects the sound 16-bit tag.
	if _, err := abadetect.NewStack(2, 4, tagged); err != nil {
		t.Errorf("default tag width rejected: %v", err)
	}
}

// TestStructureWaitFreeReadPath drives the exported wait-free observers:
// stack and queue Peek/IsEmpty are non-consuming across every regime, and
// the map's read-path audit counters surface through StructureAudit.
func TestStructureWaitFreeReadPath(t *testing.T) {
	for _, p := range publicProtections() {
		t.Run(p.name, func(t *testing.T) {
			s, err := abadetect.NewStack(2, 8, abadetect.WithProtection(p.prot))
			if err != nil {
				t.Fatal(err)
			}
			sh, err := s.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			if !sh.IsEmpty() {
				t.Error("fresh stack not empty")
			}
			sh.Push(42)
			if v, ok := sh.Peek(); !ok || v != 42 {
				t.Fatalf("stack Peek = (%d,%v), want (42,true)", v, ok)
			}
			if v, ok := sh.Pop(); !ok || v != 42 {
				t.Errorf("Pop after Peek = (%d,%v): Peek consumed the element", v, ok)
			}

			q, err := abadetect.NewQueue(2, 8, abadetect.WithProtection(p.prot))
			if err != nil {
				t.Fatal(err)
			}
			qh, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			if !qh.IsEmpty() {
				t.Error("fresh queue not empty")
			}
			qh.Enq(7)
			qh.Enq(8)
			if v, ok := qh.Peek(); !ok || v != 7 {
				t.Fatalf("queue Peek = (%d,%v), want (7,true)", v, ok)
			}
			if v, ok := qh.Deq(); !ok || v != 7 {
				t.Errorf("Deq after Peek = (%d,%v): Peek consumed the front", v, ok)
			}
		})
	}

	m, err := abadetect.NewMap(2, 16, abadetect.WithReclamation("hp"))
	if err != nil {
		t.Fatal(err)
	}
	mh, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if !mh.Put(7, 700) {
		t.Fatal("Put declined")
	}
	for i := 0; i < 100; i++ {
		if v, ok := mh.Get(7); !ok || v != 700 {
			t.Fatalf("Get = (%d,%v), want (700,true)", v, ok)
		}
	}
	a := m.Audit()
	if a.Corrupt {
		t.Errorf("audit corrupt: %s", a.Detail)
	}
	// Uncontended reads never tear: the exported counters exist and stay 0.
	if a.ReadRetries != 0 || a.ReadFallbacks != 0 {
		t.Errorf("uncontended reads counted retries=%d fallbacks=%d, want 0/0", a.ReadRetries, a.ReadFallbacks)
	}
}

// TestStructureMapGrowth drives the public growth seam: a map built
// WithGrowth starts small, crosses its segment-append and directory-split
// thresholds under concurrent keyed traffic, and stays structurally clean
// with every binding intact — while the resize counters surface through
// Audit and the capacity accessors report the moving figure against the
// fixed ceiling.
func TestStructureMapGrowth(t *testing.T) {
	for _, tc := range publicProtections() {
		t.Run(tc.name, func(t *testing.T) {
			const (
				n       = 4
				initial = 32
				ceiling = 4096
				keys    = 600
			)
			m, err := abadetect.NewMap(n, initial,
				abadetect.WithProtection(tc.prot),
				abadetect.WithGrowth(ceiling),
				abadetect.WithReclamation("hp"))
			if err != nil {
				t.Fatal(err)
			}
			if !m.Growing() || m.MaxCapacity() != ceiling {
				t.Fatalf("Growing=%v MaxCapacity=%d, want true/%d", m.Growing(), m.MaxCapacity(), ceiling)
			}
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := m.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *abadetect.MapHandle) {
					defer wg.Done()
					for k := pid; k < keys; k += n {
						if !h.Put(uint64(k), uint64(1000+k)) {
							t.Errorf("Put(%d) declined mid-growth", k)
							return
						}
						if v, ok := h.Get(uint64(k)); !ok || v != uint64(1000+k) {
							t.Errorf("Get(%d) = (%d,%v) right after Put", k, v, ok)
							return
						}
					}
				}(pid, h)
			}
			wg.Wait()
			if got := m.Capacity(); got <= initial || got > ceiling {
				t.Errorf("Capacity = %d, want grown within (%d, %d]", got, initial, ceiling)
			}
			h, err := m.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < keys; k++ {
				if v, ok := h.Get(uint64(k)); !ok || v != uint64(1000+k) {
					t.Fatalf("Get(%d) = (%d,%v) after growth, want (%d,true)", k, v, ok, 1000+k)
				}
			}
			a := m.Audit()
			if a.Corrupt {
				t.Fatalf("audit corrupt after growth: %s", a.Detail)
			}
			if a.SegmentAppends == 0 {
				t.Errorf("no segment appends recorded: %s", a.Detail)
			}
			if a.Splits == 0 {
				t.Errorf("no directory splits recorded: %s", a.Detail)
			}
		})
	}
}

// TestStructureMapGrowthTagWidth: the tag-width check prices the ceiling,
// not the initial capacity — a tag that fits the small map must be rejected
// when the growth ceiling's reference bits would no longer share the word.
func TestStructureMapGrowthTagWidth(t *testing.T) {
	// 16 initial nodes need 6 reference bits (index+mark); a 2^40 ceiling
	// needs 42.  A 32-bit tag fits the former and must be rejected against
	// the latter.
	if _, err := abadetect.NewMap(2, 16,
		abadetect.WithProtection(abadetect.ProtectionTagged),
		abadetect.WithTagBits(32)); err != nil {
		t.Fatalf("32-bit tag on the fixed map rejected: %v", err)
	}
	if _, err := abadetect.NewMap(2, 16,
		abadetect.WithProtection(abadetect.ProtectionTagged),
		abadetect.WithTagBits(32),
		abadetect.WithGrowth(1<<40)); err == nil {
		t.Fatal("32-bit tag accepted against a 2^40 growth ceiling")
	}
}
