package abadetect

import (
	"sync"
	"testing"
)

func allRegisters(t *testing.T, n int) map[string]DetectingRegister {
	t.Helper()
	out := map[string]DetectingRegister{}
	var err error
	if out["Fig4"], err = NewDetectingRegister(n); err != nil {
		t.Fatal(err)
	}
	if out["SingleCAS"], err = NewDetectingRegisterSingleCAS(n); err != nil {
		t.Fatal(err)
	}
	if out["UnboundedTag"], err = NewDetectingRegisterUnboundedTag(n); err != nil {
		t.Fatal(err)
	}
	llscObj, err := NewLLSCConstantTime(n)
	if err != nil {
		t.Fatal(err)
	}
	if out["Fig5/ConstantTime"], err = NewDetectingRegisterFromLLSC(llscObj); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPublicDetectingRegisters(t *testing.T) {
	for name, reg := range allRegisters(t, 4) {
		t.Run(name, func(t *testing.T) {
			if reg.NumProcs() != 4 {
				t.Errorf("NumProcs = %d", reg.NumProcs())
			}
			w, err := reg.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			r, err := reg.Handle(1)
			if err != nil {
				t.Fatal(err)
			}

			// The headline behavior: write-back of the same value detected.
			w.DWrite(5)
			if v, dirty := r.DRead(); v != 5 || !dirty {
				t.Fatalf("DRead = (%d,%v), want (5,true)", v, dirty)
			}
			w.DWrite(6)
			w.DWrite(5)
			v, dirty := r.DRead()
			if v != 5 || !dirty {
				t.Errorf("ABA missed: DRead = (%d,%v), want (5,true)", v, dirty)
			}
			if _, dirty := r.DRead(); dirty {
				t.Error("spurious dirty on quiet read")
			}
		})
	}
}

func TestPublicFootprints(t *testing.T) {
	n := 8
	fig4, err := NewDetectingRegister(n)
	if err != nil {
		t.Fatal(err)
	}
	if fp := fig4.Footprint(); fp.Registers != n+1 || fp.CASObjects != 0 {
		t.Errorf("Fig4 footprint = %v, want %d registers", fp, n+1)
	}
	single, err := NewDetectingRegisterSingleCAS(n, WithValueBits(16))
	if err != nil {
		t.Fatal(err)
	}
	if fp := single.Footprint(); fp.Objects() != 1 || fp.CASObjects != 1 {
		t.Errorf("SingleCAS footprint = %v, want 1 CAS", fp)
	}
	ll, err := NewLLSC(n, WithValueBits(16))
	if err != nil {
		t.Fatal(err)
	}
	if fp := ll.Footprint(); fp.Objects() != 1 {
		t.Errorf("LLSC footprint = %v, want 1 object", fp)
	}
	ct, err := NewLLSCConstantTime(n)
	if err != nil {
		t.Fatal(err)
	}
	if fp := ct.Footprint(); fp.CASObjects != 1 || fp.Registers != n {
		t.Errorf("ConstantTime footprint = %v, want 1 CAS + %d registers", fp, n)
	}
	if got := ct.Footprint().String(); got != "m=9 (8 registers + 1 CAS)" {
		t.Errorf("String = %q", got)
	}
}

func TestPublicLLSC(t *testing.T) {
	builders := map[string]func(n int, opts ...Option) (LLSC, error){
		"Fig3":         NewLLSC,
		"ConstantTime": NewLLSCConstantTime,
		"UnboundedTag": NewLLSCUnboundedTag,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			obj, err := build(3, WithValueBits(16), WithInitialValue(7))
			if err != nil {
				t.Fatal(err)
			}
			p, err := obj.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			q, err := obj.Handle(1)
			if err != nil {
				t.Fatal(err)
			}
			if v := p.LL(); v != 7 {
				t.Fatalf("LL = %d, want initial 7", v)
			}
			if !p.SC(8) {
				t.Fatal("uncontended SC failed")
			}
			q.LL()
			p.LL()
			if !q.SC(9) {
				t.Fatal("q's SC failed")
			}
			if p.VL() {
				t.Error("p's link should be invalid")
			}
			if p.SC(10) {
				t.Error("p's stale SC succeeded")
			}
		})
	}
}

func TestPublicOptionsValidation(t *testing.T) {
	if _, err := NewDetectingRegister(0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewLLSC(40, WithValueBits(32)); err == nil {
		t.Error("want error when n + valueBits > 64")
	}
	if _, err := NewDetectingRegister(2, WithValueBits(8), WithInitialValue(300)); err == nil {
		t.Error("want error for out-of-domain initial value")
	}
	if _, err := NewDetectingRegisterBoundedTag(2, 0); err == nil {
		t.Error("want error for 0 tag bits")
	}
	reg, err := NewDetectingRegister(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Handle(2); err == nil {
		t.Error("want error for pid out of range")
	}
	if _, err := NewDetectingRegisterFromLLSC(nil); err == nil {
		t.Error("want error for nil LLSC")
	}
}

func TestPublicBoundedTagIsHonestAboutItsFlaw(t *testing.T) {
	const k = 3
	reg, err := NewDetectingRegisterBoundedTag(2, k)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Handle(0)
	r, _ := reg.Handle(1)
	w.DWrite(1)
	r.DRead()
	for i := 0; i < 1<<k; i++ {
		w.DWrite(1)
	}
	if _, dirty := r.DRead(); dirty {
		t.Error("expected the 2^k wraparound to be missed (that is the documented flaw)")
	}
}

func TestPublicConcurrentUse(t *testing.T) {
	// A writer and several readers hammering a Fig4 register; every reader
	// must observe dirty=true at least once per writer burst.
	const n = 6
	reg, err := NewDetectingRegister(n, WithValueBits(16))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	w, _ := reg.Handle(0)
	// One write up front guarantees every reader's first DRead is dirty,
	// independent of goroutine scheduling.
	w.DWrite(1)
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				w.DWrite(Word(i % 100))
			}
		}
	}()
	var readers sync.WaitGroup
	for pid := 1; pid < n; pid++ {
		h, err := reg.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		readers.Add(1)
		go func(h DetectHandle) {
			defer readers.Done()
			sawDirty := 0
			for i := 0; i < 5000; i++ {
				if _, dirty := h.DRead(); dirty {
					sawDirty++
				}
			}
			if sawDirty == 0 {
				t.Error("reader never saw a dirty flag while writer was active")
			}
		}(h)
	}
	readers.Wait()
	close(stop)
	<-writerDone
}

func TestPublicLLSCCounter(t *testing.T) {
	const n = 8
	const perProc = 300
	obj, err := NewLLSC(n, WithValueBits(24))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		h, err := obj.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h LLSCHandle) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				for {
					v := h.LL()
					if h.SC(v + 1) {
						break
					}
				}
			}
		}(h)
	}
	wg.Wait()
	h, _ := obj.Handle(0)
	if got := h.LL(); got != Word(n*perProc) {
		t.Errorf("counter = %d, want %d", got, n*perProc)
	}
}
