// Package sim provides a deterministic shared-memory simulator: it executes
// per-process programs in lock-step, one shared-memory step at a time, under
// a programmable schedule.
//
// This is the execution model of the paper.  A schedule (a sequence of
// process IDs) decides which process takes the next shared-memory step; all
// process-local computation between two steps runs together with the
// preceding step.  Determinism is what makes the paper's constructions
// executable: adversarial schedules (package lowerbound) can interleave a
// victim's steps with other processes' operations exactly as the proofs of
// Lemmas 1-3 prescribe, and identical schedules always produce identical
// executions.
//
// Programs are ordinary Go code: the algorithms under test are constructed
// over the Runner's Factory, whose base objects block at a "gate" before
// every shared-memory operation until the scheduler grants the step.  The
// same algorithm code therefore runs natively (shmem.NativeFactory) and
// under the simulator, unchanged.
//
// The Runner also records a history of method invocations and responses
// (annotated by the programs via Proc.Invoke/Proc.Return) with logical
// timestamps, which package check consumes for linearizability checking.
package sim

import (
	"errors"
	"fmt"

	"abadetect/internal/shmem"
)

// Word is the base-object value type.
type Word = shmem.Word

// Program is the code run by one simulated process.  It receives the
// process's Proc context, whose ID names the process and whose
// Invoke/Return methods annotate the history.
type Program func(p *Proc)

// errAborted is the sentinel panic used to unwind aborted programs.
var errAborted = errors.New("sim: aborted")

// EventKind distinguishes history events.
type EventKind int

// Event kinds.
const (
	// Invoke marks a method invocation.
	Invoke EventKind = iota + 1
	// Return marks a method response.
	Return
)

// Event is one entry of the recorded history.
type Event struct {
	// Time is the logical timestamp (strictly increasing across all events
	// and shared-memory steps).
	Time int
	// Pid is the process the event belongs to.
	Pid int
	// Kind is Invoke or Return.
	Kind EventKind
	// Method is the method name given to Invoke; Return events repeat the
	// method of the matching Invoke.
	Method string
	// Args are the invocation arguments (Invoke events).
	Args []Word
	// Rets are the response values (Return events).
	Rets []Word
}

// Runner drives a set of simulated processes.
//
// Lifecycle: NewRunner, SetProgram for each process, Start, then any mix of
// Step/Run, and finally Close (which aborts still-running programs and waits
// for all goroutines to exit).  A Runner must be used from a single
// goroutine.
type Runner struct {
	n       int
	procs   []*proc
	started bool
	closed  bool

	clock   int // logical time: bumped on every shared step and every event
	steps   int // total shared-memory steps granted
	events  []Event
	record  bool
	pending []string // pending method name per pid, for Return events
}

// proc is the scheduler-side handle of one simulated process.
type proc struct {
	pid     int
	program Program
	resume  chan struct{}
	pause   chan pauseKind
	aborted bool // set by the scheduler before the abort resume
	done    bool // scheduler-side view
	err     error
}

type pauseKind int

const (
	pausedAtGate pauseKind = iota + 1
	finished
)

// NewRunner creates a runner for n processes with history recording on.
func NewRunner(n int) *Runner {
	r := &Runner{
		n:       n,
		procs:   make([]*proc, n),
		record:  true,
		pending: make([]string, n),
	}
	for pid := range r.procs {
		r.procs[pid] = &proc{
			pid:    pid,
			resume: make(chan struct{}),
			pause:  make(chan pauseKind),
		}
	}
	return r
}

// NumProcs returns the number of simulated processes.
func (r *Runner) NumProcs() int { return r.n }

// SetRecording turns history recording on or off (on by default).
func (r *Runner) SetRecording(on bool) { r.record = on }

// Factory returns the base-object factory whose objects are gated by this
// runner's scheduler.  Objects must be created before Start.
func (r *Runner) Factory() shmem.Factory { return &simFactory{r: r} }

// SetProgram assigns the program run by process pid.  It must be called
// before Start.
func (r *Runner) SetProgram(pid int, prog Program) error {
	if r.started {
		return errors.New("sim: SetProgram after Start")
	}
	if pid < 0 || pid >= r.n {
		return fmt.Errorf("sim: pid %d out of range [0,%d)", pid, r.n)
	}
	r.procs[pid].program = prog
	return nil
}

// Start launches all programs and runs each until its first shared-memory
// step (or completion).  Processes with no program are immediately done.
func (r *Runner) Start() error {
	if r.started {
		return errors.New("sim: Start called twice")
	}
	r.started = true
	for _, p := range r.procs {
		if p.program == nil {
			p.done = true
			continue
		}
		go r.runProgram(p)
		// Wait until the program reaches its first gate or finishes.
		if k := <-p.pause; k == finished {
			p.done = true
		}
	}
	return nil
}

// runProgram is the goroutine body of one simulated process.
func (r *Runner) runProgram(p *proc) {
	defer func() {
		if e := recover(); e != nil {
			if err, ok := e.(error); !ok || !errors.Is(err, errAborted) {
				p.err = fmt.Errorf("sim: process %d panicked: %v", p.pid, e)
			}
		}
		p.pause <- finished
	}()
	p.program(&Proc{pid: p.pid, r: r})
}

// Observer is the pid that bypasses the scheduler gate: operations with a
// negative pid execute immediately, outside the simulation, without counting
// as a step.  Tests and experiment drivers use it to inspect or seed object
// state between scheduled steps (when every process is paused, so the access
// is race-free and deterministic).
const Observer = -1

// gate blocks the calling process goroutine until the scheduler grants it a
// step.  It is called by the simulated base objects before every operation.
func (r *Runner) gate(pid int) {
	if pid < 0 {
		return // observer access, see Observer
	}
	p := r.procs[pid]
	p.pause <- pausedAtGate
	<-p.resume
	if p.aborted {
		panic(errAborted)
	}
	r.clock++
	r.steps++
}

// Poised returns the processes that are paused at a gate (started, not yet
// finished), in pid order.
func (r *Runner) Poised() []int {
	out := make([]int, 0, r.n)
	for _, p := range r.procs {
		if p.program != nil && !p.done {
			out = append(out, p.pid)
		}
	}
	return out
}

// Done reports whether process pid has finished its program (or was never
// given one).
func (r *Runner) Done(pid int) bool { return r.procs[pid].done }

// AllDone reports whether every program has finished.
func (r *Runner) AllDone() bool {
	for _, p := range r.procs {
		if p.program != nil && !p.done {
			return false
		}
	}
	return true
}

// Err returns the first program error (panic) observed, if any.
func (r *Runner) Err() error {
	for _, p := range r.procs {
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

// Steps returns the total number of shared-memory steps granted so far.
func (r *Runner) Steps() int { return r.steps }

// Step grants process pid exactly one shared-memory step (plus the local
// computation that follows it, up to the next step or program completion).
func (r *Runner) Step(pid int) error {
	if !r.started {
		return errors.New("sim: Step before Start")
	}
	if pid < 0 || pid >= r.n {
		return fmt.Errorf("sim: pid %d out of range [0,%d)", pid, r.n)
	}
	p := r.procs[pid]
	if p.program == nil || p.done {
		return fmt.Errorf("sim: process %d is not poised", pid)
	}
	p.resume <- struct{}{}
	if k := <-p.pause; k == finished {
		p.done = true
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

// Run drives the schedule chosen by strategy until all programs finish, the
// strategy yields an invalid pid, or maxSteps steps have been taken.  It
// returns the number of steps granted.
func (r *Runner) Run(strategy Strategy, maxSteps int) (int, error) {
	taken := 0
	for taken < maxSteps {
		poised := r.Poised()
		if len(poised) == 0 {
			break
		}
		pid := strategy.Next(poised, taken)
		if pid < 0 {
			break // strategy exhausted
		}
		if err := r.Step(pid); err != nil {
			return taken, err
		}
		taken++
	}
	return taken, nil
}

// Close aborts all unfinished programs and waits for their goroutines to
// exit.  It is safe to call multiple times.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if !r.started {
		r.started = true // prevent further SetProgram/Start
		return
	}
	for _, p := range r.procs {
		if p.program == nil || p.done {
			continue
		}
		p.aborted = true
		p.resume <- struct{}{}
		for {
			if k := <-p.pause; k == finished {
				p.done = true
				break
			}
			// The program swallowed the abort panic and reached another
			// gate; insist.
			p.resume <- struct{}{}
		}
	}
}

// History returns the recorded events.  The returned slice is shared; do not
// modify it while the runner is in use.
func (r *Runner) History() []Event { return r.events }

// Proc is the per-process context passed to programs.
type Proc struct {
	pid int
	r   *Runner
}

// ID returns the process ID.
func (p *Proc) ID() int { return p.pid }

// Invoke records a method invocation in the history.  Programs call it
// immediately before running an operation of the object under test.
func (p *Proc) Invoke(method string, args ...Word) {
	if !p.r.record {
		return
	}
	p.r.clock++
	p.r.events = append(p.r.events, Event{
		Time: p.r.clock, Pid: p.pid, Kind: Invoke, Method: method, Args: args,
	})
	p.r.pending[p.pid] = method
}

// Return records the response of the most recent Invoke by this process.
func (p *Proc) Return(rets ...Word) {
	if !p.r.record {
		return
	}
	p.r.clock++
	p.r.events = append(p.r.events, Event{
		Time: p.r.clock, Pid: p.pid, Kind: Return, Method: p.r.pending[p.pid], Rets: rets,
	})
}

// simFactory allocates gate-controlled base objects.
type simFactory struct {
	r  *Runner
	fp shmem.Footprint
}

var _ shmem.Factory = (*simFactory)(nil)

func (f *simFactory) NewRegister(name string, init Word) shmem.Register {
	f.fp.Registers++
	return &simObject{r: f.r, v: init}
}

func (f *simFactory) NewCAS(name string, init Word) shmem.WritableCAS {
	f.fp.CASObjects++
	return &simObject{r: f.r, v: init}
}

func (f *simFactory) Footprint() shmem.Footprint { return f.fp }

// simObject is a base object whose every operation is one scheduled step.
// Operations run inside the window granted by Runner.Step, which serializes
// them, so plain field access is race-free (the resume/pause channels carry
// the happens-before edges).
type simObject struct {
	r *Runner
	v Word
}

var (
	_ shmem.Register    = (*simObject)(nil)
	_ shmem.WritableCAS = (*simObject)(nil)
)

func (o *simObject) Read(pid int) Word {
	o.r.gate(pid)
	return o.v
}

func (o *simObject) Write(pid int, v Word) {
	o.r.gate(pid)
	o.v = v
}

func (o *simObject) CompareAndSwap(pid int, old, new Word) bool {
	o.r.gate(pid)
	if o.v != old {
		return false
	}
	o.v = new
	return true
}
