package sim

import "math/rand"

// Strategy chooses which poised process takes the next shared-memory step.
// Next receives the poised pids (sorted ascending) and the number of steps
// granted so far; it returns the chosen pid, or a negative value to stop.
type Strategy interface {
	Next(poised []int, step int) int
}

// StrategyFunc adapts a function to the Strategy interface.
type StrategyFunc func(poised []int, step int) int

// Next calls f.
func (f StrategyFunc) Next(poised []int, step int) int { return f(poised, step) }

// RoundRobin cycles through the poised processes.
type RoundRobin struct {
	next int
}

// Next picks the smallest poised pid strictly greater than the previous
// choice, wrapping around.
func (s *RoundRobin) Next(poised []int, step int) int {
	for _, pid := range poised {
		if pid >= s.next {
			s.next = pid + 1
			return pid
		}
	}
	s.next = poised[0] + 1
	return poised[0]
}

// Random picks uniformly among poised processes with a seeded generator, so
// runs are reproducible.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random strategy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next picks a uniformly random poised pid.
func (s *Random) Next(poised []int, step int) int {
	return poised[s.rng.Intn(len(poised))]
}

// Script replays a fixed schedule; it stops when the script is exhausted or
// the scripted pid is not poised.
type Script struct {
	pids []int
	pos  int
}

// NewScript returns a strategy that replays pids in order.
func NewScript(pids []int) *Script { return &Script{pids: pids} }

// Next returns the next scripted pid if it is poised, and -1 otherwise.
func (s *Script) Next(poised []int, step int) int {
	if s.pos >= len(s.pids) {
		return -1
	}
	pid := s.pids[s.pos]
	s.pos++
	for _, q := range poised {
		if q == pid {
			return pid
		}
	}
	return -1
}

// Remaining returns how many scripted steps were not consumed.
func (s *Script) Remaining() int { return len(s.pids) - s.pos }
