package sim

import (
	"reflect"
	"testing"

	"abadetect/internal/shmem"
)

// buildIncrementers returns a started runner where each of n processes
// increments a shared CAS-based counter reps times.
func buildIncrementers(t *testing.T, n, reps int) (*Runner, shmem.WritableCAS) {
	t.Helper()
	r := NewRunner(n)
	ctr := r.Factory().NewCAS("ctr", 0)
	for pid := 0; pid < n; pid++ {
		pid := pid
		if err := r.SetProgram(pid, func(p *Proc) {
			for i := 0; i < reps; i++ {
				for {
					v := ctr.Read(p.ID())
					if ctr.CompareAndSwap(p.ID(), v, v+1) {
						break
					}
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	return r, ctr
}

func TestRoundRobinRunCompletes(t *testing.T) {
	r, ctr := buildIncrementers(t, 3, 4)
	defer r.Close()
	steps, err := r.Run(&RoundRobin{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllDone() {
		t.Fatal("programs did not finish")
	}
	if got := ctr.Read(-1); got != 12 {
		t.Errorf("counter = %d, want 12", got)
	}
	if steps != r.Steps() {
		t.Errorf("Run reported %d steps, runner counted %d", steps, r.Steps())
	}
}

func TestSoloRunIsSequential(t *testing.T) {
	r, ctr := buildIncrementers(t, 2, 5)
	defer r.Close()
	// Run process 0 alone to completion: 5 increments, 2 steps each.
	solo := StrategyFunc(func(poised []int, step int) int {
		for _, pid := range poised {
			if pid == 0 {
				return 0
			}
		}
		return -1
	})
	steps, err := r.Run(solo, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Errorf("solo run took %d steps, want 10", steps)
	}
	if got := ctr.Read(-1); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Done(0) != true || r.Done(1) != false {
		t.Error("wrong done states after solo run")
	}
}

func TestContendedCASFails(t *testing.T) {
	// Schedule both processes' Reads before either CAS: exactly one CAS
	// must fail, demonstrating real interleaving.
	r := NewRunner(2)
	ctr := r.Factory().NewCAS("ctr", 0)
	results := make([]bool, 2)
	for pid := 0; pid < 2; pid++ {
		pid := pid
		if err := r.SetProgram(pid, func(p *Proc) {
			v := ctr.Read(p.ID())
			results[p.ID()] = ctr.CompareAndSwap(p.ID(), v, v+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, pid := range []int{0, 1, 0, 1} {
		if err := r.Step(pid); err != nil {
			t.Fatal(err)
		}
	}
	if !r.AllDone() {
		t.Fatal("not done")
	}
	if !results[0] || results[1] {
		t.Errorf("results = %v, want [true false]", results)
	}
	if got := ctr.Read(-1); got != 1 {
		t.Errorf("counter = %d, want 1 (one lost update by design)", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, []Event) {
		r, ctr := buildIncrementers(t, 3, 3)
		defer r.Close()
		if _, err := r.Run(NewRandom(42), 10000); err != nil {
			t.Fatal(err)
		}
		return ctr.Read(-1), r.History()
	}
	v1, h1 := run()
	v2, h2 := run()
	if v1 != v2 {
		t.Errorf("replay diverged: %d vs %d", v1, v2)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Error("histories diverged under identical seeds")
	}
}

func TestHistoryRecording(t *testing.T) {
	r := NewRunner(2)
	reg := r.Factory().NewRegister("x", 0)
	if err := r.SetProgram(0, func(p *Proc) {
		p.Invoke("Write", 7)
		reg.Write(p.ID(), 7)
		p.Return()
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetProgram(1, func(p *Proc) {
		p.Invoke("Read")
		v := reg.Read(p.ID())
		p.Return(v)
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Run(&RoundRobin{}, 100); err != nil {
		t.Fatal(err)
	}
	h := r.History()
	if len(h) != 4 {
		t.Fatalf("history has %d events, want 4: %+v", len(h), h)
	}
	// Events must have strictly increasing times.
	for i := 1; i < len(h); i++ {
		if h[i].Time <= h[i-1].Time {
			t.Errorf("event times not strictly increasing: %+v", h)
		}
	}
	// Return events carry the method of the matching invocation.
	for _, e := range h {
		if e.Kind == Return && e.Method == "" {
			t.Errorf("return without method: %+v", e)
		}
	}
}

func TestRecordingCanBeDisabled(t *testing.T) {
	r := NewRunner(1)
	reg := r.Factory().NewRegister("x", 0)
	r.SetRecording(false)
	if err := r.SetProgram(0, func(p *Proc) {
		p.Invoke("Write", 1)
		reg.Write(p.ID(), 1)
		p.Return()
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Run(&RoundRobin{}, 100); err != nil {
		t.Fatal(err)
	}
	if len(r.History()) != 0 {
		t.Error("recording disabled but events present")
	}
}

func TestCloseAbortsInfinitePrograms(t *testing.T) {
	r := NewRunner(2)
	reg := r.Factory().NewRegister("x", 0)
	for pid := 0; pid < 2; pid++ {
		if err := r.SetProgram(pid, func(p *Proc) {
			for { // infinite workload, the paper's repeated-method loop
				reg.Read(p.ID())
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.Step(i % 2); err != nil {
			t.Fatal(err)
		}
	}
	r.Close() // must not hang; goroutine leak would trip -race/test timeout
	if !r.AllDone() {
		t.Error("processes still live after Close")
	}
}

func TestProgramPanicIsCaptured(t *testing.T) {
	r := NewRunner(1)
	reg := r.Factory().NewRegister("x", 0)
	if err := r.SetProgram(0, func(p *Proc) {
		reg.Read(p.ID())
		panic("boom")
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err := r.Step(0)
	if err == nil {
		t.Fatal("want error from panicking program")
	}
	if r.Err() == nil {
		t.Error("runner should remember the program error")
	}
}

func TestStepValidation(t *testing.T) {
	r := NewRunner(2)
	if err := r.Step(0); err == nil {
		t.Error("Step before Start should fail")
	}
	if err := r.SetProgram(0, func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(); err == nil {
		t.Error("second Start should fail")
	}
	if err := r.SetProgram(1, func(p *Proc) {}); err == nil {
		t.Error("SetProgram after Start should fail")
	}
	if err := r.Step(5); err == nil {
		t.Error("Step with bad pid should fail")
	}
	if err := r.Step(0); err == nil {
		t.Error("Step on finished process should fail")
	}
	if err := r.Step(1); err == nil {
		t.Error("Step on process without program should fail")
	}
}

func TestPoisedAndAllDone(t *testing.T) {
	r, _ := buildIncrementers(t, 3, 1)
	defer r.Close()
	if got := r.Poised(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Poised = %v", got)
	}
	// Finish process 1 alone: 1 increment = 2 steps.
	if err := r.Step(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Poised(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Poised = %v", got)
	}
	if r.AllDone() {
		t.Error("AllDone too early")
	}
}

func TestScriptStrategy(t *testing.T) {
	r, ctr := buildIncrementers(t, 2, 2)
	defer r.Close()
	s := NewScript([]int{0, 0, 0, 0, 1, 1, 1, 1})
	steps, err := r.Run(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 8 || !r.AllDone() {
		t.Fatalf("steps=%d allDone=%v", steps, r.AllDone())
	}
	if got := ctr.Read(-1); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if s.Remaining() != 0 {
		t.Errorf("script remaining = %d", s.Remaining())
	}
}

func TestSimFactoryFootprint(t *testing.T) {
	r := NewRunner(1)
	f := r.Factory()
	f.NewRegister("a", 0)
	f.NewCAS("b", 0)
	f.NewCAS("c", 0)
	fp := f.Footprint()
	if fp.Registers != 1 || fp.CASObjects != 2 {
		t.Errorf("footprint = %v", fp)
	}
	r.Close()
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two processes, one step each: exactly 2 schedules.
	build := func() (*Runner, error) {
		r := NewRunner(2)
		reg := r.Factory().NewRegister("x", 0)
		for pid := 0; pid < 2; pid++ {
			pid := pid
			if err := r.SetProgram(pid, func(p *Proc) {
				reg.Write(p.ID(), Word(pid+1))
			}); err != nil {
				return nil, err
			}
		}
		return r, r.Start()
	}
	n, err := Explore(build, ExploreLimits{MaxSteps: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("explored %d executions, want 2", n)
	}

	// Two processes, two steps each: C(4,2) = 6 schedules.
	build2 := func() (*Runner, error) {
		r := NewRunner(2)
		reg := r.Factory().NewRegister("x", 0)
		for pid := 0; pid < 2; pid++ {
			if err := r.SetProgram(pid, func(p *Proc) {
				reg.Read(p.ID())
				reg.Write(p.ID(), 1)
			}); err != nil {
				return nil, err
			}
		}
		return r, r.Start()
	}
	n, err = Explore(build2, ExploreLimits{MaxSteps: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("explored %d executions, want 6", n)
	}
}

func TestExploreStepLimit(t *testing.T) {
	build := func() (*Runner, error) {
		r := NewRunner(1)
		reg := r.Factory().NewRegister("x", 0)
		if err := r.SetProgram(0, func(p *Proc) {
			for i := 0; i < 100; i++ {
				reg.Read(p.ID())
			}
		}); err != nil {
			return nil, err
		}
		return r, r.Start()
	}
	if _, err := Explore(build, ExploreLimits{MaxSteps: 5}, nil); err == nil {
		t.Error("want error when executions exceed the step limit")
	}
}
