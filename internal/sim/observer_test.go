package sim

import "testing"

func TestObserverBypassesGate(t *testing.T) {
	r := NewRunner(1)
	reg := r.Factory().NewRegister("x", 5)
	cas := r.Factory().NewCAS("y", 1)
	if err := r.SetProgram(0, func(p *Proc) {
		reg.Read(p.ID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Observer accesses take no scheduled steps and work while the program
	// is paused at its gate.
	if got := reg.Read(Observer); got != 5 {
		t.Errorf("observer read = %d, want 5", got)
	}
	reg.Write(Observer, 9)
	if got := reg.Read(Observer); got != 9 {
		t.Errorf("observer read after write = %d, want 9", got)
	}
	if !cas.CompareAndSwap(Observer, 1, 2) {
		t.Error("observer CAS failed")
	}
	if r.Steps() != 0 {
		t.Errorf("observer accesses counted as %d steps", r.Steps())
	}
	// The program still takes its own gated step afterwards and sees the
	// observer's write.
	if err := r.Step(0); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 1 {
		t.Errorf("steps = %d, want 1", r.Steps())
	}
}

func TestRoundRobinWraps(t *testing.T) {
	s := &RoundRobin{}
	poised := []int{1, 3, 5}
	got := []int{
		s.Next(poised, 0), s.Next(poised, 1), s.Next(poised, 2),
		s.Next(poised, 3), // wraps back to 1
	}
	want := []int{1, 3, 5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence = %v, want %v", got, want)
		}
	}
}

func TestScriptStopsOnUnpoisedPid(t *testing.T) {
	s := NewScript([]int{2})
	if got := s.Next([]int{0, 1}, 0); got != -1 {
		t.Errorf("Next = %d, want -1 for unpoised scripted pid", got)
	}
}

func TestStrategyFunc(t *testing.T) {
	calls := 0
	s := StrategyFunc(func(poised []int, step int) int {
		calls++
		return poised[len(poised)-1]
	})
	if got := s.Next([]int{0, 7}, 0); got != 7 || calls != 1 {
		t.Errorf("Next = %d calls = %d", got, calls)
	}
}
