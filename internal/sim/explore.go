package sim

import "fmt"

// ExploreLimits bounds an exhaustive schedule enumeration.
type ExploreLimits struct {
	// MaxSteps bounds the length of a single execution; exceeding it is an
	// error (an unexplored suffix would make the enumeration silently
	// incomplete).
	MaxSteps int
	// MaxExecutions, if positive, bounds the number of complete executions;
	// exceeding it is an error rather than a silent truncation.
	MaxExecutions int
}

// Explore enumerates every schedule of the system produced by build and
// calls visit on each completed execution (all programs finished) with the
// schedule that produced it.  The runner passed to visit is closed by
// Explore afterwards.
//
// The walk is replay-based stateless search: simulator determinism
// guarantees that re-running a schedule prefix reproduces the same
// configuration, so each leaf of the schedule tree costs one fresh runner
// plus one replay.  It returns the number of complete executions visited.
func Explore(build func() (*Runner, error), limits ExploreLimits, visit func(r *Runner, schedule []int) error) (int, error) {
	type level struct {
		choice int // index into the poised set at this depth
		width  int // size of the poised set at this depth
	}
	var path []level
	visited := 0
	schedule := make([]int, 0, limits.MaxSteps)

	for {
		r, err := build()
		if err != nil {
			return visited, err
		}
		schedule = schedule[:0]
		depth := 0
		for {
			poised := r.Poised()
			if len(poised) == 0 {
				break
			}
			if depth >= limits.MaxSteps {
				r.Close()
				return visited, fmt.Errorf("sim: explore exceeded %d steps with processes still running", limits.MaxSteps)
			}
			if depth == len(path) {
				path = append(path, level{choice: 0, width: len(poised)})
			}
			lv := &path[depth]
			lv.width = len(poised)
			pid := poised[lv.choice]
			if err := r.Step(pid); err != nil {
				r.Close()
				return visited, fmt.Errorf("sim: explore step: %w", err)
			}
			schedule = append(schedule, pid)
			depth++
		}
		visited++
		if limits.MaxExecutions > 0 && visited > limits.MaxExecutions {
			r.Close()
			return visited, fmt.Errorf("sim: explore exceeded %d executions", limits.MaxExecutions)
		}
		if visit != nil {
			if err := visit(r, schedule); err != nil {
				r.Close()
				return visited, err
			}
		}
		r.Close()

		// Backtrack to the deepest level with an unexplored sibling.
		for len(path) > 0 {
			last := &path[len(path)-1]
			if last.choice+1 < last.width {
				last.choice++
				break
			}
			path = path[:len(path)-1]
		}
		if len(path) == 0 {
			return visited, nil
		}
	}
}
