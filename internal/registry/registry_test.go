package registry

import (
	"testing"

	"abadetect/internal/shmem"
)

func TestTableWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, im := range All() {
		if im.ID == "" || im.Summary == "" || im.Theorem == "" || im.Space == "" || im.Steps == "" {
			t.Errorf("%q: incomplete metadata: %+v", im.ID, im)
		}
		if seen[im.ID] {
			t.Errorf("duplicate ID %q", im.ID)
		}
		seen[im.ID] = true
		switch im.Kind {
		case KindDetector:
			if im.NewDetector == nil || im.NewLLSC != nil {
				t.Errorf("%q: detector entry must set exactly NewDetector", im.ID)
			}
		case KindLLSC:
			if im.NewLLSC == nil || im.NewDetector != nil {
				t.Errorf("%q: llsc entry must set exactly NewLLSC", im.ID)
			}
		default:
			t.Errorf("%q: unknown kind %q", im.ID, im.Kind)
		}
		if im.SpaceFn == nil {
			t.Errorf("%q: missing SpaceFn", im.ID)
		}
		if !im.Correct && im.TagBits == 0 {
			t.Errorf("%q: foil must declare its tag width", im.ID)
		}
	}
	if len(Detectors())+len(LLSCs()) != len(All()) {
		t.Error("kinds do not partition the registry")
	}
}

func TestEveryImplConstructsAndMatchesFootprint(t *testing.T) {
	for _, im := range All() {
		for _, n := range []int{1, 2, 8} {
			f := shmem.NewNativeFactory()
			var err error
			if im.Kind == KindDetector {
				_, err = im.NewDetector(f, n, 8, 0)
			} else {
				_, err = im.NewLLSC(f, n, 8, 0)
			}
			if err != nil {
				t.Errorf("%s: n=%d: %v", im.ID, n, err)
				continue
			}
			if got, want := f.Footprint().Objects(), im.SpaceFn(n); got != want {
				t.Errorf("%s: n=%d: footprint %d, SpaceFn says %d", im.ID, n, got, want)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	for _, id := range IDs() {
		im, ok := Lookup(id)
		if !ok || im.ID != id {
			t.Errorf("Lookup(%q) = (%q, %v)", id, im.ID, ok)
		}
	}
	if _, ok := Lookup("no-such-impl"); ok {
		t.Error("Lookup accepted an unknown ID")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup did not panic on unknown ID")
		}
	}()
	MustLookup("no-such-impl")
}

func TestDetectorsBehaveOnSmoke(t *testing.T) {
	// Cheap behavioral smoke so a registry entry pointing at the wrong
	// constructor fails here, close to the table.
	for _, im := range Detectors() {
		if !im.Correct {
			continue
		}
		d, err := im.NewDetector(shmem.NewNativeFactory(), 2, 8, 0)
		if err != nil {
			t.Fatalf("%s: %v", im.ID, err)
		}
		w, err := d.Handle(0)
		if err != nil {
			t.Fatalf("%s: %v", im.ID, err)
		}
		r, err := d.Handle(1)
		if err != nil {
			t.Fatalf("%s: %v", im.ID, err)
		}
		w.DWrite(3)
		if v, dirty := r.DRead(); v != 3 || !dirty {
			t.Errorf("%s: DRead = (%d,%v), want (3,true)", im.ID, v, dirty)
		}
		w.DWrite(5)
		w.DWrite(3)
		if v, dirty := r.DRead(); v != 3 || !dirty {
			t.Errorf("%s: ABA missed: DRead = (%d,%v), want (3,true)", im.ID, v, dirty)
		}
	}
}
