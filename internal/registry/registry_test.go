package registry

import (
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/shmem"
)

func TestTableWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, im := range All() {
		if im.ID == "" || im.Summary == "" || im.Theorem == "" || im.Space == "" || im.Steps == "" {
			t.Errorf("%q: incomplete metadata: %+v", im.ID, im)
		}
		if seen[im.ID] {
			t.Errorf("duplicate ID %q", im.ID)
		}
		seen[im.ID] = true
		switch im.Kind {
		case KindDetector:
			if im.NewDetector == nil || im.NewLLSC != nil || im.NewStructure != nil {
				t.Errorf("%q: detector entry must set exactly NewDetector", im.ID)
			}
			if im.LLSCBase != "" {
				base, ok := Lookup(im.LLSCBase)
				if !ok || base.Kind != KindLLSC {
					t.Errorf("%q: LLSCBase %q is not a registered LL/SC implementation", im.ID, im.LLSCBase)
				}
			}
		case KindLLSC:
			if im.NewLLSC == nil || im.NewDetector != nil || im.NewStructure != nil {
				t.Errorf("%q: llsc entry must set exactly NewLLSC", im.ID)
			}
		case KindStructure:
			if im.NewStructure == nil || im.NewDetector != nil || im.NewLLSC != nil || im.NewReclaimer != nil {
				t.Errorf("%q: structure entry must set exactly NewStructure", im.ID)
			}
		case KindReclaimer:
			if im.NewReclaimer == nil || im.NewDetector != nil || im.NewLLSC != nil || im.NewStructure != nil {
				t.Errorf("%q: reclaimer entry must set exactly NewReclaimer", im.ID)
			}
		default:
			t.Errorf("%q: unknown kind %q", im.ID, im.Kind)
		}
		if im.SpaceFn == nil {
			t.Errorf("%q: missing SpaceFn", im.ID)
		}
		if !im.Correct && im.TagBits == 0 {
			t.Errorf("%q: foil must declare its tag width", im.ID)
		}
	}
	if len(Detectors())+len(LLSCs())+len(Structures())+len(Reclaimers()) != len(All()) {
		t.Error("kinds do not partition the registry")
	}
}

func TestEveryImplConstructsAndMatchesFootprint(t *testing.T) {
	for _, im := range All() {
		if im.Kind == KindStructure {
			continue // structure footprints depend on capacity; covered below
		}
		for _, n := range []int{1, 2, 8} {
			f := shmem.NewNativeFactory()
			var err error
			switch im.Kind {
			case KindDetector:
				_, err = im.NewDetector(f, n, 8, 0)
			case KindReclaimer:
				_, err = im.NewReclaimer(f, im.ID, n, 8)
			default:
				_, err = im.NewLLSC(f, n, 8, 0)
			}
			if err != nil {
				t.Errorf("%s: n=%d: %v", im.ID, n, err)
				continue
			}
			if got, want := f.Footprint().Objects(), im.SpaceFn(n); got != want {
				t.Errorf("%s: n=%d: footprint %d, SpaceFn says %d", im.ID, n, got, want)
			}
		}
	}
}

// TestStructureMatrixConstructsAndRuns is the registry-level acceptance of
// the guard refactor: every registered structure constructs and completes a
// short workload under every guard spec of its matrix.
func TestStructureMatrixConstructsAndRuns(t *testing.T) {
	const n = 2
	for _, im := range Structures() {
		conditionalOnly := im.ID != "event"
		for _, spec := range GuardSpecs(conditionalOnly) {
			t.Run(im.ID+"/"+spec.String(), func(t *testing.T) {
				f := shmem.NewNativeFactory()
				mk, err := NewGuardMaker(f, n, spec)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := im.NewStructure(f, n, 8, mk, apps.InstanceOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for pid := 0; pid < n; pid++ {
					w, err := inst.Worker(pid)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 50; i++ {
						w(i)
					}
				}
				if corrupt, detail := inst.Audit(); corrupt {
					// Even raw guards cannot corrupt a sequential workload.
					t.Errorf("sequential workload corrupted: %s", detail)
				}
			})
		}
	}
}

func TestGuardSpecStrings(t *testing.T) {
	for _, tc := range []struct {
		spec GuardSpec
		want string
	}{
		{GuardSpec{Regime: 1}, "raw"},
		{GuardSpec{Regime: 2, TagBits: 16}, "tag16"},
		{GuardSpec{Regime: 3}, "llsc:fig3"},
		{GuardSpec{Regime: 3, ImplID: "constant"}, "llsc:constant"},
		{GuardSpec{Regime: 4}, "detector:fig5-fig3"},
		{GuardSpec{Regime: 4, ImplID: "fig4"}, "detector:fig4"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestGuardSpecsMatrix(t *testing.T) {
	cond := GuardSpecs(true)
	all := GuardSpecs(false)
	if len(all) <= len(cond) {
		t.Errorf("full matrix (%d) not larger than conditional matrix (%d)", len(all), len(cond))
	}
	for _, s := range cond {
		if !s.Conditional() {
			t.Errorf("conditional matrix contains detection-only spec %s", s)
		}
	}
	// The full matrix must include the register-only Figure 4 detector: the
	// event flag is precisely the workload it can serve.
	found := false
	for _, s := range all {
		if s.String() == "detector:fig4" {
			found = true
		}
	}
	if !found {
		t.Error("full matrix lacks detector:fig4")
	}
	if _, err := NewGuardMaker(shmem.NewNativeFactory(), 2, GuardSpec{Regime: 3, ImplID: "fig4"}); err == nil {
		t.Error("want error for an LLSC spec naming a detector impl")
	}
	if _, err := NewGuardMaker(shmem.NewNativeFactory(), 2, GuardSpec{Regime: 99}); err == nil {
		t.Error("want error for an unknown regime")
	}
}

func TestLookup(t *testing.T) {
	for _, id := range IDs() {
		im, ok := Lookup(id)
		if !ok || im.ID != id {
			t.Errorf("Lookup(%q) = (%q, %v)", id, im.ID, ok)
		}
	}
	if _, ok := Lookup("no-such-impl"); ok {
		t.Error("Lookup accepted an unknown ID")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup did not panic on unknown ID")
		}
	}()
	MustLookup("no-such-impl")
}

func TestDetectorsBehaveOnSmoke(t *testing.T) {
	// Cheap behavioral smoke so a registry entry pointing at the wrong
	// constructor fails here, close to the table.
	for _, im := range Detectors() {
		if !im.Correct {
			continue
		}
		d, err := im.NewDetector(shmem.NewNativeFactory(), 2, 8, 0)
		if err != nil {
			t.Fatalf("%s: %v", im.ID, err)
		}
		w, err := d.Handle(0)
		if err != nil {
			t.Fatalf("%s: %v", im.ID, err)
		}
		r, err := d.Handle(1)
		if err != nil {
			t.Fatalf("%s: %v", im.ID, err)
		}
		w.DWrite(3)
		if v, dirty := r.DRead(); v != 3 || !dirty {
			t.Errorf("%s: DRead = (%d,%v), want (3,true)", im.ID, v, dirty)
		}
		w.DWrite(5)
		w.DWrite(3)
		if v, dirty := r.DRead(); v != 3 || !dirty {
			t.Errorf("%s: ABA missed: DRead = (%d,%v), want (3,true)", im.ID, v, dirty)
		}
	}
}

func TestNewReclaimMaker(t *testing.T) {
	// Plain scheme IDs resolve; the epoch scheme alone takes a ":k" cadence
	// argument, which must be a positive integer.
	for _, id := range []string{"none", "hp", "epoch", "epoch:4"} {
		mk, err := NewReclaimMaker(id)
		if err != nil {
			t.Errorf("%q: %v", id, err)
			continue
		}
		r, err := mk(shmem.NewNativeFactory(), "t", 2, 8)
		if err != nil {
			t.Errorf("%q: maker failed: %v", id, err)
			continue
		}
		if r.NumProcs() != 2 {
			t.Errorf("%q: NumProcs = %d", id, r.NumProcs())
		}
	}
	for _, id := range []string{"hp:4", "none:1", "epoch:0", "epoch:-2", "epoch:x", "bogus"} {
		if _, err := NewReclaimMaker(id); err == nil {
			t.Errorf("%q: want error", id)
		}
	}
}
