// Package registry is the single catalog of every ABA-detection
// implementation in this repository.
//
// The paper is about the time–space trade-off *across* implementations:
// every theorem pins one point of the frontier (footprint m(n), step bound
// t(n), bounded or unbounded base objects).  Each such point is one Impl
// entry here, keyed by a stable ID, carrying the constructor plus the
// claimed complexity metadata.  Every layer that needs "all implementations"
// — the public API (abadetect.Implementations), the experiment harness
// (internal/bench), the verification tests (internal/verify), and the
// cmd/abalab CLI — enumerates this table instead of keeping a private copy,
// so adding an implementation is one entry, not five edits.
//
// Entries with Correct=false are deliberate foils (the folklore bounded-tag
// scheme): they exist so the lower-bound experiments and the differential
// tests can demonstrate the failure the paper proves unavoidable.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"abadetect/internal/apps"
	"abadetect/internal/core"
	"abadetect/internal/guard"
	"abadetect/internal/kv"
	"abadetect/internal/llsc"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// Word is the value type of all implementations.
type Word = shmem.Word

// Kind classifies an implementation by the object it provides.
type Kind string

// Implementation kinds.
const (
	// KindDetector is an ABA-detecting register (DWrite/DRead).
	KindDetector Kind = "detector"
	// KindLLSC is an LL/SC/VL object.
	KindLLSC Kind = "llsc"
	// KindStructure is an application-level data structure built over
	// Guards (internal/apps): the paper's §1 motivation, runnable across
	// the whole protection × implementation matrix.
	KindStructure Kind = "structure"
	// KindReclaimer is a safe-memory-reclamation scheme (internal/reclaim):
	// the defense that prevents the ABA by blocking node reuse instead of
	// detecting the repeat — the practical foil to the paper's tag-bit and
	// LL/SC costs.
	KindReclaimer Kind = "reclaimer"
)

// Impl is one registered implementation: a named point of the paper's
// time–space trade-off with its constructor.
type Impl struct {
	// ID is the stable identifier, e.g. "fig4" (use with Lookup and the
	// abalab -impl flag).
	ID string
	// Kind selects which constructor field is non-nil.
	Kind Kind
	// Summary is a one-line description.
	Summary string
	// Theorem names the paper artifact the implementation realizes.
	Theorem string
	// Space is the footprint formula m(n) as written in the paper.
	Space string
	// SpaceFn evaluates m(n): the number of base objects used.
	SpaceFn func(n int) int
	// Steps is the step bound t(n), e.g. "O(1)" or "O(n)".
	Steps string
	// Bounded reports whether the implementation uses only bounded base
	// objects (the regime the paper's lower bounds apply to).
	Bounded bool
	// Correct reports whether the implementation meets its specification.
	// False marks a deliberate foil kept for the refutation experiments.
	Correct bool
	// TagBits is the wrap-around tag width k of a bounded-tag foil (0
	// otherwise); the foil's word repeats after exactly 2^k writes.
	TagBits uint
	// LLSCBase names, for a Figure 5 detector (an LL/SC object wrapped as a
	// detecting register), the registered LL/SC implementation underneath.
	// The guard layer uses it to build conditional detector guards: the
	// detection view and the commit primitive then share one object.  Empty
	// for detectors with no LL/SC core (Figure 4, the unbounded and
	// bounded-tag baselines) — those can only back detection-only guards.
	LLSCBase string

	// NewDetector constructs the detector (Kind == KindDetector).
	NewDetector func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error)
	// NewLLSC constructs the LL/SC/VL object (Kind == KindLLSC).
	NewLLSC func(f shmem.Factory, n int, valueBits uint, initial Word) (llsc.Object, error)
	// NewStructure constructs the benchmark instance of a data structure
	// (Kind == KindStructure) for n processes over guards from mk, with the
	// allocator configured by io (guarded free list, reclaimer).
	NewStructure func(f shmem.Factory, n, capacity int, mk guard.Maker, io apps.InstanceOptions) (apps.Instance, error)
	// NewReclaimer constructs the safe-memory-reclamation scheme
	// (Kind == KindReclaimer) for one structure's node pool.
	NewReclaimer reclaim.Maker
}

// impls is the one table.  Keep it ordered: detectors first, then LL/SC
// objects, foils last within their kind.
var impls = []Impl{
	{
		ID:      "fig4",
		Kind:    KindDetector,
		Summary: "ABA-detecting register from n+1 bounded registers, O(1) steps",
		Theorem: "Theorem 3 (Figure 4)",
		Space:   "n+1 registers",
		SpaceFn: func(n int) int { return n + 1 },
		Steps:   "O(1)",
		Bounded: true,
		Correct: true,
		NewDetector: func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error) {
			return core.NewRegisterBased(f, n, valueBits, initial)
		},
	},
	{
		ID:       "fig5-fig3",
		Kind:     KindDetector,
		Summary:  "ABA-detecting register from one bounded CAS (Fig 5 over Fig 3), O(n) steps",
		Theorem:  "Theorem 2 (Figure 5 over Figure 3)",
		Space:    "1 CAS",
		SpaceFn:  func(n int) int { return 1 },
		Steps:    "O(n)",
		Bounded:  true,
		Correct:  true,
		LLSCBase: "fig3",
		NewDetector: func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error) {
			obj, err := llsc.NewCASBased(f, n, valueBits, initial)
			if err != nil {
				return nil, err
			}
			return core.NewLLSCBased(obj)
		},
	},
	{
		ID:       "fig5-constant",
		Kind:     KindDetector,
		Summary:  "ABA-detecting register from one CAS + n registers (Fig 5 over ConstantTime), O(1) steps",
		Theorem:  "Theorem 4 over [2,15]",
		Space:    "n+1 objects",
		SpaceFn:  func(n int) int { return n + 1 },
		Steps:    "O(1)",
		Bounded:  true,
		Correct:  true,
		LLSCBase: "constant",
		NewDetector: func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error) {
			obj, err := llsc.NewConstantTime(f, n, valueBits, initial)
			if err != nil {
				return nil, err
			}
			return core.NewLLSCBased(obj)
		},
	},
	{
		ID:       "fig5-moir",
		Kind:     KindDetector,
		Summary:  "ABA-detecting register from one unbounded CAS (Fig 5 over Moir), O(1) steps",
		Theorem:  "Theorem 4 over [26]",
		Space:    "1 CAS (unbounded)",
		SpaceFn:  func(n int) int { return 1 },
		Steps:    "O(1)",
		Bounded:  false,
		Correct:  true,
		LLSCBase: "moir",
		NewDetector: func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error) {
			obj, err := llsc.NewMoir(f, n, valueBits, initial)
			if err != nil {
				return nil, err
			}
			return core.NewLLSCBased(obj)
		},
	},
	{
		ID:      "unbounded",
		Kind:    KindDetector,
		Summary: "trivial baseline: one register with a never-repeating stamp, O(1) steps",
		Theorem: "§1 baseline",
		Space:   "1 register (unbounded)",
		SpaceFn: func(n int) int { return 1 },
		Steps:   "O(1)",
		Bounded: false,
		Correct: true,
		NewDetector: func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error) {
			return core.NewUnbounded(f, n, valueBits, initial)
		},
	},
	{
		ID:      "boundedtag1",
		Kind:    KindDetector,
		Summary: "folklore 1-bit wrap-around tag: misses the ABA after 2 writes (foil)",
		Theorem: "§1 foil (IBM tagging); refuted by Theorem 1(a)",
		Space:   "1 register",
		SpaceFn: func(n int) int { return 1 },
		Steps:   "O(1)",
		Bounded: true,
		Correct: false,
		TagBits: 1,
		NewDetector: func(f shmem.Factory, n int, valueBits uint, initial Word) (core.Detector, error) {
			return core.NewBoundedTag(f, n, valueBits, 1, initial)
		},
	},
	{
		ID:      "fig3",
		Kind:    KindLLSC,
		Summary: "LL/SC/VL from a single bounded CAS word, O(n) steps",
		Theorem: "Theorem 2 (Figure 3)",
		Space:   "1 CAS",
		SpaceFn: func(n int) int { return 1 },
		Steps:   "O(n)",
		Bounded: true,
		Correct: true,
		NewLLSC: func(f shmem.Factory, n int, valueBits uint, initial Word) (llsc.Object, error) {
			return llsc.NewCASBased(f, n, valueBits, initial)
		},
	},
	{
		ID:      "constant",
		Kind:    KindLLSC,
		Summary: "LL/SC/VL from one CAS + n registers, O(1) steps",
		Theorem: "[2,15]-style announcement construction",
		Space:   "n+1 objects",
		SpaceFn: func(n int) int { return n + 1 },
		Steps:   "O(1)",
		Bounded: true,
		Correct: true,
		NewLLSC: func(f shmem.Factory, n int, valueBits uint, initial Word) (llsc.Object, error) {
			return llsc.NewConstantTime(f, n, valueBits, initial)
		},
	},
	{
		ID:      "moir",
		Kind:    KindLLSC,
		Summary: "LL/SC/VL from one unbounded CAS (Moir), O(1) steps",
		Theorem: "[26] (§1 baseline)",
		Space:   "1 CAS (unbounded)",
		SpaceFn: func(n int) int { return 1 },
		Steps:   "O(1)",
		Bounded: false,
		Correct: true,
		NewLLSC: func(f shmem.Factory, n int, valueBits uint, initial Word) (llsc.Object, error) {
			return llsc.NewMoir(f, n, valueBits, initial)
		},
	},
	{
		ID:           "stack",
		Kind:         KindStructure,
		Summary:      "Treiber stack over a guarded head and node pool (§1 motivation)",
		Theorem:      "§1 (Treiber stack)",
		Space:        "2·cap registers + guards",
		SpaceFn:      func(n int) int { return 0 }, // capacity-dependent, not m(n)
		Steps:        "O(1) + guard",
		Bounded:      true,
		Correct:      true,
		NewStructure: apps.NewStackInstance,
	},
	{
		ID:           "queue",
		Kind:         KindStructure,
		Summary:      "Michael–Scott queue with guarded head/tail/next references (§1 motivation)",
		Theorem:      "§1 ([24], Michael–Scott)",
		Space:        "cap registers + (cap+2) guards",
		SpaceFn:      func(n int) int { return 0 }, // capacity-dependent, not m(n)
		Steps:        "O(1) amortized + guard",
		Bounded:      true,
		Correct:      true,
		NewStructure: apps.NewQueueInstance,
	},
	{
		ID:           "event",
		Kind:         KindStructure,
		Summary:      "resettable busy-wait event flag over a guarded reference (§1 motivation)",
		Theorem:      "§1 (busy-wait flag)",
		Space:        "1 guard",
		SpaceFn:      func(n int) int { return 0 }, // guard-dependent, not m(n)
		Steps:        "O(1) + guard",
		Bounded:      true,
		Correct:      true,
		NewStructure: apps.NewEventInstance,
	},
	{
		ID:           "map",
		Kind:         KindStructure,
		Summary:      "lock-free hash map: guarded buckets and marked links over a recycled node pool; grows split-ordered to a ceiling",
		Theorem:      "§1 motivation (Michael [25] / Shalev–Shachnai split-ordered hash map)",
		Space:        "B + 2·cap guards + 3·cap registers (cap, B grow geometrically to the ceiling)",
		SpaceFn:      func(n int) int { return 0 }, // capacity/bucket-dependent, not m(n)
		Steps:        "O(chain) + guard per link hop",
		Bounded:      true,
		Correct:      true,
		NewStructure: kv.NewMapInstance,
	},
	{
		ID:           "hp",
		Kind:         KindReclaimer,
		Summary:      "hazard pointers: per-process published slots, scan-and-free on a retire threshold",
		Theorem:      "SMR foil to §1 (Michael [25]-style)",
		Space:        "n·H registers (H=2)",
		SpaceFn:      func(n int) int { return n * reclaim.Slots },
		Steps:        "O(1) expected amortized (O(n·H) scan per threshold retires)",
		Bounded:      true,
		Correct:      true,
		NewReclaimer: reclaim.NewHazard,
	},
	{
		ID:           "epoch",
		Kind:         KindReclaimer,
		Summary:      "epoch-based reclamation: global epoch + per-process announcements, 3 deferred buckets",
		Theorem:      "SMR foil to §1 (Fraser-style EBR)",
		Space:        "n+1 objects (unbounded epoch)",
		SpaceFn:      func(n int) int { return n + 1 },
		Steps:        "O(1) amortized; reuse blocked system-wide by one stalled process",
		Bounded:      false,
		Correct:      true,
		NewReclaimer: reclaim.NewEpoch,
	},
	{
		ID:           "epoch:auto",
		Kind:         KindReclaimer,
		Summary:      "self-tuning epoch reclamation: advance cadence tightens under limbo pressure, relaxes when drains run empty",
		Theorem:      "SMR foil to §1 (adaptive EBR)",
		Space:        "n+1 objects (unbounded epoch)",
		SpaceFn:      func(n int) int { return n + 1 },
		Steps:        "O(1) amortized; cadence k in [1, min(2n, cap/n)] tuned by allocator backpressure",
		Bounded:      false,
		Correct:      true,
		NewReclaimer: reclaim.NewEpochAuto,
	},
	{
		ID:           "none",
		Kind:         KindReclaimer,
		Summary:      "pass-through reclaimer: immediate reuse, the §1 vulnerability preserved",
		Theorem:      "§1 baseline (immediate reuse)",
		Space:        "0",
		SpaceFn:      func(n int) int { return 0 },
		Steps:        "O(1)",
		Bounded:      true,
		Correct:      true,
		NewReclaimer: reclaim.NewNone,
	},
}

// All returns every registered implementation in registration order.
func All() []Impl { return append([]Impl(nil), impls...) }

// Detectors returns the registered ABA-detecting registers.
func Detectors() []Impl { return byKind(KindDetector) }

// LLSCs returns the registered LL/SC/VL objects.
func LLSCs() []Impl { return byKind(KindLLSC) }

// Structures returns the registered guard-built data structures.
func Structures() []Impl { return byKind(KindStructure) }

// Reclaimers returns the registered safe-memory-reclamation schemes.
func Reclaimers() []Impl { return byKind(KindReclaimer) }

// NewReclaimMaker returns the reclaim.Maker registered under id ("hp",
// "epoch", "none") — the registry-driven construction path the public
// WithReclamation option and the E12 harness share.  The epoch scheme
// accepts a tuned advance cadence as "epoch:k" (attempt the announcement
// sweep every k retires instead of the default min(2n, capacity/n)), and
// "epoch:auto" selects the self-tuning cadence driven by allocator
// backpressure.
func NewReclaimMaker(id string) (reclaim.Maker, error) {
	if base, arg, ok := strings.Cut(id, ":"); ok {
		if base != "epoch" {
			return nil, fmt.Errorf("registry: only the epoch scheme takes a %q argument (got %q)", ":k", id)
		}
		if arg == "auto" {
			return reclaim.NewEpochAuto, nil
		}
		k, err := strconv.Atoi(arg)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("registry: %q: the epoch advance cadence must be a positive integer (or %q)", id, "auto")
		}
		return reclaim.NewEpochEvery(k), nil
	}
	im, ok := Lookup(id)
	if !ok || im.Kind != KindReclaimer {
		return nil, fmt.Errorf("registry: %q is not a registered reclamation scheme (try %v)", id, reclaimerIDs())
	}
	return im.NewReclaimer, nil
}

func reclaimerIDs() []string {
	var out []string
	for _, im := range Reclaimers() {
		out = append(out, im.ID)
	}
	return out
}

func byKind(k Kind) []Impl {
	var out []Impl
	for _, im := range impls {
		if im.Kind == k {
			out = append(out, im)
		}
	}
	return out
}

// IDs returns every registered ID, sorted.
func IDs() []string {
	out := make([]string, 0, len(impls))
	for _, im := range impls {
		out = append(out, im.ID)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the implementation registered under id.
func Lookup(id string) (Impl, bool) {
	for _, im := range impls {
		if im.ID == id {
			return im, true
		}
	}
	return Impl{}, false
}

// MustLookup is Lookup for IDs the caller knows are registered; it panics on
// a miss, which is a programming error, not an input error.
func MustLookup(id string) Impl {
	im, ok := Lookup(id)
	if !ok {
		panic(fmt.Sprintf("registry: unknown implementation %q", id))
	}
	return im
}
