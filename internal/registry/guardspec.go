package registry

import (
	"fmt"

	"abadetect/internal/guard"
	"abadetect/internal/shmem"
)

// GuardSpec selects a protection regime plus the registered implementation
// backing it — one cell of the structure × guard matrix.
type GuardSpec struct {
	// Regime is the protection scheme.
	Regime guard.Regime
	// ImplID names the registered LL/SC or detector implementation behind
	// an LLSC or Detector guard ("" picks the default: fig3 / fig5-fig3).
	// Raw and Tagged guards use no registered implementation.
	ImplID string
	// TagBits is the tag width of a Tagged guard.
	TagBits uint
}

// String renders the spec as it appears in experiment tables, e.g. "raw",
// "tag16", "llsc:fig3", "detector:fig5-constant".
func (s GuardSpec) String() string {
	switch s.Regime {
	case guard.Raw:
		return "raw"
	case guard.Tagged:
		return fmt.Sprintf("tag%d", s.TagBits)
	case guard.LLSC:
		return "llsc:" + s.implOrDefault()
	case guard.Detector:
		return "detector:" + s.implOrDefault()
	default:
		return "unknown"
	}
}

func (s GuardSpec) implOrDefault() string {
	if s.ImplID != "" {
		return s.ImplID
	}
	switch s.Regime {
	case guard.LLSC:
		return "fig3"
	case guard.Detector:
		return "fig5-fig3"
	}
	return ""
}

// Conditional reports whether guards built from this spec support Commit —
// i.e. whether they can protect structures that conditionally swing
// references (everything except the event flag requires it).  Detector
// guards are conditional exactly when the backing detector has an LL/SC
// core (LLSCBase).
func (s GuardSpec) Conditional() bool {
	if s.Regime != guard.Detector {
		return true
	}
	im, ok := Lookup(s.implOrDefault())
	return ok && im.LLSCBase != ""
}

// NewGuardMaker returns the guard.Maker realizing spec over f for n
// processes: the registry-driven construction path that lets any registered
// implementation protect a structure.
func NewGuardMaker(f shmem.Factory, n int, spec GuardSpec) (guard.Maker, error) {
	switch spec.Regime {
	case guard.Raw:
		return func(name string, valueBits uint, init Word) (guard.Guard, error) {
			return guard.NewRaw(f, n, name, init)
		}, nil
	case guard.Tagged:
		return func(name string, valueBits uint, init Word) (guard.Guard, error) {
			return guard.NewTagged(f, n, name, valueBits, spec.TagBits, init)
		}, nil
	case guard.LLSC:
		im, ok := Lookup(spec.implOrDefault())
		if !ok || im.Kind != KindLLSC {
			return nil, fmt.Errorf("registry: guard spec %s: %q is not a registered LL/SC implementation", spec, spec.implOrDefault())
		}
		return func(name string, valueBits uint, init Word) (guard.Guard, error) {
			obj, err := im.NewLLSC(f, n, valueBits, init)
			if err != nil {
				return nil, err
			}
			return guard.NewLLSC(obj)
		}, nil
	case guard.Detector:
		im, ok := Lookup(spec.implOrDefault())
		if !ok || im.Kind != KindDetector {
			return nil, fmt.Errorf("registry: guard spec %s: %q is not a registered detector implementation", spec, spec.implOrDefault())
		}
		if im.LLSCBase != "" {
			// Figure 5 pairing: the commit primitive and the detection view
			// share the detector's LL/SC core.
			base := MustLookup(im.LLSCBase)
			return func(name string, valueBits uint, init Word) (guard.Guard, error) {
				obj, err := base.NewLLSC(f, n, valueBits, init)
				if err != nil {
					return nil, err
				}
				return guard.NewDetected(obj)
			}, nil
		}
		// No LL/SC core: detection-only (the event flag's regime).
		return func(name string, valueBits uint, init Word) (guard.Guard, error) {
			det, err := im.NewDetector(f, n, valueBits, init)
			if err != nil {
				return nil, err
			}
			return guard.NewDetectionOnly(det, init)
		}, nil
	default:
		return nil, fmt.Errorf("registry: unknown guard regime %d", spec.Regime)
	}
}

// GuardSpecs enumerates the protection matrix: the raw and 16-bit-tag
// baselines, an LLSC guard per registered LL/SC implementation, and a
// Detector guard per registered detector.  With conditionalOnly, the
// detection-only detectors (no LL/SC core) are dropped — the matrix for
// structures that commit; the event flag takes the full list.
func GuardSpecs(conditionalOnly bool) []GuardSpec {
	specs := []GuardSpec{
		{Regime: guard.Raw},
		{Regime: guard.Tagged, TagBits: 16},
	}
	for _, im := range LLSCs() {
		specs = append(specs, GuardSpec{Regime: guard.LLSC, ImplID: im.ID})
	}
	for _, im := range Detectors() {
		s := GuardSpec{Regime: guard.Detector, ImplID: im.ID}
		if conditionalOnly && im.LLSCBase == "" {
			continue
		}
		specs = append(specs, s)
	}
	return specs
}
