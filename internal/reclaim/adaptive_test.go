package reclaim

import (
	"testing"

	"abadetect/internal/shmem"
)

// Tests for the PR 9 reclamation engine: zero-shared-step retirement
// (stamp-at-drain), batched retirement, the versioned hazard-scan cache,
// capacity resizing, and the epoch:auto self-tuning cadence.

// TestEpochRetireTakesNoSharedSteps pins the satellite fix: Retire used to
// read the shared global epoch register on every call; now the epoch is
// read once per drain boundary, so the first threshold-1 retires take zero
// shared-memory steps (measured through the counting backend).
func TestEpochRetireTakesNoSharedSteps(t *testing.T) {
	cf := shmem.NewCounting(shmem.NewNativeFactory(), 2)
	r, err := NewEpochEvery(8)(cf, "t", 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	h, err := r.Handle(0, c.free)
	if err != nil {
		t.Fatal(err)
	}
	cf.Reset()
	for idx := 1; idx < 8; idx++ {
		h.Retire(idx)
	}
	if got := cf.Steps(0); got != 0 {
		t.Errorf("7 below-cadence retires took %d shared steps, want 0", got)
	}
	// The cadence-crossing retire pays the single stamp read plus the
	// drain's sweep; everything still frees, in retire order.
	h.Retire(8)
	if got := cf.Steps(0); got == 0 {
		t.Error("the draining retire took no shared steps — the sweep cannot have run")
	}
	for i := 0; i < 4 && len(c.freed) < 8; i++ {
		h.Drain()
	}
	if len(c.freed) != 8 {
		t.Fatalf("freed %d of 8: %v", len(c.freed), c.freed)
	}
	for i, idx := range c.freed {
		if idx != i+1 {
			t.Fatalf("free order %v is not retire order", c.freed)
		}
	}
}

// TestRetireBatchFreesInOrder: a batch retire behaves exactly like the
// per-node loop — same frees, same order — while counting one batch.
func TestRetireBatchFreesInOrder(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			r, err := mk(shmem.NewNativeFactory(), "t", 2, 16)
			if err != nil {
				t.Fatal(err)
			}
			var c collector
			h, err := r.Handle(0, c.free)
			if err != nil {
				t.Fatal(err)
			}
			h.RetireBatch(nil) // empty batches are free no-ops
			h.RetireBatch([]int{1, 2, 3})
			h.RetireBatch([]int{4, 5, 6, 7, 8})
			for i := 0; i < 4 && len(c.freed) < 8; i++ {
				h.Drain()
			}
			if len(c.freed) != 8 {
				t.Fatalf("freed %d of 8: %v", len(c.freed), c.freed)
			}
			for i, idx := range c.freed {
				if idx != i+1 {
					t.Fatalf("free order %v is not retire order", c.freed)
				}
			}
			m := r.Metrics()
			if m.Retired != 8 || m.Freed != 8 {
				t.Errorf("metrics: %s", m)
			}
			if m.Batches != 2 {
				t.Errorf("batches = %d, want 2 (empty batches don't count)", m.Batches)
			}
		})
	}
}

// TestRetireBatchRespectsProtections: batched retirement must defer exactly
// like the per-node path under a live protection.
func TestRetireBatchRespectsProtections(t *testing.T) {
	r, err := NewHazard(shmem.NewNativeFactory(), "t", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, _ := r.Handle(0, c0.free)
	h1, _ := r.Handle(1, c1.free)
	h1.Protect(0, 3)
	h0.RetireBatch([]int{1, 2, 3, 4})
	h0.Drain()
	if len(c0.freed) != 3 {
		t.Fatalf("freed %v, want all but the hazarded node", c0.freed)
	}
	if got := r.Limbo(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("limbo = %v, want [3]", got)
	}
	h1.Clear()
	h0.Drain()
	if len(c0.freed) != 4 {
		t.Fatalf("after clear: freed %v", c0.freed)
	}
}

// TestHPScanCacheSkipsUnchangedSweeps: a drain whose publication version
// matches the last sweep's must reuse the snapshot (counted as a skipped
// scan) and still free newly retired nodes; any Protect or Clear
// invalidates the cache.
func TestHPScanCacheSkipsUnchangedSweeps(t *testing.T) {
	cf := shmem.NewCounting(shmem.NewNativeFactory(), 2)
	r, err := NewHazard(cf, "t", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, _ := r.Handle(0, c0.free)
	h1, _ := r.Handle(1, c1.free)
	h1.Protect(0, 50)
	h0.Retire(1)
	h0.Drain() // fresh sweep: reads the hazard registers
	base := r.Metrics()
	if base.Scans != 1 || base.SkippedScans != 0 {
		t.Fatalf("first drain: %s", base)
	}
	cf.Reset()
	h0.Retire(2)
	h0.Retire(3)
	h0.Drain() // no hazard word changed: cached snapshot, zero register reads
	m := r.Metrics()
	if m.Scans != 1 {
		t.Errorf("unchanged hazards re-swept: scans = %d, want 1", m.Scans)
	}
	if m.SkippedScans != 1 {
		t.Errorf("skipped scans = %d, want 1", m.SkippedScans)
	}
	if got := cf.Steps(0); got != 0 {
		t.Errorf("cached drain took %d shared steps, want 0", got)
	}
	if len(c0.freed) != 3 {
		t.Errorf("cached drain freed %v, want nodes 1,2,3", c0.freed)
	}
	// The straggler's protected node still frees only after its Clear —
	// which bumps the version and forces a real sweep.
	h0.Retire(50)
	h0.Drain()
	if len(c0.freed) != 3 {
		t.Fatalf("protected node freed through the cache: %v", c0.freed)
	}
	h1.Clear()
	h0.Drain()
	if len(c0.freed) != 4 || c0.freed[3] != 50 {
		t.Fatalf("after clear: freed %v, want node 50 last", c0.freed)
	}
	if m := r.Metrics(); m.Scans < 2 {
		t.Errorf("the post-Clear drain did not re-sweep: %s", m)
	}
}

// TestHazardedBinarySearchAgrees: above the sort cutover the membership
// probe switches to binary search over the sorted snapshot; both paths must
// agree with naive membership.
func TestHazardedBinarySearchAgrees(t *testing.T) {
	small := []Word{9, 3, 7}
	for w := Word(1); w <= 10; w++ {
		want := w == 9 || w == 3 || w == 7
		if got := hazarded(small, w); got != want {
			t.Errorf("small snapshot: hazarded(%d) = %v, want %v", w, got, want)
		}
	}
	// hazarded's binary-search arm assumes a sorted snapshot, as scan
	// produces above the cutover.
	var big []Word
	for i := 0; i < hpSortCutover+8; i++ {
		big = append(big, Word(i*3+1))
	}
	for w := Word(0); w < Word(3*(hpSortCutover+9)); w++ {
		want := false
		for _, s := range big {
			if s == w {
				want = true
			}
		}
		if got := hazarded(big, w); got != want {
			t.Errorf("big snapshot: hazarded(%d) = %v, want %v", w, got, want)
		}
	}
}

// TestResizeRecomputesThreshold: the capacity/n cadence clamp must follow
// the live capacity through Resize in both directions.
func TestResizeRecomputesThreshold(t *testing.T) {
	// hp: built for a 64-node ceiling (threshold min(2·n·Slots, 64/2) = 8),
	// resized down to 4 live nodes: threshold must clamp to 4/2 = 2.
	hr, err := NewHazard(shmem.NewNativeFactory(), "t", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	hp := hr.(*hpReclaimer)
	if got := hp.threshold.Load(); got != 8 {
		t.Fatalf("hp ceiling threshold = %d, want 8", got)
	}
	hr.(Resizer).Resize(4)
	if got := hp.threshold.Load(); got != 2 {
		t.Errorf("hp resized threshold = %d, want 2", got)
	}
	hr.(Resizer).Resize(64)
	if got := hp.threshold.Load(); got != 8 {
		t.Errorf("hp re-grown threshold = %d, want 8", got)
	}

	// epoch: same shape with the min(2n, c/n) clamp.
	er, err := NewEpoch(shmem.NewNativeFactory(), "t", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	ep := er.(*epochReclaimer)
	if got := ep.threshold.Load(); got != 4 {
		t.Fatalf("epoch ceiling threshold = %d, want 4", got)
	}
	er.(Resizer).Resize(2)
	if got := ep.threshold.Load(); got != 1 {
		t.Errorf("epoch resized threshold = %d, want 1", got)
	}

	// An explicit epoch:k cadence is pinned by the caller: Resize keeps it.
	kr, err := NewEpochEvery(5)(shmem.NewNativeFactory(), "t", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	kr.(Resizer).Resize(4)
	if got := kr.(*epochReclaimer).threshold.Load(); got != 5 {
		t.Errorf("epoch:k threshold after Resize = %d, want the pinned 5", got)
	}

	// none has no cadence and no Resizer — the seam is optional.
	nr, err := NewNone(shmem.NewNativeFactory(), "t", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nr.(Resizer); ok {
		t.Error("none should not implement Resizer")
	}
}

// TestEpochAutoTightensUnderPressure: an alloc miss collapses the cadence
// to 1 (drain per retire) and the counters record the move; empty drains
// relax it back toward the default ceiling.
func TestEpochAutoTightensUnderPressure(t *testing.T) {
	r, err := NewEpochAuto(shmem.NewNativeFactory(), "t", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme() != "epoch:auto" {
		t.Fatalf("scheme = %q", r.Scheme())
	}
	var c collector
	h, err := r.Handle(0, c.free)
	if err != nil {
		t.Fatal(err)
	}
	eh := h.(*epochHandle)
	ceiling := int(eh.r.threshold.Load())
	if eh.k != ceiling {
		t.Fatalf("initial cadence %d, want the ceiling %d", eh.k, ceiling)
	}
	// Below-cadence retires do not drain...
	h.Retire(1)
	if m := r.Metrics(); m.Scans != 0 {
		t.Fatalf("scans = %d before any pressure", m.Scans)
	}
	// ...but after backpressure, every retire drains.
	h.(Pressured).AllocMiss()
	if eh.k != 1 {
		t.Fatalf("cadence after AllocMiss = %d, want 1", eh.k)
	}
	m := r.Metrics()
	if m.Pressure != 1 || m.Tightens != 1 {
		t.Fatalf("pressure counters: %s", m)
	}
	h.Retire(2)
	if m := r.Metrics(); m.Scans == 0 {
		t.Error("tightened cadence did not drain on retire")
	}
	// Drains that empty the pending list relax the cadence back up.
	for i := 0; i < 8 && len(c.freed) < 2; i++ {
		h.Drain()
	}
	if len(c.freed) != 2 {
		t.Fatalf("freed %d of 2", len(c.freed))
	}
	for i := 0; i < 8 && eh.k < ceiling; i++ {
		h.Retire(3)
		for j := 0; j < 4 && eh.k < ceiling; j++ {
			h.Drain()
		}
	}
	if eh.k != ceiling {
		t.Errorf("cadence did not relax back to the ceiling: k=%d want %d", eh.k, ceiling)
	}
	if m := r.Metrics(); m.Relaxes == 0 {
		t.Error("relaxations not counted")
	}
}

// TestEpochAutoStallTightens: a drain that frees nothing while nodes wait
// (a pinned straggler) halves the cadence — the limbo-pressure feedback.
func TestEpochAutoStallTightens(t *testing.T) {
	r, err := NewEpochAuto(shmem.NewNativeFactory(), "t", 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, _ := r.Handle(0, c0.free)
	h1, _ := r.Handle(1, c1.free)
	eh := h0.(*epochHandle)
	before := eh.k
	h1.Protect(0, 0) // pin the epoch
	h0.Retire(1)
	h0.Drain() // stalls: cannot advance past the pin
	if eh.k >= before {
		t.Errorf("cadence after a stalled drain = %d, want < %d", eh.k, before)
	}
	if m := r.Metrics(); m.Tightens == 0 || m.Stalls == 0 {
		t.Errorf("stall feedback not counted: %s", m)
	}
	h1.Clear()
	for i := 0; i < 4 && len(c0.freed) < 1; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 1 {
		t.Fatal("node never freed after the pin cleared")
	}
}

// TestEpochAutoConformance: epoch:auto must keep every epoch safety
// property — deferred frees under a pin, retire-order frees, clean limbo.
func TestEpochAutoConformance(t *testing.T) {
	r, err := NewEpochAuto(shmem.NewNativeFactory(), "t", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, _ := r.Handle(0, c0.free)
	h1, _ := r.Handle(1, c1.free)
	h1.Protect(0, 3)
	for idx := 1; idx <= 10; idx++ {
		h0.Retire(idx)
	}
	for i := 0; i < 4; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 0 {
		t.Fatalf("epoch:auto freed %v under a pinned straggler", c0.freed)
	}
	h1.Clear()
	for i := 0; i < 4 && len(c0.freed) < 10; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 10 {
		t.Fatalf("freed %d of 10 after unpin", len(c0.freed))
	}
	for i, idx := range c0.freed {
		if idx != i+1 {
			t.Fatalf("free order %v is not retire order", c0.freed)
		}
	}
	if len(r.Limbo()) != 0 {
		t.Errorf("limbo not empty: %v", r.Limbo())
	}
}

// TestHotPathBatchAllocFree extends the zero-allocation pins to the batch
// seam and the sorted/cached hazard scan: RetireBatch + Drain cycles must
// run allocation-free on every scheme, snapshot sorting included.
func TestHotPathBatchAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   Maker
	}{
		{"hp", NewHazard},
		{"epoch", NewEpoch},
		{"epoch:auto", NewEpochAuto},
		{"none", NewNone},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// n=16 puts the hp snapshot (32 slots) over the sort cutover, so
			// the sorted binary-search path is the one being pinned.
			r, err := tc.mk(shmem.NewSlabFactory(1), "t", 16, 256)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]Handle, 16)
			for pid := range handles {
				if handles[pid], err = r.Handle(pid, func(int) {}); err != nil {
					t.Fatal(err)
				}
			}
			for pid, h := range handles {
				h.Protect(0, pid*2+1)
				h.Protect(1, pid*2+2)
			}
			h := handles[0]
			batch := []int{0, 0, 0, 0}
			base := 33
			if got := testing.AllocsPerRun(500, func() {
				for i := range batch {
					batch[i] = base + i
				}
				base = (base+4)%200 + 33
				h.RetireBatch(batch)
				h.Drain()
			}); got != 0 {
				t.Errorf("RetireBatch/Drain allocates %.1f/op, want 0", got)
			}
		})
	}
}
