package reclaim

import (
	"fmt"

	"abadetect/internal/shmem"
)

// hpReclaimer is the hazard-pointer scheme [Michael 2004, the detectable-
// objects line's practical ancestor]: every process owns Slots single-writer
// registers; Protect publishes a node index there, and a retired node is
// freed only once a scan of all n·Slots slots finds it unprotected.
//
// Space is n·Slots registers — the O(n·H) the issue's m(n) claim names —
// plus at most capacity deferred indices per process.  Time is O(1) for
// Protect/Clear/Retire, with an O(n·Slots) scan amortized over `threshold`
// retires, so the expected per-op cost is O(1).  Robustness is hp's selling
// point over epochs: a stalled process defers at most the Slots nodes it
// protects; everything else keeps draining.
type hpReclaimer struct {
	n         int
	capacity  int
	threshold int
	hazards   []shmem.Register // hazards[pid*Slots+slot]; 0 = unprotected
	m         metrics
	limboT    limboTracker
}

// NewHazard builds the hazard-pointer reclaimer: n·Slots hazard registers
// over f, scan-and-free once a process has threshold retired nodes pending.
func NewHazard(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
	if err := checkArgs(n, capacity); err != nil {
		return nil, err
	}
	r := &hpReclaimer{
		n:        n,
		capacity: capacity,
		hazards:  make([]shmem.Register, n*Slots),
	}
	// The classic threshold is a multiple of the slot count, so each scan
	// amortizes to O(1) per retire.  It is additionally clamped to
	// capacity/n: with n per-process pending lists each below its
	// threshold, the lists together must not be able to swallow the whole
	// pool, or a workload whose retiring processes never reach the
	// threshold (and whose allocating processes have nothing of their own
	// to drain) would starve the allocator for good.
	r.threshold = 2 * n * Slots
	if limit := capacity / n; r.threshold > limit {
		r.threshold = limit
	}
	if r.threshold < 1 {
		r.threshold = 1
	}
	for i := range r.hazards {
		r.hazards[i] = f.NewRegister(fmt.Sprintf("%s.hp[%d]", name, i), 0)
	}
	return r, nil
}

func (r *hpReclaimer) Handle(pid int, free Free) (Handle, error) {
	if err := checkHandle(pid, r.n, free); err != nil {
		return nil, err
	}
	h := &hpHandle{
		r:       r,
		pid:     pid,
		free:    free,
		retired: make([]int, 0, r.capacity),
		snap:    make([]Word, 0, r.n*Slots),
	}
	r.limboT.register(func() []int { return h.retired })
	return h, nil
}

func (r *hpReclaimer) Scheme() string   { return "hp" }
func (r *hpReclaimer) NumProcs() int    { return r.n }
func (r *hpReclaimer) Limbo() []int     { return r.limboT.limbo() }
func (r *hpReclaimer) Metrics() Metrics { return r.m.snapshot() }

type hpHandle struct {
	r       *hpReclaimer
	pid     int
	free    Free
	retired []int  // deferred nodes, in retire (FIFO) order
	snap    []Word // scan scratch; reused so scans never allocate
}

// Protect publishes idx in this process's hazard slot.  The write must be
// visible before the caller re-validates the source reference — that
// ordering (publish, then re-check reachability) is what guarantees a
// validated node stays allocated until Clear.
func (h *hpHandle) Protect(slot, idx int) {
	h.r.hazards[h.pid*Slots+slot].Write(h.pid, Word(idx))
}

// Clear withdraws this process's protections.
func (h *hpHandle) Clear() {
	base := h.pid * Slots
	for s := 0; s < Slots; s++ {
		h.r.hazards[base+s].Write(h.pid, 0)
	}
}

// Retire defers idx and scans once the pending list reaches the threshold.
func (h *hpHandle) Retire(idx int) {
	h.retired = append(h.retired, idx)
	h.r.m.retired.Add(1)
	if len(h.retired) >= h.r.threshold {
		h.scan()
	}
}

// Drain scans immediately.
func (h *hpHandle) Drain() int { return h.scan() }

// scan reads every hazard slot and frees the pending nodes none of them
// covers, preserving retire order so a FIFO allocator's recycling order
// stays deterministic.
func (h *hpHandle) scan() int {
	if len(h.retired) == 0 {
		// Nothing pending: skip the hazard sweep entirely.  An allocator
		// spinning on exhaustion drains on every failed alloc; reading all
		// n·Slots hazard words each time would ping-pong the very cache
		// lines the other processes' Protect writes need.
		return 0
	}
	h.r.m.scans.Add(1)
	h.snap = h.snap[:0]
	for i := range h.r.hazards {
		if w := h.r.hazards[i].Read(h.pid); w != 0 {
			h.snap = append(h.snap, w)
		}
	}
	freed := 0
	kept := h.retired[:0]
	for _, idx := range h.retired {
		if hazarded(h.snap, Word(idx)) {
			kept = append(kept, idx)
			continue
		}
		h.free(idx)
		freed++
	}
	h.retired = kept
	if freed > 0 {
		h.r.m.freed.Add(int64(freed))
	} else if len(h.retired) > 0 {
		h.r.m.stalls.Add(1)
	}
	return freed
}

// hazarded reports whether w appears in the scanned slots (≤ n·Slots
// entries: a linear pass beats building a set at these sizes and never
// allocates).
func hazarded(snap []Word, w Word) bool {
	for _, s := range snap {
		if s == w {
			return true
		}
	}
	return false
}
