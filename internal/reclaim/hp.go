package reclaim

import (
	"fmt"
	"slices"
	"sync/atomic"

	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// hpReclaimer is the hazard-pointer scheme [Michael 2004, the detectable-
// objects line's practical ancestor]: every process owns Slots single-writer
// registers; Protect publishes a node index there, and a retired node is
// freed only once a scan of all n·Slots slots finds it unprotected.
//
// Space is n·Slots registers — the O(n·H) the issue's m(n) claim names —
// plus at most capacity deferred indices per process.  Time is O(1) for
// Protect/Clear/Retire, with an amortized scan every `threshold` retires.
// The scan itself sorts its hazard snapshot once and probes each retired
// node by binary search — O(H·n·log(H·n) + R·log(H·n)) instead of the
// naive O(R·H·n) membership sweep — and a scan whose publication version
// matches the previous one skips re-reading the registers entirely: no
// hazard word changed, so the cached sorted snapshot is still exact.
// Robustness is hp's selling point over epochs: a stalled process defers at
// most the Slots nodes it protects; everything else keeps draining.
type hpReclaimer struct {
	n        int
	capacity int // construction ceiling; pre-sizes the deferred lists

	// threshold is the scan cadence derived from the *live* capacity
	// (Resize recomputes it after Pool.Grow).  Atomic because handles read
	// it while a concurrent Grow rewrites it.
	threshold atomic.Int64

	hazards []shmem.Register // hazards[pid*Slots+slot]; 0 = unprotected

	// pub versions the hazard registers: every Protect and Clear bumps its
	// stripe *after* the register write, so a scanner that observes an
	// unchanged sum knows no hazard word moved since its last snapshot.
	// A hazard published-and-validated before a node's unlink bumps before
	// the retirer can observe the version, so a matching version can never
	// hide a protection a freed node still needs.
	pub *shmem.StripedCounter

	m      metrics
	limboT limboTracker
	tr     *trace.Recorder // nil unless the pool attached a flight recorder
}

// hpSortCutover is the snapshot size below which the linear membership
// probe beats sorting + binary search (branch-free sequential loads over a
// couple of cache lines).
const hpSortCutover = 16

// hpThreshold is the scan cadence for a live capacity c: the classic
// multiple of the slot count, so each scan amortizes to O(1) per retire,
// clamped to c/n so the n per-process pending lists can never swallow the
// whole pool between drains.
func hpThreshold(n, c int) int {
	t := 2 * n * Slots
	if limit := c / n; t > limit {
		t = limit
	}
	if t < 1 {
		t = 1
	}
	return t
}

// NewHazard builds the hazard-pointer reclaimer: n·Slots hazard registers
// over f, scan-and-free once a process has threshold retired nodes pending.
func NewHazard(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
	if err := checkArgs(n, capacity); err != nil {
		return nil, err
	}
	r := &hpReclaimer{
		n:        n,
		capacity: capacity,
		hazards:  make([]shmem.Register, n*Slots),
		pub:      shmem.NewStripedCounter(),
	}
	r.Resize(capacity)
	for i := range r.hazards {
		r.hazards[i] = f.NewRegister(fmt.Sprintf("%s.hp[%d]", name, i), 0)
	}
	return r, nil
}

// Resize recomputes the scan-cadence clamp for a new live capacity — pools
// call it after Grow, so a grown pool does not keep scanning on the
// pre-growth cadence.  The deferred-list buffers are sized for the
// construction ceiling, so Resize never reallocates.
func (r *hpReclaimer) Resize(capacity int) {
	if capacity < 1 {
		return
	}
	r.threshold.Store(int64(hpThreshold(r.n, capacity)))
}

func (r *hpReclaimer) Handle(pid int, free Free) (Handle, error) {
	if err := checkHandle(pid, r.n, free); err != nil {
		return nil, err
	}
	h := &hpHandle{
		r:       r,
		pid:     pid,
		lane:    shmem.StripeFor(pid),
		free:    free,
		retired: make([]int, 0, r.capacity),
		snap:    make([]Word, 0, r.n*Slots),
		ring:    r.tr.Ring(pid),
	}
	r.limboT.register(func() []int { return h.retired })
	return h, nil
}

// SetTracer attaches the flight recorder.  Pools call it right after
// construction, before any Handle exists, so handles cache their ring once.
func (r *hpReclaimer) SetTracer(rec *trace.Recorder) { r.tr = rec }

func (r *hpReclaimer) Scheme() string   { return "hp" }
func (r *hpReclaimer) NumProcs() int    { return r.n }
func (r *hpReclaimer) Limbo() []int     { return r.limboT.limbo() }
func (r *hpReclaimer) Metrics() Metrics { return r.m.snapshot() }

type hpHandle struct {
	r       *hpReclaimer
	pid     int
	lane    int // publication-counter stripe, shmem.StripeFor(pid)
	free    Free
	retired []int       // deferred nodes, in retire (FIFO) order
	snap    []Word      // sorted hazard snapshot; reused so scans never allocate
	snapVer int64       // publication version the snapshot was taken at
	snapOK  bool        // snap/snapVer hold a completed scan's snapshot
	ring    *trace.Ring // nil without a tracer; Record on nil is a no-op
}

// Protect publishes idx in this process's hazard slot.  The write must be
// visible before the caller re-validates the source reference — that
// ordering (publish, then re-check reachability) is what guarantees a
// validated node stays allocated until Clear.  The version bump follows the
// register write for the same reason: any scanner that could miss this
// hazard in a cached snapshot must observe the version change first.
func (h *hpHandle) Protect(slot, idx int) {
	h.r.hazards[h.pid*Slots+slot].Write(h.pid, Word(idx))
	h.r.pub.Add(h.lane, 1)
}

// Clear withdraws this process's protections.  The bump after the clears
// keeps the scan cache live: a cached snapshot can only over-protect, and
// the version change tells the next scan the slots are worth re-reading.
func (h *hpHandle) Clear() {
	base := h.pid * Slots
	for s := 0; s < Slots; s++ {
		h.r.hazards[base+s].Write(h.pid, 0)
	}
	h.r.pub.Add(h.lane, 1)
}

// Retire defers idx and scans once the pending list reaches the threshold.
func (h *hpHandle) Retire(idx int) {
	h.retired = append(h.retired, idx)
	h.r.m.retired.Add(1)
	if len(h.retired) >= int(h.r.threshold.Load()) {
		h.scan()
	}
}

// RetireBatch defers a whole batch in one call: one append, one counter
// bump, at most one scan.  The batch is copied out; idxs is not retained.
func (h *hpHandle) RetireBatch(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	h.retired = append(h.retired, idxs...)
	h.r.m.retired.Add(int64(len(idxs)))
	h.r.m.batches.Add(1)
	if len(h.retired) >= int(h.r.threshold.Load()) {
		h.scan()
	}
}

// AllocMiss is the pool's backpressure hook; hp needs no cadence change —
// the pool's drain-on-miss already forces an eager scan — so it only
// records the pressure event.
func (h *hpHandle) AllocMiss() { h.r.m.pressure.Add(1) }

// Drain scans immediately.
func (h *hpHandle) Drain() int { return h.scan() }

// scan frees the pending nodes no hazard slot covers, preserving retire
// order so a FIFO allocator's recycling order stays deterministic.  The
// publication version is read *before* the registers: a hazard published
// after that read changes the version, so the next scan re-sweeps; a
// version match means the sorted snapshot is byte-for-byte current and the
// n·Slots register reads are skipped.
func (h *hpHandle) scan() int {
	if len(h.retired) == 0 {
		// Nothing pending: skip the hazard sweep entirely.  An allocator
		// spinning on exhaustion drains on every failed alloc; reading all
		// n·Slots hazard words each time would ping-pong the very cache
		// lines the other processes' Protect writes need.
		return 0
	}
	v := h.r.pub.Load()
	if h.snapOK && v == h.snapVer {
		h.r.m.skips.Add(1)
	} else {
		h.r.m.scans.Add(1)
		h.snap = h.snap[:0]
		for i := range h.r.hazards {
			if w := h.r.hazards[i].Read(h.pid); w != 0 {
				h.snap = append(h.snap, w)
			}
		}
		if len(h.snap) > hpSortCutover {
			slices.Sort(h.snap)
		}
		h.snapVer, h.snapOK = v, true
	}
	freed := 0
	kept := h.retired[:0]
	for _, idx := range h.retired {
		if hazarded(h.snap, Word(idx)) {
			kept = append(kept, idx)
			continue
		}
		h.free(idx)
		freed++
	}
	h.retired = kept
	if freed > 0 {
		h.r.m.freed.Add(int64(freed))
	} else if len(h.retired) > 0 {
		h.r.m.stalls.Add(1)
	}
	h.ring.Record(trace.KindScan, "hp", uint64(freed), uint64(len(h.retired)))
	return freed
}

// hazarded reports whether w appears in the snapshot: a linear pass below
// the cutover (sequential loads beat a search at these sizes and neither
// allocates), binary search over the sorted snapshot above it.
func hazarded(snap []Word, w Word) bool {
	if len(snap) <= hpSortCutover {
		for _, s := range snap {
			if s == w {
				return true
			}
		}
		return false
	}
	_, found := slices.BinarySearch(snap, w)
	return found
}
