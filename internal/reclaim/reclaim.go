// Package reclaim is the safe-memory-reclamation layer: the ABA defense
// real systems deploy instead of (or beside) the paper's tags and LL/SC.
//
// The paper's §1 problem exists because a node index can be freed and
// recycled while a poised process still holds it: the reference's *word*
// returns to a value the process has seen, and a raw conditional swing
// cannot tell.  Tags spend k bits per word to distinguish the repeat
// (Theorem 1(a) bounds how well that can work); LL/SC and detecting
// registers spend m(n) base objects and t(n) steps to detect it.  Safe
// memory reclamation attacks the premise instead: if a node cannot be
// reused while any process may still hold a reference to it, the word never
// repeats inside a victim's window and the ABA never forms — no tag bits,
// no detector.  What it costs is the other axis of the paper's trade-off:
// space for published references or deferred nodes, and time to decide when
// reuse is safe.
//
// A Reclaimer manages the reuse of node indices for one structure's
// allocator.  Per-process Handles expose the four-step seam every scheme
// fits behind:
//
//   - Protect(slot, idx) publishes that this process may still dereference
//     idx (hazard pointers write a slot; epoch schemes pin the current
//     epoch; the pass-through does nothing);
//   - Clear withdraws every protection this process published (ends the
//     operation's window);
//   - Retire(idx) hands a removed node to the reclaimer instead of freeing
//     it; the node returns to the allocator only once no protection can
//     cover it;
//   - Drain makes reclamation progress explicitly (scan the hazard slots,
//     try to advance the epoch) and reports how many nodes it freed —
//     allocators call it before declaring the pool exhausted.
//
// Three implementations realize the classic points of the SMR design
// space, with the paper's m(n)/t(n) vocabulary in their registry entries:
//
//   - hp (NewHazard): per-process hazard-pointer slots over shmem words.
//     m(n) = n·Slots single-writer registers; Retire is O(1) amortized with
//     an O(n·Slots) scan every threshold retires.  A stalled process defers
//     at most the Slots nodes it protects — everything else keeps draining.
//   - epoch (NewEpoch): a global epoch plus per-process epoch announcements
//     and three deferred-free buckets per process.  m(n) = n+1 objects and
//     O(1) amortized steps — cheaper per protection than hp — but the epoch
//     counter is unbounded and ONE stalled pinned process blocks every
//     reuse in the system: the time-vs-robustness trade the stalled-process
//     experiments exhibit.
//   - none (NewNone): the pass-through preserving immediate reuse — the
//     foil that keeps today's vulnerable behavior measurable.
//
// Reclaimers allocate their shared words from a shmem.Factory, so hazard
// slots and epoch announcements are ordinary base objects: they appear in
// footprints and run on every substrate.
package reclaim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Word is the value type of the shared reclamation words.
type Word = shmem.Word

// Slots is the number of hazard slots each process owns — the largest
// number of nodes one operation must protect at once (a Michael–Scott
// dequeue needs two: the head node and its successor).
const Slots = 2

// Free returns a retired node to the allocator's free pool.  The reclaimer
// invokes it only when no process protection can cover the node.
type Free func(idx int)

// Handle is a process's reclamation endpoint.  A handle must be used by at
// most one goroutine at a time, and each process should hold at most one
// live handle (hazard slots and epoch announcements are per-process state).
type Handle interface {
	// Protect publishes that this process may dereference idx.  slot is in
	// [0, Slots); protecting a new index in an occupied slot replaces it.
	Protect(slot, idx int)
	// Clear withdraws every protection this handle published.
	Clear()
	// Retire hands a removed node to the reclaimer.  The node is freed —
	// possibly immediately, possibly on a later Retire or Drain — once no
	// protection can cover it.
	Retire(idx int)
	// RetireBatch hands over a whole batch of removed nodes at once, with
	// the per-retire bookkeeping (epoch stamping, cadence checks, counter
	// bumps) amortized over the batch.  Retire order within the batch is
	// preserved.  The slice is copied out, never retained.
	RetireBatch(idxs []int)
	// Drain attempts reclamation now and returns the number of nodes this
	// handle freed.  Allocators call it before reporting exhaustion.
	Drain() int
}

// Pressured is the optional backpressure seam of a Handle: a pool that
// finds no free node calls AllocMiss before draining, so an adaptive
// scheme (epoch:auto) can tighten its advance cadence instead of letting
// limbo lag starve the allocator again.  Schemes without a cadence to tune
// may implement it as a pure counter.
type Pressured interface {
	AllocMiss()
}

// Traced is the optional observability seam of a Reclaimer: a pool built
// with tracing attaches the flight recorder here, immediately after
// construction and before any Handle exists, so handles can cache their
// per-process ring once.  Schemes record their internal milestones —
// sweeps, epoch advances, cadence tightenings — into the owning process's
// ring; a scheme without internal milestones may ignore the seam.
type Traced interface {
	SetTracer(rec *trace.Recorder)
}

// Resizer is the optional capacity seam of a Reclaimer: pools whose node
// space grows (Pool.Grow) call Resize with the new live capacity so
// capacity-derived cadence clamps are recomputed — a reclaimer built for a
// growth ceiling would otherwise drain a small young pool on the ceiling's
// lazy cadence, and a grown pool on the seed's eager one.  Resize must not
// reallocate per-handle buffers (they are sized for the construction
// ceiling) and must be safe against concurrent handle traffic.
type Resizer interface {
	Resize(capacity int)
}

// Reclaimer manages safe reuse of the node indices of one structure.
type Reclaimer interface {
	// Handle returns process pid's endpoint; freed nodes are returned
	// through free (typically the allocator's release for that process).
	Handle(pid int, free Free) (Handle, error)
	// Scheme names the reclamation scheme ("hp", "epoch", "none").
	Scheme() string
	// NumProcs returns n.
	NumProcs() int
	// Limbo returns the retired-but-not-yet-freed node indices.  Call only
	// at quiescence (no handle mid-operation); audits count limbo nodes as
	// allocator-owned.
	Limbo() []int
	// Metrics returns the aggregated reclamation counters.
	Metrics() Metrics
}

// Maker builds the reclaimer for one structure's node pool: n processes,
// node indices 1..capacity, shared words allocated from f under name.
type Maker func(f shmem.Factory, name string, n, capacity int) (Reclaimer, error)

// Metrics aggregates a reclaimer's counters across all handles.  Like guard
// metrics they are instrumentation, not base objects.
type Metrics struct {
	// Retired counts nodes handed to the reclaimer.
	Retired int64
	// Freed counts nodes returned to the allocator.
	Freed int64
	// Scans counts reclamation attempts: hazard-slot scans or epoch-advance
	// passes.
	Scans int64
	// Stalls counts reclamation attempts that could free nothing while
	// nodes were pending — hazards covering every retired node, or an epoch
	// advance blocked by a pinned process.
	Stalls int64
	// Batches counts RetireBatch calls: multi-node retirements whose
	// bookkeeping was amortized over the batch.
	Batches int64
	// SkippedScans counts hazard scans served from the cached snapshot
	// because no hazard word changed since the last sweep (hp only).
	SkippedScans int64
	// Pressure counts allocator backpressure signals (AllocMiss): failed
	// allocations reported to the reclaimer before the exhaustion drain.
	Pressure int64
	// Tightens and Relaxes count the self-tuning cadence moves of
	// epoch:auto: threshold reductions under limbo pressure or stalled
	// drains, and threshold increases after drains that emptied the
	// pending list.
	Tightens, Relaxes int64
}

// Deferred returns the nodes currently in limbo (retired, not yet freed).
func (m Metrics) Deferred() int64 { return m.Retired - m.Freed }

// Add returns the field-wise sum of two snapshots.
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{
		Retired:      m.Retired + o.Retired,
		Freed:        m.Freed + o.Freed,
		Scans:        m.Scans + o.Scans,
		Stalls:       m.Stalls + o.Stalls,
		Batches:      m.Batches + o.Batches,
		SkippedScans: m.SkippedScans + o.SkippedScans,
		Pressure:     m.Pressure + o.Pressure,
		Tightens:     m.Tightens + o.Tightens,
		Relaxes:      m.Relaxes + o.Relaxes,
	}
}

// String renders the counters.
func (m Metrics) String() string {
	return fmt.Sprintf("retired=%d freed=%d deferred=%d scans=%d stalls=%d batches=%d skips=%d pressure=%d tightens=%d relaxes=%d",
		m.Retired, m.Freed, m.Deferred(), m.Scans, m.Stalls, m.Batches, m.SkippedScans, m.Pressure, m.Tightens, m.Relaxes)
}

// metrics is the shared atomic backing of Metrics.
type metrics struct {
	retired  atomic.Int64
	freed    atomic.Int64
	scans    atomic.Int64
	stalls   atomic.Int64
	batches  atomic.Int64
	skips    atomic.Int64
	pressure atomic.Int64
	tightens atomic.Int64
	relaxes  atomic.Int64
}

func (m *metrics) snapshot() Metrics {
	return Metrics{
		Retired:      m.retired.Load(),
		Freed:        m.freed.Load(),
		Scans:        m.scans.Load(),
		Stalls:       m.stalls.Load(),
		Batches:      m.batches.Load(),
		SkippedScans: m.skips.Load(),
		Pressure:     m.pressure.Load(),
		Tightens:     m.tightens.Load(),
		Relaxes:      m.relaxes.Load(),
	}
}

// limboTracker collects the per-handle retired lists for quiescent audits.
// Handle registration is construction-time only, so the mutex never touches
// a hot path.
type limboTracker struct {
	mu      sync.Mutex
	pending []func() []int
}

func (t *limboTracker) register(snapshot func() []int) {
	t.mu.Lock()
	t.pending = append(t.pending, snapshot)
	t.mu.Unlock()
}

func (t *limboTracker) limbo() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for _, snap := range t.pending {
		out = append(out, snap()...)
	}
	return out
}

func checkArgs(n, capacity int) error {
	if n < 1 {
		return fmt.Errorf("reclaim: need n >= 1, got %d", n)
	}
	if capacity < 1 {
		return fmt.Errorf("reclaim: need capacity >= 1, got %d", capacity)
	}
	return nil
}

func checkHandle(pid, n int, free Free) error {
	if pid < 0 || pid >= n {
		return fmt.Errorf("reclaim: pid %d out of range [0,%d)", pid, n)
	}
	if free == nil {
		return fmt.Errorf("reclaim: handle needs a non-nil free callback")
	}
	return nil
}

// ---------------------------------------------------------------------------
// none: the pass-through preserving immediate reuse.

type noneReclaimer struct {
	n int
	m metrics
}

// NewNone builds the pass-through reclaimer: Retire frees immediately,
// Protect and Clear are no-ops.  It preserves today's immediate-reuse
// behavior — the §1 vulnerability — while keeping the counters uniform.
func NewNone(_ shmem.Factory, _ string, n, capacity int) (Reclaimer, error) {
	if err := checkArgs(n, capacity); err != nil {
		return nil, err
	}
	return &noneReclaimer{n: n}, nil
}

func (r *noneReclaimer) Handle(pid int, free Free) (Handle, error) {
	if err := checkHandle(pid, r.n, free); err != nil {
		return nil, err
	}
	return &noneHandle{r: r, free: free}, nil
}

func (r *noneReclaimer) Scheme() string   { return "none" }
func (r *noneReclaimer) NumProcs() int    { return r.n }
func (r *noneReclaimer) Limbo() []int     { return nil }
func (r *noneReclaimer) Metrics() Metrics { return r.m.snapshot() }

type noneHandle struct {
	r    *noneReclaimer
	free Free
}

func (h *noneHandle) Protect(int, int) {}
func (h *noneHandle) Clear()           {}

func (h *noneHandle) Retire(idx int) {
	h.r.m.retired.Add(1)
	h.free(idx)
	h.r.m.freed.Add(1)
}

func (h *noneHandle) RetireBatch(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	for _, idx := range idxs {
		h.free(idx)
	}
	h.r.m.retired.Add(int64(len(idxs)))
	h.r.m.freed.Add(int64(len(idxs)))
	h.r.m.batches.Add(1)
}

func (h *noneHandle) Drain() int { return 0 }
