package reclaim

import (
	"testing"

	"abadetect/internal/shmem"
)

// Tests for the amortized advance cadence (NewEpochEvery): the k knob must
// bound how often the O(n) announcement sweep runs, without changing what
// eventually gets freed.

func TestEpochEveryCadenceHonored(t *testing.T) {
	const k = 3
	r, err := NewEpochEvery(k)(shmem.NewNativeFactory(), "t", 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	h, err := r.Handle(0, c.free)
	if err != nil {
		t.Fatal(err)
	}
	// The first k-1 retires must not trigger a sweep: no scans, no frees.
	for idx := 1; idx < k; idx++ {
		h.Retire(idx)
		if m := r.Metrics(); m.Scans != 0 {
			t.Fatalf("retire %d of %d triggered a sweep (scans=%d)", idx, k, m.Scans)
		}
		if len(c.freed) != 0 {
			t.Fatalf("retire %d freed %v before the cadence was reached", idx, c.freed)
		}
	}
	// The k-th retire crosses the threshold and drains.
	h.Retire(k)
	m := r.Metrics()
	if m.Scans == 0 {
		t.Fatal("the k-th retire did not trigger the amortized sweep")
	}
	if m.Retired != k {
		t.Fatalf("retired = %d, want %d", m.Retired, k)
	}
	// With nobody pinned the sweep can advance twice and free everything.
	for i := 0; i < 4 && len(c.freed) < k; i++ {
		h.Drain()
	}
	if len(c.freed) != k {
		t.Fatalf("freed %d of %d after drains: %v", len(c.freed), k, c.freed)
	}
}

func TestEpochEveryLargerKDefersMore(t *testing.T) {
	// Same retire stream under k=2 and k=8: the larger cadence must run
	// strictly fewer sweeps — that is the whole t(n) trade.
	scans := func(k int) int64 {
		t.Helper()
		r, err := NewEpochEvery(k)(shmem.NewNativeFactory(), "t", 2, 32)
		if err != nil {
			t.Fatal(err)
		}
		var c collector
		h, err := r.Handle(0, c.free)
		if err != nil {
			t.Fatal(err)
		}
		for idx := 1; idx <= 16; idx++ {
			h.Retire(idx)
		}
		return r.Metrics().Scans
	}
	small, large := scans(2), scans(8)
	if large >= small {
		t.Errorf("k=8 swept %d times, k=2 swept %d — larger cadence must sweep less", large, small)
	}
}

func TestEpochEveryZeroKeepsDefault(t *testing.T) {
	// k=0 is the documented default cadence: behaviour must match NewEpoch.
	for _, mk := range []Maker{NewEpoch, NewEpochEvery(0)} {
		r, err := mk(shmem.NewNativeFactory(), "t", 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		var c collector
		h, err := r.Handle(0, c.free)
		if err != nil {
			t.Fatal(err)
		}
		for idx := 1; idx <= 8; idx++ {
			h.Retire(idx)
		}
		for i := 0; i < 4 && len(c.freed) < 8; i++ {
			h.Drain()
		}
		if len(c.freed) != 8 {
			t.Fatalf("default cadence freed %d of 8", len(c.freed))
		}
	}
}

func TestEpochEveryRejectsNegative(t *testing.T) {
	if _, err := NewEpochEvery(-1)(shmem.NewNativeFactory(), "t", 2, 8); err == nil {
		t.Error("want error for a negative cadence")
	}
}

func TestEpochEveryPinStillBlocks(t *testing.T) {
	// A larger cadence must not weaken safety: a pinned straggler still
	// blocks the second advance, so nodes retired under its window stay in
	// limbo until it clears.
	r, err := NewEpochEvery(2)(shmem.NewNativeFactory(), "t", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, err := r.Handle(0, c0.free)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := r.Handle(1, c1.free)
	if err != nil {
		t.Fatal(err)
	}
	h1.Protect(0, 3) // pid 1 pins the current epoch and stalls
	h0.Retire(1)
	h0.Retire(2) // crosses k=2: sweep runs but cannot advance past the pin
	for i := 0; i < 4; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 0 {
		t.Fatalf("nodes freed under a pinned straggler: %v", c0.freed)
	}
	if r.Metrics().Stalls == 0 {
		t.Error("the blocked drains were not counted as stalls")
	}
	h1.Clear()
	for i := 0; i < 4 && len(c0.freed) < 2; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 2 {
		t.Fatalf("freed %d of 2 after the pin cleared", len(c0.freed))
	}
}
