package reclaim

import (
	"fmt"

	"abadetect/internal/shmem"
)

// epochReclaimer is epoch-based reclamation [Fraser 2004]: a global epoch
// counter plus one announcement register per process.  A process pins the
// current epoch for the duration of its operation; a node retired while the
// global epoch is g can be freed once the global epoch reaches g+2, because
// every critical section that could hold a reference announced an epoch
// ≤ g and the two advances in between each required every *active* process
// to have announced the epoch being left.
//
// Space is n+1 shared objects (n announcements + the epoch counter) plus
// three deferred-free buckets per process — asymptotically the same m(n)
// as the paper's Figure 4 detector, amusingly.  Time is O(1) per
// Protect/Clear/Retire with an O(n) announcement sweep amortized over
// `threshold` retires.  The catch is the scheme's famous failure mode: the
// epoch counter is unbounded, and one stalled process pinned at epoch g
// blocks the second advance forever — every retired node in the system
// stays in limbo until the straggler moves.  hp pays more space for
// immunity to exactly that.
type epochReclaimer struct {
	n         int
	capacity  int
	threshold int
	epoch     shmem.WritableCAS // global epoch counter (unbounded)
	ann       []shmem.Register  // ann[pid] = epoch<<1 | active
	m         metrics
	limboT    limboTracker
}

// NewEpoch builds the epoch-based reclaimer over f: one global epoch CAS,
// n announcement registers, three deferred buckets per process, with the
// default advance cadence of min(2n, capacity/n) retires.
func NewEpoch(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
	return NewEpochEvery(0)(f, name, n, capacity)
}

// NewEpochEvery returns an epoch-reclaimer Maker whose handles attempt the
// announcement sweep and epoch advance every k retires instead of the
// default min(2n, capacity/n).  A larger k amortizes the O(n) sweep across
// more retires — fewer Scans per op, cheaper retire fast path — at the
// price of up to n·k extra nodes sitting in limbo between drains (m(n)
// space traded for t(n) steps, the paper's axis).  k = 0 keeps the default;
// the exhaustion path still drains eagerly, and the stall counters are
// untouched, so a pinned straggler is as visible as ever.
func NewEpochEvery(k int) Maker {
	return func(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
		if err := checkArgs(n, capacity); err != nil {
			return nil, err
		}
		if k < 0 {
			return nil, fmt.Errorf("reclaim: epoch advance cadence must be >= 0, got %d", k)
		}
		r := &epochReclaimer{
			n:        n,
			capacity: capacity,
			epoch:    f.NewCAS(name+".epoch", 0),
			ann:      make([]shmem.Register, n),
		}
		if k > 0 {
			r.threshold = k
		} else {
			// Sweep the announcements once per ~n retires so the advance cost
			// amortizes to O(1); clamp to capacity/n like hp so the n pending
			// lists can never swallow the whole pool between drains.
			r.threshold = 2 * n
			if limit := capacity / n; r.threshold > limit {
				r.threshold = limit
			}
			if r.threshold < 1 {
				r.threshold = 1
			}
		}
		for i := range r.ann {
			r.ann[i] = f.NewRegister(fmt.Sprintf("%s.ann[%d]", name, i), 0)
		}
		return r, nil
	}
}

func (r *epochReclaimer) Handle(pid int, free Free) (Handle, error) {
	if err := checkHandle(pid, r.n, free); err != nil {
		return nil, err
	}
	h := &epochHandle{r: r, pid: pid, free: free}
	for b := range h.buckets {
		h.buckets[b].nodes = make([]int, 0, r.capacity)
	}
	r.limboT.register(func() []int {
		var out []int
		for b := range h.buckets {
			out = append(out, h.buckets[b].nodes...)
		}
		return out
	})
	return h, nil
}

func (r *epochReclaimer) Scheme() string   { return "epoch" }
func (r *epochReclaimer) NumProcs() int    { return r.n }
func (r *epochReclaimer) Limbo() []int     { return r.limboT.limbo() }
func (r *epochReclaimer) Metrics() Metrics { return r.m.snapshot() }

// canAdvance reports whether every active process has announced epoch e —
// the precondition for advancing the global epoch to e+1.
func (r *epochReclaimer) canAdvance(pid int, e Word) bool {
	for i := range r.ann {
		a := r.ann[i].Read(pid)
		if a&1 == 1 && a>>1 != e {
			return false
		}
	}
	return true
}

// bucket is one deferred-free list, stamped with the epoch its nodes were
// retired in.  Three buckets suffice: by the time the stamp's epoch slot
// (mod 3) repeats, the previous occupants are two epochs old and freeable.
type bucket struct {
	epoch Word
	nodes []int
}

type epochHandle struct {
	r       *epochReclaimer
	pid     int
	free    Free
	pinned  bool
	at      Word // announced epoch while pinned
	pending int
	buckets [3]bucket
}

// Protect pins the current epoch on the first protection of an operation;
// the published index is irrelevant — epochs protect *windows*, not nodes,
// which is exactly why one stalled window blocks everything.
func (h *epochHandle) Protect(int, int) {
	if h.pinned {
		return
	}
	for {
		e := h.r.epoch.Read(h.pid)
		h.r.ann[h.pid].Write(h.pid, e<<1|1)
		// Re-read: if the epoch moved while we announced, our announcement
		// may name an epoch an advancer already left — re-announce so the
		// pin is never older than the epoch we proceed under.
		if h.r.epoch.Read(h.pid) == e {
			h.at, h.pinned = e, true
			return
		}
	}
}

// Clear unpins: the announcement goes inactive, releasing the advance.
func (h *epochHandle) Clear() {
	if !h.pinned {
		return
	}
	h.r.ann[h.pid].Write(h.pid, h.at<<1)
	h.pinned = false
}

// Retire stamps idx with the current global epoch.  A bucket whose slot
// comes around again holds nodes three epochs old — freeable, so they are
// flushed before reuse.
func (h *epochHandle) Retire(idx int) {
	e := h.r.epoch.Read(h.pid)
	b := &h.buckets[e%3]
	if b.epoch != e && len(b.nodes) > 0 {
		h.flush(b)
	}
	b.epoch = e
	b.nodes = append(b.nodes, idx)
	h.pending++
	h.r.m.retired.Add(1)
	if h.pending >= h.r.threshold {
		h.drain()
	}
}

// Drain tries to advance the global epoch and frees this handle's expired
// buckets.
func (h *epochHandle) Drain() int { return h.drain() }

func (h *epochHandle) drain() int {
	if h.pending == 0 {
		return 0 // nothing deferred: no sweep, no advance attempt
	}
	h.r.m.scans.Add(1)
	freed := 0
	// Two advance attempts: a node retired at the current epoch needs the
	// global counter to move twice before its bucket expires.  A pinned
	// process (this handle included, if mid-operation) blocks the attempt
	// that would leave its announced epoch.
	for attempt := 0; attempt < 2 && h.pending > 0; attempt++ {
		e := h.r.epoch.Read(h.pid)
		freed += h.freeExpired(e)
		if h.pending == 0 {
			break
		}
		if !h.r.canAdvance(h.pid, e) {
			break
		}
		h.r.epoch.CompareAndSwap(h.pid, e, e+1)
	}
	freed += h.freeExpired(h.r.epoch.Read(h.pid))
	if freed == 0 && h.pending > 0 {
		h.r.m.stalls.Add(1)
	}
	return freed
}

// freeExpired frees every bucket retired at least two epochs before e.
func (h *epochHandle) freeExpired(e Word) int {
	freed := 0
	for b := range h.buckets {
		bkt := &h.buckets[b]
		if len(bkt.nodes) > 0 && bkt.epoch+2 <= e {
			freed += h.flush(bkt)
		}
	}
	return freed
}

// flush frees a whole bucket in retire order.
func (h *epochHandle) flush(b *bucket) int {
	n := len(b.nodes)
	for _, idx := range b.nodes {
		h.free(idx)
	}
	b.nodes = b.nodes[:0]
	h.pending -= n
	h.r.m.freed.Add(int64(n))
	return n
}
