package reclaim

import (
	"fmt"
	"sync/atomic"

	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// epochReclaimer is epoch-based reclamation [Fraser 2004]: a global epoch
// counter plus one announcement register per process.  A process pins the
// current epoch for the duration of its operation; a node retired while the
// global epoch is g can be freed once the global epoch reaches g+2, because
// every critical section that could hold a reference announced an epoch
// ≤ g and the two advances in between each required every *active* process
// to have announced the epoch being left.
//
// Space is n+1 shared objects (n announcements + the epoch counter) plus
// the deferred-free lists per process — asymptotically the same m(n)
// as the paper's Figure 4 detector, amusingly.  Time is O(1) per
// Protect/Clear/Retire with an O(n) announcement sweep amortized over
// `threshold` retires.  Retire itself touches no shared word at all: a
// retired node lands in a private unstamped list, and the drain boundary
// reads the global epoch once to stamp the whole batch (a later stamp is
// always conservative — the node only waits longer).  The catch is the
// scheme's famous failure mode: the epoch counter is unbounded, and one
// stalled process pinned at epoch g blocks the second advance forever —
// every retired node in the system stays in limbo until the straggler
// moves.  hp pays more space for immunity to exactly that.
type epochReclaimer struct {
	n        int
	capacity int    // construction ceiling; pre-sizes the deferred lists
	scheme   string // "epoch" or "epoch:auto"
	fixedK   int    // explicit cadence (epoch:k); 0 = derived from capacity
	auto     bool   // self-tuning cadence (epoch:auto)

	// threshold is the advance cadence derived from the *live* capacity
	// (Resize recomputes it after Pool.Grow); under epoch:auto it is the
	// cadence ceiling the per-handle k relaxes toward.  Atomic because
	// handles read it while a concurrent Grow rewrites it.
	threshold atomic.Int64
	liveCap   atomic.Int64

	epoch  shmem.WritableCAS // global epoch counter (unbounded)
	ann    []shmem.Register  // ann[pid] = epoch<<1 | active
	m      metrics
	limboT limboTracker
	tr     *trace.Recorder // nil unless the pool attached a flight recorder
}

// epochThreshold is the default advance cadence for a live capacity c:
// sweep the announcements once per ~n retires so the advance cost amortizes
// to O(1), clamped to c/n like hp so the n pending lists can never swallow
// the whole pool between drains.
func epochThreshold(n, c int) int {
	t := 2 * n
	if limit := c / n; t > limit {
		t = limit
	}
	if t < 1 {
		t = 1
	}
	return t
}

// NewEpoch builds the epoch-based reclaimer over f: one global epoch CAS,
// n announcement registers, per-process deferred lists, with the default
// advance cadence of min(2n, capacity/n) retires.
func NewEpoch(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
	return NewEpochEvery(0)(f, name, n, capacity)
}

// NewEpochEvery returns an epoch-reclaimer Maker whose handles attempt the
// announcement sweep and epoch advance every k retires instead of the
// default min(2n, capacity/n).  A larger k amortizes the O(n) sweep across
// more retires — fewer Scans per op, cheaper retire fast path — at the
// price of up to n·k extra nodes sitting in limbo between drains (m(n)
// space traded for t(n) steps, the paper's axis).  k = 0 keeps the default;
// the exhaustion path still drains eagerly, and the stall counters are
// untouched, so a pinned straggler is as visible as ever.
func NewEpochEvery(k int) Maker {
	return func(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
		if k < 0 {
			return nil, fmt.Errorf("reclaim: epoch advance cadence must be >= 0, got %d", k)
		}
		return newEpoch(f, name, n, capacity, k, false)
	}
}

// NewEpochAuto builds the self-tuning epoch reclaimer ("epoch:auto"): the
// same n+1 shared registers and drain protocol as NewEpoch, but each
// handle's advance cadence k floats in [1, default].  The cadence tightens
// — halves — when limbo pressure builds (this handle's pending list claims
// a disproportionate share of the live capacity, or a drain frees nothing
// while nodes wait) and collapses to 1 on allocator backpressure (the pool
// reports an alloc miss through the AllocMiss hook); it relaxes — doubles,
// back toward the default — whenever a drain empties the pending list.
// The result is epoch's cheap m(n) with hp-like responsiveness under
// write-leaning churn, without hand-picking k per workload; the Tightens
// and Relaxes counters record every cadence move.
func NewEpochAuto(f shmem.Factory, name string, n, capacity int) (Reclaimer, error) {
	return newEpoch(f, name, n, capacity, 0, true)
}

func newEpoch(f shmem.Factory, name string, n, capacity, k int, auto bool) (Reclaimer, error) {
	if err := checkArgs(n, capacity); err != nil {
		return nil, err
	}
	r := &epochReclaimer{
		n:        n,
		capacity: capacity,
		scheme:   "epoch",
		fixedK:   k,
		auto:     auto,
		epoch:    f.NewCAS(name+".epoch", 0),
		ann:      make([]shmem.Register, n),
	}
	if auto {
		r.scheme = "epoch:auto"
	}
	r.Resize(capacity)
	for i := range r.ann {
		r.ann[i] = f.NewRegister(fmt.Sprintf("%s.ann[%d]", name, i), 0)
	}
	return r, nil
}

// Resize recomputes the cadence clamp for a new live capacity — pools call
// it after Grow, so a grown pool does not keep draining on the pre-growth
// cadence.  An explicit epoch:k cadence is pinned by the caller and stays;
// the deferred-list buffers are sized for the construction ceiling, so
// Resize never reallocates.
func (r *epochReclaimer) Resize(capacity int) {
	if capacity < 1 {
		return
	}
	r.liveCap.Store(int64(capacity))
	if r.fixedK > 0 {
		r.threshold.Store(int64(r.fixedK))
		return
	}
	r.threshold.Store(int64(epochThreshold(r.n, capacity)))
}

func (r *epochReclaimer) Handle(pid int, free Free) (Handle, error) {
	if err := checkHandle(pid, r.n, free); err != nil {
		return nil, err
	}
	h := &epochHandle{r: r, pid: pid, free: free, ring: r.tr.Ring(pid)}
	h.fresh = make([]int, 0, r.capacity)
	h.k = int(r.threshold.Load())
	for b := range h.buckets {
		h.buckets[b].nodes = make([]int, 0, r.capacity)
	}
	r.limboT.register(func() []int {
		out := append([]int(nil), h.fresh...)
		for b := range h.buckets {
			out = append(out, h.buckets[b].nodes...)
		}
		return out
	})
	return h, nil
}

// SetTracer attaches the flight recorder.  Pools call it right after
// construction, before any Handle exists, so handles cache their ring once.
func (r *epochReclaimer) SetTracer(rec *trace.Recorder) { r.tr = rec }

func (r *epochReclaimer) Scheme() string   { return r.scheme }
func (r *epochReclaimer) NumProcs() int    { return r.n }
func (r *epochReclaimer) Limbo() []int     { return r.limboT.limbo() }
func (r *epochReclaimer) Metrics() Metrics { return r.m.snapshot() }

// canAdvance reports whether every active process has announced epoch e —
// the precondition for advancing the global epoch to e+1.
func (r *epochReclaimer) canAdvance(pid int, e Word) bool {
	for i := range r.ann {
		a := r.ann[i].Read(pid)
		if a&1 == 1 && a>>1 != e {
			return false
		}
	}
	return true
}

// bucket is one deferred-free list, stamped with the epoch its nodes were
// retired in.  Three buckets suffice: by the time the stamp's epoch slot
// (mod 3) repeats, the previous occupants are two epochs old and freeable.
type bucket struct {
	epoch Word
	nodes []int
}

type epochHandle struct {
	r      *epochReclaimer
	pid    int
	free   Free
	pinned bool
	at     Word // announced epoch while pinned

	// fresh holds retired-but-unstamped nodes: Retire appends here without
	// touching a single shared word, and the next drain boundary reads the
	// global epoch once and stamps the whole batch.  Stamping late is safe —
	// the stamp is ≥ every node's actual retire epoch, so nodes only become
	// freeable later, never earlier.
	fresh   []int
	pending int // fresh + bucketed
	k       int // current advance cadence (floats only under epoch:auto)
	buckets [3]bucket
	ring    *trace.Ring // nil without a tracer; Record on nil is a no-op
}

// Protect pins the current epoch on the first protection of an operation;
// the published index is irrelevant — epochs protect *windows*, not nodes,
// which is exactly why one stalled window blocks everything.
func (h *epochHandle) Protect(int, int) {
	if h.pinned {
		return
	}
	for {
		e := h.r.epoch.Read(h.pid)
		h.r.ann[h.pid].Write(h.pid, e<<1|1)
		// Re-read: if the epoch moved while we announced, our announcement
		// may name an epoch an advancer already left — re-announce so the
		// pin is never older than the epoch we proceed under.
		if h.r.epoch.Read(h.pid) == e {
			h.at, h.pinned = e, true
			return
		}
	}
}

// Clear unpins: the announcement goes inactive, releasing the advance.
func (h *epochHandle) Clear() {
	if !h.pinned {
		return
	}
	h.r.ann[h.pid].Write(h.pid, h.at<<1)
	h.pinned = false
}

// Retire defers idx into the private fresh list — no shared-memory steps at
// all; the epoch read it used to pay per node now happens once per drain.
func (h *epochHandle) Retire(idx int) {
	h.fresh = append(h.fresh, idx)
	h.pending++
	h.r.m.retired.Add(1)
	h.maybeDrain()
}

// RetireBatch defers a whole batch in one call: one pending-list append, one
// counter bump, at most one drain — the amortization the kv unlink and
// overwrite paths buy.  The batch is copied out; idxs is not retained.
func (h *epochHandle) RetireBatch(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	h.fresh = append(h.fresh, idxs...)
	h.pending += len(idxs)
	h.r.m.retired.Add(int64(len(idxs)))
	h.r.m.batches.Add(1)
	h.maybeDrain()
}

// AllocMiss is the pool's backpressure hook: the allocator found no free
// node while this handle may be sitting on limbo.  Under epoch:auto the
// cadence collapses to 1 — drain on every retire until the pressure clears.
func (h *epochHandle) AllocMiss() {
	h.r.m.pressure.Add(1)
	if h.r.auto && h.k > 1 {
		h.k = 1
		h.r.m.tightens.Add(1)
		h.ring.Record(trace.KindTighten, "epoch", 1, 0)
	}
}

// maybeDrain applies the cadence: drain once pending reaches the threshold.
// Under epoch:auto the threshold is the per-handle k, tightened here when
// this handle's limbo claims more than half its fair share of the live
// capacity — pending/capacity ratio pressure — before the drain decision.
func (h *epochHandle) maybeDrain() {
	t := int(h.r.threshold.Load())
	if h.r.auto {
		if h.k > t {
			h.k = t // a Resize lowered the ceiling
		}
		if limit := int(h.r.liveCap.Load()) / (2 * h.r.n); limit > 0 && h.pending >= limit && h.k > 1 {
			h.k = 1
			h.r.m.tightens.Add(1)
			h.ring.Record(trace.KindTighten, "epoch", 1, 0)
		}
		t = h.k
	}
	if h.pending >= t {
		h.drain()
	}
}

// Drain tries to advance the global epoch and frees this handle's expired
// buckets.
func (h *epochHandle) Drain() int { return h.drain() }

func (h *epochHandle) drain() int {
	if h.pending == 0 {
		return 0 // nothing deferred: no sweep, no advance attempt
	}
	h.r.m.scans.Add(1)
	// The drain boundary's single shared epoch read stamps every fresh node.
	h.stamp(h.r.epoch.Read(h.pid))
	freed := 0
	// Two advance attempts: a node retired at the current epoch needs the
	// global counter to move twice before its bucket expires.  A pinned
	// process (this handle included, if mid-operation) blocks the attempt
	// that would leave its announced epoch.
	for attempt := 0; attempt < 2 && h.pending > 0; attempt++ {
		e := h.r.epoch.Read(h.pid)
		freed += h.freeExpired(e)
		if h.pending == 0 {
			break
		}
		if !h.r.canAdvance(h.pid, e) {
			break
		}
		if h.r.epoch.CompareAndSwap(h.pid, e, e+1) {
			h.ring.Record(trace.KindEpochAdvance, "epoch", uint64(e+1), 0)
		}
	}
	freed += h.freeExpired(h.r.epoch.Read(h.pid))
	if freed == 0 && h.pending > 0 {
		h.r.m.stalls.Add(1)
		if h.r.auto && h.k > 1 {
			h.k >>= 1 // a fruitless sweep: tighten toward eager advancement
			h.r.m.tightens.Add(1)
			h.ring.Record(trace.KindTighten, "epoch", uint64(h.k), 0)
		}
	} else if h.r.auto && h.pending == 0 {
		if ceiling := int(h.r.threshold.Load()); h.k < ceiling {
			h.k <<= 1 // the drain emptied the pending list: relax
			if h.k > ceiling {
				h.k = ceiling
			}
			h.r.m.relaxes.Add(1)
		}
	}
	h.ring.Record(trace.KindScan, "epoch", uint64(freed), uint64(h.pending))
	return freed
}

// stamp moves the fresh list into the bucket of epoch e.  A bucket whose
// slot comes around again holds nodes at least three epochs old — freeable,
// so they are flushed before reuse.
func (h *epochHandle) stamp(e Word) {
	if len(h.fresh) == 0 {
		return
	}
	b := &h.buckets[e%3]
	if b.epoch != e && len(b.nodes) > 0 {
		h.flush(b)
	}
	b.epoch = e
	b.nodes = append(b.nodes, h.fresh...)
	h.fresh = h.fresh[:0]
}

// freeExpired frees every bucket retired at least two epochs before e,
// oldest stamp first, so frees stay in retire order even when two buckets
// expire in one pass.
func (h *epochHandle) freeExpired(e Word) int {
	freed := 0
	for {
		var oldest *bucket
		for b := range h.buckets {
			bkt := &h.buckets[b]
			if len(bkt.nodes) > 0 && bkt.epoch+2 <= e {
				if oldest == nil || bkt.epoch < oldest.epoch {
					oldest = bkt
				}
			}
		}
		if oldest == nil {
			return freed
		}
		freed += h.flush(oldest)
	}
}

// flush frees a whole bucket in retire order.
func (h *epochHandle) flush(b *bucket) int {
	n := len(b.nodes)
	for _, idx := range b.nodes {
		h.free(idx)
	}
	b.nodes = b.nodes[:0]
	h.pending -= n
	h.r.m.freed.Add(int64(n))
	return n
}
