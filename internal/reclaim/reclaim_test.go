package reclaim

import (
	"testing"

	"abadetect/internal/shmem"
)

// collector is a test Free sink recording freed indices in order.
type collector struct{ freed []int }

func (c *collector) free(idx int) { c.freed = append(c.freed, idx) }

func makers() map[string]Maker {
	return map[string]Maker{
		"none":  NewNone,
		"hp":    NewHazard,
		"epoch": NewEpoch,
	}
}

// TestRetireEventuallyFrees: with no protections anywhere, every retired
// node comes back through the free callback after at most a few drains,
// and the counters balance.
func TestRetireEventuallyFrees(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			r, err := mk(shmem.NewNativeFactory(), "t", 2, 8)
			if err != nil {
				t.Fatal(err)
			}
			var c collector
			h, err := r.Handle(0, c.free)
			if err != nil {
				t.Fatal(err)
			}
			for idx := 1; idx <= 8; idx++ {
				h.Retire(idx)
			}
			for i := 0; i < 4 && len(c.freed) < 8; i++ {
				h.Drain()
			}
			if len(c.freed) != 8 {
				t.Fatalf("freed %d of 8 retired nodes: %v", len(c.freed), c.freed)
			}
			// Retire order is preserved so FIFO allocators stay FIFO.
			for i, idx := range c.freed {
				if idx != i+1 {
					t.Fatalf("free order %v is not retire order", c.freed)
				}
			}
			m := r.Metrics()
			if m.Retired != 8 || m.Freed != 8 || m.Deferred() != 0 {
				t.Errorf("metrics: %s", m)
			}
			if len(r.Limbo()) != 0 {
				t.Errorf("limbo not empty: %v", r.Limbo())
			}
		})
	}
}

// TestProtectDefersFree: a node protected by another process must stay in
// limbo across drains, and must be freed once the protection clears.  The
// none scheme is the documented exception: it frees immediately — that
// pass-through IS the ABA vulnerability.
func TestProtectDefersFree(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			r, err := mk(shmem.NewNativeFactory(), "t", 2, 8)
			if err != nil {
				t.Fatal(err)
			}
			var c0, c1 collector
			h0, err := r.Handle(0, c0.free)
			if err != nil {
				t.Fatal(err)
			}
			h1, err := r.Handle(1, c1.free)
			if err != nil {
				t.Fatal(err)
			}
			h1.Protect(0, 3) // process 1 holds node 3 (pins its window)
			h0.Retire(3)
			h0.Drain()
			if name == "none" {
				if len(c0.freed) != 1 {
					t.Fatalf("none must free immediately, freed %v", c0.freed)
				}
				return
			}
			if len(c0.freed) != 0 {
				t.Fatalf("%s freed %v under a live protection", name, c0.freed)
			}
			if got := r.Limbo(); len(got) != 1 || got[0] != 3 {
				t.Fatalf("limbo = %v, want [3]", got)
			}
			h1.Clear()
			for i := 0; i < 4 && len(c0.freed) == 0; i++ {
				h0.Drain()
			}
			if len(c0.freed) != 1 || c0.freed[0] != 3 {
				t.Fatalf("after clear: freed %v, want [3]", c0.freed)
			}
		})
	}
}

// TestHPStalledProcessDefersOnlyItsSlots: hp's robustness claim — a stalled
// process defers at most the nodes it protects; unrelated retires drain.
func TestHPStalledProcessDefersOnlyItsSlots(t *testing.T) {
	r, err := NewHazard(shmem.NewNativeFactory(), "t", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, _ := r.Handle(0, c0.free)
	h1, _ := r.Handle(1, c1.free)
	h1.Protect(0, 1)
	h1.Protect(1, 2)
	// Process 1 stalls forever.  Process 0 retires nodes 1..10.
	for idx := 1; idx <= 10; idx++ {
		h0.Retire(idx)
	}
	h0.Drain()
	if len(c0.freed) != 8 {
		t.Fatalf("freed %d nodes, want 8 (all but the 2 hazarded)", len(c0.freed))
	}
	if got := r.Limbo(); len(got) != 2 {
		t.Fatalf("limbo = %v, want the two hazarded nodes", got)
	}
}

// TestEpochStalledProcessBlocksAllReuse: epoch's failure mode — one pinned
// process freezes the epoch, so nothing retired after its pin ever frees.
func TestEpochStalledProcessBlocksAllReuse(t *testing.T) {
	r, err := NewEpoch(shmem.NewNativeFactory(), "t", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var c0, c1 collector
	h0, _ := r.Handle(0, c0.free)
	h1, _ := r.Handle(1, c1.free)
	h1.Protect(0, 0) // pid 1 pins the epoch and stalls
	for idx := 1; idx <= 10; idx++ {
		h0.Retire(idx)
	}
	for i := 0; i < 4; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 0 {
		t.Fatalf("epoch freed %v with a pinned straggler", c0.freed)
	}
	m := r.Metrics()
	if m.Stalls == 0 {
		t.Error("blocked advances not counted as stalls")
	}
	// The straggler moves: reuse resumes.
	h1.Clear()
	for i := 0; i < 4 && len(c0.freed) < 10; i++ {
		h0.Drain()
	}
	if len(c0.freed) != 10 {
		t.Fatalf("after unpin: freed %d of 10", len(c0.freed))
	}
}

// TestEpochRepin: pin/unpin cycles must track the moving epoch, and a
// re-pin after the epoch advanced must not resurrect the old announcement.
func TestEpochRepin(t *testing.T) {
	r, err := NewEpoch(shmem.NewNativeFactory(), "t", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	h0, _ := r.Handle(0, c.free)
	h1, _ := r.Handle(1, c.free)
	for round := 0; round < 5; round++ {
		h1.Protect(0, 0)
		h0.Retire(round + 1)
		h1.Clear()
		h0.Drain()
		h0.Drain()
	}
	if len(c.freed) == 0 {
		t.Fatal("pin/unpin cycles starved reclamation entirely")
	}
}

// TestHandleValidation: bad pids and nil callbacks are rejected.
func TestHandleValidation(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			if _, err := mk(shmem.NewNativeFactory(), "t", 0, 4); err == nil {
				t.Error("want error for n=0")
			}
			if _, err := mk(shmem.NewNativeFactory(), "t", 2, 0); err == nil {
				t.Error("want error for capacity=0")
			}
			r, err := mk(shmem.NewNativeFactory(), "t", 2, 4)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Handle(2, func(int) {}); err == nil {
				t.Error("want error for pid out of range")
			}
			if _, err := r.Handle(0, nil); err == nil {
				t.Error("want error for nil free callback")
			}
			if r.NumProcs() != 2 {
				t.Errorf("NumProcs = %d", r.NumProcs())
			}
		})
	}
}

// TestHotPathAllocFree pins the reclamation hot paths to zero allocations
// per op on the slab substrate: hp Protect/Clear/Retire(+scan) and the
// epoch pin/unpin/retire cycle all run on preallocated state.
func TestHotPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   Maker
	}{
		{"hp", NewHazard},
		{"epoch", NewEpoch},
		{"none", NewNone},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := tc.mk(shmem.NewSlabFactory(1), "t", 4, 64)
			if err != nil {
				t.Fatal(err)
			}
			h, err := r.Handle(0, func(int) {})
			if err != nil {
				t.Fatal(err)
			}
			if got := testing.AllocsPerRun(500, func() {
				h.Protect(0, 7)
				h.Protect(1, 9)
				h.Clear()
			}); got != 0 {
				t.Errorf("Protect/Clear allocates %.1f/op, want 0", got)
			}
			idx := 1
			if got := testing.AllocsPerRun(500, func() {
				h.Retire(idx)
				idx = idx%64 + 1
				h.Drain()
			}); got != 0 {
				t.Errorf("Retire/Drain allocates %.1f/op, want 0", got)
			}
		})
	}
}
