package verify

import "testing"

func TestRandomWorkloadsAreReproducible(t *testing.T) {
	a := RandomDetectorWorkload(5, 3, 10)
	b := RandomDetectorWorkload(5, 3, 10)
	if len(a) != 3 || len(a[0]) != 10 {
		t.Fatalf("shape = %dx%d", len(a), len(a[0]))
	}
	for pid := range a {
		for i := range a[pid] {
			if a[pid][i] != b[pid][i] {
				t.Fatal("same seed produced different detector workloads")
			}
		}
	}
	la := RandomLLSCWorkload(5, 3, 10)
	lb := RandomLLSCWorkload(5, 3, 10)
	for pid := range la {
		for i := range la[pid] {
			if la[pid][i] != lb[pid][i] {
				t.Fatal("same seed produced different LL/SC workloads")
			}
		}
	}
}

func TestGeneratedDetectorWorkloadsLinearizable(t *testing.T) {
	// Sweep many generated workloads across every correct detector, each
	// workload under several random schedules.
	for _, tc := range correctDetectors {
		t.Run(tc.name, func(t *testing.T) {
			for wseed := int64(0); wseed < 8; wseed++ {
				wl := RandomDetectorWorkload(100+wseed, 3, 5)
				if _, err := RandomDetector(tc.build, 0, wl, 25, 7700+wseed*100, 100000); err != nil {
					t.Fatalf("workload seed %d: %v", wseed, err)
				}
			}
		})
	}
}

func TestGeneratedLLSCWorkloadsLinearizable(t *testing.T) {
	for _, tc := range correctLLSC {
		t.Run(tc.name, func(t *testing.T) {
			for wseed := int64(0); wseed < 8; wseed++ {
				wl := RandomLLSCWorkload(200+wseed, 3, 5)
				if _, err := RandomLLSC(tc.build, 0, wl, 25, 8800+wseed*100, 100000); err != nil {
					t.Fatalf("workload seed %d: %v", wseed, err)
				}
			}
		})
	}
}

func TestGeneratedWorkloadCatchesBrokenImplementations(t *testing.T) {
	// Sanity for the fuzz layer itself: with enough random workloads and
	// schedules, the 1-bit-tag register must fail.
	found := false
	for wseed := int64(0); wseed < 30 && !found; wseed++ {
		wl := RandomDetectorWorkload(300+wseed, 3, 6)
		if _, err := RandomDetector(buildBoundedTag1, 0, wl, 40, 9900+wseed*50, 100000); err != nil {
			found = true
		}
	}
	if !found {
		t.Error("bounded-tag register survived the fuzz sweep — the sweep is too weak")
	}
}
