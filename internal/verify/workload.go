package verify

import "math/rand"

// RandomDetectorWorkload generates a reproducible mixed DWrite/DRead
// workload: n processes, opsPerProc operations each, writes drawing values
// from [0, 16).
func RandomDetectorWorkload(seed int64, n, opsPerProc int) DetectorWorkload {
	rng := rand.New(rand.NewSource(seed))
	wl := make(DetectorWorkload, n)
	for pid := range wl {
		ops := make([]DetOp, opsPerProc)
		for i := range ops {
			if rng.Intn(2) == 0 {
				ops[i] = W(Word(rng.Intn(16)))
			} else {
				ops[i] = R()
			}
		}
		wl[pid] = ops
	}
	return wl
}

// RandomLLSCWorkload generates a reproducible mixed LL/SC/VL workload.
func RandomLLSCWorkload(seed int64, n, opsPerProc int) LLSCWorkload {
	rng := rand.New(rand.NewSource(seed))
	wl := make(LLSCWorkload, n)
	for pid := range wl {
		ops := make([]LLOp, opsPerProc)
		for i := range ops {
			switch rng.Intn(4) {
			case 0, 1:
				ops[i] = LL()
			case 2:
				ops[i] = SC(Word(rng.Intn(16)))
			default:
				ops[i] = VL()
			}
		}
		wl[pid] = ops
	}
	return wl
}
