// Package verify ties the deterministic simulator (package sim) and the
// linearizability checker (package check) together into reusable harnesses:
//
//   - build an ABA-detecting register or LL/SC/VL object over the simulator's
//     gated base objects,
//   - run a fixed per-process workload under every schedule (exhaustive) or
//     under seeded random schedules,
//   - check each complete execution's history against the sequential
//     specification, and
//   - measure, across all explored schedules, the worst-case number of
//     shared-memory steps any single operation took (the paper's
//     step-complexity measure, verified rather than assumed).
//
// A failed check produces a ViolationError carrying the exact schedule and
// the concurrent history, so flawed implementations (BoundedTag, ablated
// variants) yield replayable counterexamples.
package verify

import (
	"fmt"
	"strings"

	"abadetect/internal/check"
	"abadetect/internal/core"
	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
	"abadetect/internal/sim"
)

// Word is the register/object value type.
type Word = shmem.Word

// ViolationError reports a non-linearizable execution.
type ViolationError struct {
	// Schedule is the sequence of pids that produced the execution (empty
	// for random runs, where the seed identifies the schedule instead).
	Schedule []int
	// Seed is the random-schedule seed, if the schedule is not recorded.
	Seed int64
	// Ops is the complete concurrent history that has no linearization.
	Ops []check.Op
}

// Error renders the counterexample.
func (e *ViolationError) Error() string {
	var b strings.Builder
	b.WriteString("verify: execution is not linearizable\n")
	if len(e.Schedule) > 0 {
		fmt.Fprintf(&b, "  schedule: %v\n", e.Schedule)
	} else {
		fmt.Fprintf(&b, "  random seed: %d\n", e.Seed)
	}
	b.WriteString("  history:\n")
	for _, op := range e.Ops {
		fmt.Fprintf(&b, "    %s\n", op)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Report aggregates the outcome of a batch of checked executions.
type Report struct {
	// Executions is the number of complete executions checked.
	Executions int
	// MaxOpSteps maps method name to the maximum number of shared-memory
	// steps a single call took across all executions.
	MaxOpSteps map[string]int
	// CheckStates is the total number of search states the linearizability
	// checker explored, a cost metric.
	CheckStates int
}

func newReport() *Report { return &Report{MaxOpSteps: map[string]int{}} }

func (r *Report) observeOp(method string, steps int) {
	if steps > r.MaxOpSteps[method] {
		r.MaxOpSteps[method] = steps
	}
}

func (r *Report) merge(other *Report) {
	r.Executions += other.Executions
	r.CheckStates += other.CheckStates
	for m, s := range other.MaxOpSteps {
		r.observeOp(m, s)
	}
}

// DetOp is one operation of a detector workload.
type DetOp struct {
	// Write selects DWrite (with Value) over DRead.
	Write bool
	// Value is the DWrite argument.
	Value Word
}

// W returns a DWrite(v) workload op.
func W(v Word) DetOp { return DetOp{Write: true, Value: v} }

// R returns a DRead workload op.
func R() DetOp { return DetOp{} }

// DetectorWorkload assigns each pid (index) its operation sequence.
type DetectorWorkload [][]DetOp

// DetectorBuilder constructs the detector under test over factory f.
type DetectorBuilder func(f shmem.Factory, n int) (core.Detector, error)

// detRun is one simulated execution of a detector workload.
type detRun struct {
	runner *sim.Runner
	report *Report
}

// newDetectorRun builds a fresh, started runner executing wl against the
// detector built by b.
func newDetectorRun(b DetectorBuilder, wl DetectorWorkload) (*detRun, error) {
	n := len(wl)
	runner := sim.NewRunner(n)
	counting := shmem.NewCounting(runner.Factory(), n)
	d, err := b(counting, n)
	if err != nil {
		runner.Close()
		return nil, err
	}
	run := &detRun{runner: runner, report: newReport()}
	for pid := range wl {
		pid := pid
		ops := wl[pid]
		if len(ops) == 0 {
			continue
		}
		err := runner.SetProgram(pid, func(p *sim.Proc) {
			h, herr := d.Handle(pid)
			if herr != nil {
				panic(herr)
			}
			for _, op := range ops {
				before := counting.Steps(pid)
				if op.Write {
					p.Invoke(check.MethodDWrite, op.Value)
					h.DWrite(op.Value)
					p.Return()
				} else {
					p.Invoke(check.MethodDRead)
					v, dirty := h.DRead()
					var flag Word
					if dirty {
						flag = 1
					}
					p.Return(v, flag)
				}
				method := check.MethodDRead
				if op.Write {
					method = check.MethodDWrite
				}
				run.report.observeOp(method, int(counting.Steps(pid)-before))
			}
		})
		if err != nil {
			runner.Close()
			return nil, err
		}
	}
	if err := runner.Start(); err != nil {
		runner.Close()
		return nil, err
	}
	return run, nil
}

// checkRun verifies one completed run against the spec and merges its
// measurements into total.
func checkRun(runner *sim.Runner, spec check.Spec, runReport, total *Report, schedule []int, seed int64) error {
	ops, pending, err := check.PairOps(runner.History())
	if err != nil {
		return err
	}
	if len(pending) != 0 {
		return fmt.Errorf("verify: %d operations still pending in a completed run", len(pending))
	}
	res := check.Linearizable(spec, ops)
	runReport.Executions = 1
	runReport.CheckStates = res.StatesExplored
	total.merge(runReport)
	if !res.Ok {
		sched := append([]int(nil), schedule...)
		return &ViolationError{Schedule: sched, Seed: seed, Ops: ops}
	}
	return nil
}

// CrashRandomDetector drives the workload under seeded random schedules but
// stops scheduling process crashPid forever after it has taken crashAfter
// shared-memory steps — the paper's crash/stopped-process model.  The
// surviving processes must still complete (wait-freedom does not depend on
// others making progress) and the history, including the crashed process's
// pending operation, must remain linearizable.
func CrashRandomDetector(b DetectorBuilder, initial Word, wl DetectorWorkload, crashPid, crashAfter, runs int, seedBase int64, maxSteps int) (*Report, error) {
	total := newReport()
	spec := check.ABADetectSpec{N: len(wl), Initial0: initial}
	for i := 0; i < runs; i++ {
		seed := seedBase + int64(i)
		run, err := newDetectorRun(b, wl)
		if err != nil {
			return total, err
		}
		err = runCrashSchedule(run.runner, crashPid, crashAfter, seed, maxSteps)
		if err == nil {
			err = checkCrashRun(run.runner, spec, crashPid, total, seed)
		}
		run.runner.Close()
		if err != nil {
			return total, err
		}
		total.merge(run.report) // survivors' step measurements
		total.Executions++
	}
	return total, nil
}

// runCrashSchedule randomly schedules all processes, never scheduling
// crashPid again once it has taken crashAfter steps, until all survivors
// finished.
func runCrashSchedule(runner *sim.Runner, crashPid, crashAfter int, seed int64, maxSteps int) error {
	rng := sim.NewRandom(seed)
	crashSteps := 0
	for steps := 0; steps < maxSteps; steps++ {
		poised := runner.Poised()
		alive := poised[:0:0]
		for _, pid := range poised {
			if pid == crashPid && crashSteps >= crashAfter {
				continue // crashed: never scheduled again
			}
			alive = append(alive, pid)
		}
		if len(alive) == 0 {
			return nil // all survivors done
		}
		pid := rng.Next(alive, steps)
		if err := runner.Step(pid); err != nil {
			return err
		}
		if pid == crashPid {
			crashSteps++
		}
	}
	return fmt.Errorf("verify: crash run with seed %d did not finish within %d steps", seed, maxSteps)
}

// checkCrashRun verifies a history that may contain the crashed process's
// pending operation.
func checkCrashRun(runner *sim.Runner, spec check.Spec, crashPid int, total *Report, seed int64) error {
	ops, pending, err := check.PairOps(runner.History())
	if err != nil {
		return err
	}
	for _, p := range pending {
		if p.Pid != crashPid {
			return fmt.Errorf("verify: unexpected pending op by surviving process %d", p.Pid)
		}
	}
	all := append(append([]check.Op(nil), ops...), pending...)
	res := check.Linearizable(spec, all)
	total.CheckStates += res.StatesExplored
	if !res.Ok {
		return &ViolationError{Seed: seed, Ops: all}
	}
	return nil
}

// ExhaustiveDetector checks the detector built by b under *every* schedule
// of workload wl (n = len(wl) processes, initial value initial).  The limits
// bound execution length and (optionally) the number of schedules; exceeding
// them is an error, never a silent truncation.
func ExhaustiveDetector(b DetectorBuilder, initial Word, wl DetectorWorkload, limits sim.ExploreLimits) (*Report, error) {
	total := newReport()
	spec := check.ABADetectSpec{N: len(wl), Initial0: initial}
	var current *detRun
	build := func() (*sim.Runner, error) {
		run, err := newDetectorRun(b, wl)
		if err != nil {
			return nil, err
		}
		current = run
		return run.runner, nil
	}
	_, err := sim.Explore(build, limits, func(r *sim.Runner, schedule []int) error {
		return checkRun(r, spec, current.report, total, schedule, 0)
	})
	return total, err
}

// RandomDetector checks the detector under `runs` seeded random schedules
// (seeds seedBase, seedBase+1, ...).
func RandomDetector(b DetectorBuilder, initial Word, wl DetectorWorkload, runs int, seedBase int64, maxSteps int) (*Report, error) {
	total := newReport()
	spec := check.ABADetectSpec{N: len(wl), Initial0: initial}
	for i := 0; i < runs; i++ {
		seed := seedBase + int64(i)
		run, err := newDetectorRun(b, wl)
		if err != nil {
			return total, err
		}
		_, err = run.runner.Run(sim.NewRandom(seed), maxSteps)
		if err == nil && !run.runner.AllDone() {
			err = fmt.Errorf("verify: run with seed %d did not finish within %d steps", seed, maxSteps)
		}
		if err == nil {
			err = checkRun(run.runner, spec, run.report, total, nil, seed)
		}
		run.runner.Close()
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// LLOpKind selects the LL/SC/VL operation of a workload entry.
type LLOpKind byte

// Workload operation kinds.
const (
	// OpLL is an LL().
	OpLL LLOpKind = 'L'
	// OpSC is an SC(value).
	OpSC LLOpKind = 'S'
	// OpVL is a VL().
	OpVL LLOpKind = 'V'
)

// LLOp is one operation of an LL/SC/VL workload.
type LLOp struct {
	// Kind selects the operation.
	Kind LLOpKind
	// Value is the SC argument.
	Value Word
}

// LL returns an LL() workload op.
func LL() LLOp { return LLOp{Kind: OpLL} }

// SC returns an SC(v) workload op.
func SC(v Word) LLOp { return LLOp{Kind: OpSC, Value: v} }

// VL returns a VL() workload op.
func VL() LLOp { return LLOp{Kind: OpVL} }

// LLSCWorkload assigns each pid (index) its operation sequence.
type LLSCWorkload [][]LLOp

// LLSCBuilder constructs the LL/SC/VL object under test over factory f.
type LLSCBuilder func(f shmem.Factory, n int) (llsc.Object, error)

// newLLSCRun builds a fresh, started runner executing wl against the object
// built by b.
func newLLSCRun(b LLSCBuilder, wl LLSCWorkload) (*detRun, error) {
	n := len(wl)
	runner := sim.NewRunner(n)
	counting := shmem.NewCounting(runner.Factory(), n)
	obj, err := b(counting, n)
	if err != nil {
		runner.Close()
		return nil, err
	}
	run := &detRun{runner: runner, report: newReport()}
	for pid := range wl {
		pid := pid
		ops := wl[pid]
		if len(ops) == 0 {
			continue
		}
		err := runner.SetProgram(pid, func(p *sim.Proc) {
			h, herr := obj.Handle(pid)
			if herr != nil {
				panic(herr)
			}
			for _, op := range ops {
				before := counting.Steps(pid)
				var method string
				switch op.Kind {
				case OpLL:
					method = check.MethodLL
					p.Invoke(method)
					p.Return(h.LL())
				case OpSC:
					method = check.MethodSC
					p.Invoke(method, op.Value)
					p.Return(boolWord(h.SC(op.Value)))
				case OpVL:
					method = check.MethodVL
					p.Invoke(method)
					p.Return(boolWord(h.VL()))
				default:
					panic(fmt.Sprintf("verify: unknown LL/SC op kind %q", op.Kind))
				}
				run.report.observeOp(method, int(counting.Steps(pid)-before))
			}
		})
		if err != nil {
			runner.Close()
			return nil, err
		}
	}
	if err := runner.Start(); err != nil {
		runner.Close()
		return nil, err
	}
	return run, nil
}

func boolWord(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// ExhaustiveLLSC checks the LL/SC/VL object built by b under every schedule
// of workload wl.
func ExhaustiveLLSC(b LLSCBuilder, initial Word, wl LLSCWorkload, limits sim.ExploreLimits) (*Report, error) {
	total := newReport()
	spec := check.LLSCSpec{N: len(wl), Initial0: initial}
	var current *detRun
	build := func() (*sim.Runner, error) {
		run, err := newLLSCRun(b, wl)
		if err != nil {
			return nil, err
		}
		current = run
		return run.runner, nil
	}
	_, err := sim.Explore(build, limits, func(r *sim.Runner, schedule []int) error {
		return checkRun(r, spec, current.report, total, schedule, 0)
	})
	return total, err
}

// RandomLLSC checks the LL/SC/VL object under seeded random schedules.
func RandomLLSC(b LLSCBuilder, initial Word, wl LLSCWorkload, runs int, seedBase int64, maxSteps int) (*Report, error) {
	total := newReport()
	spec := check.LLSCSpec{N: len(wl), Initial0: initial}
	for i := 0; i < runs; i++ {
		seed := seedBase + int64(i)
		run, err := newLLSCRun(b, wl)
		if err != nil {
			return total, err
		}
		_, err = run.runner.Run(sim.NewRandom(seed), maxSteps)
		if err == nil && !run.runner.AllDone() {
			err = fmt.Errorf("verify: run with seed %d did not finish within %d steps", seed, maxSteps)
		}
		if err == nil {
			err = checkRun(run.runner, spec, run.report, total, nil, seed)
		}
		run.runner.Close()
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
