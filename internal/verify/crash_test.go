package verify

import (
	"testing"
)

// The paper's processes may stall forever at any point (the adversary simply
// stops scheduling them); wait-freedom means the survivors are unaffected,
// and linearizability must hold for the observed history with the crashed
// process's operation pending.  These tests crash each process of a
// workload at several points and check every resulting history.

func TestCrashWriterMidOperation(t *testing.T) {
	wl := DetectorWorkload{
		{W(1), W(2), W(3)},
		{R(), R(), R()},
		{R(), W(4), R()},
	}
	for _, tc := range correctDetectors {
		t.Run(tc.name, func(t *testing.T) {
			// Crash the writer after 0, 1, 2, 3 shared steps: 0 = before
			// anything, 1 = mid-DWrite (between GetSeq and the X write for
			// Fig4 — the nastiest point).
			for crashAfter := 0; crashAfter <= 3; crashAfter++ {
				rep, err := CrashRandomDetector(tc.build, 0, wl, 0, crashAfter, 60, 4000+int64(crashAfter), 100000)
				if err != nil {
					t.Fatalf("crashAfter=%d: %v", crashAfter, err)
				}
				if rep.Executions != 60 {
					t.Fatalf("crashAfter=%d: executions = %d", crashAfter, rep.Executions)
				}
			}
		})
	}
}

func TestCrashReaderMidOperation(t *testing.T) {
	wl := DetectorWorkload{
		{W(1), W(2), W(1)},
		{R(), R(), R()},
		{R(), R()},
	}
	for _, tc := range correctDetectors {
		t.Run(tc.name, func(t *testing.T) {
			// Crash reader pid 1 mid-DRead (after 2 of its 4 steps for
			// Fig4: it has announced but not re-read).
			for crashAfter := 1; crashAfter <= 2; crashAfter++ {
				rep, err := CrashRandomDetector(tc.build, 0, wl, 1, crashAfter, 60, 5000+int64(crashAfter), 100000)
				if err != nil {
					t.Fatalf("crashAfter=%d: %v", crashAfter, err)
				}
				if rep.Executions != 60 {
					t.Fatalf("crashAfter=%d: executions = %d", crashAfter, rep.Executions)
				}
			}
		})
	}
}

func TestCrashDoesNotBlockSurvivors(t *testing.T) {
	// Wait-freedom under a crashed peer: even with the writer frozen while
	// poised to write X, every reader completes in its usual step count.
	wl := DetectorWorkload{
		{W(1), W(2)},
		{R(), R(), R(), R()},
	}
	rep, err := CrashRandomDetector(buildRegisterBased, 0, wl, 0, 1, 40, 6000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxOpSteps["DRead"]; got != 4 {
		t.Errorf("reader step complexity changed under a crashed writer: %d", got)
	}
}
