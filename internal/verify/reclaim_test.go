package verify

import (
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/kv"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// Reclamation verification: the deterministic §1 corruption scripts must be
// *prevented* — not detected — by hazard-pointer and epoch reclamation under
// a raw guard, the stalled-process experiment must separate the two schemes
// (hp keeps draining, epoch freezes), and sequential conformance must hold
// with deferred reuse underneath.

func reclaimMakers() []struct {
	name string
	mk   reclaim.Maker
} {
	return []struct {
		name string
		mk   reclaim.Maker
	}{
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
}

// TestReclaimPreventsScenariosWithZeroNearMisses: raw+hp and raw+epoch pass
// the deterministic Stack/QueueABAScenario that raw+none provably corrupts,
// and they do it with zero guard near-misses — reclamation stops the ABA
// the guard never sees, which is exactly the distinction between
// *prevention* (allocation discipline) and *detection* (tag/LL/SC/detector
// machinery) the issue names.
func TestReclaimPreventsScenariosWithZeroNearMisses(t *testing.T) {
	for _, rc := range reclaimMakers() {
		t.Run("stack/raw+"+rc.name, func(t *testing.T) {
			res, err := apps.StackABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(rc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled || res.Corrupt {
				t.Fatalf("fooled=%v corrupt=%v (%s)", res.Fooled, res.Corrupt, res.Detail)
			}
			if res.Guard.NearMisses != 0 {
				t.Errorf("guard near-misses = %d, want 0 (prevention, not detection)", res.Guard.NearMisses)
			}
		})
		t.Run("queue/raw+"+rc.name, func(t *testing.T) {
			res, err := apps.QueueABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(rc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled || res.Corrupt {
				t.Fatalf("fooled=%v corrupt=%v (%s)", res.Fooled, res.Corrupt, res.Detail)
			}
			if res.Guard.NearMisses != 0 {
				t.Errorf("guard near-misses = %d, want 0 (prevention, not detection)", res.Guard.NearMisses)
			}
		})
	}
	// The control arm: the pass-through reclaimer must reproduce the §1
	// corruption under a raw guard.
	res, err := apps.StackABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(reclaim.NewNone))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fooled || !res.Corrupt {
		t.Errorf("raw+none: fooled=%v corrupt=%v, want the corruption back", res.Fooled, res.Corrupt)
	}
}

// TestStalledProcessEpochStallsHPDrains is the robustness separation the
// issue names: with one process stalled inside its window, hp defers only
// the nodes that process protects while everything else keeps draining;
// epoch reclamation freezes — the stalled pin blocks the epoch, nothing
// frees, and the pool eventually exhausts.  Once the straggler moves, epoch
// recovers.
func TestStalledProcessEpochStallsHPDrains(t *testing.T) {
	run := func(t *testing.T, mk reclaim.Maker) (stalledStats, finalStats apps.PoolStats) {
		f := shmem.NewNativeFactory()
		s, err := apps.NewStack(f, 2, 8, apps.Raw, 0, apps.WithReclaimer(mk))
		if err != nil {
			t.Fatal(err)
		}
		victim, err := s.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		churner, err := s.Handle(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if !churner.Push(apps.Word(i)) {
				t.Fatalf("setup push %d failed", i)
			}
		}
		// The victim stalls mid-pop, protection published (hp: a hazard on
		// the top node; epoch: a pin on the current epoch).
		if _, _, empty := victim.PopBegin(); empty {
			t.Fatal("stack unexpectedly empty")
		}
		// The churner keeps working around the stall.
		for i := 0; i < 100; i++ {
			churner.Push(apps.Word(100 + i))
			churner.Pop()
		}
		stalledStats = s.PoolStats()
		// The straggler moves: its commit (win or lose) withdraws the
		// protection, and the churner's next operations drain the backlog.
		victim.PopCommit()
		for i := 0; i < 20; i++ {
			churner.Push(apps.Word(200 + i))
			churner.Pop()
		}
		if a := s.Audit(); a.Corrupt() {
			t.Errorf("audit after recovery: %s", a)
		}
		return stalledStats, s.PoolStats()
	}

	t.Run("hp", func(t *testing.T) {
		stalled, final := run(t, reclaim.NewHazard)
		if stalled.Reclaim.Freed == 0 {
			t.Errorf("hp froze under a stalled process: %s", stalled.Reclaim)
		}
		if d := stalled.Reclaim.Deferred(); d > reclaim.Slots {
			t.Errorf("hp deferred %d nodes under one stalled process, want at most its %d slots", d, reclaim.Slots)
		}
		if final.Reclaim.Freed <= stalled.Reclaim.Freed {
			t.Errorf("hp stopped draining after recovery: %s -> %s", stalled.Reclaim, final.Reclaim)
		}
	})
	t.Run("epoch", func(t *testing.T) {
		stalled, final := run(t, reclaim.NewEpoch)
		if stalled.Reclaim.Freed != 0 {
			t.Errorf("epoch freed %d nodes despite the stalled pin, want 0 (one straggler blocks all reuse)", stalled.Reclaim.Freed)
		}
		if stalled.Exhaustions == 0 {
			t.Error("the frozen pool never reported exhaustion: saturation is invisible")
		}
		if stalled.Reclaim.Stalls == 0 {
			t.Error("blocked reclamation passes were not counted as stalls")
		}
		if final.Reclaim.Freed == 0 {
			t.Errorf("epoch did not recover after the straggler moved: %s", final.Reclaim)
		}
	})
}

// TestConformWithReclamation: sequential scripts (no concurrency, no open
// windows) must conform to the LIFO/FIFO oracles under every protection ×
// reclaimer combination — deferred reuse must never change what a caller
// observes, only when a node index reappears.
func TestConformWithReclamation(t *testing.T) {
	script := conformScript(997, 400)
	for _, prot := range []apps.Protection{apps.Raw, apps.LLSC} {
		for _, rc := range reclaimMakers() {
			name := prot.String() + "+" + rc.name
			t.Run("stack/"+name, func(t *testing.T) {
				s, err := apps.NewStack(shmem.NewNativeFactory(), 3, 4, prot, 0, apps.WithReclaimer(rc.mk))
				if err != nil {
					t.Fatal(err)
				}
				if err := ConformStack(s, script); err != nil {
					t.Error(err)
				}
			})
			t.Run("queue/"+name, func(t *testing.T) {
				q, err := apps.NewQueue(shmem.NewNativeFactory(), 3, 4, prot, 0, apps.WithReclaimer(rc.mk))
				if err != nil {
					t.Fatal(err)
				}
				if err := ConformQueue(q, script); err != nil {
					t.Error(err)
				}
			})
			t.Run("map/"+name, func(t *testing.T) {
				m, err := kv.NewMap(shmem.NewNativeFactory(), 3, 5, 2, prot, 0, apps.WithReclaimer(rc.mk))
				if err != nil {
					t.Fatal(err)
				}
				if err := ConformMap(m, script); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestMapConformAcrossProtectionByReclaimer widens the map's sequential
// conformance to the full canonical protection × reclaimer grid (including
// the explicit pass-through), since the map is the structure whose Put
// success depends on deferred nodes flowing back in time.
func TestMapConformAcrossProtectionByReclaimer(t *testing.T) {
	script := conformScript(1213, 400)
	prots := []struct {
		name    string
		prot    apps.Protection
		tagBits uint
	}{
		{"raw", apps.Raw, 0},
		{"tag16", apps.Tagged, 16},
		{"llsc", apps.LLSC, 0},
		{"detector", apps.Detector, 0},
	}
	schemes := []struct {
		name string
		mk   reclaim.Maker
	}{
		{"none", reclaim.NewNone},
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
	for _, p := range prots {
		for _, rc := range schemes {
			t.Run(p.name+"+"+rc.name, func(t *testing.T) {
				m, err := kv.NewMap(shmem.NewNativeFactory(), 3, 5, 2, p.prot, p.tagBits, apps.WithReclaimer(rc.mk))
				if err != nil {
					t.Fatal(err)
				}
				if err := ConformMap(m, script); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// conformScript generates a deterministic op script (xorshift, like the
// conformance tests').
func conformScript(seed uint32, n int) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = byte(x)
	}
	return out
}
