package verify

import (
	"fmt"

	"abadetect/internal/apps"
	"abadetect/internal/kv"
)

// Structure conformance: run a script of non-overlapping operations against
// a guarded structure and a sequential model in lockstep.  With no
// concurrency the linearization order is the execution order, so every
// response must match the model exactly — the property-test-friendly oracle
// the detector and LL/SC implementations already have, extended to the
// application layer.  Sequential scripts never open an ABA window, so every
// protection regime — the raw foil included — must conform.

// ConformStack interprets script against s and a LIFO model.  Each script
// byte encodes one operation: pid = byte mod n; bit 4 selects Push; the top
// three bits are the pushed value.
func ConformStack(s *apps.Stack, script []byte) error {
	n := s.NumProcs()
	handles := make([]*apps.StackHandle, n)
	for pid := 0; pid < n; pid++ {
		h, err := s.Handle(pid)
		if err != nil {
			return err
		}
		handles[pid] = h
	}
	var model []Word
	for i, code := range script {
		pid := int(code) % n
		if code&0x10 != 0 {
			v := Word(code >> 5)
			ok := handles[pid].Push(v)
			wantOK := len(model) < s.Capacity()
			if ok != wantOK {
				return fmt.Errorf("verify: op %d: p%d.Push(%d) = %v, model (len %d/cap %d) says %v",
					i, pid, v, ok, len(model), s.Capacity(), wantOK)
			}
			if ok {
				model = append(model, v)
			}
		} else {
			v, ok := handles[pid].Pop()
			if !ok {
				if len(model) != 0 {
					return fmt.Errorf("verify: op %d: p%d.Pop() empty, model holds %d values", i, pid, len(model))
				}
				continue
			}
			if len(model) == 0 {
				return fmt.Errorf("verify: op %d: p%d.Pop() = %d from an empty model", i, pid, v)
			}
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if v != want {
				return fmt.Errorf("verify: op %d: p%d.Pop() = %d, model says %d", i, pid, v, want)
			}
		}
	}
	if a := s.Audit(); a.Corrupt() {
		return fmt.Errorf("verify: sequential script corrupted the stack: %s", a)
	}
	return nil
}

// ConformQueue is the FIFO twin of ConformStack: bit 4 selects Enq; the top
// three bits are the enqueued value.
func ConformQueue(q *apps.Queue, script []byte) error {
	n := q.NumProcs()
	handles := make([]*apps.QueueHandle, n)
	for pid := 0; pid < n; pid++ {
		h, err := q.Handle(pid)
		if err != nil {
			return err
		}
		handles[pid] = h
	}
	var model []Word
	for i, code := range script {
		pid := int(code) % n
		if code&0x10 != 0 {
			v := Word(code >> 5)
			ok := handles[pid].Enq(v)
			wantOK := len(model) < q.Capacity()
			if ok != wantOK {
				return fmt.Errorf("verify: op %d: p%d.Enq(%d) = %v, model (len %d/cap %d) says %v",
					i, pid, v, ok, len(model), q.Capacity(), wantOK)
			}
			if ok {
				model = append(model, v)
			}
		} else {
			v, ok := handles[pid].Deq()
			if !ok {
				if len(model) != 0 {
					return fmt.Errorf("verify: op %d: p%d.Deq() empty, model holds %d values", i, pid, len(model))
				}
				continue
			}
			if len(model) == 0 {
				return fmt.Errorf("verify: op %d: p%d.Deq() = %d from an empty model", i, pid, v)
			}
			want := model[0]
			model = model[1:]
			if v != want {
				return fmt.Errorf("verify: op %d: p%d.Deq() = %d, model says %d", i, pid, v, want)
			}
		}
	}
	if a := q.Audit(); a.Corrupt() {
		return fmt.Errorf("verify: sequential script corrupted the queue: %s", a)
	}
	return nil
}

// ConformMap interprets script against m and a Go-map model.  Each script
// byte encodes one operation: pid = byte mod n; bits 5-6 select Put /
// Delete / Get (Get on the remaining codes); bits 2-4 are the key; the
// whole byte is the put value.  A Put needs a free node even to overwrite
// (keys and values are immutable per node), so the model expects success
// exactly while the live count is below capacity — which also exercises the
// reclaimers' deferred-free path: a sequential script must see deferred
// nodes flow back before the allocator reports exhaustion.
func ConformMap(m *kv.Map, script []byte) error {
	n := m.NumProcs()
	handles := make([]*kv.Handle, n)
	for pid := 0; pid < n; pid++ {
		h, err := m.Handle(pid)
		if err != nil {
			return err
		}
		handles[pid] = h
	}
	model := make(map[Word]Word)
	for i, code := range script {
		pid := int(code) % n
		key := Word((code >> 2) & 7)
		switch (code >> 5) & 0x3 {
		case 0:
			v := Word(code)
			ok := handles[pid].Put(key, v)
			wantOK := len(model) < m.Capacity()
			if ok != wantOK {
				return fmt.Errorf("verify: op %d: p%d.Put(%d) = %v, model (live %d/cap %d) says %v",
					i, pid, key, ok, len(model), m.Capacity(), wantOK)
			}
			if ok {
				model[key] = v
			}
		case 1:
			ok := handles[pid].Delete(key)
			_, want := model[key]
			if ok != want {
				return fmt.Errorf("verify: op %d: p%d.Delete(%d) = %v, model says %v", i, pid, key, ok, want)
			}
			delete(model, key)
		default:
			v, ok := handles[pid].Get(key)
			want, present := model[key]
			if ok != present || (present && v != want) {
				return fmt.Errorf("verify: op %d: p%d.Get(%d) = (%d,%v), model says (%d,%v)",
					i, pid, key, v, ok, want, present)
			}
		}
	}
	if a := m.Audit(); a.Corrupt() {
		return fmt.Errorf("verify: sequential script corrupted the map: %s", a)
	}
	return nil
}

// ConformEvent interprets script against e and the signal/reset/poll model.
// Each byte: pid = byte mod n; bits 5-6 select signal / reset / poll (poll
// on the remaining codes).
//
// With exact=true the flag's fired result must equal the exact-detection
// model: set now, or any write since this pid's previous poll (the
// semantics every LL/SC- or detector-guarded flag realizes, and a
// wide-enough tag within the script length).  With exact=false the model is
// the raw register's: set now, or a *visibly changed* value — precisely
// what a plain register can and cannot see, so even the §1 foil conforms to
// its own (weaker) specification.
func ConformEvent(e *apps.EventFlag, script []byte, exact bool) error {
	n := e.NumProcs()
	handles := make([]*apps.EventHandle, n)
	for pid := 0; pid < n; pid++ {
		h, err := e.Handle(pid)
		if err != nil {
			return err
		}
		handles[pid] = h
	}
	flag := false
	writesAt := 0                    // total writes so far
	lastPollWrites := make([]int, n) // writes seen at pid's previous poll
	lastPollValue := make([]bool, n) // flag value at pid's previous poll
	polled := make([]bool, n)
	for i, code := range script {
		pid := int(code) % n
		switch (code >> 5) & 0x3 {
		case 0:
			handles[pid].Signal()
			flag = true
			writesAt++
		case 1:
			handles[pid].Reset()
			flag = false
			writesAt++
		default:
			set, fired := handles[pid].Poll()
			if set != flag {
				return fmt.Errorf("verify: op %d: p%d.Poll() set=%v, model says %v", i, pid, set, flag)
			}
			// The fired flag is only specified relative to a previous poll;
			// a handle's very first poll just establishes the baseline.
			if polled[pid] {
				var want bool
				if exact {
					want = flag || writesAt > lastPollWrites[pid]
				} else {
					want = flag || flag != lastPollValue[pid]
				}
				if fired != want {
					return fmt.Errorf("verify: op %d: p%d.Poll() fired=%v, model (exact=%v) says %v",
						i, pid, fired, exact, want)
				}
			}
			lastPollWrites[pid] = writesAt
			lastPollValue[pid] = flag
			polled[pid] = true
		}
	}
	return nil
}
