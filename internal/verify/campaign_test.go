package verify

import (
	"testing"
)

// Heavy randomized campaigns for the bounded LL/SC constructions, aimed at
// their specific hazards:
//
//   - ConstantTime's announcement race: a reader's link triple can be
//     retired and re-installed between its first read and its announcement;
//     correctness rests on the GetSeq recycling discipline (reservation +
//     usedQ + announce scans).  Long same-value workloads drive the tiny
//     sequence domain (2n+2 = 6 values at n=2) through many full cycles
//     while ABA-shaped SC patterns hammer the link.
//   - Figure 3's bit counting (Claim 6): interleaved LLs clearing bits and
//     SCs setting all of them.
//
// Every execution is checked for linearizability, so any schedule that
// slips a stale SC through fails the test with a replayable seed.

func TestCampaignConstantTimeSameValueCycles(t *testing.T) {
	// All SCs install the same value: only (pid, seq) metadata can protect
	// the links.  45 ops per process, ~20 SCs each: several domain cycles.
	mk := func() LLSCWorkload {
		procOps := func() []LLOp {
			var ops []LLOp
			for i := 0; i < 15; i++ {
				ops = append(ops, LL(), SC(1), VL())
			}
			return ops
		}
		return LLSCWorkload{procOps(), procOps()}
	}
	rep, err := RandomLLSC(buildConstantTimeLLSC, 0, mk(), 400, 31000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 400 {
		t.Fatalf("executions = %d", rep.Executions)
	}
	if got := rep.MaxOpSteps["LL"]; got > 5 {
		t.Errorf("LL exceeded its constant bound: %d steps", got)
	}
	if got := rep.MaxOpSteps["SC"]; got > 2 {
		t.Errorf("SC exceeded its constant bound: %d steps", got)
	}
}

func TestCampaignConstantTimeThreeProcs(t *testing.T) {
	mk := func() LLSCWorkload {
		procOps := func(v Word) []LLOp {
			var ops []LLOp
			for i := 0; i < 8; i++ {
				ops = append(ops, LL(), SC(v), LL(), VL(), SC(v))
			}
			return ops
		}
		return LLSCWorkload{procOps(1), procOps(1), procOps(2)}
	}
	rep, err := RandomLLSC(buildConstantTimeLLSC, 0, mk(), 250, 32000, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 250 {
		t.Fatalf("executions = %d", rep.Executions)
	}
}

func TestCampaignFig3BitJuggling(t *testing.T) {
	// Dense LL/SC/VL mixes at n=3: every LL clears a bit, every successful
	// SC sets all of them; Claim 6's counting argument is what keeps the
	// n-failure exits honest.
	mk := func() LLSCWorkload {
		procOps := func(v Word) []LLOp {
			var ops []LLOp
			for i := 0; i < 10; i++ {
				ops = append(ops, LL(), VL(), SC(v))
			}
			return ops
		}
		return LLSCWorkload{procOps(1), procOps(2), procOps(1)}
	}
	rep, err := RandomLLSC(buildCASBasedLLSC, 0, mk(), 250, 33000, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 250 {
		t.Fatalf("executions = %d", rep.Executions)
	}
	// n=3: every op within 2n+1 = 7 steps.
	for _, m := range []string{"LL", "SC"} {
		if got := rep.MaxOpSteps[m]; got > 7 {
			t.Errorf("%s exceeded 2n+1: %d steps", m, got)
		}
	}
}

func TestCampaignFig4MultiWriterStorm(t *testing.T) {
	// Every process both writes and reads; sequence numbers recycle dozens
	// of times; announcements chase a moving X.
	mk := func() DetectorWorkload {
		procOps := func(v Word) []DetOp {
			var ops []DetOp
			for i := 0; i < 12; i++ {
				ops = append(ops, W(v), R(), W(v))
			}
			return ops
		}
		return DetectorWorkload{procOps(1), procOps(1), procOps(2)}
	}
	rep, err := RandomDetector(buildRegisterBased, 0, mk(), 250, 34000, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 250 {
		t.Fatalf("executions = %d", rep.Executions)
	}
	if rep.MaxOpSteps["DWrite"] != 2 || rep.MaxOpSteps["DRead"] != 4 {
		t.Errorf("step complexity drifted: %v", rep.MaxOpSteps)
	}
}
