package verify

import (
	"math/rand"
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/kv"
	"abadetect/internal/registry"
	"abadetect/internal/shmem"
)

// randomScript generates a reproducible operation script.
func randomScript(seed int64, ops int) []byte {
	rng := rand.New(rand.NewSource(seed))
	script := make([]byte, ops)
	rng.Read(script)
	return script
}

// TestConformStackMatrix runs random sequential scripts against the stack
// under every conditional guard spec; without concurrency there is no ABA
// window, so even the raw foil must track the LIFO model exactly.
func TestConformStackMatrix(t *testing.T) {
	const n = 3
	for _, spec := range registry.GuardSpecs(true) {
		for _, guarded := range []bool{false, true} {
			name := spec.String()
			if guarded {
				name += "/guardedpool"
			}
			t.Run(name, func(t *testing.T) {
				for seed := int64(0); seed < 8; seed++ {
					f := shmem.NewNativeFactory()
					mk, err := registry.NewGuardMaker(f, n, spec)
					if err != nil {
						t.Fatal(err)
					}
					opts := []apps.StructOption{apps.WithMaker(mk)}
					if guarded {
						opts = append(opts, apps.WithGuardedPool())
					}
					s, err := apps.NewStack(f, n, 5, 0, 0, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if err := ConformStack(s, randomScript(900+seed, 400)); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestConformQueueMatrix is the FIFO twin.
func TestConformQueueMatrix(t *testing.T) {
	const n = 3
	for _, spec := range registry.GuardSpecs(true) {
		t.Run(spec.String(), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				f := shmem.NewNativeFactory()
				mk, err := registry.NewGuardMaker(f, n, spec)
				if err != nil {
					t.Fatal(err)
				}
				q, err := apps.NewQueue(f, n, 5, 0, 0, apps.WithMaker(mk))
				if err != nil {
					t.Fatal(err)
				}
				if err := ConformQueue(q, randomScript(1700+seed, 400)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestConformMapMatrix runs random sequential scripts against the map under
// every conditional guard spec, with and without the guarded free list;
// without concurrency there is no ABA window, so even the raw foil must
// track the key-value model exactly — capacity edge (an overwrite needs a
// free node) included.
func TestConformMapMatrix(t *testing.T) {
	const n = 3
	for _, spec := range registry.GuardSpecs(true) {
		for _, guarded := range []bool{false, true} {
			name := spec.String()
			if guarded {
				name += "/guardedpool"
			}
			t.Run(name, func(t *testing.T) {
				for seed := int64(0); seed < 8; seed++ {
					f := shmem.NewNativeFactory()
					mk, err := registry.NewGuardMaker(f, n, spec)
					if err != nil {
						t.Fatal(err)
					}
					opts := []apps.StructOption{apps.WithMaker(mk)}
					if guarded {
						opts = append(opts, apps.WithGuardedPool())
					}
					m, err := kv.NewMap(f, n, 5, 2, 0, 0, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if err := ConformMap(m, randomScript(2600+seed, 400)); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestConformEventMatrix checks every guard spec of the full (event)
// matrix against its own specification: the exact-detection model for
// LL/SC-, detector-, and wide-tag-guarded flags, the visible-change model
// for the raw baseline.  The 1-bit bounded-tag foil conforms to neither and
// is asserted to *fail* the exact model — its unsoundness is registered, not
// accidental.
func TestConformEventMatrix(t *testing.T) {
	const n = 3
	build := func(spec registry.GuardSpec) *apps.EventFlag {
		t.Helper()
		f := shmem.NewNativeFactory()
		mk, err := registry.NewGuardMaker(f, n, spec)
		if err != nil {
			t.Fatal(err)
		}
		e, err := apps.NewProtectedEventFlag(f, n, 0, 0, apps.WithMaker(mk))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, spec := range registry.GuardSpecs(false) {
		im, registered := registry.Lookup(spec.ImplID)
		foil := registered && !im.Correct
		exact := spec.Regime != guard.Raw && !foil
		t.Run(spec.String(), func(t *testing.T) {
			if foil {
				// The 2^k-write wraparound must eventually break the exact
				// model on a long enough script.
				failed := false
				for seed := int64(0); seed < 16 && !failed; seed++ {
					failed = ConformEvent(build(spec), randomScript(2500+seed, 600), true) != nil
				}
				if !failed {
					t.Fatal("bounded-tag foil conformed to exact detection on every script")
				}
				return
			}
			for seed := int64(0); seed < 8; seed++ {
				if err := ConformEvent(build(spec), randomScript(2500+seed, 400), exact); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
