package verify

import (
	"fmt"

	"abadetect/internal/check"
	"abadetect/internal/shmem"
)

// Sequential conformance: run a script of non-overlapping operations against
// the implementation and the sequential specification in lockstep.  With no
// concurrency, the linearization order is the execution order, so every
// response must match the spec exactly — a cheap, property-test-friendly
// oracle that exercises long arbitrary operation mixes.

// ConformDetector interprets script against a fresh detector built by b for
// n processes and the ABADetectSpec.  Each script byte encodes one
// operation: pid = byte mod n; bit 4 selects DWrite; the top three bits are
// the written value.
func ConformDetector(b DetectorBuilder, n int, script []byte) error {
	d, err := b(shmem.NewNativeFactory(), n)
	if err != nil {
		return err
	}
	handles := make([]interface {
		DWrite(Word)
		DRead() (Word, bool)
	}, n)
	for pid := 0; pid < n; pid++ {
		h, err := d.Handle(pid)
		if err != nil {
			return err
		}
		handles[pid] = h
	}
	st := check.ABADetectSpec{N: n}.Initial()
	for i, code := range script {
		pid := int(code) % n
		if code&0x10 != 0 {
			v := Word(code >> 5)
			handles[pid].DWrite(v)
			next, ok := st.Apply(check.Op{Pid: pid, Method: check.MethodDWrite, Args: []uint64{v}})
			if !ok {
				return fmt.Errorf("verify: op %d: spec rejected DWrite(%d)", i, v)
			}
			st = next
		} else {
			v, dirty := handles[pid].DRead()
			next, ok := st.Apply(check.Op{
				Pid: pid, Method: check.MethodDRead,
				Rets: []uint64{v, boolWord(dirty)},
			})
			if !ok {
				return fmt.Errorf("verify: op %d: p%d.DRead() = (%d,%v) contradicts the sequential spec (state %s)",
					i, pid, v, dirty, st.Key())
			}
			st = next
		}
	}
	return nil
}

// ConformLLSC interprets script against a fresh LL/SC/VL object built by b
// and the LLSCSpec.  Each script byte: pid = byte mod n; bits 3-4 select
// LL / SC / VL; the top three bits are the SC value.
func ConformLLSC(b LLSCBuilder, n int, script []byte) error {
	obj, err := b(shmem.NewNativeFactory(), n)
	if err != nil {
		return err
	}
	handles := make([]interface {
		LL() Word
		SC(Word) bool
		VL() bool
	}, n)
	for pid := 0; pid < n; pid++ {
		h, err := obj.Handle(pid)
		if err != nil {
			return err
		}
		handles[pid] = h
	}
	st := check.LLSCSpec{N: n}.Initial()
	for i, code := range script {
		pid := int(code) % n
		var op check.Op
		var desc string
		switch (code >> 3) & 0x3 {
		case 0, 3:
			v := handles[pid].LL()
			op = check.Op{Pid: pid, Method: check.MethodLL, Rets: []uint64{v}}
			desc = fmt.Sprintf("LL() = %d", v)
		case 1:
			v := Word(code >> 5)
			ok := handles[pid].SC(v)
			op = check.Op{Pid: pid, Method: check.MethodSC, Args: []uint64{v}, Rets: []uint64{boolWord(ok)}}
			desc = fmt.Sprintf("SC(%d) = %v", v, ok)
		case 2:
			ok := handles[pid].VL()
			op = check.Op{Pid: pid, Method: check.MethodVL, Rets: []uint64{boolWord(ok)}}
			desc = fmt.Sprintf("VL() = %v", ok)
		}
		next, ok := st.Apply(op)
		if !ok {
			return fmt.Errorf("verify: op %d: p%d.%s contradicts the sequential spec (state %s)",
				i, pid, desc, st.Key())
		}
		st = next
	}
	return nil
}
