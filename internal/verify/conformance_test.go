package verify

import (
	"testing"
	"testing/quick"
)

func TestConformanceDetectorsQuick(t *testing.T) {
	// Property: every correct detector agrees with the sequential spec on
	// every non-overlapping operation script.
	for _, tc := range correctDetectors {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 5} {
				n := n
				prop := func(script []byte) bool {
					if err := ConformDetector(tc.build, n, script); err != nil {
						t.Log(err)
						return false
					}
					return true
				}
				cfg := &quick.Config{MaxCount: 60}
				if err := quick.Check(prop, cfg); err != nil {
					t.Errorf("n=%d: %v", n, err)
				}
			}
		})
	}
}

func TestConformanceLLSCQuick(t *testing.T) {
	for _, tc := range correctLLSC {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 5} {
				n := n
				prop := func(script []byte) bool {
					if err := ConformLLSC(tc.build, n, script); err != nil {
						t.Log(err)
						return false
					}
					return true
				}
				cfg := &quick.Config{MaxCount: 60}
				if err := quick.Check(prop, cfg); err != nil {
					t.Errorf("n=%d: %v", n, err)
				}
			}
		})
	}
}

func TestConformanceLongScripts(t *testing.T) {
	// Push the bounded machinery through many domain cycles with fixed long
	// pseudo-random scripts.
	script := make([]byte, 4000)
	x := uint32(0x9e3779b9)
	for i := range script {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		script[i] = byte(x)
	}
	for _, tc := range correctDetectors {
		if err := ConformDetector(tc.build, 3, script); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	for _, tc := range correctLLSC {
		if err := ConformLLSC(tc.build, 3, script); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestConformanceCatchesBoundedTag(t *testing.T) {
	// The conformance oracle must reject the bounded-tag register on the
	// wraparound script: writes of value 0, 2^k of them, between two reads
	// by the same process.
	build := buildBoundedTag1 // wraps every 2 writes
	// pid layout for n=2: even bytes -> pid 0, odd -> pid 1.
	// read by p1, write, write (value 0), read by p1.
	script := []byte{
		0x01,       // p1.DRead
		0x10, 0x10, // p0.DWrite(0) twice: tag wraps
		0x01, // p1.DRead — sees the same word, reports clean: WRONG
	}
	if err := ConformDetector(build, 2, script); err == nil {
		t.Fatal("conformance accepted the bounded-tag wraparound miss")
	}
}
