package verify

import (
	"errors"
	"testing"

	"abadetect/internal/core"
	"abadetect/internal/llsc"
	"abadetect/internal/registry"
	"abadetect/internal/shmem"
	"abadetect/internal/sim"
)

// The implementations under verification come from the registry: anything
// registered as correct is checked by every harness in this package, so a
// new implementation is covered by adding its registry entry.  All builders
// use a 4-bit value domain to keep the exhaustive state spaces small.

func registryDetectorBuilder(id string) DetectorBuilder {
	im := registry.MustLookup(id)
	return func(f shmem.Factory, n int) (core.Detector, error) {
		return im.NewDetector(f, n, 4, 0)
	}
}

func registryLLSCBuilder(id string) LLSCBuilder {
	im := registry.MustLookup(id)
	return func(f shmem.Factory, n int) (llsc.Object, error) {
		return im.NewLLSC(f, n, 4, 0)
	}
}

// Named builders for the tests that target one specific implementation.
var (
	buildRegisterBased = registryDetectorBuilder("fig4")
	buildBoundedTag1   = registryDetectorBuilder("boundedtag1") // wraps every 2 writes
)

type implCase struct {
	name  string
	build DetectorBuilder
}

var correctDetectors = func() []implCase {
	var cases []implCase
	for _, im := range registry.Detectors() {
		if im.Correct {
			cases = append(cases, implCase{im.ID, registryDetectorBuilder(im.ID)})
		}
	}
	return cases
}()

// limits generous enough for the workloads below, tight enough to catch a
// combinatorial mistake instead of hanging the test suite.
func smallLimits() sim.ExploreLimits {
	return sim.ExploreLimits{MaxSteps: 200, MaxExecutions: 400000}
}

func TestExhaustiveDetectorTwoProcs(t *testing.T) {
	// One writer (2 writes), one reader (2 reads): every interleaving.
	wl := DetectorWorkload{
		{W(1), W(2)},
		{R(), R()},
	}
	for _, tc := range correctDetectors {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ExhaustiveDetector(tc.build, 0, wl, smallLimits())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Executions < 6 {
				t.Errorf("only %d executions explored", rep.Executions)
			}
			t.Logf("executions=%d maxSteps=%v", rep.Executions, rep.MaxOpSteps)
		})
	}
}

func TestExhaustiveDetectorABAWriteBack(t *testing.T) {
	// The ABA pattern under every schedule: value returns to 1 while the
	// reader is poised.  Kept small for the loop-prone implementations.
	fixedStep := DetectorWorkload{
		{W(1), W(2), W(1)},
		{R(), R()},
	}
	small := DetectorWorkload{
		{W(1), W(1)}, // same value twice: only metadata can reveal it
		{R(), R()},
	}
	for _, tc := range correctDetectors {
		wl := small
		if tc.name == "fig4" || tc.name == "unbounded" {
			wl = fixedStep
		}
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ExhaustiveDetector(tc.build, 0, wl, smallLimits())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("executions=%d", rep.Executions)
		})
	}
}

func TestExhaustiveDetectorThreeProcs(t *testing.T) {
	// Two writers (one of them also reads) and a reader, for the detectors
	// with schedule-independent step counts.
	wl := DetectorWorkload{
		{W(1)},
		{R(), W(2)},
		{R()},
	}
	for _, tc := range correctDetectors {
		if tc.name != "fig4" && tc.name != "unbounded" {
			continue // loop-prone: covered by random schedules below
		}
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ExhaustiveDetector(tc.build, 0, wl, smallLimits())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("executions=%d", rep.Executions)
		})
	}
}

func TestExhaustiveFindsBoundedTagViolation(t *testing.T) {
	// Negative control for the whole pipeline: with a 1-bit tag, two writes
	// wrap the tag; some schedule must produce a missed detection.  This is
	// Theorem 1(a) made concrete: one bounded register cannot suffice.
	// Two writes of the initial value: the stored word walks
	// (0,tag0) -> (0,tag1) -> (0,tag0) and is back exactly where the reader
	// saw it.
	wl := DetectorWorkload{
		{W(0), W(0)},
		{R(), R()},
	}
	_, err := ExhaustiveDetector(buildBoundedTag1, 0, wl, smallLimits())
	if err == nil {
		t.Fatal("expected a linearizability violation for the 1-bit tag register")
	}
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("want ViolationError, got %v", err)
	}
	if len(v.Schedule) == 0 || len(v.Ops) == 0 {
		t.Errorf("violation lacks schedule or history: %v", v)
	}
	t.Logf("counterexample found:\n%v", v)
}

func TestRegisterBasedStepComplexityUnderAllSchedules(t *testing.T) {
	// Theorem 3's O(1) verified across every explored schedule: DWrite = 2
	// steps, DRead = 4 steps, no schedule can stretch them.
	wl := DetectorWorkload{
		{W(1)},
		{R()},
		{W(2), R()},
	}
	rep, err := ExhaustiveDetector(buildRegisterBased, 0, wl, smallLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxOpSteps["DWrite"]; got != 2 {
		t.Errorf("worst-case DWrite steps = %d, want 2", got)
	}
	if got := rep.MaxOpSteps["DRead"]; got != 4 {
		t.Errorf("worst-case DRead steps = %d, want 4", got)
	}
}

func TestRandomDetectorLongerWorkloads(t *testing.T) {
	wl := DetectorWorkload{
		{W(1), W(2), W(3), W(1), W(2), W(1)},
		{R(), R(), R(), R(), R(), R()},
		{W(4), R(), W(5), R(), W(4), R()},
	}
	for _, tc := range correctDetectors {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := RandomDetector(tc.build, 0, wl, 300, 1000, 100000)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Executions != 300 {
				t.Errorf("executions = %d, want 300", rep.Executions)
			}
		})
	}
}

// LL/SC/VL verification.

var (
	buildCASBasedLLSC     = registryLLSCBuilder("fig3")
	buildConstantTimeLLSC = registryLLSCBuilder("constant")
)

type llscCase struct {
	name  string
	build LLSCBuilder
}

var correctLLSC = func() []llscCase {
	var cases []llscCase
	for _, im := range registry.LLSCs() {
		if im.Correct {
			cases = append(cases, llscCase{im.ID, registryLLSCBuilder(im.ID)})
		}
	}
	return cases
}()

func TestExhaustiveLLSCTwoProcs(t *testing.T) {
	wl := LLSCWorkload{
		{LL(), SC(1)},
		{LL(), SC(2)},
	}
	for _, tc := range correctLLSC {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ExhaustiveLLSC(tc.build, 0, wl, smallLimits())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("executions=%d maxSteps=%v", rep.Executions, rep.MaxOpSteps)
		})
	}
}

func TestExhaustiveLLSCWithVL(t *testing.T) {
	wl := LLSCWorkload{
		{LL(), VL(), SC(1)},
		{LL(), SC(2)},
	}
	for _, tc := range correctLLSC {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ExhaustiveLLSC(tc.build, 0, wl, smallLimits())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("executions=%d", rep.Executions)
		})
	}
}

func TestExhaustiveLLSCSameValueReinstall(t *testing.T) {
	// SCs that reinstall the same value: the bit/announcement machinery,
	// not the value, must carry the detection.
	wl := LLSCWorkload{
		{LL(), SC(1), SC(1)},
		{LL(), VL(), SC(1)},
	}
	for _, tc := range correctLLSC {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ExhaustiveLLSC(tc.build, 0, wl, smallLimits())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("executions=%d", rep.Executions)
		})
	}
}

func TestRandomLLSCThreeProcs(t *testing.T) {
	wl := LLSCWorkload{
		{LL(), SC(1), LL(), SC(2), VL()},
		{LL(), SC(3), VL(), LL(), SC(4)},
		{LL(), VL(), LL(), SC(5), VL()},
	}
	for _, tc := range correctLLSC {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := RandomLLSC(tc.build, 0, wl, 300, 2000, 100000)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Executions != 300 {
				t.Errorf("executions = %d, want 300", rep.Executions)
			}
		})
	}
}

func TestFig3StepComplexityBoundUnderAllSchedules(t *testing.T) {
	// Theorem 2's O(n): for n=2, LL <= 2n+1 = 5 steps, SC <= 2n+1, VL = 1,
	// under every explored schedule.
	wl := LLSCWorkload{
		{LL(), SC(1), VL()},
		{LL(), SC(2)},
	}
	rep, err := ExhaustiveLLSC(buildCASBasedLLSC, 0, wl, smallLimits())
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	bound := 2*n + 1
	for _, m := range []string{"LL", "SC"} {
		if got := rep.MaxOpSteps[m]; got > bound {
			t.Errorf("worst-case %s steps = %d, exceeds 2n+1 = %d", m, got, bound)
		}
	}
	if got := rep.MaxOpSteps["VL"]; got != 1 {
		t.Errorf("worst-case VL steps = %d, want 1", got)
	}
}

func TestConstantTimeStepBoundUnderAllSchedules(t *testing.T) {
	// The announcement construction's O(1): LL <= 5, SC <= 2, VL <= 1,
	// regardless of schedule.
	wl := LLSCWorkload{
		{LL(), SC(1), VL()},
		{LL(), SC(2)},
	}
	rep, err := ExhaustiveLLSC(buildConstantTimeLLSC, 0, wl, smallLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxOpSteps["LL"]; got > 5 {
		t.Errorf("worst-case LL steps = %d, want <= 5", got)
	}
	if got := rep.MaxOpSteps["SC"]; got > 2 {
		t.Errorf("worst-case SC steps = %d, want <= 2", got)
	}
	if got := rep.MaxOpSteps["VL"]; got > 1 {
		t.Errorf("worst-case VL steps = %d, want <= 1", got)
	}
}

func TestMoirBoundedTagIsBroken(t *testing.T) {
	// A Moir object with a 1-bit tag is the bounded-tag fallacy for LL/SC:
	// two successful same-value SCs restore the linked word exactly, and
	// some schedule lets a stale SC/VL succeed.
	build := func(f shmem.Factory, n int) (llsc.Object, error) {
		return llsc.NewMoirTagged(f, n, 4, 1, 0)
	}
	wl := LLSCWorkload{
		{LL(), VL(), VL(), SC(9)},
		{LL(), SC(0), LL(), SC(0)}, // two wrapping SCs of the initial value
	}
	_, err := ExhaustiveLLSC(build, 0, wl, smallLimits())
	if err == nil {
		t.Fatal("expected a violation for 1-bit-tag Moir LL/SC")
	}
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("want ViolationError, got %v", err)
	}
	t.Logf("counterexample found:\n%v", v)
}
