package getseq

import (
	"testing"

	"abadetect/internal/shmem"
)

func newEnv(t *testing.T, n int) (shmem.TripleCodec, []shmem.Register) {
	t.Helper()
	codec, err := shmem.NewTripleCodec(n, 1, 2*n+2)
	if err != nil {
		t.Fatal(err)
	}
	f := shmem.NewNativeFactory()
	a := make([]shmem.Register, n)
	for i := range a {
		a[i] = f.NewRegister("A", codec.Bottom())
	}
	return codec, a
}

func TestNewValidation(t *testing.T) {
	codec, a := newEnv(t, 3)
	if _, err := New(-1, 3, codec, a); err == nil {
		t.Error("want error for negative pid")
	}
	if _, err := New(3, 3, codec, a); err == nil {
		t.Error("want error for pid == n")
	}
	if _, err := New(0, 3, codec, a[:2]); err == nil {
		t.Error("want error for short announce array")
	}
	small, err := shmem.NewTripleCodec(3, 1, 4) // 4 < 2n+2 = 8
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, 3, small, a); err == nil {
		t.Error("want error for too-small seq domain")
	}
	if _, err := New(0, 3, codec, a); err != nil {
		t.Errorf("valid New failed: %v", err)
	}
}

func TestNewUncheckedPanics(t *testing.T) {
	codec, a := newEnv(t, 3)
	defer func() {
		if recover() == nil {
			t.Error("want panic from NewUnchecked with bad pid")
		}
	}()
	NewUnchecked(99, 3, codec, a)
}

func TestNextStaysInDomain(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		codec, a := newEnv(t, n)
		p, err := New(0, n, codec, a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10*n+50; i++ {
			s := p.Next()
			if s < 0 || s >= 2*n+2 {
				t.Fatalf("n=%d: Next() = %d outside [0,%d)", n, s, 2*n+2)
			}
		}
	}
}

func TestNoReuseWithinWindow(t *testing.T) {
	// Claim 2: two returns of the same sequence number are separated by at
	// least n complete GetSeq calls.  Our ring gives n+1.
	for _, n := range []int{1, 2, 3, 5, 8} {
		codec, a := newEnv(t, n)
		p, err := New(0, n, codec, a)
		if err != nil {
			t.Fatal(err)
		}
		lastAt := make(map[int]int)
		for i := 0; i < 50*(n+1); i++ {
			s := p.Next()
			if prev, seen := lastAt[s]; seen {
				if gap := i - prev - 1; gap < n {
					t.Fatalf("n=%d: seq %d reused after only %d intervening calls", n, s, gap)
				}
			}
			lastAt[s] = i
		}
	}
}

func TestCursorRotates(t *testing.T) {
	n := 4
	codec, a := newEnv(t, n)
	p, err := New(1, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*n; i++ {
		if got, want := p.Cursor(), i%n; got != want {
			t.Fatalf("call %d: cursor = %d, want %d", i, got, want)
		}
		p.Next()
	}
}

func TestAnnouncedSeqAvoided(t *testing.T) {
	// Once a scan observes A[q] = (pid, s), Next must not return s until a
	// later scan of A[q] sees a different announcement.
	n := 3
	codec, a := newEnv(t, n)
	const me = 0
	p, err := New(me, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}

	const blocked = 5
	a[1].Write(1, codec.EncodePair(me, blocked))

	// Run enough calls for several full scans; blocked must never appear.
	for i := 0; i < 10*n; i++ {
		if s := p.Next(); s == blocked {
			// Only acceptable before the first scan of A[1] completes.
			if i >= 1 { // cursor 0 scanned at call 0, A[1] scanned at call 1
				t.Fatalf("call %d returned announced seq %d", i, blocked)
			}
		}
	}

	// Clear the announcement; after the next scan of A[1] the seq becomes
	// available again (once it also leaves the usedQ window).
	a[1].Write(1, codec.Bottom())
	seen := false
	for i := 0; i < 10*(n+1); i++ {
		if p.Next() == blocked {
			seen = true
			break
		}
	}
	if !seen {
		t.Error("seq never became available after announcement cleared")
	}
}

func TestAnnouncementsOfOthersIgnored(t *testing.T) {
	// Announcements naming a different writer must not block this picker.
	n := 2
	codec, a := newEnv(t, n)
	p, err := New(0, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	a[0].Write(0, codec.EncodePair(1, 2)) // pid 1's pair
	a[1].Write(1, codec.EncodePair(1, 3))
	returned := make(map[int]bool)
	for i := 0; i < 4*(n+1); i++ {
		returned[p.Next()] = true
	}
	if !returned[2] || !returned[3] {
		t.Errorf("seqs announced for another pid were avoided: returned=%v", returned)
	}
}

func TestAllSeqValuesEventuallyUsed(t *testing.T) {
	// With no announcements, the picker cycles through the whole domain.
	n := 4
	codec, a := newEnv(t, n)
	p, err := New(2, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	returned := make(map[int]bool)
	for i := 0; i < 10*(2*n+2); i++ {
		returned[p.Next()] = true
	}
	if len(returned) != 2*n+2 {
		t.Errorf("used %d distinct seqs, want %d", len(returned), 2*n+2)
	}
}

func TestDomainNeverExhausted(t *testing.T) {
	// Even with every announce slot blocking a distinct seq for this pid,
	// Next always finds a value (domain 2n+2 > n + n+1).
	n := 5
	codec, a := newEnv(t, n)
	p, err := New(0, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < n; q++ {
		a[q].Write(q, codec.EncodePair(0, q)) // block seqs 0..n-1
	}
	for i := 0; i < 5*(2*n+2); i++ {
		s := p.Next()
		if i >= n && s < n {
			// After one full scan all announced seqs are known-blocked.
			t.Fatalf("call %d returned blocked seq %d", i, s)
		}
	}
}
