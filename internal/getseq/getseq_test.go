package getseq

import (
	"testing"

	"abadetect/internal/shmem"
)

func newEnv(t *testing.T, n int) (shmem.TripleCodec, []shmem.Register) {
	t.Helper()
	codec, err := shmem.NewTripleCodec(n, 1, 2*n+2)
	if err != nil {
		t.Fatal(err)
	}
	f := shmem.NewNativeFactory()
	a := make([]shmem.Register, n)
	for i := range a {
		a[i] = f.NewRegister("A", codec.Bottom())
	}
	return codec, a
}

func TestNewValidation(t *testing.T) {
	codec, a := newEnv(t, 3)
	if _, err := New(-1, 3, codec, a); err == nil {
		t.Error("want error for negative pid")
	}
	if _, err := New(3, 3, codec, a); err == nil {
		t.Error("want error for pid == n")
	}
	if _, err := New(0, 3, codec, a[:2]); err == nil {
		t.Error("want error for short announce array")
	}
	small, err := shmem.NewTripleCodec(3, 1, 4) // 4 < 2n+2 = 8
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, 3, small, a); err == nil {
		t.Error("want error for too-small seq domain")
	}
	if _, err := New(0, 3, codec, a); err != nil {
		t.Errorf("valid New failed: %v", err)
	}
}

func TestNewUncheckedPanics(t *testing.T) {
	codec, a := newEnv(t, 3)
	defer func() {
		if recover() == nil {
			t.Error("want panic from NewUnchecked with bad pid")
		}
	}()
	NewUnchecked(99, 3, codec, a)
}

func TestNextStaysInDomain(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		codec, a := newEnv(t, n)
		p, err := New(0, n, codec, a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10*n+50; i++ {
			s := p.Next()
			if s < 0 || s >= 2*n+2 {
				t.Fatalf("n=%d: Next() = %d outside [0,%d)", n, s, 2*n+2)
			}
		}
	}
}

func TestNoReuseWithinWindow(t *testing.T) {
	// Claim 2: two returns of the same sequence number are separated by at
	// least n complete GetSeq calls.  Our ring gives n+1.
	for _, n := range []int{1, 2, 3, 5, 8} {
		codec, a := newEnv(t, n)
		p, err := New(0, n, codec, a)
		if err != nil {
			t.Fatal(err)
		}
		lastAt := make(map[int]int)
		for i := 0; i < 50*(n+1); i++ {
			s := p.Next()
			if prev, seen := lastAt[s]; seen {
				if gap := i - prev - 1; gap < n {
					t.Fatalf("n=%d: seq %d reused after only %d intervening calls", n, s, gap)
				}
			}
			lastAt[s] = i
		}
	}
}

func TestCursorRotates(t *testing.T) {
	n := 4
	codec, a := newEnv(t, n)
	p, err := New(1, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*n; i++ {
		if got, want := p.Cursor(), i%n; got != want {
			t.Fatalf("call %d: cursor = %d, want %d", i, got, want)
		}
		p.Next()
	}
}

func TestAnnouncedSeqAvoided(t *testing.T) {
	// Once a scan observes A[q] = (pid, s), Next must not return s until a
	// later scan of A[q] sees a different announcement.
	n := 3
	codec, a := newEnv(t, n)
	const me = 0
	p, err := New(me, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}

	const blocked = 5
	a[1].Write(1, codec.EncodePair(me, blocked))

	// Run enough calls for several full scans; blocked must never appear.
	for i := 0; i < 10*n; i++ {
		if s := p.Next(); s == blocked {
			// Only acceptable before the first scan of A[1] completes.
			if i >= 1 { // cursor 0 scanned at call 0, A[1] scanned at call 1
				t.Fatalf("call %d returned announced seq %d", i, blocked)
			}
		}
	}

	// Clear the announcement; after the next scan of A[1] the seq becomes
	// available again (once it also leaves the usedQ window).
	a[1].Write(1, codec.Bottom())
	seen := false
	for i := 0; i < 10*(n+1); i++ {
		if p.Next() == blocked {
			seen = true
			break
		}
	}
	if !seen {
		t.Error("seq never became available after announcement cleared")
	}
}

func TestAnnouncementsOfOthersIgnored(t *testing.T) {
	// Announcements naming a different writer must not block this picker.
	n := 2
	codec, a := newEnv(t, n)
	p, err := New(0, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	a[0].Write(0, codec.EncodePair(1, 2)) // pid 1's pair
	a[1].Write(1, codec.EncodePair(1, 3))
	returned := make(map[int]bool)
	for i := 0; i < 4*(n+1); i++ {
		returned[p.Next()] = true
	}
	if !returned[2] || !returned[3] {
		t.Errorf("seqs announced for another pid were avoided: returned=%v", returned)
	}
}

func TestAllSeqValuesEventuallyUsed(t *testing.T) {
	// With no announcements, the picker cycles through the whole domain.
	n := 4
	codec, a := newEnv(t, n)
	p, err := New(2, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	returned := make(map[int]bool)
	for i := 0; i < 10*(2*n+2); i++ {
		returned[p.Next()] = true
	}
	if len(returned) != 2*n+2 {
		t.Errorf("used %d distinct seqs, want %d", len(returned), 2*n+2)
	}
}

// genRecount recomputes the forbidden multiset from na and used into marks,
// reusing the scratch across calls via a generation counter instead of a
// full clear (the slow-path technique: one int bump replaces an O(domain)
// reset).  Returns the per-seq counts for the current generation.
type genRecount struct {
	gen   uint64
	stamp []uint64
	count []int32
}

func newGenRecount(seqVals int) *genRecount {
	return &genRecount{stamp: make([]uint64, seqVals), count: make([]int32, seqVals)}
}

func (g *genRecount) at(s int) int32 {
	if g.stamp[s] != g.gen {
		return 0
	}
	return g.count[s]
}

func (g *genRecount) add(s int) {
	if g.stamp[s] != g.gen {
		g.stamp[s] = g.gen
		g.count[s] = 0
	}
	g.count[s]++
}

func (g *genRecount) recount(p *Picker) {
	g.gen++
	for _, s := range p.na {
		if s >= 0 {
			g.add(s)
		}
	}
	for _, s := range p.used {
		if s >= 0 {
			g.add(s)
		}
	}
}

func TestIncrementalForbiddenMatchesRecount(t *testing.T) {
	// The incremental refcounts must agree, after every Next, with a from-
	// scratch recount of na ∪ usedQ, under announcements that appear, move,
	// and vanish; and every unblocked number must sit in the candidate ring.
	n := 4
	codec, a := newEnv(t, n)
	const me = 1
	p, err := New(me, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	rec := newGenRecount(codec.SeqVals())
	rng := uint32(0x1234567)
	for i := 0; i < 40*(2*n+2); i++ {
		// Churn one announce slot pseudo-randomly: ours, another pid's, or ⊥.
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		q := int(rng) & (n - 1)
		switch (rng >> 8) % 3 {
		case 0:
			a[q].Write(q, codec.EncodePair(me, int((rng>>10))%codec.SeqVals()))
		case 1:
			a[q].Write(q, codec.EncodePair((me+1)%n, int((rng>>10))%codec.SeqVals()))
		case 2:
			a[q].Write(q, codec.Bottom())
		}

		s := p.Next()
		rec.recount(p)
		for v := 0; v < codec.SeqVals(); v++ {
			if p.refcnt[v] != rec.at(v) {
				t.Fatalf("call %d: refcnt[%d] = %d, recount = %d", i, v, p.refcnt[v], rec.at(v))
			}
			if p.refcnt[v] == 0 && !p.inFree[v] {
				t.Fatalf("call %d: free seq %d missing from candidate ring", i, v)
			}
		}
		// The returned number was forbidden by nothing but its own fresh
		// usedQ slot, and never by a scanned announcement of our pid.
		for _, nas := range p.na {
			if nas == s {
				t.Fatalf("call %d: returned seq %d is na-blocked", i, s)
			}
		}
	}
}

func TestDomainNeverExhausted(t *testing.T) {
	// Even with every announce slot blocking a distinct seq for this pid,
	// Next always finds a value (domain 2n+2 > n + n+1).
	n := 5
	codec, a := newEnv(t, n)
	p, err := New(0, n, codec, a)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < n; q++ {
		a[q].Write(q, codec.EncodePair(0, q)) // block seqs 0..n-1
	}
	for i := 0; i < 5*(2*n+2); i++ {
		s := p.Next()
		if i >= n && s < n {
			// After one full scan all announced seqs are known-blocked.
			t.Fatalf("call %d returned blocked seq %d", i, s)
		}
	}
}
