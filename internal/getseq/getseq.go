// Package getseq implements the bounded sequence-number recycling helper
// GetSeq() from Figure 4 of the paper (lines 28-37).
//
// A writer process p augments each value it installs into the shared object
// X with a sequence number s drawn from the bounded domain {0, ..., 2n+1}.
// Readers announce the (pid, seq) pair they last observed in X.  GetSeq
// guarantees the property the paper's Claim 3 is built on:
//
//	If there is any point at which X = (·, p, s) and A[q] = (p, s) for some
//	process q, then p will not use sequence number s again in any following
//	install until A[q] ≠ (p, s).
//
// It achieves this with two bounded mechanisms:
//
//   - usedQ, a queue of the n+1 most recently returned sequence numbers: two
//     returns of the same s are separated by at least n+1 complete GetSeq
//     calls, which is long enough for a full scan of the announce array;
//   - na, the "not available" set: each GetSeq call reads exactly one
//     announce-array entry (round-robin over all n entries) and remembers any
//     entry announcing p's own pid until a later scan of the same entry sees
//     something else.
//
// The domain size 2n+2 is exactly large enough: at most n entries can be
// blocked by na and n+1 by usedQ, so at least one sequence number is always
// available.
//
// Each call to Next performs exactly one shared-memory step (the read of one
// announce-array entry); everything else is process-local state.  The
// process-local work is amortized O(1): the forbidden set na ∪ usedQ is
// maintained incrementally — each Next changes at most one na entry and one
// usedQ slot, so at most four per-seq reference counts move — and available
// numbers are drawn from a FIFO ring with lazy invalidation instead of
// re-deriving the whole set per call.  (The paper's line 34 allows an
// arbitrary choice; the FIFO order also guarantees every domain value is
// eventually exercised.)
package getseq

import (
	"fmt"
	"sync/atomic"

	"abadetect/internal/shmem"
)

// Picker is the per-process GetSeq state: local variables usedQ, na and c of
// Figure 4.  A Picker belongs to a single process and must not be shared
// between goroutines.
type Picker struct {
	pid int
	n   int
	a   []shmem.Register
	ad  []*atomic.Uint64 // devirtualized announce words, nil on indirect substrates

	// Bound layout constants of the announcement encoding: decoding a
	// scanned pair with raw masks avoids materializing a codec copy per
	// call (even inlined value-receiver methods copy their receiver).
	present  shmem.Word
	pidMask  shmem.Word
	seqMask  shmem.Word
	seqShift uint

	c       int   // next announce-array slot to scan
	na      []int // na[q] = seq announced in A[q] for my pid, or -1
	used    []int // ring buffer of the n+1 most recently returned seqs
	usedPos int   // next slot of used to overwrite (its current occupant is the oldest)

	// Incremental forbidden set: refcnt[s] counts the sources (na entries,
	// usedQ slots) currently blocking s.  free is a FIFO ring of candidate
	// numbers with lazy invalidation: a number is pushed when its refcnt
	// drops to zero, popped entries that were re-blocked in the meantime are
	// discarded, and inFree keeps each number in the ring at most once so
	// the ring never exceeds the domain size.
	refcnt   []int32
	free     []int
	freeHead int
	freeLen  int
	inFree   []bool
}

// New returns a Picker for process pid over announce array a.  The codec
// defines the (pid, seq) pair encoding of the announce entries and the
// sequence-number domain, which must have at least 2n+2 values.
//
// When every announce register devirtualizes (shmem.Direct), the picker's
// one shared step per Next is a raw atomic load; on instrumented or
// simulated substrates it stays a dynamic call, so step counting, auditing,
// and scheduling see it.
func New(pid, n int, codec shmem.TripleCodec, a []shmem.Register) (*Picker, error) {
	if len(a) != n {
		return nil, fmt.Errorf("getseq: announce array has %d entries, want n=%d", len(a), n)
	}
	if pid < 0 || pid >= n {
		return nil, fmt.Errorf("getseq: pid %d out of range [0,%d)", pid, n)
	}
	if codec.SeqVals() < 2*n+2 {
		return nil, fmt.Errorf("getseq: seq domain %d too small, want >= 2n+2 = %d", codec.SeqVals(), 2*n+2)
	}
	seqVals := codec.SeqVals()
	p := &Picker{
		pid:      pid,
		n:        n,
		a:        a,
		ad:       shmem.DirectRegisters(a),
		present:  codec.PresentMask(),
		pidMask:  codec.PidMask(),
		seqMask:  codec.SeqMask(),
		seqShift: codec.SeqBits(),
		na:       make([]int, n),
		used:     make([]int, n+1),
		refcnt:   make([]int32, seqVals),
		free:     make([]int, seqVals),
		inFree:   make([]bool, seqVals),
	}
	for i := range p.na {
		p.na[i] = -1
	}
	for i := range p.used {
		p.used[i] = -1 // ⊥
	}
	for s := 0; s < seqVals; s++ {
		p.pushFree(s)
	}
	return p, nil
}

// NewUnchecked is New for callers that have already validated the
// parameters; it panics on invalid input.
func NewUnchecked(pid, n int, codec shmem.TripleCodec, a []shmem.Register) *Picker {
	p, err := New(pid, n, codec, a)
	if err != nil {
		panic(err)
	}
	return p
}

// pushFree appends s to the candidate ring unless it is already queued.
// The ring indices wrap with compares, not modulo: an integer division per
// draw would cost more than the rest of the bookkeeping combined.
func (p *Picker) pushFree(s int) {
	if p.inFree[s] {
		return
	}
	i := p.freeHead + p.freeLen
	if i >= len(p.free) {
		i -= len(p.free)
	}
	p.free[i] = s
	p.freeLen++
	p.inFree[s] = true
}

// popFree returns the oldest candidate with refcnt zero, discarding stale
// entries (numbers re-blocked after they were queued).  Amortized O(1):
// every discarded entry is paid for by the pushFree that queued it.
func (p *Picker) popFree() int {
	for p.freeLen > 0 {
		s := p.free[p.freeHead]
		if p.freeHead++; p.freeHead == len(p.free) {
			p.freeHead = 0
		}
		p.freeLen--
		p.inFree[s] = false
		if p.refcnt[s] == 0 {
			return s
		}
	}
	// Unreachable: |na| + |usedQ| <= 2n+1 < seqVals, and every zero-refcnt
	// number is queued.
	panic("getseq: no available sequence number (domain invariant violated)")
}

// block adds one forbidding source for s.
func (p *Picker) block(s int) { p.refcnt[s]++ }

// unblock removes one forbidding source for s, re-queuing it when the last
// source disappears.
func (p *Picker) unblock(s int) {
	p.refcnt[s]--
	if p.refcnt[s] == 0 {
		p.pushFree(s)
	}
	if p.refcnt[s] < 0 {
		panic("getseq: forbidden refcount underflow")
	}
}

// Next performs one GetSeq() call: it reads one announce-array entry
// (exactly one shared-memory step), updates na, and returns a sequence
// number that is neither announced for this process (as far as na knows) nor
// among the n+1 most recently returned ones.
func (p *Picker) Next() int {
	// Lines 28-32: scan one announce entry.  On direct substrates the read
	// is a raw atomic load of the slab/native word.
	var w shmem.Word
	if p.ad != nil {
		w = p.ad[p.c].Load()
	} else {
		w = p.a[p.c].Read(p.pid)
	}
	newNa := -1
	if w&p.present != 0 && int((w>>p.seqShift)&p.pidMask) == p.pid {
		newNa = int(w & p.seqMask)
	}
	if old := p.na[p.c]; old != newNa {
		p.na[p.c] = newNa
		if newNa >= 0 {
			p.block(newNa)
		}
		if old >= 0 {
			p.unblock(old)
		}
	}
	// Line 33: advance the scan cursor.
	if p.c++; p.c == p.n {
		p.c = 0
	}

	// Line 34: choose s outside na ∪ usedQ — the oldest candidate of the
	// incrementally maintained free ring.
	s := p.popFree()

	// Lines 35-36: enq(s), deq() -- replace the oldest entry.
	if old := p.used[p.usedPos]; old >= 0 {
		p.unblock(old)
	}
	p.used[p.usedPos] = s
	if p.usedPos++; p.usedPos == len(p.used) {
		p.usedPos = 0
	}
	p.block(s)
	return s
}

// Cursor returns the announce-array index the next call will scan.  It is
// exposed for white-box tests.
func (p *Picker) Cursor() int { return p.c }
