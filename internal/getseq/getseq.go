// Package getseq implements the bounded sequence-number recycling helper
// GetSeq() from Figure 4 of the paper (lines 28-37).
//
// A writer process p augments each value it installs into the shared object
// X with a sequence number s drawn from the bounded domain {0, ..., 2n+1}.
// Readers announce the (pid, seq) pair they last observed in X.  GetSeq
// guarantees the property the paper's Claim 3 is built on:
//
//	If there is any point at which X = (·, p, s) and A[q] = (p, s) for some
//	process q, then p will not use sequence number s again in any following
//	install until A[q] ≠ (p, s).
//
// It achieves this with two bounded mechanisms:
//
//   - usedQ, a queue of the n+1 most recently returned sequence numbers: two
//     returns of the same s are separated by at least n+1 complete GetSeq
//     calls, which is long enough for a full scan of the announce array;
//   - na, the "not available" set: each GetSeq call reads exactly one
//     announce-array entry (round-robin over all n entries) and remembers any
//     entry announcing p's own pid until a later scan of the same entry sees
//     something else.
//
// The domain size 2n+2 is exactly large enough: at most n entries can be
// blocked by na and n+1 by usedQ, so at least one sequence number is always
// available.
//
// Each call to Next performs exactly one shared-memory step (the read of one
// announce-array entry); everything else is process-local state.
package getseq

import (
	"fmt"

	"abadetect/internal/shmem"
)

// Picker is the per-process GetSeq state: local variables usedQ, na and c of
// Figure 4.  A Picker belongs to a single process and must not be shared
// between goroutines.
type Picker struct {
	pid   int
	n     int
	codec shmem.TripleCodec
	a     []shmem.Register

	c       int   // next announce-array slot to scan
	na      []int // na[q] = seq announced in A[q] for my pid, or -1
	used    []int // ring buffer of the n+1 most recently returned seqs
	usedPos int   // next slot of used to overwrite (its current occupant is the oldest)
	nextTry int   // rotation cursor over the seq domain (line 34's "arbitrary")

	forbidden []bool // scratch, indexed by sequence number
}

// New returns a Picker for process pid over announce array a.  The codec
// defines the (pid, seq) pair encoding of the announce entries and the
// sequence-number domain, which must have at least 2n+2 values.
func New(pid, n int, codec shmem.TripleCodec, a []shmem.Register) (*Picker, error) {
	if len(a) != n {
		return nil, fmt.Errorf("getseq: announce array has %d entries, want n=%d", len(a), n)
	}
	if pid < 0 || pid >= n {
		return nil, fmt.Errorf("getseq: pid %d out of range [0,%d)", pid, n)
	}
	if codec.SeqVals() < 2*n+2 {
		return nil, fmt.Errorf("getseq: seq domain %d too small, want >= 2n+2 = %d", codec.SeqVals(), 2*n+2)
	}
	p := &Picker{
		pid:       pid,
		n:         n,
		codec:     codec,
		a:         a,
		na:        make([]int, n),
		used:      make([]int, n+1),
		forbidden: make([]bool, codec.SeqVals()),
	}
	for i := range p.na {
		p.na[i] = -1
	}
	for i := range p.used {
		p.used[i] = -1 // ⊥
	}
	return p, nil
}

// NewUnchecked is New for callers that have already validated the
// parameters; it panics on invalid input.
func NewUnchecked(pid, n int, codec shmem.TripleCodec, a []shmem.Register) *Picker {
	p, err := New(pid, n, codec, a)
	if err != nil {
		panic(err)
	}
	return p
}

// Next performs one GetSeq() call: it reads one announce-array entry
// (exactly one shared-memory step), updates na, and returns a sequence
// number that is neither announced for this process (as far as na knows) nor
// among the n+1 most recently returned ones.
func (p *Picker) Next() int {
	// Lines 28-32: scan one announce entry.
	w := p.a[p.c].Read(p.pid)
	if !p.codec.IsBottom(w) {
		if q, s := p.codec.DecodePair(w); q == p.pid {
			p.na[p.c] = s
		} else {
			p.na[p.c] = -1
		}
	} else {
		p.na[p.c] = -1
	}
	// Line 33: advance the scan cursor.
	p.c = (p.c + 1) % p.n

	// Line 34: choose s outside na ∪ usedQ.  The paper allows an arbitrary
	// choice; we rotate through the domain so every value gets exercised.
	for i := range p.forbidden {
		p.forbidden[i] = false
	}
	for _, s := range p.na {
		if s >= 0 {
			p.forbidden[s] = true
		}
	}
	for _, s := range p.used {
		if s >= 0 {
			p.forbidden[s] = true
		}
	}
	s := -1
	for i := 0; i < len(p.forbidden); i++ {
		cand := (p.nextTry + i) % len(p.forbidden)
		if !p.forbidden[cand] {
			s = cand
			break
		}
	}
	if s < 0 {
		// Unreachable: |na| + |usedQ| <= 2n+1 < seqVals.
		panic("getseq: no available sequence number (domain invariant violated)")
	}
	p.nextTry = (s + 1) % len(p.forbidden)

	// Lines 35-36: enq(s), deq() -- replace the oldest entry.
	p.used[p.usedPos] = s
	p.usedPos = (p.usedPos + 1) % len(p.used)
	return s
}

// Cursor returns the announce-array index the next call will scan.  It is
// exposed for white-box tests.
func (p *Picker) Cursor() int { return p.c }
