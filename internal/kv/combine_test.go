package kv

import (
	"sync"
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// These tests hammer the flat combiner on a single hot bucket: every
// mutation funnels through one combiner lock while uncontended gets stay on
// the lock-free read path, so the combiner races directly against
// concurrent readers — the seam the combining design has to get right.

func buildCombiningMap(t *testing.T, n, capacity, buckets int, prot Protection, tagBits uint, rc reclaim.Maker) *Map {
	t.Helper()
	opts := []apps.StructOption{apps.WithCombining()}
	if rc != nil {
		opts = append(opts, apps.WithReclaimer(rc))
	}
	m, err := NewMap(shmem.NewNativeFactory(), n, capacity, buckets, prot, tagBits, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCombinerSingleBucketRace: n processes churn one bucket with
// put/overwrite/delete while readers poll the same keys lock-free.  The
// audit must balance, reads must never observe a torn binding, and the
// combiner must actually have batched work.
func TestCombinerSingleBucketRace(t *testing.T) {
	for _, tc := range soundConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 8
			const perProc = 400
			m := buildCombiningMap(t, n, 16, 1, tc.prot, tc.tagBits, tc.rc)
			if !m.Combining() {
				t.Fatal("map ignored WithCombining")
			}
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := m.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *Handle) {
					defer wg.Done()
					key := Word(pid % 4) // 4 keys over 1 bucket: guaranteed collisions
					for i := 0; i < perProc; i++ {
						switch i % 4 {
						case 0, 1:
							h.Put(key, Word(pid)<<32|Word(i))
						case 2:
							// The lock-free read path races the combiner.  A hit
							// must return some writer's full 64-bit binding, never
							// a torn or recycled value for a different key.
							if v, ok := h.Get(key); ok && v>>32 >= n {
								t.Errorf("Get(%d) returned impossible value %#x", key, v)
								return
							}
						case 3:
							h.Delete(key)
						}
					}
					h.pool.Drain()
				}(pid, h)
			}
			wg.Wait()

			a := m.Audit()
			if a.Corrupt() {
				t.Errorf("audit after combined churn: %s", a)
			}
			batches, ops := m.CombineStats()
			if ops == 0 {
				t.Error("no op went through the combiner on a single hot bucket")
			}
			if batches > ops {
				t.Errorf("batches=%d > ops=%d: a batch must carry at least one op", batches, ops)
			}
			t.Logf("%s: combine batches=%d ops=%d (%.1f ops/batch)",
				tc.name, batches, ops, float64(ops)/float64(maxInt64(batches, 1)))
		})
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestCombinerSequentialEquivalence: with combining on, a single process
// must see exactly the bindings it wrote — the publication slots add
// machinery, not semantics.
func TestCombinerSequentialEquivalence(t *testing.T) {
	m := buildCombiningMap(t, 1, 8, 1, apps.LLSC, 0, nil)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := Word(0); k < 4; k++ {
		if !h.Put(k, 100+k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	if !h.Put(2, 222) {
		t.Fatal("overwrite failed")
	}
	if !h.Delete(3) {
		t.Fatal("delete failed")
	}
	want := map[Word]Word{0: 100, 1: 101, 2: 222}
	for k := Word(0); k < 4; k++ {
		v, ok := h.Get(k)
		wv, whit := want[k]
		if ok != whit || (ok && v != wv) {
			t.Errorf("Get(%d) = (%d,%v), want (%d,%v)", k, v, ok, wv, whit)
		}
	}
	if a := m.Audit(); a.Corrupt() || a.Live != 3 {
		t.Errorf("audit: %s", a)
	}
}

// TestCombinerStatsOffByDefault: a map built without the option reports
// zero combining and the inert stats.
func TestCombinerStatsOffByDefault(t *testing.T) {
	m := buildMap(t, 2, 8, 1, apps.LLSC, 0, nil)
	if m.Combining() {
		t.Fatal("combining on without WithCombining")
	}
	if b, o := m.CombineStats(); b != 0 || o != 0 {
		t.Errorf("CombineStats = (%d,%d) on a plain map", b, o)
	}
}
