package kv

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// soundConfigs enumerates the (protection, reclaimer) cells that must be
// linearizable under contention: every sound guard regime over every
// reclaimer, plus the raw guard whose safety comes from the reclaimer alone.
func soundConfigs() []struct {
	name    string
	prot    Protection
	tagBits uint
	rc      reclaim.Maker
} {
	type cfg = struct {
		name    string
		prot    Protection
		tagBits uint
		rc      reclaim.Maker
	}
	var out []cfg
	prots := []struct {
		name    string
		prot    Protection
		tagBits uint
	}{
		{"tag16", apps.Tagged, 16},
		{"llsc", apps.LLSC, 0},
		{"detector", apps.Detector, 0},
	}
	rcs := []struct {
		name string
		mk   reclaim.Maker
	}{
		{"none", nil},
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
	for _, p := range prots {
		for _, r := range rcs {
			out = append(out, cfg{p.name + "+" + r.name, p.prot, p.tagBits, r.mk})
		}
	}
	// Raw is sound only when a real reclaimer prevents the recycle leg.
	out = append(out,
		cfg{"raw+hp", apps.Raw, 0, reclaim.NewHazard},
		cfg{"raw+epoch", apps.Raw, 0, reclaim.NewEpoch},
	)
	return out
}

func buildMap(t *testing.T, n, capacity, buckets int, prot Protection, tagBits uint, rc reclaim.Maker) *Map {
	t.Helper()
	var opts []apps.StructOption
	if rc != nil {
		opts = append(opts, apps.WithReclaimer(rc))
	}
	m, err := NewMap(shmem.NewNativeFactory(), n, capacity, buckets, prot, tagBits, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapBasics(t *testing.T) {
	m := buildMap(t, 1, 8, 4, apps.LLSC, 0, nil)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Get(7); ok {
		t.Error("Get on an empty map hit")
	}
	if h.Delete(7) {
		t.Error("Delete on an empty map succeeded")
	}
	if !h.Put(7, 70) {
		t.Fatal("Put(7) failed")
	}
	if v, ok := h.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = (%d,%v), want (70,true)", v, ok)
	}
	// Overwrite: the new binding wins and the old node is reclaimed.
	if !h.Put(7, 71) {
		t.Fatal("overwrite Put(7) failed")
	}
	if v, ok := h.Get(7); !ok || v != 71 {
		t.Fatalf("Get(7) after overwrite = (%d,%v), want (71,true)", v, ok)
	}
	if !h.Delete(7) {
		t.Fatal("Delete(7) failed")
	}
	if _, ok := h.Get(7); ok {
		t.Error("Get(7) after delete hit")
	}
	if a := m.Audit(); a.Corrupt() || a.Live != 0 {
		t.Errorf("audit after churn: %s", a)
	}
}

func TestMapFillsToCapacityAndReportsExhaustion(t *testing.T) {
	const capacity = 5
	m := buildMap(t, 1, capacity, 2, apps.LLSC, 0, nil)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < capacity; k++ {
		if !h.Put(Word(k), Word(100+k)) {
			t.Fatalf("Put(%d) failed with %d free nodes", k, capacity-k)
		}
	}
	// Even an overwrite needs a fresh node: a full pool fails it.
	if h.Put(0, 200) {
		t.Error("Put into a full pool succeeded")
	}
	if ps := m.PoolStats(); ps.Exhaustions == 0 {
		t.Error("exhaustion not counted")
	}
	if v, ok := h.Get(0); !ok || v != 100 {
		t.Errorf("failed overwrite changed the binding: (%d,%v)", v, ok)
	}
	if !h.Delete(3) {
		t.Fatal("Delete(3) failed")
	}
	if !h.Put(0, 200) {
		t.Error("Put after a delete still exhausted")
	}
	if v, ok := h.Get(0); !ok || v != 200 {
		t.Errorf("overwrite lost: (%d,%v)", v, ok)
	}
	if a := m.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
}

func TestMapBucketCollisions(t *testing.T) {
	// One bucket: every key shares a chain, so traversal, duplicate kill,
	// and interior unlink all get exercised.
	m := buildMap(t, 1, 8, 1, apps.LLSC, 0, nil)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if !h.Put(Word(k), Word(10+k)) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	// Delete from the middle of the chain.
	if !h.Delete(3) {
		t.Fatal("interior Delete failed")
	}
	for k := 0; k < 6; k++ {
		v, ok := h.Get(Word(k))
		if k == 3 {
			if ok {
				t.Errorf("Get(3) hit after delete")
			}
			continue
		}
		if !ok || v != Word(10+k) {
			t.Errorf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, 10+k)
		}
	}
	if a := m.Audit(); a.Corrupt() || a.Live != 5 {
		t.Errorf("audit: %s", a)
	}
}

// TestMapMPMCStrictAccounting is the strict ownership test: every process
// works a disjoint key range, so each of its Put/Get/Delete cycles must
// observe exactly its own writes — any miss or stale value is an ABA (or a
// broken traversal) caught red-handed.  It runs under every sound cell of
// the protection × reclaimer matrix, raw+hp and raw+epoch included: there
// the guard is value-blind and the reclaimer alone carries soundness.
func TestMapMPMCStrictAccounting(t *testing.T) {
	for _, tc := range soundConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			const perKey = 8
			const rounds = 300
			m := buildMap(t, n, 4*n*2, 4, tc.prot, tc.tagBits, tc.rc)
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for pid := 0; pid < n; pid++ {
				h, err := m.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *Handle) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for j := 0; j < perKey; j++ {
							k := Word(pid)<<32 | Word(j)
							v := Word(r)<<8 | Word(j)
							for !h.Put(k, v) {
								runtime.Gosched() // transient exhaustion under contention
							}
							got, ok := h.Get(k)
							if !ok || got != v {
								errs <- fmt.Errorf("pid %d: Get(%#x) = (%#x,%v), want (%#x,true)", pid, k, got, ok, v)
								return
							}
							if !h.Delete(k) {
								errs <- fmt.Errorf("pid %d: Delete(%#x) missed its own binding", pid, k)
								return
							}
						}
					}
				}(pid, h)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if a := m.Audit(); a.Corrupt() || a.Live != 0 {
				t.Errorf("audit after strict run: %s", a)
			}
		})
	}
}

// TestMapMPMCSharedKeysAuditClean hammers a small shared key set from every
// process — puts, gets, and deletes all racing on the same chains — and
// requires the structure to audit clean under every sound configuration.
func TestMapMPMCSharedKeysAuditClean(t *testing.T) {
	for _, tc := range soundConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			const ops = 3000
			m := buildMap(t, n, 32, 2, tc.prot, tc.tagBits, tc.rc)
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := m.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *Handle) {
					defer wg.Done()
					x := uint64(pid + 1)
					for i := 0; i < ops; i++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						k := Word(x % 8)
						switch x % 4 {
						case 0:
							h.Put(k, Word(i))
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(pid, h)
			}
			wg.Wait()
			if a := m.Audit(); a.Corrupt() {
				t.Errorf("audit after shared-key chaos: %s", a)
			}
		})
	}
}

// TestMapGuardedPoolComposes: the lock-free free list and the map's own
// guards share one regime, and the composition survives contention.
func TestMapGuardedPoolComposes(t *testing.T) {
	m, err := NewMap(shmem.NewNativeFactory(), 4, 16, 4, apps.LLSC, 0, apps.WithGuardedPool())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		h, err := m.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pid int, h *Handle) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Word(i % 8)
				h.Put(k, Word(i))
				h.Get(k)
				h.Delete(k)
			}
		}(pid, h)
	}
	wg.Wait()
	if a := m.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
	if fm := m.FreelistMetrics(); fm.Commits == 0 {
		t.Error("guarded free list recorded no commits")
	}
}

func TestMapConstructorErrors(t *testing.T) {
	f := shmem.NewNativeFactory()
	if _, err := NewMap(f, 0, 8, 4, apps.LLSC, 0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewMap(f, 1, 0, 4, apps.LLSC, 0); err == nil {
		t.Error("want error for capacity=0")
	}
	if _, err := NewMap(f, 1, 8, 0, apps.LLSC, 0); err == nil {
		t.Error("want error for buckets=0")
	}
	m := buildMap(t, 2, 8, 4, apps.LLSC, 0, nil)
	if _, err := m.Handle(2); err == nil {
		t.Error("want error for out-of-range pid")
	}
}

// TestMapMaxSpinBails: a handle with a spin budget fails operations instead
// of hanging (the harness setting for possibly-corrupted raw runs).
func TestMapMaxSpinBails(t *testing.T) {
	m := buildMap(t, 1, 8, 1, apps.LLSC, 0, nil)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if !h.Put(Word(k), Word(k)) {
			t.Fatal("setup put failed")
		}
	}
	h.MaxSpin = 2 // too small to reach the chain's tail (key 0, 4 hops deep)
	if _, ok := h.Get(0); ok {
		t.Error("budgeted Get deep into the chain should bail")
	}
	h.MaxSpin = 0
	if v, ok := h.Get(0); !ok || v != 0 {
		t.Errorf("unbounded Get(0) = (%d,%v)", v, ok)
	}
	if a := m.Audit(); a.Corrupt() {
		t.Errorf("bailing corrupted the map: %s", a)
	}
}
