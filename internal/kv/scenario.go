package kv

import (
	"fmt"

	"abadetect/internal/apps"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// MapABAScenario plays the §1 corruption script against the map: a victim
// deleter marks the head-most node of a single-bucket chain and stalls
// between the logical delete and the physical unlink, while the adversary
// recycles nodes through the allocator until the bucket head *index* is
// restored with a different chain underneath.
//
// Concretely, on the chain head→3→2→1 (keys 3,2,1 in nodes 3,2,1):
//
//  1. the victim begins Delete(3): it marks node 3 and stalls before the
//     unlink commit head: 3 → 2;
//  2. the adversary's Get(1) helps unlink the marked node 3 (freeing it),
//     Delete(2) unlinks and frees node 2, and Put(4, ·) allocates — with
//     immediate FIFO reuse it gets node 3 back and links it at the head, so
//     the head word is 3<<1 again while node 2 is free and node 3 now
//     carries key 4;
//  3. the victim resumes: committing head 3 → 2 swings the bucket onto the
//     freed node 2 iff the guard is fooled — a raw guard is (the §1
//     corruption: a doubled node, a lost binding), tagged/LL/SC/detector
//     guards reject with a near-miss.
//
// Under a reclaimer the victim's published protection keeps node 3 out of
// the allocator, so the adversary's Put either comes back with a different
// index (hp: the head word never repeats, the stale commit fails on plain
// inequality, zero near-misses) or starves (epoch: every free node sits in
// limbo behind the victim's pin) — prevention by allocation discipline, with
// no ABA left for the guard to see.
func MapABAScenario(f shmem.Factory, prot Protection, tagBits uint, opts ...apps.StructOption) (apps.ScenarioResult, error) {
	var r apps.ScenarioResult
	rec := trace.New(2, 128)
	rec.Watch(func(e trace.Event) bool {
		return e.Kind == trace.KindGuardNearMiss || e.Kind == trace.KindExhaust
	})
	opts = append(opts, apps.WithTrace(rec))
	m, err := NewMap(f, 2, 3, 1, prot, tagBits, opts...) // one bucket: every key collides
	if err != nil {
		return r, err
	}
	adversary, err := m.Handle(0)
	if err != nil {
		return r, err
	}
	victim, err := m.Handle(1)
	if err != nil {
		return r, err
	}
	// Setup: chain 3(key 3) -> 2(key 2) -> 1(key 1).
	for i := 1; i <= 3; i++ {
		if !adversary.Put(Word(i), Word(100+i)) {
			return r, fmt.Errorf("kv: scenario setup put %d failed", i)
		}
	}
	// Victim: marks node 3 (the logical delete) and stalls before the
	// unlink — holding its reclamation protection, when one is configured.
	cur, succ, found := victim.DeleteBegin(3)
	if !found || cur != 3 || succ != 2 {
		return r, fmt.Errorf("kv: scenario DeleteBegin = (%d,%d,%v), want (3,2,true)", cur, succ, found)
	}
	// Adversary: the Get helps unlink the marked node 3 (one successful
	// head swing, node 3 freed), the Delete removes node 2 (two more
	// swings: nothing between 3's unlink and 2's? — one mark on next[2] and
	// one head swing), and the Put recycles.  With immediate reuse the FIFO
	// allocator hands node 3 back, so the head *word* is 3<<1 again.
	if v, ok := adversary.Get(1); !ok || v != 101 {
		return r, fmt.Errorf("kv: scenario Get(1) = (%d,%v), want (101,true)", v, ok)
	}
	if !adversary.Delete(2) {
		return r, fmt.Errorf("kv: scenario Delete(2) failed")
	}
	// The recycle leg: under a reclaimer the victim's protection blocks
	// node 3, so this put either allocates a different node or starves.
	r.Starved = !adversary.Put(4, 104)
	// Victim resumes: the unlink commit swings the bucket head to the freed
	// node 2 iff the guard is fooled.
	r.Fooled = victim.DeleteCommit()
	audit := m.Audit()
	r.Corrupt, r.Detail = audit.Corrupt(), audit.String()
	r.Guard = m.GuardMetrics()
	r.Pool = m.PoolStats()
	if inc := rec.Incident(); inc != nil {
		r.Incident = inc
	} else {
		r.Incident = rec.Merge()
	}
	return r, nil
}
