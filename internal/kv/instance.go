package kv

import (
	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/shmem"
)

// maxSpin bounds the map's traversal loops in matrix runs: a raw-guarded
// map that has been ABA-corrupted can acquire a cycle through a bucket
// chain, and a bounded spin turns the resulting livelock into failed
// operations (the queue instance does the same).
const maxSpin = 10_000

// NewMapInstance builds a map of the given capacity for the benchmark
// matrices.  The fixed Worker workload cycles put/get/get/delete over a
// small shared key range (cross-process contention on bucket heads and
// chains); the richer Keyed seam lets the load generator substitute its own
// arrival process, key popularity, and op mix.
func NewMapInstance(f shmem.Factory, n, capacity int, mk guard.Maker, io apps.InstanceOptions) (apps.Instance, error) {
	m, err := NewMap(f, n, capacity, capacity, 0, 0, io.StructOpts(mk)...)
	if err != nil {
		return nil, err
	}
	return mapInstance{m}, nil
}

type mapInstance struct{ m *Map }

func (in mapInstance) handle(pid int) (*Handle, error) {
	h, err := in.m.Handle(pid)
	if err != nil {
		return nil, err
	}
	h.MaxSpin = maxSpin
	return h, nil
}

// Worker cycles put(k)/get(k)/get(hot)/delete(k) with k shared across
// processes, so each 4-op cycle is allocation-balanced while bucket heads
// and chains stay contended.
func (in mapInstance) Worker(pid int) (func(i int), error) {
	h, err := in.handle(pid)
	if err != nil {
		return nil, err
	}
	return func(i int) {
		k := Word((i >> 2) & 31)
		switch i & 3 {
		case 0:
			h.Put(k, Word(pid)<<32|Word(i))
		case 1:
			h.Get(k)
		case 2:
			h.Get(1) // the hot key
		default:
			h.Delete(k)
		}
	}, nil
}

// ReadMostlyWorker: 1 put and 1 delete per 20 ops, 18 wait-free gets between
// them over a small key range — the map's read-scaling workload (E14).  The
// put leads each cycle so the gets mostly hit.
func (in mapInstance) ReadMostlyWorker(pid int) (func(i int), error) {
	h, err := in.handle(pid)
	if err != nil {
		return nil, err
	}
	return func(i int) {
		k := Word((i / 20) & 63)
		switch i % 20 {
		case 0:
			h.Put(k, Word(pid)<<32|Word(i))
		case 19:
			h.Delete(k)
		default:
			h.Get(k)
		}
	}, nil
}

// KeyedWorker is the apps.Keyed seam the load generator drives.
func (in mapInstance) KeyedWorker(pid int) (func(op apps.OpKind, key, val Word), error) {
	h, err := in.handle(pid)
	if err != nil {
		return nil, err
	}
	return func(op apps.OpKind, key, val Word) {
		switch op {
		case apps.OpPut:
			h.Put(key, val)
		case apps.OpDelete:
			h.Delete(key)
		default:
			h.Get(key)
		}
	}, nil
}

func (in mapInstance) Audit() (bool, string) {
	a := in.m.Audit()
	return a.Corrupt(), a.String()
}

func (in mapInstance) GuardMetrics() guard.Metrics    { return in.m.GuardMetrics() }
func (in mapInstance) FreelistMetrics() guard.Metrics { return in.m.FreelistMetrics() }
func (in mapInstance) PoolStats() apps.PoolStats      { return in.m.PoolStats() }

// GrowthStats exposes the resize counters and the capacity trajectory for
// the E15 growth matrix: directory splits, node-segment appends, doublings
// lost to a concurrent winner, and the capacity the map ended at.  All zero
// motion on a fixed map.
func (in mapInstance) GrowthStats() (splits, appends, retries int64, capNow int) {
	if in.m.grow == nil {
		return 0, 0, 0, in.m.Capacity()
	}
	g := in.m.grow
	return g.splits.Load(), g.appends.Load(), g.retries.Load(), in.m.Capacity()
}

func (in mapInstance) FastPathStats() apps.FastPathStats {
	batches, ops := in.m.CombineStats()
	return apps.FastPathStats{CombinedOps: ops, CombineBatches: batches}
}
