package kv

import (
	"fmt"
	"sync"
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// growMap builds a growth-mode map for tests: small initial capacity, the
// given ceiling, one initial bucket so splitting has real work to do.
func growMap(t *testing.T, n, initial, ceiling int, prot Protection, tagBits uint, opts ...apps.StructOption) *Map {
	t.Helper()
	f := shmem.NewNativeFactory()
	opts = append(opts, apps.WithGrowth(ceiling))
	m, err := NewMap(f, n, initial, 1, prot, tagBits, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGrowMapOracle drives a growing map against a Go-map oracle through a
// deterministic put/get/delete mix that crosses several segment appends and
// directory doublings mid-run (sequential-oracle conformance for a map that
// grows mid-run).
func TestGrowMapOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		prot Protection
		bits uint
		opts []apps.StructOption
	}{
		{"llsc", apps.LLSC, 0, nil},
		{"tag16", apps.Tagged, 16, nil},
		{"detector", apps.Detector, 0, nil},
		{"raw+hp", apps.Raw, 0, []apps.StructOption{apps.WithReclaimer(reclaim.NewHazard)}},
		{"llsc+epoch", apps.LLSC, 0, []apps.StructOption{apps.WithReclaimer(reclaim.NewEpoch)}},
		{"llsc+guarded", apps.LLSC, 0, []apps.StructOption{apps.WithGuardedPool()}},
		{"llsc+hp+cache", apps.LLSC, 0, []apps.StructOption{apps.WithReclaimer(reclaim.NewHazard), apps.WithLocalCache(8)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const keys = 600 // well past the initial capacity of 8
			m := growMap(t, 1, 8, 2048, tc.prot, tc.bits, tc.opts...)
			h, err := m.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			oracle := make(map[Word]Word)
			check := func(step string, k Word) {
				want, wantOK := oracle[k]
				got, gotOK := h.Get(k)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("%s: Get(%d) = %d,%v; oracle %d,%v", step, k, got, gotOK, want, wantOK)
				}
			}
			// Phase 1: fill past several appends and splits.
			for k := Word(1); k <= keys; k++ {
				if !h.Put(k, k*10) {
					t.Fatalf("Put(%d) failed at capacity %d", k, m.Capacity())
				}
				oracle[k] = k * 10
				check("fill", k)
			}
			// Phase 2: overwrite a third, delete a third, probe everything.
			for k := Word(1); k <= keys; k++ {
				switch k % 3 {
				case 0:
					if !h.Put(k, k*100) {
						t.Fatalf("overwrite Put(%d) failed", k)
					}
					oracle[k] = k * 100
				case 1:
					if got := h.Delete(k); got != true {
						t.Fatalf("Delete(%d) = %v, want true", k, got)
					}
					delete(oracle, k)
				}
			}
			for k := Word(1); k <= keys+50; k++ {
				check("probe", k)
			}
			// Quiesce and audit.
			h.pool.Clear()
			for h.pool.Drain() > 0 {
			}
			a := m.Audit()
			if a.Corrupt() {
				t.Fatalf("audit corrupt: %s", a)
			}
			if a.Live != len(oracle) {
				t.Errorf("audit live = %d, oracle has %d", a.Live, len(oracle))
			}
			if a.SegmentAppends == 0 {
				t.Errorf("no segment appends recorded across %d keys from capacity 8: %s", keys, a)
			}
			if a.Splits == 0 {
				t.Errorf("no directory splits recorded: %s", a)
			}
			if m.Capacity() <= 8 || m.Capacity() > 2048 {
				t.Errorf("capacity %d out of growth range (8, 2048]", m.Capacity())
			}
			if m.Buckets() <= 1 {
				t.Errorf("directory never doubled: %d buckets", m.Buckets())
			}
		})
	}
}

// TestGrowMapCeiling checks the exhaustion report at the growth ceiling:
// Put fails only once every segment append up to MaxCapacity is used, and
// deleting frees capacity again.
func TestGrowMapCeiling(t *testing.T) {
	const ceiling = 64
	m := growMap(t, 1, 4, ceiling, apps.LLSC, 0)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	var stored []Word
	for k := Word(1); ; k++ {
		if !h.Put(k, k) {
			break
		}
		stored = append(stored, k)
	}
	// The ceiling pool holds dummies + live nodes; we must have far exceeded
	// the initial capacity and stopped at (or just under) the ceiling.
	if len(stored) < ceiling/2 {
		t.Fatalf("only %d puts before exhaustion at ceiling %d", len(stored), ceiling)
	}
	if m.Capacity() != ceiling {
		t.Fatalf("capacity at exhaustion = %d, want the ceiling %d", m.Capacity(), ceiling)
	}
	if st := m.PoolStats(); st.Exhaustions == 0 {
		t.Errorf("exhaustion at ceiling not counted: %+v", st)
	}
	// Freeing makes room: delete two, the next two puts succeed.
	for _, k := range stored[:2] {
		if !h.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	for i := 0; i < 2; i++ {
		k := Word(100000 + i)
		if !h.Put(k, k) {
			t.Fatalf("Put after frees failed (capacity %d)", m.Capacity())
		}
	}
	a := m.Audit()
	if a.Corrupt() {
		t.Fatalf("audit corrupt at ceiling: %s", a)
	}
}

// TestGrowBucketsHook checks the forced-doubling scenario hook and that the
// directory never exceeds its ceiling.
func TestGrowBucketsHook(t *testing.T) {
	m := growMap(t, 1, 4, 256, apps.LLSC, 0)
	if m.Buckets() != 1 {
		t.Fatalf("initial buckets = %d, want 1", m.Buckets())
	}
	doubles := 0
	for m.GrowBuckets() {
		doubles++
		if doubles > 20 {
			t.Fatalf("GrowBuckets never hit the ceiling")
		}
	}
	maxB := floorPow2(256 / growThreshold)
	if m.Buckets() != maxB {
		t.Errorf("buckets at ceiling = %d, want %d", m.Buckets(), maxB)
	}
	a := m.Audit()
	if a.Corrupt() {
		t.Fatalf("audit corrupt after forced doubling: %s", a)
	}
	if a.Splits != int64(doubles) {
		t.Errorf("splits = %d, want %d", a.Splits, doubles)
	}
	// Puts still conform with a fully pre-split directory.
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := Word(1); k <= 100; k++ {
		if !h.Put(k, k+7) {
			t.Fatalf("Put(%d) after pre-split failed", k)
		}
	}
	for k := Word(1); k <= 100; k++ {
		if v, ok := h.Get(k); !ok || v != k+7 {
			t.Fatalf("Get(%d) = %d,%v after pre-split", k, v, ok)
		}
	}
	if a := m.Audit(); a.Corrupt() {
		t.Fatalf("audit corrupt after pre-split traffic: %s", a)
	}
}

// TestGrowMapConcurrent hammers a growing map from several goroutines under
// every sound regime × reclaimer cell, then audits: zero lost, zero doubled,
// split order intact.  (Run under -race in CI.)
func TestGrowMapConcurrent(t *testing.T) {
	const (
		n       = 4
		ops     = 4000
		keys    = 512
		initial = 8
		ceiling = 4096
	)
	for _, tc := range []struct {
		name string
		prot Protection
		bits uint
		opts []apps.StructOption
	}{
		{"llsc+none", apps.LLSC, 0, nil},
		{"tag16+hp", apps.Tagged, 16, []apps.StructOption{apps.WithReclaimer(reclaim.NewHazard)}},
		{"detector+epoch", apps.Detector, 0, []apps.StructOption{apps.WithReclaimer(reclaim.NewEpoch)}},
		{"raw+hp", apps.Raw, 0, []apps.StructOption{apps.WithReclaimer(reclaim.NewHazard)}},
		{"llsc+epoch+guarded", apps.LLSC, 0, []apps.StructOption{apps.WithReclaimer(reclaim.NewEpoch), apps.WithGuardedPool()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := growMap(t, n, initial, ceiling, tc.prot, tc.bits, tc.opts...)
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := m.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				h.MaxSpin = 200_000
				wg.Add(1)
				go func(pid int, h *Handle) {
					defer wg.Done()
					rng := Word(pid*2654435761 + 1)
					for i := 0; i < ops; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						k := rng%keys + 1
						switch i % 4 {
						case 0, 1:
							h.Get(k)
						case 2:
							h.Put(k, rng)
						case 3:
							h.Delete(k)
						}
					}
					h.pool.Clear()
					for h.pool.Drain() > 0 {
					}
				}(pid, h)
			}
			wg.Wait()
			a := m.Audit()
			if a.Corrupt() {
				t.Fatalf("audit corrupt after concurrent growth: %s", a)
			}
			if a.SegmentAppends == 0 {
				t.Errorf("no segment appends under %d-key traffic from capacity %d: %s", keys, initial, a)
			}
		})
	}
}

// TestGrowMapRejectsCombining documents the one unsupported composition.
func TestGrowMapRejectsCombining(t *testing.T) {
	f := shmem.NewNativeFactory()
	_, err := NewMap(f, 2, 8, 1, apps.LLSC, 0, apps.WithGrowth(64), apps.WithCombining())
	if err == nil {
		t.Fatal("combining+growth accepted; want a construction error")
	}
}

// TestGrowMapRejectsBadCeiling documents ceiling validation.
func TestGrowMapRejectsBadCeiling(t *testing.T) {
	f := shmem.NewNativeFactory()
	if _, err := NewMap(f, 2, 8, 1, apps.LLSC, 0, apps.WithGrowth(4)); err == nil {
		t.Fatal("ceiling below initial capacity accepted; want a construction error")
	}
}

// TestGrowMapFastPathBound checks the satellite fix directly: the wait-free
// read's hop bound follows the growth snapshot, so chains longer than the
// *initial* capacity don't spuriously tear every fast read.
func TestGrowMapFastPathBound(t *testing.T) {
	const initial = 4
	m := growMap(t, 1, initial, 1024, apps.LLSC, 0)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	// With one bucket and no splits the global list is a single chain far
	// longer than the initial capacity.  (Suppress doubling by keeping the
	// put count under a threshold check window... it isn't — so force all
	// keys through bucket 0 by probing before any split can trigger.)
	const keys = 30 // under growCheckEvery, so no threshold check fires
	for k := Word(1); k <= keys; k++ {
		if !h.Put(k, k*3) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	if m.Buckets() != 1 {
		t.Skipf("directory doubled during fill; chain-length premise gone")
	}
	before := m.Audit().ReadFallbacks
	for k := Word(1); k <= keys; k++ {
		if v, ok := h.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if after := m.Audit().ReadFallbacks; after != before {
		t.Errorf("quiescent reads fell back %d times on a %d-node chain (capacity %d): stale hop bound",
			after-before, keys, m.Capacity())
	}
}

// TestGrowMapSortInvariant checks split ordering end to end with a directory
// that doubles while keys with colliding and distinct hashes interleave.
func TestGrowMapSortInvariant(t *testing.T) {
	m := growMap(t, 1, 8, 512, apps.Detector, 0)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := Word(1); k <= 200; k++ {
		if !h.Put(k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
		if k%17 == 0 {
			m.GrowBuckets() // force splits at awkward moments
		}
		if k%5 == 0 {
			h.Delete(k - 2)
		}
	}
	a := m.Audit()
	if a.Disordered {
		t.Fatalf("split order violated: %s", a)
	}
	if a.BadShortcuts > 0 {
		t.Fatalf("bad bucket shortcuts: %s", a)
	}
	if a.Corrupt() {
		t.Fatalf("audit corrupt: %s", a)
	}
	if a.Dummies < 2 {
		t.Errorf("expected multiple dummies after forced splits, got %d", a.Dummies)
	}
}

// TestGrowMapHandlesAfterResize builds handles before any growth, grows, and
// checks the old handles keep operating (lazy handle-table extension).
func TestGrowMapHandlesAfterResize(t *testing.T) {
	m := growMap(t, 2, 4, 512, apps.LLSC, 0)
	h0, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	for k := Word(1); k <= 150; k++ {
		if !h0.Put(k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	// h1 was built when capacity was 4 and the directory had 1 bucket; it
	// must still see every binding and be able to write.
	for k := Word(1); k <= 150; k++ {
		if v, ok := h1.Get(k); !ok || v != k {
			t.Fatalf("stale handle Get(%d) = %d,%v", k, v, ok)
		}
	}
	if !h1.Put(9999, 1) || !h1.Delete(9999) {
		t.Fatal("stale handle write path failed after resize")
	}
	if a := m.Audit(); a.Corrupt() {
		t.Fatalf("audit corrupt: %s", a)
	}
}

func TestFloorPow2(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8}, {1000, 512},
	} {
		if got := floorPow2(tc.in); got != tc.want {
			t.Errorf("floorPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// String-format sanity for the new audit fields.
func TestGrowAuditString(t *testing.T) {
	a := MapAudit{Live: 1, Dummies: 2, Splits: 3, SegmentAppends: 4}
	s := a.String()
	for _, want := range []string{"dummies=2", "splits=3", "appends=4"} {
		if !containsStr(s, want) {
			t.Errorf("audit string %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

var _ = fmt.Sprintf // keep fmt for debug edits
