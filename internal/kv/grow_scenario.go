package kv

import (
	"fmt"

	"abadetect/internal/apps"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// growScenarioKeys finds the three keys the resize script needs, by searching
// the key space at construction time (the script is deterministic but the
// hash is fixed, so the keys are found, not chosen): ka and kb hash even —
// bucket 0 once the directory doubles to two buckets, with reversed-hash sort
// keys preceding every dummy a split can mint — labeled so the global list
// reads d0 → a → b regardless of insert order; kf hashes odd — bucket 1,
// sorting after bucket 1's dummy.
func growScenarioKeys() (ka, kb, kf Word) {
	var even []Word
	for k := Word(1); len(even) < 2 || kf == 0; k++ {
		if hash64(k)&1 == 0 {
			if len(even) < 2 {
				even = append(even, k)
			}
		} else if kf == 0 {
			kf = k
		}
	}
	if sortKeyData(even[0]) > sortKeyData(even[1]) {
		even[0], even[1] = even[1], even[0]
	}
	return even[0], even[1], kf
}

// MapGrowABAScenario plays the resize-under-traffic corruption script: a
// victim deleter stalls mid-delete on a growing map, the adversary clears the
// list behind it, the directory doubles, and the new bucket's lazy
// initialization recycles a freed node into a dummy whose insert commit
// restores exactly the link word the victim armed.
//
// The map grows from one bucket with the node pool at its ceiling (capacity =
// maxCapacity = 3), so recycling is immediate and the split is the only
// source of fresh structure.  With the list d0 → a → b in nodes 1, 2, 3:
//
//  1. the victim begins Delete(ka): it marks node 2 and stalls holding the
//     armed unlink next[d0]: 2 → 3;
//  2. the adversary's Delete(kb) first helps the victim's stalled unlink
//     (freeing node 2), then unlinks and frees node 3 — the free ring is
//     [2, 3] and the list is just d0;
//  3. the directory doubles (the forced split a threshold crossing would
//     perform);
//  4. the adversary's Put(kf, ·) lands in the new bucket 1: lazy bucket
//     initialization allocates node 2 back as bucket 1's dummy, and since the
//     dummy's sort key places it at the end of the now-empty run, its insert
//     commit swings next[d0] back to 2<<1 — the victim's armed word, restored
//     by the growth machinery itself — before the data insert links kf
//     (node 3) after the dummy and the directory publishes head[1] → 2;
//  5. the victim resumes: committing next[d0]: 2 → 3 splices the freshly
//     minted dummy out from under its own bucket iff the guard is fooled — a
//     raw guard is, leaving head[1] pointing at a node sitting in the free
//     ring (the audit's BadShortcuts smoking gun); tagged/LL/SC/detector
//     guards reject with a near-miss.
//
// Under a reclaimer the victim's published protection slots keep node 2 (hp
// and epoch) and node 3 (epoch: limbo behind the victim's pin) out of the
// allocator, so the adversary's growth path starves at the pool ceiling
// before the recycle completes, and the stale commit fails on plain
// inequality — the armed word never repeats — with zero near-misses:
// prevention by allocation discipline, before the guard ever sees an ABA.
func MapGrowABAScenario(f shmem.Factory, prot Protection, tagBits uint, opts ...apps.StructOption) (apps.ScenarioResult, error) {
	var r apps.ScenarioResult
	rec := trace.New(2, 128)
	rec.Watch(func(e trace.Event) bool {
		return e.Kind == trace.KindGuardNearMiss || e.Kind == trace.KindExhaust
	})
	opts = append(opts, apps.WithGrowth(3), apps.WithTrace(rec))
	m, err := NewMap(f, 2, 3, 1, prot, tagBits, opts...)
	if err != nil {
		return r, err
	}
	adversary, err := m.Handle(0)
	if err != nil {
		return r, err
	}
	victim, err := m.Handle(1)
	if err != nil {
		return r, err
	}
	ka, kb, kf := growScenarioKeys()
	// Setup: put in sort order so nodes 2 and 3 carry ka and kb — the list is
	// d0(1) → a(2) → b(3) either way, but the script names nodes.
	if !adversary.Put(ka, 101) || !adversary.Put(kb, 102) {
		return r, fmt.Errorf("kv: grow scenario setup puts failed")
	}
	// Victim: marks node 2 and stalls before the unlink, holding the armed
	// commit next[d0]: 2 → 3 — and, when configured, its protection slots on
	// nodes 1 and 2 (the two its walk traversed).
	cur, succ, found := victim.DeleteBegin(ka)
	if !found || cur != 2 || succ != 3 {
		return r, fmt.Errorf("kv: grow scenario DeleteBegin = (%d,%d,%v), want (2,3,true)", cur, succ, found)
	}
	// Adversary: one Delete(kb) clears the whole run — its walk reaches the
	// marked node 2 first and helps the victim's unlink (freeing it), then
	// removes the live kb binding (freeing node 3).
	if !adversary.Delete(kb) {
		return r, fmt.Errorf("kv: grow scenario Delete(kb) failed")
	}
	// The resize: one forced directory doubling under the stalled delete (the
	// scenario pool is too small for the threshold-derived bucket ceiling, so
	// the split is forced through the in-package seam).
	if !m.growBuckets(-1, int(m.grow.size.Read(-1)), true) {
		return r, fmt.Errorf("kv: grow scenario directory doubling failed")
	}
	// The recycle leg: bucket 1 comes alive.  Unprotected, its dummy is node
	// 2 — the dummy insert restores the victim's armed word — and its first
	// binding is node 3; under a reclaimer the growth path starves at the
	// ceiling instead.
	r.Starved = !adversary.Put(kf, 104)
	// Victim resumes: the unlink commit splices the new bucket's dummy out
	// from under its published shortcut iff the guard is fooled.
	r.Fooled = victim.DeleteCommit()
	audit := m.Audit()
	r.Corrupt, r.Detail = audit.Corrupt(), audit.String()
	r.Guard = m.GuardMetrics()
	r.Pool = m.PoolStats()
	if inc := rec.Incident(); inc != nil {
		r.Incident = inc
	} else {
		r.Incident = rec.Merge()
	}
	return r, nil
}
