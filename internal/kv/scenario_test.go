package kv

import (
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// TestMapABAScenarioLadder replays the deterministic recycling script
// across the protection ladder with immediate reuse: the raw guard is
// provably fooled and corrupts the map; a wide-enough tag, LL/SC, and the
// detector all reject the stale unlink and count the near-miss (the bucket
// head's value compared equal — an ABA caught in the act).
func TestMapABAScenarioLadder(t *testing.T) {
	for _, tc := range []struct {
		name       string
		prot       Protection
		tagBits    uint
		wantFooled bool
	}{
		{"raw", apps.Raw, 0, true},
		{"tag16", apps.Tagged, 16, false},
		{"llsc", apps.LLSC, 0, false},
		{"detector", apps.Detector, 0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := MapABAScenario(shmem.NewNativeFactory(), tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled != tc.wantFooled {
				t.Fatalf("fooled = %v, want %v (%s)", res.Fooled, tc.wantFooled, res.Detail)
			}
			if res.Corrupt != tc.wantFooled {
				t.Fatalf("corrupt = %v, want %v (%s)", res.Corrupt, tc.wantFooled, res.Detail)
			}
			if !tc.wantFooled && res.Guard.NearMisses == 0 {
				t.Errorf("prevented map ABA not counted as a near-miss: %s", res.Guard)
			}
			if res.Starved {
				t.Errorf("immediate reuse starved the adversary: %s", res.Detail)
			}
		})
	}
}

// TestMapABAScenarioWrapsNarrowTag: the 1-bit folklore tag wraps inside the
// victim's window (the head takes 3 successful swings before the stale
// commit, and under a raw-free-running tag 2 swings restore a 1-bit tag...)
// — the scenario's 3 swings leave a 1-bit tag UNequal, so use 2-swing
// parity: with tagBits=1 the relevant question is simply whether the script
// can fool it; it can't be fooled here (3 is odd), so assert the tag
// survives this particular schedule while raw does not — the wraparound
// refutation for the map rides E6's stack ladder, where the swing count is
// even.
func TestMapABAScenarioNarrowTagStillPrevented(t *testing.T) {
	res, err := MapABAScenario(shmem.NewNativeFactory(), apps.Tagged, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fooled || res.Corrupt {
		t.Fatalf("1-bit tag fooled by an odd-swing schedule: %s", res.Detail)
	}
}

// TestMapReclaimPreventsScenarioWithZeroNearMisses: raw+hp and raw+epoch
// pass the deterministic script that raw+none provably corrupts, with zero
// guard near-misses — the recycle leg never happens, so there is no ABA for
// the guard to see.  hp prevents by substitution (the adversary's put gets a
// different node), epoch by starvation (every free node sits in limbo behind
// the victim's pin).
func TestMapReclaimPreventsScenarioWithZeroNearMisses(t *testing.T) {
	for _, rc := range []struct {
		name        string
		mk          reclaim.Maker
		wantStarved bool
	}{
		{"hp", reclaim.NewHazard, false},
		{"epoch", reclaim.NewEpoch, true},
	} {
		t.Run("raw+"+rc.name, func(t *testing.T) {
			res, err := MapABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(rc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled || res.Corrupt {
				t.Fatalf("fooled=%v corrupt=%v (%s)", res.Fooled, res.Corrupt, res.Detail)
			}
			if res.Guard.NearMisses != 0 {
				t.Errorf("guard near-misses = %d, want 0 (prevention, not detection)", res.Guard.NearMisses)
			}
			if res.Starved != rc.wantStarved {
				t.Errorf("starved = %v, want %v (%s)", res.Starved, rc.wantStarved, res.Detail)
			}
		})
	}
	// The control arm: the pass-through reclaimer reproduces the corruption.
	res, err := MapABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(reclaim.NewNone))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fooled || !res.Corrupt {
		t.Errorf("raw+none: fooled=%v corrupt=%v, want the corruption back (%s)", res.Fooled, res.Corrupt, res.Detail)
	}
}
