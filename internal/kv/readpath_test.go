package kv

import (
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// TestWaitFreeGetTornReadMatrix scripts the exact interleaving the seqlock
// fence exists for: a reader stalls between loading a node's key and
// validating the link it hangs off, while a writer deletes that binding and
// recycles the node under a *different* key in the same bucket.  A reader
// that accepts its pre-stall key match with the post-stall value would
// return a (key, value) pair that never coexisted.
//
// The sound regimes must turn the stall into a torn attempt (counted in
// MapAudit.ReadRetries) and re-read; raw+none is the documented §1 victim —
// the recycled node restores the head link bit-for-bit, the value-blind
// Validate accepts it, and the mixed pair escapes.  Raw under a real
// reclaimer disables the fast path entirely (Handle.fastOK), so the stall
// hook never fires and the guarded read stays sound.
func TestWaitFreeGetTornReadMatrix(t *testing.T) {
	type cfg struct {
		name    string
		prot    Protection
		tagBits uint
		rc      reclaim.Maker
		victim  bool // the mixed read is the expected outcome
	}
	var cfgs []cfg
	prots := []struct {
		name    string
		prot    Protection
		tagBits uint
	}{
		{"raw", apps.Raw, 0},
		{"tag16", apps.Tagged, 16},
		{"llsc", apps.LLSC, 0},
		{"detector", apps.Detector, 0},
	}
	rcs := []struct {
		name string
		mk   reclaim.Maker
	}{
		{"none", nil},
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
	for _, p := range prots {
		for _, r := range rcs {
			cfgs = append(cfgs, cfg{
				name: p.name + "+" + r.name, prot: p.prot, tagBits: p.tagBits, rc: r.mk,
				victim: p.prot == apps.Raw && r.mk == nil,
			})
		}
	}

	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			// One bucket and one node: key 5 *must* recycle key 1's node at
			// the same index (the allocator prefers untouched nodes over
			// recycled ones, so spare capacity would dodge the reuse this
			// script depends on).  Under hp/epoch the exhaustion path drains
			// eagerly — the stalled reader holds no protection, so the node
			// still recycles, just behind a bumped guard the fence catches.
			m := buildMap(t, 2, 1, 1, c.prot, c.tagBits, c.rc)
			r, err := m.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.Handle(1)
			if err != nil {
				t.Fatal(err)
			}
			if !w.Put(1, 100) {
				t.Fatal("setup Put(1, 100) failed")
			}
			fired := false
			r.ReadStall = func() {
				if fired {
					return
				}
				fired = true
				// The writer runs to completion inside the reader's stall:
				// remove the binding, then recycle its node under key 5.
				if !w.Delete(1) {
					t.Error("stall-window Delete(1) failed")
				}
				if !w.Put(5, 999) {
					t.Error("stall-window Put(5, 999) failed")
				}
			}
			v, ok := r.Get(1)

			if c.victim {
				if !fired {
					t.Fatal("fast path never reached the stall point")
				}
				if !ok || v != 999 {
					t.Errorf("Get(1) = (%d, %v); the value-blind raw guard is documented to accept the recycled node's value (999, true)", v, ok)
				}
			} else {
				// Linearizable outcomes only: the old binding's value, or a
				// miss (the Get overlaps the Delete).  999 is bound to key 5
				// and must never surface from Get(1).
				if ok && v != 100 {
					t.Errorf("Get(1) = (%d, %v): mixed (key, value) snapshot escaped the fence", v, ok)
				}
				if fired {
					if a := m.Audit(); a.ReadRetries == 0 {
						t.Error("torn attempt was not counted in ReadRetries")
					}
				}
			}
			// The writer's ops were well-formed in every cell; whatever the
			// reader saw, the structure itself must audit clean.
			r.ReadStall = nil
			if a := m.Audit(); a.Corrupt() {
				t.Errorf("structural audit after the script: %s", a)
			}
		})
	}
}

// TestHotPathAllocsWaitFreeGet pins the two costs the wait-free fast path
// eliminates: heap allocations (none per clean Get) and safe-memory-
// reclamation traffic (zero shared-memory steps on the reclaimer's hazard
// registers — no slot publish, no pin, no drain).  The reclaimer's state is
// allocated through a step-counting factory, so "no hazard-slot traffic" is
// a measured zero, not an argument; a guarded writer op on the same handle
// shows the counter is live.
func TestHotPathAllocsWaitFreeGet(t *testing.T) {
	counting := shmem.NewCounting(shmem.NewNativeFactory(), 2)
	countedHazard := func(f shmem.Factory, name string, n, capacity int) (reclaim.Reclaimer, error) {
		return reclaim.NewHazard(counting, name, n, capacity)
	}
	m := buildMap(t, 2, 8, 4, apps.LLSC, 0, countedHazard)
	h, err := m.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Put(1, 100) || !w.Put(2, 200) {
		t.Fatal("setup Puts failed")
	}

	allocs := testing.AllocsPerRun(200, func() {
		if v, ok := h.Get(1); !ok || v != 100 {
			t.Fatalf("Get(1) = (%d, %v)", v, ok)
		}
	})
	if allocs != 0 {
		t.Errorf("clean Get allocates %.1f objects/op, want 0", allocs)
	}

	base := counting.Steps(0)
	for i := 0; i < 100; i++ {
		h.Get(1) // hit
		h.Get(2) // hit, different chain position
		h.Get(7) // clean miss
	}
	if d := counting.Steps(0) - base; d != 0 {
		t.Errorf("300 clean Gets took %d reclaimer steps, want 0 (the fast path must not touch hazard slots)", d)
	}

	base = counting.Steps(0)
	if !h.Delete(1) {
		t.Fatal("Delete(1) failed")
	}
	if d := counting.Steps(0) - base; d == 0 {
		t.Error("guarded Delete took no reclaimer steps — the counter is not observing the hazard slots")
	}
}
