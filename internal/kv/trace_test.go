package kv

import (
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// TestMapScenarioIncidentOrder is the flight recorder's acceptance test:
// the raw+none MapABAScenario must attach an incident dump whose merged
// event sequence tells the whole §1 story in happens-before order —
//
//  1. the victim's armed load of the bucket head (the reference it will
//     later commit against),
//  2. the adversary's release of node 3 (the helped unlink frees it),
//  3. the adversary's re-allocation of node 3 (the recycle that restores
//     the head word),
//  4. the victim's corrupting commit on the bucket head, *accepted* —
//     because for a raw guard the recycled word compares equal.
func TestMapScenarioIncidentOrder(t *testing.T) {
	r, err := MapABAScenario(shmem.NewNativeFactory(), apps.Raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fooled || !r.Corrupt {
		t.Fatalf("raw+none scenario no longer corrupts: fooled=%v corrupt=%v", r.Fooled, r.Corrupt)
	}
	if len(r.Incident) == 0 {
		t.Fatal("scenario attached no incident dump")
	}

	// pid 0 is the adversary, pid 1 the victim (scenario construction order).
	armedLoad, release, realloc, commit := -1, -1, -1, -1
	for i, e := range r.Incident {
		switch {
		case e.Pid == 1 && e.Kind == trace.KindGuardLoad && e.Obj == "mhead[0]" && armedLoad < 0:
			armedLoad = i // the victim's first head load is the armed one
		case e.Pid == 0 && e.Kind == trace.KindRelease && e.A == 3:
			release = i
		case e.Pid == 0 && e.Kind == trace.KindAlloc && e.A == 3 && release >= 0:
			realloc = i // node 3's re-allocation after its release
		case e.Pid == 1 && e.Kind == trace.KindGuardCommit && e.Obj == "mhead[0]":
			commit = i // the victim's accepted unlink commit
		}
	}
	if armedLoad < 0 || release < 0 || realloc < 0 || commit < 0 {
		t.Fatalf("incident dump missing legs: armedLoad=%d release=%d realloc=%d commit=%d\n%s",
			armedLoad, release, realloc, commit, trace.Format(r.Incident))
	}
	if !(armedLoad < release && release < realloc && realloc < commit) {
		t.Fatalf("incident legs out of happens-before order: armedLoad=%d release=%d realloc=%d commit=%d\n%s",
			armedLoad, release, realloc, commit, trace.Format(r.Incident))
	}
	// The dump itself must be GSeq-ordered (Merge's contract).
	for i := 1; i < len(r.Incident); i++ {
		if r.Incident[i].GSeq <= r.Incident[i-1].GSeq {
			t.Fatalf("incident dump not GSeq-ordered at %d", i)
		}
	}
}

// TestMapScenarioWatchFiresOnNearMiss checks the watch leg: a tagged run of
// the same script detects the ABA, so the incident is the *frozen* watch
// snapshot ending at the near-miss, not the end-of-run merge.
func TestMapScenarioWatchFiresOnNearMiss(t *testing.T) {
	r, err := MapABAScenario(shmem.NewNativeFactory(), apps.Tagged, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fooled || r.Corrupt {
		t.Fatalf("tagged scenario corrupted: fooled=%v corrupt=%v", r.Fooled, r.Corrupt)
	}
	if r.Guard.NearMisses == 0 {
		t.Fatal("tagged scenario recorded no near-miss")
	}
	if len(r.Incident) == 0 {
		t.Fatal("scenario attached no incident dump")
	}
	last := r.Incident[len(r.Incident)-1]
	if last.Kind != trace.KindGuardNearMiss {
		t.Fatalf("watch snapshot does not end at the near-miss: last=%v\n%s", last, trace.Format(r.Incident))
	}
}
