package kv

import (
	"fmt"
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/check"
	"abadetect/internal/sim"
)

// mapWorkloadRun builds a simulated run of a map workload and returns the
// runner.  ops[pid] is a string over 'p' (put key), 'q' (put the other
// key), 'g' (get key), 'd' (delete key) — two keys that collide into the
// single bucket, so every schedule contends on one chain.
func mapWorkloadRun(t *testing.T, ops []string) *sim.Runner {
	t.Helper()
	n := len(ops)
	runner := sim.NewRunner(n)
	m, err := NewMap(runner.Factory(), n, 8, 1, apps.LLSC, 0)
	if err != nil {
		runner.Close()
		t.Fatal(err)
	}
	for pid := range ops {
		pid := pid
		seq := ops[pid]
		err := runner.SetProgram(pid, func(p *sim.Proc) {
			h, herr := m.Handle(pid)
			if herr != nil {
				panic(herr)
			}
			boolw := func(b bool) Word {
				if b {
					return 1
				}
				return 0
			}
			for i, c := range seq {
				v := Word(pid*100 + i)
				switch c {
				case 'p':
					p.Invoke("Put", 1, v)
					ok := h.Put(1, v)
					p.Return(boolw(ok))
				case 'q':
					p.Invoke("Put", 2, v)
					ok := h.Put(2, v)
					p.Return(boolw(ok))
				case 'g':
					p.Invoke("Get", 1)
					got, ok := h.Get(1)
					p.Return(got, boolw(ok))
				case 'd':
					p.Invoke("Delete", 1)
					ok := h.Delete(1)
					p.Return(boolw(ok))
				}
			}
		})
		if err != nil {
			runner.Close()
			t.Fatal(err)
		}
	}
	if err := runner.Start(); err != nil {
		runner.Close()
		t.Fatal(err)
	}
	return runner
}

func TestMapLinearizableUnderRandomSchedules(t *testing.T) {
	ops := []string{"pgd", "pg", "dgq"}
	for seed := int64(0); seed < 150; seed++ {
		runner := mapWorkloadRun(t, ops)
		if _, err := runner.Run(sim.NewRandom(9000+seed), 200000); err != nil {
			t.Fatal(err)
		}
		if !runner.AllDone() {
			t.Fatal("run did not finish")
		}
		hist, pending, err := check.PairOps(runner.History())
		runner.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(pending) != 0 {
			t.Fatalf("seed %d: %d pending ops", seed, len(pending))
		}
		res := check.Linearizable(check.MapSpec{}, hist)
		if !res.Ok {
			var lines string
			for _, op := range hist {
				lines += fmt.Sprintf("  %s\n", op)
			}
			t.Fatalf("seed %d: map history not linearizable:\n%s", seed, lines)
		}
	}
}

func TestMapTinyWorkloadManySeeds(t *testing.T) {
	// The map's help-and-restart traversals make full schedule enumeration
	// explode (a Put is ~8 steps plus the duplicate sweep), so the tiny
	// workload gets a dense random sample, like the queue's.
	for seed := int64(0); seed < 400; seed++ {
		runner := mapWorkloadRun(t, []string{"p", "d"})
		if _, err := runner.Run(sim.NewRandom(51000+seed), 200000); err != nil {
			t.Fatal(err)
		}
		hist, _, err := check.PairOps(runner.History())
		runner.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res := check.Linearizable(check.MapSpec{}, hist); !res.Ok {
			t.Fatalf("seed %d: map history not linearizable", seed)
		}
	}
}
