package kv

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Growth mode: split-ordered expansion (Shalev–Shachnai recursive split
// ordering) over the map's existing Michael-style marked links, plus
// geometric node-space appends through the apps.Pool seam.
//
// The core inversion: instead of moving nodes between bucket chains when the
// directory doubles (a migration would race every concurrent get/put/delete
// and is not linearizable over this link protocol), ALL nodes live on ONE
// globally sorted list and buckets are mere shortcuts into it.  A node's
// sort key is the bit-reversal of its hash with the lowest bit forced to 1;
// a bucket b's shortcut lands on a *dummy* node whose sort key is the
// bit-reversal of b (lowest bit 0, so a dummy sorts immediately before its
// bucket's data).  Because the low log2(S) hash bits pick the bucket and
// reversal sends them to the top, every key of bucket b sorts into the
// half-open run (rev(b), next dummy), and doubling S from the live-count
// threshold splits each run in place: bucket b+S's new dummy drops into the
// middle of b's run, and not a single data node moves.  Growth is therefore
// wait-free for readers — a resize changes only (a) the directory size word,
// (b) lazily initialized shortcut words, and (c) the node-capacity snapshot.
//
// Every mutable word of the protocol is a guard.Guard load/commit (shortcut
// publication, dummy insertion, the data insert at sorted position, mark and
// unlink), so the split path inherits the regime ladder: raw is provably
// corruptible mid-resize (MapGrowABAScenario), tagged/llsc/detector reject
// the stale commit, and hp/epoch prevent the recycle leg outright.
//
// Node-space growth is the slab story one level up: registers and guards
// live in shmem.Spines, so a geometric segment append extends index
// addressing without relocating anything; the pool's Grow releases the new
// indices.  The publication order (field spines, then the capacity snapshot,
// then the pool) means an allocator can only ever hold an index whose
// registers are built, and the wait-free read path re-reads the snapshot for
// its hop bound instead of trusting a fixed field.

const (
	// growThreshold is the average live data nodes per bucket that triggers
	// a directory doubling.
	growThreshold = 6
	// growCheckEvery spaces a handle's threshold checks (summing the striped
	// live counter on every put would reintroduce the shared-line traffic
	// the stripes remove).
	growCheckEvery = 32
)

// growth is the resize state of a map built apps.WithGrowth.
type growth struct {
	maxCapacity int
	maxBuckets  int
	maker       guard.Maker
	factory     shmem.Factory

	// size is the bucket-directory size S (a power of two, monotone
	// doubling — a pure CAS is honest here because the word only ever moves
	// forward, so no ABA is possible on it).  capW is the published
	// node-capacity snapshot; indices 1..capW have built registers.
	size shmem.WritableCAS
	capW shmem.WritableCAS

	// live approximates the live data-node count (inserts minus logical
	// deletes; dummies don't count) — the doubling trigger.
	live *shmem.StripedCounter

	mu sync.Mutex // serializes node-space appends (growNodes)

	splits  atomic.Int64 // directory doublings
	appends atomic.Int64 // node-space segment appends
	retries atomic.Int64 // lost resize CAS races

	key  *shmem.Spine[shmem.Register] // key[i]; immutable while linked
	val  *shmem.Spine[shmem.Register] // val[i]; immutable while linked
	sort *shmem.Spine[shmem.Register] // split-order key of node i
	next *shmem.Spine[guard.Guard]    // packed (succ<<1 | mark)
	head *shmem.Spine[guard.Guard]    // bucket shortcuts; 0 = uninitialized
}

func (g *growth) capacityNow(pid int) int { return int(g.capW.Read(pid)) }

// hash64 is the murmur3 finalizer — the same mix the fixed-mode bucket
// function uses, unmasked so the bit-reversal has full entropy to sort on.
func hash64(k Word) Word {
	h := k
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// sortKeyData is a data node's position on the global list: reversed hash
// with the low bit forced to 1, so data always sorts strictly after the
// dummy of its bucket (whose reversed value has low bit 0).
func sortKeyData(k Word) Word { return bits.Reverse64(uint64(hash64(k))) | 1 }

// sortKeyDummy is bucket b's dummy position: the bit-reversal of b.
func sortKeyDummy(b int) Word { return bits.Reverse64(uint64(b)) }

// parentBucket clears b's highest set bit: the bucket whose run bucket b
// split off of, and therefore the list region b's dummy inserts into.
func parentBucket(b int) int { return b &^ (1 << (bits.Len(uint(b)) - 1)) }

// floorPow2 rounds v down to a power of two (minimum 1).
func floorPow2(v int) int {
	if v < 1 {
		return 1
	}
	return 1 << (bits.Len(uint(v)) - 1)
}

// newGrowMap is the growth-mode constructor branch of NewMap: the same
// guard-per-link map, but with every per-node and per-bucket array in a
// Spine and the directory/capacity words published through CAS objects.
func newGrowMap(f shmem.Factory, cfg apps.StructConfig, n, capacity, buckets int) (*Map, error) {
	maxCap := cfg.GrowTo
	if maxCap < capacity {
		return nil, fmt.Errorf("kv: growth ceiling %d below initial capacity %d", maxCap, capacity)
	}
	if cfg.Combining {
		return nil, fmt.Errorf("kv: combining and growth are mutually exclusive (combiner slots are per-bucket and the directory resizes)")
	}
	s0 := nextPow2(buckets)
	maxBuckets := floorPow2(maxCap / growThreshold)
	if maxBuckets < s0 {
		maxBuckets = s0
	}
	idxBits := shmem.BitsFor(maxCap + 1) // sized for the ceiling up front
	linkBits := idxBits + 1              // the mark bit rides beside the index
	g := &growth{
		maxCapacity: maxCap,
		maxBuckets:  maxBuckets,
		maker:       cfg.Maker,
		factory:     f,
		live:        shmem.NewStripedCounter(),
	}
	var err error
	if g.key, err = shmem.NewSpine(capacity+1, func(i int) (shmem.Register, error) {
		if i == 0 {
			return nil, nil
		}
		return f.NewRegister(fmt.Sprintf("mkey[%d]", i), 0), nil
	}); err != nil {
		return nil, err
	}
	if g.val, err = shmem.NewSpine(capacity+1, func(i int) (shmem.Register, error) {
		if i == 0 {
			return nil, nil
		}
		return f.NewRegister(fmt.Sprintf("mval[%d]", i), 0), nil
	}); err != nil {
		return nil, err
	}
	if g.sort, err = shmem.NewSpine(capacity+1, func(i int) (shmem.Register, error) {
		if i == 0 {
			return nil, nil
		}
		return f.NewRegister(fmt.Sprintf("msort[%d]", i), 0), nil
	}); err != nil {
		return nil, err
	}
	if g.next, err = shmem.NewSpine(capacity+1, func(i int) (guard.Guard, error) {
		if i == 0 {
			return nil, nil
		}
		return cfg.Maker(fmt.Sprintf("mnext[%d]", i), linkBits, 0)
	}); err != nil {
		return nil, fmt.Errorf("kv: map next guard: %w", err)
	}
	if g.head, err = shmem.NewSpine(s0, func(b int) (guard.Guard, error) {
		return cfg.Maker(fmt.Sprintf("mhead[%d]", b), linkBits, 0)
	}); err != nil {
		return nil, fmt.Errorf("kv: map head guard: %w", err)
	}
	if !g.head.Get(0).Conditional() {
		return nil, fmt.Errorf("kv: map needs conditional guards; %s guard is detection-only", g.head.Get(0).Regime())
	}
	g.size = f.NewCAS("mgrow.size", Word(s0))
	g.capW = f.NewCAS("mgrow.cap", Word(capacity))
	m := &Map{
		n:        n,
		capacity: capacity,
		buckets:  s0,
		grow:     g,

		readRetries:   shmem.NewStripedCounter(),
		readFallbacks: shmem.NewStripedCounter(),
		tr:            cfg.Trace,
	}
	if m.pool, err = apps.NewPool(f, cfg, "map", n, capacity, idxBits); err != nil {
		return nil, err
	}
	// Boot bucket 0: its dummy anchors the global list and is the walk start
	// for every uninitialized bucket, so it exists from construction on.
	// sortKeyDummy(0) == 0 and the registers initialize to 0, so only the
	// shortcut needs publishing.
	ph, err := m.pool.Handle(0)
	if err != nil {
		return nil, err
	}
	d := ph.Alloc()
	if d == 0 {
		return nil, fmt.Errorf("kv: growth boot: pool refused the bucket-0 dummy")
	}
	hh, err := g.head.Get(0).Handle(0)
	if err != nil {
		return nil, err
	}
	hh.Store(packLink(d, false))
	return m, nil
}

// headHandle returns this process's handle on bucket b's shortcut guard,
// creating it on first touch.  Handles are single-goroutine, so the lazy
// table is plain slice growth; the guard itself is already published by the
// directory spine before any size word could have named b.
func (h *Handle) headHandle(b int) guard.Handle {
	if b >= len(h.headG) {
		ng := make([]guard.Handle, h.m.grow.head.Len())
		copy(ng, h.headG)
		h.headG = ng
	}
	if h.headG[b] == nil {
		hh, err := h.m.grow.head.Get(b).Handle(h.pid)
		if err != nil {
			panic(fmt.Sprintf("kv: head[%d] handle for pid %d: %v", b, h.pid, err))
		}
		h.headG[b] = hh
	}
	return h.headG[b]
}

// nextHandle is headHandle for node link guards.
func (h *Handle) nextHandle(idx int) guard.Handle {
	if idx >= len(h.nextG) {
		ng := make([]guard.Handle, h.m.grow.next.Len())
		copy(ng, h.nextG)
		h.nextG = ng
	}
	if h.nextG[idx] == nil {
		nh, err := h.m.grow.next.Get(idx).Handle(h.pid)
		if err != nil {
			panic(fmt.Sprintf("kv: next[%d] handle for pid %d: %v", idx, h.pid, err))
		}
		h.nextG[idx] = nh
	}
	return h.nextG[idx]
}

// bucketG hashes k under the current directory size and returns its bucket
// plus its split-order key.  The size read is a genuine shared-memory step;
// a stale size is harmless — the global list is fully sorted, so a walk from
// an older (coarser) dummy still passes every node of the key's run.
func (h *Handle) bucketG(k Word) (b int, sk Word) {
	hh := hash64(k)
	s := h.m.grow.size.Read(h.pid)
	return int(hh & (s - 1)), bits.Reverse64(uint64(hh)) | 1
}

// walkG is the growth-mode seek: an ordered walk of the global list from the
// nearest initialized ancestor of bucket b, helping unlink marked nodes,
// under the same Load → Protect → Validate → dereference fence as the
// fixed-mode seek (two alternating protection slots, predecessor
// re-validated after every publish).
//
// With insert=false it returns the (skip+1)-th live node whose sort key is
// sk and whose key is k (cur=0 on a miss, with prev armed where the run
// ended).  With insert=true it stops at the first node with sort >= sk and
// returns it as cur (0 at end of list), prev armed immediately before it —
// the sorted insertion point; the caller checks cur's sort for equality when
// it wants to adopt an existing dummy.
func (h *Handle) walkG(b int, sk, k Word, insert bool, skip int, spins *int) (prev guard.Handle, cur int, curNext Word, ok bool) {
	g := h.m.grow
retry:
	for {
		if h.spent(*spins) {
			return nil, 0, 0, false
		}
		*spins++
		// Find the nearest initialized ancestor.  The read never initializes
		// a bucket — only Put does (it allocates anyway) — so walks stay
		// allocation-free; bucket 0 is always initialized.
		sb := b
		prev = h.headHandle(sb)
		prevW, _ := prev.Load()
		for prevW == 0 && sb != 0 {
			sb = parentBucket(sb)
			prev = h.headHandle(sb)
			prevW, _ = prev.Load()
		}
		slot, remaining := 0, skip
		for {
			if h.spent(*spins) {
				return nil, 0, 0, false
			}
			*spins++
			cur = linkIdx(prevW)
			if cur == 0 {
				return prev, 0, 0, true
			}
			if h.smr {
				h.pool.Protect(slot, cur)
				if !prev.Validate() {
					continue retry // cur moved before the protection was visible
				}
			}
			curNext, _ = h.nextHandle(cur).Load()
			csort := g.sort.Get(cur).Read(h.pid)
			var ck Word
			matchable := !insert && csort == sk
			if matchable {
				ck = g.key.Get(cur).Read(h.pid)
			}
			if !h.smr && !prev.Validate() {
				// Without a reclaimer the node could have been unlinked and
				// recycled between the loads; a changed predecessor link is
				// the tell (exact under the sound regimes, value-blind under
				// raw).
				continue retry
			}
			if linkMarked(curNext) {
				// cur is logically deleted: help unlink it, exactly as the
				// fixed-mode seek does.
				if !prev.Commit(curNext &^ 1) {
					continue retry
				}
				h.release(cur, slot)
				prevW, _ = prev.Load() // re-arm prev, continue in place
				continue
			}
			if insert {
				if csort >= sk {
					return prev, cur, curNext, true
				}
			} else {
				if csort > sk {
					return prev, 0, 0, true // walked past the run: miss
				}
				if matchable && ck == k {
					if remaining == 0 {
						return prev, cur, curNext, true
					}
					remaining--
				}
			}
			// Advance: cur becomes the predecessor; its next handle is armed
			// by the Load above, and the slots alternate so it stays covered.
			prev = h.nextHandle(cur)
			prevW = curNext
			slot ^= 1
		}
	}
}

// allocNode allocates with growth: an empty pool triggers a geometric
// segment append and a retry, until the ceiling.  Re-reading the capacity
// snapshot before each attempt is what keeps the exhaustion report honest
// mid-resize — Alloc failing against capacity another process already
// extended must retry, not report a false "exhausted".  A miss with kills
// still sitting in the operation's retire buffer flushes them first and
// retries — those nodes are freeable once handed to the reclaimer, and
// growing (or reporting exhaustion) while holding them would be spurious.
func (h *Handle) allocNode() int {
	for {
		seen := h.m.grow.capacityNow(h.pid)
		if idx := h.pool.Alloc(); idx != 0 {
			return idx
		}
		if len(h.retireBuf) > 0 {
			h.flushRetires()
			continue
		}
		if !h.m.growNodes(seen) {
			return 0
		}
	}
}

// growNodes appends a node-space segment: double (clamped to the ceiling),
// build the new field registers and link guards, publish the capacity
// snapshot, then release the indices through the pool.  The order is the
// whole protocol — a pool can only hand out an index whose spines are built
// and whose capacity snapshot covers it.  `seen` is the capacity the caller
// failed its Alloc against; if the map has already grown past it, the append
// is skipped and the caller just retries.
func (m *Map) growNodes(seen int) bool {
	g := m.grow
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.capacityNow(-1)
	if cur > seen {
		return true // a concurrent append beat us: retry the alloc
	}
	if cur >= g.maxCapacity {
		return false
	}
	newCap := cur * 2
	if newCap > g.maxCapacity {
		newCap = g.maxCapacity
	}
	if _, err := g.key.Grow(newCap+1, func(i int) (shmem.Register, error) {
		return g.factory.NewRegister(fmt.Sprintf("mkey[%d]", i), 0), nil
	}); err != nil {
		return false
	}
	if _, err := g.val.Grow(newCap+1, func(i int) (shmem.Register, error) {
		return g.factory.NewRegister(fmt.Sprintf("mval[%d]", i), 0), nil
	}); err != nil {
		return false
	}
	if _, err := g.sort.Grow(newCap+1, func(i int) (shmem.Register, error) {
		return g.factory.NewRegister(fmt.Sprintf("msort[%d]", i), 0), nil
	}); err != nil {
		return false
	}
	idxBits := shmem.BitsFor(g.maxCapacity + 1)
	if _, err := g.next.Grow(newCap+1, func(i int) (guard.Guard, error) {
		return g.maker(fmt.Sprintf("mnext[%d]", i), idxBits+1, 0)
	}); err != nil {
		return false
	}
	g.capW.Write(-1, Word(newCap))
	if _, err := m.pool.Grow(newCap); err != nil {
		return false
	}
	g.appends.Add(1)
	return true
}

// growBuckets doubles the directory from s: the shortcut spine is extended
// (new guards, word 0 = uninitialized) *before* the size CAS, so any process
// that observes the doubled size finds every slot built.  A lost CAS means a
// concurrent doubling won — counted as a resize retry, and the caller's
// threshold re-check decides whether another doubling is still warranted.
// force lets the in-package scenarios double past maxBuckets (a scenario
// pool is deliberately tiny, which makes the derived bucket ceiling 1); the
// public hook and the traffic path never force.
func (m *Map) growBuckets(pid, s int, force bool) bool {
	g := m.grow
	if s >= g.maxBuckets && !force {
		return false
	}
	idxBits := shmem.BitsFor(g.maxCapacity + 1)
	if _, err := g.head.Grow(2*s, func(b int) (guard.Guard, error) {
		return g.maker(fmt.Sprintf("mhead[%d]", b), idxBits+1, 0)
	}); err != nil {
		return false
	}
	if g.size.CompareAndSwap(pid, Word(s), Word(2*s)) {
		g.splits.Add(1)
		return true
	}
	g.retries.Add(1)
	return false
}

// GrowBuckets forces one directory doubling (test/scenario hook; the traffic
// path doubles off the live-count threshold instead).  It reports whether
// the directory actually doubled.
func (m *Map) GrowBuckets() bool {
	if m.grow == nil {
		return false
	}
	return m.growBuckets(-1, int(m.grow.size.Read(-1)), false)
}

// maybeGrow is Put's amortized threshold check: every growCheckEvery puts,
// sum the striped live counter and double the directory when the average
// chain would exceed growThreshold.
func (h *Handle) maybeGrow() {
	h.growTick++
	if h.growTick < growCheckEvery {
		return
	}
	h.growTick = 0
	g := h.m.grow
	s := int(g.size.Read(h.pid))
	if s >= g.maxBuckets {
		return
	}
	if g.live.Load() <= int64(s*growThreshold) {
		return
	}
	h.m.growBuckets(h.pid, s, false)
}

// ensureBucket makes bucket b's shortcut point at its dummy, initializing
// ancestors recursively (the recursive-split directory).  Dummy creation is
// alloc-then-adopt: each racer allocates its OWN candidate, walks the parent
// run, adopts an existing equal-sort dummy if one is already linked (the
// insert commit serializes racers, so the dummy per sort key is unique), and
// a loser retires its never-linked candidate.  Only Put calls this — reads
// and deletes walk from an initialized ancestor instead, so they never
// allocate.
func (h *Handle) ensureBucket(b int, spins *int) bool {
	if b == 0 {
		return true // booted at construction
	}
	hb := h.headHandle(b)
	if w, _ := hb.Load(); w != 0 {
		return true
	}
	if !h.ensureBucket(parentBucket(b), spins) {
		return false
	}
	sk := sortKeyDummy(b)
	cand := h.allocNode()
	if cand == 0 {
		return false
	}
	g := h.m.grow
	g.sort.Get(cand).Write(h.pid, sk)
	g.key.Get(cand).Write(h.pid, 0)
	g.val.Get(cand).Write(h.pid, 0)
	d := 0
	for {
		if h.spent(*spins) {
			h.retire(cand)
			return false
		}
		prev, cur, _, ok := h.walkG(parentBucket(b), sk, 0, true, 0, spins)
		if !ok {
			h.retire(cand)
			return false
		}
		if cur != 0 && g.sort.Get(cur).Read(h.pid) == sk {
			// A racer's dummy is already on the list: adopt it and hand the
			// never-linked candidate straight back.
			h.retire(cand)
			d = cur
			break
		}
		h.nextHandle(cand).Store(packLink(cur, false))
		if prev.Commit(packLink(cand, false)) {
			d = cand
			break
		}
	}
	// Publish the shortcut.  A racing initializer publishes the same dummy
	// (it adopted ours or we adopted its), so a lost commit changes nothing.
	if w, _ := hb.Load(); w == 0 {
		hb.Commit(packLink(d, false))
	}
	return true
}

// putG is the growth-mode Put: ensure the bucket's dummy, insert the fresh
// node at its sorted position (immediately before the equal-sort run, so the
// newest binding shadows older ones exactly like the fixed-mode
// insert-at-head), then sweep duplicates.
func (h *Handle) putG(k, v Word) bool {
	spins := 0
	b, sk := h.bucketG(k)
	if !h.ensureBucket(b, &spins) {
		h.endOp(true)
		return false
	}
	idx := h.allocNode()
	if idx == 0 {
		h.endOp(true)
		return false
	}
	g := h.m.grow
	g.key.Get(idx).Write(h.pid, k)
	g.val.Get(idx).Write(h.pid, v)
	g.sort.Get(idx).Write(h.pid, sk)
	for {
		if h.spent(spins) {
			h.retire(idx) // never linked: hand the node straight back
			h.flushRetires()
			return false
		}
		prev, cur, _, ok := h.walkG(b, sk, k, true, 0, &spins)
		if !ok {
			h.retire(idx)
			h.flushRetires()
			return false
		}
		// Reset the recycled node's link; only we touch an unlinked node.
		h.nextHandle(idx).Store(packLink(cur, false))
		// Committing prev from packLink(cur) to packLink(idx) proves cur was
		// still prev's successor — the sorted-position insert is the same
		// conditional shape as the unlink, and as ABA-exposed under raw.
		if prev.Commit(packLink(idx, false)) {
			break
		}
	}
	g.live.Add(h.lane, 1)
	h.sweepG(b, k, sk, 1, &spins)
	h.endOp(false)
	h.maybeGrow()
	return true
}

// sweepG marks and unlinks every live k-node past the first `keep` live
// matches — the fixed-mode sweep's kill-order discipline (shadowed
// duplicates die before the binding) on the ordered list.
func (h *Handle) sweepG(b int, k, sk Word, keep int, spins *int) bool {
	killed := false
	for {
		if keep == 0 && h.sweepG(b, k, sk, 1, spins) {
			killed = true // shadowed duplicates died first; re-probe
		}
		prev, cur, curNext, ok := h.walkG(b, sk, k, false, keep, spins)
		if !ok || cur == 0 {
			return killed
		}
		// Logical delete: mark cur's own next pointer (armed by walkG's
		// Load), freezing the link before the unlink.
		if !h.nextHandle(cur).Commit(curNext | 1) {
			continue
		}
		h.m.grow.live.Add(h.lane, -1)
		killed = true
		// Physical unlink; on failure the node stays marked and any later
		// traversal helps.
		if prev.Commit(curNext &^ 1) {
			h.retire(cur)
		}
	}
}

// getG is the growth-mode guarded Get body.
func (h *Handle) getG(b int, sk, k Word) (Word, bool) {
	spins := 0
	for {
		prev, cur, _, ok := h.walkG(b, sk, k, false, 0, &spins)
		if !ok || cur == 0 {
			h.endOp(true)
			return 0, false
		}
		v := h.m.grow.val.Get(cur).Read(h.pid)
		if !h.smr && !prev.Validate() {
			continue // the node moved while we read it: retry
		}
		h.endOp(false)
		return v, true
	}
}

// delG is the growth-mode Delete body.
func (h *Handle) delG(k Word) bool {
	b, sk := h.bucketG(k)
	spins := 0
	deleted := h.sweepG(b, k, sk, 0, &spins)
	h.endOp(!deleted)
	return deleted
}

// deleteBeginG is DeleteBegin on the ordered list: mark the first live
// k-node and stop before the unlink, arming the pending commit for
// DeleteCommit (shared between modes).
func (h *Handle) deleteBeginG(k Word) (cur, succ int, found bool) {
	b, sk := h.bucketG(k)
	spins := 0
	for {
		prev, c, curNext, ok := h.walkG(b, sk, k, false, 0, &spins)
		if !ok || c == 0 {
			h.pendingPrev, h.pendingCur, h.pendingSucc = nil, 0, 0
			h.endOp(true)
			return 0, 0, false
		}
		if !h.nextHandle(c).Commit(curNext | 1) {
			continue
		}
		h.m.grow.live.Add(h.lane, -1)
		h.pendingPrev, h.pendingCur, h.pendingSucc = prev, c, curNext&^1
		h.ring.Record(trace.KindOpBegin, "delete", uint64(c), uint64(linkIdx(curNext)))
		return c, linkIdx(curNext), true
	}
}

// getGrow is the growth-mode Get entry: wait-free fast path first, guarded
// ordered walk on sustained tearing.
func (h *Handle) getGrow(k Word) (Word, bool) {
	b, sk := h.bucketG(k)
	if h.fastOK {
		for attempt := 0; attempt < fastGetRetries; attempt++ {
			if v, ok, clean := h.tryGetFastG(b, sk, k); clean {
				return v, ok
			}
			h.m.readRetries.Add(h.lane, 1) // one bump per torn attempt
		}
		h.m.readFallbacks.Add(h.lane, 1)
	}
	return h.getG(b, sk, k)
}

// tryGetFastG is the wait-free seqlock read on the ordered list: the
// fixed-mode tryGetFast protocol, with the run's sort keys steering the walk
// and — the growth-snapshot rule — the hop bound re-read from the published
// capacity instead of a fixed field, so a read racing a segment append never
// tears spuriously against a stale bound.
func (h *Handle) tryGetFastG(b int, sk, k Word) (v Word, ok, clean bool) {
	g := h.m.grow
	// Nearest initialized ancestor; the read path never initializes.
	sb := b
	prev := h.headHandle(sb)
	prevW, _ := prev.Load()
	for prevW == 0 && sb != 0 {
		sb = parentBucket(sb)
		prev = h.headHandle(sb)
		prevW, _ = prev.Load()
	}
	bound := g.capacityNow(h.pid) + 1
	for hops := 0; ; hops++ {
		cur := linkIdx(prevW)
		if cur == 0 {
			// Miss: accept only if the final link is still current.
			if !prev.Validate() {
				return 0, false, false
			}
			return 0, false, true
		}
		if hops > bound || h.spent(hops) {
			return 0, false, false
		}
		curNext, _ := h.nextHandle(cur).Load()
		csort := g.sort.Get(cur).Read(h.pid)
		if h.ReadStall != nil {
			h.ReadStall()
		}
		// The fence: prev's link unchanged since its Load, so cur was linked
		// here across both reads (exact under the sound regimes; value-blind
		// under raw, the §1 caveat).
		if !prev.Validate() {
			return 0, false, false
		}
		if linkMarked(curNext) || csort < sk {
			prev, prevW = h.nextHandle(cur), curNext
			continue
		}
		if csort > sk {
			return 0, false, true // walked past the run: a validated miss
		}
		ck := g.key.Get(cur).Read(h.pid)
		if !prev.Validate() {
			return 0, false, false
		}
		if ck != k {
			prev, prevW = h.nextHandle(cur), curNext
			continue
		}
		v = g.val.Get(cur).Read(h.pid)
		// Key and value are immutable while linked; the final fence proves
		// cur stayed linked across the value read.
		if !prev.Validate() {
			return 0, false, false
		}
		return v, true, true
	}
}

// auditG is the growth-mode audit: one walk of the global list from bucket
// 0's dummy (per-bucket walks would double-count through the shortcuts),
// verifying split ordering, then the shortcut directory, then the free set.
func (m *Map) auditG() MapAudit {
	g := m.grow
	var a MapAudit
	capNow := g.capacityNow(-1)
	s := int(g.size.Read(-1))
	seen := make(map[int]int, capNow)
	cur := linkIdx(g.head.Get(0).Peek(-1))
	last := Word(0)
	for hops := 0; cur != 0; hops++ {
		if hops > capNow {
			a.Cycle = true
			break
		}
		seen[cur]++
		w := g.next.Get(cur).Peek(-1)
		cs := g.sort.Get(cur).Read(-1)
		if cs < last {
			a.Disordered = true
		}
		last = cs
		switch {
		case cs&1 == 0:
			a.Dummies++
		case linkMarked(w):
			a.Marked++
		default:
			a.Live++
		}
		cur = linkIdx(w)
	}
	for b := 0; b < s; b++ {
		w := g.head.Get(b).Peek(-1)
		if w == 0 {
			continue
		}
		d := linkIdx(w)
		if d < 1 || d > capNow || g.sort.Get(d).Read(-1) != sortKeyDummy(b) || seen[d] != 1 {
			a.BadShortcuts++
		}
	}
	for _, idx := range m.pool.Snapshot() {
		seen[idx]++
		a.InFree++
	}
	for idx, count := range seen {
		if count > 1 {
			a.Doubled = append(a.Doubled, idx)
		}
	}
	a.Lost = capNow - len(seen)
	a.Splits = g.splits.Load()
	a.SegmentAppends = g.appends.Load()
	a.ResizeRetries = g.retries.Load()
	a.ReadRetries = m.readRetries.Load()
	a.ReadFallbacks = m.readFallbacks.Load()
	return a
}
