package kv

import (
	"runtime"
	"sync/atomic"

	"abadetect/internal/apps"
)

// Flat combining [Hendler, Incze, Shavit, Tzafrir 2010] for hot buckets: a
// per-bucket combiner lock plus one publication slot per process.  A writer
// that finds the lock free becomes the combiner: it applies its own
// operation through the ordinary lock-free code, then sweeps the bucket's
// publication slots and applies every pending operation back-to-back.  A
// writer that finds the lock taken — and a reader that would otherwise race
// a running combiner — publishes its operation and waits for the answer.
//
// What this amortizes, in the paper's m(n)/t(n) vocabulary: the batch walks
// one bucket chain cache-hot on one process, so each combined op costs the
// combiner a warm traversal instead of costing its owner a cold one plus
// the guard-commit interleaving of a contended chain; under a reclaimer the
// combiner's two protection slots serve the whole batch where every waiter
// would otherwise publish (and fence) its own.  The space price is explicit
// and bounded: one lock word plus n publication slots per bucket, none of
// them touched by the uncontended read path.
//
// The combiner applies waiters' operations with its *own* per-process
// handles (it runs in its own goroutine; handles stay single-goroutine),
// and every applied operation is the unmodified lock-free code — combining
// is an optimization layered over an already-correct structure, so a
// combiner racing lock-free readers is safe by construction.  Slot words
// are Go atomics rather than shmem registers: like guard metrics they are
// harness machinery, not base objects of the modeled structure, and they
// are priced in the documentation instead of the footprint tables.
const (
	combEmpty   uint32 = iota // slot free
	combPending               // op published, waiting for a combiner
	combActive                // a combiner claimed the op and is applying it
	combDone                  // result written; waiter must reset to empty
)

// combPasses bounds how many sweeps one combiner makes over the slots; a
// second pass picks up ops published while the first was being applied.
const combPasses = 2

// combSlot is one process's publication slot on one bucket.  Padded so two
// processes' slots never share a cache line.
type combSlot struct {
	state atomic.Uint32
	op    atomic.Uint32
	key   atomic.Uint64
	val   atomic.Uint64
	res   atomic.Uint64
	ok    atomic.Uint32
	_     [128 - 28]byte
}

// combiner is one bucket's combining state.
type combiner struct {
	lock  atomic.Uint32
	_     [124]byte
	slots []combSlot // indexed by pid
}

// combined routes an operation through the combining protocol.  done=false
// means the caller should take the ordinary lock-free path: that happens
// only for reads with no combiner active, so uncontended gets stay exactly
// as cheap as before.
func (h *Handle) combined(op apps.OpKind, k, v Word) (res Word, ok, done bool) {
	c := &h.m.comb[h.m.bucket(k)]
	if op == apps.OpGet {
		if c.lock.Load() == 0 {
			return 0, false, false
		}
		return h.publish(c, op, k, v)
	}
	if c.lock.CompareAndSwap(0, 1) {
		res, ok = h.runCombiner(c, op, k, v)
		return res, ok, true
	}
	return h.publish(c, op, k, v)
}

// runCombiner applies the caller's own operation, then sweeps the bucket's
// publication slots applying every pending op, and releases the lock.
func (h *Handle) runCombiner(c *combiner, op apps.OpKind, k, v Word) (Word, bool) {
	res, ok := h.apply(op, k, v)
	batch := int64(1) // the combiner's own op counts toward the batch
	for pass := 0; pass < combPasses; pass++ {
		var applied int64
		for i := range c.slots {
			s := &c.slots[i]
			if s.state.Load() != combPending || !s.state.CompareAndSwap(combPending, combActive) {
				continue
			}
			r, o := h.apply(apps.OpKind(s.op.Load()), Word(s.key.Load()), Word(s.val.Load()))
			s.res.Store(uint64(r))
			if o {
				s.ok.Store(1)
			} else {
				s.ok.Store(0)
			}
			s.state.Store(combDone)
			applied++
		}
		batch += applied
		if applied == 0 {
			break
		}
	}
	c.lock.Store(0)
	h.m.combBatches.Add(1)
	h.m.combOps.Add(batch)
	return res, ok
}

// apply dispatches one operation to the lock-free bodies.
func (h *Handle) apply(op apps.OpKind, k, v Word) (Word, bool) {
	switch op {
	case apps.OpPut:
		return 0, h.put(k, v)
	case apps.OpDelete:
		return 0, h.del(k)
	default:
		return h.get(k)
	}
}

// publish parks the operation in this process's slot and waits for a
// combiner to apply it.  If the combiner leaves without taking the op (its
// passes ran out), the waiter reclaims the op and retries — becoming the
// combiner itself when it can.  The wait respects MaxSpin like every other
// retry loop: a bounded handle gives up and fails the op rather than hang
// behind a livelocked (corrupted-raw) combiner.
func (h *Handle) publish(c *combiner, op apps.OpKind, k, v Word) (Word, bool, bool) {
	s := &c.slots[h.pid]
	spins := 0
	for {
		s.op.Store(uint32(op))
		s.key.Store(uint64(k))
		s.val.Store(uint64(v))
		s.state.Store(combPending)
		republish := false
		for !republish {
			switch s.state.Load() {
			case combDone:
				s.state.Store(combEmpty)
				return Word(s.res.Load()), s.ok.Load() == 1, true
			case combPending:
				if c.lock.Load() == 0 && s.state.CompareAndSwap(combPending, combEmpty) {
					// No combiner is serving this bucket anymore: take the
					// op back.  Become the combiner if the lock is still
					// free; otherwise republish for the new one.
					if c.lock.CompareAndSwap(0, 1) {
						res, ok := h.runCombiner(c, op, k, v)
						return res, ok, true
					}
					republish = true
					continue
				}
				if h.spent(spins) && s.state.CompareAndSwap(combPending, combEmpty) {
					return 0, false, true // budget exhausted: the op fails
				}
			}
			spins++
			runtime.Gosched()
		}
	}
}
