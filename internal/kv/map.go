// Package kv is the keyed application workload the traffic layer drives: a
// sharded lock-free hash map over the same Guard and reclamation substrate
// as the stack and queue of internal/apps.
//
// The map is the canonical cache shape — B bucket heads, each the entry of a
// chained list of pool nodes — and it is built so *every* mutable link rides
// a guard.Guard: the bucket heads and each node's next pointer.  The list
// protocol is the Michael-style marked-link scheme adapted to index-based
// nodes:
//
//   - a link word packs (successor index << 1 | mark); the mark bit on a
//     node's next pointer is the node's logical-delete flag, set by a
//     conditional commit so the link freezes before the node is unlinked;
//   - inserts happen only at the bucket head (insert-at-head is the
//     ABA-immune half of the Treiber protocol), so interior links change
//     only by mark and unlink commits;
//   - a Put always inserts a fresh node and then kills any older node of the
//     same key behind the first live match, so a node's key and value are
//     immutable from link to unlink — reads never race updates;
//   - traversals help: a walker that finds a marked node unlinks it
//     (conditionally, against the predecessor link it has loaded and, under
//     a reclaimer, protected) and releases it to the pool.
//
// The ABA lives exactly where the paper says it lives: between loading a
// predecessor link and committing past it, the successor node can be
// deleted, recycled through the allocator, and re-linked, so a raw commit
// swings a bucket onto a free node.  MapABAScenario replays that
// deterministically; the tagged, LL/SC, and detector regimes reject the
// stale commit, and the hp/epoch reclaimers prevent the recycle leg outright
// — the same ladder the stack and queue walk, on the keyed workload a
// production cache serves.
package kv

import (
	"fmt"
	"sync/atomic"

	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Word is the key and value type.
type Word = shmem.Word

// Protection re-exports the apps regime selector.
type Protection = apps.Protection

// packLink packs a successor index and a mark bit into one link word.
func packLink(idx int, marked bool) Word {
	w := Word(idx) << 1
	if marked {
		w |= 1
	}
	return w
}

// linkIdx unpacks the successor index of a link word.
func linkIdx(w Word) int { return int(w >> 1) }

// linkMarked reports the mark bit of a link word.
func linkMarked(w Word) bool { return w&1 != 0 }

// Map is a sharded lock-free hash map over a fixed pool of index-based
// nodes, shared by n processes.  Every bucket head and every node's next
// pointer is a Guard, so the map runs under every Protection regime, over
// any registered guard implementation, on any substrate — and its node
// recycling routes through the allocator seam, so any reclaim scheme can
// sit underneath.
type Map struct {
	n        int
	capacity int
	buckets  int
	mask     Word

	key  []shmem.Register // key[i] of node i (1-based); immutable while linked
	val  []shmem.Register // val[i] of node i; immutable while linked
	next []guard.Guard    // next[i]: packed (succ<<1 | mark)
	head []guard.Guard    // head[b]: packed (idx<<1), never marked

	pool apps.Pool

	comb        []combiner // one per bucket; nil = combining off
	combBatches atomic.Int64
	combOps     atomic.Int64 // ops applied on behalf of other processes

	// Read-path counters (striped: retries happen exactly under the write
	// contention a shared counter would amplify).  The clean fast path bumps
	// nothing — a per-Get counter would reintroduce the shared write the
	// path exists to remove.
	readRetries   *shmem.StripedCounter // torn fast-path attempts restarted
	readFallbacks *shmem.StripedCounter // Gets that fell back to the guarded path

	// grow is the split-ordered resize state of a map built
	// apps.WithGrowth; nil selects the fixed-capacity protocol above
	// untouched (the key/val/next/head slices are then unused — growth mode
	// keeps every per-node array in a Spine instead; see grow.go).
	grow *growth

	// tr is the flight recorder of a map built apps.WithTrace; nil means no
	// tracing anywhere on the hot path.
	tr *trace.Recorder
}

// NewMap builds a map for n processes with the given node capacity and
// bucket count (rounded up to a power of two; pass 1 to force every key
// into one chain, as the deterministic scenarios do).  tagBits is only used
// by the Tagged regime; both prot and tagBits are ignored when
// apps.WithMaker supplies the guards.
func NewMap(f shmem.Factory, n, capacity, buckets int, prot Protection, tagBits uint, opts ...apps.StructOption) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("kv: map needs n >= 1, got %d", n)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("kv: map needs capacity >= 1, got %d", capacity)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("kv: map needs buckets >= 1, got %d", buckets)
	}
	buckets = nextPow2(buckets)
	cfg := apps.ResolveStructOptions(f, n, prot, tagBits, opts)
	if cfg.GrowTo > 0 {
		return newGrowMap(f, cfg, n, capacity, buckets)
	}
	idxBits := shmem.BitsFor(capacity + 1)
	linkBits := idxBits + 1 // the mark bit rides beside the index
	m := &Map{
		n:        n,
		capacity: capacity,
		buckets:  buckets,
		mask:     Word(buckets - 1),
		key:      make([]shmem.Register, capacity+1),
		val:      make([]shmem.Register, capacity+1),
		next:     make([]guard.Guard, capacity+1),
		head:     make([]guard.Guard, buckets),

		readRetries:   shmem.NewStripedCounter(),
		readFallbacks: shmem.NewStripedCounter(),
		tr:            cfg.Trace,
	}
	var err error
	for i := 1; i <= capacity; i++ {
		m.key[i] = f.NewRegister(fmt.Sprintf("mkey[%d]", i), 0)
		m.val[i] = f.NewRegister(fmt.Sprintf("mval[%d]", i), 0)
		if m.next[i], err = cfg.Maker(fmt.Sprintf("mnext[%d]", i), linkBits, 0); err != nil {
			return nil, fmt.Errorf("kv: map next[%d] guard: %w", i, err)
		}
	}
	for b := range m.head {
		if m.head[b], err = cfg.Maker(fmt.Sprintf("mhead[%d]", b), linkBits, 0); err != nil {
			return nil, fmt.Errorf("kv: map head[%d] guard: %w", b, err)
		}
	}
	if !m.head[0].Conditional() {
		return nil, fmt.Errorf("kv: map needs conditional guards; %s guard is detection-only", m.head[0].Regime())
	}
	if m.pool, err = apps.NewPool(f, cfg, "map", n, capacity, idxBits); err != nil {
		return nil, err
	}
	if cfg.Combining {
		m.comb = make([]combiner, buckets)
		for b := range m.comb {
			m.comb[b].slots = make([]combSlot, n)
		}
	}
	return m, nil
}

// nextPow2 rounds v up to the next power of two.
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// NumProcs returns n.
func (m *Map) NumProcs() int { return m.n }

// Capacity returns the node-pool capacity — the current growth snapshot for
// a map built apps.WithGrowth.
func (m *Map) Capacity() int {
	if m.grow != nil {
		return m.grow.capacityNow(-1)
	}
	return m.capacity
}

// MaxCapacity returns the node-capacity ceiling: the growth ceiling for a
// map built apps.WithGrowth, the fixed capacity otherwise.
func (m *Map) MaxCapacity() int {
	if m.grow != nil {
		return m.grow.maxCapacity
	}
	return m.capacity
}

// Growing reports whether the map was built apps.WithGrowth.
func (m *Map) Growing() bool { return m.grow != nil }

// Buckets returns the bucket count — the current directory size for a map
// built apps.WithGrowth.
func (m *Map) Buckets() int {
	if m.grow != nil {
		return int(m.grow.size.Read(-1))
	}
	return m.buckets
}

// Protection returns the reference-guard regime.
func (m *Map) Protection() Protection {
	if m.grow != nil {
		return m.grow.head.Get(0).Regime()
	}
	return m.head[0].Regime()
}

// GuardMetrics returns the aggregated audit counters of every reference
// guard (bucket heads and all next pointers).
func (m *Map) GuardMetrics() guard.Metrics {
	var agg guard.Metrics
	if m.grow != nil {
		for b := 0; b < m.grow.head.Len(); b++ {
			agg = agg.Add(m.grow.head.Get(b).Metrics())
		}
		for i := 1; i < m.grow.next.Len(); i++ {
			agg = agg.Add(m.grow.next.Get(i).Metrics())
		}
		return agg
	}
	for _, g := range m.head {
		agg = agg.Add(g.Metrics())
	}
	for i := 1; i < len(m.next); i++ {
		agg = agg.Add(m.next[i].Metrics())
	}
	return agg
}

// FreelistMetrics returns the node pool's guard counters (zero unless the
// map was built apps.WithGuardedPool).
func (m *Map) FreelistMetrics() guard.Metrics { return m.pool.Metrics() }

// PoolStats returns the allocator's exhaustion and reclamation counters.
func (m *Map) PoolStats() apps.PoolStats { return m.pool.Stats() }

// Combining reports whether the map was built apps.WithCombining.
func (m *Map) Combining() bool { return m.comb != nil }

// CombineStats returns the flat-combining counters: batches is the number
// of combiner acquisitions, ops the number of operations applied inside
// combiner runs — the combiner's own op plus every waiter op it swept, so
// ops/batches is the average batch width (1.0 means no waiter ever
// piggybacked).
func (m *Map) CombineStats() (batches, ops int64) {
	return m.combBatches.Load(), m.combOps.Load()
}

// bucket hashes k to its chain (murmur3 finalizer, deterministic).
func (m *Map) bucket(k Word) int {
	if m.mask == 0 {
		return 0
	}
	return int(hash64(k) & m.mask)
}

// Handle returns process pid's handle.  Handles are single-goroutine.
func (m *Map) Handle(pid int) (*Handle, error) {
	if pid < 0 || pid >= m.n {
		return nil, fmt.Errorf("kv: pid %d out of range [0,%d)", pid, m.n)
	}
	h := &Handle{
		m:    m,
		pid:  pid,
		lane: shmem.StripeFor(pid),
		ring: m.tr.Ring(pid),
	}
	if m.grow == nil {
		h.head = make([]guard.Handle, m.buckets)
		h.next = make([]guard.Handle, len(m.next))
	} else {
		// Growth mode: lazy per-guard handle tables, sized to the current
		// spines and re-extended after a resize (handles are
		// single-goroutine, so plain slice growth suffices).
		h.headG = make([]guard.Handle, m.grow.head.Len())
		h.nextG = make([]guard.Handle, m.grow.next.Len())
	}
	var err error
	if h.pool, err = m.pool.Handle(pid); err != nil {
		return nil, err
	}
	h.smr = h.pool.Reclaiming()
	// The wait-free fast path skips the hazard/epoch publish entirely; that
	// is sound whenever torn reads are detectable.  Index-based nodes make
	// the traversal memory-safe without protection (arrays are never freed),
	// and the sound regimes turn any recycle under the reader into a failed
	// Validate.  Raw cannot — its value-blind Validate is the §1 blindness —
	// so under a reclaimer a raw-guarded map keeps the protected read path,
	// which is what makes raw+hp/raw+epoch reads sound today.  Raw *without*
	// a reclaimer already reads unprotected and value-blind on the mainline,
	// so the fast path changes nothing there.
	h.fastOK = !h.smr || m.Protection() != guard.Raw
	if m.grow != nil {
		return h, nil
	}
	for b := range m.head {
		if h.head[b], err = m.head[b].Handle(pid); err != nil {
			return nil, err
		}
	}
	for i := 1; i < len(m.next); i++ {
		if h.next[i], err = m.next[i].Handle(pid); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Handle is a per-process map endpoint.
type Handle struct {
	m      *Map
	pid    int
	lane   int  // read-counter stripe, shmem.StripeFor(pid)
	fastOK bool // wait-free read fast path is sound for this configuration
	head   []guard.Handle
	next   []guard.Handle
	pool   apps.PoolHandle
	smr    bool        // pool defers releases: run the protect/revalidate fence
	ring   *trace.Ring // nil without apps.WithTrace; Record on nil is a no-op

	// Growth-mode state: lazy handle tables over the guard spines, plus the
	// amortized threshold-check tick (see grow.go).
	headG    []guard.Handle
	nextG    []guard.Handle
	growTick int

	// ReadStall, when non-nil, runs inside every fast-path read attempt
	// right after the key load and before the validating fence — the
	// deterministic stall point the torn-read scripts interleave a writer
	// into.  Test/experiment hook, like DeleteBegin's split.
	ReadStall func()

	// MaxSpin bounds the traversal/retry steps of one operation; 0 means
	// unbounded (the lock-free default).  A raw-guarded map that has been
	// ABA-corrupted can acquire a cycle through a bucket chain, turning a
	// traversal into a livelock — benchmark and race harnesses set a bound
	// so a corrupted foil fails operations instead of hanging.
	MaxSpin int

	// pending unlink armed by DeleteBegin (the experiment hook).
	pendingPrev guard.Handle
	pendingCur  int
	pendingSucc Word

	// retireBuf batches this operation's unlinked nodes (the helped unlinks
	// of a traversal plus the sweep's own kills) into one RetireBatch at the
	// operation boundary — one epoch stamp and one cadence check for the
	// whole kill set instead of one per node.  SMR only: without a reclaimer
	// releases stay immediate, keeping the FIFO recycling order the
	// deterministic corruption scripts depend on.
	retireBuf []int
}

// spent reports whether a bounded handle has used up its spin budget.
func (h *Handle) spent(spins int) bool { return h.MaxSpin > 0 && spins >= h.MaxSpin }

// endOp closes an operation's reclamation window: protections drop, the
// operation's buffered kills retire as one batch, and a miss — this
// process's idle moment — drains its own deferred nodes so an idle reader
// cannot strand every node in limbo while writers starve.  The flush runs
// after the Clear so this process's own protections cannot defer its own
// retirements.
func (h *Handle) endOp(miss bool) {
	if !h.smr {
		return
	}
	h.pool.Clear()
	h.flushRetires()
	if miss {
		h.pool.Drain()
	}
}

// flushRetires hands the operation's buffered kills to the pool in one
// batch.  Callers that bypass endOp (the budget-exhausted put) call it
// directly so no node is ever stranded in the private buffer.
func (h *Handle) flushRetires() {
	if len(h.retireBuf) > 0 {
		h.pool.ReleaseBatch(h.retireBuf)
		h.retireBuf = h.retireBuf[:0]
	}
}

// retire hands a node the caller exclusively owns back to the pool.  Under
// a reclaimer all protections are cleared first — this process's own hazard
// or pin must not defer the retirement (callers restart their traversal
// afterwards, so no stale trust survives the clear) — and the node joins
// the operation's retire batch, flushed at the operation boundary.
func (h *Handle) retire(idx int) {
	if h.smr {
		h.pool.Clear()
		h.retireBuf = append(h.retireBuf, idx)
		return
	}
	h.pool.Release(idx)
}

// seek walks bucket b looking for the (skip+1)-th live node with key k,
// helping unlink any marked node it passes.  On return:
//
//   - prev is the guard handle of the link pointing at cur (a bucket head
//     or a predecessor's next pointer), armed by its last Load — ready for
//     the caller's mark-then-unlink commits;
//   - cur is the matching node (0 when no such match exists, in which case
//     prev is armed at the end of the chain);
//   - curNext is cur's packed next word as loaded (unmarked);
//   - ok is false when the spin budget ran out.
//
// The traversal follows the Load → Protect → Validate → dereference fence:
// under a reclaimer each visited node is published in one of the two
// protection slots (alternating, so the predecessor stays covered) and the
// predecessor link is re-validated after the publish; without a reclaimer
// the dependent reads are validated after the fact, which the sound regimes
// turn into a restart whenever the chain moved underneath — and the raw
// regime can only compare values, which is the §1 vulnerability.
func (h *Handle) seek(b int, k Word, skip int, spins *int) (prev guard.Handle, cur int, curNext Word, ok bool) {
retry:
	for {
		if h.spent(*spins) {
			return nil, 0, 0, false
		}
		*spins++
		prev = h.head[b]
		prevW, _ := prev.Load()
		slot, remaining := 0, skip
		for {
			if h.spent(*spins) {
				return nil, 0, 0, false
			}
			*spins++
			cur = linkIdx(prevW)
			if cur == 0 {
				return prev, 0, 0, true
			}
			if h.smr {
				h.pool.Protect(slot, cur)
				if !prev.Validate() {
					continue retry // cur moved before the protection was visible
				}
			}
			curNext, _ = h.next[cur].Load()
			ck := h.m.key[cur].Read(h.pid)
			if !h.smr && !prev.Validate() {
				// Without a reclaimer the node could have been unlinked and
				// recycled between the loads; a changed predecessor link is
				// the tell (exact under the sound regimes, value-blind under
				// raw).
				continue retry
			}
			if linkMarked(curNext) {
				// cur is logically deleted: help unlink it.  The commit is
				// conditional on the predecessor link still naming cur, so
				// exactly one helper wins and releases the node.
				if !prev.Commit(curNext &^ 1) {
					continue retry
				}
				h.release(cur, slot)
				prevW, _ = prev.Load() // re-arm prev, continue in place
				continue
			}
			if ck == k {
				if remaining == 0 {
					return prev, cur, curNext, true
				}
				remaining--
			}
			// Advance: cur becomes the predecessor; its next handle is
			// already armed by the Load above.  The slots alternate so the
			// new predecessor stays protected while the next node is
			// published into the slot its own predecessor vacated.
			prev = h.next[cur]
			prevW = curNext
			slot ^= 1
		}
	}
}

// release returns a node this process just unlinked mid-traversal.  The
// node's own protection slot is dropped first (a published index would
// defer its retirement against ourselves); the other slot — still covering
// the predecessor — stays up because the traversal continues from it.
// Under a reclaimer the node joins the operation's retire batch: it is
// unreachable and not yet allocatable (the buffer is private), so deferring
// the retirement to the operation boundary only delays reuse, never safety.
func (h *Handle) release(idx, slot int) {
	if h.smr {
		h.pool.Protect(slot, 0)
		h.retireBuf = append(h.retireBuf, idx)
		return
	}
	h.pool.Release(idx)
}

// Get returns the value bound to k.
//
// The common case is the wait-free seqlock fast path (getFast): an
// unprotected traversal whose key/value snapshot is accepted only if the
// link guards still validate — no hazard slot, no epoch pin, no retire
// drain, no allocation, and on a clean read not a single shared write.
// After fastGetRetries torn attempts Get falls back to the guarded
// traversal (counted in MapAudit.ReadFallbacks), which is lock-free and
// helps unlink, so progress is never worse than before the fast path.
func (h *Handle) Get(k Word) (Word, bool) {
	if h.m.grow != nil {
		return h.getGrow(k)
	}
	if h.fastOK {
		if v, ok, done := h.getFast(k); done {
			return v, ok
		}
		h.m.readFallbacks.Add(h.lane, 1)
	}
	if h.m.comb != nil {
		if v, ok, done := h.combined(apps.OpGet, k, 0); done {
			return v, ok
		}
	}
	return h.get(k)
}

// fastGetRetries bounds the fast path's torn-read restarts before Get falls
// back to the guarded traversal: the reader stays wait-free (its step count
// is bounded regardless of writer behavior), and sustained write pressure
// degrades to the lock-free mainline instead of starving the read.
const fastGetRetries = 3

// getFast runs the seqlock read protocol over the bucket chain.  done=false
// means every attempt was torn and the caller must take the guarded path.
func (h *Handle) getFast(k Word) (v Word, ok, done bool) {
	b := h.m.bucket(k)
	for attempt := 0; attempt < fastGetRetries; attempt++ {
		if v, ok, clean := h.tryGetFast(b, k); clean {
			return v, ok, true
		}
		h.m.readRetries.Add(h.lane, 1) // one bump per torn attempt
	}
	return 0, false, false
}

// tryGetFast is one wait-free attempt: walk the chain reading links, keys,
// and — on a match — the value, accepting each dependent read only if the
// link it hangs off still validates (the seqlock fence; guard.ReadConsistent
// is this protocol for a single reference, inlined here because the payload
// spans a chain).  clean=false reports a torn attempt.
//
// The walk takes no protection slot: nodes are array indices, so a recycled
// node is readable garbage, never a dangling pointer, and the validating
// fence rejects the garbage.  Marked nodes are skipped, not helped — the
// read path must not write.  The hop bound covers the one structural hazard
// validation cannot see mid-walk: a chain that acquired a cycle (possible
// only after a raw-regime corruption) or grew past capacity under
// concurrent inserts, either of which just turns the attempt torn.
func (h *Handle) tryGetFast(b int, k Word) (v Word, ok, clean bool) {
	prev := h.head[b]
	prevW, _ := prev.Load()
	for hops := 0; ; hops++ {
		cur := linkIdx(prevW)
		if cur == 0 {
			// Miss: accept only if the final link is still current.
			if !prev.Validate() {
				return 0, false, false
			}
			return 0, false, true
		}
		if hops > h.m.capacity || h.spent(hops) {
			return 0, false, false
		}
		curNext, _ := h.next[cur].Load()
		ck := h.m.key[cur].Read(h.pid)
		if h.ReadStall != nil {
			h.ReadStall()
		}
		// The fence: prev's link is unchanged since its Load, so cur was
		// linked at this position across both reads and its key/next belong
		// to this chain state (exact under the sound regimes; value-blind
		// under raw, the §1 caveat).
		if !prev.Validate() {
			return 0, false, false
		}
		if !linkMarked(curNext) && ck == k {
			v = h.m.val[cur].Read(h.pid)
			// Key and value are immutable while linked; a second fence on
			// prev proves cur stayed linked across the value read, so the
			// (key, value) pair is a consistent snapshot.
			if !prev.Validate() {
				return 0, false, false
			}
			return v, true, true
		}
		// Advance: cur's next handle is armed by its Load above.
		prev, prevW = h.next[cur], curNext
	}
}

// get is the lock-free Get body; the combiner applies it for waiters too.
func (h *Handle) get(k Word) (Word, bool) {
	b := h.m.bucket(k)
	spins := 0
	for {
		prev, cur, _, ok := h.seek(b, k, 0, &spins)
		if !ok || cur == 0 {
			h.endOp(true)
			return 0, false
		}
		v := h.m.val[cur].Read(h.pid)
		if !h.smr && !prev.Validate() {
			continue // the node moved while we read it: retry
		}
		h.endOp(false)
		return v, true
	}
}

// Put binds k to v.  It returns false when the node pool is exhausted (or a
// MaxSpin budget ran out) — a fresh node is needed even to overwrite, since
// keys and values are immutable per node.
func (h *Handle) Put(k, v Word) bool {
	if h.m.grow != nil {
		return h.putG(k, v)
	}
	if h.m.comb != nil {
		if _, ok, done := h.combined(apps.OpPut, k, v); done {
			return ok
		}
	}
	return h.put(k, v)
}

// put is the lock-free Put body; the combiner applies it for waiters too.
func (h *Handle) put(k, v Word) bool {
	idx := h.pool.Alloc()
	if idx == 0 {
		h.endOp(true)
		return false
	}
	h.m.key[idx].Write(h.pid, k)
	h.m.val[idx].Write(h.pid, v)
	b := h.m.bucket(k)
	spins := 0
	for {
		if h.spent(spins) {
			h.retire(idx) // never linked: hand the node straight back
			h.flushRetires()
			return false
		}
		spins++
		headW, _ := h.head[b].Load()
		// Reset the recycled node's link; only we touch an unlinked node.
		h.next[idx].Store(headW)
		if h.head[b].Commit(packLink(idx, false)) {
			break // linearized: the new binding shadows any older one
		}
	}
	// Kill older duplicates: every live k-node behind the first live match
	// (which may be ours, or an even newer Put's) is marked and unlinked, so
	// the steady state is one live node per key and the pool cannot leak.
	h.sweep(b, k, 1, &spins)
	h.endOp(false)
	return true
}

// Delete removes k's binding.  It reports whether any binding was removed.
func (h *Handle) Delete(k Word) bool {
	if h.m.grow != nil {
		return h.delG(k)
	}
	if h.m.comb != nil {
		if _, ok, done := h.combined(apps.OpDelete, k, 0); done {
			return ok
		}
	}
	return h.del(k)
}

// del is the lock-free Delete body; the combiner applies it for waiters too.
func (h *Handle) del(k Word) bool {
	spins := 0
	deleted := h.sweep(h.m.bucket(k), k, 0, &spins)
	h.endOp(!deleted)
	return deleted
}

// sweep marks and unlinks every live k-node past the first `keep` live
// matches, restarting from the bucket head after each kill.  It reports
// whether it killed at least one node.
//
// Kill order matters: the first live match is the visible binding, and an
// older live duplicate behind it is shadowed — readers take the first match.
// Marking the binding while such a duplicate survives would promote the
// duplicate to first match, resurrecting its stale value for the window
// until the sweep reaches it.  So a keep=0 sweep first runs itself at
// keep=1, killing every shadowed duplicate (those deaths are invisible:
// the binding still shadows the position), and only then touches the
// binding.  Inserts happen only at the bucket head, so no new duplicate
// can appear *behind* the binding after that pass — the deep side of the
// chain only ever shrinks.
func (h *Handle) sweep(b int, k Word, keep int, spins *int) bool {
	killed := false
	for {
		if keep == 0 && h.sweep(b, k, 1, spins) {
			killed = true // shadowed duplicates died first; re-probe
		}
		prev, cur, curNext, ok := h.seek(b, k, keep, spins)
		if !ok || cur == 0 {
			return killed
		}
		// Logical delete: set the mark bit on cur's own next pointer.  The
		// commit is armed by seek's Load, so it fails if the link moved —
		// and the mark freezes the link, which is what makes the following
		// unlink safe against concurrent unlinks of the successor.
		if !h.next[cur].Commit(curNext | 1) {
			continue
		}
		killed = true
		// Physical unlink.  On failure the node stays marked and any later
		// traversal helps; on success the node is exclusively ours.
		if prev.Commit(curNext &^ 1) {
			h.retire(cur)
		}
	}
}

// DeleteBegin performs the vulnerable first half of a delete — seek the
// first live k-node and logically delete it (mark its next pointer) — and
// stops right before the physical unlink of the predecessor link, exposing
// the ABA window for the deterministic corruption experiments.  It returns
// the marked node and its successor, or found=false if k was absent.
//
// Under a reclaimer the window is fenced exactly like a stalled stack pop:
// the marked node stays published in this process's protection slot through
// the stall, so it cannot re-enter the allocator — and therefore cannot be
// recycled back under the predecessor link — until the commit clears it.
func (h *Handle) DeleteBegin(k Word) (cur, succ int, found bool) {
	if h.m.grow != nil {
		return h.deleteBeginG(k)
	}
	spins := 0
	for {
		prev, c, curNext, ok := h.seek(h.m.bucket(k), k, 0, &spins)
		if !ok || c == 0 {
			h.pendingPrev, h.pendingCur, h.pendingSucc = nil, 0, 0
			h.endOp(true)
			return 0, 0, false
		}
		if !h.next[c].Commit(curNext | 1) {
			continue
		}
		h.pendingPrev, h.pendingCur, h.pendingSucc = prev, c, curNext&^1
		h.ring.Record(trace.KindOpBegin, "delete", uint64(c), uint64(linkIdx(curNext)))
		return c, linkIdx(curNext), true
	}
}

// DeleteCommit performs the second half of the delete begun by DeleteBegin:
// the conditional unlink of the predecessor link.  Under ProtectionRaw a
// stale commit can succeed after a remove–recycle–reinsert cycle restored
// the link word — swinging the bucket onto a freed node; the other regimes
// reject it.  Each DeleteBegin arms at most one DeleteCommit.  Either way
// the node was already logically deleted, so on failure the caller leaves
// the unlink to the helping traversals.
func (h *Handle) DeleteCommit() bool {
	if h.pendingPrev == nil {
		return false
	}
	prev, cur, succ := h.pendingPrev, h.pendingCur, h.pendingSucc
	h.pendingPrev, h.pendingCur, h.pendingSucc = nil, 0, 0
	if !prev.Commit(succ) {
		h.ring.Record(trace.KindOpCommit, "delete", 0, uint64(cur))
		h.endOp(false)
		return false
	}
	h.ring.Record(trace.KindOpCommit, "delete", 1, uint64(cur))
	h.retire(cur)
	h.endOp(false)
	return true
}

// MapAudit is a quiescent-state structural check.
type MapAudit struct {
	// Live is the number of unmarked nodes reachable from a bucket head.
	Live int
	// Marked is the number of logically deleted nodes still chained.
	Marked int
	// InFree is the number of nodes in the allocator's free set (limbo
	// included).
	InFree int
	// Doubled lists nodes that are both reachable and free, or reachable
	// twice — the smoking gun of an ABA corruption.
	Doubled []int
	// Lost is the number of nodes neither reachable nor free (leaked).
	Lost int
	// Cycle reports whether some bucket chain contains a cycle.
	Cycle bool
	// ReadRetries is the number of torn wait-free read attempts that
	// restarted (each is a write the seqlock fence caught mid-read).
	ReadRetries int64
	// ReadFallbacks is the number of Gets that exhausted the fast path's
	// retry budget and fell back to the guarded traversal.
	ReadFallbacks int64

	// Growth-mode fields (zero for a fixed-capacity map).
	//
	// Dummies is the number of split-order dummy nodes on the global list.
	Dummies int
	// Disordered reports a split-order violation: some node's sort key is
	// below its predecessor's — structural damage only an ABA (or a resize
	// bug) can cause.
	Disordered bool
	// BadShortcuts counts initialized bucket shortcuts that don't land on
	// their own, list-linked dummy.
	BadShortcuts int
	// Splits counts directory doublings; SegmentAppends counts node-space
	// extensions; ResizeRetries counts lost resize CAS races.
	Splits, SegmentAppends, ResizeRetries int64
}

// Corrupt reports whether the audit found structural damage.
func (a MapAudit) Corrupt() bool {
	return len(a.Doubled) > 0 || a.Lost > 0 || a.Cycle || a.Disordered || a.BadShortcuts > 0
}

// String renders the audit result.
func (a MapAudit) String() string {
	s := fmt.Sprintf("live=%d marked=%d inFree=%d doubled=%v lost=%d cycle=%v",
		a.Live, a.Marked, a.InFree, a.Doubled, a.Lost, a.Cycle)
	if a.ReadRetries > 0 || a.ReadFallbacks > 0 {
		s += fmt.Sprintf(" readRetries=%d readFallbacks=%d", a.ReadRetries, a.ReadFallbacks)
	}
	if a.Dummies > 0 || a.Splits > 0 || a.SegmentAppends > 0 {
		s += fmt.Sprintf(" dummies=%d disordered=%v badShortcuts=%d splits=%d appends=%d resizeRetries=%d",
			a.Dummies, a.Disordered, a.BadShortcuts, a.Splits, a.SegmentAppends, a.ResizeRetries)
	}
	return s
}

// Audit walks every bucket chain and the free set.  Call only at quiescence
// (no handle mid-operation); it reads with the observer pid, taking no
// scheduled steps under the simulator.
func (m *Map) Audit() MapAudit {
	if m.grow != nil {
		return m.auditG()
	}
	var a MapAudit
	seen := make(map[int]int, m.capacity)
	for b := range m.head {
		cur := linkIdx(m.head[b].Peek(-1))
		for hops := 0; cur != 0; hops++ {
			if hops > m.capacity {
				a.Cycle = true
				break
			}
			seen[cur]++
			w := m.next[cur].Peek(-1)
			if linkMarked(w) {
				a.Marked++
			} else {
				a.Live++
			}
			cur = linkIdx(w)
		}
	}
	for _, idx := range m.pool.Snapshot() {
		seen[idx]++
		a.InFree++
	}
	for idx, count := range seen {
		if count > 1 {
			a.Doubled = append(a.Doubled, idx)
		}
	}
	a.Lost = m.capacity - len(seen)
	a.ReadRetries = m.readRetries.Load()
	a.ReadFallbacks = m.readFallbacks.Load()
	return a
}
