package kv

import (
	"strings"
	"testing"

	"abadetect/internal/apps"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// TestMapGrowABAScenarioLadder replays the resize-under-traffic script across
// the protection ladder with immediate reuse: the raw guard is provably
// fooled — the lazy bucket initialization of a fresh split recycles the freed
// nodes into exactly the link word the stalled deleter armed — and corrupts
// the map (a lost binding plus a cycle through the new dummy); a wide tag,
// LL/SC, and the detector all reject the stale unlink and count the
// near-miss.
func TestMapGrowABAScenarioLadder(t *testing.T) {
	for _, tc := range []struct {
		name       string
		prot       Protection
		tagBits    uint
		wantFooled bool
	}{
		{"raw", apps.Raw, 0, true},
		{"tag16", apps.Tagged, 16, false},
		{"llsc", apps.LLSC, 0, false},
		{"detector", apps.Detector, 0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := MapGrowABAScenario(shmem.NewNativeFactory(), tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled != tc.wantFooled {
				t.Fatalf("fooled = %v, want %v (%s)", res.Fooled, tc.wantFooled, res.Detail)
			}
			if res.Corrupt != tc.wantFooled {
				t.Fatalf("corrupt = %v, want %v (%s)", res.Corrupt, tc.wantFooled, res.Detail)
			}
			if !tc.wantFooled && res.Guard.NearMisses == 0 {
				t.Errorf("prevented resize ABA not counted as a near-miss: %s", res.Guard)
			}
			if res.Starved {
				t.Errorf("immediate reuse starved the adversary: %s", res.Detail)
			}
			if tc.wantFooled && !strings.Contains(res.Detail, "splits=1") {
				t.Errorf("audit did not record the forced split: %s", res.Detail)
			}
		})
	}
}

// TestMapGrowReclaimPreventsScenarioWithZeroNearMisses: raw+hp and raw+epoch
// pass the resize script that raw+none provably corrupts, with zero guard
// near-misses.  Unlike the fixed-map script, BOTH reclaimers prevent by
// starvation here: the victim's two protection slots cover both freed nodes,
// the pool is at its ceiling, and the growth path has nowhere else to
// allocate from — so the recycle leg never runs and the marked link word
// never repeats.
func TestMapGrowReclaimPreventsScenarioWithZeroNearMisses(t *testing.T) {
	for _, rc := range []struct {
		name string
		mk   reclaim.Maker
	}{
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	} {
		t.Run("raw+"+rc.name, func(t *testing.T) {
			res, err := MapGrowABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(rc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled || res.Corrupt {
				t.Fatalf("fooled=%v corrupt=%v (%s)", res.Fooled, res.Corrupt, res.Detail)
			}
			if res.Guard.NearMisses != 0 {
				t.Errorf("guard near-misses = %d, want 0 (prevention, not detection)", res.Guard.NearMisses)
			}
			if !res.Starved {
				t.Errorf("growth path did not starve at the ceiling: %s", res.Detail)
			}
		})
	}
	// The control arm: the pass-through reclaimer reproduces the corruption.
	res, err := MapGrowABAScenario(shmem.NewNativeFactory(), apps.Raw, 0, apps.WithReclaimer(reclaim.NewNone))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fooled || !res.Corrupt {
		t.Errorf("raw+none: fooled=%v corrupt=%v, want the corruption back (%s)", res.Fooled, res.Corrupt, res.Detail)
	}
}
