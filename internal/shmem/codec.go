package shmem

import (
	"fmt"
	"math/bits"
)

// BitsFor returns the minimum number of bits needed to represent the values
// 0..count-1.  BitsFor(1) is 1 (a field of width zero would be degenerate).
func BitsFor(count int) uint {
	if count <= 2 {
		return 1
	}
	return uint(bits.Len(uint(count - 1)))
}

// TripleCodec packs the (value, pid, seq) triples stored in register X of
// the paper's Figure 4 algorithm (and in the CAS object of the
// announcement-based constant-time LL/SC).  A distinguished bottom word
// (all zeros) encodes the initial (⊥,⊥,⊥) triple.
//
// Layout, from most to least significant:
//
//	[present:1][value:valueBits][pid:pidBits][seq:seqBits]
//
// The announcement pairs (pid, seq) stored in the array A share the low
// pidBits+seqBits of the layout plus the present bit, so Pair(x) == Pair(y)
// exactly when x and y carry the same (pid, seq) and the same ⊥-ness.
type TripleCodec struct {
	valueBits uint
	pidBits   uint
	seqBits   uint
	n         int
	seqVals   int
}

// NewTripleCodec builds a codec for n processes, valueBits-bit values, and
// sequence numbers in {0, ..., seqVals-1}.  It returns an error if the
// triple does not fit in a 64-bit word.
func NewTripleCodec(n int, valueBits uint, seqVals int) (TripleCodec, error) {
	if n < 1 {
		return TripleCodec{}, fmt.Errorf("shmem: triple codec needs n >= 1, got %d", n)
	}
	if valueBits < 1 {
		return TripleCodec{}, fmt.Errorf("shmem: triple codec needs valueBits >= 1, got %d", valueBits)
	}
	if seqVals < 1 {
		return TripleCodec{}, fmt.Errorf("shmem: triple codec needs seqVals >= 1, got %d", seqVals)
	}
	c := TripleCodec{
		valueBits: valueBits,
		pidBits:   BitsFor(n),
		seqBits:   BitsFor(seqVals),
		n:         n,
		seqVals:   seqVals,
	}
	if total := 1 + c.valueBits + c.pidBits + c.seqBits; total > 64 {
		return TripleCodec{}, fmt.Errorf("shmem: triple (1+%d+%d+%d = %d bits) exceeds 64-bit word",
			c.valueBits, c.pidBits, c.seqBits, total)
	}
	return c, nil
}

// Bits returns the width of the packed triple in bits, the paper's
// "b + 2 log n + O(1)" register size.
func (c TripleCodec) Bits() int { return int(1 + c.valueBits + c.pidBits + c.seqBits) }

// SeqVals returns the size of the sequence-number domain.
func (c TripleCodec) SeqVals() int { return c.seqVals }

// ValueBits returns the width of the value field.
func (c TripleCodec) ValueBits() uint { return c.valueBits }

// MaxValue returns the largest encodable value.
func (c TripleCodec) MaxValue() Word { return (Word(1) << c.valueBits) - 1 }

func (c TripleCodec) presentBit() Word { return Word(1) << (c.valueBits + c.pidBits + c.seqBits) }

// Encode packs (v, pid, seq).  It panics if any field is out of range;
// callers are responsible for staying inside the bounded domains they
// declared, exactly as the paper's algorithms are.
func (c TripleCodec) Encode(v Word, pid, seq int) Word {
	if v > c.MaxValue() {
		panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
	}
	if pid < 0 || pid >= c.n {
		panic(fmt.Sprintf("shmem: pid %d out of range [0,%d)", pid, c.n))
	}
	if seq < 0 || seq >= c.seqVals {
		panic(fmt.Sprintf("shmem: seq %d out of range [0,%d)", seq, c.seqVals))
	}
	return c.presentBit() |
		v<<(c.pidBits+c.seqBits) |
		Word(pid)<<c.seqBits |
		Word(seq)
}

// Bottom returns the word encoding (⊥,⊥,⊥).
func (c TripleCodec) Bottom() Word { return 0 }

// IsBottom reports whether w encodes (⊥,⊥,⊥).
func (c TripleCodec) IsBottom(w Word) bool { return w&c.presentBit() == 0 }

// Decode unpacks a non-bottom triple.
func (c TripleCodec) Decode(w Word) (v Word, pid, seq int) {
	v = (w >> (c.pidBits + c.seqBits)) & c.MaxValue()
	pid = int((w >> c.seqBits) & ((1 << c.pidBits) - 1))
	seq = int(w & ((1 << c.seqBits) - 1))
	return v, pid, seq
}

// Value returns the value field of a non-bottom triple.
func (c TripleCodec) Value(w Word) Word {
	return (w >> (c.pidBits + c.seqBits)) & c.MaxValue()
}

// Pair projects a triple word onto its (present, pid, seq) announcement
// pair, dropping the value field.  Pair(Bottom()) == Bottom().
func (c TripleCodec) Pair(w Word) Word {
	low := w & ((Word(1) << (c.pidBits + c.seqBits)) - 1)
	return (w & c.presentBit()) | low
}

// EncodePair packs an announcement pair (pid, seq) directly.
func (c TripleCodec) EncodePair(pid, seq int) Word {
	return c.Pair(c.Encode(0, pid, seq))
}

// DecodePair unpacks a non-bottom announcement pair.
func (c TripleCodec) DecodePair(w Word) (pid, seq int) {
	pid = int((w >> c.seqBits) & ((1 << c.pidBits) - 1))
	seq = int(w & ((1 << c.seqBits) - 1))
	return pid, seq
}

// PairBits returns the width of a packed announcement pair in bits.
func (c TripleCodec) PairBits() int { return int(1 + c.pidBits + c.seqBits) }

// MaskCodec packs the (value, bitmask) pairs stored in the CAS object X of
// the paper's Figure 3 algorithm: an n-bit string with one bit per process,
// and the object's value above it.
//
// Layout: [value:valueBits][mask:n].
type MaskCodec struct {
	n         int
	valueBits uint
}

// NewMaskCodec builds a codec for n processes and valueBits-bit values.
// It returns an error if value + mask exceed a 64-bit word.
func NewMaskCodec(n int, valueBits uint) (MaskCodec, error) {
	if n < 1 {
		return MaskCodec{}, fmt.Errorf("shmem: mask codec needs n >= 1, got %d", n)
	}
	if valueBits < 1 {
		return MaskCodec{}, fmt.Errorf("shmem: mask codec needs valueBits >= 1, got %d", valueBits)
	}
	if uint(n)+valueBits > 64 {
		return MaskCodec{}, fmt.Errorf("shmem: mask pair (%d+%d bits) exceeds 64-bit word", valueBits, n)
	}
	return MaskCodec{n: n, valueBits: valueBits}, nil
}

// Bits returns the width of the packed pair in bits.
func (c MaskCodec) Bits() int { return int(c.valueBits) + c.n }

// MaxValue returns the largest encodable value.
func (c MaskCodec) MaxValue() Word { return (Word(1) << c.valueBits) - 1 }

// Encode packs (v, mask).  It panics if v exceeds the value domain.
func (c MaskCodec) Encode(v, mask Word) Word {
	if v > c.MaxValue() {
		panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
	}
	return v<<uint(c.n) | (mask & c.AllSet())
}

// Value returns the value field.
func (c MaskCodec) Value(w Word) Word { return w >> uint(c.n) }

// Mask returns the n-bit process mask.
func (c MaskCodec) Mask(w Word) Word { return w & c.AllSet() }

// AllSet returns the mask with every process bit set, the paper's 2^n - 1.
func (c MaskCodec) AllSet() Word { return (Word(1) << uint(c.n)) - 1 }

// Bit reports whether process pid's bit is set in w.
func (c MaskCodec) Bit(w Word, pid int) bool { return w>>uint(pid)&1 == 1 }

// ClearBit returns w with process pid's bit cleared (the paper's a - 2^p).
func (c MaskCodec) ClearBit(w Word, pid int) Word { return w &^ (Word(1) << uint(pid)) }

// TagCodec packs the (value, tag) pairs used by the tag-based baselines:
// the flawed bounded-tag register (tag wraps around) and the unbounded-tag
// register and LL/SC (tag modeled by a wide field).
//
// Layout: [value:valueBits][tag:tagBits].
type TagCodec struct {
	valueBits uint
	tagBits   uint
}

// NewTagCodec builds a codec with the given field widths.  It returns an
// error if the pair does not fit in a 64-bit word.
func NewTagCodec(valueBits, tagBits uint) (TagCodec, error) {
	if valueBits < 1 || tagBits < 1 {
		return TagCodec{}, fmt.Errorf("shmem: tag codec needs positive widths, got value=%d tag=%d", valueBits, tagBits)
	}
	if valueBits+tagBits > 64 {
		return TagCodec{}, fmt.Errorf("shmem: tag pair (%d+%d bits) exceeds 64-bit word", valueBits, tagBits)
	}
	return TagCodec{valueBits: valueBits, tagBits: tagBits}, nil
}

// Bits returns the width of the packed pair in bits.
func (c TagCodec) Bits() int { return int(c.valueBits + c.tagBits) }

// MaxValue returns the largest encodable value.
func (c TagCodec) MaxValue() Word { return (Word(1) << c.valueBits) - 1 }

// TagVals returns the size of the tag domain, 2^tagBits.
func (c TagCodec) TagVals() Word { return Word(1) << c.tagBits }

// Encode packs (v, tag).  The tag is reduced modulo the tag domain (that is
// precisely the wraparound the bounded-tag baseline suffers from); the value
// must fit, or Encode panics.
func (c TagCodec) Encode(v, tag Word) Word {
	if v > c.MaxValue() {
		panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
	}
	return v<<c.tagBits | (tag & (c.TagVals() - 1))
}

// Value returns the value field.
func (c TagCodec) Value(w Word) Word { return w >> c.tagBits }

// Tag returns the tag field.
func (c TagCodec) Tag(w Word) Word { return w & (c.TagVals() - 1) }
