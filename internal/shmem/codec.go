package shmem

import (
	"fmt"
	"math/bits"
)

// BitsFor returns the minimum number of bits needed to represent the values
// 0..count-1.  BitsFor(1) is 1 (a field of width zero would be degenerate).
func BitsFor(count int) uint {
	if count <= 2 {
		return 1
	}
	return uint(bits.Len(uint(count - 1)))
}

// TripleCodec packs the (value, pid, seq) triples stored in register X of
// the paper's Figure 4 algorithm (and in the CAS object of the
// announcement-based constant-time LL/SC).  A distinguished bottom word
// (all zeros) encodes the initial (⊥,⊥,⊥) triple.
//
// Layout, from most to least significant:
//
//	[present:1][value:valueBits][pid:pidBits][seq:seqBits]
//
// The announcement pairs (pid, seq) stored in the array A share the low
// pidBits+seqBits of the layout plus the present bit, so Pair(x) == Pair(y)
// exactly when x and y carry the same (pid, seq) and the same ⊥-ness.
type TripleCodec struct {
	valueBits uint
	pidBits   uint
	seqBits   uint
	n         int
	seqVals   int

	// Precomputed layout constants.  The codec sits on every shared step of
	// the Figure 4 register and the constant-time LL/SC, so the masks are
	// derived once here instead of re-shifted per operation, and the cold
	// range panics live out of line — this keeps Encode/Pair/DecodePair
	// cheap enough for the compiler to inline into the devirtualized hot
	// paths.
	vShift   uint // pidBits + seqBits
	present  Word // the ⊥-discriminating bit
	maxValue Word // (1 << valueBits) - 1
	pidMask  Word // (1 << pidBits) - 1
	seqMask  Word // (1 << seqBits) - 1
	pairMask Word // present | pid | seq fields
}

// NewTripleCodec builds a codec for n processes, valueBits-bit values, and
// sequence numbers in {0, ..., seqVals-1}.  It returns an error if the
// triple does not fit in a 64-bit word.
func NewTripleCodec(n int, valueBits uint, seqVals int) (TripleCodec, error) {
	if n < 1 {
		return TripleCodec{}, fmt.Errorf("shmem: triple codec needs n >= 1, got %d", n)
	}
	if valueBits < 1 {
		return TripleCodec{}, fmt.Errorf("shmem: triple codec needs valueBits >= 1, got %d", valueBits)
	}
	if seqVals < 1 {
		return TripleCodec{}, fmt.Errorf("shmem: triple codec needs seqVals >= 1, got %d", seqVals)
	}
	c := TripleCodec{
		valueBits: valueBits,
		pidBits:   BitsFor(n),
		seqBits:   BitsFor(seqVals),
		n:         n,
		seqVals:   seqVals,
	}
	if total := 1 + c.valueBits + c.pidBits + c.seqBits; total > 64 {
		return TripleCodec{}, fmt.Errorf("shmem: triple (1+%d+%d+%d = %d bits) exceeds 64-bit word",
			c.valueBits, c.pidBits, c.seqBits, total)
	}
	c.vShift = c.pidBits + c.seqBits
	c.present = Word(1) << (c.valueBits + c.vShift)
	c.maxValue = Word(1)<<c.valueBits - 1
	c.pidMask = Word(1)<<c.pidBits - 1
	c.seqMask = Word(1)<<c.seqBits - 1
	c.pairMask = c.present | (Word(1)<<c.vShift - 1)
	return c, nil
}

// Bits returns the width of the packed triple in bits, the paper's
// "b + 2 log n + O(1)" register size.
func (c TripleCodec) Bits() int { return int(1 + c.valueBits + c.pidBits + c.seqBits) }

// SeqVals returns the size of the sequence-number domain.
func (c TripleCodec) SeqVals() int { return c.seqVals }

// ValueBits returns the width of the value field.
func (c TripleCodec) ValueBits() uint { return c.valueBits }

// MaxValue returns the largest encodable value.
func (c TripleCodec) MaxValue() Word { return c.maxValue }

// Encode packs (v, pid, seq).  It panics if any field is out of range;
// callers are responsible for staying inside the bounded domains they
// declared, exactly as the paper's algorithms are.  The range check is one
// merged branch and the panic rendering is out of line, so Encode inlines
// into the hot paths.
func (c TripleCodec) Encode(v Word, pid, seq int) Word {
	if v > c.maxValue || uint(pid) >= uint(c.n) || uint(seq) >= uint(c.seqVals) {
		c.encodePanic(v, pid, seq)
	}
	return c.present | v<<c.vShift | Word(pid)<<c.seqBits | Word(seq)
}

// CheckValue panics unless v fits the value domain.  Hot paths call it only
// from their own cold overflow branch (they compare against a bound copy of
// MaxValue first) and pack the triple themselves from the layout accessors
// below — even an inlined codec method materializes a receiver copy, which
// is exactly the cost the devirtualized paths exist to avoid.
func (c TripleCodec) CheckValue(v Word) {
	if v > c.maxValue {
		c.valuePanic(v)
	}
}

// valuePanic reports a value-domain overflow out of line.
//
//go:noinline
func (c TripleCodec) valuePanic(v Word) {
	panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
}

// encodePanic reports which Encode argument was out of range.
//
//go:noinline
func (c TripleCodec) encodePanic(v Word, pid, seq int) {
	if v > c.maxValue {
		panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
	}
	if pid < 0 || pid >= c.n {
		panic(fmt.Sprintf("shmem: pid %d out of range [0,%d)", pid, c.n))
	}
	panic(fmt.Sprintf("shmem: seq %d out of range [0,%d)", seq, c.seqVals))
}

// Bottom returns the word encoding (⊥,⊥,⊥).
func (c TripleCodec) Bottom() Word { return 0 }

// IsBottom reports whether w encodes (⊥,⊥,⊥).
func (c TripleCodec) IsBottom(w Word) bool { return w&c.present == 0 }

// Decode unpacks a non-bottom triple.
func (c TripleCodec) Decode(w Word) (v Word, pid, seq int) {
	v = (w >> c.vShift) & c.maxValue
	pid = int((w >> c.seqBits) & c.pidMask)
	seq = int(w & c.seqMask)
	return v, pid, seq
}

// Value returns the value field of a non-bottom triple.
func (c TripleCodec) Value(w Word) Word {
	return (w >> c.vShift) & c.maxValue
}

// Pair projects a triple word onto its (present, pid, seq) announcement
// pair, dropping the value field.  Pair(Bottom()) == Bottom().
func (c TripleCodec) Pair(w Word) Word { return w & c.pairMask }

// EncodePair packs an announcement pair (pid, seq) directly.
func (c TripleCodec) EncodePair(pid, seq int) Word {
	return c.Pair(c.Encode(0, pid, seq))
}

// DecodePair unpacks a non-bottom announcement pair.
func (c TripleCodec) DecodePair(w Word) (pid, seq int) {
	pid = int((w >> c.seqBits) & c.pidMask)
	seq = int(w & c.seqMask)
	return pid, seq
}

// PairBits returns the width of a packed announcement pair in bits.
func (c TripleCodec) PairBits() int { return int(1 + c.pidBits + c.seqBits) }

// Layout accessors.  Hot paths (getseq.Picker's announce scan) bind these
// constants into their per-process state once, at Handle() time: even an
// inlined value-receiver method materializes a copy of the whole codec per
// call, which costs more than the masked arithmetic it guards.

// PresentMask returns the ⊥-discriminating bit: w is bottom iff w&mask == 0.
func (c TripleCodec) PresentMask() Word { return c.present }

// PidMask returns the mask of the shifted-down pid field.
func (c TripleCodec) PidMask() Word { return c.pidMask }

// SeqBits returns the width of the seq field (the pid field's shift).
func (c TripleCodec) SeqBits() uint { return c.seqBits }

// SeqMask returns the mask of the seq field.
func (c TripleCodec) SeqMask() Word { return c.seqMask }

// BoundTriple is a TripleCodec's layout bound to one process: the five
// constants a devirtualized handle needs per operation, packaged once so
// core.RegisterBased and llsc.ConstantTime share a single definition of the
// fast-path encode, pair projection, and value extraction.  Its methods
// take pointer receivers and handles embed it by value, so every call
// inlines to raw word arithmetic on the handle's own fields — no codec
// copy, no indirection.
type BoundTriple struct {
	encBase  Word // present | pid field: OR in value and seq to encode
	vShift   uint
	maxValue Word
	pairMask Word
	present  Word
}

// Bind projects the codec's layout onto process pid.
func (c TripleCodec) Bind(pid int) BoundTriple {
	return BoundTriple{
		encBase:  c.present | Word(pid)<<c.seqBits,
		vShift:   c.vShift,
		maxValue: c.maxValue,
		pairMask: c.pairMask,
		present:  c.present,
	}
}

// Encode packs (v, seq) for the bound process.  The caller guarantees the
// ranges: v vetted against MaxValue (CheckValue renders the panic), seq
// drawn from the GetSeq recycler.
func (b *BoundTriple) Encode(v Word, seq int) Word {
	return b.encBase | v<<b.vShift | Word(seq)
}

// Pair projects a triple word onto its announcement pair.
func (b *BoundTriple) Pair(w Word) Word { return w & b.pairMask }

// Value maps a stored word to the value it represents, with ⊥ going to
// initial.
func (b *BoundTriple) Value(w, initial Word) Word {
	if w&b.present == 0 {
		return initial
	}
	return w >> b.vShift & b.maxValue
}

// MaxValue returns the largest encodable value, for the hot paths' own
// cold-branch overflow check.
func (b *BoundTriple) MaxValue() Word { return b.maxValue }

// MaskCodec packs the (value, bitmask) pairs stored in the CAS object X of
// the paper's Figure 3 algorithm: an n-bit string with one bit per process,
// and the object's value above it.
//
// Layout: [value:valueBits][mask:n].
type MaskCodec struct {
	n         int
	valueBits uint
	maxValue  Word // (1 << valueBits) - 1
	allSet    Word // (1 << n) - 1
}

// NewMaskCodec builds a codec for n processes and valueBits-bit values.
// It returns an error if value + mask exceed a 64-bit word.
func NewMaskCodec(n int, valueBits uint) (MaskCodec, error) {
	if n < 1 {
		return MaskCodec{}, fmt.Errorf("shmem: mask codec needs n >= 1, got %d", n)
	}
	if valueBits < 1 {
		return MaskCodec{}, fmt.Errorf("shmem: mask codec needs valueBits >= 1, got %d", valueBits)
	}
	if uint(n)+valueBits > 64 {
		return MaskCodec{}, fmt.Errorf("shmem: mask pair (%d+%d bits) exceeds 64-bit word", valueBits, n)
	}
	return MaskCodec{
		n:         n,
		valueBits: valueBits,
		maxValue:  Word(1)<<valueBits - 1,
		allSet:    Word(1)<<uint(n) - 1,
	}, nil
}

// Bits returns the width of the packed pair in bits.
func (c MaskCodec) Bits() int { return int(c.valueBits) + c.n }

// MaxValue returns the largest encodable value.
func (c MaskCodec) MaxValue() Word { return c.maxValue }

// Encode packs (v, mask).  It panics if v exceeds the value domain.
func (c MaskCodec) Encode(v, mask Word) Word {
	if v > c.maxValue {
		c.valuePanic(v)
	}
	return v<<uint(c.n) | (mask & c.allSet)
}

// valuePanic reports a value-domain overflow out of line.
//
//go:noinline
func (c MaskCodec) valuePanic(v Word) {
	panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
}

// Value returns the value field.
func (c MaskCodec) Value(w Word) Word { return w >> uint(c.n) }

// Mask returns the n-bit process mask.
func (c MaskCodec) Mask(w Word) Word { return w & c.allSet }

// AllSet returns the mask with every process bit set, the paper's 2^n - 1.
func (c MaskCodec) AllSet() Word { return c.allSet }

// Bit reports whether process pid's bit is set in w.
func (c MaskCodec) Bit(w Word, pid int) bool { return w>>uint(pid)&1 == 1 }

// ClearBit returns w with process pid's bit cleared (the paper's a - 2^p).
func (c MaskCodec) ClearBit(w Word, pid int) Word { return w &^ (Word(1) << uint(pid)) }

// TagCodec packs the (value, tag) pairs used by the tag-based baselines:
// the flawed bounded-tag register (tag wraps around) and the unbounded-tag
// register and LL/SC (tag modeled by a wide field).
//
// Layout: [value:valueBits][tag:tagBits].
type TagCodec struct {
	valueBits uint
	tagBits   uint
	maxValue  Word // (1 << valueBits) - 1
	tagMask   Word // (1 << tagBits) - 1
}

// NewTagCodec builds a codec with the given field widths.  It returns an
// error if the pair does not fit in a 64-bit word.
func NewTagCodec(valueBits, tagBits uint) (TagCodec, error) {
	if valueBits < 1 || tagBits < 1 {
		return TagCodec{}, fmt.Errorf("shmem: tag codec needs positive widths, got value=%d tag=%d", valueBits, tagBits)
	}
	if valueBits+tagBits > 64 {
		return TagCodec{}, fmt.Errorf("shmem: tag pair (%d+%d bits) exceeds 64-bit word", valueBits, tagBits)
	}
	return TagCodec{
		valueBits: valueBits,
		tagBits:   tagBits,
		maxValue:  Word(1)<<valueBits - 1,
		tagMask:   Word(1)<<tagBits - 1,
	}, nil
}

// Bits returns the width of the packed pair in bits.
func (c TagCodec) Bits() int { return int(c.valueBits + c.tagBits) }

// MaxValue returns the largest encodable value.
func (c TagCodec) MaxValue() Word { return c.maxValue }

// TagVals returns the size of the tag domain, 2^tagBits.
func (c TagCodec) TagVals() Word { return c.tagMask + 1 }

// Encode packs (v, tag).  The tag is reduced modulo the tag domain (that is
// precisely the wraparound the bounded-tag baseline suffers from); the value
// must fit, or Encode panics.
func (c TagCodec) Encode(v, tag Word) Word {
	if v > c.maxValue {
		c.valuePanic(v)
	}
	return v<<c.tagBits | (tag & c.tagMask)
}

// valuePanic reports a value-domain overflow out of line.
//
//go:noinline
func (c TagCodec) valuePanic(v Word) {
	panic(fmt.Sprintf("shmem: value %d exceeds %d-bit domain", v, c.valueBits))
}

// Value returns the value field.
func (c TagCodec) Value(w Word) Word { return w >> c.tagBits }

// Tag returns the tag field.
func (c TagCodec) Tag(w Word) Word { return w & c.tagMask }
