package shmem

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Spine is a growable array with lock-free reads: a fixed directory of
// geometrically sized segments, each published once with an atomic pointer
// store and never moved afterwards.  It is the substrate-side half of the
// map's online resize story — a plain Go slice cannot grow under
// unsynchronized readers because append moves the backing array, while a
// Spine extends the address space of node indices without relocating a
// single element, exactly like the slab factory's never-moving chunks.
//
// Segment s≥1 covers indices [base<<(s-1), base<<s) and segment 0 covers
// [0, base), so the directory needs at most 64 entries for any length and
// locating an index is one bits.Len, no loop.  Grow serializes writers under
// a mutex (growth is a rare, amortized event — the hot paths only read),
// builds every new element, publishes the segment pointers, and only then
// advances the length word, so a reader that observes an index below Len
// always finds its element fully constructed.
type Spine[T any] struct {
	base int64
	segs [64]atomic.Pointer[[]T]
	n    atomic.Int64

	mu sync.Mutex // serializes Grow; Get/Len never take it
}

// NewSpine builds a spine of the given initial length, constructing each
// element with build (called for indices 0..initial-1, in order).
func NewSpine[T any](initial int, build func(i int) (T, error)) (*Spine[T], error) {
	base := initial
	if base < 1 {
		base = 1
	}
	s := &Spine[T]{base: int64(base)}
	if _, err := s.Grow(initial, build); err != nil {
		return nil, err
	}
	return s, nil
}

// seg locates index i: segment number and offset within it.
func (s *Spine[T]) seg(i int64) (int, int64) {
	if i < s.base {
		return 0, i
	}
	k := bits.Len64(uint64(i / s.base))
	return k, i - s.base<<(k-1)
}

// Len returns the published length.  Elements below Len are fully built and
// safe to read concurrently with any Grow.
func (s *Spine[T]) Len() int { return int(s.n.Load()) }

// Get returns element i.  Lock-free; i must be below Len.
func (s *Spine[T]) Get(i int) T {
	k, off := s.seg(int64(i))
	return (*s.segs[k].Load())[off]
}

// Grow extends the spine to newLen elements, building each new one (in index
// order) and publishing complete segments before advancing Len.  It returns
// the resulting length; a newLen at or below the current length is a no-op,
// so concurrent growers are idempotent.  On a build error the spine keeps
// its old length — every published element stays valid.
func (s *Spine[T]) Grow(newLen int, build func(i int) (T, error)) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.n.Load()
	if int64(newLen) <= cur {
		return int(cur), nil
	}
	// Materialize segments covering [cur, newLen).  A partially filled last
	// segment allocates its full directory slot (zero values beyond newLen);
	// readers never index past Len, and a later Grow fills the tail in place
	// before republishing Len.
	for i := cur; i < int64(newLen); i++ {
		k, off := s.seg(i)
		segp := s.segs[k].Load()
		if segp == nil {
			size := s.base
			if k > 0 {
				size = s.base << (k - 1)
			}
			fresh := make([]T, size)
			segp = &fresh
			s.segs[k].Store(segp)
		}
		v, err := build(int(i))
		if err != nil {
			s.n.Store(i) // everything below i is built: keep it reachable
			return int(i), err
		}
		(*segp)[off] = v
	}
	s.n.Store(int64(newLen))
	return newLen, nil
}
