// Package shmem provides the bounded shared-memory base objects that every
// algorithm in this repository is written against.
//
// The paper's model is a system of n asynchronous processes communicating
// through atomic base objects: read/write registers, CAS objects, and
// writable CAS objects.  Base objects are *bounded*: they hold values from a
// finite domain.  This package defines those base objects as small
// interfaces, plus:
//
//   - a native implementation backed by sync/atomic 64-bit words (every base
//     object is one machine word, so boundedness is physical);
//   - instrumentation wrappers that count shared-memory steps per process
//     (the paper's step-complexity measure) and audit the value domain each
//     object actually uses (to exhibit the bounded/unbounded separation);
//   - bit-packing codecs for the compound values the paper's algorithms
//     store in a single word: (value, pid, seq) triples, (pid, seq)
//     announcement pairs, (value, n-bit mask) pairs, and (value, tag) pairs.
//
// Every operation takes the calling process's ID.  The native objects ignore
// it, but the instrumented wrappers and the deterministic simulator
// (package internal/sim) use it for per-process accounting and scheduling.
package shmem

import "fmt"

// Word is the contents of a base object.  All base objects in this
// repository hold a single 64-bit word; compound values are bit-packed with
// the codecs in this package.
type Word = uint64

// Register is an atomic read/write register base object.
type Register interface {
	// Read returns the current value.  pid identifies the calling process.
	Read(pid int) Word
	// Write unconditionally replaces the value.
	Write(pid int, v Word)
}

// CAS is an atomic compare-and-swap base object.  It supports Read and
// CompareAndSwap, the two operations of the paper's CAS objects.
type CAS interface {
	// Read returns the current value.
	Read(pid int) Word
	// CompareAndSwap replaces the value with new if it currently equals old,
	// and reports whether it did.
	CompareAndSwap(pid int, old, new Word) bool
}

// WritableCAS is a CAS object that additionally supports an unconditional
// Write, i.e. the paper's "writable CAS" (the canonical conditional
// read-modify-write primitive of Theorem 1(c)).
type WritableCAS interface {
	CAS
	Write(pid int, v Word)
}

// Footprint records how many base objects of each kind an implementation
// allocated.  The paper's space complexity m is Objects().
type Footprint struct {
	// Registers is the number of read/write register base objects.
	Registers int
	// CASObjects is the number of CAS base objects.
	CASObjects int
}

// Objects returns the total number of base objects, the paper's space
// measure m.
func (f Footprint) Objects() int { return f.Registers + f.CASObjects }

// String renders the footprint as "m=K (R registers + C CAS)".
func (f Footprint) String() string {
	return fmt.Sprintf("m=%d (%d registers + %d CAS)", f.Objects(), f.Registers, f.CASObjects)
}

// Factory allocates base objects.  Algorithms receive a Factory so the same
// algorithm code runs on the native substrate, on the instrumented
// substrates, and under the deterministic simulator.
type Factory interface {
	// NewRegister allocates a register base object initialized to init.
	// The name is used by auditing and debugging output.
	NewRegister(name string, init Word) Register
	// NewCAS allocates a (writable) CAS base object initialized to init.
	NewCAS(name string, init Word) WritableCAS
	// Footprint reports the objects allocated through this factory so far.
	Footprint() Footprint
}
