package shmem

import "sync/atomic"

// NativeFactory allocates base objects backed by sync/atomic 64-bit words.
// Every base-object step is a single hardware atomic operation, so the
// native substrate is what a downstream user runs in production.
//
// The zero value is ready to use.  Allocation is safe for concurrent use and
// lock-free — the footprint is kept in atomic counters, so goroutines
// building objects in parallel (e.g. the shards of a sharded array) never
// serialize on a mutex.  The allocated objects are safe for concurrent use
// by any number of goroutines.
type NativeFactory struct {
	registers  atomic.Int64
	casObjects atomic.Int64
}

var _ Factory = (*NativeFactory)(nil)

// NewNativeFactory returns a factory for atomic-word base objects.
func NewNativeFactory() *NativeFactory { return &NativeFactory{} }

// NewRegister allocates an atomic-word register.
func (f *NativeFactory) NewRegister(name string, init Word) Register {
	f.registers.Add(1)
	r := &nativeWord{}
	r.v.Store(init)
	return r
}

// NewCAS allocates an atomic-word writable CAS object.
func (f *NativeFactory) NewCAS(name string, init Word) WritableCAS {
	f.casObjects.Add(1)
	c := &nativeWord{}
	c.v.Store(init)
	return c
}

// Footprint reports the objects allocated so far.
func (f *NativeFactory) Footprint() Footprint {
	return Footprint{
		Registers:  int(f.registers.Load()),
		CASObjects: int(f.casObjects.Load()),
	}
}

// nativeWord is a single atomic 64-bit word serving as both a register and a
// writable CAS object.
type nativeWord struct {
	v atomic.Uint64
}

var (
	_ Register    = (*nativeWord)(nil)
	_ WritableCAS = (*nativeWord)(nil)
)

func (w *nativeWord) Read(pid int) Word     { return w.v.Load() }
func (w *nativeWord) Write(pid int, x Word) { w.v.Store(x) }
func (w *nativeWord) CompareAndSwap(pid int, old, new Word) bool {
	return w.v.CompareAndSwap(old, new)
}
