package shmem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Audited wraps a Factory and records, per object, the largest word value
// ever stored in it.  Because all codecs in this package pack values
// low-aligned, the bit-length of the maximum stored word is the size of the
// domain the object actually used.
//
// This makes the paper's bounded/unbounded distinction measurable: the
// unbounded-tag baselines keep growing their used domain as operations
// accumulate, while the paper's algorithms stay inside a fixed domain
// forever (experiment E7).
type Audited struct {
	inner Factory

	mu   sync.Mutex
	objs []*auditedObject
}

var _ Factory = (*Audited)(nil)

// NewAudited wraps inner with domain auditing.
func NewAudited(inner Factory) *Audited { return &Audited{inner: inner} }

// ObjectReport describes the domain one audited object has used.
type ObjectReport struct {
	// Name is the allocation name of the object.
	Name string
	// MaxWord is the largest word ever stored.
	MaxWord Word
	// BitsUsed is the bit-length of MaxWord: the object's used domain is a
	// subset of [0, 2^BitsUsed).
	BitsUsed int
}

// Report returns one entry per allocated object, sorted by name.
func (a *Audited) Report() []ObjectReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ObjectReport, 0, len(a.objs))
	for _, o := range a.objs {
		m := o.max.Load()
		out = append(out, ObjectReport{Name: o.name, MaxWord: m, BitsUsed: bits.Len64(m)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MaxBitsUsed returns the largest used domain across all objects.
func (a *Audited) MaxBitsUsed() int {
	maxBits := 0
	for _, r := range a.Report() {
		if r.BitsUsed > maxBits {
			maxBits = r.BitsUsed
		}
	}
	return maxBits
}

// NewRegister allocates a domain-audited register.
func (a *Audited) NewRegister(name string, init Word) Register {
	o := a.track(name, init)
	o.reg = a.inner.NewRegister(name, init)
	return o
}

// NewCAS allocates a domain-audited writable CAS object.
func (a *Audited) NewCAS(name string, init Word) WritableCAS {
	o := a.track(name, init)
	o.cas = a.inner.NewCAS(name, init)
	return o
}

// Footprint reports the objects allocated through the wrapped factory.
func (a *Audited) Footprint() Footprint { return a.inner.Footprint() }

func (a *Audited) track(name string, init Word) *auditedObject {
	o := &auditedObject{name: name}
	o.max.Store(init)
	a.mu.Lock()
	if name == "" {
		name = fmt.Sprintf("obj%d", len(a.objs))
		o.name = name
	}
	a.objs = append(a.objs, o)
	a.mu.Unlock()
	return o
}

// auditedObject records the maximum word stored into the underlying object.
type auditedObject struct {
	name string
	max  atomic.Uint64
	reg  Register
	cas  WritableCAS
}

var (
	_ Register    = (*auditedObject)(nil)
	_ WritableCAS = (*auditedObject)(nil)
)

func (o *auditedObject) observe(v Word) {
	for {
		cur := o.max.Load()
		if v <= cur || o.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (o *auditedObject) Read(pid int) Word {
	if o.reg != nil {
		return o.reg.Read(pid)
	}
	return o.cas.Read(pid)
}

func (o *auditedObject) Write(pid int, v Word) {
	o.observe(v)
	if o.reg != nil {
		o.reg.Write(pid, v)
		return
	}
	o.cas.Write(pid, v)
}

func (o *auditedObject) CompareAndSwap(pid int, old, new Word) bool {
	ok := o.cas.CompareAndSwap(pid, old, new)
	if ok {
		o.observe(new)
	}
	return ok
}
