package shmem

import (
	"sync"
	"sync/atomic"
)

// Counting wraps a Factory so that every shared-memory step (Read, Write, or
// CompareAndSwap on any object it allocated) is counted per process.  This
// is the paper's step-complexity measure: the number of shared-memory steps
// a process takes during a method call.
//
// Counters are atomic, so counting is accurate even on the native substrate
// where processes are real goroutines.  A handle measuring its own method's
// step complexity reads Steps(pid) before and after the call; since a
// process is a single goroutine, the difference is exact.
type Counting struct {
	inner Factory
	steps []atomic.Int64
	mu    sync.Mutex
}

var _ Factory = (*Counting)(nil)

// NewCounting wraps inner with per-process step counters for processes
// 0..n-1.
func NewCounting(inner Factory, n int) *Counting {
	return &Counting{inner: inner, steps: make([]atomic.Int64, n)}
}

// Steps returns the number of shared-memory steps process pid has taken on
// objects allocated through this factory.
func (c *Counting) Steps(pid int) int64 { return c.steps[pid].Load() }

// TotalSteps returns the number of shared-memory steps taken by all
// processes.
func (c *Counting) TotalSteps() int64 {
	var t int64
	for i := range c.steps {
		t += c.steps[i].Load()
	}
	return t
}

// Reset zeroes all step counters.
func (c *Counting) Reset() {
	for i := range c.steps {
		c.steps[i].Store(0)
	}
}

// NewRegister allocates a step-counted register.
func (c *Counting) NewRegister(name string, init Word) Register {
	return &countedObject{obj: nil, reg: c.inner.NewRegister(name, init), c: c}
}

// NewCAS allocates a step-counted writable CAS object.
func (c *Counting) NewCAS(name string, init Word) WritableCAS {
	return &countedObject{obj: c.inner.NewCAS(name, init), c: c}
}

// Footprint reports the objects allocated through the wrapped factory.
func (c *Counting) Footprint() Footprint { return c.inner.Footprint() }

// countedObject wraps either a register (reg) or a writable CAS (obj) and
// bumps the per-process step counter on every operation.
type countedObject struct {
	obj WritableCAS // non-nil for CAS objects
	reg Register    // non-nil for registers
	c   *Counting
}

var (
	_ Register    = (*countedObject)(nil)
	_ WritableCAS = (*countedObject)(nil)
)

func (o *countedObject) count(pid int) {
	if pid >= 0 && pid < len(o.c.steps) {
		o.c.steps[pid].Add(1)
	}
}

func (o *countedObject) Read(pid int) Word {
	o.count(pid)
	if o.reg != nil {
		return o.reg.Read(pid)
	}
	return o.obj.Read(pid)
}

func (o *countedObject) Write(pid int, v Word) {
	o.count(pid)
	if o.reg != nil {
		o.reg.Write(pid, v)
		return
	}
	o.obj.Write(pid, v)
}

func (o *countedObject) CompareAndSwap(pid int, old, new Word) bool {
	o.count(pid)
	return o.obj.CompareAndSwap(pid, old, new)
}
