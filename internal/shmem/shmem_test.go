package shmem

import (
	"sync"
	"testing"
)

func TestNativeRegister(t *testing.T) {
	f := NewNativeFactory()
	r := f.NewRegister("r", 7)
	if got := r.Read(0); got != 7 {
		t.Errorf("initial Read = %d, want 7", got)
	}
	r.Write(1, 42)
	if got := r.Read(2); got != 42 {
		t.Errorf("Read after Write = %d, want 42", got)
	}
}

func TestNativeCAS(t *testing.T) {
	f := NewNativeFactory()
	c := f.NewCAS("c", 1)
	if !c.CompareAndSwap(0, 1, 2) {
		t.Fatal("CAS(1,2) on value 1 should succeed")
	}
	if c.CompareAndSwap(0, 1, 3) {
		t.Fatal("CAS(1,3) on value 2 should fail")
	}
	if got := c.Read(0); got != 2 {
		t.Errorf("Read = %d, want 2", got)
	}
	c.Write(0, 9)
	if got := c.Read(0); got != 9 {
		t.Errorf("Read after Write = %d, want 9", got)
	}
}

func TestNativeFactoryFootprint(t *testing.T) {
	f := NewNativeFactory()
	for i := 0; i < 5; i++ {
		f.NewRegister("r", 0)
	}
	for i := 0; i < 3; i++ {
		f.NewCAS("c", 0)
	}
	fp := f.Footprint()
	if fp.Registers != 5 || fp.CASObjects != 3 || fp.Objects() != 8 {
		t.Errorf("footprint = %+v, want 5 registers + 3 CAS", fp)
	}
	if fp.String() != "m=8 (5 registers + 3 CAS)" {
		t.Errorf("String() = %q", fp.String())
	}
}

func TestNativeCASAtomicity(t *testing.T) {
	// Concurrent increments through CAS must not lose updates.
	f := NewNativeFactory()
	c := f.NewCAS("ctr", 0)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					old := c.Read(pid)
					if c.CompareAndSwap(pid, old, old+1) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Read(0); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCountingSteps(t *testing.T) {
	cf := NewCounting(NewNativeFactory(), 4)
	r := cf.NewRegister("r", 0)
	c := cf.NewCAS("c", 0)

	r.Read(0)
	r.Write(0, 1)
	c.Read(1)
	c.CompareAndSwap(1, 0, 5)
	c.Write(2, 7)

	if got := cf.Steps(0); got != 2 {
		t.Errorf("Steps(0) = %d, want 2", got)
	}
	if got := cf.Steps(1); got != 2 {
		t.Errorf("Steps(1) = %d, want 2", got)
	}
	if got := cf.Steps(2); got != 1 {
		t.Errorf("Steps(2) = %d, want 1", got)
	}
	if got := cf.Steps(3); got != 0 {
		t.Errorf("Steps(3) = %d, want 0", got)
	}
	if got := cf.TotalSteps(); got != 5 {
		t.Errorf("TotalSteps = %d, want 5", got)
	}
	cf.Reset()
	if got := cf.TotalSteps(); got != 0 {
		t.Errorf("TotalSteps after Reset = %d, want 0", got)
	}
}

func TestCountingIgnoresOutOfRangePid(t *testing.T) {
	cf := NewCounting(NewNativeFactory(), 2)
	r := cf.NewRegister("r", 0)
	r.Read(-1) // e.g. instrumentation probes; must not panic
	r.Read(99)
	if got := cf.TotalSteps(); got != 0 {
		t.Errorf("TotalSteps = %d, want 0", got)
	}
}

func TestCountingSemanticsPreserved(t *testing.T) {
	cf := NewCounting(NewNativeFactory(), 2)
	c := cf.NewCAS("c", 3)
	if !c.CompareAndSwap(0, 3, 4) {
		t.Error("CAS should succeed")
	}
	if c.CompareAndSwap(0, 3, 5) {
		t.Error("CAS should fail")
	}
	if got := c.Read(1); got != 4 {
		t.Errorf("Read = %d, want 4", got)
	}
	r := cf.NewRegister("r", 0)
	r.Write(0, 11)
	if got := r.Read(1); got != 11 {
		t.Errorf("register Read = %d, want 11", got)
	}
}

func TestAuditedTracksDomain(t *testing.T) {
	a := NewAudited(NewNativeFactory())
	r := a.NewRegister("X", 0)
	c := a.NewCAS("Y", 0)

	r.Write(0, 0b1011)            // 4 bits
	c.CompareAndSwap(0, 0, 255)   // 8 bits, succeeds
	c.CompareAndSwap(0, 0, 1<<40) // fails: must not count

	reports := a.Report()
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	byName := map[string]ObjectReport{}
	for _, rep := range reports {
		byName[rep.Name] = rep
	}
	if got := byName["X"].BitsUsed; got != 4 {
		t.Errorf("X bits = %d, want 4", got)
	}
	if got := byName["Y"].BitsUsed; got != 8 {
		t.Errorf("Y bits = %d, want 8", got)
	}
	if got := a.MaxBitsUsed(); got != 8 {
		t.Errorf("MaxBitsUsed = %d, want 8", got)
	}
}

func TestAuditedSemanticsPreserved(t *testing.T) {
	a := NewAudited(NewNativeFactory())
	c := a.NewCAS("c", 1)
	if !c.CompareAndSwap(0, 1, 2) || c.CompareAndSwap(0, 1, 3) {
		t.Error("CAS semantics changed by auditing")
	}
	c.Write(0, 6)
	if got := c.Read(0); got != 6 {
		t.Errorf("Read = %d, want 6", got)
	}
	r := a.NewRegister("r", 5)
	if got := r.Read(0); got != 5 {
		t.Errorf("register initial Read = %d, want 5", got)
	}
}

func TestAuditedAnonymousNames(t *testing.T) {
	a := NewAudited(NewNativeFactory())
	a.NewRegister("", 0)
	a.NewRegister("", 0)
	reports := a.Report()
	if len(reports) != 2 || reports[0].Name == reports[1].Name {
		t.Errorf("anonymous objects must get distinct names: %+v", reports)
	}
}

func TestStackedWrappers(t *testing.T) {
	// Counting over Audited over Native: all layers must compose.
	a := NewAudited(NewNativeFactory())
	cf := NewCounting(a, 2)
	r := cf.NewRegister("X", 0)
	r.Write(0, 1000)
	if got := r.Read(1); got != 1000 {
		t.Errorf("Read = %d, want 1000", got)
	}
	if got := cf.TotalSteps(); got != 2 {
		t.Errorf("TotalSteps = %d, want 2", got)
	}
	if got := a.MaxBitsUsed(); got != 10 {
		t.Errorf("MaxBitsUsed = %d, want 10", got)
	}
	if got := cf.Footprint().Objects(); got != 1 {
		t.Errorf("footprint objects = %d, want 1", got)
	}
}
