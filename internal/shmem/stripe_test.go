package shmem

import (
	"sync"
	"testing"
	"unsafe"
)

func TestStripesShape(t *testing.T) {
	n := Stripes()
	if n < 1 || n&(n-1) != 0 {
		t.Fatalf("Stripes() = %d, want a positive power of two", n)
	}
	if n > 16 {
		t.Fatalf("Stripes() = %d, want the cap at 16", n)
	}
	if got := StripeFor(-1); got != 0 {
		t.Fatalf("StripeFor(-1) = %d, want the observer on stripe 0", got)
	}
	for pid := 0; pid < 64; pid++ {
		if s := StripeFor(pid); s < 0 || s >= n {
			t.Fatalf("StripeFor(%d) = %d out of [0,%d)", pid, s, n)
		}
	}
}

func TestStripedLanePadding(t *testing.T) {
	if sz := unsafe.Sizeof(stripedLane{}); sz != CacheLineBytes {
		t.Fatalf("stripedLane is %d bytes, want one full cache line (%d)", sz, CacheLineBytes)
	}
}

func TestStripedCounterSums(t *testing.T) {
	c := NewStripedCounter()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(stripe, 1)
			}
		}(StripeFor(pid))
	}
	wg.Wait()
	c.Add(StripeFor(-1), 5)
	if got := c.Load(); got != workers*per+5 {
		t.Fatalf("Load() = %d, want %d", got, workers*per+5)
	}
}
