package shmem

import (
	"sync"
	"testing"
	"unsafe"
)

func TestSlabFactoryBasics(t *testing.T) {
	f := NewSlabFactory(1)
	r := f.NewRegister("R", 7)
	c := f.NewCAS("C", 9)
	if got := r.Read(0); got != 7 {
		t.Errorf("register init = %d, want 7", got)
	}
	if got := c.Read(0); got != 9 {
		t.Errorf("CAS init = %d, want 9", got)
	}
	r.Write(0, 11)
	if got := r.Read(1); got != 11 {
		t.Errorf("register after write = %d, want 11", got)
	}
	if !c.CompareAndSwap(0, 9, 10) {
		t.Error("CAS with correct old failed")
	}
	if c.CompareAndSwap(0, 9, 12) {
		t.Error("CAS with stale old succeeded")
	}
	if fp := f.Footprint(); fp.Registers != 1 || fp.CASObjects != 1 {
		t.Errorf("footprint = %v, want 1 register + 1 CAS", fp)
	}
}

func TestSlabZeroValueIsPacked(t *testing.T) {
	var f SlabFactory
	a := f.NewRegister("a", 0)
	b := f.NewRegister("b", 0)
	da, db := Direct(a), Direct(b)
	if da == nil || db == nil {
		t.Fatal("slab words must devirtualize")
	}
	if d := uintptr(unsafe.Pointer(db)) - uintptr(unsafe.Pointer(da)); d != 8 {
		t.Errorf("packed slab words are %d bytes apart, want 8", d)
	}
}

func TestSlabContiguousLayout(t *testing.T) {
	f := NewSlabFactory(1)
	words := make([]*slabWord, 16)
	for i := range words {
		words[i] = f.NewRegister("r", Word(i)).(*slabWord)
	}
	base := uintptr(unsafe.Pointer(words[0]))
	for i, w := range words {
		if got := uintptr(unsafe.Pointer(w)) - base; got != uintptr(i)*8 {
			t.Fatalf("object %d is %d bytes from base, want %d", i, got, i*8)
		}
	}
	// Values must not bleed between neighbors.
	for i, w := range words {
		if got := w.Read(0); got != Word(i) {
			t.Errorf("object %d reads %d, want %d", i, got, i)
		}
	}
}

func TestPaddedZeroValueStillPads(t *testing.T) {
	// The seed's zero-value PaddedFactory padded; the slab-backed one must
	// too — the stride is fixed by the methods, not by construction.
	var f PaddedFactory
	a := Direct(f.NewRegister("a", 0))
	b := Direct(f.NewCAS("b", 0))
	d := uintptr(unsafe.Pointer(b)) - uintptr(unsafe.Pointer(a))
	if d != cacheLineBytes {
		t.Errorf("zero-value padded objects are %d bytes apart, want %d", d, cacheLineBytes)
	}
	if addr := uintptr(unsafe.Pointer(a)); addr%cacheLineBytes != 0 {
		t.Errorf("zero-value padded object at %#x is not line-aligned", addr)
	}
}

func TestStripedSlabLayout(t *testing.T) {
	f := NewStripedSlabFactory()
	a := Direct(f.NewRegister("a", 0))
	b := Direct(f.NewRegister("b", 0))
	d := uintptr(unsafe.Pointer(b)) - uintptr(unsafe.Pointer(a))
	if d != cacheLineBytes {
		t.Errorf("striped objects are %d bytes apart, want %d", d, cacheLineBytes)
	}
	// The no-false-sharing promise needs line-aligned slots, not just
	// line-sized strides; cover several slab rollovers.
	for i := 0; i < 3*slabChunkWords/cacheLineWords+5; i++ {
		w := Direct(f.NewCAS("c", 0))
		if addr := uintptr(unsafe.Pointer(w)); addr%cacheLineBytes != 0 {
			t.Fatalf("striped object %d at %#x is not cache-line aligned", i, addr)
		}
	}
}

func TestSlabGrowthKeepsOldWordsValid(t *testing.T) {
	f := NewSlabFactory(1)
	var words []Register
	const count = 3*slabChunkWords + 5 // forces several slab rollovers
	for i := 0; i < count; i++ {
		words = append(words, f.NewRegister("r", Word(i)))
	}
	for i, w := range words {
		if got := w.Read(0); got != Word(i) {
			t.Fatalf("object %d reads %d after growth, want %d", i, got, i)
		}
	}
	if fp := f.Footprint(); fp.Registers != count {
		t.Errorf("footprint registers = %d, want %d", fp.Registers, count)
	}
}

func TestSlabFirstChunkIsSmall(t *testing.T) {
	// Every constructed object gets a fresh factory, so a one-word object
	// must not pin a full 4 KiB chunk.
	f := NewSlabFactory(1)
	f.NewCAS("X", 0)
	if got := len(f.slab); got > slabMinWords {
		t.Errorf("first slab holds %d words, want <= %d", got, slabMinWords)
	}
}

func TestSlabConcurrentAllocation(t *testing.T) {
	f := NewStripedSlabFactory()
	const goroutines, perG = 8, 200
	words := make([][]WritableCAS, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			words[g] = make([]WritableCAS, perG)
			for i := range words[g] {
				words[g][i] = f.NewCAS("c", Word(g*perG+i))
			}
		}(g)
	}
	wg.Wait()
	seen := map[*slabWord]bool{}
	for g := range words {
		for i, w := range words[g] {
			sw := w.(*slabWord)
			if seen[sw] {
				t.Fatalf("slot handed out twice")
			}
			seen[sw] = true
			if got := w.Read(0); got != Word(g*perG+i) {
				t.Errorf("object (%d,%d) reads %d, want %d", g, i, got, g*perG+i)
			}
		}
	}
	if fp := f.Footprint(); fp.CASObjects != goroutines*perG {
		t.Errorf("footprint CAS = %d, want %d", fp.CASObjects, goroutines*perG)
	}
}

func TestDirectResolvesOnlyDirectSubstrates(t *testing.T) {
	if Direct(NewNativeFactory().NewRegister("r", 0)) == nil {
		t.Error("native register must devirtualize")
	}
	if Direct(NewSlabFactory(1).NewCAS("c", 0)) == nil {
		t.Error("slab CAS must devirtualize")
	}
	if Direct(NewPaddedFactory().NewRegister("r", 0)) == nil {
		t.Error("padded register must devirtualize")
	}
	// The instrumented wrappers must NOT devirtualize: a bound fast path
	// would silently skip step counting and domain auditing.
	counting := NewCounting(NewNativeFactory(), 2)
	if Direct(counting.NewRegister("r", 0)) != nil {
		t.Error("counted register must not devirtualize")
	}
	audited := NewAudited(NewNativeFactory())
	if Direct(audited.NewCAS("c", 0)) != nil {
		t.Error("audited CAS must not devirtualize")
	}
}

func TestDirectRegistersAllOrNothing(t *testing.T) {
	native := NewNativeFactory()
	counting := NewCounting(NewNativeFactory(), 2)
	all := []Register{native.NewRegister("a", 0), native.NewRegister("b", 0)}
	if got := DirectRegisters(all); got == nil || len(got) != 2 {
		t.Error("all-direct array must resolve")
	}
	mixed := []Register{native.NewRegister("a", 0), counting.NewRegister("b", 0)}
	if DirectRegisters(mixed) != nil {
		t.Error("mixed array must not resolve")
	}
}

func TestNativeFactoryConcurrentFootprint(t *testing.T) {
	f := NewNativeFactory()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					f.NewRegister("r", 0)
				} else {
					f.NewCAS("c", 0)
				}
			}
		}()
	}
	wg.Wait()
	fp := f.Footprint()
	if fp.Registers != goroutines*perG/2 || fp.CASObjects != goroutines*perG/2 {
		t.Errorf("footprint = %v, want %d+%d", fp, goroutines*perG/2, goroutines*perG/2)
	}
}
