package shmem

import (
	"errors"
	"sync"
	"testing"
)

func TestSpineBasic(t *testing.T) {
	s, err := NewSpine(5, func(i int) (int, error) { return i * 10, nil })
	if err != nil {
		t.Fatalf("NewSpine: %v", err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	for i := 0; i < 5; i++ {
		if got := s.Get(i); got != i*10 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*10)
		}
	}
}

func TestSpineGrowGeometric(t *testing.T) {
	s, err := NewSpine(3, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("NewSpine: %v", err)
	}
	// Grow through several doublings; every element must stay addressable
	// and correct after each step (old segments never move).
	for _, target := range []int{4, 6, 12, 24, 100} {
		if n, err := s.Grow(target, func(i int) (int, error) { return i, nil }); err != nil || n != target {
			t.Fatalf("Grow(%d) = %d, %v", target, n, err)
		}
		for i := 0; i < target; i++ {
			if got := s.Get(i); got != i {
				t.Fatalf("after Grow(%d): Get(%d) = %d", target, i, got)
			}
		}
	}
	// Shrinking or same-length grows are no-ops.
	if n, err := s.Grow(10, nil); err != nil || n != 100 {
		t.Fatalf("no-op Grow = %d, %v; want 100, nil", n, err)
	}
}

func TestSpineGrowBuildError(t *testing.T) {
	s, err := NewSpine(2, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("NewSpine: %v", err)
	}
	boom := errors.New("boom")
	n, err := s.Grow(8, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || n != 5 {
		t.Fatalf("Grow with failing build = %d, %v; want 5, boom", n, err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len after failed grow = %d, want 5", s.Len())
	}
	for i := 0; i < 5; i++ {
		if got := s.Get(i); got != i {
			t.Fatalf("Get(%d) = %d after failed grow", i, got)
		}
	}
	// A later grow resumes from the published length.
	if n, err := s.Grow(8, func(i int) (int, error) { return i, nil }); err != nil || n != 8 {
		t.Fatalf("resumed Grow = %d, %v", n, err)
	}
	for i := 0; i < 8; i++ {
		if got := s.Get(i); got != i {
			t.Fatalf("Get(%d) = %d after resumed grow", i, got)
		}
	}
}

func TestSpineConcurrentReadersDuringGrow(t *testing.T) {
	s, err := NewSpine(4, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("NewSpine: %v", err)
	}
	const target = 1 << 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := s.Len()
				for i := 0; i < n; i++ {
					if got := s.Get(i); got != i {
						t.Errorf("Get(%d) = %d during grow", i, got)
						return
					}
				}
			}
		}()
	}
	for n := 8; n <= target; n *= 2 {
		if _, err := s.Grow(n, func(i int) (int, error) { return i, nil }); err != nil {
			t.Errorf("Grow(%d): %v", n, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if s.Len() != target {
		t.Fatalf("final Len = %d, want %d", s.Len(), target)
	}
}
