package shmem

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// SlabFactory allocates base objects inside large contiguous slabs of atomic
// 64-bit words instead of one heap allocation per object.  All of an
// algorithm's base objects — register X plus the announce array A[0..n-1],
// say — land next to each other in one backing array, so the four shared
// steps of a Figure 4 DRead touch one or two cache lines instead of n+1
// scattered heap objects.
//
// Stride selects the layout:
//
//   - stride 1 packs objects densely, eight per cache line — best for the
//     sequential and read-mostly paths the paper's t(n) counts;
//   - stride 8 (cacheLineWords) places each object alone on its cache line —
//     the striped layout that PaddedFactory now delegates to, best under
//     heavy multi-core write traffic on unrelated objects.
//
// Slabs are fixed-size arrays that never move once allocated, so the
// *slabWord handles stay valid for the life of the factory; growing the
// factory allocates a new slab rather than copying the old one.  The paper's
// space measure m counts base objects, not bytes, so the layout is free in
// the model — it is purely a hardware-throughput choice.
//
// The zero value is a packed (stride 1) factory ready to use.  Allocation is
// safe for concurrent use; the allocated objects are safe for concurrent use
// by any number of goroutines.
type SlabFactory struct {
	stride int // words between consecutive objects; <=1 means packed

	mu       sync.Mutex // guards slab growth, not the footprint counters
	slab     []slabWord // current slab; older full slabs stay referenced by their words
	next     int        // next free index in slab
	nextSize int        // size of the next slab; grows geometrically

	registers  atomic.Int64
	casObjects atomic.Int64
}

var _ Factory = (*SlabFactory)(nil)

// cacheLineWords is the coherence granularity in 64-bit words.
const cacheLineWords = cacheLineBytes / 8

// Slab sizing: each factory backs one constructed object (a fresh factory
// per constructor call), so the first slab is small — a one-word Moir CAS
// must not pin kilobytes — and subsequent slabs double up to the cap, so
// large objects (sharded arrays, big announce arrays) still amortize to a
// few allocations with long contiguous runs.
const (
	slabMinWords   = 16  // first slab: 128 bytes packed, 2 striped objects
	slabChunkWords = 512 // cap: 4 KiB, 512 packed objects or 64 striped ones
)

// NewSlabFactory returns a factory that lays base objects out contiguously,
// stride words apart (stride <= 1 packs them densely; NewStripedSlabFactory
// is the cache-line striped preset).
func NewSlabFactory(stride int) *SlabFactory {
	return &SlabFactory{stride: stride}
}

// NewStripedSlabFactory returns a slab factory whose objects each occupy a
// full cache line, so operations on distinct objects never contend for a
// line.
func NewStripedSlabFactory() *SlabFactory {
	return NewSlabFactory(cacheLineWords)
}

// alloc reserves the next slot of the current slab using the factory's own
// stride.
func (f *SlabFactory) alloc(init Word) *slabWord {
	stride := f.stride
	if stride < 1 {
		stride = 1
	}
	return f.allocStride(stride, init)
}

// allocStride reserves the next slot stride words after the previous one,
// starting a new slab when the current one is full.  The stride is a
// parameter, not read from the factory, so wrappers with a fixed layout
// (PaddedFactory) stay correct even as zero values.
func (f *SlabFactory) allocStride(stride int, init Word) *slabWord {
	f.mu.Lock()
	if f.next >= len(f.slab) {
		size := f.nextSize
		if size < slabMinWords {
			size = slabMinWords
		}
		if size > slabChunkWords {
			size = slabChunkWords
		}
		if stride > size {
			size = stride
		}
		f.nextSize = size * 2
		if stride%cacheLineWords == 0 {
			// Striped layouts promise "never two objects on one line", which
			// needs the first slot on a line boundary; Go only aligns the
			// backing array to the word size, so over-allocate and round up.
			f.slab = make([]slabWord, size+cacheLineWords-1)
			base := uintptr(unsafe.Pointer(&f.slab[0]))
			f.next = int((cacheLineBytes - base%cacheLineBytes) % cacheLineBytes / 8)
		} else {
			f.slab = make([]slabWord, size)
			f.next = 0
		}
	}
	w := &f.slab[f.next]
	f.next += stride
	f.mu.Unlock()
	w.v.Store(init)
	return w
}

// NewRegister allocates a slab-resident register.
func (f *SlabFactory) NewRegister(name string, init Word) Register {
	f.registers.Add(1)
	return f.alloc(init)
}

// NewCAS allocates a slab-resident writable CAS object.
func (f *SlabFactory) NewCAS(name string, init Word) WritableCAS {
	f.casObjects.Add(1)
	return f.alloc(init)
}

// Footprint reports the objects allocated so far.
func (f *SlabFactory) Footprint() Footprint {
	return Footprint{
		Registers:  int(f.registers.Load()),
		CASObjects: int(f.casObjects.Load()),
	}
}

// slabWord is one atomic word inside a slab, serving as both a register and
// a writable CAS object.  Its address is a slot of the slab's backing array,
// so handing one out costs no allocation.
type slabWord struct {
	v atomic.Uint64
}

var (
	_ Register    = (*slabWord)(nil)
	_ WritableCAS = (*slabWord)(nil)
)

func (w *slabWord) Read(pid int) Word     { return w.v.Load() }
func (w *slabWord) Write(pid int, x Word) { w.v.Store(x) }
func (w *slabWord) CompareAndSwap(pid int, old, new Word) bool {
	return w.v.CompareAndSwap(old, new)
}

// Direct returns the raw atomic word backing obj when obj was allocated by
// one of the direct substrates — NativeFactory, SlabFactory, or the
// slab-backed PaddedFactory — and nil otherwise.
//
// This is the devirtualization hook: algorithm constructors call Direct on
// the base objects they just allocated and, when every one resolves, bind
// their hot paths to *atomic.Uint64 loads, stores, and CASes instead of
// dynamic interface calls.  The instrumented substrates (Counting, Audited)
// and the deterministic simulator intentionally resolve to nil, so a bound
// fast path can never bypass step counting, domain auditing, or scheduling.
func Direct(obj any) *atomic.Uint64 {
	switch w := obj.(type) {
	case *nativeWord:
		return &w.v
	case *slabWord:
		return &w.v
	}
	return nil
}

// DirectRegisters resolves every register of a base-object array, returning
// nil unless all of them are direct (a partially devirtualized announce scan
// would be incorrect under instrumentation).
func DirectRegisters(regs []Register) []*atomic.Uint64 {
	out := make([]*atomic.Uint64, len(regs))
	for i, r := range regs {
		d := Direct(r)
		if d == nil {
			return nil
		}
		out[i] = d
	}
	return out
}
