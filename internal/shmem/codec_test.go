package shmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsFor(t *testing.T) {
	cases := []struct {
		count int
		want  uint
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {1024, 10}, {1025, 11},
	}
	for _, tc := range cases {
		if got := BitsFor(tc.count); got != tc.want {
			t.Errorf("BitsFor(%d) = %d, want %d", tc.count, got, tc.want)
		}
	}
}

func TestTripleCodecRoundTrip(t *testing.T) {
	cases := []struct {
		n         int
		valueBits uint
		seqVals   int
	}{
		{1, 1, 4},
		{2, 1, 6},
		{3, 8, 8},
		{16, 16, 34},
		{1024, 32, 2050},
	}
	for _, tc := range cases {
		c, err := NewTripleCodec(tc.n, tc.valueBits, tc.seqVals)
		if err != nil {
			t.Fatalf("NewTripleCodec(%d,%d,%d): %v", tc.n, tc.valueBits, tc.seqVals, err)
		}
		for trial := 0; trial < 200; trial++ {
			v := Word(rand.Int63()) & c.MaxValue()
			pid := rand.Intn(tc.n)
			seq := rand.Intn(tc.seqVals)
			w := c.Encode(v, pid, seq)
			if c.IsBottom(w) {
				t.Fatalf("Encode(%d,%d,%d) looks like bottom", v, pid, seq)
			}
			gv, gp, gs := c.Decode(w)
			if gv != v || gp != pid || gs != seq {
				t.Fatalf("Decode(Encode(%d,%d,%d)) = (%d,%d,%d)", v, pid, seq, gv, gp, gs)
			}
			if got := c.Value(w); got != v {
				t.Fatalf("Value = %d, want %d", got, v)
			}
		}
	}
}

func TestTripleCodecBottom(t *testing.T) {
	c, err := NewTripleCodec(4, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsBottom(c.Bottom()) {
		t.Error("Bottom() not IsBottom")
	}
	if c.Pair(c.Bottom()) != c.Bottom() {
		t.Error("Pair(Bottom()) != Bottom()")
	}
	// No encoded triple may collide with bottom, even (0, 0, 0).
	if c.IsBottom(c.Encode(0, 0, 0)) {
		t.Error("Encode(0,0,0) collides with bottom")
	}
}

func TestTripleCodecPairProjection(t *testing.T) {
	c, err := NewTripleCodec(8, 16, 18)
	if err != nil {
		t.Fatal(err)
	}
	// Pair must ignore the value and preserve (pid, seq).
	f := func(v1, v2 uint16, pidRaw, seqRaw uint8) bool {
		pid := int(pidRaw) % 8
		seq := int(seqRaw) % 18
		w1 := c.Encode(Word(v1), pid, seq)
		w2 := c.Encode(Word(v2), pid, seq)
		if c.Pair(w1) != c.Pair(w2) {
			return false
		}
		if c.Pair(w1) != c.EncodePair(pid, seq) {
			return false
		}
		gp, gs := c.DecodePair(c.Pair(w1))
		return gp == pid && gs == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Distinct (pid, seq) pairs must have distinct projections.
	seen := make(map[Word]struct{})
	for pid := 0; pid < 8; pid++ {
		for seq := 0; seq < 18; seq++ {
			p := c.EncodePair(pid, seq)
			if _, dup := seen[p]; dup {
				t.Fatalf("pair collision at (%d,%d)", pid, seq)
			}
			seen[p] = struct{}{}
		}
	}
}

func TestTripleCodecErrors(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		valueBits uint
		seqVals   int
	}{
		{"zero procs", 0, 1, 4},
		{"zero value bits", 2, 0, 4},
		{"zero seq vals", 2, 1, 0},
		{"overflow", 1 << 30, 60, 1 << 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTripleCodec(tc.n, tc.valueBits, tc.seqVals); err == nil {
				t.Errorf("NewTripleCodec(%d,%d,%d): want error", tc.n, tc.valueBits, tc.seqVals)
			}
		})
	}
}

func TestTripleCodecEncodePanics(t *testing.T) {
	c, err := NewTripleCodec(2, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"value too big", func() { c.Encode(2, 0, 0) }},
		{"pid negative", func() { c.Encode(0, -1, 0) }},
		{"pid too big", func() { c.Encode(0, 2, 0) }},
		{"seq too big", func() { c.Encode(0, 0, 6) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestTripleCodecBitsBound(t *testing.T) {
	// Theorem 3 promises registers of b + 2*log n + O(1) bits.  Verify the
	// codec stays within b + 2*ceil(log2 n) + 4.
	for _, n := range []int{2, 3, 7, 16, 100, 1024} {
		for _, b := range []uint{1, 8, 16} {
			c, err := NewTripleCodec(n, b, 2*n+2)
			if err != nil {
				t.Fatalf("n=%d b=%d: %v", n, b, err)
			}
			logn := int(BitsFor(n))
			if c.Bits() > int(b)+2*logn+4 {
				t.Errorf("n=%d b=%d: %d bits > b+2logn+4 = %d", n, b, c.Bits(), int(b)+2*logn+4)
			}
		}
	}
}

func TestMaskCodec(t *testing.T) {
	c, err := NewMaskCodec(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bits() != 24 {
		t.Errorf("Bits = %d, want 24", c.Bits())
	}
	if c.AllSet() != 0xff {
		t.Errorf("AllSet = %#x, want 0xff", c.AllSet())
	}
	f := func(v uint16, mask uint8) bool {
		w := c.Encode(Word(v), Word(mask))
		if c.Value(w) != Word(v) || c.Mask(w) != Word(mask) {
			return false
		}
		for pid := 0; pid < 8; pid++ {
			if c.Bit(w, pid) != (mask>>uint(pid)&1 == 1) {
				return false
			}
			cleared := c.ClearBit(w, pid)
			if c.Bit(cleared, pid) {
				return false
			}
			if c.Value(cleared) != Word(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskCodecClearBitMatchesPaperArithmetic(t *testing.T) {
	// The paper writes the bit reset as a' - 2^p; verify ClearBit agrees
	// whenever the bit is set.
	c, err := NewMaskCodec(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for mask := Word(0); mask < 1024; mask++ {
		for pid := 0; pid < 10; pid++ {
			w := c.Encode(3, mask)
			if c.Bit(w, pid) {
				if got, want := c.ClearBit(w, pid), w-(Word(1)<<uint(pid)); got != want {
					t.Fatalf("mask=%#x pid=%d: ClearBit=%#x, want %#x", mask, pid, got, want)
				}
			}
		}
	}
}

func TestMaskCodecErrors(t *testing.T) {
	if _, err := NewMaskCodec(0, 8); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewMaskCodec(60, 8); err == nil {
		t.Error("want error for 68-bit pair")
	}
	if _, err := NewMaskCodec(8, 0); err == nil {
		t.Error("want error for 0 value bits")
	}
}

func TestTagCodec(t *testing.T) {
	c, err := NewTagCodec(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.TagVals() != 256 {
		t.Errorf("TagVals = %d, want 256", c.TagVals())
	}
	f := func(v uint16, tag uint32) bool {
		w := c.Encode(Word(v), Word(tag))
		return c.Value(w) == Word(v) && c.Tag(w) == Word(tag)%256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagCodecWraparound(t *testing.T) {
	// The defining flaw of bounded tags: tag and tag + 2^k encode
	// identically.  This is the ABA the paper's lower bound says cannot be
	// avoided in bounded space without more objects.
	c, err := NewTagCodec(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Encode(5, 2) != c.Encode(5, 2+8) {
		t.Error("tag wraparound should alias")
	}
	if c.Encode(5, 2) == c.Encode(5, 3) {
		t.Error("distinct in-domain tags must not alias")
	}
}

func TestTagCodecErrors(t *testing.T) {
	if _, err := NewTagCodec(0, 8); err == nil {
		t.Error("want error for 0 value bits")
	}
	if _, err := NewTagCodec(8, 0); err == nil {
		t.Error("want error for 0 tag bits")
	}
	if _, err := NewTagCodec(40, 40); err == nil {
		t.Error("want error for 80-bit pair")
	}
}
