package shmem

// PaddedFactory allocates base objects so that two objects never share a
// cache line: under heavy multi-core traffic, operations on unrelated
// objects (e.g. distinct shards of a ShardedArray) stop invalidating each
// other's lines.
//
// It is the cache-line striped preset of SlabFactory — one slab, one object
// per 64-byte line — so padded objects live in contiguous slabs, cost no
// per-object heap allocation, and devirtualize through Direct exactly like
// native and packed-slab objects.  The stride is fixed by the methods, not
// stored, so the zero value keeps the padding guarantee.
//
// The paper's space measure m counts base objects, not bytes, so padding is
// free in the model — it is purely a hardware-throughput choice.
type PaddedFactory struct {
	slab SlabFactory
}

var _ Factory = (*PaddedFactory)(nil)

// NewPaddedFactory returns a factory for cache-line padded base objects.
func NewPaddedFactory() *PaddedFactory { return &PaddedFactory{} }

// NewRegister allocates a padded register.
func (f *PaddedFactory) NewRegister(name string, init Word) Register {
	f.slab.registers.Add(1)
	return f.slab.allocStride(cacheLineWords, init)
}

// NewCAS allocates a padded writable CAS object.
func (f *PaddedFactory) NewCAS(name string, init Word) WritableCAS {
	f.slab.casObjects.Add(1)
	return f.slab.allocStride(cacheLineWords, init)
}

// Footprint reports the objects allocated so far.
func (f *PaddedFactory) Footprint() Footprint { return f.slab.Footprint() }

// cacheLineBytes is the assumed coherence granularity.  64 bytes covers
// x86-64 and most AArch64 parts; oversizing merely wastes a little memory.
const cacheLineBytes = 64
