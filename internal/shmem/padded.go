package shmem

import (
	"sync"
	"sync/atomic"
)

// PaddedFactory allocates base objects backed by cache-line padded atomic
// words.  Semantically identical to NativeFactory, it spends 64 bytes per
// base object so that two objects never share a cache line: under heavy
// multi-core traffic, operations on unrelated objects (e.g. distinct shards
// of a ShardedArray) stop invalidating each other's lines.
//
// The paper's space measure m counts base objects, not bytes, so padding is
// free in the model — it is purely a hardware-throughput choice.
type PaddedFactory struct {
	mu sync.Mutex
	fp Footprint
}

var _ Factory = (*PaddedFactory)(nil)

// NewPaddedFactory returns a factory for cache-line padded base objects.
func NewPaddedFactory() *PaddedFactory { return &PaddedFactory{} }

// NewRegister allocates a padded register.
func (f *PaddedFactory) NewRegister(name string, init Word) Register {
	f.mu.Lock()
	f.fp.Registers++
	f.mu.Unlock()
	return newPaddedWord(init)
}

// NewCAS allocates a padded writable CAS object.
func (f *PaddedFactory) NewCAS(name string, init Word) WritableCAS {
	f.mu.Lock()
	f.fp.CASObjects++
	f.mu.Unlock()
	return newPaddedWord(init)
}

// Footprint reports the objects allocated so far.
func (f *PaddedFactory) Footprint() Footprint {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fp
}

// cacheLineBytes is the assumed coherence granularity.  64 bytes covers
// x86-64 and most AArch64 parts; oversizing merely wastes a little memory.
const cacheLineBytes = 64

// paddedWord is one atomic word alone on its cache line.
type paddedWord struct {
	v atomic.Uint64
	_ [cacheLineBytes - 8]byte
}

var (
	_ Register    = (*paddedWord)(nil)
	_ WritableCAS = (*paddedWord)(nil)
)

func newPaddedWord(init Word) *paddedWord {
	w := &paddedWord{}
	w.v.Store(init)
	return w
}

func (w *paddedWord) Read(pid int) Word     { return w.v.Load() }
func (w *paddedWord) Write(pid int, x Word) { w.v.Store(x) }
func (w *paddedWord) CompareAndSwap(pid int, old, new Word) bool {
	return w.v.CompareAndSwap(old, new)
}
