package shmem

import (
	"runtime"
	"sync/atomic"
)

// CacheLineBytes is the assumed coherence granularity, exported for the
// striped seams (guard metrics, pool stats, core.StripedHandles) that pad
// their per-stripe state to whole lines.
const CacheLineBytes = cacheLineBytes

// stripeCount is the number of counter stripes, fixed at init: the next
// power of two covering GOMAXPROCS, capped so a structure with thousands of
// guards does not multiply its metrics footprint past reason.  A power of
// two makes StripeFor a mask instead of a modulo.  GOMAXPROCS changes after
// init keep the mapping valid (stripes are a contention hint, not a
// correctness property) — they only shift which pids share a stripe.
var stripeCount = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	return n
}()

// Stripes returns the process-wide stripe count used by StripeFor.
func Stripes() int { return stripeCount }

// StripeFor maps a process id to its counter stripe.  The observer pid (-1)
// and any other out-of-band pid land on stripe 0.
func StripeFor(pid int) int {
	if pid < 0 {
		return 0
	}
	return pid & (stripeCount - 1)
}

// StripedCounter is a monotonic counter sharded across cache-line padded
// stripes: writers on different stripes never contend on one atomic word or
// invalidate each other's lines, and readers sum the stripes.  It is the
// instrumentation counterpart of the paper's RMR lens — a shared atomic
// counter turns every bump into a remote memory reference under contention,
// which is exactly the serialization the hot stats paths (guard metrics,
// pool hit counters) must not charge to the operations they observe.
//
// The zero value is NOT ready; build with NewStripedCounter.  Counters are
// instrumentation, not base objects: they live outside the paper's
// shared-memory cost model, like the guard metrics they back.
type StripedCounter struct {
	lanes []stripedLane
}

// stripedLane pads one stripe's word to a full cache line.
type stripedLane struct {
	v atomic.Int64
	_ [CacheLineBytes - 8]byte
}

// NewStripedCounter returns a counter with Stripes() lanes.
func NewStripedCounter() *StripedCounter {
	return &StripedCounter{lanes: make([]stripedLane, stripeCount)}
}

// Add bumps the given stripe (callers pass StripeFor(pid), usually cached in
// their handle at construction).
func (c *StripedCounter) Add(stripe int, delta int64) {
	c.lanes[stripe&(len(c.lanes)-1)].v.Add(delta)
}

// Load sums the stripes.  The sum is not an atomic snapshot across lanes —
// exactly the tolerance every stats read here already has.
func (c *StripedCounter) Load() int64 {
	var t int64
	for i := range c.lanes {
		t += c.lanes[i].v.Load()
	}
	return t
}
