package core

import "fmt"

// StripedHandles is the core-aware binding layer over a ShardedArray: each
// worker gets a home shard chosen by its process id, so steady-state
// single-shard traffic from distinct workers lands on distinct shards — and, when the shards were allocated through a padded or striped
// slab factory, on distinct cache lines.
//
// The affinity is procPin-free by construction: a worker's home follows its
// pid, not the OS core it happens to run on, so no runtime pinning (and no
// scheduler coupling) is needed — the repo's handles are single-goroutine
// already, which makes pid the stable identity that survives migrations.
// In the RMR vocabulary of the related mutual-exclusion work, the home
// shard turns a worker's hot-loop references from remote (every worker
// hammering shard 0) into local (each worker owning a line), which is the
// whole scaling story: detection state is per (process, shard) pair, so a
// DWrite to one home never dirties a DRead on another.
//
// Aggregation reads every shard (Sum, ReadAll) with per-shard observer
// reads — the striped-counter pattern applied to detecting registers.
type StripedHandles struct {
	arr *ShardedArray
	n   int
}

// NewStripedHandles binds workers to arr by home shard.  More workers than
// shards is allowed (homes wrap around); more shards than workers just
// leaves the excess cold.
func NewStripedHandles(arr *ShardedArray) (*StripedHandles, error) {
	if arr == nil {
		return nil, fmt.Errorf("core: StripedHandles needs a non-nil ShardedArray")
	}
	return &StripedHandles{arr: arr, n: arr.NumProcs()}, nil
}

// Shards returns the shard count of the underlying array.
func (s *StripedHandles) Shards() int { return s.arr.Shards() }

// Worker returns pid's striped endpoint: the full per-shard handle set of
// the underlying array plus the pid-affine home shard.  Like every handle
// in this repository it is single-goroutine.
func (s *StripedHandles) Worker(pid int) (*StripedWorker, error) {
	h, err := s.arr.Handle(pid)
	if err != nil {
		return nil, err
	}
	// The home follows the pid itself, not shmem.StripeFor: counter stripes
	// are capped by GOMAXPROCS (sharing a lane only costs a contended add),
	// but shards hold per-worker *state*, so two workers folded onto one
	// home would dirty each other's detection — wrap only at the array size.
	return &StripedWorker{
		h:      h,
		home:   pid % s.arr.Shards(),
		shards: s.arr.Shards(),
	}, nil
}

// Sum reads every shard through pid's handle set and returns the total —
// the aggregation half of the striped-counter pattern.  The per-shard reads
// are DReads, so they also consume (and report) interference per shard.
func (s *StripedHandles) Sum(w *StripedWorker) (total Word, dirtyShards int) {
	for i := 0; i < w.shards; i++ {
		v, dirty := w.h.DRead(i)
		total += v
		if dirty {
			dirtyShards++
		}
	}
	return total, dirtyShards
}

// StripedWorker is one worker's endpoint: home-shard fast ops plus indexed
// access for the occasional cross-shard read.
type StripedWorker struct {
	h      *ShardedHandle
	home   int
	shards int
}

// Home returns this worker's home shard index.
func (w *StripedWorker) Home() int { return w.home }

// DWrite writes v to the worker's home shard.
func (w *StripedWorker) DWrite(v Word) { w.h.DWrite(w.home, v) }

// DRead reads the worker's home shard: the value and whether any process
// wrote it since this worker's previous home DRead.
func (w *StripedWorker) DRead() (Word, bool) { return w.h.DRead(w.home) }

// DWriteShard writes v to an explicit shard (wrapped into range), for the
// cross-shard slow paths.
func (w *StripedWorker) DWriteShard(i int, v Word) { w.h.DWrite(w.index(i), v) }

// DReadShard reads an explicit shard (wrapped into range).
func (w *StripedWorker) DReadShard(i int) (Word, bool) { return w.h.DRead(w.index(i)) }

func (w *StripedWorker) index(i int) int {
	i %= w.shards
	if i < 0 {
		i += w.shards
	}
	return i
}
