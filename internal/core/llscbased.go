package core

import (
	"fmt"

	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
)

// LLSCBased is the paper's Figure 5 (Theorem 4): an ABA-detecting register
// from a single LL/SC/VL object, with exactly two shared-memory steps per
// operation.
//
// DWrite performs LL();SC(x); the SC either installs x or fails because a
// concurrent SC installed something — either way a write linearized.  DRead
// performs VL(): if the link is still valid, no successful SC — hence no
// DWrite — linearized since the previous DRead's link was taken, so it
// returns the cached value and a clean flag; otherwise it re-links with
// LL(), returning the fresh value and a dirty flag.
//
// Composed over llsc.CASBased (Figure 3) this is Theorem 2's multi-writer
// ABA-detecting register from a single bounded CAS object with O(n) step
// complexity; composed over llsc.ConstantTime it gives an O(1) register
// from one CAS and n registers.
type LLSCBased struct {
	obj llsc.Object
}

var _ Detector = (*LLSCBased)(nil)

// NewLLSCBased wraps an LL/SC/VL object as an ABA-detecting register.
func NewLLSCBased(obj llsc.Object) (*LLSCBased, error) {
	if obj == nil {
		return nil, fmt.Errorf("core: LLSCBased needs a non-nil LL/SC/VL object")
	}
	return &LLSCBased{obj: obj}, nil
}

// NumProcs returns the underlying object's process count.
func (r *LLSCBased) NumProcs() int { return r.obj.NumProcs() }

// Handle returns process pid's handle.
func (r *LLSCBased) Handle(pid int) (Handle, error) {
	h, err := r.obj.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &llscBasedHandle{ll: h, old: r.obj.Initial()}, nil
}

// llscBasedHandle carries the paper's local variable old.
type llscBasedHandle struct {
	ll  llsc.Handle
	old shmem.Word
}

var _ Handle = (*llscBasedHandle)(nil)

// DWrite implements Figure 5 lines 51-52.
func (h *llscBasedHandle) DWrite(v Word) {
	h.ll.LL()
	h.ll.SC(v)
}

// DRead implements Figure 5 lines 53-54.
func (h *llscBasedHandle) DRead() (Word, bool) {
	if h.ll.VL() {
		return h.old, false
	}
	h.old = h.ll.LL()
	return h.old, true
}
