package core

import (
	"fmt"

	"abadetect/internal/shmem"
)

// BoundedTag is the folklore tagging scheme with a bounded, wrap-around
// k-bit tag (paper §1; IBM System/370 [14]).  It uses a single bounded
// register — far fewer than the n-1 registers Theorem 1(a) proves necessary
// — and therefore it *cannot* be a correct ABA-detecting register.
//
// The flaw is concrete: the writer bumps the tag modulo 2^k on every write,
// so after exactly 2^k writes the stored word repeats and a reader that was
// poised across the wraparound misses all of them.  The repository's
// lower-bound experiments (E1, E6, E8) extract this miss as an executable
// witness; the model checker finds it from the state space without knowing
// about tags at all.
//
// DWrite is two shared steps (read tag, write new pair); DRead is one.
type BoundedTag struct {
	n     int
	codec shmem.TagCodec
	x     shmem.Register
	init  Word
}

var _ Detector = (*BoundedTag)(nil)

// NewBoundedTag builds the k-bit-tag scheme for n processes, tagBits = k.
func NewBoundedTag(f shmem.Factory, n int, valueBits, tagBits uint, initial Word) (*BoundedTag, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: BoundedTag needs n >= 1, got %d", n)
	}
	codec, err := shmem.NewTagCodec(valueBits, tagBits)
	if err != nil {
		return nil, fmt.Errorf("core: BoundedTag: %w", err)
	}
	if initial > codec.MaxValue() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit domain", initial, valueBits)
	}
	b := &BoundedTag{n: n, codec: codec, init: codec.Encode(initial, 0)}
	b.x = f.NewRegister("X", b.init)
	return b, nil
}

// NumProcs returns n.
func (b *BoundedTag) NumProcs() int { return b.n }

// TagVals returns the size of the tag domain, 2^k.  A single writer that
// performs exactly TagVals writes of one value brings the register word back
// to its starting point — the wraparound ABA.
func (b *BoundedTag) TagVals() Word { return b.codec.TagVals() }

// Handle returns process pid's handle.
func (b *BoundedTag) Handle(pid int) (Handle, error) {
	if pid < 0 || pid >= b.n {
		return nil, fmt.Errorf("core: pid %d out of range [0,%d)", pid, b.n)
	}
	return &boundedTagHandle{b: b, pid: pid, last: b.init}, nil
}

type boundedTagHandle struct {
	b    *BoundedTag
	pid  int
	last Word
}

var _ Handle = (*boundedTagHandle)(nil)

// DWrite reads the current tag and writes (v, tag+1 mod 2^k).
func (h *boundedTagHandle) DWrite(v Word) {
	b := h.b
	w := b.x.Read(h.pid)
	b.x.Write(h.pid, b.codec.Encode(v, b.codec.Tag(w)+1))
}

// DRead reads X once; "dirty" is word inequality, which wraparound defeats.
func (h *boundedTagHandle) DRead() (Word, bool) {
	w := h.b.x.Read(h.pid)
	dirty := w != h.last
	h.last = w
	return h.b.codec.Value(w), dirty
}
