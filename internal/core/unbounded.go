package core

import "fmt"

import "abadetect/internal/shmem"

// Unbounded is the trivial ABA-detecting register the paper describes in §1:
// a single register whose value is augmented with a tag that never repeats.
// Every operation takes one shared-memory step; detection is exact because
// stored words are globally unique per write.
//
// The catch — and the entire point of the paper — is that the tag domain is
// unbounded.  We model the unbounded register with a 64-bit word whose
// stamp field is wide enough to never wrap in any feasible execution
// (2^(64-valueBits) writes); the shmem.Audited wrapper shows its used domain
// growing without bound, in contrast with the bounded implementations
// (experiment E7).
type Unbounded struct {
	n         int
	valueBits uint
	stampBits uint
	x         shmem.Register
	initWord  Word
}

var _ Detector = (*Unbounded)(nil)

// NewUnbounded builds the unbounded-tag baseline for n processes.
func NewUnbounded(f shmem.Factory, n int, valueBits uint, initial Word) (*Unbounded, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: Unbounded needs n >= 1, got %d", n)
	}
	if valueBits < 1 || valueBits > 32 {
		return nil, fmt.Errorf("core: Unbounded needs 1 <= valueBits <= 32, got %d", valueBits)
	}
	if initial > (Word(1)<<valueBits)-1 {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit domain", initial, valueBits)
	}
	u := &Unbounded{
		n:         n,
		valueBits: valueBits,
		stampBits: 64 - valueBits,
	}
	// Layout [stamp][value], stamp in the high bits: the word's magnitude
	// grows with the stamp, so shmem.Audited sees the domain growing.
	u.initWord = initial // stamp 0
	u.x = f.NewRegister("X", u.initWord)
	return u, nil
}

// NumProcs returns n.
func (u *Unbounded) NumProcs() int { return u.n }

// Handle returns process pid's handle.
func (u *Unbounded) Handle(pid int) (Handle, error) {
	if pid < 0 || pid >= u.n {
		return nil, fmt.Errorf("core: pid %d out of range [0,%d)", pid, u.n)
	}
	return &unboundedHandle{u: u, pid: pid, last: u.initWord}, nil
}

type unboundedHandle struct {
	u      *Unbounded
	pid    int
	writes uint64 // local write counter; stamps are writes*n + pid + 1
	last   Word   // word observed by the previous DRead
}

var _ Handle = (*unboundedHandle)(nil)

// DWrite writes v with a fresh, globally unique stamp: one shared step.
func (h *unboundedHandle) DWrite(v Word) {
	u := h.u
	if v > (Word(1)<<u.valueBits)-1 {
		panic(fmt.Sprintf("core: value %d exceeds %d-bit domain", v, u.valueBits))
	}
	h.writes++
	stamp := h.writes*uint64(u.n) + uint64(h.pid) + 1
	if stamp >= 1<<u.stampBits {
		panic("core: Unbounded stamp domain exhausted (modeling limit reached)")
	}
	u.x.Write(h.pid, stamp<<u.valueBits|v)
}

// DRead reads X once and compares against the previously observed word;
// stamps never repeat, so inequality is exactly "some DWrite happened".
func (h *unboundedHandle) DRead() (Word, bool) {
	w := h.u.x.Read(h.pid)
	dirty := w != h.last
	h.last = w
	return w & ((Word(1) << h.u.valueBits) - 1), dirty
}
