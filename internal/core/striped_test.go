package core

import (
	"testing"
)

func newStriped(t *testing.T, n, shards int) *StripedHandles {
	t.Helper()
	s, err := NewStripedHandles(newShardedFig4(t, n, shards))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStripedHandlesValidation(t *testing.T) {
	if _, err := NewStripedHandles(nil); err == nil {
		t.Error("want error for a nil array")
	}
	s := newStriped(t, 2, 4)
	if _, err := s.Worker(2); err == nil {
		t.Error("want error for an out-of-range pid")
	}
}

// TestStripedHomeIndependence is the seam's contract: home-shard traffic
// from one worker must never dirty another worker's home reads when their
// homes differ.
func TestStripedHomeIndependence(t *testing.T) {
	const n = 4
	s := newStriped(t, n, n)
	ws := make([]*StripedWorker, n)
	for pid := range ws {
		var err error
		if ws[pid], err = s.Worker(pid); err != nil {
			t.Fatal(err)
		}
	}
	homes := map[int]bool{}
	for _, w := range ws {
		homes[w.Home()] = true
	}
	distinct := len(homes) > 1 // identical homes only when Stripes() == 1

	// Arm every worker's home detection, then write each home.
	for _, w := range ws {
		w.DRead()
	}
	for pid, w := range ws {
		w.DWrite(Word(10 + pid))
	}
	for pid, w := range ws {
		v, dirty := w.DRead()
		if v != Word(10+pid) {
			t.Errorf("worker %d home read = %d, want %d", pid, v, 10+pid)
		}
		if !dirty {
			t.Errorf("worker %d must see its own home write as dirty", pid)
		}
	}
	// Quiescent re-reads are clean: nobody else touched a distinct home.
	if distinct {
		for pid, w := range ws {
			if _, dirty := w.DRead(); dirty {
				t.Errorf("worker %d home dirtied by a foreign write", pid)
			}
		}
	}
}

// TestStripedSumAggregates checks the striped-counter read path: the sum
// over shards sees every home write once.
func TestStripedSumAggregates(t *testing.T) {
	const n = 4
	s := newStriped(t, n, n)
	var want Word
	w0, err := s.Worker(0)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < n; pid++ {
		w, err := s.Worker(pid)
		if err != nil {
			t.Fatal(err)
		}
		w.DWriteShard(pid, Word(pid+1)) // one distinct shard each
		want += Word(pid + 1)
	}
	total, _ := s.Sum(w0)
	if total != want {
		t.Fatalf("Sum = %d, want %d", total, want)
	}
}

// TestStripedExplicitShardWraps checks the indexed access wrapping.
func TestStripedExplicitShardWraps(t *testing.T) {
	s := newStriped(t, 2, 4)
	w, err := s.Worker(0)
	if err != nil {
		t.Fatal(err)
	}
	w.DWriteShard(5, 42) // 5 mod 4 = shard 1
	if v, _ := w.DReadShard(1); v != 42 {
		t.Fatalf("shard 1 = %d, want 42 via wrapped index 5", v)
	}
	if v, _ := w.DReadShard(-3); v != 42 { // -3 mod 4 = shard 1
		t.Fatalf("wrapped negative index read %d, want 42", v)
	}
}
