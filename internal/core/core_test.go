package core

import (
	"fmt"
	"testing"

	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
)

// detectorCase builds each Detector implementation for table-driven tests.
type detectorCase struct {
	name  string
	exact bool // detection is exact (correct implementation)
	build func(t *testing.T, n int) Detector
}

func allDetectors() []detectorCase {
	return []detectorCase{
		{
			name:  "RegisterBased(Fig4)",
			exact: true,
			build: func(t *testing.T, n int) Detector {
				r, err := NewRegisterBased(shmem.NewNativeFactory(), n, 8, 0)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
		{
			name:  "LLSCBased(Fig5/Fig3)",
			exact: true,
			build: func(t *testing.T, n int) Detector {
				obj, err := llsc.NewCASBased(shmem.NewNativeFactory(), n, 8, 0)
				if err != nil {
					t.Fatal(err)
				}
				r, err := NewLLSCBased(obj)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
		{
			name:  "LLSCBased(Fig5/ConstantTime)",
			exact: true,
			build: func(t *testing.T, n int) Detector {
				obj, err := llsc.NewConstantTime(shmem.NewNativeFactory(), n, 8, 0)
				if err != nil {
					t.Fatal(err)
				}
				r, err := NewLLSCBased(obj)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
		{
			name:  "LLSCBased(Fig5/Moir)",
			exact: true,
			build: func(t *testing.T, n int) Detector {
				obj, err := llsc.NewMoir(shmem.NewNativeFactory(), n, 8, 0)
				if err != nil {
					t.Fatal(err)
				}
				r, err := NewLLSCBased(obj)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
		{
			name:  "Unbounded",
			exact: true,
			build: func(t *testing.T, n int) Detector {
				r, err := NewUnbounded(shmem.NewNativeFactory(), n, 8, 0)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
		{
			name:  "BoundedTag(k=16)",
			exact: false, // correct only until the tag wraps
			build: func(t *testing.T, n int) Detector {
				r, err := NewBoundedTag(shmem.NewNativeFactory(), n, 8, 16, 0)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
	}
}

func handleOf(t *testing.T, d Detector, pid int) Handle {
	t.Helper()
	h, err := d.Handle(pid)
	if err != nil {
		t.Fatalf("Handle(%d): %v", pid, err)
	}
	return h
}

func TestFirstReadBeforeAnyWriteIsClean(t *testing.T) {
	for _, tc := range allDetectors() {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 2)
			r := handleOf(t, d, 1)
			v, dirty := r.DRead()
			if v != 0 || dirty {
				t.Errorf("DRead = (%d, %v), want (0, false)", v, dirty)
			}
		})
	}
}

func TestSelfWriteIsDetected(t *testing.T) {
	for _, tc := range allDetectors() {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 2)
			h := handleOf(t, d, 0)
			h.DWrite(42)
			v, dirty := h.DRead()
			if v != 42 || !dirty {
				t.Errorf("DRead = (%d, %v), want (42, true)", v, dirty)
			}
			v, dirty = h.DRead()
			if v != 42 || dirty {
				t.Errorf("second DRead = (%d, %v), want (42, false)", v, dirty)
			}
		})
	}
}

func TestCrossProcessDetection(t *testing.T) {
	for _, tc := range allDetectors() {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 3)
			w := handleOf(t, d, 0)
			r := handleOf(t, d, 1)

			w.DWrite(7)
			if v, dirty := r.DRead(); v != 7 || !dirty {
				t.Fatalf("after write: DRead = (%d, %v), want (7, true)", v, dirty)
			}
			if v, dirty := r.DRead(); v != 7 || dirty {
				t.Fatalf("quiet repeat: DRead = (%d, %v), want (7, false)", v, dirty)
			}
			w.DWrite(8)
			w.DWrite(9)
			if v, dirty := r.DRead(); v != 9 || !dirty {
				t.Fatalf("after two writes: DRead = (%d, %v), want (9, true)", v, dirty)
			}
		})
	}
}

func TestABAWriteBackSameValueIsDetected(t *testing.T) {
	// The defining scenario: the value returns to what the reader saw, yet
	// the reader must still learn that writes happened.
	for _, tc := range allDetectors() {
		if !tc.exact {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 2)
			w := handleOf(t, d, 0)
			r := handleOf(t, d, 1)

			w.DWrite(5)
			if v, dirty := r.DRead(); v != 5 || !dirty {
				t.Fatalf("setup read = (%d, %v)", v, dirty)
			}
			w.DWrite(6) // A -> B
			w.DWrite(5) // B -> A
			v, dirty := r.DRead()
			if v != 5 {
				t.Fatalf("value = %d, want 5", v)
			}
			if !dirty {
				t.Error("ABA missed: dirty = false after write-back")
			}
		})
	}
}

func TestManyWritesAlwaysDetected(t *testing.T) {
	// Exact detectors must detect across any number of writes, in
	// particular far beyond their bounded seq domains (the point of GetSeq).
	for _, tc := range allDetectors() {
		if !tc.exact {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			n := 3
			d := tc.build(t, n)
			w := handleOf(t, d, 0)
			r := handleOf(t, d, 1)
			for round := 0; round < 500; round++ {
				w.DWrite(Word(round % 7))
				if _, dirty := r.DRead(); !dirty {
					t.Fatalf("round %d: write missed", round)
				}
				if _, dirty := r.DRead(); dirty {
					t.Fatalf("round %d: spurious dirty on quiet read", round)
				}
			}
		})
	}
}

func TestTwoWritersOneReader(t *testing.T) {
	for _, tc := range allDetectors() {
		if !tc.exact {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 3)
			w0 := handleOf(t, d, 0)
			w2 := handleOf(t, d, 2)
			r := handleOf(t, d, 1)
			for round := 0; round < 200; round++ {
				w0.DWrite(1)
				w2.DWrite(2)
				if v, dirty := r.DRead(); v != 2 || !dirty {
					t.Fatalf("round %d: DRead = (%d, %v), want (2, true)", round, v, dirty)
				}
				w2.DWrite(1)
				w0.DWrite(2)
				if v, dirty := r.DRead(); v != 2 || !dirty {
					t.Fatalf("round %d: DRead = (%d, %v), want (2, true)", round, v, dirty)
				}
			}
		})
	}
}

func TestReaderIsAlsoWriter(t *testing.T) {
	// Multi-writer: the same process may both write and read.
	for _, tc := range allDetectors() {
		if !tc.exact {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 2)
			a := handleOf(t, d, 0)
			b := handleOf(t, d, 1)
			for round := 0; round < 100; round++ {
				a.DWrite(Word(round % 5))
				if _, dirty := b.DRead(); !dirty {
					t.Fatalf("round %d: b missed a's write", round)
				}
				b.DWrite(Word(round % 3))
				if _, dirty := a.DRead(); !dirty {
					t.Fatalf("round %d: a missed b's write", round)
				}
				if _, dirty := a.DRead(); dirty {
					t.Fatalf("round %d: spurious dirty for a", round)
				}
				if _, dirty := b.DRead(); !dirty {
					t.Fatalf("round %d: b missed b's own write", round)
				}
			}
		})
	}
}

func TestBoundedTagWraparoundMiss(t *testing.T) {
	// The flaw the paper's lower bound says is unavoidable at this space:
	// after exactly 2^k writes the word repeats and the reader misses.
	const k = 4
	d, err := NewBoundedTag(shmem.NewNativeFactory(), 2, 8, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := handleOf(t, d, 0)
	r := handleOf(t, d, 1)

	w.DWrite(9)
	if _, dirty := r.DRead(); !dirty {
		t.Fatal("setup read should be dirty")
	}
	for i := 0; i < 1<<k; i++ {
		w.DWrite(9)
	}
	v, dirty := r.DRead()
	if v != 9 {
		t.Fatalf("value = %d, want 9", v)
	}
	if dirty {
		t.Fatalf("expected the wraparound ABA to be MISSED at 2^%d writes", k)
	}
	// One more write makes the word differ again.
	w.DWrite(9)
	if _, dirty := r.DRead(); !dirty {
		t.Error("off-cycle write should be detected")
	}
}

func TestRegisterBasedSurvivesWraparoundScenario(t *testing.T) {
	// The same adversarial pattern that breaks BoundedTag must not break
	// Figure 4, for any number of writes up to several seq-domain cycles.
	n := 2
	d, err := NewRegisterBased(shmem.NewNativeFactory(), n, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := handleOf(t, d, 0)
	r := handleOf(t, d, 1)
	w.DWrite(9)
	r.DRead()
	for cycle := 1; cycle <= 6*(2*n+2); cycle++ {
		w.DWrite(9)
		if _, dirty := r.DRead(); !dirty {
			t.Fatalf("write %d missed", cycle)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	f := shmem.NewNativeFactory()
	if _, err := NewRegisterBased(f, 0, 8, 0); err == nil {
		t.Error("RegisterBased: want error for n=0")
	}
	if _, err := NewRegisterBased(f, 2, 8, 256); err == nil {
		t.Error("RegisterBased: want error for out-of-domain initial")
	}
	if _, err := NewUnbounded(f, 0, 8, 0); err == nil {
		t.Error("Unbounded: want error for n=0")
	}
	if _, err := NewUnbounded(f, 2, 33, 0); err == nil {
		t.Error("Unbounded: want error for valueBits>32")
	}
	if _, err := NewUnbounded(f, 2, 8, 300); err == nil {
		t.Error("Unbounded: want error for out-of-domain initial")
	}
	if _, err := NewBoundedTag(f, 0, 8, 4, 0); err == nil {
		t.Error("BoundedTag: want error for n=0")
	}
	if _, err := NewBoundedTag(f, 2, 8, 4, 999); err == nil {
		t.Error("BoundedTag: want error for out-of-domain initial")
	}
	if _, err := NewLLSCBased(nil); err == nil {
		t.Error("LLSCBased: want error for nil object")
	}
}

func TestHandleValidation(t *testing.T) {
	for _, tc := range allDetectors() {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t, 2)
			if _, err := d.Handle(-1); err == nil {
				t.Error("want error for pid -1")
			}
			if _, err := d.Handle(2); err == nil {
				t.Error("want error for pid == n")
			}
			if d.NumProcs() != 2 {
				t.Errorf("NumProcs = %d, want 2", d.NumProcs())
			}
		})
	}
}

func TestNonZeroInitialValue(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(f shmem.Factory) (Detector, error)
	}{
		{"RegisterBased", func(f shmem.Factory) (Detector, error) { return NewRegisterBased(f, 2, 8, 77) }},
		{"Unbounded", func(f shmem.Factory) (Detector, error) { return NewUnbounded(f, 2, 8, 77) }},
		{"BoundedTag", func(f shmem.Factory) (Detector, error) { return NewBoundedTag(f, 2, 8, 8, 77) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.build(shmem.NewNativeFactory())
			if err != nil {
				t.Fatal(err)
			}
			r := handleOf(t, d, 1)
			if v, dirty := r.DRead(); v != 77 || dirty {
				t.Errorf("DRead = (%d, %v), want (77, false)", v, dirty)
			}
		})
	}
}

func TestRegisterBasedFootprint(t *testing.T) {
	// Theorem 3: n+1 registers of b + 2 log n + O(1) bits.
	for _, n := range []int{2, 4, 16, 48} {
		f := shmem.NewNativeFactory()
		r, err := NewRegisterBased(f, n, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		fp := f.Footprint()
		if fp.Registers != n+1 || fp.CASObjects != 0 {
			t.Errorf("n=%d: footprint %v, want %d registers", n, fp, n+1)
		}
		if r.Codec().Bits() > 8+2*int(shmem.BitsFor(n))+4 {
			t.Errorf("n=%d: register width %d exceeds b+2logn+O(1)", n, r.Codec().Bits())
		}
	}
}

func TestStepComplexityConstant(t *testing.T) {
	// Theorem 3's O(1): DWrite takes exactly 2 shared steps and DRead
	// exactly 4, independent of n and of history length.
	for _, n := range []int{2, 8, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			cf := shmem.NewCounting(shmem.NewNativeFactory(), n)
			d, err := NewRegisterBased(cf, n, 8, 0)
			if err != nil {
				t.Fatal(err)
			}
			w := handleOf(t, d, 0)
			r := handleOf(t, d, 1)
			for i := 0; i < 100; i++ {
				before := cf.Steps(0)
				w.DWrite(Word(i % 9))
				if got := cf.Steps(0) - before; got != 2 {
					t.Fatalf("DWrite took %d steps, want 2", got)
				}
				before = cf.Steps(1)
				r.DRead()
				if got := cf.Steps(1) - before; got != 4 {
					t.Fatalf("DRead took %d steps, want 4", got)
				}
			}
		})
	}
}

func TestLLSCBasedStepComplexity(t *testing.T) {
	// Theorem 4: two shared steps per operation over the LL/SC/VL object
	// ... when the object's own operations are single steps.  Over Moir
	// (O(1) LL/SC from unbounded CAS), DWrite = LL+SC = 2 steps and a clean
	// DRead = VL = 1 step; a dirty DRead = VL+LL = 2 steps.
	cf := shmem.NewCounting(shmem.NewNativeFactory(), 2)
	obj, err := llsc.NewMoir(cf, 2, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewLLSCBased(obj)
	if err != nil {
		t.Fatal(err)
	}
	w := handleOf(t, d, 0)
	r := handleOf(t, d, 1)

	before := cf.Steps(0)
	w.DWrite(3)
	if got := cf.Steps(0) - before; got != 2 {
		t.Errorf("DWrite took %d steps, want 2", got)
	}
	before = cf.Steps(1)
	r.DRead() // dirty: VL + LL
	if got := cf.Steps(1) - before; got != 2 {
		t.Errorf("dirty DRead took %d steps, want 2", got)
	}
	before = cf.Steps(1)
	r.DRead() // clean: VL only
	if got := cf.Steps(1) - before; got != 1 {
		t.Errorf("clean DRead took %d steps, want 1", got)
	}
}

func TestUnboundedDomainGrows(t *testing.T) {
	// E7 separation, the unbounded half: the used domain keeps growing.
	audit := shmem.NewAudited(shmem.NewNativeFactory())
	d, err := NewUnbounded(audit, 2, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := handleOf(t, d, 0)
	w.DWrite(1)
	bitsAfter1 := audit.MaxBitsUsed()
	for i := 0; i < 1<<12; i++ {
		w.DWrite(1)
	}
	bitsAfter4k := audit.MaxBitsUsed()
	if bitsAfter4k <= bitsAfter1 {
		t.Errorf("unbounded domain did not grow: %d -> %d bits", bitsAfter1, bitsAfter4k)
	}
}

func TestRegisterBasedDomainBounded(t *testing.T) {
	// E7 separation, the bounded half: Figure 4 stays inside its declared
	// domain forever, no matter how many operations run.
	n := 3
	audit := shmem.NewAudited(shmem.NewNativeFactory())
	d, err := NewRegisterBased(audit, n, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	declared := d.Codec().Bits()
	w := handleOf(t, d, 0)
	r := handleOf(t, d, 1)
	for i := 0; i < 20000; i++ {
		w.DWrite(Word(i % 200))
		if i%3 == 0 {
			r.DRead()
		}
	}
	if got := audit.MaxBitsUsed(); got > declared {
		t.Errorf("used %d bits, declared bound %d", got, declared)
	}
}
