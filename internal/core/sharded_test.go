package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"abadetect/internal/shmem"
)

func newShardedFig4(t *testing.T, n, shards int) *ShardedArray {
	t.Helper()
	f := shmem.NewNativeFactory()
	a, err := NewShardedArray(n, shards, func(int) (Detector, error) {
		return NewRegisterBased(f, n, 16, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestShardedValidation(t *testing.T) {
	build := func(int) (Detector, error) {
		return NewRegisterBased(shmem.NewNativeFactory(), 2, 8, 0)
	}
	if _, err := NewShardedArray(0, 4, build); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewShardedArray(2, 0, build); err == nil {
		t.Error("want error for shards=0")
	}
	if _, err := NewShardedArray(2, 4, nil); err == nil {
		t.Error("want error for nil builder")
	}
	// Builder that returns a detector for the wrong n must be rejected.
	if _, err := NewShardedArray(3, 1, build); err == nil {
		t.Error("want error for shard with mismatched n")
	}
	a := newShardedFig4(t, 2, 4)
	if _, err := a.Handle(2); err == nil {
		t.Error("want error for pid out of range")
	}
	if _, err := a.Shard(4); err == nil {
		t.Error("want error for shard index out of range")
	}
	if a.NumProcs() != 2 || a.Shards() != 4 {
		t.Errorf("NumProcs=%d Shards=%d", a.NumProcs(), a.Shards())
	}
}

func TestShardedIndependence(t *testing.T) {
	// A write on one shard must dirty exactly that shard's readers.
	a := newShardedFig4(t, 2, 3)
	w, err := a.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.DRead(i) // settle initial dirtiness per shard
	}
	w.DWrite(1, 42)
	for i := 0; i < 3; i++ {
		v, dirty := r.DRead(i)
		if i == 1 {
			if v != 42 || !dirty {
				t.Errorf("shard 1: DRead = (%d,%v), want (42,true)", v, dirty)
			}
		} else if dirty {
			t.Errorf("shard %d dirtied by a write to shard 1", i)
		}
	}
	// ABA on one shard is still caught shard-locally.
	w.DWrite(1, 7)
	w.DWrite(1, 42)
	if v, dirty := r.DRead(1); v != 42 || !dirty {
		t.Errorf("shard 1 ABA missed: DRead = (%d,%v)", v, dirty)
	}
	if _, dirty := r.DRead(0); dirty {
		t.Error("shard 0 dirtied by shard 1 traffic")
	}
}

func TestShardedConcurrent(t *testing.T) {
	// Race-enabled stress: every process hammers every shard; each reader
	// must see each writer burst reflected per shard, and the run must be
	// data-race clean under -race.
	const n = 4
	const shards = 8
	const writesPerShard = 200
	a := newShardedFig4(t, n, shards)

	handles := make([]*ShardedHandle, n)
	for pid := range handles {
		h, err := a.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		handles[pid] = h
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		h := handles[pid]
		wg.Add(1)
		go func(pid int, h *ShardedHandle) {
			defer wg.Done()
			for i := 0; i < writesPerShard; i++ {
				for s := 0; s < shards; s++ {
					if pid%2 == 0 {
						h.DWrite(s, Word(pid*1000+i)) // fits the 16-bit value domain
					} else {
						h.DRead(s)
					}
				}
			}
		}(pid, h)
	}
	wg.Wait()

	// Quiescent check: a reader handle observes the final values cleanly.
	r := handles[1]
	for s := 0; s < shards; s++ {
		r.DRead(s)
		if _, dirty := r.DRead(s); dirty {
			t.Errorf("shard %d: spurious dirty at quiescence", s)
		}
	}
}

func TestShardedPerShardBuilder(t *testing.T) {
	// The builder receives the shard index, so shards can differ.
	f := shmem.NewNativeFactory()
	a, err := NewShardedArray(2, 3, func(shard int) (Detector, error) {
		if shard == 1 {
			return NewUnbounded(f, 2, 8, 0)
		}
		return NewRegisterBased(f, 2, 8, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Shard(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*Unbounded); !ok {
		t.Errorf("shard 1 is %T, want *Unbounded", d)
	}
}

func BenchmarkShardedArray(b *testing.B) {
	// Throughput of striped shards vs. a single contended register: every
	// goroutine works a distinct shard in the sharded case and the one
	// shared cell in the contended case.
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// Enough pids for every RunParallel worker.
			n := runtime.GOMAXPROCS(0) * 2
			if n < 8 {
				n = 8
			}
			f := shmem.NewPaddedFactory()
			a, err := NewShardedArray(n, shards, func(int) (Detector, error) {
				return NewRegisterBased(f, n, 16, 0)
			})
			if err != nil {
				b.Fatal(err)
			}
			var pids atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				pid := int(pids.Add(1)-1) % n // n >= workers: no pid is shared
				h, err := a.Handle(pid)
				if err != nil {
					b.Error(err)
					return
				}
				shard := pid % shards
				i := 0
				for pb.Next() {
					if pid%2 == 0 {
						h.DWrite(shard, Word(i&0xffff))
					} else {
						h.DRead(shard)
					}
					i++
				}
			})
		})
	}
}
