// Package core implements the paper's primary contribution: ABA-detecting
// registers.
//
// An ABA-detecting register (paper, §1) supports two operations.  DWrite(x)
// writes the value x.  DRead() by process q returns the register's value
// together with a Boolean flag that is true if and only if some process
// executed a DWrite() that linearized since q's previous DRead() linearized.
// Reading the same value twice therefore no longer hides intervening writes:
// the ABA is detected.
//
// The package provides four implementations:
//
//   - RegisterBased (Figure 4, Theorem 3): a linearizable wait-free
//     multi-writer b-bit register from n+1 bounded registers of
//     b + 2·log n + O(1) bits, with O(1) step complexity.  This is
//     asymptotically optimal: Theorem 1(a) shows n-1 bounded registers are
//     necessary.
//   - LLSCBased (Figure 5, Theorem 4): a register from a single LL/SC/VL
//     object, two shared-memory steps per operation.  Composed over the
//     single-CAS LL/SC of package llsc it yields Theorem 2's multi-writer
//     ABA-detecting register from one bounded CAS object with O(n) steps.
//   - Unbounded (§1): the trivial baseline from a single *unbounded*
//     register carrying a never-repeating stamp; O(1) steps, but the used
//     domain grows without bound (see shmem.Audited and experiment E7).
//   - BoundedTag (§1, IBM tagging): the folklore k-bit tag scheme.  It is
//     *deliberately flawed*: after exactly 2^k writes the tag wraps around
//     and a reader misses the ABA.  The lower-bound experiments (E1, E6)
//     extract that miss as a concrete execution.
//
// Every implementation hands out per-process handles; a handle owns the
// paper's process-local variables (b, usedQ, na, c, old, ...) and must be
// used by at most one goroutine at a time.  Distinct handles of the same
// register are safe to use concurrently.
package core

import "abadetect/internal/shmem"

// Word is the value type of all registers in this package.
type Word = shmem.Word

// Handle is the per-process access point to an ABA-detecting register.
// A Handle is not safe for concurrent use; each process (goroutine) must
// obtain its own via Detector.Handle.
type Handle interface {
	// DWrite writes v to the register.
	DWrite(v Word)
	// DRead returns the register's current value and whether some process
	// performed a DWrite since this handle's previous DRead.
	DRead() (v Word, dirty bool)
}

// Detector is an ABA-detecting register shared by n processes.
type Detector interface {
	// Handle returns the access handle for process pid in [0, n).
	Handle(pid int) (Handle, error)
	// NumProcs returns the number of processes the register was built for.
	NumProcs() int
}
