package core

import (
	"fmt"
	"sync/atomic"

	"abadetect/internal/getseq"
	"abadetect/internal/shmem"
)

// RegisterBased is the paper's Figure 4: a linearizable wait-free
// multi-writer ABA-detecting register built from n+1 bounded registers with
// constant step complexity (Theorem 3).
//
// The shared state is a register X holding a (value, pid, seq) triple and an
// announce array A[0..n-1] of (pid, seq) pairs, where only process q writes
// A[q].  A DWrite draws a sequence number from the GetSeq recycler (package
// getseq) and writes the triple to X: two shared steps.  A DRead reads X,
// saves and replaces its own announcement, and re-reads X: four shared
// steps.  The announcement discipline guarantees that a (pid, seq) pair
// observed and announced by a reader is not reused by its writer until the
// announcement changes, so comparing X against the previous announcement
// detects every intervening write (paper, Appendix C).
//
// On the direct substrates (native, slab, padded) the construction binds raw
// *atomic.Uint64 accessors to X and A at build time, so each of those shared
// steps compiles to one inlined atomic instruction; on instrumented or
// simulated substrates every step stays a dynamic call the wrapper can
// count, audit, or schedule.
type RegisterBased struct {
	n       int
	codec   shmem.TripleCodec
	initial Word
	x       shmem.Register
	a       []shmem.Register

	xd *atomic.Uint64   // devirtualized X, nil on indirect substrates
	ad []*atomic.Uint64 // devirtualized A, nil on indirect substrates
}

var _ Detector = (*RegisterBased)(nil)

// NewRegisterBased builds the Figure 4 register for n processes over base
// objects from f.  Values are valueBits wide; initial is the value returned
// by reads that precede the first write.
func NewRegisterBased(f shmem.Factory, n int, valueBits uint, initial Word) (*RegisterBased, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: RegisterBased needs n >= 1, got %d", n)
	}
	codec, err := shmem.NewTripleCodec(n, valueBits, 2*n+2)
	if err != nil {
		return nil, fmt.Errorf("core: RegisterBased: %w", err)
	}
	if initial > codec.MaxValue() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit domain", initial, valueBits)
	}
	r := &RegisterBased{
		n:       n,
		codec:   codec,
		initial: initial,
		x:       f.NewRegister("X", codec.Bottom()),
		a:       make([]shmem.Register, n),
	}
	for q := range r.a {
		r.a[q] = f.NewRegister(fmt.Sprintf("A[%d]", q), codec.Bottom())
	}
	if ad := shmem.DirectRegisters(r.a); ad != nil {
		if xd := shmem.Direct(r.x); xd != nil {
			r.xd, r.ad = xd, ad
		}
	}
	return r, nil
}

// NumProcs returns n.
func (r *RegisterBased) NumProcs() int { return r.n }

// Codec exposes the triple codec, for white-box tests and experiments.
func (r *RegisterBased) Codec() shmem.TripleCodec { return r.codec }

// Handle returns process pid's handle.
func (r *RegisterBased) Handle(pid int) (Handle, error) {
	if pid < 0 || pid >= r.n {
		return nil, fmt.Errorf("core: pid %d out of range [0,%d)", pid, r.n)
	}
	picker, err := getseq.New(pid, r.n, r.codec, r.a)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	h := &registerBasedHandle{
		r:      r,
		pid:    pid,
		picker: picker,
		layout: r.codec.Bind(pid),
	}
	if r.xd != nil {
		h.xd = r.xd
		h.myA = r.ad[pid]
	}
	return h, nil
}

// registerBasedHandle carries the paper's process-local variables: the flag
// b and the GetSeq state (usedQ, na, c, inside picker).  When the substrate
// devirtualizes, xd and myA are the handle's direct accessors to X and its
// own announce slot, bound once at Handle() time; layout binds the codec's
// constants alongside them so the per-operation encode, pair projection,
// and value extraction are raw word arithmetic with no codec copy.
type registerBasedHandle struct {
	r      *RegisterBased
	pid    int
	b      bool
	picker *getseq.Picker
	xd     *atomic.Uint64
	myA    *atomic.Uint64
	layout shmem.BoundTriple
}

var _ Handle = (*registerBasedHandle)(nil)

// DWrite implements Figure 4 lines 26-27: two shared-memory steps (one read
// inside GetSeq, one write of X).  It panics if v exceeds the value domain
// declared at construction.
func (h *registerBasedHandle) DWrite(v Word) {
	if v > h.layout.MaxValue() {
		h.r.codec.CheckValue(v) // cold: renders the panic
	}
	s := h.picker.Next()       // line 26 (1 shared step)
	w := h.layout.Encode(v, s) // line 27's triple, pid/seq in range by construction
	if h.xd != nil {
		h.xd.Store(w) // line 27, devirtualized
		return
	}
	h.r.x.Write(h.pid, w) // line 27
}

// DRead implements Figure 4 lines 38-50: four shared-memory steps.
func (h *registerBasedHandle) DRead() (Word, bool) {
	r := h.r
	var w1, old, w2 Word
	if h.xd != nil {
		w1 = h.xd.Load()               // line 38: (x, p, s)
		old = h.myA.Load()             // line 39: (r, sr)
		h.myA.Store(h.layout.Pair(w1)) // line 40: announce (p, s)
		w2 = h.xd.Load()               // line 41: (x', p', s')
	} else {
		w1 = r.x.Read(h.pid)                       // line 38
		old = r.a[h.pid].Read(h.pid)               // line 39
		r.a[h.pid].Write(h.pid, h.layout.Pair(w1)) // line 40
		w2 = r.x.Read(h.pid)                       // line 41
	}

	var dirty bool
	if h.layout.Pair(w1) == old { // line 42: (p, s) = (r, sr)?
		dirty = h.b // line 43
	} else {
		dirty = true // line 45
	}
	h.b = w1 != w2 // lines 46-49: (x, p, s) = (x', p', s')?
	// Line 50: the value read at line 38, ⊥ mapping to the initial value.
	return h.layout.Value(w1, r.initial), dirty
}
