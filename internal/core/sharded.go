package core

import "fmt"

// ShardedArray is an array of K independent ABA-detecting registers
// ("shards") behind one object and one per-process handle.
//
// The paper's registers are single cells; a system serving heavy traffic
// needs many of them — per key, per queue head, per session slot.  Building
// K separate registers multiplies constructor boilerplate and, worse, tempts
// callers into sharing one register across unrelated keys, where every
// writer dirties every reader.  A ShardedArray keeps the shards fully
// independent: a DWrite to shard i never affects the dirty flag of a DRead
// on shard j, detection state is tracked per (process, shard) pair, and the
// aggregate footprint is just the sum of the shards' footprints (K·m(n)
// base objects — the paper's per-register bounds apply shard-wise).
//
// Shards are built by a caller-supplied constructor, so any registered
// implementation (and any factory: native, padded, counting, audit,
// simulator) can back the array.  Allocating shards through a padded
// factory stripes them across cache lines, which is what makes per-shard
// independence real on hardware and not just in the model.
type ShardedArray struct {
	n      int
	shards []Detector
}

// NewShardedArray builds an array of shards independent detecting registers
// for n processes, constructing each with build (called with the shard
// index, so the builder can name or place shards individually).
func NewShardedArray(n, shards int, build func(shard int) (Detector, error)) (*ShardedArray, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: ShardedArray needs n >= 1, got %d", n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: ShardedArray needs shards >= 1, got %d", shards)
	}
	if build == nil {
		return nil, fmt.Errorf("core: ShardedArray needs a shard builder")
	}
	a := &ShardedArray{n: n, shards: make([]Detector, shards)}
	for i := range a.shards {
		d, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("core: ShardedArray shard %d: %w", i, err)
		}
		if d.NumProcs() != n {
			return nil, fmt.Errorf("core: ShardedArray shard %d built for %d processes, want %d", i, d.NumProcs(), n)
		}
		a.shards[i] = d
	}
	return a, nil
}

// NumProcs returns n.
func (a *ShardedArray) NumProcs() int { return a.n }

// Shards returns the number of shards K.
func (a *ShardedArray) Shards() int { return len(a.shards) }

// Shard returns shard i, for per-shard experiments and audits.
func (a *ShardedArray) Shard(i int) (Detector, error) {
	if i < 0 || i >= len(a.shards) {
		return nil, fmt.Errorf("core: shard %d out of range [0,%d)", i, len(a.shards))
	}
	return a.shards[i], nil
}

// Handle returns process pid's handle over every shard.  Per-shard handles
// are created eagerly: a handle owns the paper's process-local detection
// state for each shard, so Handle is O(K) and the operations are O(1) in K.
//
// When every shard is a Figure 4 register (the default shard type), the
// handle additionally binds the concrete per-shard handles, so per-shard
// operations skip the Handle interface dispatch and call the devirtualized
// register methods directly.
func (a *ShardedArray) Handle(pid int) (*ShardedHandle, error) {
	if pid < 0 || pid >= a.n {
		return nil, fmt.Errorf("core: pid %d out of range [0,%d)", pid, a.n)
	}
	h := &ShardedHandle{hs: make([]Handle, len(a.shards))}
	for i, d := range a.shards {
		sh, err := d.Handle(pid)
		if err != nil {
			return nil, fmt.Errorf("core: ShardedArray shard %d: %w", i, err)
		}
		h.hs[i] = sh
	}
	// All shards or nothing: a partially concrete fast path would change
	// dispatch semantics mid-array.
	fig4 := make([]*registerBasedHandle, len(h.hs))
	for i, sh := range h.hs {
		rb, ok := sh.(*registerBasedHandle)
		if !ok {
			return h, nil
		}
		fig4[i] = rb
	}
	h.fig4 = fig4
	return h, nil
}

// ShardedHandle is a per-process endpoint to every shard.  Like all handles
// in this repository it must be used by at most one goroutine at a time;
// distinct handles operate on all shards concurrently.
type ShardedHandle struct {
	hs   []Handle
	fig4 []*registerBasedHandle // concrete fast path; nil unless every shard is Figure 4
}

// Shards returns the number of shards K.
func (h *ShardedHandle) Shards() int { return len(h.hs) }

// DWrite writes v to shard i.
func (h *ShardedHandle) DWrite(i int, v Word) {
	if h.fig4 != nil {
		h.fig4[i].DWrite(v)
		return
	}
	h.hs[i].DWrite(v)
}

// DRead returns shard i's value and whether any process performed a DWrite
// on shard i since this handle's previous DRead of shard i.
func (h *ShardedHandle) DRead(i int) (Word, bool) {
	if h.fig4 != nil {
		return h.fig4[i].DRead()
	}
	return h.hs[i].DRead()
}
