// Package trace is the flight recorder behind the observability layer: a
// per-process ring of typed events — guard loads and commits, reclaimer
// milestones, allocator traffic, structure-level operation begin/commit
// marks — recorded as they happen and merged, on demand, into one
// happens-before-consistent interleaving.  Where the audit counters
// (guard.Metrics, apps.PoolStats) answer "how many", the recorder answers
// the forensic question the paper's §1 scripts pose: *which* load armed the
// victim, *which* release/alloc pair recycled the node inside its window,
// and *which* commit corrupted the structure — the last K events per
// process before the incident, in order.
//
// In the paper's cost vocabulary the recorder is deliberately cheap and
// deliberately off-model: m(n) is n rings × capacity event slots of
// instrumentation memory (fixed at construction, never grown), and t(n) is
// O(1) per event — a slot write, a sequence bump, and one global
// fetch-and-increment that doubles as the happens-before order.  The
// recorder allocates nothing after construction: rings are preallocated,
// event payloads are plain words plus a string header copy, and Merge/
// Snapshot write into caller-visible fresh slices only on the (cold) read
// side.
//
// Writer discipline is single-writer per ring — the same discipline every
// handle in this repository already obeys — and each ring carries a tiny
// mutex so a concurrent Merge (the /trace endpoint, a Watch snapshot)
// reads consistent slots under the race detector.  The lock is per-ring
// and uncontended on the hot path; its cost is part of what the E17
// overhead matrix prices.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"abadetect/internal/shmem"
)

// Kind names an event type — the trace vocabulary of the guard, reclaim,
// pool, and structure seams.
type Kind uint8

// Event kinds.
const (
	// KindNone is the zero Kind; no recorded event carries it.
	KindNone Kind = iota

	// Guard events (one per Load/Commit call on a traced guard).

	// KindGuardLoad is a clean Load: the guard observed no interference
	// since the handle's previous Load.  A is the loaded value.
	KindGuardLoad
	// KindGuardDirtyLoad is a Load that reported interference.  A is the
	// loaded value.
	KindGuardDirtyLoad
	// KindGuardCommit is a successful conditional swing.  A is the value
	// written.
	KindGuardCommit
	// KindGuardReject is a failed commit whose reference had visibly
	// changed.  A is the value the commit tried to write.
	KindGuardReject
	// KindGuardNearMiss is a failed commit whose reference *value* compared
	// equal to the handle's loaded value — an ABA the regime detected and
	// prevented.  A is the value the commit tried to write, B the restored
	// reference value.
	KindGuardNearMiss

	// Reclaimer events.

	// KindProtect is a published protection (hazard slot write / epoch
	// pin).  A is the slot, B the protected index.
	KindProtect
	// KindRetire is a node handed to the reclaimer's limbo.  A is the node.
	KindRetire
	// KindDrain is a reclamation pass requested through the pool seam.  A
	// is the number of nodes freed.
	KindDrain
	// KindScan is a reclaimer-internal sweep (hp hazard scan, epoch
	// announcement sweep).  A is the number of nodes freed, B the number
	// still pending after the sweep.
	KindScan
	// KindEpochAdvance is a successful global-epoch CAS.  A is the epoch
	// advanced to.
	KindEpochAdvance
	// KindTighten is a cadence tightening of the self-tuning epoch scheme.
	// A is the new cadence.
	KindTighten

	// Pool events.

	// KindAlloc is a successful node allocation.  A is the node index.
	KindAlloc
	// KindRelease is a node returned to the allocator (immediate reuse; a
	// reclaimed pool records KindRetire instead).  A is the node index.
	KindRelease
	// KindGrow is a pool capacity extension.  A is the new capacity.
	KindGrow
	// KindExhaust is an allocation that found no free node.
	KindExhaust

	// Structure-level operation marks (the experiment hooks' begin/commit
	// split, so a dump shows where a victim armed and where it resumed).

	// KindOpBegin marks the vulnerable first half of a split operation
	// (PopBegin, DeqBegin, DeleteBegin).  A is kind-specific (the key, the
	// loaded node).
	KindOpBegin
	// KindOpCommit marks the completion of a split operation.  A is 1 when
	// the commit was accepted, 0 when rejected.
	KindOpCommit

	kindCount // sentinel
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGuardLoad:
		return "guard-load"
	case KindGuardDirtyLoad:
		return "guard-dirty-load"
	case KindGuardCommit:
		return "guard-commit"
	case KindGuardReject:
		return "guard-reject"
	case KindGuardNearMiss:
		return "guard-near-miss"
	case KindProtect:
		return "protect"
	case KindRetire:
		return "retire"
	case KindDrain:
		return "drain"
	case KindScan:
		return "scan"
	case KindEpochAdvance:
		return "epoch-advance"
	case KindTighten:
		return "tighten"
	case KindAlloc:
		return "alloc"
	case KindRelease:
		return "release"
	case KindGrow:
		return "grow"
	case KindExhaust:
		return "exhaust"
	case KindOpBegin:
		return "op-begin"
	case KindOpCommit:
		return "op-commit"
	default:
		return "unknown"
	}
}

// Event is one recorded step.  GSeq is drawn from a recorder-global counter
// at record time, so sorting a merged dump by GSeq yields an interleaving
// consistent with happens-before: if event x completed before event y
// began, x drew the smaller ticket.  Seq is the per-process sequence (gaps
// reveal ring eviction), and TS is a coarse wall-clock stamp — sampled
// every tsEvery events per ring, so it orients a human reader without
// putting a clock read on every hot-path record.
type Event struct {
	// GSeq is the global happens-before ticket.
	GSeq uint64
	// Seq is the per-process monotonic sequence (starts at 1).
	Seq uint64
	// TS is the coarse UnixNano timestamp of the event's cohort.
	TS int64
	// Pid is the recording process.
	Pid int32
	// Kind types the event.
	Kind Kind
	// Obj names the object the event is about (a guard name, a pool name,
	// an operation label).
	Obj string
	// A and B are kind-specific arguments (see the Kind constants).
	A, B uint64
}

// String renders one event.
func (e Event) String() string {
	return fmt.Sprintf("#%d p%d/%d %s %s a=%d b=%d", e.GSeq, e.Pid, e.Seq, e.Kind, e.Obj, e.A, e.B)
}

// MarshalJSON renders the kind symbolically so /trace dumps read without
// the constant table.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		GSeq uint64
		Seq  uint64
		TS   int64
		Pid  int32
		Kind string
		Obj  string
		A, B uint64
	}{e.GSeq, e.Seq, e.TS, e.Pid, e.Kind.String(), e.Obj, e.A, e.B})
}

// tsEvery is the timestamp sampling cohort: one clock read per this many
// events per ring.
const tsEvery = 32

// Ring is one process's event buffer: fixed power-of-two capacity,
// single-writer (the owning process), oldest events evicted in order.  The
// struct is cache-line padded so adjacent rings never share a line.
type Ring struct {
	mu     sync.Mutex
	events []Event // len = capacity (power of two)
	seq    uint64  // events recorded so far; next Seq is seq+1
	lastTS int64   // the cohort timestamp
	rec    *Recorder
	pid    int32
	_      [shmem.CacheLineBytes]byte
}

// Record appends one event, evicting the oldest when the ring is full.
// O(1), allocation-free: a slot write, two counter bumps, and a clock read
// once per tsEvery events.  Single-writer: only the owning process calls
// it; the mutex exists for concurrent readers (Merge, Watch snapshots).
func (r *Ring) Record(k Kind, obj string, a, b uint64) {
	if r == nil {
		return
	}
	g := r.rec.gseq.Add(1)
	r.mu.Lock()
	if r.seq%tsEvery == 0 {
		r.lastTS = time.Now().UnixNano()
	}
	r.seq++
	r.events[(r.seq-1)&uint64(len(r.events)-1)] = Event{
		GSeq: g, Seq: r.seq, TS: r.lastTS, Pid: r.pid, Kind: k, Obj: obj, A: a, B: b,
	}
	r.mu.Unlock()
	if r.rec.watching.Load() {
		r.rec.checkWatch(Event{GSeq: g, Seq: r.seq, Pid: r.pid, Kind: k, Obj: obj, A: a, B: b})
	}
}

// snapshot appends the ring's live events, oldest first, to dst.
func (r *Ring) snapshot(dst []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.seq
	capacity := uint64(len(r.events))
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	for s := start; s < n; s++ {
		dst = append(dst, r.events[s&(capacity-1)])
	}
	return dst
}

// Recorder owns one ring per process plus the global happens-before
// counter and the watch hook.
type Recorder struct {
	rings []*Ring
	gseq  atomic.Uint64

	watching atomic.Bool // fast-path gate: a predicate is armed and unfired
	watchMu  sync.Mutex
	pred     func(Event) bool
	incident []Event
	fired    atomic.Bool
	firedOn  Event
}

// New builds a recorder for n processes with the given per-ring capacity,
// rounded up to a power of two (minimum 8).  All memory is allocated here;
// recording never allocates.
func New(n, capacity int) *Recorder {
	if n < 1 {
		n = 1
	}
	c := 8
	for c < capacity {
		c <<= 1
	}
	r := &Recorder{rings: make([]*Ring, n)}
	for pid := range r.rings {
		r.rings[pid] = &Ring{events: make([]Event, c), rec: r, pid: int32(pid)}
	}
	return r
}

// NumProcs returns the ring count.
func (r *Recorder) NumProcs() int { return len(r.rings) }

// Capacity returns the per-ring event capacity.
func (r *Recorder) Capacity() int { return len(r.rings[0].events) }

// Ring returns pid's ring (nil for out-of-range pids, so observer handles
// degrade to no-ops instead of panicking).
func (r *Recorder) Ring(pid int) *Ring {
	if r == nil || pid < 0 || pid >= len(r.rings) {
		return nil
	}
	return r.rings[pid]
}

// Record is the convenience form of Ring(pid).Record.
func (r *Recorder) Record(pid int, k Kind, obj string, a, b uint64) {
	r.Ring(pid).Record(k, obj, a, b)
}

// Watch arms a predicate: the first recorded event it matches freezes a
// merged snapshot of every ring — the last K events per process *before
// and including* the incident — retrievable via Incident.  One shot: after
// the first match the predicate is disarmed and later events no longer
// snapshot.  Re-arming replaces the predicate and clears a prior incident.
func (r *Recorder) Watch(pred func(Event) bool) {
	r.watchMu.Lock()
	r.pred = pred
	r.incident = nil
	r.firedOn = Event{}
	r.fired.Store(false)
	r.watching.Store(pred != nil)
	r.watchMu.Unlock()
}

// checkWatch runs the armed predicate against ev and snapshots on the
// first match.  Called after the event is in its ring (and after the
// ring's lock is released), so the snapshot includes the triggering event.
func (r *Recorder) checkWatch(ev Event) {
	r.watchMu.Lock()
	defer r.watchMu.Unlock()
	if r.pred == nil || r.fired.Load() {
		return
	}
	if !r.pred(ev) {
		return
	}
	r.fired.Store(true)
	r.watching.Store(false)
	r.firedOn = ev
	r.incident = r.merge()
}

// Fired reports whether the watch predicate matched, and on what.
func (r *Recorder) Fired() (Event, bool) {
	r.watchMu.Lock()
	defer r.watchMu.Unlock()
	return r.firedOn, r.fired.Load()
}

// Incident returns the snapshot frozen when the watch predicate fired
// (nil if it never did).  The slice is the frozen copy; callers must not
// mutate it.
func (r *Recorder) Incident() []Event {
	r.watchMu.Lock()
	defer r.watchMu.Unlock()
	return r.incident
}

// Events returns one ring's live events, oldest first.
func (r *Recorder) Events(pid int) []Event {
	ring := r.Ring(pid)
	if ring == nil {
		return nil
	}
	return ring.snapshot(nil)
}

// Merge interleaves every ring's live events into one dump ordered by the
// global ticket — a total order consistent with happens-before: any event
// that completed before another began precedes it.  Concurrent writers are
// safe (each ring is locked for its copy); events recorded *during* the
// merge may or may not appear, exactly like any racing read of a live
// counter.
func (r *Recorder) Merge() []Event {
	if r == nil {
		return nil
	}
	return r.merge()
}

func (r *Recorder) merge() []Event {
	var out []Event
	for _, ring := range r.rings {
		out = ring.snapshot(out)
	}
	// Insertion sort is fine for forensic dumps (rings are short and
	// per-ring runs are pre-sorted), but sort.Slice is clearer and this is
	// the cold path.
	sortEvents(out)
	return out
}

// sortEvents orders by GSeq ascending (stable by construction: tickets are
// unique).
func sortEvents(evs []Event) {
	// Rings are individually ordered, so a simple merge-friendly insertion
	// pass degenerates to O(n·rings); use stdlib sort semantics via a
	// hand-rolled pdq-free loop to keep the package dependency-light.
	quicksortEvents(evs, 0, len(evs)-1)
}

func quicksortEvents(evs []Event, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && evs[j].GSeq < evs[j-1].GSeq; j-- {
					evs[j], evs[j-1] = evs[j-1], evs[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if evs[mid].GSeq < evs[lo].GSeq {
			evs[mid], evs[lo] = evs[lo], evs[mid]
		}
		if evs[hi].GSeq < evs[lo].GSeq {
			evs[hi], evs[lo] = evs[lo], evs[hi]
		}
		if evs[hi].GSeq < evs[mid].GSeq {
			evs[hi], evs[mid] = evs[mid], evs[hi]
		}
		pivot := evs[mid].GSeq
		i, j := lo, hi
		for i <= j {
			for evs[i].GSeq < pivot {
				i++
			}
			for evs[j].GSeq > pivot {
				j--
			}
			if i <= j {
				evs[i], evs[j] = evs[j], evs[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j-lo < hi-i {
			quicksortEvents(evs, lo, j)
			lo = i
		} else {
			quicksortEvents(evs, i, hi)
			hi = j
		}
	}
}

// Format pretty-prints a dump, one event per line.
func Format(evs []Event) string {
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
