package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRingWraparound fills a ring past capacity and asserts the oldest
// events are evicted in order: the survivors are exactly the last
// `capacity` events, oldest first, with contiguous sequence numbers.
func TestRingWraparound(t *testing.T) {
	r := New(1, 8)
	if r.Capacity() != 8 {
		t.Fatalf("capacity: got %d, want 8", r.Capacity())
	}
	const total = 21 // 2×capacity + 5: wraps more than twice
	for i := 0; i < total; i++ {
		r.Record(0, KindGuardLoad, "obj", uint64(i), 0)
	}
	evs := r.Events(0)
	if len(evs) != 8 {
		t.Fatalf("live events: got %d, want 8", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(total - 8 + i + 1) // Seq starts at 1
		wantA := uint64(total - 8 + i)
		if e.Seq != wantSeq || e.A != wantA {
			t.Fatalf("slot %d: got seq=%d a=%d, want seq=%d a=%d", i, e.Seq, e.A, wantSeq, wantA)
		}
		if i > 0 && evs[i].GSeq <= evs[i-1].GSeq {
			t.Fatalf("slot %d: GSeq not increasing (%d after %d)", i, evs[i].GSeq, evs[i-1].GSeq)
		}
	}
}

// TestCapacityRounding pins the power-of-two rounding and the minimum.
func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {100, 128}, {128, 128},
	} {
		if got := New(1, tc.ask).Capacity(); got != tc.want {
			t.Errorf("New(1, %d).Capacity() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestMergeOrder interleaves two writers deterministically and asserts the
// merged dump is ordered by the global ticket — i.e. by real record order.
func TestMergeOrder(t *testing.T) {
	r := New(2, 16)
	r.Record(0, KindGuardLoad, "x", 1, 0)
	r.Record(1, KindAlloc, "pool", 7, 0)
	r.Record(0, KindGuardCommit, "x", 2, 0)
	r.Record(1, KindRelease, "pool", 7, 0)

	evs := r.Merge()
	if len(evs) != 4 {
		t.Fatalf("merged: got %d events, want 4", len(evs))
	}
	wantPids := []int32{0, 1, 0, 1}
	wantKinds := []Kind{KindGuardLoad, KindAlloc, KindGuardCommit, KindRelease}
	for i, e := range evs {
		if e.Pid != wantPids[i] || e.Kind != wantKinds[i] {
			t.Fatalf("merged[%d] = %v, want pid=%d kind=%v", i, e, wantPids[i], wantKinds[i])
		}
		if i > 0 && evs[i].GSeq <= evs[i-1].GSeq {
			t.Fatalf("merged[%d]: GSeq out of order", i)
		}
	}
}

// TestMergeRace is the single-writer-discipline race test: one writer per
// pid hammering its own ring while Merge runs concurrently.  Run under
// -race this proves the per-ring lock covers reader/writer overlap; the
// assertions prove per-ring ordering survives in every merged snapshot.
func TestMergeRace(t *testing.T) {
	const procs, perProc = 4, 400
	r := New(procs, 64)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				r.Record(pid, KindGuardLoad, "g", uint64(i), 0)
			}
		}(pid)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			evs := r.Merge()
			lastSeq := make(map[int32]uint64)
			var lastG uint64
			for _, e := range evs {
				if e.GSeq <= lastG {
					t.Errorf("merge: GSeq not strictly increasing")
					return
				}
				lastG = e.GSeq
				if e.Seq <= lastSeq[e.Pid] {
					t.Errorf("merge: pid %d Seq not increasing", e.Pid)
					return
				}
				lastSeq[e.Pid] = e.Seq
			}
		}
	}()
	wg.Wait()
	<-done

	evs := r.Merge()
	if len(evs) != procs*64 {
		t.Fatalf("final merge: got %d events, want %d (full rings)", len(evs), procs*64)
	}
}

// TestWatch arms a predicate and checks the one-shot snapshot includes the
// triggering event and everything before it.
func TestWatch(t *testing.T) {
	r := New(2, 16)
	r.Watch(func(e Event) bool { return e.Kind == KindGuardNearMiss })

	r.Record(0, KindGuardLoad, "x", 1, 0)
	r.Record(1, KindRelease, "pool", 3, 0)
	if _, fired := r.Fired(); fired {
		t.Fatal("watch fired before the predicate matched")
	}
	r.Record(0, KindGuardNearMiss, "x", 2, 1)
	ev, fired := r.Fired()
	if !fired || ev.Kind != KindGuardNearMiss {
		t.Fatalf("watch: fired=%v on %v, want near-miss", fired, ev)
	}
	// Later events must not contaminate the frozen snapshot.
	r.Record(1, KindAlloc, "pool", 3, 0)
	inc := r.Incident()
	if len(inc) != 3 {
		t.Fatalf("incident: got %d events, want 3", len(inc))
	}
	if inc[len(inc)-1].Kind != KindGuardNearMiss {
		t.Fatalf("incident does not end at the triggering event: %v", inc)
	}

	// Re-arming clears the old incident.
	r.Watch(func(e Event) bool { return e.Kind == KindExhaust })
	if r.Incident() != nil {
		t.Fatal("re-arm did not clear the prior incident")
	}
}

// TestRecordNoAllocs pins the tentpole's allocation-free claim: recording
// into a live ring (including wraparound) costs zero heap allocations.
func TestRecordNoAllocs(t *testing.T) {
	r := New(2, 32)
	ring := r.Ring(1)
	if got := testing.AllocsPerRun(200, func() {
		ring.Record(KindGuardCommit, "head", 42, 7)
	}); got != 0 {
		t.Fatalf("Ring.Record allocates: %v allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		r.Record(0, KindAlloc, "pool", 3, 0)
	}); got != 0 {
		t.Fatalf("Recorder.Record allocates: %v allocs/op, want 0", got)
	}
	// A nil ring (out-of-range pid, tracing off) must be a free no-op.
	var nilRing *Ring
	if got := testing.AllocsPerRun(200, func() {
		nilRing.Record(KindGuardLoad, "x", 0, 0)
	}); got != 0 {
		t.Fatalf("nil Ring.Record allocates: %v allocs/op, want 0", got)
	}
}

// TestFormatAndJSON sanity-checks the human and machine renderings.
func TestFormatAndJSON(t *testing.T) {
	r := New(1, 8)
	r.Record(0, KindEpochAdvance, "epoch", 5, 0)
	evs := r.Merge()

	s := Format(evs)
	if !strings.Contains(s, "epoch-advance") || !strings.Contains(s, "epoch") {
		t.Fatalf("Format output missing fields: %q", s)
	}

	raw, err := json.Marshal(evs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"Kind":"epoch-advance"`) {
		t.Fatalf("JSON kind not symbolic: %s", raw)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded[0]["Obj"] != "epoch" {
		t.Fatalf("roundtrip lost Obj: %v", decoded[0])
	}
}

// TestNilRecorder checks every read-side accessor degrades on nil — the
// tracing-off configuration threads nil recorders everywhere.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Ring(0) != nil {
		t.Fatal("nil recorder returned a ring")
	}
}
