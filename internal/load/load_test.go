package load

import (
	"math"
	"testing"
	"time"

	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/kv"
	"abadetect/internal/shmem"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	// 1000 samples at ~1µs, 10 at ~1ms: the p50 sits in the microsecond
	// bucket, the p999 in the millisecond bucket.
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if h.Count() != 1010 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99, p999 := h.Percentiles()
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", p50)
	}
	if p999 < 512*time.Microsecond || p999 > 2*time.Millisecond {
		t.Errorf("p999 = %v, want ~1ms", p999)
	}
	if p99 > p999 || p50 > p99 {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p99, p999)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Record(time.Microsecond)
	b.Record(time.Millisecond)
	a.Add(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if q := a.Quantile(1.0); q < 512*time.Microsecond {
		t.Errorf("merged max quantile = %v", q)
	}
}

func TestProfilesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if p.ID == "" || p.Summary == "" {
			t.Errorf("profile %+v: incomplete metadata", p)
		}
		if seen[p.ID] {
			t.Errorf("duplicate profile %q", p.ID)
		}
		seen[p.ID] = true
		if p.GetPct+p.PutPct+p.DeletePct != 100 {
			t.Errorf("%s: op mix sums to %d", p.ID, p.GetPct+p.PutPct+p.DeletePct)
		}
		if p.Arrival != Closed && p.RatePerWorker <= 0 {
			t.Errorf("%s: open-loop profile without a rate", p.ID)
		}
		if p.Arrival == Burst && p.BurstSize < 1 {
			t.Errorf("%s: burst profile without a burst size", p.ID)
		}
		if p.Workload() == "" {
			t.Errorf("%s: empty workload label", p.ID)
		}
		if got, ok := LookupProfile(p.ID); !ok || got.ID != p.ID {
			t.Errorf("LookupProfile(%q) = (%q, %v)", p.ID, got.ID, ok)
		}
	}
	if _, ok := LookupProfile("no-such-profile"); ok {
		t.Error("LookupProfile accepted an unknown ID")
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipfTable(64, 1.2)
	r := rng{s: 42}
	counts := make([]int, 64)
	for i := 0; i < 20000; i++ {
		counts[z.sample(r.float())]++
	}
	if counts[0] <= counts[32]*4 {
		t.Errorf("zipf not skewed: rank0=%d rank32=%d", counts[0], counts[32])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20000 {
		t.Errorf("samples lost: %d", total)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := rng{s: 7}, rng{s: 7}
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
}

// buildMapInstance constructs the keyed structure the generator drives.
func buildMapInstance(t *testing.T, n, capacity int) apps.Instance {
	t.Helper()
	f := shmem.NewNativeFactory()
	mk := guard.NewMaker(f, n, guard.LLSC, 0)
	inst, err := kv.NewMapInstance(f, n, capacity, mk, apps.InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunClosedLoopOnMap(t *testing.T) {
	inst := buildMapInstance(t, 4, 128)
	p, ok := LookupProfile("steady")
	if !ok {
		t.Fatal("steady profile missing")
	}
	p.OpsPerWorker = 500
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != p.Workers*p.OpsPerWorker {
		t.Errorf("ops = %d", res.Ops)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
	if res.Latency.Quantile(0.5) <= 0 {
		t.Error("p50 not positive")
	}
	if corrupt, detail := inst.Audit(); corrupt {
		t.Errorf("load run corrupted the structure: %s", detail)
	}
}

func TestRunOpenLoopPacing(t *testing.T) {
	inst := buildMapInstance(t, 2, 64)
	p := Profile{
		ID: "test-open", Summary: "t", Arrival: Poisson, RatePerWorker: 50_000,
		Workers: 2, OpsPerWorker: 200, Keys: 16, ZipfS: 1.1,
		GetPct: 80, PutPct: 10, DeletePct: 10, Seed: 1,
	}
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	// 200 ops at 50k/s means the schedule alone spans ~4ms per worker; an
	// open-loop run cannot finish faster than its arrival schedule.
	if res.Elapsed < 2*time.Millisecond {
		t.Errorf("open loop ran in %v, faster than its arrival schedule", res.Elapsed)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
}

func TestRunBurstLoop(t *testing.T) {
	inst := buildMapInstance(t, 2, 64)
	p := Profile{
		ID: "test-burst", Summary: "t", Arrival: Burst, RatePerWorker: 100_000, BurstSize: 32,
		Workers: 2, OpsPerWorker: 128, Keys: 16, ZipfS: 0,
		GetPct: 90, PutPct: 5, DeletePct: 5, Seed: 2,
	}
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
}

// TestRunFallbackWorker drives a structure without the Keyed seam: the
// stack runs its fixed Instance workload under the generator's arrivals.
func TestRunFallbackWorker(t *testing.T) {
	f := shmem.NewNativeFactory()
	mk := guard.NewMaker(f, 2, guard.LLSC, 0)
	inst, err := apps.NewStackInstance(f, 2, 32, mk, apps.InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := LookupProfile("steady")
	p.Workers, p.OpsPerWorker = 2, 400
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
	if corrupt, detail := inst.Audit(); corrupt {
		t.Errorf("fallback run corrupted the stack: %s", detail)
	}
}

// TestReadMostlyRunOnMap routes the read-heavy profile through the map's
// wait-free read workload: the run completes, records every op, and leaves
// the structure clean.
func TestReadMostlyRunOnMap(t *testing.T) {
	inst := buildMapInstance(t, 4, 128)
	p, ok := LookupProfile("read-heavy")
	if !ok {
		t.Fatal("read-heavy profile missing")
	}
	if !p.ReadMostly {
		t.Fatal("read-heavy profile is not marked ReadMostly")
	}
	p.OpsPerWorker = 500
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != p.Workers*p.OpsPerWorker {
		t.Errorf("ops = %d, want %d", res.Ops, p.Workers*p.OpsPerWorker)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
	if corrupt, detail := inst.Audit(); corrupt {
		t.Errorf("read-mostly run corrupted the map: %s", detail)
	}
}

// TestReadMostlyFallbackWithoutSeam drives a structure without the
// apps.ReadMostly seam under a ReadMostly profile: the run falls back to the
// instance's fixed Worker instead of erroring.
func TestReadMostlyFallbackWithoutSeam(t *testing.T) {
	f := shmem.NewNativeFactory()
	mk := guard.NewMaker(f, 2, guard.LLSC, 0)
	inst, err := apps.NewEventInstance(f, 2, 0, mk, apps.InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inst.(apps.ReadMostly); ok {
		t.Fatal("event instance grew a ReadMostly seam; pick another structure for the fallback test")
	}
	p, _ := LookupProfile("read-heavy")
	p.Workers, p.OpsPerWorker = 2, 200
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != p.Workers*p.OpsPerWorker {
		t.Errorf("ops = %d, want %d", res.Ops, p.Workers*p.OpsPerWorker)
	}
}

// TestRunThroughputReadMostly covers the lean E14 runner: ops and wall-clock
// only, no per-op clock reads, so the histogram must stay empty.
func TestRunThroughputReadMostly(t *testing.T) {
	inst := buildMapInstance(t, 2, 64)
	p, _ := LookupProfile("read-heavy")
	p.Workers, p.OpsPerWorker = 2, 2000
	res, err := RunThroughput(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != p.Workers*p.OpsPerWorker {
		t.Errorf("ops = %d, want %d", res.Ops, p.Workers*p.OpsPerWorker)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not positive")
	}
	if res.Latency.Count() != 0 {
		t.Errorf("RunThroughput recorded %d latencies, want none", res.Latency.Count())
	}
	if corrupt, detail := inst.Audit(); corrupt {
		t.Errorf("throughput run corrupted the map: %s", detail)
	}
	open, _ := LookupProfile("poisson")
	if _, err := RunThroughput(inst, open); err == nil {
		t.Error("RunThroughput accepted an open-loop profile")
	}
	if _, err := RunThroughput(inst, Profile{ID: "x", Workers: 0}); err == nil {
		t.Error("RunThroughput accepted zero workers")
	}
}

func TestRunRejectsBadProfiles(t *testing.T) {
	inst := buildMapInstance(t, 2, 16)
	if _, err := Run(inst, Profile{ID: "x", Workers: 0}); err == nil {
		t.Error("want error for zero workers")
	}
	if _, err := Run(inst, Profile{ID: "x", Workers: 1, OpsPerWorker: 1, GetPct: 50}); err == nil {
		t.Error("want error for a mix that does not sum to 100")
	}
	if _, err := Run(inst, Profile{ID: "x", Arrival: Poisson, Workers: 1, OpsPerWorker: 1,
		GetPct: 100}); err == nil {
		t.Error("want error for an open loop without a rate")
	}
	if _, err := Run(inst, Profile{ID: "x", Arrival: Burst, RatePerWorker: 1000, Workers: 1,
		OpsPerWorker: 1, Keys: 4, GetPct: 100}); err == nil {
		t.Error("want error for a burst profile without a burst size")
	}
	if _, err := Run(inst, Profile{ID: "x", Workers: 1, OpsPerWorker: 1, GetPct: 100}); err == nil {
		t.Error("want error for a keyed run without a key space")
	}
}

// TestPoissonInterArrivalStatistics checks the arrival process is actually
// exponential: over many samples the mean must sit within 5% of the
// configured inter-arrival time and the coefficient of variation within 5%
// of 1 (the memoryless signature; a uniform or constant schedule would show
// CV ≈ 0.3 or 0).
func TestPoissonInterArrivalStatistics(t *testing.T) {
	s := &sampler{r: rng{s: 0xfeed}}
	const mean = 6666.0 // ns, the poisson profile's 150k/s
	const n = 200_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		d := s.expSample(mean)
		if d < 0 {
			t.Fatalf("negative inter-arrival %v", d)
		}
		sum += d
		sumSq += d * d
	}
	m := sum / n
	if m < mean*0.95 || m > mean*1.05 {
		t.Errorf("sample mean = %.1f, want %.0f ±5%%", m, mean)
	}
	variance := sumSq/n - m*m
	cv := math.Sqrt(variance) / m
	if cv < 0.95 || cv > 1.05 {
		t.Errorf("coefficient of variation = %.3f, want ~1 (exponential)", cv)
	}
}

// stallInstance is a minimal non-keyed Instance whose op 0 stalls; it lets
// the tests pin the admission-queue accounting and the coordinated-omission
// correction without a real structure's noise.
type stallInstance struct {
	stall time.Duration
}

func (in stallInstance) Worker(pid int) (func(i int), error) {
	return func(i int) {
		if i == 0 && in.stall > 0 {
			time.Sleep(in.stall)
		}
	}, nil
}
func (in stallInstance) Audit() (bool, string)          { return false, "" }
func (in stallInstance) GuardMetrics() guard.Metrics    { return guard.Metrics{} }
func (in stallInstance) FreelistMetrics() guard.Metrics { return guard.Metrics{} }
func (in stallInstance) PoolStats() apps.PoolStats      { return apps.PoolStats{} }

// TestCoordinatedOmissionGuard pins the correction the open loop exists
// for: when one operation stalls, the ops scheduled behind it must record
// the queueing delay they inherited — measured from their scheduled
// arrival — not just their own service time.  The histogram must still
// account one sample per admitted op (a stalled worker omits nothing).
func TestCoordinatedOmissionGuard(t *testing.T) {
	const stall = 5 * time.Millisecond
	p := Profile{
		ID: "test-stall", Summary: "t", Arrival: Poisson, RatePerWorker: 1_000_000,
		Workers: 1, OpsPerWorker: 200, GetPct: 100, Seed: 9,
	}
	res, err := Run(stallInstance{stall: stall}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != p.OpsPerWorker || res.Offered != res.Ops || res.Shed != 0 {
		t.Fatalf("unbounded open loop admitted %d/%d with shed=%d", res.Ops, res.Offered, res.Shed)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d admitted ops", res.Latency.Count(), res.Ops)
	}
	// At 1µs inter-arrival, nearly every op is scheduled inside the 5ms
	// stall and inherits (most of) it: the median must see the queueing
	// delay, not the sub-microsecond service time.
	if p50 := res.Latency.Quantile(0.5); p50 < stall/4 {
		t.Errorf("p50 = %v: queueing delay behind the stall was omitted (want >= %v)", p50, stall/4)
	}
}

// TestShedPolicyAccounting pins the Shed books: arrivals past the queue
// bound are counted, not silently dropped, and only admitted ops reach the
// latency histogram.
func TestShedPolicyAccounting(t *testing.T) {
	p := Profile{
		ID: "test-shed", Summary: "t", Arrival: Poisson, RatePerWorker: 1_000_000,
		Workers: 1, OpsPerWorker: 400, GetPct: 100, Seed: 11,
		Queue: 2, Policy: Shed,
	}
	res, err := Run(stallInstance{stall: 10 * time.Millisecond}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("a 10ms stall behind a 2-deep queue at 1M/s shed nothing")
	}
	if res.Ops+res.Shed != res.Offered || res.Offered != p.OpsPerWorker {
		t.Errorf("books don't balance: ops=%d shed=%d offered=%d", res.Ops, res.Shed, res.Offered)
	}
	if res.Blocked != 0 {
		t.Errorf("shed policy blocked %d arrivals", res.Blocked)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d admitted ops (shed ops must not record)", res.Latency.Count(), res.Ops)
	}
	if res.Goodput() <= 0 {
		t.Error("goodput not positive")
	}
}

// TestBlockPolicyAccounting pins the Block books: every arrival executes
// (pushed back, never dropped), and the pushbacks are counted.
func TestBlockPolicyAccounting(t *testing.T) {
	p := Profile{
		ID: "test-block", Summary: "t", Arrival: Poisson, RatePerWorker: 1_000_000,
		Workers: 1, OpsPerWorker: 400, GetPct: 100, Seed: 13,
		Queue: 2, Policy: Block,
	}
	res, err := Run(stallInstance{stall: 10 * time.Millisecond}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked == 0 {
		t.Fatal("a 10ms stall behind a 2-deep queue at 1M/s blocked nothing")
	}
	if res.Shed != 0 || res.Ops != p.OpsPerWorker || res.Offered != res.Ops {
		t.Errorf("block policy lost ops: ops=%d shed=%d offered=%d", res.Ops, res.Shed, res.Offered)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
	// Block bounds the backlog: the latency an op can inherit is capped by
	// the admission window plus its own service time, so the tail must stay
	// far below the 10ms stall that an unbounded queue would propagate.
	if p99 := res.Latency.Quantile(0.99); p99 > 5*time.Millisecond {
		t.Errorf("p99 = %v under Block, want the backlog bounded below the stall", p99)
	}
}

// TestRunRejectsBadQueues covers the new validation: negative bounds and
// closed-loop queues are configuration errors.
func TestRunRejectsBadQueues(t *testing.T) {
	inst := buildMapInstance(t, 2, 16)
	if _, err := Run(inst, Profile{ID: "x", Workers: 1, OpsPerWorker: 1, Keys: 4,
		GetPct: 100, Queue: -1}); err == nil {
		t.Error("want error for a negative queue bound")
	}
	if _, err := Run(inst, Profile{ID: "x", Arrival: Closed, Workers: 1, OpsPerWorker: 1,
		Keys: 4, GetPct: 100, Queue: 4}); err == nil {
		t.Error("want error for an admission queue on a closed loop")
	}
}

// TestRecordPathAllocFree pins the measurement path itself: recording a
// latency sample and drawing the next keyed op must not allocate, or the
// generator would perturb the workload it measures.
func TestRecordPathAllocFree(t *testing.T) {
	var h Hist
	if got := testing.AllocsPerRun(500, func() {
		h.Record(time.Microsecond)
	}); got != 0 {
		t.Errorf("Hist.Record allocates %.1f/op, want 0", got)
	}
	s := &sampler{
		r: rng{s: 3}, zipf: newZipfTable(64, 1.1), keys: 64,
		getCut: 90, putCut: 95,
		keyed: func(apps.OpKind, Word, Word) {},
	}
	if got := testing.AllocsPerRun(500, func() {
		s.step(0)
	}); got != 0 {
		t.Errorf("sampler.step allocates %.1f/op, want 0", got)
	}
}
