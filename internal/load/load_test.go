package load

import (
	"testing"
	"time"

	"abadetect/internal/apps"
	"abadetect/internal/guard"
	"abadetect/internal/kv"
	"abadetect/internal/shmem"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	// 1000 samples at ~1µs, 10 at ~1ms: the p50 sits in the microsecond
	// bucket, the p999 in the millisecond bucket.
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if h.Count() != 1010 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99, p999 := h.Percentiles()
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", p50)
	}
	if p999 < 512*time.Microsecond || p999 > 2*time.Millisecond {
		t.Errorf("p999 = %v, want ~1ms", p999)
	}
	if p99 > p999 || p50 > p99 {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p99, p999)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Record(time.Microsecond)
	b.Record(time.Millisecond)
	a.Add(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if q := a.Quantile(1.0); q < 512*time.Microsecond {
		t.Errorf("merged max quantile = %v", q)
	}
}

func TestProfilesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if p.ID == "" || p.Summary == "" {
			t.Errorf("profile %+v: incomplete metadata", p)
		}
		if seen[p.ID] {
			t.Errorf("duplicate profile %q", p.ID)
		}
		seen[p.ID] = true
		if p.GetPct+p.PutPct+p.DeletePct != 100 {
			t.Errorf("%s: op mix sums to %d", p.ID, p.GetPct+p.PutPct+p.DeletePct)
		}
		if p.Arrival != Closed && p.RatePerWorker <= 0 {
			t.Errorf("%s: open-loop profile without a rate", p.ID)
		}
		if p.Arrival == Burst && p.BurstSize < 1 {
			t.Errorf("%s: burst profile without a burst size", p.ID)
		}
		if p.Workload() == "" {
			t.Errorf("%s: empty workload label", p.ID)
		}
		if got, ok := LookupProfile(p.ID); !ok || got.ID != p.ID {
			t.Errorf("LookupProfile(%q) = (%q, %v)", p.ID, got.ID, ok)
		}
	}
	if _, ok := LookupProfile("no-such-profile"); ok {
		t.Error("LookupProfile accepted an unknown ID")
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipfTable(64, 1.2)
	r := rng{s: 42}
	counts := make([]int, 64)
	for i := 0; i < 20000; i++ {
		counts[z.sample(r.float())]++
	}
	if counts[0] <= counts[32]*4 {
		t.Errorf("zipf not skewed: rank0=%d rank32=%d", counts[0], counts[32])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20000 {
		t.Errorf("samples lost: %d", total)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := rng{s: 7}, rng{s: 7}
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
}

// buildMapInstance constructs the keyed structure the generator drives.
func buildMapInstance(t *testing.T, n, capacity int) apps.Instance {
	t.Helper()
	f := shmem.NewNativeFactory()
	mk := guard.NewMaker(f, n, guard.LLSC, 0)
	inst, err := kv.NewMapInstance(f, n, capacity, mk, apps.InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunClosedLoopOnMap(t *testing.T) {
	inst := buildMapInstance(t, 4, 128)
	p, ok := LookupProfile("steady")
	if !ok {
		t.Fatal("steady profile missing")
	}
	p.OpsPerWorker = 500
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != p.Workers*p.OpsPerWorker {
		t.Errorf("ops = %d", res.Ops)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
	if res.Latency.Quantile(0.5) <= 0 {
		t.Error("p50 not positive")
	}
	if corrupt, detail := inst.Audit(); corrupt {
		t.Errorf("load run corrupted the structure: %s", detail)
	}
}

func TestRunOpenLoopPacing(t *testing.T) {
	inst := buildMapInstance(t, 2, 64)
	p := Profile{
		ID: "test-open", Summary: "t", Arrival: Poisson, RatePerWorker: 50_000,
		Workers: 2, OpsPerWorker: 200, Keys: 16, ZipfS: 1.1,
		GetPct: 80, PutPct: 10, DeletePct: 10, Seed: 1,
	}
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	// 200 ops at 50k/s means the schedule alone spans ~4ms per worker; an
	// open-loop run cannot finish faster than its arrival schedule.
	if res.Elapsed < 2*time.Millisecond {
		t.Errorf("open loop ran in %v, faster than its arrival schedule", res.Elapsed)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
}

func TestRunBurstLoop(t *testing.T) {
	inst := buildMapInstance(t, 2, 64)
	p := Profile{
		ID: "test-burst", Summary: "t", Arrival: Burst, RatePerWorker: 100_000, BurstSize: 32,
		Workers: 2, OpsPerWorker: 128, Keys: 16, ZipfS: 0,
		GetPct: 90, PutPct: 5, DeletePct: 5, Seed: 2,
	}
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
}

// TestRunFallbackWorker drives a structure without the Keyed seam: the
// stack runs its fixed Instance workload under the generator's arrivals.
func TestRunFallbackWorker(t *testing.T) {
	f := shmem.NewNativeFactory()
	mk := guard.NewMaker(f, 2, guard.LLSC, 0)
	inst, err := apps.NewStackInstance(f, 2, 32, mk, apps.InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := LookupProfile("steady")
	p.Workers, p.OpsPerWorker = 2, 400
	res, err := Run(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != int64(res.Ops) {
		t.Errorf("recorded %d latencies for %d ops", res.Latency.Count(), res.Ops)
	}
	if corrupt, detail := inst.Audit(); corrupt {
		t.Errorf("fallback run corrupted the stack: %s", detail)
	}
}

func TestRunRejectsBadProfiles(t *testing.T) {
	inst := buildMapInstance(t, 2, 16)
	if _, err := Run(inst, Profile{ID: "x", Workers: 0}); err == nil {
		t.Error("want error for zero workers")
	}
	if _, err := Run(inst, Profile{ID: "x", Workers: 1, OpsPerWorker: 1, GetPct: 50}); err == nil {
		t.Error("want error for a mix that does not sum to 100")
	}
	if _, err := Run(inst, Profile{ID: "x", Arrival: Poisson, Workers: 1, OpsPerWorker: 1,
		GetPct: 100}); err == nil {
		t.Error("want error for an open loop without a rate")
	}
	if _, err := Run(inst, Profile{ID: "x", Arrival: Burst, RatePerWorker: 1000, Workers: 1,
		OpsPerWorker: 1, Keys: 4, GetPct: 100}); err == nil {
		t.Error("want error for a burst profile without a burst size")
	}
	if _, err := Run(inst, Profile{ID: "x", Workers: 1, OpsPerWorker: 1, GetPct: 100}); err == nil {
		t.Error("want error for a keyed run without a key space")
	}
}

// TestRecordPathAllocFree pins the measurement path itself: recording a
// latency sample and drawing the next keyed op must not allocate, or the
// generator would perturb the workload it measures.
func TestRecordPathAllocFree(t *testing.T) {
	var h Hist
	if got := testing.AllocsPerRun(500, func() {
		h.Record(time.Microsecond)
	}); got != 0 {
		t.Errorf("Hist.Record allocates %.1f/op, want 0", got)
	}
	s := &sampler{
		r: rng{s: 3}, zipf: newZipfTable(64, 1.1), keys: 64,
		getCut: 90, putCut: 95,
		keyed: func(apps.OpKind, Word, Word) {},
	}
	if got := testing.AllocsPerRun(500, func() {
		s.step(0)
	}); got != 0 {
		t.Errorf("sampler.step allocates %.1f/op, want 0", got)
	}
}
