package load

import (
	"fmt"
	"math/bits"
	"time"
)

// Hist is an allocation-free latency histogram with logarithmic (log2)
// buckets: bucket b counts samples whose nanosecond value has bit-length b,
// i.e. lies in [2^(b-1), 2^b).  65 buckets cover every possible
// time.Duration, Record is two instructions plus an increment, and the
// per-worker instances merge at the end of a run — so the measurement path
// adds no contention and no heap traffic to the workload it measures.
//
// Quantiles interpolate linearly inside a bucket, which bounds the error by
// the bucket's width — coarse at the top, but percentile *movement* (the
// regression signal) survives, and the alternative (recording every sample)
// is exactly the allocation the hot-path guards forbid.
type Hist struct {
	counts [65]int64
	total  int64
}

// Record adds one latency sample.  Negative durations (clock steps) count
// into the zero bucket.
func (h *Hist) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bits.Len64(ns)]++
	h.total++
}

// Add merges o into h (for combining per-worker histograms).
func (h *Hist) Add(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.total }

// Quantile returns the q-quantile (0 < q <= 1) of the recorded samples,
// linearly interpolated inside the containing bucket.  It returns 0 when
// the histogram is empty.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	var cum float64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := bucketBounds(b)
			frac := (target - cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum = next
	}
	// Rounding left the target past the last bucket: return its upper edge.
	for b := len(h.counts) - 1; b >= 0; b-- {
		if h.counts[b] != 0 {
			_, hi := bucketBounds(b)
			return time.Duration(hi)
		}
	}
	return 0
}

// bucketBounds returns bucket b's [lo, hi) nanosecond range.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 1
	}
	return 1 << (b - 1), 1 << b
}

// Percentiles renders the p50/p99/p999 summary the experiment tables carry.
func (h *Hist) Percentiles() (p50, p99, p999 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999)
}

// String renders the summary.
func (h *Hist) String() string {
	p50, p99, p999 := h.Percentiles()
	return fmt.Sprintf("p50=%v p99=%v p999=%v (n=%d)", p50, p99, p999, h.total)
}
