// Package load is the traffic layer: an open- and closed-loop load
// generator that drives any registered structure through the apps.Instance
// driver seam and measures per-operation latency, not just throughput.
//
// The ROADMAP's north star is a system serving heavy traffic from millions
// of users, and such traffic is never the benchmark loop's lockstep
// hammering: arrivals cluster (Poisson and bursts), key popularity is
// skewed (Zipf), and the health metric is the latency *distribution* —
// p99/p999, where guard retries, reclamation stalls, and pool exhaustion
// actually surface.  A Profile names one such traffic shape:
//
//   - Closed-loop: each worker issues its next operation immediately; the
//     classic saturation benchmark, latency ≈ service time.
//   - Poisson open-loop: operations are *scheduled* by a memoryless arrival
//     process at a fixed rate, and latency is measured from the scheduled
//     arrival — so a slow operation's queueing delay lands on the ops
//     behind it instead of silently slowing the generator (the
//     coordinated-omission correction).
//   - Bursty open-loop: the same schedule, but arrivals land in groups —
//     the thundering-herd shape that makes bucket-head contention and
//     free-list pressure visible in the tail.
//
// Keyed structures (the hash map) receive the profile's op mix and Zipf key
// choice through the apps.Keyed seam; structures without keys run their
// fixed Instance workload under the same arrival process, so every
// registered structure can be traffic-tested.  Latencies go into per-worker
// log2 histograms (Hist) whose record path is allocation-free — pinned by
// the hot-path guards — and merge into p50/p99/p999 for the E13 tables.
package load

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"abadetect/internal/apps"
)

// Word is the key/value type of keyed workloads.
type Word = apps.Word

// Arrival selects the arrival process of a profile.
type Arrival int

// Arrival processes.
const (
	// Closed is the closed loop: the next op starts when the previous one
	// finishes.
	Closed Arrival = iota
	// Poisson is the open loop with exponential inter-arrival times.
	Poisson
	// Burst is the open loop with arrivals grouped into batches.
	Burst
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Closed:
		return "closed"
	case Poisson:
		return "poisson"
	case Burst:
		return "burst"
	default:
		return "unknown"
	}
}

// Policy selects what happens to an open-loop arrival that finds the
// admission queue full (Profile.Queue).
type Policy int

// Admission policies.
const (
	// Shed drops the arrival: it is counted as shed load, never executed,
	// and never recorded in the latency histogram.
	Shed Policy = iota
	// Block pushes the arrival process back: the arrival (and every one
	// after it) is rescheduled so the backlog never exceeds the bound —
	// the offered rate yields instead of the queue growing.
	Block
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Shed:
		return "shed"
	case Block:
		return "block"
	default:
		return "unknown"
	}
}

// Profile is one named traffic shape.
type Profile struct {
	// ID is the stable identifier (abalab -load, the E13 matrix).
	ID string
	// Summary is a one-line description for the -list index.
	Summary string
	// Arrival selects the arrival process.
	Arrival Arrival
	// RatePerWorker is the open-loop arrival rate per worker in ops/sec
	// (ignored by Closed).
	RatePerWorker float64
	// BurstSize groups open-loop arrivals into batches (Burst only).
	BurstSize int
	// Workers is the number of driving goroutines (processes).
	Workers int
	// OpsPerWorker is the op count each worker issues.
	OpsPerWorker int
	// Keys is the key-space size of keyed workloads.
	Keys int
	// ZipfS is the Zipf skew exponent; 0 means uniform popularity.
	ZipfS float64
	// GetPct, PutPct, and DeletePct are the keyed op mix in percent; they
	// must sum to 100.
	GetPct, PutPct, DeletePct int
	// Seed makes the generator's choices deterministic per run.
	Seed uint64
	// Queue bounds the open-loop admission backlog, in arrivals per worker;
	// 0 means unbounded (every arrival is admitted however late the worker
	// runs — the coordinated-omission-by-meltdown shape PR5 measured).
	Queue int
	// Policy selects what happens to arrivals past the Queue bound.
	Policy Policy
	// ReadMostly routes the run through the instance's wait-free read
	// workload (apps.ReadMostly) when it offers one: ~90% Peek/Get with a
	// 5%/5% write trickle, the read-scaling shape of E14.  Instances without
	// the seam fall back to their fixed Worker step.
	ReadMostly bool
	// NoPrepopulate skips the keyed warm-up puts.  The growth profiles set
	// it: prepopulating a growable map would perform every resize before the
	// measured run, and the resizes under live traffic are the experiment.
	NoPrepopulate bool
}

// Workload renders the profile as the experiment tables' workload column.
func (p Profile) Workload() string {
	shape := p.Arrival.String()
	if p.Arrival != Closed {
		shape = fmt.Sprintf("%s %.0fk/s", shape, p.RatePerWorker/1000)
		if p.Arrival == Burst {
			shape = fmt.Sprintf("%s x%d", shape, p.BurstSize)
		}
	}
	pop := "uniform"
	if p.ZipfS > 0 {
		pop = fmt.Sprintf("zipf %.2f", p.ZipfS)
	}
	w := fmt.Sprintf("%dw %s, %s, %d/%d/%d", p.Workers, shape, pop, p.GetPct, p.PutPct, p.DeletePct)
	if p.Queue > 0 {
		w = fmt.Sprintf("%s, q%d %s", w, p.Queue, p.Policy)
	}
	if p.ReadMostly {
		w += ", read-mostly"
	}
	return w
}

// Profiles returns the named traffic profiles, the load axis of the E13
// matrix.  Keep the list short: every entry multiplies the matrix.
func Profiles() []Profile {
	return []Profile{
		{
			ID: "steady", Summary: "closed loop, uniform keys, read-heavy 90/5/5",
			Arrival: Closed, Workers: 4, OpsPerWorker: 5000,
			Keys: 64, ZipfS: 0, GetPct: 90, PutPct: 5, DeletePct: 5, Seed: 0x5eed1,
		},
		{
			ID: "read-heavy", Summary: "closed loop on the wait-free read workload: 90% peeks/gets, 5/5 write trickle",
			Arrival: Closed, Workers: 4, OpsPerWorker: 5000,
			Keys: 64, ZipfS: 0, GetPct: 90, PutPct: 5, DeletePct: 5, Seed: 0x5eed7,
			ReadMostly: true,
		},
		{
			ID: "zipf-hot", Summary: "closed loop, zipf-skewed keys (hot-spot contention), 70/20/10",
			Arrival: Closed, Workers: 4, OpsPerWorker: 5000,
			Keys: 64, ZipfS: 1.2, GetPct: 70, PutPct: 20, DeletePct: 10, Seed: 0x5eed2,
		},
		{
			ID: "poisson", Summary: "open loop, Poisson arrivals at 150k ops/s per worker, zipf keys",
			Arrival: Poisson, RatePerWorker: 150_000, Workers: 4, OpsPerWorker: 4000,
			Keys: 64, ZipfS: 1.1, GetPct: 80, PutPct: 10, DeletePct: 10, Seed: 0x5eed3,
		},
		{
			ID: "burst", Summary: "open loop, bursts of 64 arrivals (thundering herd), zipf keys",
			Arrival: Burst, RatePerWorker: 150_000, BurstSize: 64, Workers: 4, OpsPerWorker: 4000,
			Keys: 64, ZipfS: 1.1, GetPct: 80, PutPct: 10, DeletePct: 10, Seed: 0x5eed4,
		},
		{
			ID: "poisson-shed", Summary: "the poisson profile behind a 4-deep admission queue, late arrivals shed",
			Arrival: Poisson, RatePerWorker: 150_000, Workers: 4, OpsPerWorker: 4000,
			Keys: 64, ZipfS: 1.1, GetPct: 80, PutPct: 10, DeletePct: 10, Seed: 0x5eed5,
			Queue: 4, Policy: Shed,
		},
		{
			ID: "burst-block", Summary: "the burst profile behind a 64-deep admission queue, excess arrivals pushed back",
			Arrival: Burst, RatePerWorker: 150_000, BurstSize: 64, Workers: 4, OpsPerWorker: 4000,
			Keys: 64, ZipfS: 1.1, GetPct: 80, PutPct: 10, DeletePct: 10, Seed: 0x5eed6,
			Queue: 64, Policy: Block,
		},
	}
}

// GrowthProfile is the E15 traffic shape: a closed-loop, write-leaning mix
// (40/50/10) over a key space the structure must *grow into* — the put-heavy
// skew keeps the live count climbing through segment-append and
// directory-split thresholds while gets and deletes run concurrently with
// every resize.  It is parameterized rather than registered: the E15 matrix
// sweeps the key space across orders of magnitude, and registering each
// point would multiply the E13 matrix for no new information.
func GrowthProfile(keys, totalOps, workers int) Profile {
	return Profile{
		ID:      fmt.Sprintf("grow-%dk", keys/1000),
		Summary: "closed loop, uniform keys over a growing key space, 40/50/10",
		Arrival: Closed, Workers: workers, OpsPerWorker: totalOps / workers,
		Keys: keys, ZipfS: 0, GetPct: 40, PutPct: 50, DeletePct: 10, Seed: 0x5eed8,
		NoPrepopulate: true,
	}
}

// LookupProfile returns the profile registered under id.
func LookupProfile(id string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.ID == id {
			return p, true
		}
	}
	return Profile{}, false
}

// Result is one load run's measurements.
type Result struct {
	// Ops is the number of operations *admitted and executed*.  Without an
	// admission queue it equals Offered.
	Ops int
	// Offered is the number of scheduled arrivals (Ops + Shed).
	Offered int
	// Shed is the number of arrivals dropped by the Shed policy — reported,
	// never silently lost.
	Shed int
	// Blocked is the number of arrivals the Block policy pushed back
	// (rescheduled, then executed; they are included in Ops).
	Blocked int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// Latency is the merged latency histogram of *admitted* ops; under the
	// open-loop profiles latency is measured from the scheduled arrival, so
	// queueing delay counts (no coordinated omission).
	Latency Hist
}

// Goodput is the admitted throughput in ops/sec.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// rng is a small xorshift64* generator: deterministic, allocation-free, one
// per worker so the sampling path shares nothing.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

// float returns a uniform sample in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// zipfTable is the inverse-CDF sampler for rank popularity 1/r^s: exact,
// precomputed once per run, allocation-free per sample (a binary search).
type zipfTable struct {
	cum []float64 // cum[i] = normalized CDF through rank i
}

func newZipfTable(keys int, s float64) *zipfTable {
	t := &zipfTable{cum: make([]float64, keys)}
	total := 0.0
	for i := 0; i < keys; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		t.cum[i] = total
	}
	for i := range t.cum {
		t.cum[i] /= total
	}
	return t
}

// sample maps a uniform u in [0,1) to a rank in [0, keys).
func (t *zipfTable) sample(u float64) int {
	return sort.SearchFloat64s(t.cum, u)
}

// sampler draws one worker's keyed operations from the profile's mix and
// popularity model.
type sampler struct {
	r        rng
	zipf     *zipfTable // nil = uniform
	keys     uint64
	getCut   uint64                              // next() % 100 below getCut → get
	putCut   uint64                              // ... below putCut → put, else delete
	fallback func(i int)                         // non-keyed step
	keyed    func(op apps.OpKind, key, val Word) // keyed step
}

// step issues the i-th operation.
func (s *sampler) step(i int) {
	if s.keyed == nil {
		s.fallback(i)
		return
	}
	var key Word
	if s.zipf != nil {
		key = Word(s.zipf.sample(s.r.float()))
	} else {
		key = Word(s.r.next() % s.keys)
	}
	switch c := s.r.next() % 100; {
	case c < s.getCut:
		s.keyed(apps.OpGet, key, 0)
	case c < s.putCut:
		s.keyed(apps.OpPut, key, Word(i))
	default:
		s.keyed(apps.OpDelete, key, 0)
	}
}

// Run drives inst with the profile's traffic and returns the merged
// measurements.  Keyed structures are prepopulated (one put per key, until
// the pool declines) so a read-heavy mix measures hits, not an empty map.
func Run(inst apps.Instance, p Profile) (Result, error) {
	if p.Workers < 1 || p.OpsPerWorker < 1 {
		return Result{}, fmt.Errorf("load: profile %q needs workers and ops >= 1", p.ID)
	}
	if p.GetPct+p.PutPct+p.DeletePct != 100 {
		return Result{}, fmt.Errorf("load: profile %q op mix %d/%d/%d does not sum to 100",
			p.ID, p.GetPct, p.PutPct, p.DeletePct)
	}
	if p.Arrival != Closed && p.RatePerWorker <= 0 {
		return Result{}, fmt.Errorf("load: open-loop profile %q needs a positive rate", p.ID)
	}
	if p.Arrival == Burst && p.BurstSize < 1 {
		return Result{}, fmt.Errorf("load: burst profile %q needs a burst size >= 1", p.ID)
	}
	if p.Queue < 0 {
		return Result{}, fmt.Errorf("load: profile %q queue bound must be >= 0, got %d", p.ID, p.Queue)
	}
	if p.Queue > 0 && p.Arrival == Closed {
		return Result{}, fmt.Errorf("load: profile %q: an admission queue needs an open-loop arrival process", p.ID)
	}
	keyed, _ := inst.(apps.Keyed)
	if p.ReadMostly {
		if rm, ok := inst.(apps.ReadMostly); ok {
			// The read-mostly workload replaces the sampler's keyed mix: the
			// instance's own step exercises the wait-free read path directly.
			keyed = nil
			inst = readMostlyInstance{Instance: inst, rm: rm}
		}
	}
	if keyed != nil && p.Keys < 1 {
		return Result{}, fmt.Errorf("load: profile %q needs a key space >= 1 for a keyed structure", p.ID)
	}
	var zipf *zipfTable
	if keyed != nil && p.ZipfS > 0 {
		zipf = newZipfTable(p.Keys, p.ZipfS)
	}

	samplers := make([]*sampler, p.Workers)
	for pid := 0; pid < p.Workers; pid++ {
		s := &sampler{
			r:      rng{s: p.Seed + uint64(pid)*0x9e3779b97f4a7c15 + 1},
			zipf:   zipf,
			keys:   uint64(p.Keys),
			getCut: uint64(p.GetPct),
			putCut: uint64(p.GetPct + p.PutPct),
		}
		if keyed != nil {
			step, err := keyed.KeyedWorker(pid)
			if err != nil {
				return Result{}, err
			}
			s.keyed = step
		} else {
			step, err := inst.Worker(pid)
			if err != nil {
				return Result{}, err
			}
			s.fallback = step
		}
		samplers[pid] = s
	}
	if keyed != nil && !p.NoPrepopulate {
		// Prepopulate through worker 0 so the mix's reads have something to
		// hit; a declined put just means the pool is smaller than the key
		// space, which the run tolerates.
		for k := 0; k < p.Keys; k++ {
			samplers[0].keyed(apps.OpPut, Word(k), Word(k))
		}
	}

	hists := make([]Hist, p.Workers)
	counts := make([]workerCounts, p.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < p.Workers; pid++ {
		wg.Add(1)
		go func(s *sampler, h *Hist, w *workerCounts) {
			defer wg.Done()
			switch p.Arrival {
			case Closed:
				for i := 0; i < p.OpsPerWorker; i++ {
					opStart := time.Now()
					s.step(i)
					h.Record(time.Since(opStart))
				}
				w.ops = p.OpsPerWorker
			default:
				interArrival := float64(time.Second) / p.RatePerWorker
				// The admission bound in time units: an arrival more than
				// `window` behind schedule found Queue arrivals already
				// waiting.
				window := time.Duration(float64(p.Queue) * interArrival)
				target := time.Now()
				for i := 0; i < p.OpsPerWorker; i++ {
					switch p.Arrival {
					case Poisson:
						target = target.Add(time.Duration(s.expSample(interArrival)))
					case Burst:
						if i%p.BurstSize == 0 {
							target = target.Add(time.Duration(interArrival * float64(p.BurstSize)))
						}
					}
					if p.Queue > 0 && time.Since(target) > window {
						if p.Policy == Shed {
							w.shed++
							continue
						}
						// Block: push the arrival process back so the
						// backlog never exceeds the bound; later arrivals
						// inherit the shift through target.
						target = time.Now().Add(-window)
						w.blocked++
					}
					waitUntil(target)
					s.step(i)
					// Open-loop latency counts from the scheduled arrival:
					// delay inherited from a slow predecessor is real latency.
					h.Record(time.Since(target))
					w.ops++
				}
			}
		}(samplers[pid], &hists[pid], &counts[pid])
	}
	wg.Wait()
	res := Result{Elapsed: time.Since(start)}
	for i := range hists {
		res.Latency.Add(&hists[i])
		res.Ops += counts[i].ops
		res.Shed += counts[i].shed
		res.Blocked += counts[i].blocked
	}
	res.Offered = res.Ops + res.Shed
	return res, nil
}

// readMostlyInstance rebinds an instance's Worker to its ReadMostlyWorker so
// the generic driving loops need no second seam.
type readMostlyInstance struct {
	apps.Instance
	rm apps.ReadMostly
}

func (r readMostlyInstance) Worker(pid int) (func(i int), error) {
	return r.rm.ReadMostlyWorker(pid)
}

// RunThroughput drives inst with the profile's worker count and op count in
// a bare closed loop and returns ops and wall-clock only — no per-op clock
// reads, no histogram.  The E14 read-scaling matrix uses it because the
// measured fast path is tens of nanoseconds and two time.Now calls per op
// would be the workload; Run stays the tool when the latency *distribution*
// is the question.
func RunThroughput(inst apps.Instance, p Profile) (Result, error) {
	if p.Workers < 1 || p.OpsPerWorker < 1 {
		return Result{}, fmt.Errorf("load: profile %q needs workers and ops >= 1", p.ID)
	}
	if p.Arrival != Closed {
		return Result{}, fmt.Errorf("load: RunThroughput is closed-loop only; profile %q is %s", p.ID, p.Arrival)
	}
	rm, _ := inst.(apps.ReadMostly)
	steps := make([]func(i int), p.Workers)
	for pid := 0; pid < p.Workers; pid++ {
		var err error
		if p.ReadMostly && rm != nil {
			steps[pid], err = rm.ReadMostlyWorker(pid)
		} else {
			steps[pid], err = inst.Worker(pid)
		}
		if err != nil {
			return Result{}, err
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < p.Workers; pid++ {
		wg.Add(1)
		go func(step func(i int)) {
			defer wg.Done()
			for i := 0; i < p.OpsPerWorker; i++ {
				step(i)
			}
		}(steps[pid])
	}
	wg.Wait()
	res := Result{Elapsed: time.Since(start), Ops: p.Workers * p.OpsPerWorker}
	res.Offered = res.Ops
	return res, nil
}

// workerCounts are one worker's admission counters, padded so neighboring
// workers' counters never share a cache line.
type workerCounts struct {
	ops, shed, blocked int
	_                  [104]byte
}

// spinSlack is the stretch before a scheduled arrival where the worker
// yields instead of sleeping: short enough that the final approach stays
// precise, long enough that the runtime's timer wakes us in time.
const spinSlack = 100 * time.Microsecond

// waitUntil blocks until the scheduled arrival.  Distant arrivals sleep:
// an open-loop worker that busy-spins between arrivals steals the very CPU
// the admitted operations need, and on a small machine that scheduler-
// induced queueing — not the structure — was the whole PR5 tail.  The last
// spinSlack is yielded away so the op still starts close to its schedule.
func waitUntil(target time.Time) {
	for {
		d := time.Until(target)
		if d <= 0 {
			return
		}
		if d > spinSlack {
			time.Sleep(d - spinSlack)
			continue
		}
		runtime.Gosched()
	}
}

// expSample draws an exponential inter-arrival time with the given mean (in
// nanoseconds).
func (s *sampler) expSample(mean float64) float64 {
	u := s.r.float()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) * mean
}
