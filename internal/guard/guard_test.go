package guard

import (
	"sync"
	"testing"

	"abadetect/internal/core"
	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
)

// allMakers returns one maker per regime over a fresh native factory.
func allMakers(n int) map[string]Maker {
	return map[string]Maker{
		"raw":      NewMaker(shmem.NewNativeFactory(), n, Raw, 0),
		"tagged4":  NewMaker(shmem.NewNativeFactory(), n, Tagged, 4),
		"llsc":     NewMaker(shmem.NewNativeFactory(), n, LLSC, 0),
		"detector": NewMaker(shmem.NewNativeFactory(), n, Detector, 0),
	}
}

func mustGuard(t *testing.T, mk Maker, name string, bits uint, init Word) Guard {
	t.Helper()
	g, err := mk(name, bits, init)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustHandle(t *testing.T, g Guard, pid int) Handle {
	t.Helper()
	h, err := g.Handle(pid)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLoadCommitSequential(t *testing.T) {
	for name, mk := range allMakers(2) {
		t.Run(name, func(t *testing.T) {
			g := mustGuard(t, mk, "ref", 8, 5)
			h := mustHandle(t, g, 0)
			v, dirty := h.Load()
			if v != 5 || dirty {
				t.Fatalf("first Load = (%d,%v), want (5,false)", v, dirty)
			}
			if !h.Commit(7) {
				t.Fatal("uncontended Commit failed")
			}
			if v, _ := h.Load(); v != 7 {
				t.Fatalf("Load after Commit = %d, want 7", v)
			}
			if got := g.Peek(-1); got != 7 {
				t.Fatalf("Peek = %d, want 7", got)
			}
			if m := g.Metrics(); m.Commits != 1 {
				t.Fatalf("metrics = %s, want 1 commit", m)
			}
		})
	}
}

func TestStoreAndValidate(t *testing.T) {
	for name, mk := range allMakers(2) {
		t.Run(name, func(t *testing.T) {
			g := mustGuard(t, mk, "ref", 8, 0)
			a := mustHandle(t, g, 0)
			b := mustHandle(t, g, 1)
			a.Load()
			if !a.Validate() {
				t.Fatal("Validate right after Load failed")
			}
			b.Store(9)
			if a.Validate() {
				t.Fatal("Validate survived an intervening Store")
			}
			if v, _ := a.Load(); v != 9 {
				t.Fatalf("Load after Store = %d, want 9", v)
			}
		})
	}
}

// TestABALadder is the §1 story at guard level: an adversary restores the
// loaded value with exactly 4 writes while the victim is poised; the raw
// guard's stale commit is accepted, a 1- or 2-bit tag wraps and is fooled
// too, a 3-bit tag and the LL/SC and detector guards reject it.
func TestABALadder(t *testing.T) {
	cases := []struct {
		name       string
		mk         func() Maker
		wantFooled bool
	}{
		{"raw", func() Maker { return NewMaker(shmem.NewNativeFactory(), 2, Raw, 0) }, true},
		{"tag1", func() Maker { return NewMaker(shmem.NewNativeFactory(), 2, Tagged, 1) }, true},
		{"tag2", func() Maker { return NewMaker(shmem.NewNativeFactory(), 2, Tagged, 2) }, true},
		{"tag3", func() Maker { return NewMaker(shmem.NewNativeFactory(), 2, Tagged, 3) }, false},
		{"llsc", func() Maker { return NewMaker(shmem.NewNativeFactory(), 2, LLSC, 0) }, false},
		{"detector", func() Maker { return NewMaker(shmem.NewNativeFactory(), 2, Detector, 0) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mustGuard(t, tc.mk(), "ref", 8, 1)
			victim := mustHandle(t, g, 0)
			adversary := mustHandle(t, g, 1)
			victim.Load() // victim poised at value 1
			for _, v := range []Word{2, 3, 2, 1} {
				adversary.Load()
				if !adversary.Commit(v) {
					t.Fatalf("adversary commit %d failed", v)
				}
			}
			fooled := victim.Commit(9)
			if fooled != tc.wantFooled {
				t.Fatalf("victim commit = %v, want %v", fooled, tc.wantFooled)
			}
			m := g.Metrics()
			if !tc.wantFooled && m.NearMisses == 0 && tc.name != "raw" {
				t.Errorf("ABA prevented but no near-miss recorded: %s", m)
			}
			if tc.name == "raw" && m.NearMisses != 0 {
				t.Errorf("raw guard recorded a near-miss: %s", m)
			}
		})
	}
}

func TestDirtyLoadDetection(t *testing.T) {
	// A pulse (write away, write back) lands between two Loads: the raw
	// guard sees nothing, tagged/llsc/detector report dirty.
	for name, mk := range allMakers(2) {
		t.Run(name, func(t *testing.T) {
			g := mustGuard(t, mk, "flag", 4, 0)
			waiter := mustHandle(t, g, 0)
			signaler := mustHandle(t, g, 1)
			waiter.Load()
			signaler.Store(1)
			signaler.Store(0)
			_, dirty := waiter.Load()
			wantDirty := name != "raw"
			if dirty != wantDirty {
				t.Fatalf("dirty = %v, want %v", dirty, wantDirty)
			}
		})
	}
}

func TestDetectionOnlyGuard(t *testing.T) {
	f := shmem.NewNativeFactory()
	det, err := core.NewRegisterBased(f, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewDetectionOnly(det, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Conditional() {
		t.Fatal("detection-only guard claims Commit support")
	}
	if g.Regime() != Detector {
		t.Fatalf("regime = %v, want detector", g.Regime())
	}
	waiter := mustHandle(t, g, 0)
	signaler := mustHandle(t, g, 1)
	if v, dirty := waiter.Load(); v != 0 || dirty {
		t.Fatalf("initial Load = (%d,%v)", v, dirty)
	}
	signaler.Store(1)
	signaler.Store(0)
	if _, dirty := waiter.Load(); !dirty {
		t.Fatal("detection-only guard missed the pulse")
	}
	if got := g.Peek(-1); got != 0 {
		t.Fatalf("Peek = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Commit on a detection-only guard did not panic")
		}
	}()
	waiter.Commit(1)
}

// TestDetectionOnlyValidateCountsDirty: Validate's DRead is destructive —
// it consumes the dirty signal and re-arms detection — so the write it
// observes must land in DirtyLoads, or a Validate-then-Load sequence would
// under-report a write that did occur.
func TestDetectionOnlyValidateCountsDirty(t *testing.T) {
	f := shmem.NewNativeFactory()
	det, err := core.NewRegisterBased(f, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewDetectionOnly(det, 0)
	if err != nil {
		t.Fatal(err)
	}
	waiter := mustHandle(t, g, 0)
	signaler := mustHandle(t, g, 1)
	waiter.Load()
	if !waiter.Validate() {
		t.Fatal("Validate with no intervening write reported dirty")
	}
	signaler.Store(1)
	signaler.Store(0)
	if waiter.Validate() {
		t.Fatal("Validate missed the pulse")
	}
	if m := g.Metrics(); m.DirtyLoads != 1 {
		t.Fatalf("DirtyLoads = %d, want 1 (Validate consumed the write)", m.DirtyLoads)
	}
	// The destructive DRead re-armed detection: the following Load is clean
	// and must not count the same write again.
	if _, dirty := waiter.Load(); dirty {
		t.Fatal("Load after a destructive Validate reported dirty")
	}
	if m := g.Metrics(); m.DirtyLoads != 1 {
		t.Fatalf("DirtyLoads after clean Load = %d, want 1", m.DirtyLoads)
	}
}

func TestConditionalFlag(t *testing.T) {
	for name, mk := range allMakers(2) {
		g := mustGuard(t, mk, "ref", 8, 0)
		if !g.Conditional() {
			t.Errorf("%s: Conditional() = false, want true", name)
		}
	}
}

func TestTaggedValidation(t *testing.T) {
	f := shmem.NewNativeFactory()
	if _, err := NewTagged(f, 2, "ref", 8, 0, 0); err == nil {
		t.Error("want error for 0 tag bits")
	}
	if _, err := NewTagged(f, 2, "ref", 60, 8, 0); err == nil {
		t.Error("want error for an overfull word")
	}
	if _, err := NewRaw(f, 0, "ref", 0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewLLSC(nil); err == nil {
		t.Error("want error for nil object")
	}
	if _, err := NewDetected(nil); err == nil {
		t.Error("want error for nil object")
	}
	if _, err := NewDetectionOnly(nil, 0); err == nil {
		t.Error("want error for nil detector")
	}
	mk := NewMaker(f, 2, Regime(99), 0)
	if _, err := mk("ref", 8, 0); err == nil {
		t.Error("want error for unknown regime")
	}
	g, err := NewRaw(f, 2, "ref", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Handle(7); err == nil {
		t.Error("want error for out-of-range pid")
	}
}

func TestRegimeString(t *testing.T) {
	for _, tc := range []struct {
		r    Regime
		want string
	}{{Raw, "raw-cas"}, {Tagged, "tagged-cas"}, {LLSC, "ll/sc"}, {Detector, "detector"}, {Regime(0), "unknown"}} {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.r), got, tc.want)
		}
	}
}

func TestGuardOverExplicitObjects(t *testing.T) {
	// Guards accept externally-built LL/SC objects, the hook the registry
	// uses to put any registered implementation behind a structure.
	f := shmem.NewNativeFactory()
	obj, err := llsc.NewConstantTime(f, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewDetected(obj)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHandle(t, g, 0)
	if v, _ := h.Load(); v != 2 {
		t.Fatalf("Load = %d, want 2", v)
	}
	if !h.Commit(3) {
		t.Fatal("commit failed")
	}
}

func TestConcurrentCommitsRace(t *testing.T) {
	// Race-detector workout: n goroutines hammer one guard with
	// Load/Commit/Store; for the sound regimes every successful commit is
	// a real transition (checked only for data races and termination here;
	// structure-level accounting lives in internal/apps).
	for name, mk := range allMakers(4) {
		t.Run(name, func(t *testing.T) {
			g := mustGuard(t, mk, "ref", 16, 0)
			var wg sync.WaitGroup
			for pid := 0; pid < 4; pid++ {
				h := mustHandle(t, g, pid)
				wg.Add(1)
				go func(pid int, h Handle) {
					defer wg.Done()
					for i := 0; i < 2000; i++ {
						h.Load()
						h.Commit(Word(pid<<8 | i&0xff))
						if i%64 == 0 {
							h.Store(Word(pid))
						}
					}
				}(pid, h)
			}
			wg.Wait()
			m := g.Metrics()
			if m.Commits == 0 {
				t.Errorf("no commit ever succeeded: %s", m)
			}
		})
	}
}
