package guard

import (
	"fmt"
	"sync/atomic"

	"abadetect/internal/core"
	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
)

// llscNewCASBased is the default LL/SC construction behind NewMaker (the
// paper's Figure 3: one bounded CAS word, O(n) steps).
func llscNewCASBased(f shmem.Factory, n int, valueBits uint, init Word) (llsc.Object, error) {
	return llsc.NewCASBased(f, n, valueBits, init)
}

// ---------------------------------------------------------------------------
// Raw: bare CAS on the reference word.

type rawGuard struct {
	obj shmem.WritableCAS
	n   int
	m   metrics
}

// NewRaw builds the unprotected baseline: a bare CAS on the reference.
// Commit succeeds whenever the word compares equal — the classic ABA
// victim.
func NewRaw(f shmem.Factory, n int, name string, init Word) (Guard, error) {
	if n < 1 {
		return nil, fmt.Errorf("guard: raw guard needs n >= 1, got %d", n)
	}
	return &rawGuard{obj: f.NewCAS(name, init), n: n, m: newMetrics()}, nil
}

func (g *rawGuard) Handle(pid int) (Handle, error) {
	if err := checkPid(pid, g.n); err != nil {
		return nil, err
	}
	return &rawHandle{g: g, pid: pid, lane: shmem.StripeFor(pid)}, nil
}

func (g *rawGuard) NumProcs() int     { return g.n }
func (g *rawGuard) Regime() Regime    { return Raw }
func (g *rawGuard) Conditional() bool { return true }
func (g *rawGuard) Peek(pid int) Word { return g.obj.Read(pid) }
func (g *rawGuard) Metrics() Metrics  { return g.m.snapshot() }

type rawHandle struct {
	g      *rawGuard
	pid    int
	lane   int // metrics stripe, shmem.StripeFor(pid)
	last   Word
	loaded bool
}

func (h *rawHandle) Load() (Word, bool) {
	v := h.g.obj.Read(h.pid)
	dirty := h.loaded && v != h.last
	if dirty {
		h.g.m.addDirty(h.lane)
	}
	h.last, h.loaded = v, true
	return v, dirty
}

func (h *rawHandle) Commit(v Word) bool {
	if h.g.obj.CompareAndSwap(h.pid, h.last, v) {
		h.g.m.addCommit(h.lane)
		return true
	}
	// No near-miss is possible here: an equal word means the CAS succeeds.
	h.g.m.addRejected(h.lane)
	return false
}

func (h *rawHandle) Validate() bool { return h.g.obj.Read(h.pid) == h.last }

func (h *rawHandle) Store(v Word) { h.g.obj.Write(h.pid, v) }

// ---------------------------------------------------------------------------
// Tagged: a k-bit wrap-around tag packed beside the reference.

type taggedGuard struct {
	obj   shmem.WritableCAS
	codec shmem.TagCodec
	n     int
	m     metrics
}

// NewTagged builds the folklore k-bit tag scheme (tagBits = k): every write
// bumps the tag, so a restored value is distinguishable — until exactly 2^k
// writes land inside a victim's window and the packed word repeats.
func NewTagged(f shmem.Factory, n int, name string, valueBits, tagBits uint, init Word) (Guard, error) {
	if n < 1 {
		return nil, fmt.Errorf("guard: tagged guard needs n >= 1, got %d", n)
	}
	codec, err := shmem.NewTagCodec(valueBits, tagBits)
	if err != nil {
		return nil, fmt.Errorf("guard: tagged guard: %w", err)
	}
	return &taggedGuard{obj: f.NewCAS(name, codec.Encode(init, 0)), codec: codec, n: n, m: newMetrics()}, nil
}

func (g *taggedGuard) Handle(pid int) (Handle, error) {
	if err := checkPid(pid, g.n); err != nil {
		return nil, err
	}
	return &taggedHandle{g: g, pid: pid, lane: shmem.StripeFor(pid)}, nil
}

func (g *taggedGuard) NumProcs() int     { return g.n }
func (g *taggedGuard) Regime() Regime    { return Tagged }
func (g *taggedGuard) Conditional() bool { return true }
func (g *taggedGuard) Peek(pid int) Word { return g.codec.Value(g.obj.Read(pid)) }
func (g *taggedGuard) Metrics() Metrics  { return g.m.snapshot() }

type taggedHandle struct {
	g      *taggedGuard
	pid    int
	lane   int  // metrics stripe, shmem.StripeFor(pid)
	last   Word // the full packed word, tag included
	loaded bool
}

func (h *taggedHandle) Load() (Word, bool) {
	w := h.g.obj.Read(h.pid)
	dirty := h.loaded && w != h.last
	if dirty {
		h.g.m.addDirty(h.lane)
	}
	h.last, h.loaded = w, true
	return h.g.codec.Value(w), dirty
}

func (h *taggedHandle) Commit(v Word) bool {
	next := h.g.codec.Encode(v, h.g.codec.Tag(h.last)+1)
	if h.g.obj.CompareAndSwap(h.pid, h.last, next) {
		h.g.m.addCommit(h.lane)
		return true
	}
	h.g.m.addRejected(h.lane)
	// Observer read: metrics are instrumentation, not model steps.
	if cur := h.g.obj.Read(-1); h.g.codec.Value(cur) == h.g.codec.Value(h.last) {
		h.g.m.addNearMiss(h.lane) // same value, different tag: the tag saved us
	}
	return false
}

func (h *taggedHandle) Validate() bool { return h.g.obj.Read(h.pid) == h.last }

func (h *taggedHandle) Store(v Word) {
	for {
		w := h.g.obj.Read(h.pid)
		if h.g.obj.CompareAndSwap(h.pid, w, h.g.codec.Encode(v, h.g.codec.Tag(w)+1)) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// LLSC and Detector (Figure 5 pairing): the reference in an LL/SC/VL object.

type llscGuard struct {
	obj    llsc.Object
	regime Regime
	m      metrics
}

// NewLLSC keeps the reference in obj: Load is LL, Commit is SC, Validate is
// VL.  Immune to ABA by the object's specification.
func NewLLSC(obj llsc.Object) (Guard, error) {
	return newLLSCGuard(obj, LLSC)
}

// NewDetected is the paper's Figure 5 pairing applied to guards: the
// reference lives in obj, Load doubles as a DRead (LL plus the VL-derived
// dirty flag), Commit is the SC whose success is what flips other handles'
// dirty flags, and every rejected commit with an unchanged value is counted
// as a detected-and-prevented ABA.
func NewDetected(obj llsc.Object) (Guard, error) {
	return newLLSCGuard(obj, Detector)
}

func newLLSCGuard(obj llsc.Object, regime Regime) (Guard, error) {
	if obj == nil {
		return nil, fmt.Errorf("guard: %s guard needs a non-nil LL/SC/VL object", regime)
	}
	return &llscGuard{obj: obj, regime: regime, m: newMetrics()}, nil
}

func (g *llscGuard) Handle(pid int) (Handle, error) {
	h, err := g.obj.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &llscHandle{g: g, h: h, lane: shmem.StripeFor(pid)}, nil
}

func (g *llscGuard) NumProcs() int     { return g.obj.NumProcs() }
func (g *llscGuard) Regime() Regime    { return g.regime }
func (g *llscGuard) Conditional() bool { return true }
func (g *llscGuard) Peek(pid int) Word { return g.obj.Peek(pid) }
func (g *llscGuard) Metrics() Metrics  { return g.m.snapshot() }

type llscHandle struct {
	g      *llscGuard
	h      llsc.Handle
	lane   int  // metrics stripe, shmem.StripeFor(pid)
	old    Word // cached value, valid while the link is
	linked bool // false until this handle's first LL
}

func (h *llscHandle) Load() (Word, bool) {
	// This is exactly the DRead of the paper's Figure 5: if the link is
	// still valid, no successful SC — hence no write — linearized since the
	// last LL, so the cached value is current and the load is clean.  Only
	// an invalidated link re-links.  Re-linking on a *clean* load instead
	// would silently consume a write that lands between the VL and the LL:
	// neither that load nor any later one would report it.
	//
	// The first Load always links (and is clean by definition — there is no
	// previous Load to be dirty against): the underlying object's link
	// state is per *process*, so a fresh handle for a pid whose earlier
	// handle left a clean link would otherwise serve its stale
	// initial-value cache.
	if !h.linked {
		h.old = h.h.LL()
		h.linked = true
		return h.old, false
	}
	if h.h.VL() {
		return h.old, false
	}
	h.g.m.addDirty(h.lane)
	h.old = h.h.LL()
	return h.old, true
}

func (h *llscHandle) Commit(v Word) bool {
	if h.h.SC(v) {
		h.g.m.addCommit(h.lane)
		return true
	}
	h.g.m.addRejected(h.lane)
	if h.g.obj.Peek(-1) == h.old {
		h.g.m.addNearMiss(h.lane) // value restored, link gone: a prevented ABA
	}
	return false
}

func (h *llscHandle) Validate() bool { return h.h.VL() }

func (h *llscHandle) Store(v Word) {
	for {
		h.h.LL()
		if h.h.SC(v) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Detection-only: any ABA-detecting register as a guard.

type detectionGuard struct {
	det    core.Detector
	shadow atomic.Uint64
	m      metrics
}

// NewDetectionOnly wraps any ABA-detecting register as a guard for the
// workloads that never conditionally swing — the paper's busy-wait flag.
// Load is DRead, Store is DWrite; Commit panics (Conditional() is false),
// because a register-only detector such as Figure 4 has no conditional
// primitive to build it from — the capability split the paper's two
// application families sit on either side of.
//
// Peek reads a shadow word maintained beside the detector (instrumentation,
// not a base object): the Detector interface exposes per-process handles
// only, so an observer has no model-level read of its own.
func NewDetectionOnly(det core.Detector, init Word) (Guard, error) {
	if det == nil {
		return nil, fmt.Errorf("guard: detection-only guard needs a non-nil detector")
	}
	g := &detectionGuard{det: det, m: newMetrics()}
	g.shadow.Store(init)
	return g, nil
}

func (g *detectionGuard) Handle(pid int) (Handle, error) {
	h, err := g.det.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &detectionHandle{g: g, h: h, lane: shmem.StripeFor(pid)}, nil
}

func (g *detectionGuard) NumProcs() int     { return g.det.NumProcs() }
func (g *detectionGuard) Regime() Regime    { return Detector }
func (g *detectionGuard) Conditional() bool { return false }
func (g *detectionGuard) Peek(int) Word     { return g.shadow.Load() }
func (g *detectionGuard) Metrics() Metrics  { return g.m.snapshot() }

type detectionHandle struct {
	g    *detectionGuard
	h    core.Handle
	lane int // metrics stripe, shmem.StripeFor(pid)
}

func (h *detectionHandle) Load() (Word, bool) {
	v, dirty := h.h.DRead()
	if dirty {
		h.g.m.addDirty(h.lane)
	}
	return v, dirty
}

func (h *detectionHandle) Commit(Word) bool {
	panic("guard: detection-only guard cannot Commit; use an LL/SC-backed detector (Figure 5)")
}

func (h *detectionHandle) Validate() bool {
	// Destructive: the DRead consumes the dirty signal and re-arms
	// detection, so the write it observed is counted here — a following
	// Load reports clean and must not be the only place DirtyLoads grows.
	_, dirty := h.h.DRead()
	if dirty {
		h.g.m.addDirty(h.lane)
	}
	return !dirty
}

func (h *detectionHandle) Store(v Word) {
	h.h.DWrite(v)
	h.g.shadow.Store(v) // Peek bookkeeping, not a model step
}
