package guard

import (
	"fmt"

	"abadetect/internal/shmem"
)

// This file is the read side of the protection ladder: a seqlock-style
// consistent-read protocol over any Guard, and a SeqGuard wrapper that makes
// it exact even over the raw regime.
//
// The protocol is the paper's detection semantics run backwards.  A
// detecting register's DRead reports whether any write linearized since the
// reader's previous DRead; a seqlock reader asks the same question around a
// multi-word read: "did any write land between my two fences?"  For the
// detector regime the answer is literally DRead's dirty bit (Load arms,
// Validate checks VL), so ReadConsistent over a Detector guard IS the
// paper's Figure 5 used as a seqlock — no extra base objects, detection
// exact.  LL/SC answers through VL, tagged through the packed tag word, and
// raw only through value comparison, which is the §1 blindness: a read
// "validated" by an equal word may span a remove–recycle–reinsert cycle.
// SeqGuard closes exactly that gap with two unbounded write counters.

// ReadConsistent performs one seqlock-consistent read through h: it Loads
// the guarded reference, runs read(v) — the caller's dependent loads of
// whatever v names — and accepts the result only if Validate still holds,
// i.e. no write the regime can distinguish landed between the two fence
// points.  On a torn read it retries with a fresh Load.
//
// The read is wait-free for the reader and write-free for the memory
// system: Load and Validate on every conditional regime are pure shared
// reads (the detector's VL included), so readers never take a hazard slot,
// bump a tag, or invalidate a writer's cache line.  maxRetries bounds the
// retry loop (0 means retry forever, the lock-free default); clean=false
// reports an exhausted budget, and the last loaded v is returned for the
// caller's fallback path.
//
// read may be nil when the reference value itself is the whole payload — a
// single Load is trivially consistent, but the Validate still tells the
// caller the value was not mid-cycle, and on a detection-only guard it
// consumes the dirty signal the way the busy-wait scenario expects.
func ReadConsistent(h Handle, maxRetries int, read func(v Word)) (v Word, clean bool) {
	for attempt := 1; ; attempt++ {
		v, _ = h.Load()
		if read != nil {
			read(v)
		}
		if h.Validate() {
			return v, true
		}
		if maxRetries > 0 && attempt >= maxRetries {
			return v, false
		}
	}
}

// seqGuard wraps an inner guard with a two-counter seqlock: writeBegin is
// bumped before every commit attempt and writeEnd after it, so a reader
// that saw writeEnd = e before its Load and sees writeBegin = e at Validate
// knows no write was in flight anywhere inside its window.
//
// One even/odd version word — the classic single-writer seqlock — is NOT
// sound here: with two concurrent writers A and B, a reader can catch the
// word at B's pre-commit bump on both fences while A's commit lands inside
// the window.  Two monotone counters close that interleaving: every write
// begun by the Validate fence but not completed by the Load fence leaves
// begin > loadEnd, whatever order the bumps interleave in.
//
// The counters are base objects from the structure's factory (CAS words,
// bumped by a CAS loop), so the wrapper stays on the substrate and its cost
// is honest in the model: writes pay O(1) expected extra steps, reads pay
// exactly two extra shared reads — and the counter pair is the folklore
// "unbounded sequence number" scheme of §1, m(n) = 2 unbounded words,
// which is precisely the space the paper's bounded detectors avoid.
type seqGuard struct {
	inner Guard
	begin shmem.WritableCAS // writes begun (bumped before the inner commit)
	end   shmem.WritableCAS // writes completed (bumped after it)
	m     metrics           // seq-layer detections, on top of inner's
}

// NewSeq wraps inner with the seqlock write counters allocated from f.
// The wrapped guard has inner's regime and semantics for Commit and Store;
// its Load/Validate additionally detect — exactly — any completed write
// inside the handle's window, which upgrades a raw guard's value-blind
// Validate to a true torn-read fence (ABA cycles included: a cycle is two
// completed writes, and the counters never travel backwards).  Commit
// itself stays as foolable as inner's: the wrapper is a read protocol, not
// a write protocol, so raw stays the §1 victim on the write path.
func NewSeq(inner Guard, f shmem.Factory, name string) (Guard, error) {
	if inner == nil {
		return nil, fmt.Errorf("guard: seq wrapper needs a non-nil inner guard")
	}
	if f == nil {
		return nil, fmt.Errorf("guard: seq wrapper needs a factory for its version counters")
	}
	return &seqGuard{
		inner: inner,
		begin: f.NewCAS(name+".seqbegin", 0),
		end:   f.NewCAS(name+".seqend", 0),
		m:     newMetrics(),
	}, nil
}

func (g *seqGuard) Handle(pid int) (Handle, error) {
	ih, err := g.inner.Handle(pid)
	if err != nil {
		return nil, err
	}
	return &seqHandle{g: g, inner: ih, pid: pid, lane: shmem.StripeFor(pid)}, nil
}

func (g *seqGuard) NumProcs() int     { return g.inner.NumProcs() }
func (g *seqGuard) Regime() Regime    { return g.inner.Regime() }
func (g *seqGuard) Conditional() bool { return g.inner.Conditional() }
func (g *seqGuard) Peek(pid int) Word { return g.inner.Peek(pid) }

// Metrics reports the inner guard's counters plus the seq layer's own:
// DirtyLoads grown by every version movement the inner regime missed.
func (g *seqGuard) Metrics() Metrics { return g.inner.Metrics().Add(g.m.snapshot()) }

type seqHandle struct {
	g     *seqGuard
	inner Handle
	pid   int
	lane  int // metrics stripe, shmem.StripeFor(pid)

	loadEnd Word // end counter as read before the last Load
	loaded  bool
}

// Load reads the end counter, then the inner reference.  A moved counter
// since this handle's previous Load is a completed write — reported dirty
// even when the inner regime (raw after a full cycle) sees an equal word.
func (h *seqHandle) Load() (Word, bool) {
	e := h.g.end.Read(h.pid)
	v, dirty := h.inner.Load()
	if !dirty && h.loaded && e != h.loadEnd {
		dirty = true
		h.g.m.addDirty(h.lane)
	}
	h.loadEnd, h.loaded = e, true
	return v, dirty
}

// Validate passes only if the inner regime sees no change AND no write
// completed — or is in flight — since the Load fence: writeBegin must equal
// the end count captured there.  Any write begun before Validate but not
// completed before Load leaves begin > loadEnd (counters are monotone), so
// the check is exact for completed writes; a failed commit attempt also
// bumps both counters and merely forces a spurious retry.
func (h *seqHandle) Validate() bool {
	if !h.inner.Validate() {
		return false
	}
	if h.g.begin.Read(h.pid) != h.loadEnd {
		h.g.m.addDirty(h.lane) // torn read the inner regime did not flag
		return false
	}
	return true
}

// Commit bumps begin, runs the inner commit, and bumps end — on either
// outcome, so readers comparing begin to a pre-Load end count can never be
// stranded behind a failed attempt's begin bump.
func (h *seqHandle) Commit(v Word) bool {
	h.bump(h.g.begin)
	ok := h.inner.Commit(v)
	h.bump(h.g.end)
	return ok
}

// Store is a write like any other: counted, so readers see it.
func (h *seqHandle) Store(v Word) {
	h.bump(h.g.begin)
	h.inner.Store(v)
	h.bump(h.g.end)
}

// bump is a CAS-loop fetch-increment: the substrate has no fetch-and-add
// base object, and the counters must stay in the model.
func (h *seqHandle) bump(c shmem.WritableCAS) {
	for {
		w := c.Read(h.pid)
		if c.CompareAndSwap(h.pid, w, w+1) {
			return
		}
	}
}
