package guard

import (
	"testing"

	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// TestTracedGuardEvents drives a traced tagged guard through a load/commit/
// near-miss script and checks the ring carries the right vocabulary.
func TestTracedGuardEvents(t *testing.T) {
	rec := trace.New(2, 32)
	mk := TracedMaker(NewMaker(shmem.NewNativeFactory(), 2, Tagged, 8), rec)
	g, err := mk("head", 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := g.Handle(0)
	adversary, _ := g.Handle(1)

	if v, _ := victim.Load(); v != 5 {
		t.Fatalf("load: got %d", v)
	}
	// Adversary cycles the value away and back: same value, bumped tag.
	adversary.Store(9)
	adversary.Store(5)
	if victim.Commit(7) {
		t.Fatal("stale commit succeeded on a tagged guard")
	}

	evs := rec.Events(0)
	if len(evs) != 2 {
		t.Fatalf("victim ring: got %d events, want 2: %v", len(evs), evs)
	}
	if evs[0].Kind != trace.KindGuardLoad || evs[0].A != 5 || evs[0].Obj != "head" {
		t.Fatalf("event 0: %v, want clean load of 5 on head", evs[0])
	}
	if evs[1].Kind != trace.KindGuardNearMiss || evs[1].A != 7 {
		t.Fatalf("event 1: %v, want near-miss attempting 7", evs[1])
	}

	// The traced wrapper must not distort the underlying audit counters.
	m := g.Metrics()
	if m.Rejected != 1 || m.NearMisses != 1 {
		t.Fatalf("metrics through wrapper: %v", m)
	}
	if g.Regime() != Tagged || !g.Conditional() {
		t.Fatal("wrapper does not delegate Regime/Conditional")
	}
}

// TestTracedGuardDirtyLoad checks the dirty-load classification: a reload
// after interference records KindGuardDirtyLoad instead of KindGuardLoad.
func TestTracedGuardDirtyLoad(t *testing.T) {
	rec := trace.New(2, 32)
	mk := TracedMaker(NewMaker(shmem.NewNativeFactory(), 2, Raw, 0), rec)
	g, err := mk("x", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := g.Handle(0)
	h1, _ := g.Handle(1)
	h0.Load()
	h1.Store(2)
	h0.Load()

	evs := rec.Events(0)
	if len(evs) != 2 || evs[0].Kind != trace.KindGuardLoad || evs[1].Kind != trace.KindGuardDirtyLoad {
		t.Fatalf("events: %v, want clean load then dirty load", evs)
	}
}

// TestTracedMakerNil pins the off-switch: a nil recorder returns the maker
// unwrapped, so tracing-off configurations carry no wrapper at all.
func TestTracedMakerNil(t *testing.T) {
	mk := NewMaker(shmem.NewNativeFactory(), 1, Raw, 0)
	g, err := TracedMaker(mk, nil)("x", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.(*tracedGuard); ok {
		t.Fatal("nil recorder still wrapped the guard")
	}
}

// TestTracedGuardAllocs pins tracing-on guard steps at zero heap allocs.
func TestTracedGuardAllocs(t *testing.T) {
	rec := trace.New(1, 64)
	mk := TracedMaker(NewMaker(shmem.NewNativeFactory(), 1, Tagged, 8), rec)
	g, err := mk("head", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := g.Handle(0)
	if got := testing.AllocsPerRun(200, func() {
		v, _ := h.Load()
		h.Commit(v + 1)
	}); got != 0 {
		t.Fatalf("traced load+commit allocates: %v allocs/op, want 0", got)
	}
}
