package guard

import (
	"abadetect/internal/trace"
)

// TracedMaker wraps mk so every guard it builds records its Load/Commit
// traffic into rec.  The wrapper exists only when tracing is on: the
// untraced configuration calls mk directly, so "tracing off" costs not even
// a branch on the hot path.  With tracing on the cost is one ring write per
// guard step — the number E17 prices.
func TracedMaker(mk Maker, rec *trace.Recorder) Maker {
	if rec == nil {
		return mk
	}
	return func(name string, valueBits uint, init Word) (Guard, error) {
		g, err := mk(name, valueBits, init)
		if err != nil {
			return nil, err
		}
		return &tracedGuard{Guard: g, rec: rec, name: name}, nil
	}
}

// tracedGuard decorates a Guard: every handle it vends records events into
// the owning pid's ring.  Audit accessors (Regime, Metrics, Peek, ...)
// delegate untouched.
type tracedGuard struct {
	Guard
	rec  *trace.Recorder
	name string
}

func (g *tracedGuard) Handle(pid int) (Handle, error) {
	h, err := g.Guard.Handle(pid)
	if err != nil {
		return nil, err
	}
	// The ring is cached here, once, so the per-event path never hashes a
	// pid.  Out-of-range pids (observer handles) get a nil ring, which
	// Record treats as a no-op.
	return &tracedHandle{g: g, h: h, ring: g.rec.Ring(pid)}, nil
}

type tracedHandle struct {
	g    *tracedGuard
	h    Handle
	ring *trace.Ring
	last Word // last loaded value, for the near-miss classification
}

func (h *tracedHandle) Load() (Word, bool) {
	v, dirty := h.h.Load()
	h.last = v
	if dirty {
		h.ring.Record(trace.KindGuardDirtyLoad, h.g.name, uint64(v), 0)
	} else {
		h.ring.Record(trace.KindGuardLoad, h.g.name, uint64(v), 0)
	}
	return v, dirty
}

func (h *tracedHandle) Commit(v Word) bool {
	if h.h.Commit(v) {
		h.ring.Record(trace.KindGuardCommit, h.g.name, uint64(v), 0)
		return true
	}
	// Classify the rejection the way the regimes' own near-miss counters
	// do: an observer read comparing equal to the loaded value means the
	// value cycled back and the regime caught it.  (A raw guard can never
	// land here with an equal value — its CAS would have succeeded — so raw
	// rejections always trace as plain rejects.)
	if cur := h.g.Peek(-1); cur == h.last {
		h.ring.Record(trace.KindGuardNearMiss, h.g.name, uint64(v), uint64(cur))
	} else {
		h.ring.Record(trace.KindGuardReject, h.g.name, uint64(v), uint64(cur))
	}
	return false
}

func (h *tracedHandle) Validate() bool { return h.h.Validate() }

func (h *tracedHandle) Store(v Word) { h.h.Store(v) }
