package guard

import (
	"testing"

	"abadetect/internal/shmem"
)

// mkRegime builds one guard of the given regime over the native substrate.
func mkRegime(t *testing.T, r Regime, init Word) Guard {
	t.Helper()
	g, err := NewMaker(shmem.NewNativeFactory(), 2, r, 16)("g", 16, init)
	if err != nil {
		t.Fatalf("building %s guard: %v", r, err)
	}
	return g
}

// cycle runs a full A→B→A write cycle through w, restoring the initial
// value — the §1 shape that fools value comparison.
func cycle(t *testing.T, w Handle, a, b Word) {
	t.Helper()
	for _, v := range []Word{b, a} {
		w.Load()
		if !w.Commit(v) {
			t.Fatalf("uncontended commit of %d failed", v)
		}
	}
}

// TestReadConsistentTornRead injects a completed write cycle inside the
// reader's window and checks each regime's verdict: the sound regimes
// (tagged, LL/SC, detector) force a retry and finish clean on the second
// attempt, while raw validates the torn read — the §1 blindness the
// SeqGuard wrapper exists to close.
func TestReadConsistentTornRead(t *testing.T) {
	for _, r := range []Regime{Tagged, LLSC, Detector} {
		g := mkRegime(t, r, 5)
		reader, _ := g.Handle(0)
		writer, _ := g.Handle(1)
		attempts := 0
		v, clean := ReadConsistent(reader, 0, func(Word) {
			attempts++
			if attempts == 1 {
				cycle(t, writer, 5, 7)
			}
		})
		if !clean || v != 5 {
			t.Errorf("%s: ReadConsistent = (%d, %v), want a clean 5", r, v, clean)
		}
		if attempts != 2 {
			t.Errorf("%s: %d attempts, want 2 (one torn, one clean)", r, attempts)
		}
	}

	// Raw alone accepts the cycle in one attempt: value-blind validation.
	g := mkRegime(t, Raw, 5)
	reader, _ := g.Handle(0)
	writer, _ := g.Handle(1)
	attempts := 0
	_, clean := ReadConsistent(reader, 0, func(Word) {
		attempts++
		if attempts == 1 {
			cycle(t, writer, 5, 7)
		}
	})
	if !clean || attempts != 1 {
		t.Fatalf("raw: attempts=%d clean=%v, want the documented single fooled attempt", attempts, clean)
	}
}

// TestSeqGuardCatchesRawCycle wraps the raw guard with the seqlock counters
// and re-runs the cycle: the version fence must catch what value comparison
// cannot, and the following Load must report the interference as dirty.
func TestSeqGuardCatchesRawCycle(t *testing.T) {
	f := shmem.NewNativeFactory()
	inner, err := NewRaw(f, 2, "g", 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewSeq(inner, f, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g.Regime() != Raw || !g.Conditional() {
		t.Fatalf("seq wrapper must delegate regime (%s) and conditionality", g.Regime())
	}
	reader, _ := g.Handle(0)
	writer, _ := g.Handle(1)

	attempts := 0
	v, clean := ReadConsistent(reader, 0, func(Word) {
		attempts++
		if attempts == 1 {
			cycle(t, writer, 5, 7)
		}
	})
	if !clean || v != 5 || attempts != 2 {
		t.Fatalf("seq(raw): v=%d clean=%v attempts=%d, want a retry then a clean 5", v, clean, attempts)
	}
	if d := g.Metrics().DirtyLoads; d < 1 {
		t.Fatalf("seq layer recorded %d dirty loads, want ≥ 1 for the caught cycle", d)
	}
	if got := g.Peek(-1); got != 5 {
		t.Fatalf("Peek = %d, want 5", got)
	}
}

// TestSeqGuardDirtyLoadAcrossLoads checks the detecting-register semantics
// of the wrapper: a write completed between two Loads is reported by the
// second Load's dirty flag even when the value cycled back.
func TestSeqGuardDirtyLoadAcrossLoads(t *testing.T) {
	f := shmem.NewNativeFactory()
	inner, _ := NewRaw(f, 2, "g", 5)
	g, _ := NewSeq(inner, f, "g")
	reader, _ := g.Handle(0)
	writer, _ := g.Handle(1)

	if _, dirty := reader.Load(); dirty {
		t.Fatal("first Load must be clean")
	}
	cycle(t, writer, 5, 9)
	v, dirty := reader.Load()
	if v != 5 || !dirty {
		t.Fatalf("Load after a restored cycle = (%d, dirty=%v), want (5, true)", v, dirty)
	}
	if _, dirty := reader.Load(); dirty {
		t.Fatal("quiescent re-Load must be clean again")
	}
}

// TestSeqGuardFailedCommitForcesRetryOnly checks the failure mode of the
// always-bump protocol: a writer's failed commit inside a reader's window
// costs the reader one spurious retry, never a stuck validate.
func TestSeqGuardFailedCommitForcesRetryOnly(t *testing.T) {
	f := shmem.NewNativeFactory()
	inner, _ := NewRaw(f, 3, "g", 5)
	g, _ := NewSeq(inner, f, "g")
	reader, _ := g.Handle(0)
	w1, _ := g.Handle(1)
	w2, _ := g.Handle(2)

	reader.Load()
	// Arm w1 with a snapshot, let w2 win, then fail w1's commit inside the
	// reader's window.
	w1.Load()
	w2.Load()
	if !w2.Commit(8) {
		t.Fatal("w2 commit failed")
	}
	if w1.Commit(9) {
		t.Fatal("w1's stale commit must fail")
	}
	if reader.Validate() {
		t.Fatal("a completed write (w2) inside the window must invalidate")
	}
	// The reader recovers immediately: re-Load, quiescent Validate passes.
	reader.Load()
	if !reader.Validate() {
		t.Fatal("quiescent Validate must pass — failed commits cannot strand readers")
	}
}

// TestReadConsistentBudget exhausts the retry budget under a perpetual
// writer and checks the clean=false fallback contract.
func TestReadConsistentBudget(t *testing.T) {
	g := mkRegime(t, Detector, 1)
	reader, _ := g.Handle(0)
	writer, _ := g.Handle(1)
	attempts := 0
	_, clean := ReadConsistent(reader, 3, func(Word) {
		attempts++
		cycle(t, writer, 1, 2)
	})
	if clean || attempts != 3 {
		t.Fatalf("attempts=%d clean=%v, want exactly 3 torn attempts and a false", attempts, clean)
	}
}
