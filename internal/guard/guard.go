// Package guard unifies the ABA protection regimes of the paper's §1 behind
// one interface: a Guard protects a single mutable reference (a node index,
// a flag, a free-list head) and exposes exactly the three capabilities the
// motivating applications need —
//
//   - Load: read the reference and arm the guard for this process;
//   - Commit: conditionally swing the reference, succeeding only if it is
//     unchanged *in the regime's sense* since this handle's last Load;
//   - Validate: check, without writing, that the reference is unchanged in
//     the regime's sense since the last Load.
//
// The four regimes are the paper's protection ladder, executable:
//
//   - Raw (NewRaw): bare CAS on the reference word.  "Unchanged" means
//     "equal", so a remove–recycle–reinsert cycle that restores the word is
//     invisible — the ABA problem.
//   - Tagged (NewTagged): a k-bit wrap-around tag packed beside the value,
//     bumped on every write.  Safe until exactly 2^k writes land inside a
//     victim's window, then fooled — the folklore scheme Theorem 1(a)
//     refutes as a general solution.
//   - LLSC (NewLLSC): the reference lives in an LL/SC/VL object.  A stale
//     Commit fails by specification no matter how the value cycled.
//   - Detector (NewDetected / NewDetectionOnly): the reference lives behind
//     an ABA-detecting register view.  NewDetected pairs the paper's
//     Figure 5 composition with the underlying LL/SC object, so Load is a
//     DRead (it additionally reports whether any write linearized since the
//     handle's previous Load), Commit is the underlying SC, and the guard
//     counts every detected-and-prevented ABA.  NewDetectionOnly wraps any
//     core.Detector (including the register-only Figure 4); it detects but
//     cannot Commit, which is exactly the capability split the paper's
//     busy-wait scenario needs and its lock-free structures do not tolerate
//     (Conditional reports which side of the split a guard is on).
//
// Every guard aggregates Metrics across its handles: commits, rejected
// commits, near-misses (a rejected commit whose reference value compared
// equal — an ABA the regime caught; a raw guard can never record one,
// because for it an equal value means the commit succeeds), and dirty loads.
//
// Guards allocate their base objects from a shmem.Factory, so the same
// guarded structure runs on the native, slab, padded, instrumented, and
// simulator substrates unchanged.
package guard

import (
	"fmt"
	"sync/atomic"

	"abadetect/internal/shmem"
)

// Word is the value type of guarded references.
type Word = shmem.Word

// Regime names a protection scheme.
type Regime int

// Protection regimes, the paper's §1 ladder.
const (
	// Raw is a bare CAS on the reference: vulnerable to ABA.
	Raw Regime = iota + 1
	// Tagged packs a k-bit wrap-around tag next to the reference:
	// vulnerable exactly when the tag wraps inside a victim's window.
	Tagged
	// LLSC keeps the reference in an LL/SC/VL object: immune by
	// specification.
	LLSC
	// Detector keeps the reference behind an ABA-detecting register view:
	// every write since a handle's last Load is reported, and (when the view
	// is the Figure 5 pairing over LL/SC) stale commits are rejected.
	Detector
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case Raw:
		return "raw-cas"
	case Tagged:
		return "tagged-cas"
	case LLSC:
		return "ll/sc"
	case Detector:
		return "detector"
	default:
		return "unknown"
	}
}

// Metrics aggregates a guard's audit counters across all of its handles.
// The counters live outside the paper's shared-memory model (they are
// instrumentation, not base objects).
type Metrics struct {
	// Commits is the number of successful Commit calls.
	Commits int64
	// Rejected is the number of failed Commit calls.
	Rejected int64
	// NearMisses is the number of rejected commits whose reference value
	// compared equal to the handle's loaded value: an ABA the regime
	// detected and prevented.  A raw guard records none by construction —
	// when the value compares equal, its CAS succeeds; that structural zero
	// is the vulnerability.
	NearMisses int64
	// DirtyLoads is the number of Loads that reported interference since
	// the handle's previous Load — plus, on a detection-only guard, each
	// Validate that consumed a detected write (its DRead is destructive,
	// so the following Load reports clean and would never count it).
	DirtyLoads int64
}

// metrics is the shared atomic backing of Metrics, sharded across
// cache-line padded stripes (shmem.Stripes of them) so the hot-path bumps of
// distinct workers never contend on one atomic word: on a read-mostly
// workload the metrics of a popular guard would otherwise be the one shared
// write left on the clean path.  Handles cache their stripe
// (shmem.StripeFor(pid)) at construction, so no bump pays a pid hash.
//
// The zero value is not usable; constructors call newMetrics.
type metrics struct {
	lanes []metricsLane
}

// metricsLane is one stripe's counters, padded to a whole cache line.
type metricsLane struct {
	commits    atomic.Int64
	rejected   atomic.Int64
	nearMisses atomic.Int64
	dirtyLoads atomic.Int64
	_          [shmem.CacheLineBytes - 32]byte
}

func newMetrics() metrics {
	return metrics{lanes: make([]metricsLane, shmem.Stripes())}
}

func (m *metrics) addCommit(lane int)   { m.lanes[lane].commits.Add(1) }
func (m *metrics) addRejected(lane int) { m.lanes[lane].rejected.Add(1) }
func (m *metrics) addNearMiss(lane int) { m.lanes[lane].nearMisses.Add(1) }
func (m *metrics) addDirty(lane int)    { m.lanes[lane].dirtyLoads.Add(1) }

// snapshot sums the lanes.  Each per-lane load is atomic, but the cross-lane
// sum is deliberately relaxed: under live traffic a bump can land in an
// already-summed lane while its logical partner (e.g. the Rejected half of a
// near-miss) lands in one still to come, so concurrent snapshots may be
// mid-operation — individual counters are never torn, and totals are only
// monotone per lane, not across the whole sum.  At quiescence (every handle
// parked) the sum is exact and two back-to-back snapshots are equal; a
// race-mode test at the repository root pins that contract.  Making the sum
// linearizable would put a lock or a global sequence word on the hot path —
// the exact cost the stripes exist to remove.
func (m *metrics) snapshot() Metrics {
	var out Metrics
	for i := range m.lanes {
		out.Commits += m.lanes[i].commits.Load()
		out.Rejected += m.lanes[i].rejected.Load()
		out.NearMisses += m.lanes[i].nearMisses.Load()
		out.DirtyLoads += m.lanes[i].dirtyLoads.Load()
	}
	return out
}

// Add returns the field-wise sum of two metrics snapshots (for aggregating
// the many guards of one structure).
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{
		Commits:    m.Commits + o.Commits,
		Rejected:   m.Rejected + o.Rejected,
		NearMisses: m.NearMisses + o.NearMisses,
		DirtyLoads: m.DirtyLoads + o.DirtyLoads,
	}
}

// String renders the counters.
func (m Metrics) String() string {
	return fmt.Sprintf("commits=%d rejected=%d nearMisses=%d dirtyLoads=%d",
		m.Commits, m.Rejected, m.NearMisses, m.DirtyLoads)
}

// Handle is a process's endpoint to a Guard.  A handle must be used by at
// most one goroutine at a time; distinct handles of one guard are safe to
// use concurrently.
type Handle interface {
	// Load returns the reference's current value and arms the guard.  dirty
	// reports whether the regime observed interference — a write it can
	// distinguish — since this handle's previous Load (false on the first
	// Load of a quiescent guard).  Raw and tagged guards under-report dirty
	// exactly when they are fooled; that asymmetry is the §1 story.
	Load() (v Word, dirty bool)
	// Commit writes v and reports success; it succeeds iff the reference is
	// unchanged, in the regime's sense, since this handle's last Load.
	// It panics on a detection-only guard (Conditional() == false).
	Commit(v Word) bool
	// Validate reports whether the reference is unchanged, in the regime's
	// sense, since this handle's last Load.  On detection-only guards it is
	// a destructive read: it re-arms detection at the current state.
	Validate() bool
	// Store unconditionally writes v (retrying internally where the regime
	// requires a conditional primitive).
	Store(v Word)
}

// Guard is a protected mutable reference shared by n processes.
type Guard interface {
	// Handle returns the endpoint for process pid in [0, n).
	Handle(pid int) (Handle, error)
	// NumProcs returns n.
	NumProcs() int
	// Regime names the protection scheme.
	Regime() Regime
	// Conditional reports whether Commit is supported.  Detection-only
	// guards (NewDetectionOnly) return false; they can Store and detect
	// but cannot conditionally swing, so lock-free structures must reject
	// them at construction.
	Conditional() bool
	// Peek reads the reference as the observer (no scheduled step under the
	// simulator); it is for audits and experiments, not algorithm code.
	Peek(pid int) Word
	// Metrics returns the aggregated audit counters.
	Metrics() Metrics
}

// Maker allocates guards.  A structure takes one Maker and calls it once per
// mutable reference (head, tail, next pointers, free-list head), so every
// reference of the structure is protected by the same regime over the same
// substrate.  valueBits bounds the reference's value domain.
type Maker func(name string, valueBits uint, init Word) (Guard, error)

// NewMaker returns the Maker realizing regime with this package's default
// constructions over f: raw CAS, a tagBits-wide tag, Figure 3 LL/SC, or the
// Figure 5 detector pairing over Figure 3.  The registry offers a richer,
// implementation-selecting maker (registry.NewGuardMaker); this one exists
// so internal/apps can build default-protected structures without importing
// the registry.
func NewMaker(f shmem.Factory, n int, regime Regime, tagBits uint) Maker {
	return func(name string, valueBits uint, init Word) (Guard, error) {
		switch regime {
		case Raw:
			return NewRaw(f, n, name, init)
		case Tagged:
			return NewTagged(f, n, name, valueBits, tagBits, init)
		case LLSC:
			obj, err := llscNewCASBased(f, n, valueBits, init)
			if err != nil {
				return nil, err
			}
			return NewLLSC(obj)
		case Detector:
			obj, err := llscNewCASBased(f, n, valueBits, init)
			if err != nil {
				return nil, err
			}
			return NewDetected(obj)
		default:
			return nil, fmt.Errorf("guard: unknown regime %d", regime)
		}
	}
}

func checkPid(pid, n int) error {
	if pid < 0 || pid >= n {
		return fmt.Errorf("guard: pid %d out of range [0,%d)", pid, n)
	}
	return nil
}
