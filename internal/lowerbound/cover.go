package lowerbound

import (
	"sort"

	"abadetect/internal/machine"
)

// Cover describes which processes are poised to modify which object in a
// configuration — the vocabulary of the paper's covering arguments.
//
//   - WCov(C, R): processes poised to Write object R (Lemma 2/3).
//   - CCov(C, R): processes poised to CAS object R.
//
// Lemma 3(iii) states that for a wait-free implementation with step
// complexity t, the adversary can reach configurations where up to t
// processes cover each object; conversely no configuration ever needs more
// than that for the bound.  The experiments audit these sets on real
// configurations of the paper's algorithms.
type Cover struct {
	// Writers maps object index to the pids poised to Write it.
	Writers map[int][]int
	// CASers maps object index to the pids poised to CAS it.
	CASers map[int][]int
}

// CoverOf computes the cover sets of a configuration.
func CoverOf(c *machine.Config) Cover {
	cov := Cover{Writers: map[int][]int{}, CASers: map[int][]int{}}
	for pid, p := range c.Progs {
		op := p.Poised()
		switch op.Kind {
		case machine.OpWrite:
			cov.Writers[op.Obj] = append(cov.Writers[op.Obj], pid)
		case machine.OpCAS:
			cov.CASers[op.Obj] = append(cov.CASers[op.Obj], pid)
		case machine.OpRead:
			// reads cover nothing
		}
	}
	for _, s := range cov.Writers {
		sort.Ints(s)
	}
	for _, s := range cov.CASers {
		sort.Ints(s)
	}
	return cov
}

// MaxCover returns the largest |WCov| and |CCov| over all objects.
func (c Cover) MaxCover() (maxW, maxC int) {
	for _, s := range c.Writers {
		if len(s) > maxW {
			maxW = len(s)
		}
	}
	for _, s := range c.CASers {
		if len(s) > maxC {
			maxC = len(s)
		}
	}
	return maxW, maxC
}

// CoveredObjects returns the objects covered by at least one poised Write,
// the paper's "set R of covered registers".
func (c Cover) CoveredObjects() []int {
	objs := make([]int, 0, len(c.Writers))
	for obj := range c.Writers {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	return objs
}

// BlockWrite executes the paper's block-write: each process in pids takes
// exactly one step, which must be a poised Write, each to a distinct object.
// It returns the objects written, or false if the steps are not a block
// write (some process not poised to write, or a duplicate object).
func BlockWrite(c *machine.Config, pids []int) ([]int, bool) {
	seen := map[int]bool{}
	objs := make([]int, 0, len(pids))
	for _, pid := range pids {
		op := c.Progs[pid].Poised()
		if op.Kind != machine.OpWrite || seen[op.Obj] {
			return nil, false
		}
		seen[op.Obj] = true
		objs = append(objs, op.Obj)
	}
	for _, pid := range pids {
		c.Step(pid)
	}
	return objs, true
}

// MaxCoverSeen drives a configuration along a schedule and reports the
// largest write- and CAS-cover any object attains at any point — the
// empirical side of Lemma 3(iii).
func MaxCoverSeen(c *machine.Config, schedule []int) (maxW, maxC int) {
	cur := c.Clone()
	for _, pid := range schedule {
		w, cc := CoverOf(cur).MaxCover()
		if w > maxW {
			maxW = w
		}
		if cc > maxC {
			maxC = cc
		}
		cur.Step(pid)
	}
	w, cc := CoverOf(cur).MaxCover()
	if w > maxW {
		maxW = w
	}
	if cc > maxC {
		maxC = cc
	}
	return maxW, maxC
}
