package lowerbound

import (
	"errors"
	"fmt"

	"abadetect/internal/machine"
)

// Lemma1Result is the outcome of the constructive covering adversary.
type Lemma1Result struct {
	// Covered maps each recruited reader to the register it was left
	// covering (poised to write).  The paper's Lemma 1 grows this set to
	// k = n-1 for any correct implementation — materializing the m >= n-1
	// space bound.
	Covered map[int]int
	// Contradiction is non-nil if some reader completed its WeakRead
	// without covering a fresh register, and the writer's bounded registers
	// then repeated a configuration (the pigeonhole of Lemma 1): a clean
	// and a dirty configuration indistinguishable to that reader.
	Contradiction *Witness
	// PigeonholeWrites counts the writer's complete WeakWrites performed in
	// pigeonhole mode before the register configuration repeated.
	PigeonholeWrites int
}

// Lemma1Adversary runs the covering construction of the paper's Lemma 1
// (Figure 1) against a candidate implementation:
//
//   - readers are recruited one at a time and run solo; the moment a reader
//     is poised to write a register outside the covered set, it is frozen
//     there — the cover grows by one (the λ ≠ λ' case of the proof);
//   - if instead a reader finishes its WeakRead without covering anything
//     new, the adversary enters the pigeonhole phase (the λ = λ' case):
//     the writer performs complete WeakWrites; since the registers are
//     bounded, their contents must eventually repeat the post-read
//     configuration — producing a dirty configuration the frozen reader
//     cannot distinguish from its clean one, i.e. the Lemma 1 contradiction.
//
// Against the bounded-tag register (whose readers never write), the very
// first reader falls into the pigeonhole and the contradiction appears
// after exactly tagVals writes.  Against the paper's Figure 4, every reader
// covers its own announce register and the cover grows to n-1 distinct
// registers — the space lower bound made visible.
func Lemma1Adversary(init *machine.Config, writer int) (*Lemma1Result, error) {
	if init == nil {
		return nil, errors.New("lowerbound: nil initial configuration")
	}
	n := len(init.Progs)
	if writer < 0 || writer >= n {
		return nil, fmt.Errorf("lowerbound: writer %d out of range", writer)
	}
	cfg := init.Clone()
	res := &Lemma1Result{Covered: map[int]int{}}
	coveredRegs := map[int]bool{}

	// A schedule trace for reproducibility of the contradiction.
	var trace []int

	completeWrite := func() error {
		for steps := 0; ; steps++ {
			if steps > 100000 {
				return errors.New("lowerbound: writer's WeakWrite did not terminate")
			}
			comp := cfg.Step(writer)
			trace = append(trace, writer)
			if comp != nil {
				if comp.Method != machine.MethodWeakWrite {
					return fmt.Errorf("lowerbound: writer completed %q", comp.Method)
				}
				return nil
			}
		}
	}

	// Give the system one initial write so the first reads are non-trivial.
	if err := completeWrite(); err != nil {
		return nil, err
	}

	for q := 0; q < n; q++ {
		if q == writer {
			continue
		}
		covered := false
		for steps := 0; steps <= 100000; steps++ {
			op := cfg.Progs[q].Poised()
			if op.Kind == machine.OpWrite && !coveredRegs[op.Obj] {
				// λ ≠ λ': freeze q here; the cover grows.
				coveredRegs[op.Obj] = true
				res.Covered[q] = op.Obj
				covered = true
				break
			}
			comp := cfg.Step(q)
			trace = append(trace, q)
			if comp != nil && comp.Method == machine.MethodWeakRead {
				break
			}
		}
		if covered {
			continue
		}
		// λ = λ': q completed a WeakRead writing only covered registers.
		// Pigeonhole phase: q is idle, its view is fixed; every additional
		// complete WeakWrite leaves q's state untouched, and the bounded
		// registers must eventually repeat the current configuration.
		cleanMem := cfg.MemKey()
		cleanKey := cfg.Progs[q].Key()
		cleanTrace := append([]int(nil), trace...)
		const maxWrites = 1 << 20
		for w := 1; w <= maxWrites; w++ {
			if err := completeWrite(); err != nil {
				return nil, err
			}
			if cfg.MemKey() == cleanMem && cfg.Progs[q].Key() == cleanKey {
				// The dirty twin of the clean configuration.
				res.PigeonholeWrites = w
				flag, _, err := soloRead(cfg, q)
				if err != nil {
					return nil, err
				}
				res.Contradiction = &Witness{
					CleanSchedule: cleanTrace,
					DirtySchedule: append([]int(nil), trace...),
					SoloFlag:      flag,
					MemKey:        cleanMem,
				}
				return res, nil
			}
		}
		// Bounded registers did not repeat within the budget: give up on
		// this reader (can happen only for effectively unbounded systems).
		return res, nil
	}
	return res, nil
}
