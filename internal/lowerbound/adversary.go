package lowerbound

import (
	"errors"
	"fmt"

	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
	"abadetect/internal/sim"
)

// AdversaryResult reports one adversarial LL measurement.
type AdversaryResult struct {
	// N is the number of processes the object was built for.
	N int
	// VictimSteps is the number of shared-memory steps the victim's single
	// LL() took under the hiding adversary.
	VictimSteps int64
	// Objects is the implementation's space footprint m.
	Objects int
	// TimeSpaceProduct is m * VictimSteps, to compare against the paper's
	// (n-1)/2 <= m*t bound (Corollary 1).
	TimeSpaceProduct int64
}

// AdversarialLL runs the paper's Figure 2 "hiding" construction as a
// concrete schedule: a victim process executes a single LL() while an
// interfering process is scheduled to complete successful CAS steps between
// every two victim steps, so each of the victim's own CAS attempts fails.
//
// Against the Figure 3 object (one CAS, O(n) steps) this forces the victim
// to spend exactly 2n+1 steps — the worst case Theorem 2 allows and the
// Ω(n) the m·t >= (n-1)/2 trade-off demands at m = 1.  Against the
// constant-time announcement object the same adversary cannot stretch the
// LL beyond its constant bound: with m = n+1 objects, t need not grow.
func AdversarialLL(build func(f shmem.Factory, n int) (llsc.Object, error), n int) (*AdversaryResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("lowerbound: adversary needs n >= 2, got %d", n)
	}
	const victimValue = 1
	runner := sim.NewRunner(n)
	capture := &captureFactory{inner: runner.Factory()}
	counting := shmem.NewCounting(capture, n)
	obj, err := build(counting, n)
	if err != nil {
		runner.Close()
		return nil, err
	}
	if capture.firstCAS == nil {
		runner.Close()
		return nil, errors.New("lowerbound: implementation allocated no CAS object")
	}
	x := capture.firstCAS
	initialWord := x.Read(sim.Observer)

	victim := n - 1
	helper := 0

	// The victim performs exactly one LL.
	err = runner.SetProgram(victim, func(p *sim.Proc) {
		h, herr := obj.Handle(victim)
		if herr != nil {
			panic(herr)
		}
		h.LL()
	})
	if err != nil {
		runner.Close()
		return nil, err
	}
	// The helper performs successful SCs forever.
	err = runner.SetProgram(helper, func(p *sim.Proc) {
		h, herr := obj.Handle(helper)
		if herr != nil {
			panic(herr)
		}
		for i := 0; ; i++ {
			h.LL()
			h.SC(victimValue + shmem.Word(i%2))
		}
	})
	if err != nil {
		runner.Close()
		return nil, err
	}
	if err := runner.Start(); err != nil {
		runner.Close()
		return nil, err
	}
	defer runner.Close()

	// Setup: let the helper complete its first successful SC, so the
	// victim's LL starts with its bit set / link machinery armed.
	for i := 0; i < 64 && x.Read(sim.Observer) == initialWord; i++ {
		if err := runner.Step(helper); err != nil {
			return nil, err
		}
	}
	if x.Read(sim.Observer) == initialWord {
		return nil, errors.New("lowerbound: helper failed to perform a successful SC during setup")
	}

	// Hiding phase: after every victim step, run the helper until X has
	// actually changed.  (A fixed step count would not do: the helper's own
	// value/bit cycle can return X to the exact word the victim read — an
	// ABA against the adversary — letting the victim's CAS succeed.)
	maxInterference := 4*n + 10
	for !runner.Done(victim) {
		if err := runner.Step(victim); err != nil {
			return nil, err
		}
		if runner.Done(victim) {
			break
		}
		w := x.Read(sim.Observer)
		for i := 0; x.Read(sim.Observer) == w; i++ {
			if i > maxInterference {
				return nil, errors.New("lowerbound: helper failed to change X during interference")
			}
			if err := runner.Step(helper); err != nil {
				return nil, err
			}
		}
	}

	fp := capture.inner.Footprint()
	res := &AdversaryResult{
		N:           n,
		VictimSteps: counting.Steps(victim),
		Objects:     fp.Objects(),
	}
	res.TimeSpaceProduct = int64(res.Objects) * res.VictimSteps
	return res, nil
}

// captureFactory passes allocations through while remembering the first CAS
// object (the X of the implementations under test) for observer access.
type captureFactory struct {
	inner    shmem.Factory
	firstCAS shmem.WritableCAS
}

var _ shmem.Factory = (*captureFactory)(nil)

func (f *captureFactory) NewRegister(name string, init shmem.Word) shmem.Register {
	return f.inner.NewRegister(name, init)
}

func (f *captureFactory) NewCAS(name string, init shmem.Word) shmem.WritableCAS {
	c := f.inner.NewCAS(name, init)
	if f.firstCAS == nil {
		f.firstCAS = c
	}
	return c
}

func (f *captureFactory) Footprint() shmem.Footprint { return f.inner.Footprint() }
