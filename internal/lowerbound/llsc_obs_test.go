package lowerbound

import (
	"testing"

	"abadetect/internal/machine"
)

// Corollary 1 made executable: the Figure 5 reduction turns any LL/SC
// object into an ABA-detecting register, so the Observation-1 search
// applies to LL/SC implementations too.  A tag-based LL/SC from one bounded
// CAS word is refuted; the search cannot refute the unbounded variant.

func TestObs1RefutesBoundedTagLLSC(t *testing.T) {
	for _, tagVals := range []machine.Word{2, 4, 8} {
		g := Game{
			Init:   machine.LLSCTagSystem{TagVals: tagVals}.NewConfig(2),
			Writer: 0,
			Target: 1,
		}
		res, err := FindObservation1Violation(g, Options{MaxNodes: 200000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Witness == nil {
			t.Fatalf("tagVals=%d: bounded-tag LL/SC not refuted in %d nodes", tagVals, res.Nodes)
		}
		// The dirty schedule must contain a full wraparound: TagVals
		// complete writes at 2 steps each.
		if got, want := len(res.Witness.DirtySchedule), 2*int(tagVals); got < want {
			t.Errorf("tagVals=%d: dirty schedule of %d steps is shorter than a wraparound (%d)",
				tagVals, got, want)
		}
		// Witnesses replay.
		init := machine.LLSCTagSystem{TagVals: tagVals}.NewConfig(2)
		cleanFlag, err := ReplaySolo(init, res.Witness.CleanSchedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		dirtyFlag, err := ReplaySolo(init, res.Witness.DirtySchedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cleanFlag != dirtyFlag {
			t.Error("replayed flags differ")
		}
		t.Logf("tagVals=%d: refuted in %d nodes\n%s", tagVals, res.Nodes, res.Witness)
	}
}

func TestObs1LLSCWithMoreReaders(t *testing.T) {
	g := Game{
		Init:   machine.LLSCTagSystem{TagVals: 2}.NewConfig(3),
		Writer: 0,
		Target: 2,
	}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatalf("no witness in %d nodes", res.Nodes)
	}
}

func TestLemma1PigeonholesBoundedTagLLSC(t *testing.T) {
	// The constructive variant for LL/SC: the reader never writes, so the
	// pigeonhole fires after exactly TagVals writer cycles.
	cfg := machine.LLSCTagSystem{TagVals: 4}.NewConfig(2)
	res, err := Lemma1Adversary(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contradiction == nil {
		t.Fatal("no contradiction found")
	}
	if res.PigeonholeWrites != 4 {
		t.Errorf("pigeonhole after %d writes, want 4", res.PigeonholeWrites)
	}
}
