package lowerbound

import (
	"testing"

	"abadetect/internal/machine"
)

func TestLemma1PigeonholesBoundedTag(t *testing.T) {
	// The tag register's readers never write, so the very first recruited
	// reader completes its read without covering anything; the writer's
	// bounded register then repeats after exactly tagVals writes.
	for _, tagVals := range []machine.Word{2, 4, 8} {
		cfg := machine.TagSystem{TagVals: tagVals}.NewConfig(2)
		res, err := Lemma1Adversary(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Contradiction == nil {
			t.Fatalf("tagVals=%d: no contradiction found", tagVals)
		}
		if res.PigeonholeWrites != int(tagVals) {
			t.Errorf("tagVals=%d: pigeonhole after %d writes, want %d",
				tagVals, res.PigeonholeWrites, tagVals)
		}
		// Replay both schedules: the reader's solo read must return the
		// same flag from the clean and the dirty configuration.
		init := machine.TagSystem{TagVals: tagVals}.NewConfig(2)
		cleanFlag, err := ReplaySolo(init, res.Contradiction.CleanSchedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		dirtyFlag, err := ReplaySolo(init, res.Contradiction.DirtySchedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cleanFlag != dirtyFlag {
			t.Error("replayed flags differ — schedules are not indistinguishable")
		}
	}
}

func TestLemma1CoversFig4AnnounceRegisters(t *testing.T) {
	// Against Figure 4, every recruited reader ends up covering its own
	// announce register: the cover grows to n-1 distinct registers — the
	// m >= n-1 space bound materialized.  No contradiction appears.
	for _, n := range []int{2, 3, 5, 8} {
		cfg, err := machine.PaperFig4(n).NewConfig()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Lemma1Adversary(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Contradiction != nil {
			t.Fatalf("n=%d: Figure 4 'refuted' by Lemma 1 adversary?!", n)
		}
		if len(res.Covered) != n-1 {
			t.Fatalf("n=%d: covered %d registers, want n-1 = %d", n, len(res.Covered), n-1)
		}
		// Each reader covers a distinct register, and it is its own
		// announce slot (object index 1+pid in the Fig4 memory layout).
		seen := map[int]bool{}
		for q, obj := range res.Covered {
			if seen[obj] {
				t.Errorf("n=%d: register %d covered twice", n, obj)
			}
			seen[obj] = true
			if obj != 1+q {
				t.Errorf("n=%d: reader %d covers object %d, want its announce slot %d", n, q, obj, 1+q)
			}
		}
	}
}

func TestLemma1UnboundedEscapes(t *testing.T) {
	// The unbounded register's reader never covers anything AND the
	// register never repeats: the pigeonhole budget runs out with neither a
	// cover nor a contradiction — boundedness is essential to the lemma.
	cfg := machine.UnboundedSystem{}.NewConfig(2)
	res, err := Lemma1Adversary(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contradiction != nil {
		t.Fatal("unbounded register pigeonholed?!")
	}
	if len(res.Covered) != 0 {
		t.Fatalf("unbounded reader covered %v", res.Covered)
	}
}

func TestLemma1Validation(t *testing.T) {
	if _, err := Lemma1Adversary(nil, 0); err == nil {
		t.Error("want error for nil config")
	}
	cfg := machine.TagSystem{TagVals: 2}.NewConfig(2)
	if _, err := Lemma1Adversary(cfg, 9); err == nil {
		t.Error("want error for bad writer pid")
	}
}
