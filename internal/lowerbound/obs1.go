// Package lowerbound makes the paper's lower-bound arguments executable.
//
// Three artifacts are reproduced:
//
//   - obs1.go: Observation 1 as a model-checking search.  The paper's
//     Theorem 1 proofs construct two reachable configurations — one p-clean,
//     one p-dirty — that process p cannot distinguish, contradicting
//     correctness.  FindObservation1Violation explores the configuration
//     space of a candidate implementation (expressed as step machines,
//     package machine) breadth-first, tracking clean/dirty reachability
//     along paths, and either returns the exact witness pair with replayable
//     schedules, or reports that no witness exists within the explored
//     space.  Under-resourced implementations (the bounded-tag register, the
//     ablated Figure 4 variants) are refuted with concrete executions; the
//     paper's construction survives.
//
//   - cover.go: the covering-argument vocabulary of Lemmas 1-3 — which
//     processes are poised to write to (WCov) or CAS (CCov) which object,
//     and block writes — so tests can audit statement (iii) of Lemma 3
//     (at most t processes poised per object) on real configurations.
//
//   - adversary.go: the Figure 2 "hiding" adversary as a concrete schedule
//     against the Figure 3 LL/SC object: interleaving a victim's LL with
//     other processes' successful SCs forces the victim to spend Θ(n) steps,
//     demonstrating that the m·t = Ω(n) trade-off of Corollary 1 is tight at
//     m = 1.
package lowerbound

import (
	"errors"
	"fmt"
	"strings"

	"abadetect/internal/machine"
)

// Game configures the lower-bound game of the paper's §2: one process runs
// WeakWrite in a loop, the others run WeakRead, and we attack one reader.
type Game struct {
	// Init is the initial configuration (writer and readers as machines).
	Init *machine.Config
	// Writer is the pid of the WeakWrite looper (paper: process 0).
	Writer int
	// Target is the reader whose clean/dirty views we try to confuse.
	Target int
}

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of augmented states explored (0 = 200000).
	MaxNodes int
	// MaxDepth caps schedule length (0 = unlimited).
	MaxDepth int
}

// Witness is a concrete Observation-1 violation: two schedules leading to
// configurations that the target cannot distinguish, one clean (the target's
// next solo WeakRead must return false) and one dirty (it must return true).
// Because the configurations agree on all of shared memory and the target's
// state, the solo read returns the same flag in both — the contradiction.
type Witness struct {
	// CleanSchedule reaches the target-clean configuration from Init.
	CleanSchedule []int
	// DirtySchedule reaches the target-dirty configuration from Init.
	DirtySchedule []int
	// SoloFlag is the flag the target's solo WeakRead actually returns in
	// both configurations.
	SoloFlag bool
	// SoloSteps is the number of solo steps that read took.
	SoloSteps int
	// MemKey is the shared-memory content both configurations agree on.
	MemKey string
}

// String renders the witness.
func (w *Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observation-1 violation (indistinguishable clean/dirty configurations)\n")
	fmt.Fprintf(&b, "  clean schedule: %v  (solo WeakRead must return false)\n", w.CleanSchedule)
	fmt.Fprintf(&b, "  dirty schedule: %v  (solo WeakRead must return true)\n", w.DirtySchedule)
	fmt.Fprintf(&b, "  shared memory in both: [%s]\n", w.MemKey)
	fmt.Fprintf(&b, "  target's solo WeakRead returns %v in both -> one answer is wrong", w.SoloFlag)
	return b.String()
}

// SearchResult reports the outcome of the configuration-space search.
type SearchResult struct {
	// Witness is non-nil if a violation was found.
	Witness *Witness
	// Nodes is the number of augmented states explored.
	Nodes int
	// Exhausted is true if the entire reachable (bounded-depth) space was
	// covered without finding a witness.
	Exhausted bool
}

// pathFlags tracks clean/dirty reachability along one path (see the package
// comment of machine for the lazy-invocation convention).
type pathFlags struct {
	dirty     bool // a qualifying WeakWrite completed; no target read invoked since
	clean     bool // a qualifying target WeakRead completed; no writer step since
	wOK       bool // writer mid-write, invoked with target idle, target quiet since
	cleanCand bool // target mid-read, invoked with writer idle, writer quiet since
}

func (f pathFlags) key() uint8 {
	var k uint8
	if f.dirty {
		k |= 1
	}
	if f.clean {
		k |= 2
	}
	if f.wOK {
		k |= 4
	}
	if f.cleanCand {
		k |= 8
	}
	return k
}

// node is one augmented state of the BFS.
type node struct {
	cfg    *machine.Config
	flags  pathFlags
	parent int32
	pid    int16 // step taken from parent
	depth  int32
}

// FindObservation1Violation searches for a witness in the game's reachable
// configuration space.
func FindObservation1Violation(g Game, opts Options) (*SearchResult, error) {
	if g.Init == nil {
		return nil, errors.New("lowerbound: nil initial configuration")
	}
	n := len(g.Init.Progs)
	if g.Writer < 0 || g.Writer >= n || g.Target < 0 || g.Target >= n || g.Writer == g.Target {
		return nil, fmt.Errorf("lowerbound: invalid writer=%d target=%d for %d processes", g.Writer, g.Target, n)
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	type obsEntry struct {
		clean int32 // node index or -1
		dirty int32
	}

	nodes := []node{{cfg: g.Init.Clone(), parent: -1, pid: -1}}
	visited := map[string]bool{augKey(nodes[0]): true}
	obs := map[string]*obsEntry{}
	res := &SearchResult{}

	// register records node i under its indistinguishability class and
	// returns a witness pair when both polarities are present.
	register := func(i int32) (int32, int32, bool) {
		nd := nodes[i]
		if !nd.flags.clean && !nd.flags.dirty {
			return 0, 0, false
		}
		key := nd.cfg.MemKey() + "|" + nd.cfg.Progs[g.Target].Key()
		e := obs[key]
		if e == nil {
			e = &obsEntry{clean: -1, dirty: -1}
			obs[key] = e
		}
		if nd.flags.clean && e.clean < 0 {
			e.clean = i
		}
		if nd.flags.dirty && e.dirty < 0 {
			e.dirty = i
		}
		if e.clean >= 0 && e.dirty >= 0 {
			return e.clean, e.dirty, true
		}
		return 0, 0, false
	}

	if _, _, found := register(0); found {
		return nil, errors.New("lowerbound: initial configuration both clean and dirty (broken game)")
	}

	for head := 0; head < len(nodes); head++ {
		if len(nodes) > maxNodes {
			res.Nodes = len(nodes)
			return res, nil // budget exhausted, no witness
		}
		cur := nodes[head]
		if opts.MaxDepth > 0 && int(cur.depth) >= opts.MaxDepth {
			continue
		}
		for pid := 0; pid < n; pid++ {
			next := cur.cfg.Clone()
			targetIdle := cur.cfg.Progs[g.Target].AtBoundary()
			writerIdle := cur.cfg.Progs[g.Writer].AtBoundary()
			comp := next.Step(pid)

			f := cur.flags
			switch pid {
			case g.Writer:
				f.clean = false
				f.cleanCand = false
				if writerIdle { // this step invoked a new WeakWrite
					f.wOK = targetIdle
				}
				if comp != nil { // the WeakWrite completed
					if f.wOK {
						f.dirty = true
					}
					f.wOK = false
				}
			case g.Target:
				if targetIdle { // this step invoked a new WeakRead
					f.dirty = false
					f.wOK = false
					f.cleanCand = writerIdle
				}
				if comp != nil { // the WeakRead completed
					if f.cleanCand {
						f.clean = true
					}
					f.cleanCand = false
				}
			default:
				// Steps by other readers affect no flags.
			}

			nd := node{cfg: next, flags: f, parent: int32(head), pid: int16(pid), depth: cur.depth + 1}
			k := augKey(nd)
			if visited[k] {
				continue
			}
			visited[k] = true
			nodes = append(nodes, nd)
			i := int32(len(nodes) - 1)
			if ci, di, found := register(i); found {
				w, err := buildWitness(g, nodes, ci, di)
				if err != nil {
					return nil, err
				}
				res.Witness = w
				res.Nodes = len(nodes)
				return res, nil
			}
		}
	}
	res.Nodes = len(nodes)
	res.Exhausted = true
	return res, nil
}

func augKey(nd node) string {
	return fmt.Sprintf("%d;%s", nd.flags.key(), nd.cfg.Key())
}

// buildWitness reconstructs the two schedules and validates the solo run.
func buildWitness(g Game, nodes []node, cleanIdx, dirtyIdx int32) (*Witness, error) {
	scheduleOf := func(i int32) []int {
		var rev []int
		for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
			rev = append(rev, int(nodes[j].pid))
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	cleanFlag, stepsC, err := soloRead(nodes[cleanIdx].cfg, g.Target)
	if err != nil {
		return nil, err
	}
	dirtyFlag, _, err := soloRead(nodes[dirtyIdx].cfg, g.Target)
	if err != nil {
		return nil, err
	}
	if cleanFlag != dirtyFlag {
		// Should be impossible: the configurations are indistinguishable to
		// the target, and the solo run touches only shared memory and the
		// target's state.
		return nil, errors.New("lowerbound: solo runs diverged on indistinguishable configurations")
	}
	return &Witness{
		CleanSchedule: scheduleOf(cleanIdx),
		DirtySchedule: scheduleOf(dirtyIdx),
		SoloFlag:      cleanFlag,
		SoloSteps:     stepsC,
		MemKey:        nodes[cleanIdx].cfg.MemKey(),
	}, nil
}

// soloRead runs the target alone until it completes a WeakRead and returns
// the flag.
func soloRead(cfg *machine.Config, target int) (bool, int, error) {
	c := cfg.Clone()
	for steps := 1; steps <= 10000; steps++ {
		if comp := c.Step(target); comp != nil {
			if comp.Method != machine.MethodWeakRead {
				return false, 0, fmt.Errorf("lowerbound: target completed %q, want WeakRead", comp.Method)
			}
			return comp.Flag, steps, nil
		}
	}
	return false, 0, errors.New("lowerbound: target's solo WeakRead did not terminate (not solo-terminating)")
}

// ReplaySolo re-executes a witness schedule from a fresh configuration and
// returns the target's subsequent solo WeakRead flag; tests use it to
// confirm witnesses are genuinely replayable.
func ReplaySolo(init *machine.Config, schedule []int, target int) (bool, error) {
	c := init.Clone()
	for i, pid := range schedule {
		if pid < 0 || pid >= len(c.Progs) {
			return false, fmt.Errorf("lowerbound: schedule step %d has invalid pid %d", i, pid)
		}
		c.Step(pid)
	}
	flag, _, err := soloRead(c, target)
	return flag, err
}
