package lowerbound

import (
	"testing"

	"abadetect/internal/llsc"
	"abadetect/internal/machine"
	"abadetect/internal/shmem"
)

func TestObs1FindsTagWraparound(t *testing.T) {
	// One bounded register with a 2-value tag: Theorem 1(a) says this
	// cannot work for n=2, and the search produces the witness.
	for _, tagVals := range []machine.Word{2, 4} {
		g := Game{
			Init:   machine.TagSystem{TagVals: tagVals}.NewConfig(2),
			Writer: 0,
			Target: 1,
		}
		res, err := FindObservation1Violation(g, Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Witness == nil {
			t.Fatalf("tagVals=%d: no witness found in %d nodes", tagVals, res.Nodes)
		}
		w := res.Witness
		t.Logf("tagVals=%d nodes=%d\n%s", tagVals, res.Nodes, w)

		// Replay both schedules: the solo read must return the same flag,
		// although the specification demands different answers.
		init := machine.TagSystem{TagVals: tagVals}.NewConfig(2)
		cleanFlag, err := ReplaySolo(init, w.CleanSchedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		dirtyFlag, err := ReplaySolo(init, w.DirtySchedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cleanFlag != dirtyFlag || cleanFlag != w.SoloFlag {
			t.Errorf("replay flags clean=%v dirty=%v, witness says %v", cleanFlag, dirtyFlag, w.SoloFlag)
		}
	}
}

func TestObs1TagWithThreeProcs(t *testing.T) {
	g := Game{
		Init:   machine.TagSystem{TagVals: 2}.NewConfig(3),
		Writer: 0,
		Target: 2,
	}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatalf("no witness found in %d nodes", res.Nodes)
	}
}

func TestObs1UnboundedFindsNothing(t *testing.T) {
	// The unbounded-stamp register escapes the lower bound: the search can
	// exhaust its budget without ever finding indistinguishable clean/dirty
	// configurations (stored words never repeat).
	g := Game{
		Init:   machine.UnboundedSystem{}.NewConfig(2),
		Writer: 0,
		Target: 1,
	}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness != nil {
		t.Fatalf("unbounded register refuted?!\n%s", res.Witness)
	}
	if res.Exhausted {
		t.Log("note: unbounded system unexpectedly exhausted (finite budgeted walk)")
	}
}

func TestObs1PaperFig4Survives(t *testing.T) {
	// The paper's exact construction: no witness within the search budget.
	cfg, err := machine.PaperFig4(2).NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	g := Game{Init: cfg, Writer: 0, Target: 1}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 150000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness != nil {
		t.Fatalf("Figure 4 refuted?! This would be a bug in the implementation:\n%s", res.Witness)
	}
	t.Logf("no witness in %d nodes (exhausted=%v)", res.Nodes, res.Exhausted)
}

func TestObs1AblationShortUsedQ(t *testing.T) {
	// E8(a): shrink usedQ to 1 entry and pick sequence numbers eagerly; the
	// recycler hands a sequence number back while it is still announced.
	sys := machine.PaperFig4(2)
	sys.UsedLen = 1
	sys.PickSmallest = true
	cfg, err := sys.NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	g := Game{Init: cfg, Writer: 0, Target: 1}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatalf("ablated Fig4 (usedQ=1) not refuted in %d nodes", res.Nodes)
	}
	t.Logf("refuted in %d nodes:\n%s", res.Nodes, res.Witness)
}

func TestObs1AblationNoDoubleRead(t *testing.T) {
	// E8(b): skip the second read of X (lines 41, 46-49).  The reader can
	// no longer bridge the announce race, and the checker finds the miss.
	sys := machine.PaperFig4(2)
	sys.DoubleRead = false
	cfg, err := sys.NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	g := Game{Init: cfg, Writer: 0, Target: 1}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatalf("ablated Fig4 (no double read) not refuted in %d nodes", res.Nodes)
	}
	t.Logf("refuted in %d nodes:\n%s", res.Nodes, res.Witness)
}

func TestObs1AblationTinySeqDomain(t *testing.T) {
	// E8(c): shrink the sequence domain below 2n+2; the picker is forced to
	// reuse announced numbers.
	sys := machine.PaperFig4(2)
	sys.SeqVals = 3 // < 2n+2 = 6
	sys.PickSmallest = true
	cfg, err := sys.NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	g := Game{Init: cfg, Writer: 0, Target: 1}
	res, err := FindObservation1Violation(g, Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatalf("ablated Fig4 (seq domain 3) not refuted in %d nodes", res.Nodes)
	}
	t.Logf("refuted in %d nodes:\n%s", res.Nodes, res.Witness)
}

func TestObs1Validation(t *testing.T) {
	if _, err := FindObservation1Violation(Game{}, Options{}); err == nil {
		t.Error("want error for nil config")
	}
	cfg := machine.TagSystem{TagVals: 2}.NewConfig(2)
	if _, err := FindObservation1Violation(Game{Init: cfg, Writer: 0, Target: 0}, Options{}); err == nil {
		t.Error("want error for writer == target")
	}
	if _, err := FindObservation1Violation(Game{Init: cfg, Writer: 0, Target: 5}, Options{}); err == nil {
		t.Error("want error for out-of-range target")
	}
}

func TestCoverOf(t *testing.T) {
	cfg, err := machine.PaperFig4(2).NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	// Advance the writer to its X-write and the reader to its announce
	// write: both cover distinct registers.
	cfg.Step(0) // writer: GetSeq scan done, poised to write X (obj 0)
	cfg.Step(1)
	cfg.Step(1) // reader: poised to write A[1] (obj 2)
	cov := CoverOf(cfg)
	if got := cov.Writers[0]; len(got) != 1 || got[0] != 0 {
		t.Errorf("WCov(X) = %v, want [0]", got)
	}
	if got := cov.Writers[2]; len(got) != 1 || got[0] != 1 {
		t.Errorf("WCov(A[1]) = %v, want [1]", got)
	}
	maxW, maxC := cov.MaxCover()
	if maxW != 1 || maxC != 0 {
		t.Errorf("MaxCover = (%d,%d), want (1,0)", maxW, maxC)
	}
	if objs := cov.CoveredObjects(); len(objs) != 2 {
		t.Errorf("CoveredObjects = %v", objs)
	}
}

func TestBlockWrite(t *testing.T) {
	cfg, err := machine.PaperFig4(2).NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Step(0)
	cfg.Step(1)
	cfg.Step(1)
	// Writer covers X, reader covers A[1]: a block write to {X, A[1]}.
	cp := cfg.Clone()
	objs, ok := BlockWrite(cp, []int{0, 1})
	if !ok || len(objs) != 2 {
		t.Fatalf("BlockWrite failed: objs=%v ok=%v", objs, ok)
	}
	// A non-write-poised process breaks the block write.
	cp2 := cfg.Clone()
	cp2.Step(0) // writer completed its write; now poised to read
	if _, ok := BlockWrite(cp2, []int{0, 1}); ok {
		t.Error("BlockWrite should reject a process poised to read")
	}
}

func TestMaxCoverSeenFig4IsBounded(t *testing.T) {
	// Lemma 3(iii) flavor: under a long schedule, at most one process ever
	// covers any single register of Figure 4 with a pending write (writer
	// writes X, each reader writes only its own announce slot).
	cfg, err := machine.PaperFig4(3).NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	schedule := make([]int, 0, 3000)
	for i := 0; i < 1000; i++ {
		schedule = append(schedule, 0, 1+(i%2), (i*7)%3)
	}
	maxW, maxC := MaxCoverSeen(cfg, schedule)
	if maxW > 1 {
		t.Errorf("max write cover = %d, want <= 1", maxW)
	}
	if maxC != 0 {
		t.Errorf("max CAS cover = %d, want 0 (register-only algorithm)", maxC)
	}
}

func TestAdversarialLLForcesLinearStepsOnFig3(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		res, err := AdversarialLL(func(f shmem.Factory, n int) (llsc.Object, error) {
			return llsc.NewCASBased(f, n, 8, 0)
		}, n)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(2*n + 1)
		if res.VictimSteps != want {
			t.Errorf("n=%d: victim steps = %d, want %d", n, res.VictimSteps, want)
		}
		if res.Objects != 1 {
			t.Errorf("n=%d: footprint = %d objects, want 1", n, res.Objects)
		}
		// Corollary 1: m*t >= (n-1)/2.
		if res.TimeSpaceProduct < int64(n-1)/2 {
			t.Errorf("n=%d: time-space product %d below lower bound %d", n, res.TimeSpaceProduct, (n-1)/2)
		}
	}
}

func TestAdversarialLLCannotStretchConstantTime(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		res, err := AdversarialLL(func(f shmem.Factory, n int) (llsc.Object, error) {
			return llsc.NewConstantTime(f, n, 8, 0)
		}, n)
		if err != nil {
			t.Fatal(err)
		}
		if res.VictimSteps > 5 {
			t.Errorf("n=%d: victim steps = %d, want <= 5 (O(1) construction)", n, res.VictimSteps)
		}
		if res.Objects != n+1 {
			t.Errorf("n=%d: footprint = %d, want n+1 = %d", n, res.Objects, n+1)
		}
		if res.TimeSpaceProduct < int64(n-1)/2 {
			t.Errorf("n=%d: time-space product %d below lower bound", n, res.TimeSpaceProduct)
		}
	}
}

func TestAdversarialLLValidation(t *testing.T) {
	if _, err := AdversarialLL(func(f shmem.Factory, n int) (llsc.Object, error) {
		return llsc.NewCASBased(f, n, 8, 0)
	}, 1); err == nil {
		t.Error("want error for n < 2")
	}
}
