package apps

import (
	"fmt"

	"abadetect/internal/guard"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Queue is a Michael–Scott FIFO queue whose mutable references — head, tail,
// and every node's next pointer — are Guards.
//
// The original Michael–Scott queue [24] is the poster child of the tagging
// literature: with raw CAS and recycled nodes it suffers exactly the ABA the
// paper describes, which is why the original used (unbounded) counted
// pointers.  With Guards, the queue runs the whole §1 ladder:
//
//   - Raw: the historical victim.  The deterministic recycling schedule in
//     the foil tests dequeues the same value twice and strands the head on
//     a free node.
//   - Tagged: the IBM-tag fix — sound until the tag wraps inside a victim's
//     window.
//   - LLSC: every commit is an SC; a stale swing fails no matter how the
//     indices cycled (the regime the seed hardwired).
//   - Detector: the Figure 5 detecting view over LL/SC, counting every
//     prevented ABA.
type Queue struct {
	n        int
	capacity int

	value []shmem.Register
	next  []guard.Guard // next[i] holds the successor index of node i
	head  guard.Guard
	tail  guard.Guard
	pool  Pool
	dummy int             // initial dummy node (allocated at construction)
	tr    *trace.Recorder // nil unless built WithTrace
}

// NewQueue builds a queue for n processes with the given capacity (usable
// nodes beyond the mandatory dummy), its references guarded by prot.
// tagBits is only used by the Tagged regime; both are ignored when
// WithMaker supplies the guards.
func NewQueue(f shmem.Factory, n, capacity int, prot Protection, tagBits uint, opts ...StructOption) (*Queue, error) {
	if n < 1 {
		return nil, fmt.Errorf("apps: queue needs n >= 1, got %d", n)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("apps: queue needs capacity >= 1, got %d", capacity)
	}
	o := ResolveStructOptions(f, n, prot, tagBits, opts)
	total := capacity + 1 // one extra node so the dummy never starves callers
	idxBits := shmem.BitsFor(total + 1)
	q := &Queue{
		n:        n,
		capacity: total,
		value:    make([]shmem.Register, total+1),
		next:     make([]guard.Guard, total+1),
		tr:       o.Trace,
	}
	var err error
	for i := 1; i <= total; i++ {
		q.value[i] = f.NewRegister(fmt.Sprintf("qvalue[%d]", i), 0)
		if q.next[i], err = o.Maker(fmt.Sprintf("qnext[%d]", i), idxBits, 0); err != nil {
			return nil, fmt.Errorf("apps: queue next[%d] guard: %w", i, err)
		}
	}
	if q.pool, err = NewPool(f, o, "queue", n, total, idxBits); err != nil {
		return nil, err
	}
	boot, err := q.pool.Handle(0)
	if err != nil {
		return nil, err
	}
	q.dummy = boot.Alloc()
	if q.head, err = o.Maker("qhead", idxBits, Word(q.dummy)); err != nil {
		return nil, fmt.Errorf("apps: queue head guard: %w", err)
	}
	if q.tail, err = o.Maker("qtail", idxBits, Word(q.dummy)); err != nil {
		return nil, fmt.Errorf("apps: queue tail guard: %w", err)
	}
	if !q.head.Conditional() {
		return nil, fmt.Errorf("apps: queue needs conditional guards; %s guard is detection-only", q.head.Regime())
	}
	return q, nil
}

// NumProcs returns n.
func (q *Queue) NumProcs() int { return q.n }

// Capacity returns the number of usable nodes (beyond the dummy).
func (q *Queue) Capacity() int { return q.capacity - 1 }

// Protection returns the reference-guard regime.
func (q *Queue) Protection() Protection { return q.head.Regime() }

// GuardMetrics returns the aggregated audit counters of every reference
// guard (head, tail, and all next pointers).
func (q *Queue) GuardMetrics() guard.Metrics {
	m := q.head.Metrics().Add(q.tail.Metrics())
	for i := 1; i < len(q.next); i++ {
		m = m.Add(q.next[i].Metrics())
	}
	return m
}

// FreelistMetrics returns the node pool's guard counters (zero unless the
// queue was built WithGuardedPool).
func (q *Queue) FreelistMetrics() guard.Metrics { return q.pool.Metrics() }

// PoolStats returns the allocator's exhaustion and reclamation counters.
func (q *Queue) PoolStats() PoolStats { return q.pool.Stats() }

// Handle returns process pid's handle.  Handles are single-goroutine.
func (q *Queue) Handle(pid int) (*QueueHandle, error) {
	if pid < 0 || pid >= q.n {
		return nil, fmt.Errorf("apps: pid %d out of range [0,%d)", pid, q.n)
	}
	h := &QueueHandle{q: q, pid: pid, next: make([]guard.Handle, len(q.next)), ring: q.tr.Ring(pid)}
	var err error
	if h.pool, err = q.pool.Handle(pid); err != nil {
		return nil, err
	}
	h.smr = h.pool.Reclaiming()
	// Same eligibility rule as the stack's Peek and the map's fast Get: the
	// wait-free read path skips the protection fence, which is sound unless
	// the configuration is raw *and* reclaiming (where the protected path is
	// what makes reads sound today).
	h.fastOK = !h.smr || q.head.Regime() != guard.Raw
	if h.head, err = q.head.Handle(pid); err != nil {
		return nil, err
	}
	if h.tail, err = q.tail.Handle(pid); err != nil {
		return nil, err
	}
	for i := 1; i < len(q.next); i++ {
		if h.next[i], err = q.next[i].Handle(pid); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// QueueHandle is a per-process queue endpoint.
type QueueHandle struct {
	q      *Queue
	pid    int
	head   guard.Handle
	tail   guard.Handle
	next   []guard.Handle
	pool   PoolHandle
	smr    bool        // pool defers releases: run the protect/revalidate fence
	fastOK bool        // wait-free read fast path is sound for this configuration
	ring   *trace.Ring // nil without WithTrace; Record on nil is a no-op

	// MaxSpin bounds the retry/helping loops of Enq and Deq; 0 means
	// unbounded (the lock-free default).  A raw-guarded queue that has been
	// ABA-corrupted can acquire a cycle through its next chain, turning the
	// tail-helping loop into a livelock — benchmark and race harnesses set a
	// bound so a corrupted foil fails operations instead of hanging.
	MaxSpin int

	pendingHead int // head loaded by DeqBegin
	pendingNext int // its successor, as read by DeqBegin

	// relBuf is the commit path's scratch for the pool's batch-release
	// seam: a dequeue retires exactly one dummy, and routing it through
	// ReleaseBatch keeps the structure on the reclaimer's amortized batch
	// path without allocating per commit.
	relBuf [1]int

	// testEnqAfterLink, when non-nil, runs right after Enq's linearizing
	// next-pointer commit and before the tail help — a deterministic stall
	// point for the helping-interleaving tests.
	testEnqAfterLink func()

	// ReadStall, when non-nil, runs inside every fast-path Peek attempt
	// right after the front value read and before the validating fence —
	// the deterministic stall point the torn-peek scripts interleave a
	// writer into.  Test/experiment hook, like the map Handle's ReadStall.
	ReadStall func()
}

// spent reports whether a bounded handle has used up its spin budget.
func (h *QueueHandle) spent(spins int) bool { return h.MaxSpin > 0 && spins >= h.MaxSpin }

// Enq appends v.  It returns false when the node pool is exhausted (or a
// MaxSpin budget ran out).
func (h *QueueHandle) Enq(v Word) bool {
	idx := h.pool.Alloc()
	if idx == 0 {
		return false
	}
	h.q.value[idx].Write(h.pid, v)
	// Reset the recycled node's next pointer; only we touch a free node.
	h.next[idx].Store(0)
	for spins := 0; ; spins++ {
		if h.spent(spins) {
			if h.smr {
				h.pool.Clear()
			}
			h.pool.Release(idx)
			return false
		}
		t, _ := h.tail.Load()
		// Publish the protection on t, then validate: once the tail still
		// reads t with the protection visible, t cannot be recycled until
		// clear, so the next[t] dereference below is covered.
		if h.smr {
			h.pool.Protect(0, int(t))
		}
		if !h.tail.Validate() {
			continue // t is no longer the tail: the snapshot is stale
		}
		nt, _ := h.next[t].Load()
		if nt == 0 {
			if h.next[t].Commit(Word(idx)) {
				if h.testEnqAfterLink != nil {
					h.testEnqAfterLink()
				}
				// Linearized.  Help the tail forward using the arm from this
				// iteration's Load of t: the commit only lands while the tail
				// is still t, so a helper that already advanced it makes the
				// swing fail (fine) instead of dragging the tail backwards
				// onto a node that may since have been dequeued and freed.
				h.tail.Commit(Word(idx))
				if h.smr {
					h.pool.Clear()
				}
				return true
			}
			continue
		}
		// Tail is lagging: help it forward and retry.
		h.tail.Commit(nt)
	}
}

// Deq removes the oldest value.  It returns false when the queue is empty
// (or a MaxSpin budget ran out).
func (h *QueueHandle) Deq() (Word, bool) {
	for spins := 0; ; spins++ {
		if h.spent(spins) {
			if h.smr {
				h.pool.Clear()
			}
			return 0, false
		}
		hd, nh, empty, ok := h.deqSnapshot()
		if !ok {
			continue
		}
		if empty {
			return 0, false
		}
		if v, ok := h.deqCommit(hd, nh); ok {
			return v, true
		}
	}
}

// Peek returns the oldest value without dequeuing it.  ok=false means empty.
//
// The common case is the wait-free seqlock read: load the head, load its
// successor link, read the successor's value, and accept the result only if
// the head still validates — no hazard slot, no tail helping, and on a clean
// read not a single shared write.  A node's next pointer is written only
// while the node is free (Enq's reset) or 0→idx while linked, so with the
// head unchanged across the fence the loaded successor and its value are a
// consistent front-of-queue snapshot; any recycle under the reader fails the
// validation on the sound regimes.  After peekRetries torn attempts Peek
// falls back to the protected deqSnapshot path, which helps and is lock-free.
func (h *QueueHandle) Peek() (Word, bool) {
	if h.fastOK {
		for attempt := 0; attempt < peekRetries; attempt++ {
			hdW, _ := h.head.Load()
			nhW, _ := h.next[hdW].Load()
			if nhW == 0 {
				if h.head.Validate() {
					return 0, false // consistent snapshot of an empty queue
				}
				continue
			}
			v := h.q.value[nhW].Read(h.pid)
			if h.ReadStall != nil {
				h.ReadStall()
			}
			if h.head.Validate() {
				return v, true
			}
		}
	}
	return h.peekGuarded()
}

// peekGuarded is the fallback read: the DeqBegin fence without the commit,
// exactly as sound as a dequeue under the active configuration.
func (h *QueueHandle) peekGuarded() (Word, bool) {
	for spins := 0; ; spins++ {
		if h.spent(spins) {
			if h.smr {
				h.pool.Clear()
			}
			return 0, false
		}
		_, nh, empty, ok := h.deqSnapshot()
		if !ok {
			continue
		}
		if empty {
			return 0, false
		}
		v := h.q.value[nh].Read(h.pid)
		if !h.head.Validate() {
			continue // the head moved under the value read: stale front
		}
		if h.smr {
			h.pool.Clear()
		}
		return v, true
	}
}

// IsEmpty reports whether the queue was empty at some point during the call:
// a consistent (head, next[head]==0) snapshot.  Wait-free via the same fast
// path as Peek, falling back to the full snapshot loop only on torn reads.
func (h *QueueHandle) IsEmpty() bool {
	if h.fastOK {
		for attempt := 0; attempt < peekRetries; attempt++ {
			hdW, _ := h.head.Load()
			nhW, _ := h.next[hdW].Load()
			if h.head.Validate() {
				return nhW == 0
			}
		}
	}
	_, ok := h.peekGuarded()
	return !ok
}

// DeqBegin performs the vulnerable first half of a dequeue — snapshot the
// head, tail, and the head's successor — and stops right before the head
// commit, exposing the ABA window for the deterministic corruption
// experiments.  It returns empty=true on a consistent empty snapshot (or an
// exhausted MaxSpin budget), in which case there is nothing to commit.
func (h *QueueHandle) DeqBegin() (head, next int, empty bool) {
	for spins := 0; ; spins++ {
		if h.spent(spins) {
			if h.smr {
				h.pool.Clear()
			}
			h.pendingHead, h.pendingNext = 0, 0
			return 0, 0, true
		}
		hd, nh, empty, ok := h.deqSnapshot()
		if !ok {
			continue
		}
		if empty {
			h.pendingHead, h.pendingNext = 0, 0
			return 0, 0, true
		}
		h.pendingHead, h.pendingNext = hd, nh
		h.ring.Record(trace.KindOpBegin, "deq", uint64(hd), uint64(nh))
		return hd, nh, false
	}
}

// DeqCommit performs the second half of the dequeue begun by DeqBegin: the
// conditional swing of the head past the old dummy.  On failure nothing
// changes in the queue; the caller may retry with a fresh DeqBegin.  Each
// DeqBegin arms at most one DeqCommit — with no pending dequeue (an empty
// DeqBegin, a prior DeqCommit, or no DeqBegin at all) it reports failure,
// so a stale snapshot can never be committed twice.
func (h *QueueHandle) DeqCommit() (Word, bool) {
	if h.pendingNext == 0 {
		return 0, false
	}
	return h.deqCommit(h.pendingHead, h.pendingNext)
}

// deqSnapshot reads (head, tail, next[head]) and validates the head.  It
// returns ok=false when the snapshot was stale and must be retried, and
// empty=true on a consistent empty queue; as a side effect it helps a
// lagging tail forward.
//
// The reclamation protocol fences both dereferences: the head node hd is
// protected before its next pointer is read, and the successor nh is
// protected before the value read in deqCommit — each publish followed by a
// head re-validation that proves the protected node was still reachable
// with the protection visible.  The protections persist through a DeqBegin
// stall and are withdrawn by the commit.
func (h *QueueHandle) deqSnapshot() (hd, nh int, empty, ok bool) {
	hdW, _ := h.head.Load()
	if h.smr {
		h.pool.Protect(0, int(hdW))
		if !h.head.Validate() {
			return 0, 0, false, false // hd moved before the protection was visible
		}
	}
	tW, _ := h.tail.Load()
	nhW, _ := h.next[hdW].Load()
	if !h.head.Validate() {
		return 0, 0, false, false // hd is no longer the head: stale snapshot
	}
	if nhW == 0 {
		if h.smr {
			h.pool.Clear()
			// An empty dequeue is this process's idle moment: drain its
			// own deferred nodes so an idle consumer cannot strand every
			// node in limbo while the producers starve (the clear above
			// must come first — an epoch drain cannot advance past its
			// own pin).
			h.pool.Drain()
		}
		return 0, 0, true, true // consistent snapshot of an empty queue
	}
	if h.smr {
		h.pool.Protect(1, int(nhW))
		if !h.head.Validate() {
			return 0, 0, false, false
		}
	}
	if hdW == tW {
		// Tail lagging behind a half-finished enqueue: help.
		h.tail.Commit(nhW)
		return 0, 0, false, false
	}
	return int(hdW), int(nhW), false, true
}

func (h *QueueHandle) deqCommit(hd, nh int) (Word, bool) {
	// Any commit attempt — DeqCommit's or Deq's own — consumes whatever
	// snapshot a DeqBegin armed, so a later bare DeqCommit cannot replay it.
	h.pendingHead, h.pendingNext = 0, 0
	v := h.q.value[nh].Read(h.pid)
	if h.head.Commit(Word(nh)) {
		h.ring.Record(trace.KindOpCommit, "deq", 1, uint64(hd))
		// The old dummy is exclusively ours now; clearing before the
		// release keeps our own protection from deferring its retirement.
		if h.smr {
			h.pool.Clear()
		}
		h.relBuf[0] = hd
		h.pool.ReleaseBatch(h.relBuf[:])
		return v, true
	}
	if h.smr {
		h.pool.Clear()
	}
	h.ring.Record(trace.KindOpCommit, "deq", 0, uint64(hd))
	return 0, false
}

// QueueAudit is a quiescent-state structural check.
type QueueAudit struct {
	// Length is the number of values in the queue (nodes after the dummy).
	Length int
	// InFree is the number of nodes in the allocator's free queue.
	InFree int
	// Doubled lists nodes that are both reachable and free.
	Doubled []int
	// Lost is the number of unaccounted nodes.
	Lost int
	// Cycle reports whether the chain from head contains a cycle.
	Cycle bool
	// TailValid reports whether the tail points at a reachable node.
	TailValid bool
}

// Corrupt reports whether the audit found structural damage.
func (a QueueAudit) Corrupt() bool {
	return len(a.Doubled) > 0 || a.Lost > 0 || a.Cycle || !a.TailValid
}

// String renders the audit result.
func (a QueueAudit) String() string {
	return fmt.Sprintf("length=%d inFree=%d doubled=%v lost=%d cycle=%v tailValid=%v",
		a.Length, a.InFree, a.Doubled, a.Lost, a.Cycle, a.TailValid)
}

// Audit walks the chain and the free queue.  Call only at quiescence.
func (q *Queue) Audit() QueueAudit {
	var a QueueAudit
	seen := make(map[int]int, q.capacity)
	tailIdx := int(q.tail.Peek(-1))

	cur := int(q.head.Peek(-1))
	for hops := 0; cur != 0; hops++ {
		if hops > q.capacity {
			a.Cycle = true
			break
		}
		seen[cur]++
		if cur == tailIdx {
			a.TailValid = true
		}
		if hops > 0 {
			a.Length++
		}
		cur = int(q.next[cur].Peek(-1))
	}
	for _, idx := range q.pool.Snapshot() {
		seen[idx]++
		a.InFree++
	}
	for idx, count := range seen {
		if count > 1 {
			a.Doubled = append(a.Doubled, idx)
		}
	}
	a.Lost = q.capacity - len(seen)
	return a
}
