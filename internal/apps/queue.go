package apps

import (
	"fmt"

	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
)

// Queue is a Michael–Scott FIFO queue whose mutable references — head, tail,
// and every node's next pointer — are LL/SC objects (each built from a
// single bounded CAS object, Theorem 2).
//
// The original Michael–Scott queue [24] is the poster child of the tagging
// literature: with raw CAS and recycled nodes it suffers exactly the ABA the
// paper describes, which is why the original used (unbounded) counted
// pointers.  Replacing every CAS with LL/SC removes the problem by
// specification — a stale SC fails no matter how the indices cycled — and
// this queue recycles nodes through the allocator freely.
type Queue struct {
	n        int
	capacity int

	value []shmem.Register
	next  []llsc.Object // next[i] holds the successor index of node i
	head  llsc.Object
	tail  llsc.Object
	pool  *pool
	dummy int // initial dummy node (allocated at construction)
}

// NewQueue builds a queue for n processes with the given capacity (usable
// nodes beyond the mandatory dummy).
func NewQueue(f shmem.Factory, n, capacity int) (*Queue, error) {
	if n < 1 {
		return nil, fmt.Errorf("apps: queue needs n >= 1, got %d", n)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("apps: queue needs capacity >= 1, got %d", capacity)
	}
	total := capacity + 1 // one extra node so the dummy never starves callers
	idxBits := shmem.BitsFor(total + 1)
	q := &Queue{
		n:        n,
		capacity: total,
		value:    make([]shmem.Register, total+1),
		next:     make([]llsc.Object, total+1),
		pool:     newPool(total),
	}
	var err error
	for i := 1; i <= total; i++ {
		q.value[i] = f.NewRegister(fmt.Sprintf("qvalue[%d]", i), 0)
		q.next[i], err = llsc.NewCASBased(f, n, idxBits, 0)
		if err != nil {
			return nil, fmt.Errorf("apps: queue next[%d]: %w", i, err)
		}
	}
	q.dummy = q.pool.alloc()
	if q.head, err = llsc.NewCASBased(f, n, idxBits, Word(q.dummy)); err != nil {
		return nil, fmt.Errorf("apps: queue head: %w", err)
	}
	if q.tail, err = llsc.NewCASBased(f, n, idxBits, Word(q.dummy)); err != nil {
		return nil, fmt.Errorf("apps: queue tail: %w", err)
	}
	return q, nil
}

// Handle returns process pid's handle.  Handles are single-goroutine.
func (q *Queue) Handle(pid int) (*QueueHandle, error) {
	if pid < 0 || pid >= q.n {
		return nil, fmt.Errorf("apps: pid %d out of range [0,%d)", pid, q.n)
	}
	h := &QueueHandle{q: q, pid: pid, next: make([]llsc.Handle, len(q.next))}
	var err error
	if h.head, err = q.head.Handle(pid); err != nil {
		return nil, err
	}
	if h.tail, err = q.tail.Handle(pid); err != nil {
		return nil, err
	}
	for i := 1; i < len(q.next); i++ {
		if h.next[i], err = q.next[i].Handle(pid); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// QueueHandle is a per-process queue endpoint.
type QueueHandle struct {
	q    *Queue
	pid  int
	head llsc.Handle
	tail llsc.Handle
	next []llsc.Handle
}

// Enq appends v.  It returns false when the node pool is exhausted.
func (h *QueueHandle) Enq(v Word) bool {
	idx := h.q.pool.alloc()
	if idx == 0 {
		return false
	}
	h.q.value[idx].Write(h.pid, v)
	// Reset the recycled node's next pointer; only we touch a free node, so
	// the LL;SC pair cannot be interfered with.
	for {
		h.next[idx].LL()
		if h.next[idx].SC(0) {
			break
		}
	}
	for {
		t := int(h.tail.LL())
		nt := int(h.next[t].LL())
		if !h.tail.VL() {
			continue // t is no longer the tail: the snapshot is stale
		}
		if nt == 0 {
			if h.next[t].SC(Word(idx)) {
				// Linearized.  Help the tail forward; failure is fine.
				h.tail.LL()
				h.tail.SC(Word(idx))
				return true
			}
			continue
		}
		// Tail is lagging: help it forward and retry.
		h.tail.SC(Word(nt))
	}
}

// Deq removes the oldest value.  It returns false when the queue is empty.
func (h *QueueHandle) Deq() (Word, bool) {
	for {
		hd := int(h.head.LL())
		t := int(h.tail.LL())
		nh := int(h.next[hd].LL())
		if !h.head.VL() {
			continue // hd is no longer the head: the snapshot is stale
		}
		if nh == 0 {
			return 0, false // consistent snapshot of an empty queue
		}
		if hd == t {
			// Tail lagging behind a half-finished enqueue: help.
			h.tail.SC(Word(nh))
			continue
		}
		v := h.q.value[nh].Read(h.pid)
		if h.head.SC(Word(nh)) {
			// The old dummy retires; nh is the new dummy.
			h.q.pool.release(hd)
			return v, true
		}
	}
}

// QueueAudit is a quiescent-state structural check.
type QueueAudit struct {
	// Length is the number of values in the queue (nodes after the dummy).
	Length int
	// InFree is the number of nodes in the allocator's free queue.
	InFree int
	// Doubled lists nodes that are both reachable and free.
	Doubled []int
	// Lost is the number of unaccounted nodes.
	Lost int
	// Cycle reports whether the chain from head contains a cycle.
	Cycle bool
	// TailValid reports whether the tail points at a reachable node.
	TailValid bool
}

// Corrupt reports whether the audit found structural damage.
func (a QueueAudit) Corrupt() bool {
	return len(a.Doubled) > 0 || a.Lost > 0 || a.Cycle || !a.TailValid
}

// String renders the audit result.
func (a QueueAudit) String() string {
	return fmt.Sprintf("length=%d inFree=%d doubled=%v lost=%d cycle=%v tailValid=%v",
		a.Length, a.InFree, a.Doubled, a.Lost, a.Cycle, a.TailValid)
}

// Audit walks the chain and the free queue.  Call only at quiescence.
func (q *Queue) Audit() QueueAudit {
	var a QueueAudit
	seen := make(map[int]int, q.capacity)
	tailIdx := int(q.tail.Peek(-1))

	cur := int(q.head.Peek(-1))
	for hops := 0; cur != 0; hops++ {
		if hops > q.capacity {
			a.Cycle = true
			break
		}
		seen[cur]++
		if cur == tailIdx {
			a.TailValid = true
		}
		if hops > 0 {
			a.Length++
		}
		cur = int(q.next[cur].Peek(-1))
	}
	for _, idx := range q.pool.snapshot() {
		seen[idx]++
		a.InFree++
	}
	for idx, count := range seen {
		if count > 1 {
			a.Doubled = append(a.Doubled, idx)
		}
	}
	a.Lost = q.capacity - len(seen)
	return a
}
