// Package apps contains the application-level workloads the paper's
// introduction motivates: lock-free data structures whose correctness hinges
// on ABA prevention, built over this repository's base objects and LL/SC
// objects so the three protection regimes can be compared head-to-head.
//
//   - Treiber stack (stack.go): the canonical ABA victim.  A pop reads the
//     head node and its successor, then CASes the head; if the head node was
//     popped, recycled, and re-pushed in between, the CAS succeeds and
//     corrupts the structure.  The stack is built with raw CAS (vulnerable),
//     k-bit tagged CAS (vulnerable at tag wraparound), or LL/SC (immune) —
//     the paper's §1 story, executable.
//   - Michael–Scott queue (queue.go): enqueue/dequeue over LL/SC objects,
//     with node recycling that would be unsafe under raw CAS.
//   - Resettable event flag (event.go): the busy-wait scenario of §1 — a
//     waiter polls a register that a signaler sets and then resets for
//     reuse; with a plain register the waiter can miss the event entirely,
//     with an ABA-detecting register it cannot.
//
// All structures use index-based nodes from a fixed pool (no garbage
// collector involvement), which is precisely what makes recycling — and
// therefore ABA — real.
package apps

import "abadetect/internal/shmem"

// Word is the element type of the data structures.
type Word = shmem.Word

// Protection selects how a structure's mutable references are guarded.
type Protection int

// Protection regimes.
const (
	// Raw uses bare CAS on node indices: vulnerable to ABA.
	Raw Protection = iota + 1
	// Tagged packs a k-bit wrap-around tag next to the index: vulnerable
	// exactly when the tag wraps.
	Tagged
	// LLSC uses a load-linked/store-conditional object: immune by
	// specification.
	LLSC
)

// String names the protection regime.
func (p Protection) String() string {
	switch p {
	case Raw:
		return "raw-cas"
	case Tagged:
		return "tagged-cas"
	case LLSC:
		return "ll/sc"
	default:
		return "unknown"
	}
}
