// Package apps contains the application-level workloads the paper's
// introduction motivates: lock-free data structures whose correctness hinges
// on ABA prevention, rebuilt over the unified Guard abstraction of
// internal/guard so every structure runs under every protection regime —
// and, through guard.Maker, over any registered implementation and any
// shared-memory substrate.
//
//   - Treiber stack (stack.go): the canonical ABA victim.  A pop reads the
//     head node and its successor, then conditionally swings the head; if
//     the head node was popped, recycled, and re-pushed in between, a raw
//     commit succeeds and corrupts the structure.
//   - Michael–Scott queue (queue.go): enqueue/dequeue with node recycling.
//     Its head, tail, and per-node next references are all Guards, so the
//     queue runs raw (the historical ABA victim the tagging literature was
//     invented for), tagged, LL/SC, or detector-guarded.
//   - Resettable event flag (event.go): the busy-wait scenario of §1 — a
//     waiter polls a reference that a signaler sets and then resets for
//     reuse.  Poll rides the guard's dirty-load detection: a raw guard
//     misses in-window pulses entirely, a k-bit tag misses exactly at
//     wraparound, LL/SC- and detector-backed guards never miss.
//
// The layering is uniform: a structure owns plain value registers plus one
// Guard per mutable reference, all allocated through a single guard.Maker,
// so the protection regime is a constructor argument rather than a
// per-structure reimplementation.  Node recycling goes through a pool —
// either the mutex FIFO allocator model (deterministic recycling order for
// the corruption scripts) or, with WithGuardedPool, a lock-free free list
// whose head is itself a Guard of the same regime: the free list is exactly
// as ABA-vulnerable as the structure above it, and its guard's near-miss
// counters make free-list ABA observable.
package apps

import (
	"abadetect/internal/guard"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Word is the element type of the data structures.
type Word = shmem.Word

// Protection selects how a structure's mutable references are guarded.  It
// is the guard package's Regime: Raw (bare CAS, vulnerable), Tagged (k-bit
// wrap-around tag, vulnerable at wraparound), LLSC (immune by
// specification), and Detector (the Figure 5 detecting view, immune and
// counting every detected ABA).
type Protection = guard.Regime

// Protection regimes.
const (
	// Raw uses bare CAS on node indices: vulnerable to ABA.
	Raw = guard.Raw
	// Tagged packs a k-bit wrap-around tag next to the index: vulnerable
	// exactly when the tag wraps.
	Tagged = guard.Tagged
	// LLSC uses a load-linked/store-conditional object: immune by
	// specification.
	LLSC = guard.LLSC
	// Detector guards through an ABA-detecting register view (Figure 5 over
	// LL/SC for structures that commit; any detector for the event flag).
	Detector = guard.Detector
)

// StructOption configures a structure constructor.
type StructOption func(*StructConfig)

// StructConfig is the resolved constructor configuration: the guard maker
// every mutable reference comes from plus the allocator selection.  It is
// exported so structures outside this package (the hash map of internal/kv)
// resolve the same options and feed the same pool seam.
type StructConfig struct {
	// Maker allocates every guard of the structure.
	Maker guard.Maker
	// GuardedPool selects the lock-free guarded free list over the mutex
	// FIFO allocator model.
	GuardedPool bool
	// Reclaim, when non-nil, wraps the pool in a safe-memory-reclamation
	// scheme.
	Reclaim reclaim.Maker
	// Elimination, when positive, adds an elimination-backoff exchanger of
	// that many slots to structures that pair inverse operations (the
	// stack); other structures ignore it.
	Elimination int
	// LocalCache, when positive, fronts the shared pool with per-process
	// free stacks of that capacity.
	LocalCache int
	// Combining enables flat-combining batching on structures with
	// publication-slot support (the map's buckets); others ignore it.
	Combining bool
	// GrowTo, when positive, enables online growth on structures that
	// support it (the map): the structure starts at its constructor capacity
	// and extends its node space geometrically through Pool.Grow, up to
	// GrowTo nodes, with no stop-the-world phase.  Structures without a
	// growth protocol ignore it.
	GrowTo int
	// Trace, when non-nil, is the flight recorder every seam of the
	// structure records into: its guards (through a wrapped Maker), its
	// pool, its reclaimer, and its split-operation hooks.  Nil — the
	// default — means no wrapper exists anywhere on the hot path.
	Trace *trace.Recorder
}

// WithMaker makes the structure allocate its guards from mk instead of the
// default construction for its Protection argument — the hook the registry
// and the public API use to put any registered implementation, over any
// backend, behind a structure.  The Protection and tagBits constructor
// arguments are ignored when a maker is supplied.
func WithMaker(mk guard.Maker) StructOption {
	return func(o *StructConfig) { o.Maker = mk }
}

// WithGuardedPool replaces the mutex FIFO node allocator with a lock-free
// LIFO free list whose head is a Guard from the same maker: the free list
// becomes exactly as ABA-(in)vulnerable as the structure it feeds, and its
// guard metrics expose free-list near-misses.  The deterministic corruption
// scripts rely on FIFO recycling order, so they use the default pool.
func WithGuardedPool() StructOption {
	return func(o *StructConfig) { o.GuardedPool = true }
}

// WithReclaimer routes the structure's node releases through a safe-memory-
// reclamation scheme built by mk: releases retire nodes into limbo, and the
// traversal loops' published protections keep a node from re-entering the
// allocator while any process may still hold its index.  With a reclaimer
// the recycle leg of the §1 ABA cannot happen inside a victim's window, so
// even a Raw-guarded structure survives the deterministic corruption
// scripts — prevention by allocation discipline instead of detection.
func WithReclaimer(mk reclaim.Maker) StructOption {
	return func(o *StructConfig) { o.Reclaim = mk }
}

// WithElimination adds an elimination-backoff exchanger of `slots` slots to
// structures that pair inverse operations: a contending Push hands its node
// directly to a colliding Pop through an exchanger slot, skipping the
// top-of-stack guard entirely on a hit.  Each slot is a Guard from the same
// maker as the structure, so the handoff protocol runs — and is audited —
// under the structure's own protection regime.  Structures without an
// inverse-operation pair (the map, the event flag) ignore the option.
func WithElimination(slots int) StructOption {
	return func(o *StructConfig) { o.Elimination = slots }
}

// WithLocalCache fronts the shared node pool with a bounded per-process
// free stack of the given capacity: alloc/release pairs that stay on one
// process never touch the shared allocator (no mutex, no free-list guard
// traffic), and overflow spills back to the shared pool so no process can
// hoard nodes.  Under a reclaimer the cache sits *below* the retire path —
// nodes still pass through limbo before landing in a cache — so hp/epoch
// accounting stays exact.
func WithLocalCache(capacity int) StructOption {
	return func(o *StructConfig) { o.LocalCache = capacity }
}

// WithGrowth lets the structure grow its node space online, up to
// maxCapacity nodes: the constructor capacity becomes the *initial* size,
// and when live occupancy crosses a threshold the structure doubles its
// bucket directory (split-ordered expansion — nodes never move) and extends
// its pool by geometric segment appends (indices never move).  Guards are
// sized for maxCapacity from the start, so link words never need re-widening
// mid-run.  Structures without a growth protocol ignore the option.
func WithGrowth(maxCapacity int) StructOption {
	return func(o *StructConfig) { o.GrowTo = maxCapacity }
}

// WithCombining enables flat-combining on structures with publication-slot
// support (the hash map's buckets): a writer that finds a bucket's combiner
// lock free applies pending operations from other processes in a batch, so
// the bucket chain is walked cache-hot by one process instead of being
// fought over; when the lock is taken, operations publish and wait instead
// of adding guard and SMR traffic.  Uncontended reads keep the existing
// lock-free path.  Structures without combining support ignore the option.
func WithCombining() StructOption {
	return func(o *StructConfig) { o.Combining = true }
}

// WithTrace routes every seam of the structure — guards, pool, reclaimer,
// split-operation hooks — into rec's per-process event rings.  The
// structure's guard maker is wrapped at resolution time, so the tracing-off
// configuration (no WithTrace) carries no wrapper and no branch anywhere.
func WithTrace(rec *trace.Recorder) StructOption {
	return func(o *StructConfig) { o.Trace = rec }
}

// ResolveStructOptions resolves opts, defaulting the maker to the guard
// package's stock construction of prot over f.
func ResolveStructOptions(f shmem.Factory, n int, prot Protection, tagBits uint, opts []StructOption) StructConfig {
	var o StructConfig
	for _, fn := range opts {
		fn(&o)
	}
	if o.Maker == nil {
		o.Maker = guard.NewMaker(f, n, prot, tagBits)
	}
	if o.Trace != nil {
		o.Maker = guard.TracedMaker(o.Maker, o.Trace)
	}
	return o
}
