package apps

import (
	"fmt"
	"sync"
	"testing"

	"abadetect/internal/shmem"
)

func newStack(t *testing.T, n, capacity int, prot Protection, tagBits uint) *Stack {
	t.Helper()
	s, err := NewStack(shmem.NewNativeFactory(), n, capacity, prot, tagBits)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func stackHandle(t *testing.T, s *Stack, pid int) *StackHandle {
	t.Helper()
	h, err := s.Handle(pid)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func allProtections() []struct {
	name    string
	prot    Protection
	tagBits uint
} {
	return []struct {
		name    string
		prot    Protection
		tagBits uint
	}{
		{"raw", Raw, 0},
		{"tagged16", Tagged, 16},
		{"llsc", LLSC, 0},
		{"detector", Detector, 0},
	}
}

func TestStackSequentialLIFO(t *testing.T) {
	for _, tc := range allProtections() {
		t.Run(tc.name, func(t *testing.T) {
			s := newStack(t, 2, 8, tc.prot, tc.tagBits)
			h := stackHandle(t, s, 0)
			for i := 1; i <= 5; i++ {
				if !h.Push(Word(i * 10)) {
					t.Fatalf("push %d failed", i)
				}
			}
			for i := 5; i >= 1; i-- {
				v, ok := h.Pop()
				if !ok || v != Word(i*10) {
					t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i*10)
				}
			}
			if _, ok := h.Pop(); ok {
				t.Error("pop from empty stack succeeded")
			}
			if a := s.Audit(); a.Corrupt() {
				t.Errorf("audit after sequential use: %s", a)
			}
		})
	}
}

func TestStackPoolExhaustion(t *testing.T) {
	s := newStack(t, 1, 3, LLSC, 0)
	h := stackHandle(t, s, 0)
	for i := 0; i < 3; i++ {
		if !h.Push(Word(i)) {
			t.Fatalf("push %d failed with capacity left", i)
		}
	}
	if h.Push(99) {
		t.Error("push beyond capacity succeeded")
	}
	if _, ok := h.Pop(); !ok {
		t.Error("pop after exhaustion failed")
	}
	if !h.Push(99) {
		t.Error("push after freeing a node failed")
	}
}

func TestStackConstructorValidation(t *testing.T) {
	f := shmem.NewNativeFactory()
	if _, err := NewStack(f, 0, 4, Raw, 0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewStack(f, 2, 0, Raw, 0); err == nil {
		t.Error("want error for capacity=0")
	}
	if _, err := NewStack(f, 2, 4, Protection(99), 0); err == nil {
		t.Error("want error for unknown protection")
	}
	if _, err := NewStack(f, 2, 4, Tagged, 0); err == nil {
		t.Error("want error for tagged with 0 tag bits")
	}
	s := newStack(t, 2, 4, Raw, 0)
	if _, err := s.Handle(7); err == nil {
		t.Error("want error for bad pid")
	}
}

// runABAScenario plays the paper's §1 corruption script against a stack:
// the victim stops between reading the head's successor and the CAS, while
// the adversary performs exactly 4 successful head swings (3 pops + 1 push)
// that bring the head index back to the victim's loaded node.
//
// It returns whether the victim's commit succeeded and the audit.
func runABAScenario(t *testing.T, prot Protection, tagBits uint) (bool, StackAudit) {
	t.Helper()
	s := newStack(t, 2, 3, prot, tagBits)
	adversary := stackHandle(t, s, 0)
	victim := stackHandle(t, s, 1)

	// Setup: chain 3(103) -> 2(102) -> 1(101).
	for i := 1; i <= 3; i++ {
		if !adversary.Push(Word(100 + i)) {
			t.Fatalf("setup push %d failed", i)
		}
	}

	// Victim: loads head (node 3) and its successor (node 2), then stalls.
	top, next, empty := victim.PopBegin()
	if empty || top != 3 || next != 2 {
		t.Fatalf("PopBegin = (%d,%d,%v), want (3,2,false)", top, next, empty)
	}

	// Adversary: three pops (frees 3, 2, 1) and one push.  The FIFO
	// allocator hands node 3 back, so the head *index* is 3 again — but
	// node 2 is free and node 3's successor is now nil.
	for i := 0; i < 3; i++ {
		if _, ok := adversary.Pop(); !ok {
			t.Fatalf("adversary pop %d failed", i)
		}
	}
	if !adversary.Push(104) {
		t.Fatal("adversary push failed")
	}

	// Victim resumes: the commit swings head to the freed node 2 if the
	// guard is fooled.
	_, committed := victim.PopCommit()
	return committed, s.Audit()
}

func TestStackABACorruptionLadder(t *testing.T) {
	// The §1 story end to end: raw CAS is fooled; a k-bit tag is fooled
	// exactly when the interference count (4 successful swings) is a
	// multiple of 2^k; LL/SC is never fooled.
	cases := []struct {
		name       string
		prot       Protection
		tagBits    uint
		wantFooled bool
	}{
		{"raw", Raw, 0, true},
		{"tag1", Tagged, 1, true},  // 4 ≡ 0 (mod 2)
		{"tag2", Tagged, 2, true},  // 4 ≡ 0 (mod 4)
		{"tag3", Tagged, 3, false}, // 4 ≢ 0 (mod 8)
		{"llsc", LLSC, 0, false},
		{"detector", Detector, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			committed, audit := runABAScenario(t, tc.prot, tc.tagBits)
			if committed != tc.wantFooled {
				t.Fatalf("victim commit = %v, want %v", committed, tc.wantFooled)
			}
			if audit.Corrupt() != tc.wantFooled {
				t.Fatalf("audit corrupt = %v (%s), want %v", audit.Corrupt(), audit, tc.wantFooled)
			}
			t.Logf("%s: fooled=%v audit: %s", tc.name, committed, audit)
		})
	}
}

func TestStackTagWraparoundThreshold(t *testing.T) {
	// With k tag bits the same scenario parameterized by the number of
	// adversary swings: fooled iff swings ≡ 0 mod 2^k.  We vary swings by
	// inserting pop/push pairs (2 swings each).
	const tagBits = 2
	for extraPairs := 0; extraPairs <= 3; extraPairs++ {
		swings := 4 + 2*extraPairs // 3 pops + 1 push + extra pop/push pairs
		s := newStack(t, 2, 3, Tagged, tagBits)
		adversary := stackHandle(t, s, 0)
		victim := stackHandle(t, s, 1)
		for i := 1; i <= 3; i++ {
			adversary.Push(Word(100 + i))
		}
		if top, next, _ := victim.PopBegin(); top != 3 || next != 2 {
			t.Fatalf("PopBegin = (%d,%d)", top, next)
		}
		for i := 0; i < 3; i++ {
			adversary.Pop()
		}
		adversary.Push(104) // head index 3 again
		for i := 0; i < extraPairs; i++ {
			adversary.Pop()     // pops node 3
			adversary.Push(105) // allocator cycles ... eventually node 3 again
		}
		// Only when the head *index* is back at 3 can the word match.
		headIdx := s.headIndex()
		_, committed := victim.PopCommit()
		wantFooled := headIdx == 3 && swings%(1<<tagBits) == 0
		if committed != wantFooled {
			t.Errorf("swings=%d headIdx=%d: commit=%v want %v", swings, headIdx, committed, wantFooled)
		}
	}
}

func TestStackStressLLSCIsSound(t *testing.T) {
	// Hard accounting under real concurrency: every popped value was pushed
	// exactly once, nothing is lost, the structure audits clean.
	const n = 8
	const perProc = 300
	s := newStack(t, n, 16, LLSC, 0)
	var wg sync.WaitGroup
	popped := make([][]Word, n)
	pushed := make([][]Word, n)
	for pid := 0; pid < n; pid++ {
		h := stackHandle(t, s, pid)
		wg.Add(1)
		go func(pid int, h *StackHandle) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				v := Word(pid)<<32 | Word(i)
				if h.Push(v) {
					pushed[pid] = append(pushed[pid], v)
				}
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[pid] = append(popped[pid], v)
					}
				}
			}
		}(pid, h)
	}
	wg.Wait()

	counts := map[Word]int{}
	for _, vs := range pushed {
		for _, v := range vs {
			counts[v]++
		}
	}
	for _, vs := range popped {
		for _, v := range vs {
			counts[v]--
			if counts[v] < 0 {
				t.Fatalf("value %#x popped more often than pushed", v)
			}
		}
	}
	// Drain the remainder and account for it.
	h := stackHandle(t, s, 0)
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		counts[v]--
		if counts[v] < 0 {
			t.Fatalf("drained value %#x was never pushed (or popped twice)", v)
		}
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("value %#x lost (count %d)", v, c)
		}
	}
	if a := s.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
}

func TestStackStressRawReportsCorruption(t *testing.T) {
	// The raw stack may or may not corrupt in any given run — that is the
	// insidiousness the paper describes.  We run a corruption-friendly
	// configuration and log the outcome; the assertion is only that the
	// audit never reports damage for the LL/SC twin under the same load.
	run := func(prot Protection) StackAudit {
		const n = 8
		const perProc = 400
		s := newStack(t, n, 4, prot, 0)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			h := stackHandle(t, s, pid)
			wg.Add(1)
			go func(pid int, h *StackHandle) {
				defer wg.Done()
				for i := 0; i < perProc; i++ {
					h.Push(Word(pid)<<32 | Word(i))
					h.Pop()
				}
			}(pid, h)
		}
		wg.Wait()
		return s.Audit()
	}
	rawAudit := run(Raw)
	t.Logf("raw stack audit after stress: %s (corrupt=%v)", rawAudit, rawAudit.Corrupt())
	llscAudit := run(LLSC)
	if llscAudit.Corrupt() {
		t.Errorf("LL/SC stack corrupted: %s", llscAudit)
	}
}

func TestStackAuditCleanStates(t *testing.T) {
	s := newStack(t, 1, 4, LLSC, 0)
	h := stackHandle(t, s, 0)
	a := s.Audit()
	if a.InStack != 0 || a.InFree != 4 || a.Corrupt() {
		t.Errorf("fresh audit: %s", a)
	}
	h.Push(1)
	h.Push(2)
	a = s.Audit()
	if a.InStack != 2 || a.InFree != 2 || a.Corrupt() {
		t.Errorf("after 2 pushes: %s", a)
	}
}

func TestProtectionString(t *testing.T) {
	for _, tc := range []struct {
		p    Protection
		want string
	}{{Raw, "raw-cas"}, {Tagged, "tagged-cas"}, {LLSC, "ll/sc"}, {Detector, "detector"}, {Protection(0), "unknown"}} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.p), got, tc.want)
		}
	}
}

func TestStackManyProtectionsSmoke(t *testing.T) {
	// Exercise several tag widths through the same sequential workload.
	for _, bits := range []uint{1, 2, 4, 8, 20} {
		t.Run(fmt.Sprintf("tag%d", bits), func(t *testing.T) {
			s := newStack(t, 1, 4, Tagged, bits)
			h := stackHandle(t, s, 0)
			for round := 0; round < 50; round++ {
				if !h.Push(Word(round)) {
					t.Fatal("push failed")
				}
				if v, ok := h.Pop(); !ok || v != Word(round) {
					t.Fatalf("pop = (%d,%v)", v, ok)
				}
			}
		})
	}
}
