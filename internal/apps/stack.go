package apps

import (
	"fmt"
	"sync"

	"abadetect/internal/llsc"
	"abadetect/internal/shmem"
)

// Stack is a Treiber stack over a fixed pool of index-based nodes, the
// canonical ABA victim of the paper's §1.
//
// A pop reads the head index, reads the head node's successor, and CASes the
// head to the successor.  If, between the two reads and the CAS, other
// processes popped the head node, recycled it through the allocator, and
// pushed it back, a raw CAS still succeeds — and swings the head to a node
// that may long since have been freed.  The stack's head reference can be
// guarded by any Protection regime:
//
//   - Raw: bare CAS on the index.  The deterministic corruption scenario in
//     stack_test.go (and the paper's motivation) breaks it.
//   - Tagged: a k-bit wrap-around tag beside the index.  Safe until exactly
//     2^k head-CASes occur inside the victim's window, then broken.
//   - LLSC: an LL/SC object (built from a single bounded CAS, Theorem 2).
//     Immune: SC fails after any intervening successful SC.
//
// Node allocation models a memory allocator: a FIFO free queue under a
// mutex.  It is deliberately *not* part of the shared-memory cost model —
// the ABA problem exists precisely because allocators hand memory back.
type Stack struct {
	n        int
	capacity int
	prot     Protection

	value []shmem.Register // value[i] of node i (1-based)
	next  []shmem.Register // next[i] of node i; 0 = nil

	pool *pool

	// head in one of three guises:
	rawHead  shmem.WritableCAS
	tagHead  shmem.WritableCAS
	tagCodec shmem.TagCodec
	llscHead llsc.Object
}

// NewStack builds a stack for n processes with the given node capacity.
// tagBits is only used by the Tagged regime.
func NewStack(f shmem.Factory, n, capacity int, prot Protection, tagBits uint) (*Stack, error) {
	if n < 1 {
		return nil, fmt.Errorf("apps: stack needs n >= 1, got %d", n)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("apps: stack needs capacity >= 1, got %d", capacity)
	}
	idxBits := shmem.BitsFor(capacity + 1)
	s := &Stack{
		n:        n,
		capacity: capacity,
		prot:     prot,
		value:    make([]shmem.Register, capacity+1),
		next:     make([]shmem.Register, capacity+1),
		pool:     newPool(capacity),
	}
	for i := 1; i <= capacity; i++ {
		s.value[i] = f.NewRegister(fmt.Sprintf("value[%d]", i), 0)
		s.next[i] = f.NewRegister(fmt.Sprintf("next[%d]", i), 0)
	}
	switch prot {
	case Raw:
		s.rawHead = f.NewCAS("head", 0)
	case Tagged:
		codec, err := shmem.NewTagCodec(idxBits, tagBits)
		if err != nil {
			return nil, fmt.Errorf("apps: stack tag codec: %w", err)
		}
		s.tagCodec = codec
		s.tagHead = f.NewCAS("head", codec.Encode(0, 0))
	case LLSC:
		obj, err := llsc.NewCASBased(f, n, idxBits, 0)
		if err != nil {
			return nil, fmt.Errorf("apps: stack LL/SC head: %w", err)
		}
		s.llscHead = obj
	default:
		return nil, fmt.Errorf("apps: unknown protection %d", prot)
	}
	return s, nil
}

// Capacity returns the node-pool capacity.
func (s *Stack) Capacity() int { return s.capacity }

// Protection returns the head-guard regime.
func (s *Stack) Protection() Protection { return s.prot }

// Handle returns process pid's handle.  Handles are single-goroutine.
func (s *Stack) Handle(pid int) (*StackHandle, error) {
	if pid < 0 || pid >= s.n {
		return nil, fmt.Errorf("apps: pid %d out of range [0,%d)", pid, s.n)
	}
	h := &StackHandle{s: s, pid: pid}
	switch s.prot {
	case Raw:
		h.head = &rawRef{obj: s.rawHead, pid: pid}
	case Tagged:
		h.head = &taggedRef{obj: s.tagHead, codec: s.tagCodec, pid: pid}
	case LLSC:
		lh, err := s.llscHead.Handle(pid)
		if err != nil {
			return nil, err
		}
		h.head = &llscRef{h: lh}
	}
	return h, nil
}

// StackHandle is a per-process stack endpoint.
type StackHandle struct {
	s    *Stack
	pid  int
	head guardedRef

	pending int // node loaded by PopBegin
	next    int // its successor, as read by PopBegin
}

// Push pushes v.  It returns false when the node pool is exhausted.
func (h *StackHandle) Push(v Word) bool {
	idx := h.s.pool.alloc()
	if idx == 0 {
		return false
	}
	h.s.value[idx].Write(h.pid, v)
	for {
		top := h.head.load()
		h.s.next[idx].Write(h.pid, Word(top))
		if h.head.commit(idx) {
			return true
		}
	}
}

// Pop pops the top value.  It returns false when the stack is empty.
func (h *StackHandle) Pop() (Word, bool) {
	for {
		top, next, empty := h.PopBegin()
		if empty {
			return 0, false
		}
		if v, ok := h.popCommit(top, next); ok {
			return v, true
		}
	}
}

// PopBegin performs the vulnerable first half of a pop — load the head and
// read its successor — and stops right before the CAS, exposing the ABA
// window for the deterministic corruption experiments.  It returns
// empty=true if the stack was empty.
func (h *StackHandle) PopBegin() (top, next int, empty bool) {
	top = h.head.load()
	if top == 0 {
		return 0, 0, true
	}
	next = int(h.s.next[top].Read(h.pid))
	h.pending, h.next = top, next
	return top, next, false
}

// PopCommit performs the second half of the pop begun by PopBegin: the
// conditional swing of the head.  On success it returns the popped value
// (read *after* the swing, as the classic implementation does) and recycles
// the node.  On failure nothing changes; the caller may retry with a fresh
// PopBegin.
func (h *StackHandle) PopCommit() (Word, bool) {
	return h.popCommit(h.pending, h.next)
}

func (h *StackHandle) popCommit(top, next int) (Word, bool) {
	if !h.head.commit(next) {
		return 0, false
	}
	v := h.s.value[top].Read(h.pid)
	h.s.pool.release(top)
	return v, true
}

// guardedRef abstracts the protected head reference.  load returns the
// current node index and arms the guard; commit atomically swings the head
// to newIdx iff the reference is unchanged (in the regime's sense) since the
// last load by this handle.
type guardedRef interface {
	load() int
	commit(newIdx int) bool
}

// rawRef guards nothing: the classic vulnerable CAS on an index.
type rawRef struct {
	obj  shmem.CAS
	pid  int
	last Word
}

func (r *rawRef) load() int {
	r.last = r.obj.Read(r.pid)
	return int(r.last)
}

func (r *rawRef) commit(newIdx int) bool {
	return r.obj.CompareAndSwap(r.pid, r.last, Word(newIdx))
}

// taggedRef bumps a k-bit tag on every successful swing.
type taggedRef struct {
	obj   shmem.CAS
	codec shmem.TagCodec
	pid   int
	last  Word
}

func (r *taggedRef) load() int {
	r.last = r.obj.Read(r.pid)
	return int(r.codec.Value(r.last))
}

func (r *taggedRef) commit(newIdx int) bool {
	next := r.codec.Encode(Word(newIdx), r.codec.Tag(r.last)+1)
	return r.obj.CompareAndSwap(r.pid, r.last, next)
}

// llscRef delegates the guard to an LL/SC object.
type llscRef struct {
	h llsc.Handle
}

func (r *llscRef) load() int { return int(r.h.LL()) }

func (r *llscRef) commit(newIdx int) bool { return r.h.SC(Word(newIdx)) }

// StackAudit is a quiescent-state structural check.
type StackAudit struct {
	// InStack is the number of nodes reachable from the head.
	InStack int
	// InFree is the number of nodes in the allocator's free queue.
	InFree int
	// Doubled lists nodes that are both reachable and free, or reachable
	// twice — the smoking gun of an ABA corruption.
	Doubled []int
	// Lost is the number of nodes neither reachable nor free (leaked).
	Lost int
	// Cycle reports whether the head chain contains a cycle.
	Cycle bool
}

// Corrupt reports whether the audit found structural damage.
func (a StackAudit) Corrupt() bool { return len(a.Doubled) > 0 || a.Lost > 0 || a.Cycle }

// String renders the audit result.
func (a StackAudit) String() string {
	return fmt.Sprintf("inStack=%d inFree=%d doubled=%v lost=%d cycle=%v",
		a.InStack, a.InFree, a.Doubled, a.Lost, a.Cycle)
}

// Audit walks the stack and the free queue.  It must only be called while no
// handle is mid-operation (quiescence); it reads registers with the observer
// pid, taking no scheduled steps under the simulator.
func (s *Stack) Audit() StackAudit {
	var a StackAudit
	seen := make(map[int]int, s.capacity)

	cur := s.headIndex()
	for hops := 0; cur != 0; hops++ {
		if hops > s.capacity {
			a.Cycle = true
			break
		}
		seen[cur]++
		a.InStack++
		cur = int(s.next[cur].Read(-1))
	}
	for _, idx := range s.pool.snapshot() {
		seen[idx]++
		a.InFree++
	}
	for idx, count := range seen {
		if count > 1 {
			a.Doubled = append(a.Doubled, idx)
		}
	}
	a.Lost = s.capacity - len(seen)
	return a
}

// headIndex reads the head node index with the observer pid.
func (s *Stack) headIndex() int {
	switch s.prot {
	case Raw:
		return int(s.rawHead.Read(-1))
	case Tagged:
		return int(s.tagCodec.Value(s.tagHead.Read(-1)))
	default:
		return int(s.llscHead.Peek(-1))
	}
}

// pool is the node allocator: a FIFO free queue under a mutex, modeling the
// system allocator.  FIFO reuse maximizes the realism of the ABA window (a
// freed node comes back exactly when an adversary wants it to).
type pool struct {
	mu   sync.Mutex
	free []int
}

func newPool(capacity int) *pool {
	p := &pool{free: make([]int, 0, capacity)}
	for i := 1; i <= capacity; i++ {
		p.free = append(p.free, i)
	}
	return p
}

// alloc takes the oldest free node, or 0 when exhausted.
func (p *pool) alloc() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0
	}
	idx := p.free[0]
	p.free = p.free[1:]
	return idx
}

// release returns a node to the back of the queue.
func (p *pool) release(idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, idx)
}

// snapshot copies the free queue for auditing.
func (p *pool) snapshot() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.free...)
}
