package apps

import (
	"fmt"

	"abadetect/internal/guard"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Stack is a Treiber stack over a fixed pool of index-based nodes, the
// canonical ABA victim of the paper's §1.
//
// A pop reads the head index, reads the head node's successor, and commits
// the head to the successor.  If, between the two reads and the commit,
// other processes popped the head node, recycled it through the allocator,
// and pushed it back, a raw commit still succeeds — and swings the head to
// a node that may long since have been freed.  The head is a Guard, so the
// same code runs under every Protection regime:
//
//   - Raw: bare CAS on the index.  The deterministic corruption scenario in
//     stack_test.go (and the paper's motivation) breaks it.
//   - Tagged: a k-bit wrap-around tag beside the index.  Safe until exactly
//     2^k head commits occur inside the victim's window, then broken.
//   - LLSC: an LL/SC object (built from a single bounded CAS, Theorem 2).
//     Immune: a stale commit fails after any intervening successful commit.
//   - Detector: the Figure 5 detecting view over LL/SC.  Immune, and every
//     prevented ABA shows up in the guard's NearMisses counter.
//
// Node allocation goes through the pool: by default the mutex FIFO
// allocator model (see pool.go), or — with WithGuardedPool — a lock-free
// free list whose head is a Guard of the same regime.
type Stack struct {
	n        int
	capacity int

	value []shmem.Register // value[i] of node i (1-based)
	next  []shmem.Register // next[i] of node i; 0 = nil

	pool Pool
	head guard.Guard
	elim *elimArray      // nil unless built WithElimination
	tr   *trace.Recorder // nil unless built WithTrace
}

// NewStack builds a stack for n processes with the given node capacity.
// tagBits is only used by the Tagged regime; both prot and tagBits are
// ignored when WithMaker supplies the guards.
func NewStack(f shmem.Factory, n, capacity int, prot Protection, tagBits uint, opts ...StructOption) (*Stack, error) {
	if n < 1 {
		return nil, fmt.Errorf("apps: stack needs n >= 1, got %d", n)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("apps: stack needs capacity >= 1, got %d", capacity)
	}
	o := ResolveStructOptions(f, n, prot, tagBits, opts)
	idxBits := shmem.BitsFor(capacity + 1)
	s := &Stack{
		n:        n,
		capacity: capacity,
		value:    make([]shmem.Register, capacity+1),
		next:     make([]shmem.Register, capacity+1),
		tr:       o.Trace,
	}
	for i := 1; i <= capacity; i++ {
		s.value[i] = f.NewRegister(fmt.Sprintf("value[%d]", i), 0)
		s.next[i] = f.NewRegister(fmt.Sprintf("next[%d]", i), 0)
	}
	head, err := o.Maker("head", idxBits, 0)
	if err != nil {
		return nil, fmt.Errorf("apps: stack head guard: %w", err)
	}
	if !head.Conditional() {
		return nil, fmt.Errorf("apps: stack head needs a conditional guard; %s guard is detection-only", head.Regime())
	}
	s.head = head
	if o.Elimination < 0 {
		return nil, fmt.Errorf("apps: elimination slots must be >= 0, got %d", o.Elimination)
	}
	if o.Elimination > 0 {
		if s.elim, err = newElimArray(o.Maker, "stack", o.Elimination, idxBits); err != nil {
			return nil, err
		}
	}
	if s.pool, err = NewPool(f, o, "stack", n, capacity, idxBits); err != nil {
		return nil, err
	}
	return s, nil
}

// NumProcs returns n.
func (s *Stack) NumProcs() int { return s.n }

// Capacity returns the node-pool capacity.
func (s *Stack) Capacity() int { return s.capacity }

// Protection returns the head-guard regime.
func (s *Stack) Protection() Protection { return s.head.Regime() }

// GuardMetrics returns the head guard's audit counters.
func (s *Stack) GuardMetrics() guard.Metrics { return s.head.Metrics() }

// FreelistMetrics returns the node pool's guard counters (zero unless the
// stack was built WithGuardedPool).
func (s *Stack) FreelistMetrics() guard.Metrics { return s.pool.Metrics() }

// PoolStats returns the allocator's exhaustion and reclamation counters.
func (s *Stack) PoolStats() PoolStats { return s.pool.Stats() }

// ElimStats returns the elimination exchanger's counters: hits are
// completed push/pop handoffs (ops that never touched the head guard),
// misses are withdrawn or rejected exchange attempts.  Both are zero unless
// the stack was built WithElimination.
func (s *Stack) ElimStats() (hits, misses int64) {
	if s.elim == nil {
		return 0, 0
	}
	return s.elim.stats()
}

// ElimMetrics returns the aggregated guard counters of the elimination
// slots (zero without WithElimination).  They are reported separately from
// GuardMetrics: a lost take race is slot contention, not a structure ABA.
func (s *Stack) ElimMetrics() guard.Metrics {
	if s.elim == nil {
		return guard.Metrics{}
	}
	return s.elim.metrics()
}

// Handle returns process pid's handle.  Handles are single-goroutine.
func (s *Stack) Handle(pid int) (*StackHandle, error) {
	if pid < 0 || pid >= s.n {
		return nil, fmt.Errorf("apps: pid %d out of range [0,%d)", pid, s.n)
	}
	head, err := s.head.Handle(pid)
	if err != nil {
		return nil, err
	}
	ph, err := s.pool.Handle(pid)
	if err != nil {
		return nil, err
	}
	sh := &StackHandle{s: s, pid: pid, head: head, pool: ph, smr: ph.Reclaiming(), ring: s.tr.Ring(pid)}
	// The wait-free Peek skips the protection fence; that is sound whenever a
	// torn read is detectable (the sound regimes) or nothing defers frees (no
	// reclaimer, where today's read path is equally value-blind).  Raw under
	// a reclaimer keeps the protected path so its reads stay as sound as the
	// reclaimer makes them — same eligibility rule as the map's fast Get.
	sh.fastOK = !sh.smr || s.head.Regime() != guard.Raw
	if s.elim != nil {
		if sh.elim, err = s.elim.handle(pid); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// StackHandle is a per-process stack endpoint.
type StackHandle struct {
	s      *Stack
	pid    int
	head   guard.Handle
	pool   PoolHandle
	smr    bool        // pool defers releases: run the protect/revalidate fence
	fastOK bool        // wait-free read fast path is sound for this configuration
	ring   *trace.Ring // nil without WithTrace; Record on nil is a no-op
	elim   *elimHandle

	pending  int // node loaded by PopBegin
	next     int // its successor, as read by PopBegin
	offerIdx int // node parked by ElimOffer

	// relBuf is the commit path's scratch for the pool's batch-release
	// seam: a pop kills exactly one node, and routing it through
	// ReleaseBatch keeps the structure on the reclaimer's amortized batch
	// path without allocating per commit.
	relBuf [1]int

	// ReadStall, when non-nil, runs inside every fast-path Peek attempt
	// right after the payload read and before the validating fence — the
	// deterministic stall point the torn-peek scripts interleave a writer
	// into.  Test/experiment hook, like the map Handle's ReadStall.
	ReadStall func()
}

// Push pushes v.  It returns false when the node pool is exhausted.
func (h *StackHandle) Push(v Word) bool {
	idx := h.pool.Alloc()
	if idx == 0 {
		return false
	}
	h.s.value[idx].Write(h.pid, v)
	h.pushNode(idx)
	return true
}

// pushNode links idx (value already written) onto the stack — or, under
// contention with elimination enabled, hands it to a colliding pop.
func (h *StackHandle) pushNode(idx int) {
	for {
		top, _ := h.head.Load()
		h.s.next[idx].Write(h.pid, top)
		if h.head.Commit(Word(idx)) {
			return
		}
		// The head is contended: back off into the exchanger instead of
		// retrying the hottest word immediately.
		if h.elim != nil && h.elimPush(idx) {
			return
		}
	}
}

// elimPush offers idx to the exchanger, waits out the backoff window, and
// settles.  true = a pop took the node; false = withdrawn, caller retries.
func (h *StackHandle) elimPush(idx int) bool {
	if !h.elim.offer(idx) {
		return false
	}
	h.elim.await()
	return h.elim.settle()
}

// Pop pops the top value.  It returns false when the stack is empty.
func (h *StackHandle) Pop() (Word, bool) {
	for {
		top, next, empty := h.PopBegin()
		if empty {
			// A pending offer is a concurrent push: taking it is the
			// linearizable answer, not "empty".
			if h.elim != nil {
				if v, ok := h.ElimTake(); ok {
					return v, true
				}
			}
			return 0, false
		}
		if v, ok := h.popCommit(top, next); ok {
			return v, true
		}
		if h.elim != nil {
			if v, ok := h.ElimTake(); ok {
				return v, true
			}
		}
	}
}

// PopBegin performs the vulnerable first half of a pop — load the head and
// read its successor — and stops right before the commit, exposing the ABA
// window for the deterministic corruption experiments.  It returns
// empty=true if the stack was empty.
//
// Under a reclaimer the window is fenced: the loaded head is published as a
// protection *before* the successor dereference, and the head is
// re-validated after the publish.  Once the validation passes, the node is
// currently reachable with the protection visible, so it cannot re-enter
// the allocator — and therefore cannot be recycled back under the head —
// until the protection clears.  The protection stays up through the stall
// and is withdrawn by the commit (either outcome).
func (h *StackHandle) PopBegin() (top, next int, empty bool) {
	for {
		topW, _ := h.head.Load()
		top = int(topW)
		if top == 0 {
			if h.smr {
				h.pool.Clear()
				// An empty pop is this process's idle moment: drain its
				// own deferred nodes so a popper that stops retiring
				// cannot strand them in limbo while pushers starve.
				h.pool.Drain()
			}
			h.pending, h.next = 0, 0
			return 0, 0, true
		}
		if h.smr {
			h.pool.Protect(0, top)
			if !h.head.Validate() {
				continue // head moved before the protection was visible
			}
		}
		next = int(h.s.next[top].Read(h.pid))
		h.pending, h.next = top, next
		h.ring.Record(trace.KindOpBegin, "pop", uint64(top), uint64(next))
		return top, next, false
	}
}

// PopCommit performs the second half of the pop begun by PopBegin: the
// conditional swing of the head.  On success it returns the popped value
// (read *after* the swing, as the classic implementation does) and recycles
// the node.  On failure nothing changes in the stack; the caller may retry
// with a fresh PopBegin.  Each PopBegin arms at most one PopCommit — with
// no pending pop (an empty PopBegin, a prior PopCommit, or no PopBegin at
// all) it reports failure, so a stale snapshot can never be committed
// twice.
func (h *StackHandle) PopCommit() (Word, bool) {
	if h.pending == 0 {
		return 0, false
	}
	return h.popCommit(h.pending, h.next)
}

func (h *StackHandle) popCommit(top, next int) (Word, bool) {
	// Any commit attempt — PopCommit's or Pop's own — consumes whatever
	// snapshot a PopBegin armed, so a later bare PopCommit cannot replay it.
	h.pending, h.next = 0, 0
	if !h.head.Commit(Word(next)) {
		if h.smr {
			h.pool.Clear()
		}
		h.ring.Record(trace.KindOpCommit, "pop", 0, uint64(top))
		return 0, false
	}
	h.ring.Record(trace.KindOpCommit, "pop", 1, uint64(top))
	v := h.s.value[top].Read(h.pid)
	// The popped node is exclusively ours now; clearing before the release
	// keeps our own protection from deferring its retirement.
	if h.smr {
		h.pool.Clear()
	}
	h.relBuf[0] = top
	h.pool.ReleaseBatch(h.relBuf[:])
	return v, true
}

// peekRetries bounds the wait-free read path's torn-read restarts before a
// Peek falls back to the protected traversal: the reader's step count stays
// bounded regardless of writer behavior, and sustained write pressure
// degrades to the lock-free mainline instead of starving the read.
const peekRetries = 3

// Peek returns the top value without popping it.  ok=false means empty.
//
// The common case is the seqlock read protocol of guard.ReadConsistent: load
// the head, read the top node's value, and accept the pair only if the head
// still validates — no hazard slot, no pool traffic, and on a clean read not
// a single shared write.  The value read is memory-safe even mid-recycle
// (nodes are array indices), and any recycle under the reader fails the
// validation on the sound regimes.  After peekRetries torn attempts Peek
// falls back to the protected read path.
func (h *StackHandle) Peek() (Word, bool) {
	if h.fastOK {
		var v Word
		top, clean := guard.ReadConsistent(h.head, peekRetries, func(w Word) {
			if w != 0 {
				v = h.s.value[int(w)].Read(h.pid)
			}
			if h.ReadStall != nil {
				h.ReadStall()
			}
		})
		if clean {
			return v, top != 0
		}
	}
	return h.peekGuarded()
}

// peekGuarded is the fallback read: the PopBegin fence (publish a protection,
// re-validate, then dereference) without the commit, so it is exactly as
// sound as a pop under the active configuration.
func (h *StackHandle) peekGuarded() (Word, bool) {
	for {
		topW, _ := h.head.Load()
		top := int(topW)
		if top == 0 {
			if h.smr {
				h.pool.Clear()
			}
			return 0, false
		}
		if h.smr {
			h.pool.Protect(0, top)
			if !h.head.Validate() {
				continue // head moved before the protection was visible
			}
		}
		v := h.s.value[top].Read(h.pid)
		if !h.smr && !h.head.Validate() {
			continue // the node may have been recycled under the read
		}
		if h.smr {
			h.pool.Clear()
		}
		return v, true
	}
}

// IsEmpty reports whether the stack was empty at some point during the call.
// A single head load answers it — wait-free on every regime — and the
// Validate consumes the detection window the way the busy-wait scenarios
// expect.
func (h *StackHandle) IsEmpty() bool {
	top, _ := guard.ReadConsistent(h.head, 1, nil)
	return top == 0
}

// ElimOffer stages v for elimination: it allocates a node, writes v, and
// parks the node in an exchanger slot without waiting — the first half of
// an eliminated push, exposed for the deterministic handoff scripts and the
// hot-path allocation pins.  It returns false (and stages nothing) when the
// stack has no exchanger, an offer is already pending, the pool is
// exhausted, or no slot could be claimed.  Every successful ElimOffer must
// be resolved by ElimSettle before the next offer.
func (h *StackHandle) ElimOffer(v Word) bool {
	if h.elim == nil || h.elim.offerSlot >= 0 {
		return false
	}
	idx := h.pool.Alloc()
	if idx == 0 {
		return false
	}
	h.s.value[idx].Write(h.pid, v)
	if !h.elim.offer(idx) {
		h.pool.Release(idx)
		return false
	}
	h.offerIdx = idx
	return true
}

// ElimSettle resolves the offer staged by ElimOffer.  exchanged=true means
// a pop consumed the value; exchanged=false means the offer was withdrawn
// and the push completed through the main stack instead — either way the
// offered value is now in the structure's custody, never lost.  With no
// pending offer it reports false without touching the stack.
func (h *StackHandle) ElimSettle() (exchanged bool) {
	if h.elim == nil || h.elim.offerSlot < 0 {
		return false
	}
	idx := h.offerIdx
	h.offerIdx = 0
	if h.elim.settle() {
		return true
	}
	h.pushNode(idx)
	return false
}

// ElimTake consumes a waiting offer from the exchanger: the taking side of
// an eliminated pop.  On a hit the node is exclusively ours — the value is
// read after the winning commit — and recycles through the normal pool
// path, so reclamation accounting is identical to a mainline pop's.
func (h *StackHandle) ElimTake() (Word, bool) {
	if h.elim == nil {
		return 0, false
	}
	idx, ok := h.elim.take()
	if !ok {
		return 0, false
	}
	v := h.s.value[idx].Read(h.pid)
	h.pool.Release(idx)
	return v, true
}

// StackAudit is a quiescent-state structural check.
type StackAudit struct {
	// InStack is the number of nodes reachable from the head.
	InStack int
	// InFree is the number of nodes in the allocator's free queue.
	InFree int
	// InElim is the number of nodes parked in elimination slots (zero at
	// true quiescence; a scripted mid-exchange pause is counted here, not
	// as lost).
	InElim int
	// ElimHits and ElimMisses are the exchanger's counters: completed
	// handoffs vs withdrawn or rejected exchange attempts.
	ElimHits, ElimMisses int64
	// Doubled lists nodes that are both reachable and free, or reachable
	// twice — the smoking gun of an ABA corruption.
	Doubled []int
	// Lost is the number of nodes neither reachable nor free (leaked).
	Lost int
	// Cycle reports whether the head chain contains a cycle.
	Cycle bool
}

// Corrupt reports whether the audit found structural damage.
func (a StackAudit) Corrupt() bool { return len(a.Doubled) > 0 || a.Lost > 0 || a.Cycle }

// String renders the audit result.
func (a StackAudit) String() string {
	s := fmt.Sprintf("inStack=%d inFree=%d doubled=%v lost=%d cycle=%v",
		a.InStack, a.InFree, a.Doubled, a.Lost, a.Cycle)
	if a.InElim > 0 || a.ElimHits > 0 || a.ElimMisses > 0 {
		s += fmt.Sprintf(" inElim=%d elimHits=%d elimMisses=%d", a.InElim, a.ElimHits, a.ElimMisses)
	}
	return s
}

// Audit walks the stack and the free queue.  It must only be called while no
// handle is mid-operation (quiescence); it reads registers with the observer
// pid, taking no scheduled steps under the simulator.
func (s *Stack) Audit() StackAudit {
	var a StackAudit
	seen := make(map[int]int, s.capacity)

	cur := s.headIndex()
	for hops := 0; cur != 0; hops++ {
		if hops > s.capacity {
			a.Cycle = true
			break
		}
		seen[cur]++
		a.InStack++
		cur = int(s.next[cur].Read(-1))
	}
	for _, idx := range s.pool.Snapshot() {
		seen[idx]++
		a.InFree++
	}
	if s.elim != nil {
		for _, idx := range s.elim.waiting() {
			seen[idx]++
			a.InElim++
		}
		a.ElimHits, a.ElimMisses = s.elim.stats()
	}
	for idx, count := range seen {
		if count > 1 {
			a.Doubled = append(a.Doubled, idx)
		}
	}
	a.Lost = s.capacity - len(seen)
	return a
}

// headIndex reads the head node index with the observer pid.
func (s *Stack) headIndex() int { return int(s.head.Peek(-1)) }
