package apps

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"abadetect/internal/guard"
)

// Elimination backoff [Hendler, Shavit, Yerushalmi 2004] adapted to the
// index-based, guard-protected stack: an array of exchanger slots where a
// contending Push parks its node and a colliding Pop takes it directly,
// skipping the top-of-stack guard entirely on a hit.  In the paper's
// vocabulary the exchanger trades m(n) — a few extra guarded base objects —
// for t(n): a successful exchange costs two commits on an uncontended slot
// word instead of a retry storm on the hottest word in the structure.
//
// Each slot is one guarded word holding the handoff state machine:
//
//	empty(0) --offer--> waiting(idx<<1) --take--> taken(1) --settle--> empty
//	                            \--withdraw--> empty
//
// The protocol is single-writer per offer: only the offering process writes
// waiting, only a taker moves waiting->taken (conditionally, so exactly one
// taker wins), and only the offerer resets taken->empty.  The taker reads
// the node's value *after* winning the take commit, when the node is
// exclusively its own — so even a raw-guarded slot cannot hand out a stale
// value: a raw take can only be "fooled" by the same node being re-offered
// in the same slot, which is indistinguishable from (and linearizable as)
// taking the new offer.  The exchanger therefore adds no new ABA surface,
// while the sound regimes additionally reject stale take commits and count
// them in the slot guards' metrics.
//
// SMR interaction: an offered node was never linked into the structure and
// no process publishes a protection for it, so the handoff needs no fence —
// the taker owns the node outright and releases it through the normal pool
// path (which retires it under a reclaimer).
const (
	elimEmpty Word = 0
	elimTaken Word = 1
)

// elimWaiting encodes an offered node index as a slot word.
func elimWaiting(idx int) Word { return Word(idx) << 1 }

// elimSpin bounds how long an offering push polls its slot before
// withdrawing and returning to the main stack loop.
const elimSpin = 16

// elimArray is the shared exchanger: one guarded word per slot plus the
// hit/miss counters the structure audit surfaces.
type elimArray struct {
	slots []guard.Guard

	hits   atomic.Int64 // completed exchanges, counted by the taker
	misses atomic.Int64 // withdrawn offers, full-slot offers, lost take races
}

func newElimArray(mk guard.Maker, name string, slots int, idxBits uint) (*elimArray, error) {
	if slots < 1 {
		return nil, fmt.Errorf("apps: elimination needs >= 1 slot, got %d", slots)
	}
	a := &elimArray{slots: make([]guard.Guard, slots)}
	for i := range a.slots {
		g, err := mk(fmt.Sprintf("%s.elim[%d]", name, i), idxBits+1, elimEmpty)
		if err != nil {
			return nil, fmt.Errorf("apps: elimination slot guard: %w", err)
		}
		if !g.Conditional() {
			return nil, fmt.Errorf("apps: elimination needs conditional guards; %s guard is detection-only", g.Regime())
		}
		a.slots[i] = g
	}
	return a, nil
}

// stats returns the exchange counters.
func (a *elimArray) stats() (hits, misses int64) {
	return a.hits.Load(), a.misses.Load()
}

// metrics aggregates the slot guards' counters.  They are kept separate
// from the structure's reference-guard metrics: a lost take race is slot
// contention, not a prevented structure ABA.
func (a *elimArray) metrics() guard.Metrics {
	var agg guard.Metrics
	for _, g := range a.slots {
		agg = agg.Add(g.Metrics())
	}
	return agg
}

// waiting returns the node indices parked in slots, read as the observer.
// At true quiescence it is empty; a scripted mid-exchange pause shows up
// here so the audit counts the parked node as structure-owned, not lost.
func (a *elimArray) waiting() []int {
	var out []int
	for _, g := range a.slots {
		if w := g.Peek(-1); w != elimEmpty && w != elimTaken {
			out = append(out, int(w>>1))
		}
	}
	return out
}

// handle builds process pid's per-slot guard handles.
func (a *elimArray) handle(pid int) (*elimHandle, error) {
	e := &elimHandle{a: a, h: make([]guard.Handle, len(a.slots)), offerSlot: -1}
	for i, g := range a.slots {
		h, err := g.Handle(pid)
		if err != nil {
			return nil, err
		}
		e.h[i] = h
	}
	return e, nil
}

// elimHandle is a process's exchanger endpoint.  Like every handle it is
// single-goroutine; at most one offer is pending at a time.
type elimHandle struct {
	a         *elimArray
	h         []guard.Handle
	cursor    int // rotates the starting slot so offers spread out
	offerSlot int // slot of the pending offer; -1 = none
}

// offer parks idx in an empty slot.  false = no slot could be claimed.
func (e *elimHandle) offer(idx int) bool {
	for range e.h {
		s := e.cursor
		e.cursor++
		if e.cursor == len(e.h) {
			e.cursor = 0
		}
		h := e.h[s]
		if w, _ := h.Load(); w != elimEmpty {
			continue
		}
		if h.Commit(elimWaiting(idx)) {
			e.offerSlot = s
			return true
		}
	}
	e.a.misses.Add(1)
	return false
}

// taken polls whether the pending offer has been consumed (no writes).
func (e *elimHandle) taken() bool {
	w, _ := e.h[e.offerSlot].Load()
	return w == elimTaken
}

// settle resolves the pending offer.  true = a pop took the node (it is no
// longer ours); false = the offer was withdrawn and the caller still owns
// the node.  The withdrawal is conditional, so it cannot race a take: the
// only writer that can beat it is the winning taker, and then the re-load
// observes taken.
func (e *elimHandle) settle() bool {
	h := e.h[e.offerSlot]
	e.offerSlot = -1
	for {
		if w, _ := h.Load(); w == elimTaken {
			h.Store(elimEmpty)
			return true
		}
		if h.Commit(elimEmpty) {
			e.a.misses.Add(1)
			return false
		}
	}
}

// take scans for a waiting offer and consumes it.  The returned index is
// exclusively the caller's on success.
func (e *elimHandle) take() (int, bool) {
	for s := range e.h {
		h := e.h[s]
		w, _ := h.Load()
		if w == elimEmpty || w == elimTaken {
			continue
		}
		if h.Commit(elimTaken) {
			e.a.hits.Add(1)
			return int(w >> 1), true
		}
		e.a.misses.Add(1) // lost the race for this slot; try the next
	}
	return 0, false
}

// await polls the pending offer for the bounded backoff window.
func (e *elimHandle) await() {
	for i := 0; i < elimSpin; i++ {
		if e.taken() {
			return
		}
		runtime.Gosched()
	}
}
