package apps

import (
	"fmt"

	"abadetect/internal/shmem"
)

// This file holds the deterministic §1 corruption scripts, shared by the
// experiment harness (internal/bench E6) and the differential foil tests.
// Both rely on the FIFO allocator model's recycling order, so they always
// run on the default pool.

// StackABAScenario plays the paper's §1 corruption script against a stack:
// the victim stops between reading the head's successor and the commit,
// while the adversary performs exactly 4 successful head swings (3 pops + 1
// push) that bring the head index back to the victim's loaded node.  It
// returns whether the victim's stale commit was accepted and the audit.
func StackABAScenario(f shmem.Factory, prot Protection, tagBits uint) (fooled bool, audit StackAudit, err error) {
	s, err := NewStack(f, 2, 3, prot, tagBits)
	if err != nil {
		return false, StackAudit{}, err
	}
	adversary, err := s.Handle(0)
	if err != nil {
		return false, StackAudit{}, err
	}
	victim, err := s.Handle(1)
	if err != nil {
		return false, StackAudit{}, err
	}
	// Setup: chain 3(103) -> 2(102) -> 1(101).
	for i := 1; i <= 3; i++ {
		if !adversary.Push(Word(100 + i)) {
			return false, StackAudit{}, fmt.Errorf("apps: scenario setup push %d failed", i)
		}
	}
	// Victim: loads head (node 3) and its successor (node 2), then stalls.
	if _, _, empty := victim.PopBegin(); empty {
		return false, StackAudit{}, fmt.Errorf("apps: scenario stack unexpectedly empty")
	}
	// Adversary: three pops (frees 3, 2, 1) and one push.  The FIFO
	// allocator hands node 3 back, so the head *index* is 3 again — but
	// node 2 is free and node 3's successor is now nil.
	for i := 0; i < 3; i++ {
		if _, ok := adversary.Pop(); !ok {
			return false, StackAudit{}, fmt.Errorf("apps: scenario adversary pop %d failed", i)
		}
	}
	if !adversary.Push(104) {
		return false, StackAudit{}, fmt.Errorf("apps: scenario adversary push failed")
	}
	// Victim resumes: the commit swings head to the freed node 2 iff the
	// guard is fooled.
	_, fooled = victim.PopCommit()
	return fooled, s.Audit(), nil
}

// QueueABAScenario plays the classic Michael–Scott recycling ABA: the
// victim snapshots (head, next[head]) and stalls before the head commit;
// the adversary drains the queue, enqueues through the recycled nodes, and
// dequeues again so the head *index* is restored (3 successful head swings)
// while the chain underneath has moved on.  A raw-guarded queue accepts the
// victim's stale commit — dequeuing a value a second time and stranding the
// head on a free node; tag, LL/SC, and detector guards reject it.  It
// returns whether the stale commit was accepted and the audit.
func QueueABAScenario(f shmem.Factory, prot Protection, tagBits uint) (fooled bool, audit QueueAudit, err error) {
	q, err := NewQueue(f, 2, 2, prot, tagBits) // 3 nodes: dummy 1, free 2 and 3
	if err != nil {
		return false, QueueAudit{}, err
	}
	adversary, err := q.Handle(0)
	if err != nil {
		return false, QueueAudit{}, err
	}
	victim, err := q.Handle(1)
	if err != nil {
		return false, QueueAudit{}, err
	}
	step := func(cond bool, format string, args ...any) error {
		if !cond {
			return fmt.Errorf("apps: queue scenario: "+format, args...)
		}
		return nil
	}
	// Setup: dummy node 1, then A in node 2 and B in node 3.
	if err := step(adversary.Enq(601), "setup enq A failed"); err != nil {
		return false, QueueAudit{}, err
	}
	if err := step(adversary.Enq(602), "setup enq B failed"); err != nil {
		return false, QueueAudit{}, err
	}
	// Victim: snapshots head (dummy 1) and its successor (node 2), stalls.
	hd, nh, empty := victim.DeqBegin()
	if err := step(!empty && hd == 1 && nh == 2, "DeqBegin = (%d,%d,%v), want (1,2,false)", hd, nh, empty); err != nil {
		return false, QueueAudit{}, err
	}
	// Adversary: drain both values (head swings 1->2->3, nodes 1 and 2
	// retire to the FIFO free list), enqueue C through recycled node 1, and
	// dequeue it (head swings 3->1).  The head index is 1 again, but node 2
	// is free and node 1's next is nil.
	if _, ok := adversary.Deq(); !ok {
		return false, QueueAudit{}, fmt.Errorf("apps: queue scenario: drain A failed")
	}
	if _, ok := adversary.Deq(); !ok {
		return false, QueueAudit{}, fmt.Errorf("apps: queue scenario: drain B failed")
	}
	if err := step(adversary.Enq(603), "enq C failed"); err != nil {
		return false, QueueAudit{}, err
	}
	if _, ok := adversary.Deq(); !ok {
		return false, QueueAudit{}, fmt.Errorf("apps: queue scenario: deq C failed")
	}
	// Victim resumes: committing head 1 -> 2 re-dequeues the long-gone A
	// and parks the head on free node 2 iff the guard is fooled.
	_, fooled = victim.DeqCommit()
	return fooled, q.Audit(), nil
}
