package apps

import (
	"fmt"

	"abadetect/internal/guard"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// This file holds the deterministic §1 corruption scripts, shared by the
// experiment harness (internal/bench E6), the differential foil tests, and
// the reclamation-prevention tests.  They rely on the FIFO allocator
// model's recycling order, so they always run on the default pool —
// optionally wrapped by a reclaimer (WithReclaimer), which is exactly the
// configuration that demonstrates prevention-by-allocation-discipline.

// ScenarioResult reports one deterministic corruption script's outcome.
type ScenarioResult struct {
	// Fooled reports whether the victim's stale commit was accepted.
	Fooled bool
	// Corrupt reports whether the quiescent audit found structural damage,
	// and Detail renders it.
	Corrupt bool
	Detail  string
	// Starved reports that an adversary allocation failed because
	// reclamation deferred every free node — the epoch scheme's signature
	// under a stalled victim.  The ABA is then prevented by exhaustion
	// rather than by a changed index; either way the victim's commit is
	// rejected.
	Starved bool
	// Guard aggregates the structure's reference-guard counters.  Under a
	// reclaimer the interesting reading is NearMisses == 0: the recycle leg
	// never happened, so there was no ABA for the guard to see.
	Guard guard.Metrics
	// Pool carries the allocator's exhaustion and reclamation counters.
	Pool PoolStats
	// Incident is the merged flight-recorder dump of the script: the watch
	// snapshot frozen at the first near-miss or allocator exhaustion when
	// one fired, the full end-of-run merge otherwise (a fooled raw run has
	// no near-miss to fire on — the corruption IS the absence of detection,
	// and the full dump carries the armed load, the recycle, and the
	// corrupting commit in happens-before order).
	Incident []trace.Event
}

// scenarioRecorder builds the per-script flight recorder and its incident
// predicate: the first detected-and-prevented ABA or the first allocator
// exhaustion freezes the rings.
func scenarioRecorder(n int) *trace.Recorder {
	rec := trace.New(n, 128)
	rec.Watch(func(e trace.Event) bool {
		return e.Kind == trace.KindGuardNearMiss || e.Kind == trace.KindExhaust
	})
	return rec
}

// scenarioIncident resolves the dump to attach: the frozen watch snapshot
// when the predicate fired, the final merge otherwise.
func scenarioIncident(rec *trace.Recorder) []trace.Event {
	if inc := rec.Incident(); inc != nil {
		return inc
	}
	return rec.Merge()
}

// StackABAScenario plays the paper's §1 corruption script against a stack:
// the victim stops between reading the head's successor and the commit,
// while the adversary performs 4 successful head swings (3 pops + 1 push)
// that — with immediate reuse — bring the head index back to the victim's
// loaded node.  Under a reclaimer the victim's published protection keeps
// its node out of the allocator, so the adversary's push comes back with a
// *different* index (hp) or starves (epoch, all nodes in limbo): the word
// never repeats and the stale commit is rejected without any guard-level
// detection.
func StackABAScenario(f shmem.Factory, prot Protection, tagBits uint, opts ...StructOption) (ScenarioResult, error) {
	var r ScenarioResult
	rec := scenarioRecorder(2)
	opts = append(opts, WithTrace(rec))
	s, err := NewStack(f, 2, 3, prot, tagBits, opts...)
	if err != nil {
		return r, err
	}
	adversary, err := s.Handle(0)
	if err != nil {
		return r, err
	}
	victim, err := s.Handle(1)
	if err != nil {
		return r, err
	}
	// Setup: chain 3(103) -> 2(102) -> 1(101).
	for i := 1; i <= 3; i++ {
		if !adversary.Push(Word(100 + i)) {
			return r, fmt.Errorf("apps: scenario setup push %d failed", i)
		}
	}
	// Victim: loads head (node 3) and its successor (node 2), then stalls —
	// holding its reclamation protection, when one is configured.
	if _, _, empty := victim.PopBegin(); empty {
		return r, fmt.Errorf("apps: scenario stack unexpectedly empty")
	}
	// Adversary: three pops (frees 3, 2, 1) and one push.  With immediate
	// reuse the FIFO allocator hands node 3 back, so the head *index* is 3
	// again — but node 2 is free and node 3's successor is now nil.
	for i := 0; i < 3; i++ {
		if _, ok := adversary.Pop(); !ok {
			return r, fmt.Errorf("apps: scenario adversary pop %d failed", i)
		}
	}
	// The recycle leg: under a reclaimer the victim's protection blocks
	// node 3, so this push either allocates a different node or starves.
	r.Starved = !adversary.Push(104)
	// Victim resumes: the commit swings head to the freed node 2 iff the
	// guard is fooled.
	_, r.Fooled = victim.PopCommit()
	audit := s.Audit()
	r.Corrupt, r.Detail = audit.Corrupt(), audit.String()
	r.Guard = s.GuardMetrics()
	r.Pool = s.PoolStats()
	r.Incident = scenarioIncident(rec)
	return r, nil
}

// QueueABAScenario plays the classic Michael–Scott recycling ABA: the
// victim snapshots (head, next[head]) and stalls before the head commit;
// the adversary drains the queue, enqueues through the recycled nodes, and
// dequeues again so the head *index* is restored (3 successful head swings)
// while the chain underneath has moved on.  A raw-guarded queue with
// immediate reuse accepts the victim's stale commit — dequeuing a value a
// second time and stranding the head on a free node; tag, LL/SC, and
// detector guards reject it, and a reclaimer prevents the recycling leg
// outright (the victim's protections cover both snapshotted nodes, so the
// adversary's enqueue starves instead of reusing them).
func QueueABAScenario(f shmem.Factory, prot Protection, tagBits uint, opts ...StructOption) (ScenarioResult, error) {
	var r ScenarioResult
	rec := scenarioRecorder(2)
	opts = append(opts, WithTrace(rec))
	q, err := NewQueue(f, 2, 2, prot, tagBits, opts...) // 3 nodes: dummy 1, free 2 and 3
	if err != nil {
		return r, err
	}
	adversary, err := q.Handle(0)
	if err != nil {
		return r, err
	}
	victim, err := q.Handle(1)
	if err != nil {
		return r, err
	}
	step := func(cond bool, format string, args ...any) error {
		if !cond {
			return fmt.Errorf("apps: queue scenario: "+format, args...)
		}
		return nil
	}
	// Setup: dummy node 1, then A in node 2 and B in node 3.
	if err := step(adversary.Enq(601), "setup enq A failed"); err != nil {
		return r, err
	}
	if err := step(adversary.Enq(602), "setup enq B failed"); err != nil {
		return r, err
	}
	// Victim: snapshots head (dummy 1) and its successor (node 2), stalls.
	hd, nh, empty := victim.DeqBegin()
	if err := step(!empty && hd == 1 && nh == 2, "DeqBegin = (%d,%d,%v), want (1,2,false)", hd, nh, empty); err != nil {
		return r, err
	}
	// Adversary: drain both values (head swings 1->2->3, nodes 1 and 2
	// retire), enqueue C through recycled node 1, and dequeue it (head
	// swings 3->1).  With immediate reuse the head index is 1 again, but
	// node 2 is free and node 1's next is nil.  Under a reclaimer nodes 1
	// and 2 sit in limbo behind the victim's protections, so the enqueue
	// starves and the head parks on node 3.
	if _, ok := adversary.Deq(); !ok {
		return r, fmt.Errorf("apps: queue scenario: drain A failed")
	}
	if _, ok := adversary.Deq(); !ok {
		return r, fmt.Errorf("apps: queue scenario: drain B failed")
	}
	if adversary.Enq(603) {
		if _, ok := adversary.Deq(); !ok {
			return r, fmt.Errorf("apps: queue scenario: deq C failed")
		}
	} else {
		r.Starved = true
	}
	// Victim resumes: committing head 1 -> 2 re-dequeues the long-gone A
	// and parks the head on free node 2 iff the guard is fooled.
	_, r.Fooled = victim.DeqCommit()
	audit := q.Audit()
	r.Corrupt, r.Detail = audit.Corrupt(), audit.String()
	r.Guard = q.GuardMetrics()
	r.Pool = q.PoolStats()
	r.Incident = scenarioIncident(rec)
	return r, nil
}
