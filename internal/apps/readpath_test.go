package apps

import (
	"testing"

	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// The wait-free observers (Peek / IsEmpty) must agree with the mutating ops
// across every protection regime and reclaimer — including the fallback
// configurations where the fast path is disabled (raw under a reclaimer)
// and the guarded peek carries the read.

func readPathConfigs() []struct {
	name    string
	prot    Protection
	tagBits uint
	rc      reclaim.Maker
} {
	type cfg = struct {
		name    string
		prot    Protection
		tagBits uint
		rc      reclaim.Maker
	}
	var out []cfg
	rcs := []struct {
		name string
		mk   reclaim.Maker
	}{
		{"none", nil},
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
	for _, p := range allProtections() {
		for _, r := range rcs {
			out = append(out, cfg{p.name + "+" + r.name, p.prot, p.tagBits, r.mk})
		}
	}
	return out
}

func TestStackPeekMatrix(t *testing.T) {
	for _, c := range readPathConfigs() {
		t.Run(c.name, func(t *testing.T) {
			var opts []StructOption
			if c.rc != nil {
				opts = append(opts, WithReclaimer(c.rc))
			}
			s, err := NewStack(shmem.NewNativeFactory(), 1, 8, c.prot, c.tagBits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			h := stackHandle(t, s, 0)
			if !h.IsEmpty() {
				t.Error("fresh stack not empty")
			}
			if _, ok := h.Peek(); ok {
				t.Error("Peek on an empty stack hit")
			}
			for i := 1; i <= 3; i++ {
				if !h.Push(Word(i * 10)) {
					t.Fatalf("push %d failed", i)
				}
				if v, ok := h.Peek(); !ok || v != Word(i*10) {
					t.Fatalf("Peek after push %d = (%d,%v), want (%d,true)", i, v, ok, i*10)
				}
				if h.IsEmpty() {
					t.Fatalf("IsEmpty true with %d elements", i)
				}
			}
			// Peek must not consume: the pops still see all three values.
			for i := 3; i >= 1; i-- {
				if v, ok := h.Peek(); !ok || v != Word(i*10) {
					t.Fatalf("Peek before pop %d = (%d,%v)", i, v, ok)
				}
				if v, ok := h.Pop(); !ok || v != Word(i*10) {
					t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i*10)
				}
			}
			if !h.IsEmpty() {
				t.Error("drained stack not empty")
			}
			if a := s.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
		})
	}
}

func TestQueuePeekMatrix(t *testing.T) {
	for _, c := range readPathConfigs() {
		t.Run(c.name, func(t *testing.T) {
			var opts []StructOption
			if c.rc != nil {
				opts = append(opts, WithReclaimer(c.rc))
			}
			q, err := NewQueue(shmem.NewNativeFactory(), 1, 8, c.prot, c.tagBits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			if !h.IsEmpty() {
				t.Error("fresh queue not empty")
			}
			if _, ok := h.Peek(); ok {
				t.Error("Peek on an empty queue hit")
			}
			for i := 1; i <= 3; i++ {
				if !h.Enq(Word(i * 10)) {
					t.Fatalf("enq %d failed", i)
				}
				// FIFO: the front stays the first value while the tail grows.
				if v, ok := h.Peek(); !ok || v != 10 {
					t.Fatalf("Peek after enq %d = (%d,%v), want (10,true)", i, v, ok)
				}
			}
			for i := 1; i <= 3; i++ {
				if v, ok := h.Peek(); !ok || v != Word(i*10) {
					t.Fatalf("Peek before deq %d = (%d,%v)", i, v, ok)
				}
				if v, ok := h.Deq(); !ok || v != Word(i*10) {
					t.Fatalf("deq = (%d,%v), want (%d,true)", v, ok, i*10)
				}
			}
			if !h.IsEmpty() {
				t.Error("drained queue not empty")
			}
			if a := q.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
		})
	}
}

// TestPeekAllocsAndNoReclaimerTraffic is the stack/queue analogue of the
// map's hot-path test: a clean Peek allocates nothing and takes zero
// shared-memory steps on the reclaimer's state (no hazard publish, no epoch
// pin), while a mutating op on the same handle proves the counter is live.
func TestPeekAllocsAndNoReclaimerTraffic(t *testing.T) {
	counting := shmem.NewCounting(shmem.NewNativeFactory(), 1)
	counted := func(f shmem.Factory, name string, n, capacity int) (reclaim.Reclaimer, error) {
		return reclaim.NewHazard(counting, name, n, capacity)
	}
	s, err := NewStack(shmem.NewNativeFactory(), 1, 8, LLSC, 0, WithReclaimer(counted))
	if err != nil {
		t.Fatal(err)
	}
	h := stackHandle(t, s, 0)
	if !h.Push(42) {
		t.Fatal("push failed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if v, ok := h.Peek(); !ok || v != 42 {
			t.Fatalf("Peek = (%d,%v)", v, ok)
		}
	})
	if allocs != 0 {
		t.Errorf("clean Peek allocates %.1f objects/op, want 0", allocs)
	}
	base := counting.Steps(0)
	for i := 0; i < 100; i++ {
		h.Peek()
		h.IsEmpty()
	}
	if d := counting.Steps(0) - base; d != 0 {
		t.Errorf("clean Peeks took %d reclaimer steps, want 0", d)
	}
	base = counting.Steps(0)
	if _, ok := h.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if d := counting.Steps(0) - base; d == 0 {
		t.Error("guarded Pop took no reclaimer steps — the counter is not observing the hazard slots")
	}
}

// TestStackPeekTornReadMatrix scripts the torn-peek interleaving: a reader
// stalls between reading the top node's value and validating the head, while
// a writer pops that node and recycles it under a new value.  Both the old
// and the new value are linearizable answers, so the script measures the
// *detection asymmetry*: the sound regimes must see the recycle (the head
// guard was committed twice under the stalled reader), reject the attempt,
// and re-read the current top — only value-blind raw+none accepts the
// pre-recycle snapshot bit-for-bit, the stack-read shape of the §1 ABA.
// Raw under a real reclaimer disables the fast path (StackHandle.fastOK), so
// the stall hook never fires and the guarded peek carries the read.
func TestStackPeekTornReadMatrix(t *testing.T) {
	for _, c := range readPathConfigs() {
		t.Run(c.name, func(t *testing.T) {
			var opts []StructOption
			if c.rc != nil {
				opts = append(opts, WithReclaimer(c.rc))
			}
			// Capacity 1: the writer's push *must* recycle the popped node,
			// so the head word is restored bit-for-bit for raw to accept.
			s, err := NewStack(shmem.NewNativeFactory(), 2, 1, c.prot, c.tagBits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			r := stackHandle(t, s, 0)
			w := stackHandle(t, s, 1)
			if !w.Push(100) {
				t.Fatal("setup Push(100) failed")
			}
			fired := false
			r.ReadStall = func() {
				if fired {
					return
				}
				fired = true
				// The writer runs to completion inside the reader's stall:
				// pop the node the reader is looking at, recycle it under a
				// new value.  (Under hp/epoch the exhaustion path drains
				// eagerly — the stalled reader holds no protection, so the
				// node still recycles.)
				if v, ok := w.Pop(); !ok || v != 100 {
					t.Errorf("stall-window Pop = (%d, %v), want (100, true)", v, ok)
				}
				if !w.Push(999) {
					t.Error("stall-window Push(999) failed")
				}
			}
			v, ok := r.Peek()
			r.ReadStall = nil

			switch {
			case c.prot == Raw && c.rc == nil:
				if !fired {
					t.Fatal("fast path never reached the stall point")
				}
				if !ok || v != 100 {
					t.Errorf("Peek = (%d, %v); value-blind raw is documented to accept the recycled node's pre-recycle snapshot (100, true)", v, ok)
				}
			case c.prot == Raw:
				// fastOK is off: the hook never fires, the writer never runs,
				// and the guarded peek returns the undisturbed top.
				if fired {
					t.Error("raw under a reclaimer must not take the fast path")
				}
				if !ok || v != 100 {
					t.Errorf("guarded Peek = (%d, %v), want (100, true)", v, ok)
				}
			default:
				if !fired {
					t.Fatal("fast path never reached the stall point")
				}
				// The recycle bumped the head guard twice under the reader:
				// the torn attempt is rejected and the retry sees the
				// current top.
				if !ok || v != 999 {
					t.Errorf("Peek = (%d, %v): a sound regime let the pre-recycle snapshot through, want the post-recycle (999, true)", v, ok)
				}
			}
			if a := s.Audit(); a.Corrupt() {
				t.Errorf("structural audit after the script: %s", a)
			}
		})
	}
}

// TestQueuePeekTornReadMatrix is the queue shape of the same script, with a
// sharper victim outcome: the reader stalls holding the front value while
// the writer dequeues it, recycles its node through a second enqueue, and
// dequeues again — returning the head word to the reader's armed index with
// the queue now *empty*.  Raw+none validates the restored head and reports
// the long-dequeued value as the front of an empty queue; the sound regimes
// reject the attempt and the retry sees a consistent empty snapshot.
func TestQueuePeekTornReadMatrix(t *testing.T) {
	for _, c := range readPathConfigs() {
		t.Run(c.name, func(t *testing.T) {
			var opts []StructOption
			if c.rc != nil {
				opts = append(opts, WithReclaimer(c.rc))
			}
			// Capacity 1 (one usable node beyond the dummy): the writer's
			// enqueue must recycle the retired dummy, and its second dequeue
			// swings the head back onto that original index.
			q, err := NewQueue(shmem.NewNativeFactory(), 2, 1, c.prot, c.tagBits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			r, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			w, err := q.Handle(1)
			if err != nil {
				t.Fatal(err)
			}
			if !w.Enq(100) {
				t.Fatal("setup Enq(100) failed")
			}
			fired := false
			r.ReadStall = func() {
				if fired {
					return
				}
				fired = true
				if v, ok := w.Deq(); !ok || v != 100 {
					t.Errorf("stall-window Deq = (%d, %v), want (100, true)", v, ok)
				}
				if !w.Enq(999) {
					t.Error("stall-window Enq(999) failed")
				}
				if v, ok := w.Deq(); !ok || v != 999 {
					t.Errorf("stall-window Deq = (%d, %v), want (999, true)", v, ok)
				}
			}
			v, ok := r.Peek()
			r.ReadStall = nil

			switch {
			case c.prot == Raw && c.rc == nil:
				if !fired {
					t.Fatal("fast path never reached the stall point")
				}
				if !ok || v != 100 {
					t.Errorf("Peek = (%d, %v); value-blind raw is documented to report the dequeued value at the head of an empty queue (100, true)", v, ok)
				}
			case c.prot == Raw:
				if fired {
					t.Error("raw under a reclaimer must not take the fast path")
				}
				if !ok || v != 100 {
					t.Errorf("guarded Peek = (%d, %v), want (100, true)", v, ok)
				}
			default:
				if !fired {
					t.Fatal("fast path never reached the stall point")
				}
				// The queue is empty by the time the stalled attempt
				// validates: the sound regimes reject it and the retry
				// reports a consistent miss.
				if ok {
					t.Errorf("Peek = (%d, true) on an empty queue: the torn attempt escaped the fence", v)
				}
			}
			if a := q.Audit(); a.Corrupt() {
				t.Errorf("structural audit after the script: %s", a)
			}
		})
	}
}
