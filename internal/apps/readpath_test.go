package apps

import (
	"testing"

	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// The wait-free observers (Peek / IsEmpty) must agree with the mutating ops
// across every protection regime and reclaimer — including the fallback
// configurations where the fast path is disabled (raw under a reclaimer)
// and the guarded peek carries the read.

func readPathConfigs() []struct {
	name    string
	prot    Protection
	tagBits uint
	rc      reclaim.Maker
} {
	type cfg = struct {
		name    string
		prot    Protection
		tagBits uint
		rc      reclaim.Maker
	}
	var out []cfg
	rcs := []struct {
		name string
		mk   reclaim.Maker
	}{
		{"none", nil},
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
	for _, p := range allProtections() {
		for _, r := range rcs {
			out = append(out, cfg{p.name + "+" + r.name, p.prot, p.tagBits, r.mk})
		}
	}
	return out
}

func TestStackPeekMatrix(t *testing.T) {
	for _, c := range readPathConfigs() {
		t.Run(c.name, func(t *testing.T) {
			var opts []StructOption
			if c.rc != nil {
				opts = append(opts, WithReclaimer(c.rc))
			}
			s, err := NewStack(shmem.NewNativeFactory(), 1, 8, c.prot, c.tagBits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			h := stackHandle(t, s, 0)
			if !h.IsEmpty() {
				t.Error("fresh stack not empty")
			}
			if _, ok := h.Peek(); ok {
				t.Error("Peek on an empty stack hit")
			}
			for i := 1; i <= 3; i++ {
				if !h.Push(Word(i * 10)) {
					t.Fatalf("push %d failed", i)
				}
				if v, ok := h.Peek(); !ok || v != Word(i*10) {
					t.Fatalf("Peek after push %d = (%d,%v), want (%d,true)", i, v, ok, i*10)
				}
				if h.IsEmpty() {
					t.Fatalf("IsEmpty true with %d elements", i)
				}
			}
			// Peek must not consume: the pops still see all three values.
			for i := 3; i >= 1; i-- {
				if v, ok := h.Peek(); !ok || v != Word(i*10) {
					t.Fatalf("Peek before pop %d = (%d,%v)", i, v, ok)
				}
				if v, ok := h.Pop(); !ok || v != Word(i*10) {
					t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i*10)
				}
			}
			if !h.IsEmpty() {
				t.Error("drained stack not empty")
			}
			if a := s.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
		})
	}
}

func TestQueuePeekMatrix(t *testing.T) {
	for _, c := range readPathConfigs() {
		t.Run(c.name, func(t *testing.T) {
			var opts []StructOption
			if c.rc != nil {
				opts = append(opts, WithReclaimer(c.rc))
			}
			q, err := NewQueue(shmem.NewNativeFactory(), 1, 8, c.prot, c.tagBits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			if !h.IsEmpty() {
				t.Error("fresh queue not empty")
			}
			if _, ok := h.Peek(); ok {
				t.Error("Peek on an empty queue hit")
			}
			for i := 1; i <= 3; i++ {
				if !h.Enq(Word(i * 10)) {
					t.Fatalf("enq %d failed", i)
				}
				// FIFO: the front stays the first value while the tail grows.
				if v, ok := h.Peek(); !ok || v != 10 {
					t.Fatalf("Peek after enq %d = (%d,%v), want (10,true)", i, v, ok)
				}
			}
			for i := 1; i <= 3; i++ {
				if v, ok := h.Peek(); !ok || v != Word(i*10) {
					t.Fatalf("Peek before deq %d = (%d,%v)", i, v, ok)
				}
				if v, ok := h.Deq(); !ok || v != Word(i*10) {
					t.Fatalf("deq = (%d,%v), want (%d,true)", v, ok, i*10)
				}
			}
			if !h.IsEmpty() {
				t.Error("drained queue not empty")
			}
			if a := q.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
		})
	}
}

// TestPeekAllocsAndNoReclaimerTraffic is the stack/queue analogue of the
// map's hot-path test: a clean Peek allocates nothing and takes zero
// shared-memory steps on the reclaimer's state (no hazard publish, no epoch
// pin), while a mutating op on the same handle proves the counter is live.
func TestPeekAllocsAndNoReclaimerTraffic(t *testing.T) {
	counting := shmem.NewCounting(shmem.NewNativeFactory(), 1)
	counted := func(f shmem.Factory, name string, n, capacity int) (reclaim.Reclaimer, error) {
		return reclaim.NewHazard(counting, name, n, capacity)
	}
	s, err := NewStack(shmem.NewNativeFactory(), 1, 8, LLSC, 0, WithReclaimer(counted))
	if err != nil {
		t.Fatal(err)
	}
	h := stackHandle(t, s, 0)
	if !h.Push(42) {
		t.Fatal("push failed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if v, ok := h.Peek(); !ok || v != 42 {
			t.Fatalf("Peek = (%d,%v)", v, ok)
		}
	})
	if allocs != 0 {
		t.Errorf("clean Peek allocates %.1f objects/op, want 0", allocs)
	}
	base := counting.Steps(0)
	for i := 0; i < 100; i++ {
		h.Peek()
		h.IsEmpty()
	}
	if d := counting.Steps(0) - base; d != 0 {
		t.Errorf("clean Peeks took %d reclaimer steps, want 0", d)
	}
	base = counting.Steps(0)
	if _, ok := h.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if d := counting.Steps(0) - base; d == 0 {
		t.Error("guarded Pop took no reclaimer steps — the counter is not observing the hazard slots")
	}
}
