package apps

import (
	"sort"
	"testing"

	"abadetect/internal/guard"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// poolBooks checks the conservation law across a growth sequence: at every
// quiescent point, Snapshot (free + limbo + cached + wilderness) plus the
// indices the test still holds must be exactly 1..capacity, no duplicates.
func poolBooks(t *testing.T, p Pool, held map[int]bool, capacity int, when string) {
	t.Helper()
	seen := make(map[int]int)
	for _, idx := range p.Snapshot() {
		seen[idx]++
	}
	for idx := range held {
		seen[idx]++
	}
	var missing, doubled []int
	for i := 1; i <= capacity; i++ {
		switch seen[i] {
		case 0:
			missing = append(missing, i)
		case 1:
		default:
			doubled = append(doubled, i)
		}
	}
	var stray []int
	for idx := range seen {
		if idx < 1 || idx > capacity {
			stray = append(stray, idx)
		}
	}
	sort.Ints(missing)
	sort.Ints(doubled)
	sort.Ints(stray)
	if len(missing)+len(doubled)+len(stray) > 0 {
		t.Fatalf("%s: books off: missing=%v doubled=%v stray=%v (capacity %d)",
			when, missing, doubled, stray, capacity)
	}
}

// TestPoolGrowthBooks drives every pool composition (fifo/guarded base,
// hp/epoch reclaimer, with and without a local cache) through a geometric
// growth sequence under live alloc/release traffic and checks that Snapshot
// and PoolStats stay exact across every segment append.
func TestPoolGrowthBooks(t *testing.T) {
	const (
		n       = 2
		initial = 4
		ceiling = 32
	)
	for _, tc := range []struct {
		name string
		cfg  func(mk guard.Maker) StructConfig
	}{
		{"fifo+hp", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, Reclaim: reclaim.NewHazard, GrowTo: ceiling}
		}},
		{"fifo+epoch", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, Reclaim: reclaim.NewEpoch, GrowTo: ceiling}
		}},
		{"guarded+hp", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, GuardedPool: true, Reclaim: reclaim.NewHazard, GrowTo: ceiling}
		}},
		{"guarded+epoch", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, GuardedPool: true, Reclaim: reclaim.NewEpoch, GrowTo: ceiling}
		}},
		{"guarded+epoch+cache", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, GuardedPool: true, Reclaim: reclaim.NewEpoch, LocalCache: 4, GrowTo: ceiling}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := shmem.NewNativeFactory()
			mk := guard.NewMaker(f, n, guard.LLSC, 0)
			p, err := NewPool(f, tc.cfg(mk), "grow", n, initial, shmem.BitsFor(ceiling+1))
			if err != nil {
				t.Fatal(err)
			}
			h, err := p.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			held := make(map[int]bool)
			alloc := func() bool {
				idx := h.Alloc()
				if idx == 0 {
					return false
				}
				if held[idx] {
					t.Fatalf("double allocation of %d (held %v)", idx, held)
				}
				held[idx] = true
				return true
			}

			// Drain the initial capacity dry.
			for i := 0; i < initial; i++ {
				if !alloc() {
					t.Fatalf("exhausted before initial capacity (%d held)", len(held))
				}
			}
			if alloc() {
				t.Fatalf("alloc past capacity %d succeeded", initial)
			}
			if st := p.Stats(); st.Exhaustions == 0 {
				t.Errorf("exhaustion at initial capacity not counted: %+v", st)
			}
			poolBooks(t, p, held, initial, "at initial capacity")

			// Geometric appends; after each one the new wilderness must be
			// allocatable and the books exact.
			for cap := initial * 2; cap <= ceiling; cap *= 2 {
				got, err := p.Grow(cap)
				if err != nil || got != cap {
					t.Fatalf("Grow(%d) = %d, %v", cap, got, err)
				}
				poolBooks(t, p, held, cap, "after grow")
				// Churn: release half of what we hold (into limbo), then
				// allocate back up to the new capacity.
				i := 0
				for idx := range held {
					if i++; i%2 == 0 {
						h.Release(idx)
						delete(held, idx)
					}
				}
				for alloc() {
				}
				h.Clear()
				for h.Drain() > 0 {
				}
				poolBooks(t, p, held, cap, "after churn")
			}

			st := p.Stats()
			if want := int64(3); st.Grows != want { // 8, 16, 32
				t.Errorf("Grows = %d, want %d", st.Grows, want)
			}
			if got, err := p.Grow(ceiling / 2); err != nil || got != ceiling {
				t.Errorf("shrink request = %d, %v; want no-op at %d", got, err, ceiling)
			}
			if st := p.Stats(); st.Grows != 3 {
				t.Errorf("no-op Grow counted: Grows = %d", st.Grows)
			}
		})
	}
}
