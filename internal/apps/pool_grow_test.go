package apps

import (
	"sort"
	"testing"

	"abadetect/internal/guard"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// poolBooks checks the conservation law across a growth sequence: at every
// quiescent point, Snapshot (free + limbo + cached + wilderness) plus the
// indices the test still holds must be exactly 1..capacity, no duplicates.
func poolBooks(t *testing.T, p Pool, held map[int]bool, capacity int, when string) {
	t.Helper()
	seen := make(map[int]int)
	for _, idx := range p.Snapshot() {
		seen[idx]++
	}
	for idx := range held {
		seen[idx]++
	}
	var missing, doubled []int
	for i := 1; i <= capacity; i++ {
		switch seen[i] {
		case 0:
			missing = append(missing, i)
		case 1:
		default:
			doubled = append(doubled, i)
		}
	}
	var stray []int
	for idx := range seen {
		if idx < 1 || idx > capacity {
			stray = append(stray, idx)
		}
	}
	sort.Ints(missing)
	sort.Ints(doubled)
	sort.Ints(stray)
	if len(missing)+len(doubled)+len(stray) > 0 {
		t.Fatalf("%s: books off: missing=%v doubled=%v stray=%v (capacity %d)",
			when, missing, doubled, stray, capacity)
	}
}

// TestPoolGrowRetunesReclaimer pins the capacity seam: NewPool hands the
// reclaimer (built for the growth ceiling) the *initial* capacity, and
// Pool.Grow hands it each new live capacity (reclaim.Resizer), so the
// capacity-derived drain cadence always reflects the pool the allocator is
// actually running — a young pool drains eagerly, a grown pool lazily.
// The cadence is observed behaviorally: the retire count at which a
// scan/drain attempt fires, before and after growth.
func TestPoolGrowRetunesReclaimer(t *testing.T) {
	const (
		n       = 4
		initial = 8
		ceiling = 64
	)
	for _, tc := range []struct {
		name   string
		maker  reclaim.Maker
		before int // drain cadence at the initial capacity
		after  int // drain cadence once grown to the ceiling
	}{
		// hp: threshold = min(2·n·Slots, c/n) = min(16, 8/4) young, min(16,
		// 64/4) grown.
		{"hp", reclaim.NewHazard, 2, 16},
		// epoch: threshold = min(2n, c/n) = min(8, 2) young, min(8, 16)
		// grown.
		{"epoch", reclaim.NewEpoch, 2, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := shmem.NewNativeFactory()
			mk := guard.NewMaker(f, n, guard.LLSC, 0)
			cfg := StructConfig{Maker: mk, Reclaim: tc.maker, GrowTo: ceiling}
			p, err := NewPool(f, cfg, "tune", n, initial, shmem.BitsFor(ceiling+1))
			if err != nil {
				t.Fatal(err)
			}
			h, err := p.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			// sweeps counts drain attempts: epoch advance passes plus hazard
			// scans, cached or not (a threshold retire may be served from
			// hp's snapshot cache — still a cadence firing).
			sweeps := func() int64 {
				m := p.Stats().Reclaim
				return m.Scans + m.SkippedScans
			}
			// cycle allocates k nodes and retires them all.
			cycle := func(k int) {
				t.Helper()
				idxs := make([]int, 0, k)
				for i := 0; i < k; i++ {
					idx := h.Alloc()
					if idx == 0 {
						t.Fatalf("alloc %d/%d failed", i+1, k)
					}
					idxs = append(idxs, idx)
				}
				for _, idx := range idxs {
					h.Release(idx)
				}
			}
			// Young pool: the cadence must derive from the LIVE capacity,
			// not the construction ceiling the buffers are sized for.
			cycle(tc.before - 1)
			if s := sweeps(); s != 0 {
				t.Fatalf("drain before the young-pool cadence (%d retires): sweeps=%d", tc.before-1, s)
			}
			cycle(1)
			base := sweeps()
			if base == 0 {
				t.Fatalf("no drain at the young-pool cadence %d", tc.before)
			}
			// Grown pool: the cadence must be recomputed for the new
			// capacity, not left at the young pool's eager setting.
			if got, err := p.Grow(ceiling); err != nil || got != ceiling {
				t.Fatalf("Grow(%d) = %d, %v", ceiling, got, err)
			}
			cycle(tc.after - 1)
			if s := sweeps(); s != base {
				t.Fatalf("drain before the grown cadence (%d retires): sweeps=%d, want %d", tc.after-1, s, base)
			}
			cycle(1)
			if s := sweeps(); s <= base {
				t.Fatalf("no drain at the grown cadence %d: sweeps=%d", tc.after, s)
			}
		})
	}
}

// TestPoolGrowthBooks drives every pool composition (fifo/guarded base,
// hp/epoch reclaimer, with and without a local cache) through a geometric
// growth sequence under live alloc/release traffic and checks that Snapshot
// and PoolStats stay exact across every segment append.
func TestPoolGrowthBooks(t *testing.T) {
	const (
		n       = 2
		initial = 4
		ceiling = 32
	)
	for _, tc := range []struct {
		name string
		cfg  func(mk guard.Maker) StructConfig
	}{
		{"fifo+hp", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, Reclaim: reclaim.NewHazard, GrowTo: ceiling}
		}},
		{"fifo+epoch", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, Reclaim: reclaim.NewEpoch, GrowTo: ceiling}
		}},
		{"guarded+hp", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, GuardedPool: true, Reclaim: reclaim.NewHazard, GrowTo: ceiling}
		}},
		{"guarded+epoch", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, GuardedPool: true, Reclaim: reclaim.NewEpoch, GrowTo: ceiling}
		}},
		{"guarded+epoch+cache", func(mk guard.Maker) StructConfig {
			return StructConfig{Maker: mk, GuardedPool: true, Reclaim: reclaim.NewEpoch, LocalCache: 4, GrowTo: ceiling}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := shmem.NewNativeFactory()
			mk := guard.NewMaker(f, n, guard.LLSC, 0)
			p, err := NewPool(f, tc.cfg(mk), "grow", n, initial, shmem.BitsFor(ceiling+1))
			if err != nil {
				t.Fatal(err)
			}
			h, err := p.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			held := make(map[int]bool)
			alloc := func() bool {
				idx := h.Alloc()
				if idx == 0 {
					return false
				}
				if held[idx] {
					t.Fatalf("double allocation of %d (held %v)", idx, held)
				}
				held[idx] = true
				return true
			}

			// Drain the initial capacity dry.
			for i := 0; i < initial; i++ {
				if !alloc() {
					t.Fatalf("exhausted before initial capacity (%d held)", len(held))
				}
			}
			if alloc() {
				t.Fatalf("alloc past capacity %d succeeded", initial)
			}
			if st := p.Stats(); st.Exhaustions == 0 {
				t.Errorf("exhaustion at initial capacity not counted: %+v", st)
			}
			poolBooks(t, p, held, initial, "at initial capacity")

			// Geometric appends; after each one the new wilderness must be
			// allocatable and the books exact.
			for cap := initial * 2; cap <= ceiling; cap *= 2 {
				got, err := p.Grow(cap)
				if err != nil || got != cap {
					t.Fatalf("Grow(%d) = %d, %v", cap, got, err)
				}
				poolBooks(t, p, held, cap, "after grow")
				// Churn: release half of what we hold (into limbo), then
				// allocate back up to the new capacity.
				i := 0
				for idx := range held {
					if i++; i%2 == 0 {
						h.Release(idx)
						delete(held, idx)
					}
				}
				for alloc() {
				}
				h.Clear()
				for h.Drain() > 0 {
				}
				poolBooks(t, p, held, cap, "after churn")
			}

			st := p.Stats()
			if want := int64(3); st.Grows != want { // 8, 16, 32
				t.Errorf("Grows = %d, want %d", st.Grows, want)
			}
			if got, err := p.Grow(ceiling / 2); err != nil || got != ceiling {
				t.Errorf("shrink request = %d, %v; want no-op at %d", got, err, ceiling)
			}
			if st := p.Stats(); st.Grows != 3 {
				t.Errorf("no-op Grow counted: Grows = %d", st.Grows)
			}
		})
	}
}
