package apps

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abadetect/internal/shmem"
)

func newQueue(t *testing.T, n, capacity int) *Queue {
	t.Helper()
	q, err := NewQueue(shmem.NewNativeFactory(), n, capacity, LLSC, 0)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func queueHandle(t *testing.T, q *Queue, pid int) *QueueHandle {
	t.Helper()
	h, err := q.Handle(pid)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestQueueSequentialFIFO(t *testing.T) {
	q := newQueue(t, 2, 8)
	h := queueHandle(t, q, 0)
	for i := 1; i <= 6; i++ {
		if !h.Enq(Word(i * 10)) {
			t.Fatalf("enq %d failed", i)
		}
	}
	for i := 1; i <= 6; i++ {
		v, ok := h.Deq()
		if !ok || v != Word(i*10) {
			t.Fatalf("deq = (%d,%v), want (%d,true)", v, ok, i*10)
		}
	}
	if _, ok := h.Deq(); ok {
		t.Error("deq from empty queue succeeded")
	}
	if a := q.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
}

func TestQueueEmptyThenReuse(t *testing.T) {
	q := newQueue(t, 1, 3)
	h := queueHandle(t, q, 0)
	for round := 0; round < 30; round++ {
		if !h.Enq(Word(round)) {
			t.Fatalf("round %d: enq failed", round)
		}
		v, ok := h.Deq()
		if !ok || v != Word(round) {
			t.Fatalf("round %d: deq = (%d,%v)", round, v, ok)
		}
		if _, ok := h.Deq(); ok {
			t.Fatalf("round %d: queue should be empty", round)
		}
	}
	// Node recycling must have cycled through the pool several times.
	if a := q.Audit(); a.Corrupt() {
		t.Errorf("audit after reuse: %s", a)
	}
}

func TestQueueCapacity(t *testing.T) {
	q := newQueue(t, 1, 3)
	h := queueHandle(t, q, 0)
	// capacity+1 nodes total, one consumed by the dummy: 3 usable.
	pushed := 0
	for i := 0; i < 10; i++ {
		if h.Enq(Word(i)) {
			pushed++
		}
	}
	if pushed != 3 {
		t.Errorf("enqueued %d values, want 3", pushed)
	}
	if _, ok := h.Deq(); !ok {
		t.Error("deq failed")
	}
	if !h.Enq(99) {
		t.Error("enq after deq should succeed (node recycled)")
	}
}

func TestQueueConstructorValidation(t *testing.T) {
	f := shmem.NewNativeFactory()
	if _, err := NewQueue(f, 0, 4, LLSC, 0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewQueue(f, 2, 0, LLSC, 0); err == nil {
		t.Error("want error for capacity=0")
	}
	if _, err := NewQueue(f, 2, 4, Tagged, 0); err == nil {
		t.Error("want error for tagged with 0 tag bits")
	}
	if _, err := NewQueue(f, 2, 4, Protection(99), 0); err == nil {
		t.Error("want error for unknown protection")
	}
	q := newQueue(t, 2, 4)
	if _, err := q.Handle(-1); err == nil {
		t.Error("want error for bad pid")
	}
}

func TestQueueInterleavedTwoHandles(t *testing.T) {
	q := newQueue(t, 2, 8)
	a := queueHandle(t, q, 0)
	b := queueHandle(t, q, 1)
	a.Enq(1)
	b.Enq(2)
	a.Enq(3)
	if v, ok := b.Deq(); !ok || v != 1 {
		t.Fatalf("deq = (%d,%v), want (1,true)", v, ok)
	}
	if v, ok := a.Deq(); !ok || v != 2 {
		t.Fatalf("deq = (%d,%v), want (2,true)", v, ok)
	}
	if v, ok := b.Deq(); !ok || v != 3 {
		t.Fatalf("deq = (%d,%v), want (3,true)", v, ok)
	}
}

func TestQueueStressMPMC(t *testing.T) {
	// Multi-producer multi-consumer accounting + per-producer FIFO order.
	// Consumers run until every producer has finished AND the queue reads
	// empty — never on a fixed quota or miss budget, which can strand the
	// producers spinning on an exhausted pool with nobody left to drain it
	// (the deadline converts any genuine loss of progress into a clean
	// failure instead of a hang).
	const producers = 4
	const consumers = 4
	const perProducer = 400
	q := newQueue(t, producers+consumers, 32)
	deadline := time.Now().Add(2 * time.Minute)

	var producersDone atomic.Int32
	var wg sync.WaitGroup
	consumed := make([][]Word, consumers)
	for c := 0; c < consumers; c++ {
		h := queueHandle(t, q, producers+c)
		wg.Add(1)
		go func(c int, h *QueueHandle) {
			defer wg.Done()
			for {
				if v, ok := h.Deq(); ok {
					consumed[c] = append(consumed[c], v)
					continue
				}
				// Empty right now.  Only quit once no producer can refill.
				if producersDone.Load() == producers {
					return
				}
				if time.Now().After(deadline) {
					t.Error("consumer timed out waiting for producers")
					return
				}
				runtime.Gosched()
			}
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h := queueHandle(t, q, p)
		wg.Add(1)
		go func(p int, h *QueueHandle) {
			defer wg.Done()
			defer producersDone.Add(1)
			for i := 0; i < perProducer; i++ {
				v := Word(p)<<32 | Word(i)
				for !h.Enq(v) {
					// Pool momentarily exhausted; consumers will drain.
					if time.Now().After(deadline) {
						t.Errorf("producer %d timed out at item %d", p, i)
						return
					}
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drain leftovers.
	h := queueHandle(t, q, 0)
	var drained []Word
	for {
		v, ok := h.Deq()
		if !ok {
			break
		}
		drained = append(drained, v)
	}

	// Accounting: every produced value consumed exactly once.
	seen := map[Word]int{}
	lastPerProducer := map[Word]int64{}
	for p := 0; p < producers; p++ {
		lastPerProducer[Word(p)] = -1
	}
	all := append([]Word{}, drained...)
	for c := range consumed {
		// Per-consumer, per-producer FIFO: indices from one producer must
		// arrive in increasing order at any single consumer.
		last := map[Word]int64{}
		for _, v := range consumed[c] {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d's items out of order: %d after %d", c, p, i, prev)
			}
			last[p] = i
		}
		all = append(all, consumed[c]...)
	}
	for _, v := range all {
		seen[v]++
		if seen[v] > 1 {
			t.Fatalf("value %#x consumed twice", v)
		}
	}
	if len(all) != producers*perProducer {
		t.Fatalf("consumed %d values, want %d", len(all), producers*perProducer)
	}
	if a := q.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
}

// TestEnqTailHelpCannotSwingBackwards replays the backward-swing hazard in
// Enq's post-linearization help: A links its node after the tail and stalls;
// B's enqueue helps the tail past A's node and onto its own; C dequeues
// both values, freeing A's node.  A's deferred tail help must now fail —
// it is armed from A's original Load of the tail — rather than re-arm
// against the current tail and drag it backwards onto the freed node.  A
// value-blind re-armed commit would succeed under every regime, LL/SC
// included, because no tail write intervenes between its re-Load and its
// commit; only arming from the pre-link Load makes the regimes reject it.
func TestEnqTailHelpCannotSwingBackwards(t *testing.T) {
	for _, tc := range allProtections() {
		t.Run(tc.name, func(t *testing.T) {
			q, err := NewQueue(shmem.NewNativeFactory(), 3, 4, tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			a := queueHandle(t, q, 0)
			b := queueHandle(t, q, 1)
			c := queueHandle(t, q, 2)

			var tailAfterStall Word
			a.testEnqAfterLink = func() {
				a.testEnqAfterLink = nil
				if !b.Enq(7) {
					t.Fatal("stalled-window enq failed")
				}
				for _, want := range []Word{5, 7} {
					if v, ok := c.Deq(); !ok || v != want {
						t.Fatalf("stalled-window deq = (%d,%v), want (%d,true)", v, ok, want)
					}
				}
				tailAfterStall = q.tail.Peek(-1)
			}
			if !a.Enq(5) {
				t.Fatal("enq 5 failed")
			}
			if got := q.tail.Peek(-1); got != tailAfterStall {
				t.Fatalf("tail swung backwards after stale help: %d -> %d", tailAfterStall, got)
			}
			if audit := q.Audit(); audit.Corrupt() {
				t.Fatalf("audit after stale help: %s", audit)
			}
			// The pool keeps recycling cleanly afterwards: the node A's stale
			// help targeted is reallocated and retired several times over.
			for round := 0; round < 2*q.Capacity(); round++ {
				if !b.Enq(Word(100 + round)) {
					t.Fatalf("round %d: enq failed", round)
				}
				if v, ok := c.Deq(); !ok || v != Word(100+round) {
					t.Fatalf("round %d: deq = (%d,%v)", round, v, ok)
				}
			}
			if audit := q.Audit(); audit.Corrupt() {
				t.Fatalf("final audit: %s", audit)
			}
		})
	}
}

func TestQueueAuditStates(t *testing.T) {
	q := newQueue(t, 1, 4)
	h := queueHandle(t, q, 0)
	a := q.Audit()
	if a.Length != 0 || a.Corrupt() {
		t.Errorf("fresh audit: %s", a)
	}
	h.Enq(5)
	h.Enq(6)
	a = q.Audit()
	if a.Length != 2 || a.Corrupt() {
		t.Errorf("after 2 enqs: %s", a)
	}
}
