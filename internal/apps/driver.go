package apps

import (
	"fmt"

	"abadetect/internal/guard"
	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
	"abadetect/internal/trace"
)

// Instance is one constructed structure plus its fixed benchmark workload —
// the uniform driver behind the application-throughput matrices (E11's
// structure × guard sweep, E12's structure × regime × reclaimer sweep,
// abalab -app / -reclaim).  The registry's KindStructure entries construct
// Instances, so the harness enumerates structures the same way it
// enumerates detectors, LL/SC objects, and reclaimers.
type Instance interface {
	// Worker returns pid's workload step; the argument is the op index.
	// Workers are single-goroutine, like all handles.
	Worker(pid int) (func(i int), error)
	// Audit reports structural damage at quiescence.
	Audit() (corrupt bool, detail string)
	// GuardMetrics aggregates the structure's reference-guard counters.
	GuardMetrics() guard.Metrics
	// FreelistMetrics reports the node pool's guard counters (zero without
	// a guarded pool).
	FreelistMetrics() guard.Metrics
	// PoolStats reports the allocator's exhaustion and reclamation
	// counters (zero scheme "none" for the event flag, which has no pool).
	PoolStats() PoolStats
}

// OpKind names one keyed operation of the traffic model: the op mix a load
// profile configures is a distribution over these.
type OpKind int

// Keyed operations.
const (
	// OpGet looks a key up.
	OpGet OpKind = iota
	// OpPut binds a key to a value.
	OpPut
	// OpDelete removes a key's binding.
	OpDelete
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Keyed is the richer driver seam a keyed structure (the hash map) offers on
// top of Instance: a per-process step that takes the operation and the key
// instead of an opaque op index, so the load generator's Zipf popularity and
// get/put/delete mix actually reach the structure.  Structures without keys
// (stack, queue, event flag) simply don't implement it and are driven
// through Worker.
type Keyed interface {
	// KeyedWorker returns pid's keyed step.  Like Worker's step it is
	// single-goroutine.
	KeyedWorker(pid int) (func(op OpKind, key, val Word), error)
}

// ReadMostly is the optional Instance seam for the read-scaling experiments:
// a workload step that is ~90% wait-free reads (Peek/Get) with a 5%/5%
// insert/remove trickle keeping the structure warm.  Structures without a
// read fast path simply don't implement it and stay out of the read-scaling
// matrix.
type ReadMostly interface {
	// ReadMostlyWorker returns pid's read-heavy step; the argument is the op
	// index.  Single-goroutine, like Worker's step.
	ReadMostlyWorker(pid int) (func(i int), error)
}

// InstanceOptions selects the allocator and fast-path configuration of a
// benchmark instance: a guarded free list, a reclaimer, and the tail-latency
// knobs (elimination, combining, local caches).
type InstanceOptions struct {
	// GuardedPool routes the free list through a guard of the structure's
	// regime (see WithGuardedPool).
	GuardedPool bool
	// Reclaim, when non-nil, routes node releases through a safe-memory-
	// reclamation scheme (see WithReclaimer).
	Reclaim reclaim.Maker
	// Elimination, when positive, enables the elimination-backoff exchanger
	// with that many slots on structures that support it (see
	// WithElimination).
	Elimination int
	// LocalCache, when positive, fronts the pool with per-process free
	// stacks of that capacity (see WithLocalCache).
	LocalCache int
	// Combining enables flat-combining batching on structures that support
	// it (see WithCombining).
	Combining bool
	// GrowTo, when positive, enables online growth up to that many nodes on
	// structures that support it (see WithGrowth).
	GrowTo int
	// Trace, when non-nil, attaches a flight recorder to every guard,
	// allocator, and reclaimer seam (see WithTrace).
	Trace *trace.Recorder
}

// StructOpts renders the instance options as constructor options.
func (io InstanceOptions) StructOpts(mk guard.Maker) []StructOption {
	opts := []StructOption{WithMaker(mk)}
	if io.GuardedPool {
		opts = append(opts, WithGuardedPool())
	}
	if io.Reclaim != nil {
		opts = append(opts, WithReclaimer(io.Reclaim))
	}
	if io.Elimination > 0 {
		opts = append(opts, WithElimination(io.Elimination))
	}
	if io.LocalCache > 0 {
		opts = append(opts, WithLocalCache(io.LocalCache))
	}
	if io.Combining {
		opts = append(opts, WithCombining())
	}
	if io.GrowTo > 0 {
		opts = append(opts, WithGrowth(io.GrowTo))
	}
	if io.Trace != nil {
		opts = append(opts, WithTrace(io.Trace))
	}
	return opts
}

// FastPathStats counts the work the tail-latency fast paths absorbed: ops
// that skipped the contended mainline entirely.  Cache hits live in
// PoolStats.Local, next to the allocator they bypass.
type FastPathStats struct {
	// ElimHits and ElimMisses are the elimination exchanger's counters.
	ElimHits, ElimMisses int64
	// CombinedOps counts operations a combiner applied on behalf of other
	// processes; CombineBatches counts combiner acquisitions.
	CombinedOps, CombineBatches int64
}

// FastPather is the optional Instance seam for structures with elimination
// or combining fast paths; instances without one simply don't implement it.
type FastPather interface {
	FastPathStats() FastPathStats
}

// maxSpin bounds the queue's retry loops in matrix runs: a raw-guarded
// queue that has been ABA-corrupted can cycle its next chain, and a bounded
// spin turns the resulting livelock into failed operations.
const maxSpin = 10_000

// NewStackInstance builds a stack of the given capacity whose workload is a
// push/pop pair per op.
func NewStackInstance(f shmem.Factory, n, capacity int, mk guard.Maker, io InstanceOptions) (Instance, error) {
	s, err := NewStack(f, n, capacity, 0, 0, io.StructOpts(mk)...)
	if err != nil {
		return nil, err
	}
	return stackInstance{s}, nil
}

type stackInstance struct{ s *Stack }

func (in stackInstance) Worker(pid int) (func(i int), error) {
	h, err := in.s.Handle(pid)
	if err != nil {
		return nil, err
	}
	return func(i int) {
		h.Push(Word(pid)<<32 | Word(i))
		h.Pop()
	}, nil
}

// ReadMostlyWorker: 1 push and 1 pop per 20 ops, 18 wait-free peeks between
// them — the read-scaling workload (E14).  The push leads each cycle so the
// peeks mostly observe a non-empty stack.
func (in stackInstance) ReadMostlyWorker(pid int) (func(i int), error) {
	h, err := in.s.Handle(pid)
	if err != nil {
		return nil, err
	}
	return func(i int) {
		switch i % 20 {
		case 0:
			h.Push(Word(pid)<<32 | Word(i))
		case 19:
			h.Pop()
		default:
			h.Peek()
		}
	}, nil
}

func (in stackInstance) Audit() (bool, string) {
	a := in.s.Audit()
	return a.Corrupt(), a.String()
}

func (in stackInstance) GuardMetrics() guard.Metrics    { return in.s.GuardMetrics() }
func (in stackInstance) FreelistMetrics() guard.Metrics { return in.s.FreelistMetrics() }
func (in stackInstance) PoolStats() PoolStats           { return in.s.PoolStats() }

func (in stackInstance) FastPathStats() FastPathStats {
	hits, misses := in.s.ElimStats()
	return FastPathStats{ElimHits: hits, ElimMisses: misses}
}

// NewQueueInstance builds a queue of the given capacity whose workload is
// an enq/deq pair per op, with bounded retry loops (see QueueHandle.MaxSpin).
func NewQueueInstance(f shmem.Factory, n, capacity int, mk guard.Maker, io InstanceOptions) (Instance, error) {
	q, err := NewQueue(f, n, capacity, 0, 0, io.StructOpts(mk)...)
	if err != nil {
		return nil, err
	}
	return queueInstance{q}, nil
}

type queueInstance struct{ q *Queue }

func (in queueInstance) Worker(pid int) (func(i int), error) {
	h, err := in.q.Handle(pid)
	if err != nil {
		return nil, err
	}
	h.MaxSpin = maxSpin
	return func(i int) {
		h.Enq(Word(pid)<<32 | Word(i))
		h.Deq()
	}, nil
}

// ReadMostlyWorker: 1 enq and 1 deq per 20 ops, 18 wait-free peeks between
// them — the queue's read-scaling workload (E14).
func (in queueInstance) ReadMostlyWorker(pid int) (func(i int), error) {
	h, err := in.q.Handle(pid)
	if err != nil {
		return nil, err
	}
	h.MaxSpin = maxSpin
	return func(i int) {
		switch i % 20 {
		case 0:
			h.Enq(Word(pid)<<32 | Word(i))
		case 19:
			h.Deq()
		default:
			h.Peek()
		}
	}, nil
}

func (in queueInstance) Audit() (bool, string) {
	a := in.q.Audit()
	return a.Corrupt(), a.String()
}

func (in queueInstance) GuardMetrics() guard.Metrics    { return in.q.GuardMetrics() }
func (in queueInstance) FreelistMetrics() guard.Metrics { return in.q.FreelistMetrics() }
func (in queueInstance) PoolStats() PoolStats           { return in.q.PoolStats() }

// NewEventInstance builds an event flag whose workload makes pid 0 the
// signaler (alternating Signal/Reset) and every other pid a poller.  The
// event flag has no node pool, so the allocator options are ignored.
func NewEventInstance(f shmem.Factory, n, _ int, mk guard.Maker, _ InstanceOptions) (Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("apps: event instance needs n >= 2 (a signaler and a poller), got %d", n)
	}
	e, err := NewProtectedEventFlag(f, n, 0, 0, WithMaker(mk))
	if err != nil {
		return nil, err
	}
	return eventInstance{e}, nil
}

type eventInstance struct{ e *EventFlag }

func (in eventInstance) Worker(pid int) (func(i int), error) {
	h, err := in.e.Handle(pid)
	if err != nil {
		return nil, err
	}
	if pid == 0 {
		return func(i int) {
			if i%2 == 0 {
				h.Signal()
			} else {
				h.Reset()
			}
		}, nil
	}
	return func(int) { h.Poll() }, nil
}

func (in eventInstance) Audit() (bool, string) {
	// The flag has no linked structure to damage; missed pulses are a
	// semantic failure the deterministic experiments exhibit instead.
	return false, fmt.Sprintf("flag=%d", in.e.g.Peek(-1))
}

func (in eventInstance) GuardMetrics() guard.Metrics    { return in.e.GuardMetrics() }
func (in eventInstance) FreelistMetrics() guard.Metrics { return guard.Metrics{} }
func (in eventInstance) PoolStats() PoolStats           { return PoolStats{Scheme: "none"} }
