package apps

import (
	"sync"
	"testing"

	"abadetect/internal/reclaim"
	"abadetect/internal/shmem"
)

// This file is the reclamation-axis test suite: the deterministic §1
// scripts prevented by hp/epoch under a *raw* guard (the tentpole claim:
// safe memory reclamation stops the ABA the guard never sees), plus
// race-enabled MPMC accounting across the protection × reclaimer matrix.

func reclaimSchemes() []struct {
	name string
	mk   reclaim.Maker
} {
	return []struct {
		name string
		mk   reclaim.Maker
	}{
		{"hp", reclaim.NewHazard},
		{"epoch", reclaim.NewEpoch},
	}
}

// TestReclaimPreventsStackABA: the deterministic stack corruption script
// that provably fools a raw guard with immediate reuse is prevented by
// either reclaimer — with zero guard near-misses, because the recycle leg
// never happens and there is no ABA left to detect.  The explicit "none"
// pass-through must reproduce the corruption.
func TestReclaimPreventsStackABA(t *testing.T) {
	for _, tc := range reclaimSchemes() {
		t.Run("raw+"+tc.name, func(t *testing.T) {
			res, err := StackABAScenario(shmem.NewNativeFactory(), Raw, 0, WithReclaimer(tc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled || res.Corrupt {
				t.Fatalf("fooled=%v corrupt=%v (%s): reclamation did not prevent the ABA", res.Fooled, res.Corrupt, res.Detail)
			}
			if res.Guard.NearMisses != 0 {
				t.Errorf("near-misses = %d, want 0: prevention must happen below the guard", res.Guard.NearMisses)
			}
			if res.Pool.Reclaim.Retired == 0 {
				t.Error("no node ever retired through the reclaimer")
			}
		})
	}
	t.Run("raw+none", func(t *testing.T) {
		res, err := StackABAScenario(shmem.NewNativeFactory(), Raw, 0, WithReclaimer(reclaim.NewNone))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fooled || !res.Corrupt {
			t.Fatalf("fooled=%v corrupt=%v: the pass-through must preserve the §1 corruption", res.Fooled, res.Corrupt)
		}
	})
}

// TestReclaimPreventsQueueABA is the Michael–Scott twin.  Under a
// reclaimer the victim's protections cover the snapshotted dummy and its
// successor, so the adversary's re-enqueue starves instead of recycling
// them (Starved), and the stale head commit fails on a moved index.
func TestReclaimPreventsQueueABA(t *testing.T) {
	for _, tc := range reclaimSchemes() {
		t.Run("raw+"+tc.name, func(t *testing.T) {
			res, err := QueueABAScenario(shmem.NewNativeFactory(), Raw, 0, WithReclaimer(tc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled || res.Corrupt {
				t.Fatalf("fooled=%v corrupt=%v (%s): reclamation did not prevent the ABA", res.Fooled, res.Corrupt, res.Detail)
			}
			if res.Guard.NearMisses != 0 {
				t.Errorf("near-misses = %d, want 0: prevention must happen below the guard", res.Guard.NearMisses)
			}
			if !res.Starved {
				t.Error("the tiny pool should starve the adversary's re-enqueue while the victim's protections hold")
			}
			if res.Pool.Exhaustions == 0 {
				t.Error("the starved allocation was not counted as a pool exhaustion")
			}
		})
	}
	t.Run("raw+none", func(t *testing.T) {
		res, err := QueueABAScenario(shmem.NewNativeFactory(), Raw, 0, WithReclaimer(reclaim.NewNone))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fooled || !res.Corrupt {
			t.Fatalf("fooled=%v corrupt=%v: the pass-through must preserve the §1 corruption", res.Fooled, res.Corrupt)
		}
	})
}

// TestStackStressReclaimedRawIsSound is the headline concurrency claim:
// a *raw-guarded* stack — the §1 victim — satisfies hard MPMC accounting
// under either reclaimer, because a protected node cannot be recycled
// inside any operation's window.  Mirrors TestStackStressLLSCIsSound.
func TestStackStressReclaimedRawIsSound(t *testing.T) {
	for _, tc := range reclaimSchemes() {
		t.Run("raw+"+tc.name, func(t *testing.T) {
			// Default FIFO pool: node reclamation protects the structure's
			// references; a *raw guarded* free list would reintroduce its
			// own unprotected head swing, which is a different experiment.
			runStackStressAccounting(t, Raw, 0, WithReclaimer(tc.mk))
		})
	}
}

func runStackStressAccounting(t *testing.T, prot Protection, tagBits uint, opts ...StructOption) {
	t.Helper()
	const n = 8
	const perProc = 300
	s, err := NewStack(shmem.NewNativeFactory(), n, 16, prot, tagBits, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	popped := make([][]Word, n)
	pushed := make([][]Word, n)
	for pid := 0; pid < n; pid++ {
		h, err := s.Handle(pid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pid int, h *StackHandle) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				v := Word(pid)<<32 | Word(i)
				if h.Push(v) {
					pushed[pid] = append(pushed[pid], v)
				}
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[pid] = append(popped[pid], v)
					}
				}
			}
		}(pid, h)
	}
	wg.Wait()

	counts := map[Word]int{}
	for _, vs := range pushed {
		for _, v := range vs {
			counts[v]++
		}
	}
	for _, vs := range popped {
		for _, v := range vs {
			counts[v]--
			if counts[v] < 0 {
				t.Fatalf("value %#x popped more often than pushed", v)
			}
		}
	}
	h, err := s.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		counts[v]--
		if counts[v] < 0 {
			t.Fatalf("drained value %#x was never pushed (or popped twice)", v)
		}
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("value %#x lost (count %d)", v, c)
		}
	}
	if a := s.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
	ps := s.PoolStats()
	if ps.Reclaim.Retired == 0 {
		t.Error("workload never retired a node through the reclaimer")
	}
	t.Logf("pool: exhaustions=%d reclaim: %s", ps.Exhaustions, ps.Reclaim)
}

// TestQueueStressReclaimedRawIsSound runs the strict queue MPMC accounting
// (every value consumed exactly once, per-producer FIFO) with raw guards
// under each reclaimer.
func TestQueueStressReclaimedRawIsSound(t *testing.T) {
	for _, tc := range reclaimSchemes() {
		t.Run("raw+"+tc.name, func(t *testing.T) {
			runQueueMPMC(t, Raw, 0, WithReclaimer(tc.mk))
		})
	}
}

// TestQueueStressMPMCReclaimMatrix extends the sound-regime MPMC matrix
// with the reclamation axis: the stronger guards must stay correct with
// deferred reuse underneath (the schemes compose, not conflict).
func TestQueueStressMPMCReclaimMatrix(t *testing.T) {
	for _, tc := range soundProtections() {
		for _, rc := range reclaimSchemes() {
			t.Run(tc.name+"+"+rc.name, func(t *testing.T) {
				runQueueMPMC(t, tc.prot, tc.tagBits, WithReclaimer(rc.mk))
			})
		}
	}
}

// TestStackReclaimGuardedPoolCompose: a guarded free list AND a reclaimer
// together — retirement defers the release, the release then goes through
// the guarded LIFO head.  The free-list guard still counts its commits.
func TestStackReclaimGuardedPoolCompose(t *testing.T) {
	for _, rc := range reclaimSchemes() {
		t.Run("llsc+"+rc.name, func(t *testing.T) {
			s, err := NewStack(shmem.NewNativeFactory(), 4, 16, LLSC, 0,
				WithGuardedPool(), WithReclaimer(rc.mk))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for pid := 0; pid < 4; pid++ {
				h, err := s.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *StackHandle) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						h.Push(Word(pid)<<32 | Word(i))
						h.Pop()
					}
				}(pid, h)
			}
			wg.Wait()
			if a := s.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
			if m := s.FreelistMetrics(); m.Commits == 0 {
				t.Error("guarded free list never committed under the reclaimer")
			}
			if ps := s.PoolStats(); ps.Reclaim.Freed == 0 {
				t.Error("reclaimer never freed a node")
			}
		})
	}
}
