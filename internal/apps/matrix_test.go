package apps

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abadetect/internal/guard"
	"abadetect/internal/shmem"
)

// This file is the protection-matrix test suite the Guard refactor exists
// for: every structure exercised under every regime, race-enabled MPMC for
// the sound regimes, and differential foil tests asserting that the raw
// structures really do corrupt under the deterministic recycling schedules
// while the LL/SC and detector twins do not.

// soundProtections are the regimes whose structures must stay correct under
// arbitrary concurrency (a 16-bit tag cannot realistically wrap inside one
// operation's window).
func soundProtections() []struct {
	name    string
	prot    Protection
	tagBits uint
} {
	return []struct {
		name    string
		prot    Protection
		tagBits uint
	}{
		{"tagged16", Tagged, 16},
		{"llsc", LLSC, 0},
		{"detector", Detector, 0},
	}
}

// --- Queue across the matrix -----------------------------------------------

func TestQueueSequentialFIFOAllProtections(t *testing.T) {
	for _, tc := range allProtections() {
		t.Run(tc.name, func(t *testing.T) {
			q, err := NewQueue(shmem.NewNativeFactory(), 2, 8, tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 6; i++ {
				if !h.Enq(Word(i * 10)) {
					t.Fatalf("enq %d failed", i)
				}
			}
			for i := 1; i <= 6; i++ {
				v, ok := h.Deq()
				if !ok || v != Word(i*10) {
					t.Fatalf("deq = (%d,%v), want (%d,true)", v, ok, i*10)
				}
			}
			if a := q.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
		})
	}
}

// TestQueueStressMPMCMatrix mirrors stack_test's MPMC accounting across the
// sound regimes: every dequeued value was enqueued exactly once, per-producer
// FIFO order holds, nothing is lost, and the structure audits clean.
func TestQueueStressMPMCMatrix(t *testing.T) {
	for _, tc := range soundProtections() {
		for _, guarded := range []bool{false, true} {
			name := tc.name
			if guarded {
				name += "/guardedpool"
			}
			t.Run(name, func(t *testing.T) {
				var opts []StructOption
				if guarded {
					opts = append(opts, WithGuardedPool())
				}
				runQueueMPMC(t, tc.prot, tc.tagBits, opts...)
			})
		}
	}
}

func runQueueMPMC(t *testing.T, prot Protection, tagBits uint, opts ...StructOption) {
	const producers = 4
	const consumers = 4
	const perProducer = 300
	q, err := NewQueue(shmem.NewNativeFactory(), producers+consumers, 32, prot, tagBits, opts...)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)

	var producersDone atomic.Int32
	var wg sync.WaitGroup
	consumed := make([][]Word, consumers+1) // +1 for the post-run drain
	for c := 0; c < consumers; c++ {
		h, err := q.Handle(producers + c)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *QueueHandle) {
			defer wg.Done()
			for {
				if v, ok := h.Deq(); ok {
					consumed[c] = append(consumed[c], v)
					continue
				}
				// Empty right now.  Only quit once no producer can refill;
				// whatever other consumers left behind is drained below.
				if producersDone.Load() == producers {
					return
				}
				if time.Now().After(deadline) {
					t.Error("consumer timed out")
					return
				}
				// Yield so a spinning consumer cannot monopolize a core
				// (on small GOMAXPROCS the producers would starve).
				runtime.Gosched()
			}
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Handle(p)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *QueueHandle) {
			defer wg.Done()
			defer producersDone.Add(1)
			for i := 0; i < perProducer; i++ {
				for !h.Enq(Word(p)<<32 | Word(i)) {
					if time.Now().After(deadline) {
						t.Error("producer timed out")
						return
					}
					// A full pool means another process must run (a dequeue,
					// or a reclaimer scan) before this Enq can succeed —
					// yield instead of burning the whole time slice.
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()

	// Drain what the consumers' racy exits left behind.
	drain, err := q.Handle(producers)
	if err != nil {
		t.Fatal(err)
	}
	for {
		v, ok := drain.Deq()
		if !ok {
			break
		}
		consumed[consumers] = append(consumed[consumers], v)
	}

	// Accounting: every value consumed exactly once, per-producer in order.
	perProducerSeen := make([]map[int64]bool, producers)
	for i := range perProducerSeen {
		perProducerSeen[i] = make(map[int64]bool, perProducer)
	}
	for c := range consumed {
		last := make([]int64, producers)
		for i := range last {
			last[i] = -1
		}
		for _, v := range consumed[c] {
			p := int(v >> 32)
			i := int64(v & 0xffffffff)
			if p < 0 || p >= producers {
				t.Fatalf("consumed value %#x from unknown producer", v)
			}
			if perProducerSeen[p][i] {
				t.Fatalf("value %#x consumed twice", v)
			}
			perProducerSeen[p][i] = true
			if i <= last[p] {
				t.Fatalf("consumer %d saw producer %d out of order (%d after %d)", c, p, i, last[p])
			}
			last[p] = i
		}
	}
	total := 0
	for p := range perProducerSeen {
		total += len(perProducerSeen[p])
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d values, want %d", total, producers*perProducer)
	}
	if a := q.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
}

// TestQueueStressRawReportsCorruption is the queue analog of the stack's
// raw-stress test: the raw queue's outcome is whatever the race gods
// allowed (logged, not asserted); the LL/SC twin under the same load must
// audit clean.
func TestQueueStressRawReportsCorruption(t *testing.T) {
	run := func(prot Protection) QueueAudit {
		const n = 8
		const perProc = 300
		q, err := NewQueue(shmem.NewNativeFactory(), n, 4, prot, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			h, err := q.Handle(pid)
			if err != nil {
				t.Fatal(err)
			}
			h.MaxSpin = 10_000 // a corrupted raw queue may livelock its helping loop
			wg.Add(1)
			go func(pid int, h *QueueHandle) {
				defer wg.Done()
				for i := 0; i < perProc; i++ {
					h.Enq(Word(pid)<<32 | Word(i))
					h.Deq()
				}
			}(pid, h)
		}
		wg.Wait()
		return q.Audit()
	}
	rawAudit := run(Raw)
	t.Logf("raw queue audit after stress: %s (corrupt=%v)", rawAudit, rawAudit.Corrupt())
	llscAudit := run(LLSC)
	if llscAudit.Corrupt() {
		t.Errorf("LL/SC queue corrupted: %s", llscAudit)
	}
}

// --- Event flag across the matrix ------------------------------------------

func eventFlag(t *testing.T, prot Protection, tagBits uint) *EventFlag {
	t.Helper()
	e, err := NewProtectedEventFlag(shmem.NewNativeFactory(), 2, prot, tagBits)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEventFlagPulseMatrix is the §1 ladder on the busy-wait flag: an
// in-window pulse (signal, then reset) is missed by the raw flag, missed by
// a 1-bit tag (2 writes wrap it), and detected by a 2-bit tag, LL/SC, and
// detector flags.
func TestEventFlagPulseMatrix(t *testing.T) {
	cases := []struct {
		name      string
		prot      Protection
		tagBits   uint
		wantFired bool
	}{
		{"raw", Raw, 0, false},
		{"tag1", Tagged, 1, false}, // 2 writes ≡ 0 (mod 2): tag wrapped
		{"tag2", Tagged, 2, true},  // 2 writes ≢ 0 (mod 4)
		{"llsc", LLSC, 0, true},
		{"detector", Detector, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := eventFlag(t, tc.prot, tc.tagBits)
			signaler, err := e.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			waiter, err := e.Handle(1)
			if err != nil {
				t.Fatal(err)
			}
			if set, fired := waiter.Poll(); set || fired {
				t.Fatal("initial poll should be quiet")
			}
			signaler.Signal()
			signaler.Reset()
			set, fired := waiter.Poll()
			if set {
				t.Error("flag should be reset")
			}
			if fired != tc.wantFired {
				t.Errorf("fired = %v, want %v", fired, tc.wantFired)
			}
		})
	}
}

// TestEventFlagTagWraparoundThreshold: with k tag bits, a burst of w writes
// inside the waiter's window is invisible iff w ≡ 0 (mod 2^k).
func TestEventFlagTagWraparoundThreshold(t *testing.T) {
	const tagBits = 2
	for pulses := 1; pulses <= 4; pulses++ {
		e := eventFlag(t, Tagged, tagBits)
		signaler, _ := e.Handle(0)
		waiter, _ := e.Handle(1)
		waiter.Poll()
		for i := 0; i < pulses; i++ {
			signaler.Signal()
			signaler.Reset()
		}
		writes := 2 * pulses
		_, fired := waiter.Poll()
		wantFired := writes%(1<<tagBits) != 0
		if fired != wantFired {
			t.Errorf("pulses=%d (writes=%d): fired=%v, want %v", pulses, writes, fired, wantFired)
		}
	}
}

// TestEventFlagMPMCRace races one signaler against several pollers under
// the race detector; for the exact regimes every poller must observe the
// traffic (dirty loads or set flags), and no poll may panic or race.
func TestEventFlagMPMCRace(t *testing.T) {
	for _, tc := range soundProtections() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			const pulses = 2000
			e, err := NewProtectedEventFlag(shmem.NewNativeFactory(), n, tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			var fired [n]atomic.Int64
			var stop atomic.Bool
			var ready, wg sync.WaitGroup
			for pid := 1; pid < n; pid++ {
				h, err := e.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				ready.Add(1)
				wg.Add(1)
				go func(pid int, h *EventHandle) {
					defer wg.Done()
					h.Poll() // baseline: arm detection before any traffic
					ready.Done()
					for {
						// Observe stop *before* polling, so the poll that
						// follows a true observation is guaranteed to run
						// after every pulse — exact detection then catches
						// anything this poller slept through.
						done := stop.Load()
						if _, f := h.Poll(); f {
							fired[pid].Add(1)
						}
						if done {
							return
						}
					}
				}(pid, h)
			}
			ready.Wait()
			signaler, err := e.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < pulses; i++ {
				signaler.Signal()
				signaler.Reset()
			}
			stop.Store(true)
			wg.Wait()
			for pid := 1; pid < n; pid++ {
				if fired[pid].Load() == 0 {
					t.Errorf("poller %d never observed any of %d pulses", pid, pulses)
				}
			}
		})
	}
}

// --- Differential foil tests ------------------------------------------------

// TestStackFoilDifferential asserts the §1 separation end to end: under the
// same deterministic recycling schedule the raw stack corrupts while the
// LL/SC and detector stacks reject the stale commit and stay intact.
func TestStackFoilDifferential(t *testing.T) {
	cases := []struct {
		name       string
		prot       Protection
		tagBits    uint
		wantFooled bool
	}{
		{"raw", Raw, 0, true},
		{"llsc", LLSC, 0, false},
		{"detector", Detector, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := StackABAScenario(shmem.NewNativeFactory(), tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled != tc.wantFooled || res.Corrupt != tc.wantFooled {
				t.Fatalf("fooled=%v corrupt=%v (%s), want both %v", res.Fooled, res.Corrupt, res.Detail, tc.wantFooled)
			}
		})
	}
}

// TestQueueFoilDifferential is the queue twin: the raw Michael–Scott queue
// dequeues a long-gone value a second time and strands its head on a free
// node; tagged, LL/SC, and detector queues reject the stale commit.
func TestQueueFoilDifferential(t *testing.T) {
	cases := []struct {
		name       string
		prot       Protection
		tagBits    uint
		wantFooled bool
	}{
		{"raw", Raw, 0, true},
		{"tag16", Tagged, 16, false}, // 3 head swings ≢ 0 (mod 2^16)
		{"llsc", LLSC, 0, false},
		{"detector", Detector, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := QueueABAScenario(shmem.NewNativeFactory(), tc.prot, tc.tagBits)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fooled != tc.wantFooled || res.Corrupt != tc.wantFooled {
				t.Fatalf("fooled=%v corrupt=%v (%s), want both %v", res.Fooled, res.Corrupt, res.Detail, tc.wantFooled)
			}
		})
	}
}

// --- Guarded free list ------------------------------------------------------

// TestGuardedPoolFreeListABA is the free-list ABA scenario the satellite
// task names, deterministically: process A stalls inside alloc's window —
// after loading the free head (node 1) and its link (node 2) but before the
// commit — while process B allocates nodes 1 and 2 and then frees node 1.
// The head *index* is 1 again, but node 2 is now in use.  A raw free list
// accepts A's stale commit and the allocator hands out the in-use node 2
// twice; an LL/SC or detector free list rejects it and counts a near-miss.
func TestGuardedPoolFreeListABA(t *testing.T) {
	for _, tc := range []struct {
		name       string
		prot       Protection
		wantFooled bool
	}{
		{"raw", Raw, true},
		{"llsc", LLSC, false},
		{"detector", Detector, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := shmem.NewNativeFactory()
			mk := guard.NewMaker(f, 2, tc.prot, 0)
			p, err := newGuardedPool(f, mk, "t", 3, shmem.BitsFor(4))
			if err != nil {
				t.Fatal(err)
			}
			ah, err := p.Handle(0)
			if err != nil {
				t.Fatal(err)
			}
			a := ah.(*guardedPoolHandle)
			bh, err := p.Handle(1)
			if err != nil {
				t.Fatal(err)
			}
			b := bh.(*guardedPoolHandle)

			// A: the first half of alloc — load head (1) and its link (2).
			top, _ := a.h.Load()
			if top != 1 {
				t.Fatalf("free head = %d, want 1", top)
			}
			aNext := p.next.Get(int(top)).Read(0)

			// B: allocate 1 and 2, then free 1.  Head index is 1 again, but
			// its link now bypasses the in-use node 2.
			if got := b.Alloc(); got != 1 {
				t.Fatalf("B alloc = %d, want 1", got)
			}
			if got := b.Alloc(); got != 2 {
				t.Fatalf("B alloc = %d, want 2", got)
			}
			b.Release(1)

			// A resumes: committing the stale link hands the free list's head
			// to the in-use node 2 iff the guard is fooled.
			fooled := a.h.Commit(aNext)
			if fooled != tc.wantFooled {
				t.Fatalf("stale free-list commit = %v, want %v", fooled, tc.wantFooled)
			}
			if fooled {
				// The corrupted allocator now hands out node 2 although B
				// still owns it: a double allocation.
				if got := b.Alloc(); got != 2 {
					t.Fatalf("corrupted alloc = %d, want the in-use node 2", got)
				}
			} else if m := p.Metrics(); m.NearMisses == 0 {
				t.Errorf("prevented free-list ABA not counted: %s", m)
			}
		})
	}
}

// TestGuardedPoolMetricsVisible: a stack over a guarded pool exposes the
// free-list guard counters, and under the sound regimes a concurrent
// workload leaves the pool consistent.
func TestGuardedPoolMetricsVisible(t *testing.T) {
	for _, tc := range soundProtections() {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4
			s, err := NewStack(shmem.NewNativeFactory(), n, 8, tc.prot, tc.tagBits, WithGuardedPool())
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				h, err := s.Handle(pid)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(pid int, h *StackHandle) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						h.Push(Word(pid)<<32 | Word(i))
						h.Pop()
					}
				}(pid, h)
			}
			wg.Wait()
			if a := s.Audit(); a.Corrupt() {
				t.Errorf("audit: %s", a)
			}
			m := s.FreelistMetrics()
			if m.Commits == 0 {
				t.Errorf("guarded pool recorded no commits: %s", m)
			}
			t.Logf("freelist metrics: %s", m)
		})
	}
}

// TestGuardedPoolNearMissDeterministic drives the free-list ABA window by
// hand through two handles of one guarded-pool stack: handle A loads the
// free head inside alloc's window while handle B recycles it; the LL/SC
// pool must reject A's stale commit and count a near-miss.
func TestGuardedPoolNearMissDeterministic(t *testing.T) {
	f := shmem.NewNativeFactory()
	s, err := NewStack(f, 2, 4, LLSC, 0, WithGuardedPool())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	// A pushes and pops so node traffic flows through the free list from
	// both handles; then interleave pushes so commits collide.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			a.Push(1)
			a.Pop()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			b.Push(2)
			b.Pop()
		}
	}()
	wg.Wait()
	if audit := s.Audit(); audit.Corrupt() {
		t.Fatalf("audit: %s", audit)
	}
	m := s.FreelistMetrics()
	t.Logf("freelist metrics after contention: %s", m)
	if m.Commits == 0 {
		t.Fatal("free list never committed")
	}
}

// TestCommitWithoutPending: PopCommit/DeqCommit after an empty Begin (or
// with no Begin at all) must report failure, not dereference node 0.
func TestCommitWithoutPending(t *testing.T) {
	s := newStack(t, 1, 3, LLSC, 0)
	sh := stackHandle(t, s, 0)
	if _, ok := sh.PopCommit(); ok {
		t.Error("PopCommit with no PopBegin succeeded")
	}
	sh.Push(1)
	sh.Pop()
	if _, _, empty := sh.PopBegin(); !empty {
		t.Fatal("stack should be empty")
	}
	if _, ok := sh.PopCommit(); ok {
		t.Error("PopCommit after an empty PopBegin succeeded")
	}
	// Each Begin arms at most one Commit: after a successful PopCommit a
	// second one without a fresh PopBegin must fail, not re-commit the stale
	// snapshot (which double-releases the node once the head cycles back).
	sh.Push(2)
	if _, _, empty := sh.PopBegin(); empty {
		t.Fatal("stack should have one value")
	}
	if v, ok := sh.PopCommit(); !ok || v != 2 {
		t.Fatalf("PopCommit = (%d,%v), want (2,true)", v, ok)
	}
	if _, ok := sh.PopCommit(); ok {
		t.Error("second PopCommit without a fresh PopBegin succeeded")
	}
	// Pop's internal commit path must disarm too: a bare PopCommit after a
	// successful Pop (whose PopBegin armed the snapshot) must fail.
	sh.Push(3)
	if _, _, empty := sh.PopBegin(); empty {
		t.Fatal("stack should have one value")
	}
	if v, ok := sh.Pop(); !ok || v != 3 {
		t.Fatalf("Pop = (%d,%v), want (3,true)", v, ok)
	}
	if _, ok := sh.PopCommit(); ok {
		t.Error("PopCommit after Pop consumed the snapshot succeeded")
	}

	q, err := NewQueue(shmem.NewNativeFactory(), 1, 3, LLSC, 0)
	if err != nil {
		t.Fatal(err)
	}
	qh, err := q.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := qh.DeqCommit(); ok {
		t.Error("DeqCommit with no DeqBegin succeeded")
	}
	qh.Enq(1)
	qh.Deq()
	if _, _, empty := qh.DeqBegin(); !empty {
		t.Fatal("queue should be empty")
	}
	if _, ok := qh.DeqCommit(); ok {
		t.Error("DeqCommit after an empty DeqBegin succeeded")
	}
	// A stale pending from before an empty Begin must not resurface either.
	qh.Enq(2)
	if _, nh, empty := qh.DeqBegin(); empty || nh == 0 {
		t.Fatal("queue should have one value")
	}
	if v, ok := qh.DeqCommit(); !ok || v != 2 {
		t.Fatalf("DeqCommit = (%d,%v), want (2,true)", v, ok)
	}
	if _, ok := qh.DeqCommit(); ok {
		t.Error("second DeqCommit without a fresh DeqBegin succeeded")
	}
	// Deq's internal commit path must disarm too: a DeqBegin snapshot that
	// Deq consumed cannot be replayed by a later bare DeqCommit.
	qh.Enq(3)
	if _, nh, empty := qh.DeqBegin(); empty || nh == 0 {
		t.Fatal("queue should have one value")
	}
	if v, ok := qh.Deq(); !ok || v != 3 {
		t.Fatalf("Deq = (%d,%v), want (3,true)", v, ok)
	}
	if _, ok := qh.DeqCommit(); ok {
		t.Error("DeqCommit after Deq consumed the snapshot succeeded")
	}
	if a := q.Audit(); a.Corrupt() {
		t.Errorf("audit: %s", a)
	}
}
